package gengar_test

import (
	"bytes"
	"testing"

	"gengar"
)

func openPool(t *testing.T, cfg gengar.Config) *gengar.Pool {
	t.Helper()
	cfg.Servers = 2
	cfg.NVMBytes = 1 << 20
	cfg.DRAMBufferBytes = 1 << 16
	cfg.RingBytes = 1 << 23
	p, err := gengar.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

func TestOpenRejectsBadConfig(t *testing.T) {
	cfg := gengar.DefaultConfig()
	cfg.Servers = 0
	if _, err := gengar.Open(cfg); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestPublicAPIRoundtrip(t *testing.T) {
	for _, cfg := range []gengar.Config{
		gengar.DefaultConfig(),
		gengar.NVMDirectConfig(),
		gengar.DRAMPoolConfig(),
	} {
		p := openPool(t, cfg)
		if p.Servers() != 2 {
			t.Fatalf("Servers = %d", p.Servers())
		}
		c, err := p.NewClient("app")
		if err != nil {
			t.Fatal(err)
		}
		addr, err := c.Malloc(1024)
		if err != nil {
			t.Fatal(err)
		}
		if addr == gengar.NilGAddr {
			t.Fatal("nil address")
		}
		want := bytes.Repeat([]byte("pool"), 256)
		if err := c.Write(addr, want); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(want))
		if err := c.Read(addr, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatal("roundtrip mismatch")
		}
		if err := c.Free(addr); err != nil {
			t.Fatal(err)
		}
		if err := p.Settle(); err != nil {
			t.Fatal(err)
		}
		st := p.ServerStats()
		if len(st) != 2 {
			t.Fatalf("ServerStats len = %d", len(st))
		}
		if st[0].Mallocs+st[1].Mallocs != 1 {
			t.Fatalf("mallocs = %d+%d", st[0].Mallocs, st[1].Mallocs)
		}
		c.Close()
	}
}

func TestSharingAcrossClients(t *testing.T) {
	p := openPool(t, gengar.DefaultConfig())
	producer, err := p.NewClient("producer")
	if err != nil {
		t.Fatal(err)
	}
	defer producer.Close()
	consumer, err := p.NewClient("consumer")
	if err != nil {
		t.Fatal(err)
	}
	defer consumer.Close()

	addr, err := producer.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := producer.LockExclusive(addr); err != nil {
		t.Fatal(err)
	}
	if err := producer.Write(addr, []byte("shared!")); err != nil {
		t.Fatal(err)
	}
	if err := producer.UnlockExclusive(addr); err != nil {
		t.Fatal(err)
	}

	if err := consumer.LockShared(addr); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 7)
	if err := consumer.Read(addr, got); err != nil {
		t.Fatal(err)
	}
	if err := consumer.UnlockShared(addr); err != nil {
		t.Fatal(err)
	}
	if string(got) != "shared!" {
		t.Fatalf("consumer read %q", got)
	}
}
