package e2e

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"gengar/internal/tcpnet"
	"gengar/internal/telemetry/span"
)

// fetchTraceRecords drains the daemon's /debug/trace JSONL ring.
func fetchTraceRecords(t *testing.T, debugAddr string) []span.Record {
	t.Helper()
	res, err := http.Get(fmt.Sprintf("http://%s/debug/trace", debugAddr))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var out []span.Record
	sc := bufio.NewScanner(res.Body)
	for sc.Scan() {
		var r span.Record
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad trace JSONL line %q: %v", sc.Text(), err)
		}
		out = append(out, r)
	}
	return out
}

// stageNames flattens a record's stage sequence.
func stageNames(r span.Record) []string {
	out := make([]string, len(r.Stages))
	for i, s := range r.Stages {
		out[i] = s.Stage
	}
	return out
}

func containsStage(seq []string, want string) bool {
	for _, s := range seq {
		if s == want {
			return true
		}
	}
	return false
}

// TestTraceEndToEnd drives a sampled read and a sampled staged write
// against a real gengard over loopback and stitches each op's client
// span (from the in-process pool tracer) to its server span (from the
// daemon's /debug/trace ring) by trace ID, checking the expected stage
// sequence on both sides.
func TestTraceEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e builds and execs real binaries")
	}
	dir := t.TempDir()
	gengard, _ := buildBinaries(t, dir)
	addr := freePort(t)
	debugAddr := freePort(t)
	startDaemon(t, gengard, addr,
		"-debug-addr", debugAddr, "-trace-sample", "1", "-trace-slow", "0")

	p, err := tcpnet.DialConfig(tcpnet.PoolConfig{
		Addrs: []string{addr}, Timeout: 5 * time.Second, TraceSample: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)

	a, err := p.Malloc(256)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0x42}, 256)
	if err := p.Write(a, data); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	if err := p.Read(a, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("read returned wrong bytes")
	}

	var clientRead, clientWrite span.Record
	for _, r := range p.Tracer().Records() {
		switch r.Op {
		case "read":
			clientRead = r
		case "write":
			clientWrite = r
		}
	}
	if clientRead.TraceID == 0 || clientWrite.TraceID == 0 {
		t.Fatalf("client spans missing: %+v", p.Tracer().Records())
	}
	for _, want := range []string{"encode", "netWait", "decode"} {
		if !containsStage(stageNames(clientRead), want) {
			t.Fatalf("client read stages %v missing %q", stageNames(clientRead), want)
		}
	}
	for _, want := range []string{"encode", "netWait"} {
		if !containsStage(stageNames(clientWrite), want) {
			t.Fatalf("client write stages %v missing %q", stageNames(clientWrite), want)
		}
	}

	// The server half finishes after the response writev; poll the ring
	// until both stitched records appear.
	var serverRead, serverWrite *span.Record
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && (serverRead == nil || serverWrite == nil) {
		for _, r := range fetchTraceRecords(t, debugAddr) {
			r := r
			switch r.TraceID {
			case clientRead.TraceID:
				serverRead = &r
			case clientWrite.TraceID:
				serverWrite = &r
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	if serverRead == nil || serverWrite == nil {
		t.Fatalf("stitched server spans never appeared in /debug/trace (read=%v write=%v)",
			serverRead, serverWrite)
	}
	if !serverRead.Remote || !serverWrite.Remote {
		t.Fatalf("server spans not marked remote: %+v %+v", serverRead, serverWrite)
	}
	rSeq := stageNames(*serverRead)
	for _, want := range []string{"queueWait", "dispatch", "writevFlush"} {
		if !containsStage(rSeq, want) {
			t.Fatalf("server read stages %v missing %q", rSeq, want)
		}
	}
	if !containsStage(rSeq, "cacheHit") && !containsStage(rSeq, "nvmCopy") {
		t.Fatalf("server read stages %v name no serving path", rSeq)
	}
	wSeq := stageNames(*serverWrite)
	for _, want := range []string{"queueWait", "dispatch", "ringStage", "writevFlush"} {
		if !containsStage(wSeq, want) {
			t.Fatalf("server write stages %v missing %q", wSeq, want)
		}
	}
}
