package e2e

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"gengar/internal/region"
	"gengar/internal/tcpnet"
)

// kill terminates the daemon hard (SIGKILL, no snapshot, no graceful
// teardown) — the crashed-peer case, as opposed to stop's SIGTERM.
func (d *daemon) kill() {
	d.t.Helper()
	if d.cmd == nil || d.cmd.Process == nil {
		return
	}
	_ = d.cmd.Process.Kill()
	_ = d.cmd.Wait()
	d.cmd = nil
}

// TestClusterSpillAndPeerDeath drives the distributed DRAM cache over
// real gengard processes: three daemons on loopback in a full -peers
// mesh, the home daemon's arena sized far below its hot set so
// promotion must spill copies into the peers' arenas, then one peer
// SIGKILLed mid-workload. The pin: hot reads are served out of peer
// DRAM while the cluster is whole, and after the crash every read still
// succeeds with correct bytes — dead-peer copies demote to NVM reads
// with zero client-visible errors.
func TestClusterSpillAndPeerDeath(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e builds and execs real binaries")
	}
	dir := t.TempDir()
	gengard, cli := buildBinaries(t, dir)

	addrs := []string{freePort(t), freePort(t), freePort(t)}
	mesh := func(self int) string {
		var peers string
		for i, a := range addrs {
			if i == self {
				continue
			}
			if peers != "" {
				peers += ","
			}
			peers += a
		}
		return peers
	}
	// The home daemon's arena holds only a handful of copies; its peers
	// bring 1 MiB each, so the planner's aggregate budget covers the
	// whole working set and the overflow spills.
	home := startDaemon(t, gengard, addrs[0],
		"-cache-bytes", "65536", "-digest-every", "4", "-peers", mesh(0))
	_ = home
	peerA := startDaemon(t, gengard, addrs[1],
		"-id", "2", "-cache-bytes", fmt.Sprint(1<<20), "-peers", mesh(1))
	_ = peerA
	peerB := startDaemon(t, gengard, addrs[2],
		"-id", "3", "-cache-bytes", fmt.Sprint(1<<20), "-peers", mesh(2))

	p, err := tcpnet.Dial([]string{addrs[0]}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const (
		objects = 48
		objSize = 4096
	)
	objAddrs := make([]region.GAddr, objects)
	objData := make([][]byte, objects)
	for i := range objAddrs {
		a, err := p.Malloc(objSize)
		if err != nil {
			t.Fatal(err)
		}
		objAddrs[i] = a
		objData[i] = bytes.Repeat([]byte{byte(i + 1)}, objSize)
		if err := p.Write(a, objData[i]); err != nil {
			t.Fatal(err)
		}
	}

	// Hammer the working set until the distributed cache is visibly in
	// play: copies spilled onto peers AND reads served through them.
	buf := make([]byte, objSize)
	deadline := time.Now().Add(60 * time.Second)
	for {
		for i, a := range objAddrs {
			if _, err := p.ReadCheck(a, buf); err != nil {
				t.Fatalf("warm read of object %d: %v", i, err)
			}
			if !bytes.Equal(buf, objData[i]) {
				t.Fatalf("object %d corrupt during warm-up", i)
			}
		}
		st, err := p.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if st[0].SpilledBytes > 0 && st[0].PeerHits > 0 {
			t.Logf("distributed cache active: spilled=%d B, peer_hits=%d, local_hits=%d, peers_live=%d",
				st[0].SpilledBytes, st[0].PeerHits, st[0].CacheHits, st[0].PeersLive)
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("hot set never spilled to peers: %+v\n%s", st[0], home.log)
		}
	}

	// The cluster columns of `gengar-cli stats` surface the activity a
	// plain daemon never shows: spilled bytes and live peer links.
	if out := runCLI(t, cli, addrs[0], "stats"); !strings.Contains(out, "peers_live") {
		t.Fatalf("gengar-cli stats shows no cluster columns:\n%s", out)
	}

	// Crash one peer hard. Copies it hosted are unreachable; the home
	// must demote them and keep serving every read from NVM.
	peerB.kill()

	for pass := 0; pass < 3; pass++ {
		for i, a := range objAddrs {
			if _, err := p.ReadCheck(a, buf); err != nil {
				t.Fatalf("pass %d: read of object %d failed after peer death: %v", pass, i, err)
			}
			if !bytes.Equal(buf, objData[i]) {
				t.Fatalf("pass %d: object %d corrupt after peer death", pass, i)
			}
		}
	}
	st, err := p.Stats()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("after peer death: peer_errors=%d demotions=%d peers_live=%d local_hits=%d peer_hits=%d",
		st[0].PeerErrors, st[0].Demotions, st[0].PeersLive, st[0].CacheHits, st[0].PeerHits)

	// The surviving peer keeps hosting: writes and reads still work and
	// the pool still answers stats — the cluster degraded, not died.
	if err := p.Write(objAddrs[0], objData[0]); err != nil {
		t.Fatalf("write after peer death: %v", err)
	}
}
