// Package e2e drives the real gengard daemon and gengar-cli binaries
// over loopback TCP: the deployment-shaped smoke test. It builds both
// commands from the working tree, walks a malloc/write/read/lock
// workload through the CLI, exercises hotness-driven promotion, and
// restarts the daemon to verify the snapshot path end to end.
package e2e

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildBinaries compiles gengard and gengar-cli into dir.
func buildBinaries(t *testing.T, dir string) (gengard, cli string) {
	t.Helper()
	gengard = filepath.Join(dir, "gengard")
	cli = filepath.Join(dir, "gengar-cli")
	for bin, pkg := range map[string]string{gengard: "gengar/cmd/gengard", cli: "gengar/cmd/gengar-cli"} {
		cmd := exec.Command("go", "build", "-o", bin, pkg)
		cmd.Dir = ".." // module root
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
	}
	return gengard, cli
}

// freePort reserves a loopback port and releases it for the daemon.
func freePort(t *testing.T) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	_ = lis.Close()
	return addr
}

// daemon manages one gengard process.
type daemon struct {
	t    *testing.T
	bin  string
	addr string
	args []string
	cmd  *exec.Cmd
	log  *bytes.Buffer
}

func startDaemon(t *testing.T, bin, addr string, extra ...string) *daemon {
	t.Helper()
	d := &daemon{t: t, bin: bin, addr: addr, args: extra}
	d.start()
	t.Cleanup(func() { d.stop() })
	return d
}

func (d *daemon) start() {
	d.t.Helper()
	args := append([]string{"-id", "1", "-listen", d.addr, "-pool-bytes", fmt.Sprint(1 << 20)}, d.args...)
	d.log = &bytes.Buffer{}
	d.cmd = exec.Command(d.bin, args...)
	d.cmd.Stdout = d.log
	d.cmd.Stderr = d.log
	if err := d.cmd.Start(); err != nil {
		d.t.Fatal(err)
	}
	// Wait for the listener.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		c, err := net.DialTimeout("tcp", d.addr, 200*time.Millisecond)
		if err == nil {
			_ = c.Close()
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	d.t.Fatalf("gengard never listened on %s:\n%s", d.addr, d.log)
}

// stop shuts the daemon down gracefully (SIGTERM triggers the snapshot
// path) and waits for exit.
func (d *daemon) stop() {
	d.t.Helper()
	if d.cmd == nil || d.cmd.Process == nil {
		return
	}
	_ = d.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		_ = d.cmd.Process.Kill()
		<-done
		d.t.Fatalf("gengard did not exit on SIGTERM:\n%s", d.log)
	}
	d.cmd = nil
}

// runCLI invokes gengar-cli against the daemon and returns its stdout.
func runCLI(t *testing.T, cli, addr string, args ...string) string {
	t.Helper()
	out, err := exec.Command(cli, append([]string{"-servers", addr}, args...)...).CombinedOutput()
	if err != nil {
		t.Fatalf("gengar-cli %v: %v\n%s", args, err, out)
	}
	return string(out)
}

func TestGengardEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e builds and execs real binaries")
	}
	dir := t.TempDir()
	gengard, cli := buildBinaries(t, dir)
	snap := filepath.Join(dir, "pool.snap")
	addr := freePort(t)
	d := startDaemon(t, gengard, addr, "-data", snap, "-digest-every", "4")

	// malloc/write/read through the CLI.
	gaddr := strings.TrimSpace(runCLI(t, cli, addr, "malloc", "64"))
	if gaddr == "" {
		t.Fatal("malloc printed no address")
	}
	runCLI(t, cli, addr, "write", gaddr, "hello gengar")
	if got := runCLI(t, cli, addr, "read", gaddr, "12"); !strings.Contains(got, "hello gengar") {
		t.Fatalf("read back %q", got)
	}

	// The demo walks lock/unlock in both modes.
	if out := runCLI(t, cli, addr, "demo"); !strings.Contains(out, "demo ok") {
		t.Fatalf("demo: %s", out)
	}

	// Hotness-driven promotion is observable from the client: the hot
	// command digests synthetic weight and sees a cache-served read.
	if out := runCLI(t, cli, addr, "hot", gaddr); !strings.Contains(out, "served from the DRAM cache") {
		t.Fatalf("hot: %s", out)
	}

	// Stats reflect the mechanisms: staged writes and cache hits.
	stats := runCLI(t, cli, addr, "stats")
	if !strings.Contains(stats, "hits") || !strings.Contains(stats, "staged") {
		t.Fatalf("stats missing mechanism columns:\n%s", stats)
	}

	// Restarting the daemon restores the pool from its shutdown snapshot.
	d.stop()
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("no snapshot after shutdown: %v\n%s", err, d.log)
	}
	d.start()
	if got := runCLI(t, cli, addr, "read", gaddr, "12"); !strings.Contains(got, "hello gengar") {
		t.Fatalf("data lost across daemon restart: %q", got)
	}
	// The allocation survived too: freeing it twice fails the second time.
	runCLI(t, cli, addr, "free", gaddr)
	if out, err := exec.Command(cli, "-servers", addr, "free", gaddr).CombinedOutput(); err == nil {
		t.Fatalf("double free accepted after restart: %s", out)
	}
}
