package e2e

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"gengar/internal/region"
	"gengar/internal/tcpnet"
)

// TestManyClientFanIn drives a real gengard with 16 concurrent client
// connections — one tcpnet.Pool (own socket) per client — mixing reads
// of a shared promoted working set with writes to per-client objects.
// It is the deployment-shaped check behind the sharded hot-path work:
// many independent clients fan into one daemon and every one of them
// sees correct bytes and cache-served reads.
func TestManyClientFanIn(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e builds and execs real binaries")
	}
	dir := t.TempDir()
	gengard, _ := buildBinaries(t, dir)
	addr := freePort(t)
	startDaemon(t, gengard, addr, "-digest-every", "8")

	const (
		clients = 16
		objSize = 1024
		shared  = 8
	)

	// One setup connection prepares the shared working set and warms it
	// into the DRAM cache.
	setup, err := tcpnet.Dial([]string{addr}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer setup.Close()
	sharedAddrs := make([]region.GAddr, shared)
	sharedData := make([][]byte, shared)
	for i := range sharedAddrs {
		a, err := setup.Malloc(objSize)
		if err != nil {
			t.Fatal(err)
		}
		sharedAddrs[i] = a
		sharedData[i] = bytes.Repeat([]byte{byte(0x10 + i)}, objSize)
		if err := setup.Write(a, sharedData[i]); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, objSize)
	deadline := time.Now().Add(30 * time.Second)
	for _, a := range sharedAddrs {
		for {
			hit, err := setup.ReadCheck(a, buf)
			if err != nil {
				t.Fatal(err)
			}
			if hit {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("shared working set never promoted")
			}
		}
	}

	// Each client dials its own connection, then mixes cache reads of
	// the shared set with writes and read-backs of a private object.
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	hits := make(chan int64, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			p, err := tcpnet.Dial([]string{addr}, 2*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer p.Close()
			mine, err := p.Malloc(objSize)
			if err != nil {
				errs <- err
				return
			}
			var clientHits int64
			got := make([]byte, objSize)
			for i := 0; i < 200; i++ {
				// Shared read: promoted, so it should come from the cache.
				s := (c + i) % shared
				hit, err := p.ReadCheck(sharedAddrs[s], got)
				if err != nil {
					errs <- err
					return
				}
				if hit {
					clientHits++
				}
				if !bytes.Equal(got, sharedData[s]) {
					errs <- fmt.Errorf("client %d: shared object %d corrupt on read %d", c, s, i)
					return
				}
				// Private write + read-back every few iterations.
				if i%5 == 0 {
					data := bytes.Repeat([]byte{byte(c + 1)}, objSize)
					if err := p.Write(mine, data); err != nil {
						errs <- err
						return
					}
					if err := p.Read(mine, got); err != nil {
						errs <- err
						return
					}
					if !bytes.Equal(got, data) {
						errs <- fmt.Errorf("client %d: private read-your-writes violated", c)
						return
					}
				}
			}
			hits <- clientHits
			errs <- nil
		}(c)
	}
	wg.Wait()
	close(errs)
	close(hits)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	var total int64
	for h := range hits {
		total += h
	}
	// The shared set was warmed before the fan-in, so the overwhelming
	// majority of shared reads must be cache hits.
	if total < clients*100 {
		t.Fatalf("only %d cache hits across %d clients×200 reads", total, clients)
	}
}
