package gengar_test

import (
	"fmt"
	"log"

	"gengar"
)

// Example shows the minimal lifecycle: open a pool, join as a user,
// allocate global memory, write and read it back.
func Example() {
	pool, err := gengar.Open(gengar.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer pool.Close()

	c, err := pool.NewClient("example")
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	addr, err := c.Malloc(64)
	if err != nil {
		log.Fatal(err)
	}
	if err := c.Write(addr, []byte("global memory")); err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 13)
	if err := c.Read(addr, buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n", buf)
	// Output: global memory
}

// Example_sharing shows multi-user consistency: a producer publishes
// under the exclusive lock, and a consumer observes the committed value
// under a shared lock.
func Example_sharing() {
	pool, err := gengar.Open(gengar.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer pool.Close()

	producer, err := pool.NewClient("producer")
	if err != nil {
		log.Fatal(err)
	}
	defer producer.Close()
	consumer, err := pool.NewClient("consumer")
	if err != nil {
		log.Fatal(err)
	}
	defer consumer.Close()

	addr, _ := producer.Malloc(16)
	if err := producer.LockExclusive(addr); err != nil {
		log.Fatal(err)
	}
	if err := producer.Write(addr, []byte("published value!")); err != nil {
		log.Fatal(err)
	}
	if err := producer.UnlockExclusive(addr); err != nil {
		log.Fatal(err)
	}

	if err := consumer.LockShared(addr); err != nil {
		log.Fatal(err)
	}
	got := make([]byte, 16)
	if err := consumer.Read(addr, got); err != nil {
		log.Fatal(err)
	}
	if err := consumer.UnlockShared(addr); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n", got)
	// Output: published value!
}

// Example_optimisticRead shows the lock-free consistent read path:
// seqlock-validated reads that never touch the lock table.
func Example_optimisticRead() {
	pool, err := gengar.Open(gengar.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer pool.Close()

	w, _ := pool.NewClient("writer")
	defer w.Close()
	r, _ := pool.NewClient("reader")
	defer r.Close()

	addr, _ := w.Malloc(8)
	if err := w.LockExclusive(addr); err != nil {
		log.Fatal(err)
	}
	if err := w.Write(addr, []byte("seqlock!")); err != nil {
		log.Fatal(err)
	}
	if err := w.UnlockExclusive(addr); err != nil {
		log.Fatal(err)
	}

	buf := make([]byte, 8)
	if err := r.ReadOptimistic(addr, buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n", buf)
	// Output: seqlock!
}
