// Package gengar is an RDMA-based distributed shared hybrid memory
// (DSHM) pool: servers contribute byte-addressable NVM and DRAM into one
// global memory space that clients program with a handful of calls —
// Malloc/Free, Read/Write and reader-writer locks over 64-bit global
// addresses.
//
// It is a from-scratch reproduction of "Gengar: An RDMA-based Distributed
// Hybrid Memory Pool" (Duan et al., ICDCS 2021). Gengar's three ideas are
// all here:
//
//   - hot-data identification from RDMA verb semantics: clients record
//     the type/address/length of their one-sided verbs and report compact
//     digests; home servers sketch the global access stream and promote
//     frequently-read objects into distributed DRAM buffers, where a
//     single one-sided READ serves them at DRAM latency;
//   - a proxied write path: writes land in a per-client DRAM staging ring
//     at the server and are acknowledged at DRAM speed, while a flusher
//     applies them to NVM (and to any promoted copy) in the background;
//   - multi-user sharing with consistency: one-sided CAS reader/writer
//     locks plus per-object versions, with a writer's staged updates
//     drained before its lock release.
//
// Hardware is simulated: an RDMA verbs simulator and Optane-profile
// memory models stand in for the paper's testbed (see DESIGN.md), so the
// whole system runs deterministically in one process. Real bytes move on
// every operation; simulated nanoseconds are charged for every device and
// network cost.
//
// # Quick start
//
//	pool, err := gengar.Open(gengar.DefaultConfig())
//	if err != nil { ... }
//	defer pool.Close()
//
//	c, err := pool.NewClient("app")
//	if err != nil { ... }
//	defer c.Close()
//
//	addr, _ := c.Malloc(4096)
//	_ = c.Write(addr, []byte("hello, hybrid memory"))
//	buf := make([]byte, 20)
//	_ = c.Read(addr, buf)
package gengar

import (
	"gengar/internal/config"
	"gengar/internal/core"
	"gengar/internal/region"
	"gengar/internal/server"
	"gengar/internal/telemetry"
)

// Config describes a pool deployment: cluster shape, device and network
// timing models, hotness epoching, proxy geometry and feature switches.
// Start from DefaultConfig and override fields.
type Config = config.Cluster

// Features toggles Gengar's two mechanisms (DRAM caching of hot data,
// proxied writes) — the knobs behind the ablation baselines.
type Features = config.Features

// GAddr is a 64-bit global address: home server in the high 16 bits,
// pool offset in the low 48.
type GAddr = region.GAddr

// NilGAddr is the zero, invalid global address.
const NilGAddr = region.NilGAddr

// Client is one user of the pool. A Client models a single application
// thread with its own simulated clock; create one per concurrent actor.
type Client = core.Client

// ClientStats snapshots a client's operation counts, cache hit rate and
// simulated latency distributions.
type ClientStats = core.Stats

// ServerStats snapshots one memory server's pool usage, promotion
// activity and proxy flusher state.
type ServerStats = server.Stats

// DefaultConfig returns the full-Gengar deployment used throughout the
// evaluation: 4 servers, Optane-profile NVM pools, DRAM buffers, and
// both mechanisms enabled.
func DefaultConfig() Config { return config.Default() }

// NVMDirectConfig returns the state-of-the-art DSHM comparator: the same
// substrate with remote NVM exposed directly over one-sided verbs — no
// DRAM caching, no write proxy.
func NVMDirectConfig() Config { return config.NVMDirect() }

// DRAMPoolConfig returns the DRAM-only pool baseline: the latency upper
// bound a hybrid design chases, at a capacity real deployments cannot
// afford.
func DRAMPoolConfig() Config { return config.DRAMPool() }

// Pool is a running deployment: the fabric plus cfg.Servers memory
// servers, meshed and serving.
type Pool struct {
	cluster *server.Cluster
}

// Open validates cfg, builds the fabric and servers, and starts their
// proxy flushers. Close the pool to stop them.
func Open(cfg Config) (*Pool, error) {
	c, err := server.NewCluster(cfg)
	if err != nil {
		return nil, err
	}
	return &Pool{cluster: c}, nil
}

// NewClient joins the pool as a new user, opening sessions with every
// server.
func (p *Pool) NewClient(name string) (*Client, error) {
	return core.Connect(p.cluster, name)
}

// Servers returns the number of memory servers in the pool.
func (p *Pool) Servers() int { return len(p.cluster.Registry().Servers()) }

// ServerStats returns a snapshot per server, in server-ID order.
func (p *Pool) ServerStats() []ServerStats {
	servers := p.cluster.Registry().Servers()
	out := make([]ServerStats, 0, len(servers))
	for _, s := range servers {
		out = append(out, s.Stats())
	}
	return out
}

// Settle blocks until every server's flusher has drained all records and
// promotion plans submitted so far — a quiescence point for tests and
// benchmark harnesses.
func (p *Pool) Settle() error {
	for _, s := range p.cluster.Registry().Servers() {
		if err := s.Engine().Barrier(); err != nil {
			return err
		}
	}
	return nil
}

// Telemetry returns the pool's metrics registry: every component —
// fabric verb mix, server promotion activity, proxy flushers, per-client
// op counters and latency histograms — registers its live instruments
// here. Snapshot it for a point-in-time view, or serve it over HTTP with
// telemetry.Handler.
func (p *Pool) Telemetry() *telemetry.Registry { return p.cluster.Telemetry() }

// FlightRecorder returns the pool's ring of recent operation events
// (reads, writes, mallocs, frees with their serving path and simulated
// latency), dumpable as JSONL.
func (p *Pool) FlightRecorder() *telemetry.FlightRecorder { return p.cluster.Recorder() }

// Cluster exposes the underlying cluster for the in-repo benchmark
// harness; applications should not need it.
func (p *Pool) Cluster() *server.Cluster { return p.cluster }

// Close stops every server.
func (p *Pool) Close() { p.cluster.Close() }
