// sharing demonstrates Gengar's multi-user consistency: several users
// concurrently update one shared object under the pool's reader/writer
// locks, and a reader observes a consistent final state. Run with:
//
//	go run ./examples/sharing
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"sync"

	"gengar"
)

func main() {
	pool, err := gengar.Open(gengar.DefaultConfig())
	if err != nil {
		log.Fatalf("open pool: %v", err)
	}
	defer pool.Close()

	owner, err := pool.NewClient("owner")
	if err != nil {
		log.Fatal(err)
	}
	defer owner.Close()

	// A shared 8-byte counter in global memory.
	counter, err := owner.Malloc(8)
	if err != nil {
		log.Fatal(err)
	}
	if err := owner.Write(counter, make([]byte, 8)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shared counter at %v\n", counter)

	// Four users increment it 250 times each, under the exclusive lock.
	const users, perUser = 4, 250
	var wg sync.WaitGroup
	for u := 0; u < users; u++ {
		c, err := pool.NewClient(fmt.Sprintf("user-%d", u))
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(c *gengar.Client) {
			defer wg.Done()
			defer c.Close()
			buf := make([]byte, 8)
			for i := 0; i < perUser; i++ {
				if err := c.LockExclusive(counter); err != nil {
					log.Fatalf("lock: %v", err)
				}
				if err := c.Read(counter, buf); err != nil {
					log.Fatalf("read: %v", err)
				}
				binary.BigEndian.PutUint64(buf, binary.BigEndian.Uint64(buf)+1)
				if err := c.Write(counter, buf); err != nil {
					log.Fatalf("write: %v", err)
				}
				// Unlock drains the staged write and bumps the object
				// version, so the next lock holder sees this increment.
				if err := c.UnlockExclusive(counter); err != nil {
					log.Fatalf("unlock: %v", err)
				}
			}
		}(c)
	}
	wg.Wait()

	// A fresh reader takes a shared lock and checks the total.
	reader, err := pool.NewClient("reader")
	if err != nil {
		log.Fatal(err)
	}
	defer reader.Close()
	if err := reader.LockShared(counter); err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 8)
	if err := reader.Read(counter, buf); err != nil {
		log.Fatal(err)
	}
	version, err := reader.Version(counter)
	if err != nil {
		log.Fatal(err)
	}
	if err := reader.UnlockShared(counter); err != nil {
		log.Fatal(err)
	}

	got := binary.BigEndian.Uint64(buf)
	fmt.Printf("final counter: %d (want %d), object version: %d\n", got, users*perUser, version)
	if got != users*perUser {
		log.Fatalf("lost updates! data consistency violated")
	}
	fmt.Println("all updates preserved — per-object sequential consistency held")
}
