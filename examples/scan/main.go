// scan demonstrates the vectored read path: range scans over a
// pool-resident table issued as doorbell-batched chains, against the
// same scans issued one read at a time. Run with:
//
//	go run ./examples/scan
package main

import (
	"fmt"
	"log"

	"gengar"
)

func main() {
	pool, err := gengar.Open(gengar.DefaultConfig())
	if err != nil {
		log.Fatalf("open pool: %v", err)
	}
	defer pool.Close()

	c, err := pool.NewClient("scanner")
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// A small table of 1 KiB records.
	const records, recordSize = 512, 1024
	addrs := make([]gengar.GAddr, records)
	row := make([]byte, recordSize)
	for i := range addrs {
		a, err := c.Malloc(recordSize)
		if err != nil {
			log.Fatal(err)
		}
		for j := range row {
			row[j] = byte(i)
		}
		if err := c.Write(a, row); err != nil {
			log.Fatal(err)
		}
		addrs[i] = a
	}
	if err := c.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d x %d B records\n", records, recordSize)

	const scanLen = 16
	bufs := make([][]byte, scanLen)
	for i := range bufs {
		bufs[i] = make([]byte, recordSize)
	}

	// Sequential: scanLen dependent round trips.
	t0 := c.Now()
	for i := 0; i < scanLen; i++ {
		if err := c.Read(addrs[100+i], bufs[i]); err != nil {
			log.Fatal(err)
		}
	}
	sequential := c.Now().Sub(t0)

	// Batched: one doorbell per server, all round trips overlapped.
	t0 = c.Now()
	if err := c.ReadMulti(addrs[100:100+scanLen], bufs); err != nil {
		log.Fatal(err)
	}
	batched := c.Now().Sub(t0)

	for i, b := range bufs {
		if b[0] != byte(100+i) {
			log.Fatalf("record %d corrupted", 100+i)
		}
	}
	fmt.Printf("%d-record scan: %v sequential vs %v batched (%.1fx) [simulated]\n",
		scanLen, sequential, batched, float64(sequential)/float64(batched))
}
