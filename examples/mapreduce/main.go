// mapreduce runs a word-count job whose inputs, shuffle partitions and
// outputs all live in the Gengar pool — the application benchmark the
// paper evaluates. Run with:
//
//	go run ./examples/mapreduce
package main

import (
	"fmt"
	"log"
	"sort"

	"gengar"
	"gengar/internal/mapreduce"
)

func main() {
	pool, err := gengar.Open(gengar.DefaultConfig())
	if err != nil {
		log.Fatalf("open pool: %v", err)
	}
	defer pool.Close()

	// The driver stores a synthetic skewed corpus into the pool.
	driver, err := pool.NewClient("driver")
	if err != nil {
		log.Fatal(err)
	}
	defer driver.Close()
	docs := mapreduce.Corpus(2026, 24, 400, 150)
	inputs, err := mapreduce.StoreInputs(driver, docs)
	if err != nil {
		log.Fatalf("store inputs: %v", err)
	}
	fmt.Printf("stored %d documents (%d words each) in the pool\n", len(docs), 400)

	// Four workers, each a pool client.
	workers := make([]*gengar.Client, 4)
	for i := range workers {
		w, err := pool.NewClient(fmt.Sprintf("worker-%d", i))
		if err != nil {
			log.Fatal(err)
		}
		defer w.Close()
		workers[i] = w
	}

	mapf, reducef := mapreduce.WordCount()
	job, err := mapreduce.NewJob(mapreduce.Config{Mappers: 4, Reducers: 2}, workers, mapf, reducef)
	if err != nil {
		log.Fatal(err)
	}
	counts, stats, err := job.Run(inputs)
	if err != nil {
		log.Fatalf("run: %v", err)
	}

	// Top five words.
	type wc struct {
		word  string
		count string
	}
	var top []wc
	for w, c := range counts {
		top = append(top, wc{w, c})
	}
	sort.Slice(top, func(i, j int) bool {
		if len(top[i].count) != len(top[j].count) {
			return len(top[i].count) > len(top[j].count)
		}
		return top[i].count > top[j].count
	})
	fmt.Printf("%d distinct words; top five:\n", len(counts))
	for _, t := range top[:5] {
		fmt.Printf("  %-8s %s\n", t.word, t.count)
	}
	fmt.Printf("job time %v (map %v + reduce %v, simulated), %d pairs, %d B shuffled through the pool\n",
		stats.JobTime, stats.MapTime, stats.ReduceTime, stats.Pairs, stats.BytesShuffled)
}
