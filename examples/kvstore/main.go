// kvstore builds a replicated-index key-value store on the Gengar pool —
// the YCSB-style workload the paper evaluates — and shows how the DRAM
// cache picks up a skewed key popularity distribution. Run with:
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	"gengar"
)

// store is a minimal KV layer: values live in the pool, the index is a
// client-side map (each user keeps its own copy, as RDMA KV stores do
// with client-cached indexes).
type store struct {
	mu     sync.RWMutex
	index  map[string]gengar.GAddr
	size   map[string]int
	client *gengar.Client
}

func newStore(c *gengar.Client) *store {
	return &store{
		index:  make(map[string]gengar.GAddr),
		size:   make(map[string]int),
		client: c,
	}
}

func (s *store) Put(key string, value []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	addr, ok := s.index[key]
	if !ok || s.size[key] < len(value) {
		var err error
		if addr, err = s.client.Malloc(int64(len(value))); err != nil {
			return err
		}
		s.index[key] = addr
		s.size[key] = len(value)
	}
	return s.client.Write(addr, value)
}

func (s *store) Get(key string, c *gengar.Client) ([]byte, error) {
	s.mu.RLock()
	addr, ok := s.index[key]
	n := s.size[key]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("kvstore: no such key %q", key)
	}
	buf := make([]byte, n)
	if err := c.Read(addr, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func main() {
	pool, err := gengar.Open(gengar.DefaultConfig())
	if err != nil {
		log.Fatalf("open pool: %v", err)
	}
	defer pool.Close()

	writer, err := pool.NewClient("writer")
	if err != nil {
		log.Fatal(err)
	}
	defer writer.Close()

	// Load 2048 keys of 1 KiB each.
	kv := newStore(writer)
	const keys = 2048
	value := make([]byte, 1024)
	for i := 0; i < keys; i++ {
		for j := range value {
			value[j] = byte(i)
		}
		if err := kv.Put(fmt.Sprintf("user%05d", i), value); err != nil {
			log.Fatalf("put: %v", err)
		}
	}
	fmt.Printf("loaded %d keys x 1 KiB\n", keys)

	// A reader hammers the store with zipfian-popular keys.
	reader, err := pool.NewClient("reader")
	if err != nil {
		log.Fatal(err)
	}
	defer reader.Close()

	rng := rand.New(rand.NewSource(1))
	zipf := rand.NewZipf(rng, 1.1, 8, keys-1)
	const gets = 8192
	for i := 0; i < gets; i++ {
		key := fmt.Sprintf("user%05d", zipf.Uint64())
		got, err := kv.Get(key, reader)
		if err != nil {
			log.Fatalf("get: %v", err)
		}
		if len(got) != 1024 {
			log.Fatalf("get %s: %d bytes", key, len(got))
		}
		// Checkpoint a quarter of the way in: let promotion plans land
		// and refresh our remap view, as a long-running service's steady
		// digest traffic would.
		if i == gets/4 {
			if err := pool.Settle(); err != nil {
				log.Fatal(err)
			}
			if err := reader.SyncAllViews(); err != nil {
				log.Fatal(err)
			}
		}
	}

	st := reader.Stats()
	fmt.Printf("%d gets: hit rate %.1f%%, mean read %v, p99 %v (simulated)\n",
		st.Reads, 100*st.HitRate(), st.ReadLatency.Mean, st.ReadLatency.P99)
	var promoted int
	for _, s := range pool.ServerStats() {
		promoted += s.Promoted
	}
	fmt.Printf("hot keys promoted into distributed DRAM buffers: %d\n", promoted)
}
