// Quickstart: open a Gengar pool, allocate global memory, write and read
// it back, and inspect what the cluster did. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gengar"
)

func main() {
	// A 4-server hybrid pool: Optane-profile NVM plus DRAM buffers,
	// with both Gengar mechanisms (hot-data caching, proxied writes) on.
	pool, err := gengar.Open(gengar.DefaultConfig())
	if err != nil {
		log.Fatalf("open pool: %v", err)
	}
	defer pool.Close()

	client, err := pool.NewClient("quickstart")
	if err != nil {
		log.Fatalf("connect: %v", err)
	}
	defer client.Close()

	// gmalloc: 4 KiB of global memory. The address encodes its home
	// server; reads and writes are one-sided RDMA to that server.
	addr, err := client.Malloc(4096)
	if err != nil {
		log.Fatalf("malloc: %v", err)
	}
	fmt.Printf("allocated 4 KiB at %v\n", addr)

	// gwrite: staged into the home server's DRAM ring at DRAM latency,
	// flushed to NVM in the background.
	msg := []byte("hello, distributed hybrid memory pool")
	if err := client.Write(addr, msg); err != nil {
		log.Fatalf("write: %v", err)
	}

	// gread: the client sees its own writes immediately.
	buf := make([]byte, len(msg))
	if err := client.Read(addr, buf); err != nil {
		log.Fatalf("read: %v", err)
	}
	fmt.Printf("read back: %q\n", buf)

	// Hammer the object so the hotness machinery promotes it into a
	// DRAM buffer, then force a view sync and read it again — this time
	// the read is served from DRAM.
	for i := 0; i < 512; i++ {
		if err := client.Read(addr, buf); err != nil {
			log.Fatalf("read: %v", err)
		}
	}
	if err := pool.Settle(); err != nil {
		log.Fatalf("settle: %v", err)
	}
	if err := client.SyncView(addr); err != nil {
		log.Fatalf("sync: %v", err)
	}
	if err := client.Read(addr, buf); err != nil {
		log.Fatalf("read: %v", err)
	}

	stats := client.Stats()
	fmt.Printf("client: %d reads (%d cache hits), %d writes\n",
		stats.Reads, stats.CacheHits, stats.Writes)
	fmt.Printf("read latency: %v mean / %v p99 (simulated)\n",
		stats.ReadLatency.Mean, stats.ReadLatency.P99)

	for i, s := range pool.ServerStats() {
		fmt.Printf("server %d: %d objects, %d promoted, %d staged writes flushed\n",
			i+1, s.Objects, s.Promoted, s.Proxy.Flushed)
	}

	if err := client.Free(addr); err != nil {
		log.Fatalf("free: %v", err)
	}
	fmt.Println("freed; done")
}
