GO ?= go

.PHONY: all build vet test race bench quick tidy clean

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Fast full-evaluation pass; writes CSVs + telemetry snapshots.
quick:
	$(GO) run ./cmd/gengar-bench -quick -outdir out

tidy:
	$(GO) mod tidy
	gofmt -w .

clean:
	rm -rf out
