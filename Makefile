GO ?= go

.PHONY: all build vet test race bench bench-full quick tidy clean

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Smoke pass over every experiment benchmark: one iteration each at
# Quick scale, so a broken experiment fails fast in CI.
bench:
	$(GO) test -short -bench=. -benchtime=1x -run=^$$ ./...

bench-full:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Fast full-evaluation pass; writes CSVs + telemetry snapshots.
quick:
	$(GO) run ./cmd/gengar-bench -quick -outdir out

tidy:
	$(GO) mod tidy
	gofmt -w .

clean:
	rm -rf out
