GO ?= go

.PHONY: all build vet lint lint-fast test race race-short bench bench-full bench-wire bench-scale bench-cluster bench-interference fuzz-wire e2e e2e-cluster trace-e2e quick tidy clean

all: vet lint build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Repo-specific invariant analyzers (locks across blocking ops, WQE
# buffer aliasing, telemetry hygiene, hotpath allocations, dropped
# errors, and the concurrency-protocol suite: atomic-mixed-access,
# cow-snapshot, seqlock-protocol, lock-order). Exits non-zero on any
# finding; see DESIGN.md "Static analysis" for the suppression syntax.
lint:
	$(GO) run ./cmd/gengar-lint ./...

# Pre-commit subset: just the two cheapest analyzers (single-function
# scans, no cross-package fact building), for a fast local signal.
lint-fast:
	$(GO) run ./cmd/gengar-lint -only hotpath-alloc,errcheck-core ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short-mode race pass: skips the whole-module self-lint and the long
# experiment sweeps, keeping the race detector on every core path.
race-short:
	$(GO) test -race -short ./...

# Smoke pass over every experiment benchmark: one iteration each at
# Quick scale, so a broken experiment fails fast in CI.
bench:
	$(GO) test -short -bench=. -benchtime=1x -run=^$$ ./...

bench-full:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Wire-level loopback smoke: one short iteration of each TCP data-plane
# benchmark (experiment E17), with allocation counts.
bench-wire:
	$(GO) test ./internal/tcpnet -run=^$$ -bench=BenchmarkTCP -benchmem -benchtime=100x

# Fan-in scaling smoke (experiment E19): cache-hit read throughput at
# 1/4/16 client connections, plus the parallel allocator and read-hit
# differential benchmarks the sharded hot-path work is gated on.
bench-scale:
	$(GO) test ./internal/tcpnet -run=^$$ -bench=BenchmarkTCPFanIn -short -benchtime=500x
	$(GO) test ./internal/engine -run=^$$ -bench=BenchmarkReadHitParallel -benchtime=1000x -cpu=1,4
	$(GO) test ./internal/alloc -run=^$$ -bench='BenchmarkBuddyParallel|BenchmarkShardedPoolParallel' -benchtime=1000x -cpu=1,4

# Distributed-cache scaling smoke (experiment E20): the DRAM-served
# read fraction as daemons join a loopback peer mesh; the full sweep
# (1..4 daemons) writes results/e20.csv via GENGAR_E20_CSV.
bench-cluster:
	$(GO) test ./internal/tcpnet -run=^$$ -bench=BenchmarkTCPDistributedCache -short -benchtime=500x

# Interference-aware flushing smoke (experiment E21): an aggressor
# staging overwrite-heavy bursts against a latency-sensitive reader,
# greedy vs adaptive pacing. The recorded run writes results/e21.csv
# plus the telemetry snapshot via `gengar-bench -exp E21 -outdir results`.
bench-interference:
	$(GO) run ./cmd/gengar-bench -exp E21 -quick

# Short coverage-guided pass over the frame reader's fuzz target; the
# checked-in corpus under internal/tcpnet/testdata/fuzz always runs as
# part of `make test`.
fuzz-wire:
	$(GO) test ./internal/tcpnet -run=^$$ -fuzz=^FuzzReadFrame$$ -fuzztime=10s

# Deployment-shaped smoke: builds the real gengard and gengar-cli
# binaries and drives malloc/write/read/lock/promotion/snapshot-restart
# over loopback TCP.
e2e:
	$(GO) test ./e2e/ -count=1 -v

# Distributed DRAM cache end to end: three real gengard daemons in a
# -peers mesh over loopback, the home arena sized so hot copies spill
# into peers' DRAM, then one peer SIGKILLed — every read must still
# succeed with zero client-visible errors.
e2e-cluster:
	$(GO) test ./e2e/ -run '^TestClusterSpillAndPeerDeath$$' -count=1 -v

# Tracing end-to-end: stitched client+server spans over a real gengard
# via /debug/trace, plus the in-process wire-extension negotiation and
# malformed-extension rejection tests.
trace-e2e:
	$(GO) test ./e2e/ -run '^TestTraceEndToEnd$$' -count=1 -v
	$(GO) test ./internal/tcpnet -run 'TestTraced|TestClientGatesTrace|TestServerRejectsMalformedTrace' -count=1

# Fast full-evaluation pass; writes CSVs + telemetry snapshots.
quick:
	$(GO) run ./cmd/gengar-bench -quick -outdir out

tidy:
	$(GO) mod tidy
	gofmt -w .

clean:
	rm -rf out
