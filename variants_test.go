package gengar_test

import (
	"bytes"
	"fmt"
	"testing"

	"gengar"
	"gengar/internal/trace"
)

// TestVariantsFunctionallyEquivalent replays one deterministic workload
// against every system variant and checks that the *functional* outcome
// — the final bytes of every live object — is identical. The variants
// (full Gengar, each ablation, the NVM-direct baseline) may differ only
// in timing; any divergence in data is a consistency bug in a mechanism
// (cache coherence, proxy ordering, write-through).
func TestVariantsFunctionallyEquivalent(t *testing.T) {
	ops := trace.Synthesize(2026, 24, 512, 400, 0.6, 0.25)

	// Live objects at the end of the trace, in a stable order.
	live := map[int64]int64{}
	for _, op := range ops {
		switch op.Kind {
		case trace.OpMalloc:
			live[op.Obj] = op.Len
		case trace.OpFree:
			delete(live, op.Obj)
		}
	}
	var order []int64
	for obj := int64(0); obj < 64; obj++ {
		if _, ok := live[obj]; ok {
			order = append(order, obj)
		}
	}
	if len(order) == 0 {
		t.Fatal("degenerate trace: nothing lives")
	}

	variants := []struct {
		name   string
		mutate func(*gengar.Config)
	}{
		{"gengar", func(*gengar.Config) {}},
		{"no-cache", func(c *gengar.Config) { c.Features.Cache = false }},
		{"no-proxy", func(c *gengar.Config) { c.Features.Proxy = false }},
		{"nvm-direct", func(c *gengar.Config) { c.Features = gengar.Features{} }},
	}

	var reference [][]byte
	for _, v := range variants {
		cfg := gengar.DefaultConfig()
		cfg.Servers = 2
		cfg.NVMBytes = 1 << 21
		cfg.DRAMBufferBytes = 1 << 14 // tiny: force churn and fallback paths
		cfg.Hotness.DigestEvery = 32
		v.mutate(&cfg)
		finals, err := replayAndCapture(cfg, ops, order, live)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		if reference == nil {
			reference = finals
			continue
		}
		for i := range finals {
			if !bytes.Equal(finals[i], reference[i]) {
				t.Fatalf("variant %s diverged from gengar on object %d", v.name, order[i])
			}
		}
	}
}

// replayAndCapture executes the trace on a fresh pool built from cfg —
// writing deterministic, op-derived content so every variant stores
// identical bytes — and returns the final contents of the objects in
// order.
func replayAndCapture(cfg gengar.Config, ops []trace.Op, order []int64, live map[int64]int64) ([][]byte, error) {
	pool, err := gengar.Open(cfg)
	if err != nil {
		return nil, err
	}
	defer pool.Close()
	client, err := pool.NewClient("replayer")
	if err != nil {
		return nil, err
	}
	defer client.Close()

	addrs := make(map[int64]gengar.GAddr)
	for i, op := range ops {
		switch op.Kind {
		case trace.OpMalloc:
			a, err := client.Malloc(op.Len)
			if err != nil {
				return nil, fmt.Errorf("op %d: %w", i, err)
			}
			addrs[op.Obj] = a
		case trace.OpFree:
			if err := client.Free(addrs[op.Obj]); err != nil {
				return nil, fmt.Errorf("op %d: %w", i, err)
			}
		case trace.OpRead:
			buf := make([]byte, op.Len)
			if err := client.Read(addrs[op.Obj].Add(op.Off), buf); err != nil {
				return nil, fmt.Errorf("op %d: %w", i, err)
			}
		case trace.OpWrite:
			data := make([]byte, op.Len)
			for j := range data {
				data[j] = byte(int64(i) + op.Obj + op.Off + int64(j))
			}
			if err := client.Write(addrs[op.Obj].Add(op.Off), data); err != nil {
				return nil, fmt.Errorf("op %d: %w", i, err)
			}
		case trace.OpLockX:
			if err := client.LockExclusive(addrs[op.Obj]); err != nil {
				return nil, fmt.Errorf("op %d: %w", i, err)
			}
		case trace.OpUnlockX:
			if err := client.UnlockExclusive(addrs[op.Obj]); err != nil {
				return nil, fmt.Errorf("op %d: %w", i, err)
			}
		case trace.OpLockS:
			if err := client.LockShared(addrs[op.Obj]); err != nil {
				return nil, fmt.Errorf("op %d: %w", i, err)
			}
		case trace.OpUnlockS:
			if err := client.UnlockShared(addrs[op.Obj]); err != nil {
				return nil, fmt.Errorf("op %d: %w", i, err)
			}
		}
	}

	finals := make([][]byte, 0, len(order))
	for _, obj := range order {
		buf := make([]byte, live[obj])
		if err := client.Read(addrs[obj], buf); err != nil {
			return nil, err
		}
		finals = append(finals, buf)
	}
	return finals, nil
}
