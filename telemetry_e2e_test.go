package gengar_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gengar"
	"gengar/internal/telemetry"
)

// TestTelemetryEndToEnd drives a small workload through the public API
// and checks that the full telemetry path lights up: cache hits and
// proxy flushes appear in the registry, the flight recorder holds the
// ops, and the HTTP debug endpoint serves it all in Prometheus format.
func TestTelemetryEndToEnd(t *testing.T) {
	cfg := gengar.DefaultConfig()
	cfg.Servers = 2
	cfg.NVMBytes = 1 << 20
	cfg.DRAMBufferBytes = 1 << 16
	cfg.RingBytes = 1 << 23
	cfg.Hotness.DigestEvery = 8
	cfg.Hotness.PlanEvery = time.Microsecond
	cfg.Hotness.MinWeight = 2
	p, err := gengar.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c, err := p.NewClient("app")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	addr, err := c.MallocOn(1, 1024)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 1024)
	for i := range data {
		data[i] = byte(i)
	}
	if err := c.Write(addr, data); err != nil {
		t.Fatal(err)
	}
	// Hammer the object hot so it gets promoted, then quiesce twice so
	// the promotion plan lands and the client's remap view catches up.
	buf := make([]byte, 1024)
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < 32; i++ {
			if err := c.Read(addr, buf); err != nil {
				t.Fatal(err)
			}
		}
		if err := p.Settle(); err != nil {
			t.Fatal(err)
		}
		if err := c.SyncView(addr); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		if err := c.Read(addr, buf); err != nil {
			t.Fatal(err)
		}
	}

	snap := p.Telemetry().Snapshot()
	if hits := snap.Sum("gengar_client_cache_hits_total"); hits == 0 {
		t.Error("no cache hits recorded")
	}
	if flushed := snap.Sum("gengar_proxy_flushed_total"); flushed == 0 {
		t.Error("no proxy flushes recorded")
	}
	if verbs := snap.Sum("gengar_rdma_verbs_total"); verbs == 0 {
		t.Error("no RDMA verbs recorded")
	}
	if s, ok := snap.Find("gengar_client_reads_total", telemetry.L("client", "app")); !ok || s.Value == 0 {
		t.Errorf("per-client read counter: %+v ok=%v", s, ok)
	}
	// Registry-backed Stats views agree with the registry itself.
	if st := c.Stats(); st.CacheHits != snap.Sum("gengar_client_cache_hits_total") {
		t.Errorf("ClientStats hits %d != registry %d", st.CacheHits, snap.Sum("gengar_client_cache_hits_total"))
	}

	// The flight recorder saw the ops, including cache-hit reads.
	rec := p.FlightRecorder()
	if rec.Total() == 0 {
		t.Fatal("no flight events recorded")
	}
	var sawHit, sawWrite bool
	for _, e := range rec.Events() {
		if e.Op == "read" && e.Hit {
			sawHit = true
		}
		if e.Op == "write" && e.Path == "proxy_ring" {
			sawWrite = true
		}
	}
	if !sawHit {
		t.Error("no cache-hit read event in flight recorder")
	}
	if !sawWrite {
		t.Error("no proxied-write event in flight recorder")
	}

	// The debug endpoint serves it all: Prometheus text with at least
	// one counter, gauge and histogram (summary) family.
	srv := httptest.NewServer(telemetry.Handler(p.Telemetry(), rec))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"# TYPE gengar_client_reads_total counter",
		"# TYPE gengar_server_pool_used_bytes gauge",
		"# TYPE gengar_client_read_latency_seconds summary",
		`verb="read"`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	resp, err = http.Get(srv.URL + "/debug/events?n=4")
	if err != nil {
		t.Fatal(err)
	}
	events, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if lines := strings.Count(strings.TrimSpace(string(events)), "\n") + 1; lines != 4 {
		t.Errorf("/debug/events?n=4 returned %d lines", lines)
	}
}

// TestTelemetryIsolatedPerPool guards the per-cluster registry design:
// two concurrent pools must not share instruments.
func TestTelemetryIsolatedPerPool(t *testing.T) {
	cfg := gengar.DefaultConfig()
	cfg.Servers = 1
	cfg.NVMBytes = 1 << 20
	cfg.DRAMBufferBytes = 1 << 16
	cfg.RingBytes = 1 << 22
	p1, err := gengar.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p1.Close()
	p2, err := gengar.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()

	c1, err := p1.NewClient("app")
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	addr, err := c1.Malloc(256)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Write(addr, make([]byte, 256)); err != nil {
		t.Fatal(err)
	}

	if n := p1.Telemetry().Snapshot().Sum("gengar_client_writes_total"); n != 1 {
		t.Fatalf("pool 1 writes = %d", n)
	}
	if n := p2.Telemetry().Snapshot().Sum("gengar_client_writes_total"); n != 0 {
		t.Fatalf("pool 2 leaked %d writes from pool 1", n)
	}
	if p2.FlightRecorder().Total() != 0 {
		t.Fatal("pool 2 leaked flight events from pool 1")
	}
}
