// Benchmarks regenerating the evaluation tables and figures (E1–E12 in
// DESIGN.md), one per artifact. Each iteration executes the full
// experiment at the reduced Quick scale and reports its wall cost;
// `cmd/gengar-bench` runs the same experiments at Full scale and prints
// the tables recorded in EXPERIMENTS.md.
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkE07YCSB
package gengar_test

import (
	"testing"

	"gengar/internal/bench"
)

func runExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		t, err := bench.Run(id, bench.Quick())
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(t.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// BenchmarkE01ReadLatency regenerates E1: remote read latency vs
// transfer size, NVM vs DRAM (motivation figure).
func BenchmarkE01ReadLatency(b *testing.B) { runExperiment(b, "E1") }

// BenchmarkE02WriteLatency regenerates E2: remote durable-write latency
// vs transfer size, NVM vs DRAM (motivation figure).
func BenchmarkE02WriteLatency(b *testing.B) { runExperiment(b, "E2") }

// BenchmarkE03SkewRead regenerates E3: read latency vs zipfian skew for
// Gengar, NVM-Direct and DRAM-Pool.
func BenchmarkE03SkewRead(b *testing.B) { runExperiment(b, "E3") }

// BenchmarkE04ProxyWrite regenerates E4: write latency by size, proxied
// staging vs direct NVM.
func BenchmarkE04ProxyWrite(b *testing.B) { runExperiment(b, "E4") }

// BenchmarkE05ClientScale regenerates E5: read-heavy throughput vs
// client count.
func BenchmarkE05ClientScale(b *testing.B) { runExperiment(b, "E5") }

// BenchmarkE06WriteScale regenerates E6: update-only throughput vs
// client count (staging-ring backpressure knee).
func BenchmarkE06WriteScale(b *testing.B) { runExperiment(b, "E6") }

// BenchmarkE07YCSB regenerates E7: the headline YCSB A–F comparison.
func BenchmarkE07YCSB(b *testing.B) { runExperiment(b, "E7") }

// BenchmarkE08BufferSize regenerates E8: DRAM buffer capacity
// sensitivity.
func BenchmarkE08BufferSize(b *testing.B) { runExperiment(b, "E8") }

// BenchmarkE09Hotness regenerates E9: hotness identification ablation
// (digest period, sketch size).
func BenchmarkE09Hotness(b *testing.B) { runExperiment(b, "E9") }

// BenchmarkE10Sharing regenerates E10: multi-user locked-RMW sharing
// sweep.
func BenchmarkE10Sharing(b *testing.B) { runExperiment(b, "E10") }

// BenchmarkE11MapReduce regenerates E11: MapReduce job completion times.
func BenchmarkE11MapReduce(b *testing.B) { runExperiment(b, "E11") }

// BenchmarkE12Ablation regenerates E12: mechanism ablation on YCSB-A.
func BenchmarkE12Ablation(b *testing.B) { runExperiment(b, "E12") }

// BenchmarkE13ClientCache regenerates E13: server-side vs client-side
// caching (the architectural extension ablation).
func BenchmarkE13ClientCache(b *testing.B) { runExperiment(b, "E13") }

// BenchmarkE14NVMSensitivity regenerates E14: how Gengar's advantage
// tracks the NVM/DRAM asymmetry (technology sweep).
func BenchmarkE14NVMSensitivity(b *testing.B) { runExperiment(b, "E14") }

// BenchmarkE15ScanBatching regenerates E15: doorbell-batched scans vs
// sequential reads.
func BenchmarkE15ScanBatching(b *testing.B) { runExperiment(b, "E15") }

// BenchmarkE16WriteBatching regenerates E16: doorbell-batched write
// bursts vs sequential writes, proxied and direct.
func BenchmarkE16WriteBatching(b *testing.B) { runExperiment(b, "E16") }

// BenchmarkE18LatencyAnatomy regenerates E18: per-stage latency
// attribution across the four serving paths (E17 is the tcpnet wire
// benchmark suite, not a harness experiment).
func BenchmarkE18LatencyAnatomy(b *testing.B) { runExperiment(b, "E18") }

// BenchmarkE21Interference regenerates E21: aggressor write bursts vs a
// latency-sensitive reader, greedy vs adaptive flush pacing.
func BenchmarkE21Interference(b *testing.B) { runExperiment(b, "E21") }
