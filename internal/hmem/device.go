package hmem

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"gengar/internal/simnet"
)

// Device is one memory device: a real backing buffer plus a timing model.
// All accesses are bounds-checked; out-of-range accesses return
// *RangeError rather than panicking, because in a distributed memory pool
// a bad offset is a peer bug, not a local programming error.
//
// The contended portion of each access (controller occupancy) serializes
// on an internal simnet.Resource; the pipelined latency portion is added
// afterwards, so concurrent accesses overlap their latencies but compete
// for bandwidth — matching how real DIMMs behave under load.
type Device struct {
	name    string
	profile MediaProfile
	ctrl    *simnet.Resource

	// readObserver, when set, sees every timed Read's instants and size.
	// The proxy pacer installs it on the NVM pool to watch foreground
	// read pressure — including one-sided RDMA reads that never pass
	// through the engine. It runs on the reader with no device locks
	// held, so it must be cheap and never block.
	readObserver atomic.Value // of ReadObserver

	// Write accounting for the bandwidth meter: totals of bytes written,
	// controller occupancy charged, and timed write ops.
	wrBytes atomic.Int64
	wrBusy  atomic.Int64
	wrOps   atomic.Int64

	mu  sync.RWMutex // guards buf contents
	buf []byte
}

// ReadObserver receives one timed read: its arrival and completion
// instants and the byte count.
type ReadObserver func(at, end simnet.Time, n int)

// WriteStats is a snapshot of a device's timed-write accounting.
type WriteStats struct {
	Bytes int64           // payload bytes written
	Busy  simnet.Duration // controller occupancy charged
	Ops   int64           // timed write operations
}

// RangeError reports an access outside a device's address range.
type RangeError struct {
	Device string
	Off    int64
	Len    int
	Size   int64
}

// Error implements the error interface.
func (e *RangeError) Error() string {
	return fmt.Sprintf("hmem: access [%d,%d) out of range on %s (size %d)",
		e.Off, e.Off+int64(e.Len), e.Device, e.Size)
}

// NewDevice returns a zero-filled device of the given size with the given
// timing model. It returns an error if the profile is invalid or the size
// is not positive.
func NewDevice(name string, size int64, profile MediaProfile) (*Device, error) {
	if err := profile.Validate(); err != nil {
		return nil, err
	}
	if size <= 0 {
		return nil, fmt.Errorf("hmem: non-positive device size %d", size)
	}
	return &Device{
		name:    name,
		profile: profile,
		ctrl:    simnet.NewResource(name + "/ctrl"),
		buf:     make([]byte, size),
	}, nil
}

// Name returns the device's diagnostic name.
func (d *Device) Name() string { return d.name }

// Kind returns the device's media kind.
func (d *Device) Kind() Kind { return d.profile.Kind }

// Size returns the device capacity in bytes.
func (d *Device) Size() int64 { return int64(len(d.buf)) }

// Profile returns the device's timing model.
func (d *Device) Profile() MediaProfile { return d.profile }

// ControllerStats returns usage statistics of the device controller —
// useful for measuring bandwidth saturation in experiments.
func (d *Device) ControllerStats() simnet.ResourceStats { return d.ctrl.Stats() }

// ControllerBusyUntil returns the device controller's watermark: the
// instant its already-accepted work completes. The proxy pacer bounds
// how far flushing may push this past the foreground.
func (d *Device) ControllerBusyUntil() simnet.Time { return d.ctrl.BusyUntil() }

// SetReadObserver installs the hook invoked after every timed Read.
// Pass nil-safe functions only; the hook runs on the reading goroutine.
func (d *Device) SetReadObserver(fn ReadObserver) {
	if fn != nil {
		d.readObserver.Store(fn)
	}
}

// WriteStats returns a snapshot of the device's timed-write accounting.
func (d *Device) WriteStats() WriteStats {
	return WriteStats{
		Bytes: d.wrBytes.Load(),
		Busy:  simnet.Duration(d.wrBusy.Load()),
		Ops:   d.wrOps.Load(),
	}
}

func (d *Device) check(off int64, n int) error {
	if off < 0 || n < 0 || off+int64(n) > int64(len(d.buf)) {
		return &RangeError{Device: d.name, Off: off, Len: n, Size: int64(len(d.buf))}
	}
	return nil
}

// Read copies len(dst) bytes starting at off into dst, charging the
// device's read cost from simulated time at. It returns the completion
// instant.
func (d *Device) Read(at simnet.Time, off int64, dst []byte) (simnet.Time, error) {
	if err := d.check(off, len(dst)); err != nil {
		return at, err
	}
	_, end := d.ctrl.Acquire(at, d.profile.ReadOccupancy(len(dst)))
	d.mu.RLock()
	copy(dst, d.buf[off:off+int64(len(dst))])
	d.mu.RUnlock()
	done := end.Add(d.profile.ReadLatency)
	if fn, ok := d.readObserver.Load().(ReadObserver); ok {
		fn(at, done, len(dst))
	}
	return done, nil
}

// Write copies src into the device starting at off, charging the device's
// write cost from simulated time at. It returns the completion instant —
// for NVM the instant the data is in the persistence (ADR) domain.
func (d *Device) Write(at simnet.Time, off int64, src []byte) (simnet.Time, error) {
	if err := d.check(off, len(src)); err != nil {
		return at, err
	}
	occ := d.profile.WriteOccupancy(len(src))
	_, end := d.ctrl.Acquire(at, occ)
	d.mu.Lock()
	copy(d.buf[off:off+int64(len(src))], src)
	d.mu.Unlock()
	d.wrBytes.Add(int64(len(src)))
	d.wrBusy.Add(int64(occ))
	d.wrOps.Add(1)
	return end.Add(d.profile.WriteLatency), nil
}

// CompareAndSwap64 atomically compares the 8-byte big-endian word at off
// with old and, if equal, replaces it with new. It returns the previous
// value and the completion instant. The offset must be 8-byte aligned.
func (d *Device) CompareAndSwap64(at simnet.Time, off int64, old, new uint64) (prev uint64, end simnet.Time, err error) {
	if off%8 != 0 {
		return 0, at, fmt.Errorf("hmem: unaligned CAS offset %d on %s", off, d.name)
	}
	if err := d.check(off, 8); err != nil {
		return 0, at, err
	}
	_, e := d.ctrl.Acquire(at, d.profile.WriteOccupancy(8))
	d.mu.Lock()
	prev = binary.BigEndian.Uint64(d.buf[off:])
	if prev == old {
		binary.BigEndian.PutUint64(d.buf[off:], new)
	}
	d.mu.Unlock()
	return prev, e.Add(d.profile.WriteLatency), nil
}

// FetchAdd64 atomically adds delta to the 8-byte big-endian word at off
// and returns the previous value and the completion instant. The offset
// must be 8-byte aligned.
func (d *Device) FetchAdd64(at simnet.Time, off int64, delta uint64) (prev uint64, end simnet.Time, err error) {
	if off%8 != 0 {
		return 0, at, fmt.Errorf("hmem: unaligned fetch-add offset %d on %s", off, d.name)
	}
	if err := d.check(off, 8); err != nil {
		return 0, at, err
	}
	_, e := d.ctrl.Acquire(at, d.profile.WriteOccupancy(8))
	d.mu.Lock()
	prev = binary.BigEndian.Uint64(d.buf[off:])
	binary.BigEndian.PutUint64(d.buf[off:], prev+delta)
	d.mu.Unlock()
	return prev, e.Add(d.profile.WriteLatency), nil
}

// ReadRaw copies bytes without charging simulated time. It is intended
// for test assertions and server-internal bookkeeping that the paper's
// hardware would do with local loads outside the measured path.
func (d *Device) ReadRaw(off int64, dst []byte) error {
	if err := d.check(off, len(dst)); err != nil {
		return err
	}
	d.mu.RLock()
	copy(dst, d.buf[off:off+int64(len(dst))])
	d.mu.RUnlock()
	return nil
}

// WriteRaw copies bytes without charging simulated time; see ReadRaw.
func (d *Device) WriteRaw(off int64, src []byte) error {
	if err := d.check(off, len(src)); err != nil {
		return err
	}
	d.mu.Lock()
	copy(d.buf[off:off+int64(len(src))], src)
	d.mu.Unlock()
	return nil
}
