package hmem

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func newWordsDevice(t *testing.T) *Device {
	t.Helper()
	d, err := NewDevice("words-test", 4096, DRAMProfile())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestWordOpsRoundTrip(t *testing.T) {
	d := newWordsDevice(t)
	if err := d.StoreWordRaw(64, 0xDEADBEEFCAFEF00D); err != nil {
		t.Fatal(err)
	}
	v, err := d.LoadWordRaw(64)
	if err != nil || v != 0xDEADBEEFCAFEF00D {
		t.Fatalf("LoadWordRaw = %x, %v", v, err)
	}
	ok, err := d.CompareAndSwapWordRaw(64, 0xDEADBEEFCAFEF00D, 7)
	if err != nil || !ok {
		t.Fatalf("CAS: %v %v", ok, err)
	}
	if ok, _ := d.CompareAndSwapWordRaw(64, 1, 2); ok {
		t.Fatal("CAS with wrong expectation succeeded")
	}
	if v, _ := d.LoadWordRaw(64); v != 7 {
		t.Fatalf("after CAS: %d", v)
	}
}

func TestWordOpsRejectUnalignedAndOutOfRange(t *testing.T) {
	d := newWordsDevice(t)
	if _, err := d.LoadWordRaw(3); err == nil {
		t.Fatal("unaligned load accepted")
	}
	if err := d.StoreWordRaw(4092, 1); err == nil {
		t.Fatal("partially out-of-range store accepted")
	}
	if _, err := d.CompareAndSwapWordRaw(12, 0, 1); err == nil {
		t.Fatal("unaligned CAS accepted")
	}
	if err := d.ReadWordsRaw(4090, make([]byte, 16)); err == nil {
		t.Fatal("out-of-range word read accepted")
	}
}

// TestWordsBulkMatchesPlain drives WriteWordsRaw/ReadWordsRaw over every
// small offset/length combination against plain raw access, covering
// both partial edge words and full interior words.
func TestWordsBulkMatchesPlain(t *testing.T) {
	d := newWordsDevice(t)
	pattern := make([]byte, 64)
	for i := range pattern {
		pattern[i] = byte(i + 1)
	}
	for off := int64(0); off < 16; off++ {
		for n := 0; n <= 40; n++ {
			// Reset a window, write via words, read back plainly.
			if err := d.WriteRaw(0, make([]byte, 128)); err != nil {
				t.Fatal(err)
			}
			if err := d.WriteWordsRaw(off, pattern[:n]); err != nil {
				t.Fatalf("write off=%d n=%d: %v", off, n, err)
			}
			got := make([]byte, n)
			if err := d.ReadRaw(off, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, pattern[:n]) {
				t.Fatalf("write off=%d n=%d: got %x", off, n, got)
			}
			// Bytes around the window stay zero.
			ring := make([]byte, 128)
			if err := d.ReadRaw(0, ring); err != nil {
				t.Fatal(err)
			}
			for i, b := range ring {
				inside := int64(i) >= off && int64(i) < off+int64(n)
				if !inside && b != 0 {
					t.Fatalf("write off=%d n=%d disturbed byte %d", off, n, i)
				}
			}
			// And the atomic read view agrees.
			got2 := make([]byte, n)
			if err := d.ReadWordsRaw(off, got2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got2, pattern[:n]) {
				t.Fatalf("ReadWordsRaw off=%d n=%d: got %x", off, n, got2)
			}
		}
	}
}

func TestBEWordMatchesBigEndianEncoding(t *testing.T) {
	d := newWordsDevice(t)
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], 0x0102030405060708)
	if err := d.WriteRaw(0, buf[:]); err != nil {
		t.Fatal(err)
	}
	w, err := d.LoadWordRaw(0)
	if err != nil {
		t.Fatal(err)
	}
	if w != BEWord(0x0102030405060708) {
		t.Fatalf("BEWord mismatch: word %x, BEWord %x", w, BEWord(0x0102030405060708))
	}
}
