// Package hmem models byte-addressable hybrid memory devices: DRAM and
// NVM (Optane DC PMM class) with distinct latency, bandwidth and write
// granularity. Devices carry real backing buffers, so every simulated
// access also moves real bytes and protocol correctness is testable
// end-to-end; timing is charged in simulated nanoseconds via simnet.
package hmem

import (
	"fmt"
	"time"
)

// Kind distinguishes memory media classes.
type Kind int

// Media kinds. The zero value is invalid so that an unset profile is
// caught by Validate.
const (
	KindDRAM Kind = iota + 1
	KindNVM
)

// String returns the conventional short name of the media kind.
func (k Kind) String() string {
	switch k {
	case KindDRAM:
		return "DRAM"
	case KindNVM:
		return "NVM"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// MediaProfile is the timing model of one memory device.
//
// Latency is the pipelined access time (two concurrent accesses each
// observe it once); occupancy — the per-operation overhead plus the block
// transfer time at the device's bandwidth — is what serializes on the
// device and therefore what limits throughput. NVM devices additionally
// amplify small writes to their internal block granularity (256 B on
// Optane DC PMM), which is why small remote writes to NVM are
// disproportionately expensive — the asymmetry Gengar's proxy exploits.
type MediaProfile struct {
	Kind Kind

	ReadLatency  time.Duration // pipelined media read latency
	WriteLatency time.Duration // pipelined media write latency (to ADR domain for NVM)

	ReadBytesPerSec  float64 // sustained read bandwidth
	WriteBytesPerSec float64 // sustained write bandwidth

	OpOverhead time.Duration // per-operation occupancy (controller slot)

	// AccessBlock is the internal access granularity in bytes. Transfers
	// are rounded up to a multiple of it when computing occupancy. Zero
	// means byte granularity.
	AccessBlock int
}

// Validate reports whether the profile is complete and physically
// meaningful.
func (p MediaProfile) Validate() error {
	switch p.Kind {
	case KindDRAM, KindNVM:
	default:
		return fmt.Errorf("hmem: invalid media kind %v", p.Kind)
	}
	if p.ReadLatency < 0 || p.WriteLatency < 0 || p.OpOverhead < 0 {
		return fmt.Errorf("hmem: negative latency in profile %+v", p)
	}
	if p.ReadBytesPerSec <= 0 || p.WriteBytesPerSec <= 0 {
		return fmt.Errorf("hmem: non-positive bandwidth in profile %+v", p)
	}
	if p.AccessBlock < 0 {
		return fmt.Errorf("hmem: negative access block %d", p.AccessBlock)
	}
	return nil
}

// blockedSize rounds n up to the device's access granularity.
func (p MediaProfile) blockedSize(n int) int {
	if p.AccessBlock <= 1 || n <= 0 {
		return n
	}
	blocks := (n + p.AccessBlock - 1) / p.AccessBlock
	return blocks * p.AccessBlock
}

// ReadOccupancy returns how long a read of n bytes occupies the device
// controller: the serialized portion that limits read throughput.
func (p MediaProfile) ReadOccupancy(n int) time.Duration {
	return p.OpOverhead + transferTime(p.blockedSize(n), p.ReadBytesPerSec)
}

// WriteOccupancy returns how long a write of n bytes occupies the device
// controller, including write amplification to the access block.
func (p MediaProfile) WriteOccupancy(n int) time.Duration {
	return p.OpOverhead + transferTime(p.blockedSize(n), p.WriteBytesPerSec)
}

// ReadTime returns the unloaded end-to-end latency of a read of n bytes.
func (p MediaProfile) ReadTime(n int) time.Duration {
	return p.ReadLatency + p.ReadOccupancy(n)
}

// WriteTime returns the unloaded end-to-end latency of a write of n bytes.
func (p MediaProfile) WriteTime(n int) time.Duration {
	return p.WriteLatency + p.WriteOccupancy(n)
}

func transferTime(n int, bytesPerSec float64) time.Duration {
	if n <= 0 || bytesPerSec <= 0 {
		return 0
	}
	return time.Duration(float64(n) / bytesPerSec * float64(time.Second))
}

// DRAMProfile returns a DDR4-class DRAM timing model: ~80 ns pipelined
// access, ~38 GB/s per channel-set.
func DRAMProfile() MediaProfile {
	return MediaProfile{
		Kind:             KindDRAM,
		ReadLatency:      80 * time.Nanosecond,
		WriteLatency:     80 * time.Nanosecond,
		ReadBytesPerSec:  38e9,
		WriteBytesPerSec: 38e9,
		OpOverhead:       5 * time.Nanosecond,
		AccessBlock:      64, // cache line
	}
}

// OptaneProfile returns an Intel Optane DC PMM timing model following
// the published single-DIMM measurements ("Basic Performance
// Measurements of the Intel Optane DC Persistent Memory Module",
// Izraelevitz et al.): ~300 ns random read latency, ~100 ns write into
// the ADR write-pending queue, ~2.4 GB/s random-access read bandwidth
// (sequential reaches ~6.5, but a memory pool's access stream is
// random), ~2 GB/s write bandwidth, 256 B internal (XPLine) granularity.
func OptaneProfile() MediaProfile {
	return MediaProfile{
		Kind:             KindNVM,
		ReadLatency:      300 * time.Nanosecond,
		WriteLatency:     100 * time.Nanosecond,
		ReadBytesPerSec:  2.4e9,
		WriteBytesPerSec: 2.0e9,
		OpOverhead:       10 * time.Nanosecond,
		AccessBlock:      256, // XPLine
	}
}
