package hmem

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func newTestDevice(t *testing.T, kind Kind, size int64) *Device {
	t.Helper()
	p := DRAMProfile()
	if kind == KindNVM {
		p = OptaneProfile()
	}
	d, err := NewDevice("test", size, p)
	if err != nil {
		t.Fatalf("NewDevice: %v", err)
	}
	return d
}

func TestNewDeviceValidation(t *testing.T) {
	if _, err := NewDevice("x", 0, DRAMProfile()); err == nil {
		t.Fatal("zero size accepted")
	}
	if _, err := NewDevice("x", 100, MediaProfile{}); err == nil {
		t.Fatal("invalid profile accepted")
	}
}

func TestDeviceAccessors(t *testing.T) {
	d := newTestDevice(t, KindNVM, 4096)
	if d.Name() != "test" || d.Kind() != KindNVM || d.Size() != 4096 {
		t.Fatalf("accessors: %s %v %d", d.Name(), d.Kind(), d.Size())
	}
	if d.Profile().Kind != KindNVM {
		t.Fatal("profile kind")
	}
}

func TestReadWriteRoundtrip(t *testing.T) {
	d := newTestDevice(t, KindDRAM, 1<<16)
	src := []byte("hello hybrid memory")
	end, err := d.Write(0, 100, src)
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	if end <= 0 {
		t.Fatal("write charged no time")
	}
	dst := make([]byte, len(src))
	end2, err := d.Read(end, 100, dst)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if end2 <= end {
		t.Fatal("read charged no time")
	}
	if !bytes.Equal(src, dst) {
		t.Fatalf("roundtrip mismatch: %q != %q", dst, src)
	}
}

func TestOutOfRange(t *testing.T) {
	d := newTestDevice(t, KindDRAM, 128)
	buf := make([]byte, 64)
	var re *RangeError
	if _, err := d.Read(0, 100, buf); !errors.As(err, &re) {
		t.Fatalf("Read OOB error = %v, want RangeError", err)
	}
	if re.Off != 100 || re.Len != 64 || re.Size != 128 {
		t.Fatalf("RangeError fields: %+v", re)
	}
	if re.Error() == "" {
		t.Fatal("empty error string")
	}
	if _, err := d.Write(0, -1, buf); !errors.As(err, &re) {
		t.Fatal("negative offset accepted")
	}
	if err := d.ReadRaw(65, buf); !errors.As(err, &re) {
		t.Fatal("ReadRaw OOB accepted")
	}
	if err := d.WriteRaw(65, buf); !errors.As(err, &re) {
		t.Fatal("WriteRaw OOB accepted")
	}
}

func TestRawBypassesTiming(t *testing.T) {
	d := newTestDevice(t, KindNVM, 1024)
	if err := d.WriteRaw(0, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 3)
	if err := d.ReadRaw(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatal("raw roundtrip mismatch")
	}
	if st := d.ControllerStats(); st.Ops != 0 {
		t.Fatalf("raw access charged controller time: %+v", st)
	}
}

func TestNVMWriteSlowerUnderLoad(t *testing.T) {
	// With many concurrent 4 KiB writes the NVM device saturates at its
	// write bandwidth while DRAM absorbs the same load far faster.
	load := func(d *Device) (makespan int64) {
		buf := make([]byte, 4096)
		var last int64
		for i := 0; i < 64; i++ {
			end, err := d.Write(0, int64(i)*4096, buf)
			if err != nil {
				t.Fatal(err)
			}
			if int64(end) > last {
				last = int64(end)
			}
		}
		return last
	}
	nvm := newTestDevice(t, KindNVM, 1<<20)
	dram := newTestDevice(t, KindDRAM, 1<<20)
	if n, d := load(nvm), load(dram); n < 5*d {
		t.Fatalf("NVM makespan %d not >5x DRAM %d under write load", n, d)
	}
}

func TestCompareAndSwap64(t *testing.T) {
	d := newTestDevice(t, KindDRAM, 1024)
	// Successful CAS.
	prev, _, err := d.CompareAndSwap64(0, 64, 0, 42)
	if err != nil || prev != 0 {
		t.Fatalf("CAS: prev=%d err=%v", prev, err)
	}
	var word [8]byte
	if err := d.ReadRaw(64, word[:]); err != nil {
		t.Fatal(err)
	}
	if binary.BigEndian.Uint64(word[:]) != 42 {
		t.Fatal("CAS did not store")
	}
	// Failed CAS leaves memory unchanged and reports the witness.
	prev, _, err = d.CompareAndSwap64(0, 64, 0, 99)
	if err != nil || prev != 42 {
		t.Fatalf("failed CAS: prev=%d err=%v", prev, err)
	}
	if err := d.ReadRaw(64, word[:]); err != nil {
		t.Fatal(err)
	}
	if binary.BigEndian.Uint64(word[:]) != 42 {
		t.Fatal("failed CAS mutated memory")
	}
	// Alignment and bounds.
	if _, _, err := d.CompareAndSwap64(0, 3, 0, 1); err == nil {
		t.Fatal("unaligned CAS accepted")
	}
	if _, _, err := d.CompareAndSwap64(0, 1024, 0, 1); err == nil {
		t.Fatal("OOB CAS accepted")
	}
}

func TestFetchAdd64(t *testing.T) {
	d := newTestDevice(t, KindDRAM, 1024)
	for i := uint64(0); i < 5; i++ {
		prev, _, err := d.FetchAdd64(0, 8, 3)
		if err != nil {
			t.Fatal(err)
		}
		if prev != i*3 {
			t.Fatalf("FetchAdd prev = %d, want %d", prev, i*3)
		}
	}
	if _, _, err := d.FetchAdd64(0, 5, 1); err == nil {
		t.Fatal("unaligned fetch-add accepted")
	}
	if _, _, err := d.FetchAdd64(0, 2000, 1); err == nil {
		t.Fatal("OOB fetch-add accepted")
	}
}

func TestCASMutualExclusion(t *testing.T) {
	// Property: using CAS as a spinlock, increments never lose updates.
	d := newTestDevice(t, KindDRAM, 64)
	const (
		goroutines = 8
		perG       = 100
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				for {
					prev, _, err := d.CompareAndSwap64(0, 0, 0, 1)
					if err != nil {
						t.Error(err)
						return
					}
					if prev == 0 {
						break
					}
				}
				var w [8]byte
				if err := d.ReadRaw(8, w[:]); err != nil {
					t.Error(err)
					return
				}
				binary.BigEndian.PutUint64(w[:], binary.BigEndian.Uint64(w[:])+1)
				if err := d.WriteRaw(8, w[:]); err != nil {
					t.Error(err)
					return
				}
				if _, _, err := d.CompareAndSwap64(0, 0, 1, 0); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	var w [8]byte
	if err := d.ReadRaw(8, w[:]); err != nil {
		t.Fatal(err)
	}
	if got := binary.BigEndian.Uint64(w[:]); got != goroutines*perG {
		t.Fatalf("lost updates: counter = %d, want %d", got, goroutines*perG)
	}
}

func TestDeviceDataIntegrityProperty(t *testing.T) {
	// Property: a random sequence of writes followed by reads matches an
	// in-memory reference model.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const size = 4096
		d, err := NewDevice("p", size, DRAMProfile())
		if err != nil {
			return false
		}
		ref := make([]byte, size)
		for i := 0; i < 50; i++ {
			off := rng.Int63n(size - 64)
			n := 1 + rng.Intn(64)
			buf := make([]byte, n)
			rng.Read(buf)
			if _, err := d.Write(0, off, buf); err != nil {
				return false
			}
			copy(ref[off:off+int64(n)], buf)
		}
		got := make([]byte, size)
		if _, err := d.Read(0, 0, got); err != nil {
			return false
		}
		return bytes.Equal(got, ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
