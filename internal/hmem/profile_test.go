package hmem

import (
	"testing"
	"testing/quick"
	"time"
)

func TestKindString(t *testing.T) {
	if KindDRAM.String() != "DRAM" || KindNVM.String() != "NVM" {
		t.Fatal("kind names wrong")
	}
	if Kind(0).String() != "Kind(0)" {
		t.Fatalf("zero kind = %q", Kind(0).String())
	}
}

func TestProfileValidate(t *testing.T) {
	for _, p := range []MediaProfile{DRAMProfile(), OptaneProfile()} {
		if err := p.Validate(); err != nil {
			t.Fatalf("preset %v invalid: %v", p.Kind, err)
		}
	}
	cases := map[string]MediaProfile{
		"zero kind":    {ReadBytesPerSec: 1, WriteBytesPerSec: 1},
		"zero bw":      {Kind: KindDRAM, WriteBytesPerSec: 1},
		"neg latency":  {Kind: KindDRAM, ReadLatency: -1, ReadBytesPerSec: 1, WriteBytesPerSec: 1},
		"neg block":    {Kind: KindNVM, ReadBytesPerSec: 1, WriteBytesPerSec: 1, AccessBlock: -1},
		"neg overhead": {Kind: KindNVM, ReadBytesPerSec: 1, WriteBytesPerSec: 1, OpOverhead: -1},
	}
	for name, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("%s: invalid profile accepted", name)
		}
	}
}

func TestWriteAmplification(t *testing.T) {
	p := OptaneProfile()
	// A 1-byte write and a 256-byte write occupy the controller equally:
	// both are one XPLine.
	if p.WriteOccupancy(1) != p.WriteOccupancy(256) {
		t.Fatalf("1B occupancy %v != 256B occupancy %v",
			p.WriteOccupancy(1), p.WriteOccupancy(256))
	}
	// 257 bytes needs two lines, so strictly more.
	if p.WriteOccupancy(257) <= p.WriteOccupancy(256) {
		t.Fatal("257B write not amplified to two blocks")
	}
}

func TestNVMSlowerThanDRAM(t *testing.T) {
	// The asymmetry the whole system design rests on.
	nvm, dram := OptaneProfile(), DRAMProfile()
	if nvm.ReadTime(1024) <= dram.ReadTime(1024) {
		t.Fatal("NVM read should be slower than DRAM")
	}
	if nvm.WriteOccupancy(4096) <= dram.WriteOccupancy(4096) {
		t.Fatal("NVM write bandwidth should be lower than DRAM")
	}
	if nvm.WriteBytesPerSec >= dram.WriteBytesPerSec/3 {
		t.Fatal("expected >3x write bandwidth gap (Optane characteristic)")
	}
}

func TestOccupancyMonotonicProperty(t *testing.T) {
	p := OptaneProfile()
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return p.ReadOccupancy(x) <= p.ReadOccupancy(y) &&
			p.WriteOccupancy(x) <= p.WriteOccupancy(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBlockedSize(t *testing.T) {
	p := MediaProfile{AccessBlock: 256}
	cases := []struct{ in, want int }{
		{0, 0}, {1, 256}, {255, 256}, {256, 256}, {257, 512}, {1024, 1024},
	}
	for _, c := range cases {
		if got := p.blockedSize(c.in); got != c.want {
			t.Errorf("blockedSize(%d) = %d, want %d", c.in, got, c.want)
		}
	}
	byteGran := MediaProfile{AccessBlock: 0}
	if got := byteGran.blockedSize(100); got != 100 {
		t.Errorf("byte-granularity blockedSize(100) = %d", got)
	}
}

func TestTransferTime(t *testing.T) {
	if got := transferTime(1000, 1e9); got != time.Microsecond {
		t.Fatalf("transferTime = %v, want 1µs", got)
	}
	if transferTime(0, 1e9) != 0 || transferTime(10, 0) != 0 {
		t.Fatal("degenerate transferTime not zero")
	}
}
