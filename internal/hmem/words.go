package hmem

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"unsafe"
)

// Word-granular device access for the seqlock read protocol.
//
// The server-mediated cache-hit path must copy promoted-copy bytes
// without taking Device.mu, while racing writers refresh the same copy.
// A classic seqlock with plain memory accesses is still a data race to
// the Go race detector (and to the memory model), so both sides go
// through 8-byte atomic words:
//
//   - readers use LoadWordRaw (seq/gen words) and ReadWordsRaw (data),
//     which never touch the device mutex;
//   - writers flip the seq word with CompareAndSwapWordRaw/StoreWordRaw
//     and write data through WriteWordsRaw, which performs atomic word
//     stores *while holding the device write lock* — so the pre-seqlock
//     locked read path (Read/ReadRaw) also remains torn-free against
//     these writers.
//
// Word pointers into the buffer are always 8-byte aligned: callers pass
// 8-aligned offsets for the word APIs, and the bulk APIs align down to
// the containing words internally (heap []byte allocations are at least
// 8-byte aligned in Go).

// errUnaligned reports a word access at a non-8-byte-aligned offset.
func (d *Device) errUnaligned(op string, off int64) error {
	return fmt.Errorf("hmem: unaligned %s offset %d on %s", op, off, d.name)
}

// word returns the atomic view of the 8-byte word at the (checked,
// aligned) offset.
func (d *Device) word(off int64) *atomic.Uint64 {
	return (*atomic.Uint64)(unsafe.Pointer(&d.buf[off]))
}

// LoadWordRaw atomically loads the 8-byte word at off in native byte
// order, without locking or charging simulated time. off must be 8-byte
// aligned.
func (d *Device) LoadWordRaw(off int64) (uint64, error) {
	if off%8 != 0 {
		return 0, d.errUnaligned("load", off)
	}
	if err := d.check(off, 8); err != nil {
		return 0, err
	}
	return d.word(off).Load(), nil
}

// StoreWordRaw atomically stores the 8-byte word at off in native byte
// order, without locking or charging simulated time. off must be 8-byte
// aligned.
func (d *Device) StoreWordRaw(off int64, v uint64) error {
	if off%8 != 0 {
		return d.errUnaligned("store", off)
	}
	if err := d.check(off, 8); err != nil {
		return err
	}
	d.word(off).Store(v)
	return nil
}

// CompareAndSwapWordRaw atomically CASes the native-order word at off,
// without locking or charging simulated time. off must be 8-byte
// aligned. (CompareAndSwap64 is the big-endian, simulated-time verb the
// one-sided lock protocol uses; this is the server-local word.)
func (d *Device) CompareAndSwapWordRaw(off int64, old, new uint64) (bool, error) {
	if off%8 != 0 {
		return false, d.errUnaligned("cas", off)
	}
	if err := d.check(off, 8); err != nil {
		return false, err
	}
	return d.word(off).CompareAndSwap(old, new), nil
}

// ReadWordsRaw copies len(dst) bytes at off into dst using 8-byte atomic
// loads of the containing aligned words, without taking the device mutex
// and without charging simulated time. The covering word range must lie
// inside the device.
func (d *Device) ReadWordsRaw(off int64, dst []byte) error {
	n := int64(len(dst))
	if n == 0 {
		return nil
	}
	first := off &^ 7
	last := (off + n + 7) &^ 7
	if err := d.check(first, int(last-first)); err != nil {
		return err
	}
	var w [8]byte
	for wo := first; wo < last; wo += 8 {
		v := d.word(wo).Load()
		lo, hi := wo, wo+8
		if lo >= off && hi <= off+n {
			binary.NativeEndian.PutUint64(dst[lo-off:], v)
			continue
		}
		binary.NativeEndian.PutUint64(w[:], v)
		if lo < off {
			lo = off
		}
		if hi > off+n {
			hi = off + n
		}
		copy(dst[lo-off:hi-off], w[lo-wo:hi-wo])
	}
	return nil
}

// WriteWordsRaw copies src into the device at off using 8-byte atomic
// stores of the containing aligned words, holding the device write lock
// for the duration and charging no simulated time. Partial edge words
// are read-modify-written; the caller must hold whatever higher-level
// writer exclusion the region requires (the copy seq word, for promoted
// copies) so edge RMWs cannot lose concurrent updates.
func (d *Device) WriteWordsRaw(off int64, src []byte) error {
	n := int64(len(src))
	if n == 0 {
		return nil
	}
	first := off &^ 7
	last := (off + n + 7) &^ 7
	if err := d.check(first, int(last-first)); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	var w [8]byte
	for wo := first; wo < last; wo += 8 {
		lo, hi := wo, wo+8
		if lo >= off && hi <= off+n {
			d.word(wo).Store(binary.NativeEndian.Uint64(src[lo-off:]))
			continue
		}
		binary.NativeEndian.PutUint64(w[:], d.word(wo).Load())
		if lo < off {
			lo = off
		}
		if hi > off+n {
			hi = off + n
		}
		copy(w[lo-wo:hi-wo], src[lo-off:hi-off])
		d.word(wo).Store(binary.NativeEndian.Uint64(w[:]))
	}
	return nil
}

// BEWord returns the native-order word whose in-memory bytes are the
// big-endian encoding of v — what LoadWordRaw reports for a word that
// was written with encoding/binary.BigEndian (generation headers).
func BEWord(v uint64) uint64 {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return binary.NativeEndian.Uint64(b[:])
}
