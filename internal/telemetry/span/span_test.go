package span

import (
	"bufio"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"gengar/internal/telemetry"
)

// fakeClock is a deterministic nanosecond source.
type fakeClock struct{ t int64 }

func (c *fakeClock) now() int64      { return c.t }
func (c *fakeClock) advance(d int64) { c.t += d }
func newClocked(cfg Config) (*Tracer, *fakeClock) {
	clk := &fakeClock{}
	cfg.Clock = clk.now
	return NewTracer(cfg), clk
}

func TestNilTracerAndNilSpanNoOp(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("read")
	if sp != nil {
		t.Fatal("nil tracer produced a span")
	}
	sp.Mark(StageDispatch)
	sp.MarkAt(StageNVMCopy, 5)
	sp.Finish()
	sp.FinishAt(9)
	if sp.TraceID() != 0 {
		t.Fatal("nil span has a trace ID")
	}
	tr.SetSampleEvery(1)
	tr.ObserveStage("write", StageFlushPersist, 1)
	if tr.Records() != nil || tr.StageSummaries() != nil || tr.Finished() != 0 {
		t.Fatal("nil tracer returned data")
	}
}

func TestSamplingCadence(t *testing.T) {
	tr, _ := newClocked(Config{Side: "client", SampleEvery: 4})
	sampled := 0
	for i := 0; i < 40; i++ {
		if sp := tr.Start("read"); sp != nil {
			sampled++
			sp.Finish()
		}
	}
	if sampled != 10 {
		t.Fatalf("sampled %d of 40 ops at 1-in-4", sampled)
	}
	tr.SetSampleEvery(0)
	for i := 0; i < 40; i++ {
		if tr.Start("read") != nil {
			t.Fatal("sampled with sampling disabled")
		}
	}
}

func TestStageAttribution(t *testing.T) {
	tr, clk := newClocked(Config{Side: "server", SampleEvery: 1, SlowThreshold: -1})
	sp := tr.Start("read")
	if sp == nil {
		t.Fatal("not sampled at 1-in-1")
	}
	clk.advance(100)
	sp.Mark(StageDispatch)
	clk.advance(250)
	sp.Mark(StageNVMCopy)
	clk.advance(50)
	sp.Mark(StageWritevFlush)
	sp.Finish()

	sums := tr.StageSummaries()
	want := map[string]int64{"dispatch": 100, "nvmCopy": 250, "writevFlush": 50}
	if len(sums) != len(want) {
		t.Fatalf("got %d stage cells, want %d: %+v", len(sums), len(want), sums)
	}
	for _, s := range sums {
		if s.Op != "read" {
			t.Fatalf("stage %s landed under op %q", s.Stage, s.Op)
		}
		if w, ok := want[s.Stage]; !ok || s.Summary.Count != 1 || int64(s.Summary.Max) != w {
			t.Fatalf("stage %s: count=%d max=%v, want one observation of %d",
				s.Stage, s.Summary.Count, s.Summary.Max, want[s.Stage])
		}
	}
	if tr.Finished() != 1 {
		t.Fatalf("finished = %d", tr.Finished())
	}
}

func TestSlowRingGate(t *testing.T) {
	tr, clk := newClocked(Config{Side: "server", SampleEvery: 1, SlowThreshold: 200, RingSize: 2})
	finish := func(d int64) {
		sp := tr.Start("write")
		clk.advance(d)
		sp.Mark(StageRingStage)
		sp.Finish()
	}
	finish(100) // below the gate
	finish(300)
	finish(400)
	finish(500) // ring capacity 2: the 300ns record is evicted
	recs := tr.Records()
	if len(recs) != 2 || recs[0].TotalNanos != 400 || recs[1].TotalNanos != 500 {
		t.Fatalf("ring = %+v", recs)
	}
	if tr.Total() != 3 {
		t.Fatalf("total slow = %d", tr.Total())
	}
	if recs[0].Op != "write" || recs[0].Side != "server" || len(recs[0].Stages) != 1 {
		t.Fatalf("record shape: %+v", recs[0])
	}
}

func TestStartRemoteBypassesSampling(t *testing.T) {
	tr, _ := newClocked(Config{Side: "server"}) // local sampling off
	sp := tr.StartRemote(0xfeed, "read")
	if sp == nil {
		t.Fatal("remote span refused")
	}
	if sp.TraceID() != 0xfeed {
		t.Fatalf("trace ID %x", sp.TraceID())
	}
	sp.Mark(StageDispatch)
	sp.Finish()
	recs := tr.Records()
	if len(recs) != 1 || recs[0].TraceID != 0xfeed || !recs[0].Remote {
		t.Fatalf("ring = %+v", recs)
	}
}

func TestMarkOverflowCounted(t *testing.T) {
	tr, clk := newClocked(Config{SampleEvery: 1})
	sp := tr.Start("write_batch")
	for i := 0; i < maxMarks+3; i++ {
		clk.advance(10)
		sp.Mark(StageRingStage)
	}
	sp.Finish()
	recs := tr.Records()
	if len(recs) != 1 || recs[0].Dropped != 3 || len(recs[0].Stages) != maxMarks {
		t.Fatalf("ring = %+v", recs)
	}
}

func TestRegistryExport(t *testing.T) {
	reg := telemetry.NewRegistry()
	clk := &fakeClock{}
	tr := NewTracer(Config{
		Side: "server", SampleEvery: 1, Clock: clk.now,
		Registry: reg, Labels: []telemetry.Label{telemetry.L("server", "1")},
	})
	sp := tr.Start("read")
	clk.advance(123)
	sp.Mark(StageCacheHit)
	sp.Finish()
	tr.ObserveStage("write", StageFlushPersist, 77)

	snap := reg.Snapshot()
	var got []telemetry.HistogramSample
	for _, h := range snap.Histograms {
		if h.Name == StageMetric {
			got = append(got, h)
		}
	}
	if len(got) != 2 {
		t.Fatalf("got %d %s cells: %+v", len(got), StageMetric, got)
	}
	for _, h := range got {
		if h.Labels["side"] != "server" || h.Labels["server"] != "1" {
			t.Fatalf("labels: %v", h.Labels)
		}
		switch h.Labels["stage"] {
		case "cacheHit":
			if h.Labels["op"] != "read" || h.MaxNanos != 123 {
				t.Fatalf("cacheHit cell: %+v", h)
			}
		case "flushPersist":
			if h.Labels["op"] != "write" || h.MaxNanos != 77 {
				t.Fatalf("flushPersist cell: %+v", h)
			}
		default:
			t.Fatalf("unexpected stage %q", h.Labels["stage"])
		}
	}
	if v, ok := snap.Find("gengar_trace_spans_total"); !ok || v.Value != 1 {
		t.Fatalf("spans counter: %+v ok=%v", v, ok)
	}
}

func TestHandlerJSONL(t *testing.T) {
	tr, clk := newClocked(Config{Side: "server", SampleEvery: 1})
	for i := 0; i < 3; i++ {
		sp := tr.Start("read")
		clk.advance(int64(100 * (i + 1)))
		sp.Mark(StageNVMCopy)
		sp.Finish()
	}
	srv := httptest.NewServer(Handler(tr))
	defer srv.Close()
	res, err := srv.Client().Get(srv.URL + "?n=2")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var recs []Record
	sc := bufio.NewScanner(res.Body)
	for sc.Scan() {
		var r Record
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		recs = append(recs, r)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if recs[0].TotalNanos != 200 || recs[1].TotalNanos != 300 {
		t.Fatalf("tail records: %+v", recs)
	}
}

func TestDefaultClockMonotone(t *testing.T) {
	tr := NewTracer(Config{SampleEvery: 1, SlowThreshold: -1})
	sp := tr.Start("read")
	time.Sleep(time.Millisecond)
	sp.Mark(StageNVMCopy)
	sp.Finish()
	sums := tr.StageSummaries()
	if len(sums) != 1 || sums[0].Summary.Max <= 0 {
		t.Fatalf("wall-clocked stage did not advance: %+v", sums)
	}
}
