// Package span is Gengar's per-operation tracing substrate: sampled,
// pooled spans that timestamp named stages along one operation's
// critical path — wire encode, queue wait, dispatch, lock wait, DRAM
// hit versus NVM copy, staging-ring admission, flush persist, writev
// flush — and stitch across the TCP wire via an 8-byte trace ID carried
// in a frame-header extension.
//
// The design splits the cost asymmetrically. Sampling is decided up
// front: an unsampled operation gets a nil *Span, and every Span method
// is a nil-receiver no-op, so the unsampled hot path pays one atomic
// load (plus one atomic add while sampling is enabled) and zero
// allocations. Sampled spans come from a sync.Pool, record stage marks
// into a fixed in-struct array, and on Finish feed a per-(op, stage)
// quantile registry plus a threshold-gated ring of slow operations.
//
// Timestamps flow through the tracer's Clock function — wall-clock
// nanoseconds on the TCP mount, virtual simnet instants on the
// simulated mount — so both mounts trace identically and hot paths
// never call time.Now directly.
package span

import (
	"sync"
	"sync/atomic"
	"time"

	"gengar/internal/metrics"
	"gengar/internal/telemetry"
)

// Stage names one timed segment of an operation's critical path. Stage
// labels are const-only by design (and enforced by gengar-lint's
// telemetry-hygiene analyzer): every exported name below is the full
// vocabulary, so stage cardinality in the metrics registry is bounded.
type Stage uint8

// The stage vocabulary. Client-side stages (encode, netWait, decode)
// and server-side stages (queueWait through writevFlush) share one
// enum so a stitched client+server span reads as a single timeline.
const (
	// StageEncode is the client encoding the request payload into a
	// pooled frame and handing it to the send queue.
	StageEncode Stage = iota
	// StageQueueWait is the gap between a request frame leaving the
	// read loop and its handler starting — goroutine hand-off for
	// parked ops, near zero for inline dispatch.
	StageQueueWait
	// StageDispatch is request decoding and routing inside the handler.
	StageDispatch
	// StageLockWait is time spent waiting out lock contention.
	StageLockWait
	// StageCacheHit is a read served from the DRAM cache copy.
	StageCacheHit
	// StageNVMCopy is a read served from (or a write applied to) the
	// NVM-backed pool.
	StageNVMCopy
	// StageRingStage is staging a write into the proxy ring, including
	// any credit backpressure wait.
	StageRingStage
	// StageFlushPersist is persisting bytes to NVM: inline for
	// write-through, asynchronous (flusher-observed) for staged writes.
	StageFlushPersist
	// StageWritevFlush is a response frame's wait in the send queue
	// plus its share of the coalesced writev syscall.
	StageWritevFlush
	// StageNetWait is the client-side gap between the request leaving
	// and its response arriving — wire time plus everything remote.
	StageNetWait
	// StageDecode is the client decoding the response payload.
	StageDecode
	// StagePeerRead is a read proxied through the daemon-to-daemon link
	// to the peer arena holding the spilled copy — the round trip to the
	// holder, including its generation check.
	StagePeerRead
	// StageFlushGate is the wall-clock time a flush batch waited at the
	// adaptive pacer's gate before persisting (flusher-observed, like
	// StageFlushPersist).
	StageFlushGate

	numStages
)

// String returns the stage's label, used in metrics and JSONL exports.
func (s Stage) String() string {
	switch s {
	case StageEncode:
		return "encode"
	case StageQueueWait:
		return "queueWait"
	case StageDispatch:
		return "dispatch"
	case StageLockWait:
		return "lockWait"
	case StageCacheHit:
		return "cacheHit"
	case StageNVMCopy:
		return "nvmCopy"
	case StageRingStage:
		return "ringStage"
	case StageFlushPersist:
		return "flushPersist"
	case StageWritevFlush:
		return "writevFlush"
	case StageNetWait:
		return "netWait"
	case StageDecode:
		return "decode"
	case StagePeerRead:
		return "peerRead"
	case StageFlushGate:
		return "flushGate"
	}
	return "unknown"
}

// StageMetric is the registry family holding per-(op, stage) latency
// histograms for every tracer wired to a telemetry registry.
const StageMetric = "gengar_trace_stage_seconds"

// maxMarks bounds the in-struct mark array. The deepest current path
// (multi-record batches marking per record) can exceed it; overflow
// marks are counted, not stored, so a span never allocates to grow.
const maxMarks = 8

// mark is one recorded stage boundary: the stage that just ended and
// the instant it ended at.
type mark struct {
	stage Stage
	at    int64
}

// Span is one sampled operation in flight. A nil *Span is the unsampled
// case and every method no-ops on it, so call sites never branch on
// sampling themselves. A span is owned by exactly one goroutine at a
// time; ownership may be handed off (client op goroutine → frame queue
// writer) but never shared.
type Span struct {
	t       *Tracer
	op      string
	traceID uint64
	remote  bool // opened from a wire-propagated trace ID (the server half)
	start   int64
	n       int
	dropped int
	marks   [maxMarks]mark
}

// TraceID returns the span's wire-propagated identity (0 for nil).
func (s *Span) TraceID() uint64 {
	if s == nil {
		return 0
	}
	return s.traceID
}

// Mark records that stage st just ended, stamped by the tracer's clock.
func (s *Span) Mark(st Stage) {
	if s == nil {
		return
	}
	s.MarkAt(st, s.t.now())
}

// MarkAt records that stage st ended at instant at — for callers that
// already hold an instant (the simulated mount's virtual timeline).
func (s *Span) MarkAt(st Stage, at int64) {
	if s == nil {
		return
	}
	if s.n == len(s.marks) {
		s.dropped++
		return
	}
	s.marks[s.n] = mark{stage: st, at: at}
	s.n++
}

// Finish completes the span at its last mark (or now, if unmarked),
// feeds the stage registry and slow ring, and recycles the span. The
// span must not be used afterwards.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	end := s.start
	if s.n > 0 {
		end = s.marks[s.n-1].at
	} else {
		end = s.t.now()
	}
	s.t.finish(s, end)
}

// FinishAt is Finish with an explicit end instant.
func (s *Span) FinishAt(at int64) {
	if s == nil {
		return
	}
	s.t.finish(s, at)
}

// StageLatency is one attributed segment of a finished span: the time
// between the previous stage boundary (or span start) and this one.
type StageLatency struct {
	Stage string `json:"stage"`
	Nanos int64  `json:"ns"`
}

// Record is a finished span as retained by the slow-op ring and served
// over /debug/trace as JSONL.
type Record struct {
	TraceID    uint64         `json:"trace_id"`
	Op         string         `json:"op"`
	Side       string         `json:"side"`
	Remote     bool           `json:"remote,omitempty"`
	StartNanos int64          `json:"start_ns"`
	TotalNanos int64          `json:"total_ns"`
	Dropped    int            `json:"dropped_marks,omitempty"`
	Stages     []StageLatency `json:"stages"`
}

// StageSummary is one (op, stage) cell's latency digest.
type StageSummary struct {
	Op      string
	Stage   string
	Summary metrics.Summary
}

// Config shapes a Tracer.
type Config struct {
	// Side labels this tracer's vantage point: "client" or "server".
	Side string
	// SampleEvery locally initiates a span once every N operations;
	// 0 (or negative) disables local sampling. Remote-initiated spans
	// (StartRemote) honor the peer's decision regardless.
	SampleEvery int
	// SlowThreshold gates the slow-op ring: finished spans at least
	// this slow are retained. 0 retains every sampled span; negative
	// disables the ring.
	SlowThreshold time.Duration
	// RingSize caps the slow-op ring; 0 selects DefaultRingSize.
	RingSize int
	// Clock supplies monotonic nanoseconds for Start/Mark/Finish. nil
	// selects wall time since tracer construction. Both mounts route
	// their existing clock seam here so hot paths never call time.Now.
	Clock func() int64
	// Registry, when set, receives the per-(op, stage) histograms
	// under StageMetric plus the tracer's span counters.
	Registry *telemetry.Registry
	// Labels are appended to every registered family.
	Labels []telemetry.Label
}

// DefaultRingSize is the slow-op ring capacity when Config leaves it 0.
const DefaultRingSize = 256

// histKey identifies one (op, stage) histogram cell.
type histKey struct {
	op string
	st Stage
}

// Tracer owns sampling policy, the span pool, the per-stage quantile
// registry and the slow-op ring for one endpoint (a daemon, a client
// pool, a simulated cluster). A nil *Tracer is valid and disables
// tracing entirely.
type Tracer struct {
	side string
	now  func() int64

	sampleEvery atomic.Int64
	slowNanos   atomic.Int64
	seq         atomic.Uint64 // local sampling counter
	ids         atomic.Uint64 // trace-ID counter
	idBase      uint64

	spans metrics.Counter // spans finished
	slow  metrics.Counter // spans retained by the slow ring

	pool sync.Pool

	reg    *telemetry.Registry
	labels []telemetry.Label

	mu    sync.Mutex
	hists map[histKey]*metrics.Histogram

	ringMu   sync.Mutex
	ring     []Record
	ringNext int
	total    uint64
}

// NewTracer builds a tracer from cfg.
func NewTracer(cfg Config) *Tracer {
	t := &Tracer{
		side:   cfg.Side,
		now:    cfg.Clock,
		reg:    cfg.Registry,
		labels: append([]telemetry.Label(nil), cfg.Labels...),
		hists:  make(map[histKey]*metrics.Histogram),
	}
	if t.side == "" {
		t.side = "unknown"
	}
	if t.now == nil {
		base := time.Now()
		t.now = func() int64 { return int64(time.Since(base)) }
	}
	size := cfg.RingSize
	if size <= 0 {
		size = DefaultRingSize
	}
	t.ring = make([]Record, 0, size)
	t.sampleEvery.Store(int64(cfg.SampleEvery))
	t.slowNanos.Store(int64(cfg.SlowThreshold))
	// Trace IDs must be unique across endpoint restarts (the ring and
	// JSONL exports join on them), so fold construction time into the
	// counter's base.
	t.idBase = uint64(time.Now().UnixNano()) << 16
	if t.reg != nil {
		side := telemetry.L("side", t.side)
		labels := append(append([]telemetry.Label(nil), t.labels...), side)
		t.reg.RegisterCounter("gengar_trace_spans_total",
			"sampled spans finished", &t.spans, labels...)
		t.reg.RegisterCounter("gengar_trace_slow_total",
			"finished spans retained by the slow-op ring", &t.slow, labels...)
	}
	return t
}

// SetSampleEvery changes the local sampling cadence: one span every n
// operations, 0 to disable.
func (t *Tracer) SetSampleEvery(n int) {
	if t == nil {
		return
	}
	t.sampleEvery.Store(int64(n))
}

// SetSlowThreshold changes the slow-ring gate.
func (t *Tracer) SetSlowThreshold(d time.Duration) {
	if t == nil {
		return
	}
	t.slowNanos.Store(int64(d))
}

// sampled applies the up-front sampling decision. The disabled path is
// one atomic load; the enabled-but-skipped path adds one atomic add.
func (t *Tracer) sampled() bool {
	n := t.sampleEvery.Load()
	if n <= 0 {
		return false
	}
	return t.seq.Add(1)%uint64(n) == 0
}

// Start opens a locally-sampled span for op, or returns nil (the
// zero-allocation unsampled case). op must be a constant or an enum's
// String() — enforced by gengar-lint.
//
//gengar:hotpath
func (t *Tracer) Start(op string) *Span {
	if t == nil || !t.sampled() {
		return nil
	}
	return t.open(op, t.now(), false, t.idBase^t.ids.Add(1))
}

// StartAt is Start with an explicit begin instant, for the simulated
// mount's virtual timeline.
//
//gengar:hotpath
func (t *Tracer) StartAt(op string, at int64) *Span {
	if t == nil || !t.sampled() {
		return nil
	}
	return t.open(op, at, false, t.idBase^t.ids.Add(1))
}

// StartRemote opens the receiving half of a wire-propagated span: the
// peer already decided to sample, so no local sampling gate applies.
func (t *Tracer) StartRemote(traceID uint64, op string) *Span {
	if t == nil {
		return nil
	}
	return t.open(op, t.now(), true, traceID)
}

func (t *Tracer) open(op string, at int64, remote bool, id uint64) *Span {
	s, _ := t.pool.Get().(*Span)
	if s == nil {
		s = new(Span)
	}
	*s = Span{t: t, op: op, traceID: id, remote: remote, start: at}
	return s
}

// ObserveStage records one standalone stage latency outside any span —
// used for asynchronous stages (the flusher's NVM persist) that outlive
// the operation that caused them.
func (t *Tracer) ObserveStage(op string, st Stage, nanos int64) {
	if t == nil {
		return
	}
	t.stageHist(op, st).Observe(nanos)
}

// finish attributes each stage segment, feeds the quantile registry,
// applies the slow-ring gate and recycles the span.
func (t *Tracer) finish(s *Span, end int64) {
	total := end - s.start
	prev := s.start
	for i := 0; i < s.n; i++ {
		m := s.marks[i]
		d := m.at - prev
		if d < 0 {
			d = 0
		}
		prev = m.at
		t.stageHist(s.op, m.stage).Observe(d)
	}
	t.spans.Inc()
	if gate := t.slowNanos.Load(); gate >= 0 && total >= gate {
		t.slow.Inc()
		t.ringAdd(s, total)
	}
	*s = Span{}
	t.pool.Put(s)
}

// stageHist returns (creating on first use) the histogram cell for one
// (op, stage) pair.
func (t *Tracer) stageHist(op string, st Stage) *metrics.Histogram {
	k := histKey{op: op, st: st}
	t.mu.Lock()
	h := t.hists[k]
	if h == nil {
		h = t.newStageHist(op, st)
		t.hists[k] = h
	}
	t.mu.Unlock()
	return h
}

// newStageHist creates and (when a registry is wired) registers the
// histogram for one (op, stage) cell. Called under t.mu; op values are
// bounded by the wire-op vocabulary, stage values by the Stage enum, so
// label cardinality stays finite.
func (t *Tracer) newStageHist(op string, st Stage) *metrics.Histogram {
	h := new(metrics.Histogram)
	if t.reg != nil {
		labels := make([]telemetry.Label, 0, len(t.labels)+3)
		labels = append(labels, t.labels...)
		labels = append(labels,
			telemetry.L("side", t.side),
			telemetry.L("op", op),
			telemetry.L("stage", st.String()))
		t.reg.RegisterHistogram(StageMetric,
			"per-stage critical-path latency by op", h, labels...)
	}
	return h
}

// ringAdd retains a finished span in the slow-op ring, overwriting the
// oldest entry when full.
func (t *Tracer) ringAdd(s *Span, total int64) {
	rec := Record{
		TraceID:    s.traceID,
		Op:         s.op,
		Side:       t.side,
		Remote:     s.remote,
		StartNanos: s.start,
		TotalNanos: total,
		Dropped:    s.dropped,
		Stages:     make([]StageLatency, 0, s.n),
	}
	prev := s.start
	for i := 0; i < s.n; i++ {
		m := s.marks[i]
		d := m.at - prev
		if d < 0 {
			d = 0
		}
		prev = m.at
		rec.Stages = append(rec.Stages, StageLatency{Stage: m.stage.String(), Nanos: d})
	}
	t.ringMu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, rec)
	} else {
		t.ring[t.ringNext] = rec
		t.ringNext = (t.ringNext + 1) % cap(t.ring)
	}
	t.total++
	t.ringMu.Unlock()
}

// Records returns the slow-op ring's contents, oldest first.
func (t *Tracer) Records() []Record {
	if t == nil {
		return nil
	}
	t.ringMu.Lock()
	defer t.ringMu.Unlock()
	out := make([]Record, 0, len(t.ring))
	out = append(out, t.ring[t.ringNext:]...)
	out = append(out, t.ring[:t.ringNext]...)
	return out
}

// Total reports how many spans have entered the slow ring since start.
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.ringMu.Lock()
	defer t.ringMu.Unlock()
	return t.total
}

// Finished reports how many sampled spans have completed.
func (t *Tracer) Finished() int64 {
	if t == nil {
		return 0
	}
	return t.spans.Load()
}

// StageSummaries digests every (op, stage) histogram, sorted by op then
// stage — the data behind gengar-stat's breakdown pane and E18.
func (t *Tracer) StageSummaries() []StageSummary {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	keys := make([]histKey, 0, len(t.hists))
	for k := range t.hists {
		keys = append(keys, k)
	}
	hists := make([]*metrics.Histogram, len(keys))
	for i, k := range keys {
		hists[i] = t.hists[k]
	}
	t.mu.Unlock()
	out := make([]StageSummary, len(keys))
	for i, k := range keys {
		out[i] = StageSummary{Op: k.op, Stage: k.st.String(), Summary: hists[i].Summarize()}
	}
	sortSummaries(out)
	return out
}

func sortSummaries(s []StageSummary) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && less(s[j], s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func less(a, b StageSummary) bool {
	if a.Op != b.Op {
		return a.Op < b.Op
	}
	return a.Stage < b.Stage
}
