package span

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// Handler serves the tracer's slow-op ring as JSONL — one Record per
// line, oldest first, ?n=K for just the last K. gengard mounts it at
// /debug/trace. A nil tracer serves an empty body.
func Handler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		if t == nil {
			return
		}
		recs := t.Records()
		if nStr := req.URL.Query().Get("n"); nStr != "" {
			if n, err := strconv.Atoi(nStr); err == nil && n >= 0 && n < len(recs) {
				recs = recs[len(recs)-n:]
			}
		}
		enc := json.NewEncoder(w)
		for i := range recs {
			if err := enc.Encode(&recs[i]); err != nil {
				return
			}
		}
	})
}
