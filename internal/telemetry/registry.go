// Package telemetry is Gengar's observability substrate: a labeled
// metrics registry over the primitives in internal/metrics, snapshot
// exporters (Prometheus text format and JSON), a per-operation flight
// recorder, and an HTTP debug handler.
//
// The registry hands out live instruments — *metrics.Counter,
// *metrics.Gauge, *metrics.Histogram — that components update on their
// hot paths with plain atomic operations; Snapshot walks the registry
// and reads every instrument, so there is no per-update registry cost.
// Values derived from existing state (pool usage, ring occupancy) are
// registered as gauge functions evaluated at snapshot time.
//
// Every cluster (simulated or TCP deployment) owns one Registry and one
// FlightRecorder, so concurrent clusters in one process never share
// metrics.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"gengar/internal/metrics"
)

// Label is one name=value dimension of a metric instance.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Kind discriminates the instrument types a metric family can hold.
type Kind int

// The instrument kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// instrument is one (family, label set) cell.
type instrument struct {
	labels  []Label
	counter *metrics.Counter
	gauge   *metrics.Gauge
	gaugeFn func() int64
	hist    *metrics.Histogram
}

// family is all instances of one metric name.
type family struct {
	name  string
	kind  Kind
	help  string
	unit  string                 // histogram unit: "" for nanosecond durations, UnitValue for raw values
	insts map[string]*instrument // keyed by label signature
}

// UnitValue marks a histogram family as holding raw values (batch
// lengths, bytes per syscall) rather than nanosecond durations, so
// exporters skip the duration scaling.
const UnitValue = "value"

// Registry is a concurrent, labeled metrics registry. The zero value is
// not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// signature canonicalizes a label set (sorted by key) into a map key.
func signature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// sortLabels returns a key-sorted copy so callers' argument order never
// splits one logical instance into two.
func sortLabels(labels []Label) []Label {
	out := make([]Label, len(labels))
	copy(out, labels)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// lookup returns (creating if needed) the instrument cell for
// name+labels, enforcing kind consistency per name. A kind clash is a
// programming error and panics.
func (r *Registry) lookup(name, help string, kind Kind, labels []Label) *instrument {
	labels = sortLabels(labels)
	sig := signature(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, kind: kind, help: help, insts: make(map[string]*instrument)}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q registered as %v and %v", name, f.kind, kind))
	}
	if f.help == "" {
		f.help = help
	}
	inst := f.insts[sig]
	if inst == nil {
		inst = &instrument{labels: labels}
		f.insts[sig] = inst
	}
	return inst
}

// Counter returns the live counter for name+labels, creating it on first
// use. Repeated calls with the same name and labels return the same
// counter.
func (r *Registry) Counter(name, help string, labels ...Label) *metrics.Counter {
	inst := r.lookup(name, help, KindCounter, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if inst.counter == nil {
		inst.counter = new(metrics.Counter)
	}
	return inst.counter
}

// RegisterCounter exposes an existing counter (owned by a component)
// under name+labels. It returns c for chaining; re-registration replaces
// the previous instrument.
func (r *Registry) RegisterCounter(name, help string, c *metrics.Counter, labels ...Label) *metrics.Counter {
	inst := r.lookup(name, help, KindCounter, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	inst.counter = c
	return c
}

// Gauge returns the live gauge for name+labels, creating it on first
// use.
func (r *Registry) Gauge(name, help string, labels ...Label) *metrics.Gauge {
	inst := r.lookup(name, help, KindGauge, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if inst.gauge == nil {
		inst.gauge = new(metrics.Gauge)
	}
	return inst.gauge
}

// RegisterGauge exposes an existing gauge under name+labels.
func (r *Registry) RegisterGauge(name, help string, g *metrics.Gauge, labels ...Label) *metrics.Gauge {
	inst := r.lookup(name, help, KindGauge, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	inst.gauge = g
	return g
}

// GaugeFunc registers fn as the value source for name+labels; fn is
// evaluated at snapshot time. Use it for levels derived from existing
// state (allocator usage, table sizes) rather than maintained counters.
func (r *Registry) GaugeFunc(name, help string, fn func() int64, labels ...Label) {
	inst := r.lookup(name, help, KindGauge, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	inst.gaugeFn = fn
}

// Histogram returns the live log-scale histogram for name+labels,
// creating it on first use. By repository convention histogram
// observations are durations recorded in nanoseconds.
func (r *Registry) Histogram(name, help string, labels ...Label) *metrics.Histogram {
	inst := r.lookup(name, help, KindHistogram, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if inst.hist == nil {
		inst.hist = new(metrics.Histogram)
	}
	return inst.hist
}

// RegisterHistogram exposes an existing histogram under name+labels.
func (r *Registry) RegisterHistogram(name, help string, h *metrics.Histogram, labels ...Label) *metrics.Histogram {
	inst := r.lookup(name, help, KindHistogram, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	inst.hist = h
	return h
}

// ValueHistogram returns the live histogram for name+labels with the
// family marked as raw-valued (UnitValue): observations are plain
// numbers — frames per flush, bytes per syscall — and exporters report
// them unscaled instead of converting nanoseconds to seconds.
func (r *Registry) ValueHistogram(name, help string, labels ...Label) *metrics.Histogram {
	h := r.Histogram(name, help, labels...)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.families[name].unit = UnitValue
	return h
}

// Reset zeroes every maintained instrument (counters, gauges,
// histograms). Gauge functions are left alone — they reflect external
// state. Benchmark harnesses call it between a warm-up and a measured
// phase.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range r.families {
		for _, inst := range f.insts {
			if inst.counter != nil {
				inst.counter.Add(-inst.counter.Load())
			}
			if inst.gauge != nil {
				inst.gauge.Set(0)
			}
			if inst.hist != nil {
				inst.hist.Reset()
			}
		}
	}
}
