package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// Handler returns the live debug endpoint mux served by gengard's
// -debug-addr listener:
//
//	GET /metrics       Prometheus text exposition of a fresh snapshot
//	GET /metrics.json  the same snapshot as JSON (gengar-stat polls this)
//	GET /healthz       liveness + uptime as JSON
//	GET /debug/events  flight-recorder dump as JSONL (?n=K for last K)
//
// rec may be nil, in which case /debug/events serves an empty body.
func Handler(reg *Registry, rec *FlightRecorder) http.Handler {
	start := time.Now()
	mux := http.NewServeMux()

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.Snapshot().WritePrometheus(w)
	})

	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.Snapshot().WriteJSON(w)
	})

	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"status\":\"ok\",\"uptime_s\":%.1f,\"events\":%d}\n",
			time.Since(start).Seconds(), rec.Total())
	})

	mux.HandleFunc("/debug/events", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		events := rec.Events()
		if nStr := req.URL.Query().Get("n"); nStr != "" {
			if n, err := strconv.Atoi(nStr); err == nil && n >= 0 && n < len(events) {
				events = events[len(events)-n:]
			}
		}
		enc := json.NewEncoder(w)
		for _, e := range events {
			if err := enc.Encode(e); err != nil {
				return
			}
		}
	})

	return mux
}
