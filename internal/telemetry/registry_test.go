package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("ops_total", "ops", L("client", "a"))
	b := r.Counter("ops_total", "", L("client", "a"))
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	other := r.Counter("ops_total", "", L("client", "b"))
	if a == other {
		t.Fatal("distinct labels share a counter")
	}
	// Label order must not matter.
	x := r.Gauge("depth", "", L("k1", "v1"), L("k2", "v2"))
	y := r.Gauge("depth", "", L("k2", "v2"), L("k1", "v1"))
	if x != y {
		t.Fatal("label order split one instance into two")
	}
}

func TestRegistryKindClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("kind clash did not panic")
		}
	}()
	r.Gauge("m", "")
}

func TestRegistryConcurrent(t *testing.T) {
	// Concurrent get-or-create plus updates plus snapshots: the -race
	// test for the registry's hot path.
	r := NewRegistry()
	var wg sync.WaitGroup
	const workers, per = 8, 500
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			labels := []Label{{"worker", string(rune('a' + w%4))}}
			for i := 0; i < per; i++ {
				r.Counter("ops_total", "", labels...).Inc()
				r.Gauge("depth", "", labels...).SetMax(int64(i))
				r.Histogram("lat", "", labels...).Record(time.Duration(i))
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if got := s.Sum("ops_total"); got != workers*per {
		t.Fatalf("ops_total = %d, want %d", got, workers*per)
	}
	var histCount int64
	for _, h := range s.Histograms {
		if h.Name == "lat" {
			histCount += h.Count
		}
	}
	if histCount != workers*per {
		t.Fatalf("lat count = %d, want %d", histCount, workers*per)
	}
}

func TestRegistryGaugeFunc(t *testing.T) {
	r := NewRegistry()
	v := int64(7)
	r.GaugeFunc("level", "", func() int64 { return v })
	if got, ok := r.Snapshot().Find("level"); !ok || got.Value != 7 {
		t.Fatalf("gauge func sample = %+v, ok=%v", got, ok)
	}
	v = 9
	if got, _ := r.Snapshot().Find("level"); got.Value != 9 {
		t.Fatalf("gauge func not re-evaluated: %+v", got)
	}
}

func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "").Add(5)
	r.Gauge("g", "").Set(5)
	r.Histogram("h", "").Record(5)
	ext := int64(3)
	r.GaugeFunc("fn", "", func() int64 { return ext })
	r.Reset()
	s := r.Snapshot()
	if s.Sum("c") != 0 || s.Sum("g") != 0 {
		t.Fatalf("reset left values: %+v", s)
	}
	if s.Histograms[0].Count != 0 {
		t.Fatalf("reset left histogram observations: %+v", s.Histograms[0])
	}
	if got, _ := s.Find("fn"); got.Value != 3 {
		t.Fatal("reset clobbered a gauge function")
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	r.Counter("z", "", L("s", "2"))
	r.Counter("a", "")
	r.Counter("z", "", L("s", "1"))
	s := r.Snapshot()
	if len(s.Counters) != 3 {
		t.Fatalf("counters: %+v", s.Counters)
	}
	if s.Counters[0].Name != "a" || s.Counters[1].Labels["s"] != "1" || s.Counters[2].Labels["s"] != "2" {
		t.Fatalf("snapshot order not deterministic: %+v", s.Counters)
	}
}

func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("gengar_ops_total", "ops served", L("server", "1")).Add(42)
	r.Gauge("gengar_pool_used_bytes", "bytes in use").Set(1024)
	// 1024ns is a bucket boundary, so the log-scale quantile estimate is
	// exact and the golden text below is stable.
	h := r.Histogram("gengar_read_latency_seconds", "read latency", L("client", "c0"))
	h.Record(1024 * time.Nanosecond)
	h.Record(1024 * time.Nanosecond)

	var b strings.Builder
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE gengar_ops_total counter
gengar_ops_total{server="1"} 42
# TYPE gengar_pool_used_bytes gauge
gengar_pool_used_bytes 1024
# TYPE gengar_read_latency_seconds summary
gengar_read_latency_seconds{client="c0",quantile="0.5"} 1.024e-06
gengar_read_latency_seconds{client="c0",quantile="0.95"} 1.024e-06
gengar_read_latency_seconds{client="c0",quantile="0.99"} 1.024e-06
gengar_read_latency_seconds_sum{client="c0"} 2.048e-06
gengar_read_latency_seconds_count{client="c0"} 2
`
	if got := b.String(); got != want {
		t.Fatalf("prometheus output:\n got: %q\nwant: %q", got, want)
	}
}

func TestWriteJSONGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("ops_total", "", L("server", "1")).Add(3)
	r.Gauge("depth", "").Set(2)
	var b strings.Builder
	if err := r.Snapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	want := `{
  "counters": [
    {
      "name": "ops_total",
      "labels": {
        "server": "1"
      },
      "value": 3
    }
  ],
  "gauges": [
    {
      "name": "depth",
      "value": 2
    }
  ],
  "histograms": null
}
`
	if got := b.String(); got != want {
		t.Fatalf("json output:\n got: %s\nwant: %s", got, want)
	}
}
