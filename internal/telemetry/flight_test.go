package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestFlightRecorderBasics(t *testing.T) {
	r := NewFlightRecorder(4)
	if r.Total() != 0 || len(r.Events()) != 0 {
		t.Fatal("fresh recorder not empty")
	}
	r.Record(Event{Op: "read", Addr: 1})
	r.Record(Event{Op: "write", Addr: 2})
	ev := r.Events()
	if len(ev) != 2 || ev[0].Seq != 0 || ev[1].Seq != 1 || ev[0].Op != "read" {
		t.Fatalf("events: %+v", ev)
	}
}

func TestFlightRecorderWraparound(t *testing.T) {
	r := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		r.Record(Event{Op: "op", Addr: uint64(i)})
	}
	if r.Total() != 10 {
		t.Fatalf("Total = %d", r.Total())
	}
	ev := r.Events()
	if len(ev) != 4 {
		t.Fatalf("retained %d events, want 4", len(ev))
	}
	// Oldest-first: sequences 6,7,8,9.
	for i, e := range ev {
		if e.Seq != uint64(6+i) || e.Addr != uint64(6+i) {
			t.Fatalf("event %d = %+v, want seq %d", i, e, 6+i)
		}
	}
}

func TestFlightRecorderNil(t *testing.T) {
	var r *FlightRecorder
	r.Record(Event{Op: "read"}) // must not panic
	if r.Total() != 0 || r.Events() != nil || r.Cap() != 0 {
		t.Fatal("nil recorder misbehaved")
	}
	if err := r.WriteJSONL(io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	r := NewFlightRecorder(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Record(Event{Op: "read"})
				if i%100 == 0 {
					_ = r.Events()
				}
			}
		}()
	}
	wg.Wait()
	if r.Total() != 8000 {
		t.Fatalf("Total = %d", r.Total())
	}
	ev := r.Events()
	for i := 1; i < len(ev); i++ {
		if ev[i].Seq != ev[i-1].Seq+1 {
			t.Fatalf("retained sequence not contiguous at %d: %+v %+v", i, ev[i-1], ev[i])
		}
	}
}

func TestFlightRecorderJSONL(t *testing.T) {
	r := NewFlightRecorder(8)
	r.Record(Event{Op: "read", Addr: 0x40, Len: 64, Path: "dram_copy", Hit: true, LatNanos: 1500})
	r.Record(Event{Op: "write", Addr: 0x80, Len: 32, Path: "proxy_ring", RingDepth: 3, LatNanos: 900})
	var b strings.Builder
	if err := r.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines: %q", lines)
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[1]), &e); err != nil {
		t.Fatal(err)
	}
	if e.Op != "write" || e.Path != "proxy_ring" || e.RingDepth != 3 || e.LatNanos != 900 {
		t.Fatalf("round-trip: %+v", e)
	}
	// Zero-valued optional fields are omitted.
	if strings.Contains(lines[1], "hit") {
		t.Fatalf("omitempty broken: %s", lines[1])
	}
}

func TestDebugHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ops_total", "").Add(5)
	reg.Histogram("lat_seconds", "").Record(1024)
	rec := NewFlightRecorder(8)
	for i := 0; i < 5; i++ {
		rec.Record(Event{Op: "read", Addr: uint64(i)})
	}
	srv := httptest.NewServer(Handler(reg, rec))
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return string(body), resp.Header.Get("Content-Type")
	}

	if body, ct := get("/metrics"); !strings.Contains(body, "ops_total 5") ||
		!strings.Contains(body, "# TYPE lat_seconds summary") ||
		!strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics: ct=%q body=%q", ct, body)
	}
	if body, _ := get("/metrics.json"); !strings.Contains(body, `"ops_total"`) {
		t.Fatalf("/metrics.json: %q", body)
	}
	if body, _ := get("/healthz"); !strings.Contains(body, `"status":"ok"`) {
		t.Fatalf("/healthz: %q", body)
	}
	body, _ := get("/debug/events?n=2")
	sc := bufio.NewScanner(strings.NewReader(body))
	var events []Event
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		events = append(events, e)
	}
	if len(events) != 2 || events[0].Seq != 3 || events[1].Seq != 4 {
		t.Fatalf("/debug/events?n=2: %+v", events)
	}
}
