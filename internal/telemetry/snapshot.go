package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Sample is one counter or gauge reading.
type Sample struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  int64             `json:"value"`
}

// HistogramSample is one histogram digest. Durations are simulated (or,
// in the TCP deployment mode, wall-clock) nanoseconds; for raw-valued
// families (Unit == UnitValue) the *_ns fields hold plain values —
// batch lengths, byte counts — with no time unit.
type HistogramSample struct {
	Name     string            `json:"name"`
	Labels   map[string]string `json:"labels,omitempty"`
	Unit     string            `json:"unit,omitempty"`
	Count    int64             `json:"count"`
	SumNanos int64             `json:"sum_ns"`
	MinNanos int64             `json:"min_ns"`
	MaxNanos int64             `json:"max_ns"`
	P50Nanos int64             `json:"p50_ns"`
	P95Nanos int64             `json:"p95_ns"`
	P99Nanos int64             `json:"p99_ns"`
}

// Snapshot is a point-in-time reading of every instrument in a Registry,
// in deterministic (name, then label signature) order.
type Snapshot struct {
	Counters   []Sample          `json:"counters"`
	Gauges     []Sample          `json:"gauges"`
	Histograms []HistogramSample `json:"histograms"`
}

// Snapshot reads every instrument. Gauge functions are evaluated here;
// they must not call back into the registry.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	type cell struct {
		fam  *family
		sig  string
		inst *instrument
	}
	var cells []cell
	for _, name := range names {
		f := r.families[name]
		sigs := make([]string, 0, len(f.insts))
		for sig := range f.insts {
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		for _, sig := range sigs {
			cells = append(cells, cell{f, sig, f.insts[sig]})
		}
	}
	r.mu.Unlock()

	// Read instruments outside the registry lock: gauge functions reach
	// into component state and must be free to take their own locks.
	var s Snapshot
	for _, c := range cells {
		labels := labelMap(c.inst.labels)
		switch c.fam.kind {
		case KindCounter:
			if c.inst.counter == nil {
				continue
			}
			s.Counters = append(s.Counters, Sample{c.fam.name, labels, c.inst.counter.Load()})
		case KindGauge:
			var v int64
			switch {
			case c.inst.gaugeFn != nil:
				v = c.inst.gaugeFn()
			case c.inst.gauge != nil:
				v = c.inst.gauge.Load()
			default:
				continue
			}
			s.Gauges = append(s.Gauges, Sample{c.fam.name, labels, v})
		case KindHistogram:
			if c.inst.hist == nil {
				continue
			}
			sum := c.inst.hist.Summarize()
			s.Histograms = append(s.Histograms, HistogramSample{
				Name:     c.fam.name,
				Labels:   labels,
				Unit:     c.fam.unit,
				Count:    sum.Count,
				SumNanos: int64(sum.Mean) * sum.Count,
				MinNanos: int64(sum.Min),
				MaxNanos: int64(sum.Max),
				P50Nanos: int64(sum.P50),
				P95Nanos: int64(sum.P95),
				P99Nanos: int64(sum.P99),
			})
		}
	}
	return s
}

func labelMap(labels []Label) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	m := make(map[string]string, len(labels))
	for _, l := range labels {
		m[l.Key] = l.Value
	}
	return m
}

// Find returns the first counter or gauge sample with the given name
// whose labels contain every given label, and whether one exists —
// convenience for tests and status displays.
func (s Snapshot) Find(name string, labels ...Label) (Sample, bool) {
	match := func(c Sample) bool {
		if c.Name != name {
			return false
		}
		for _, l := range labels {
			if c.Labels[l.Key] != l.Value {
				return false
			}
		}
		return true
	}
	for _, c := range s.Counters {
		if match(c) {
			return c, true
		}
	}
	for _, g := range s.Gauges {
		if match(g) {
			return g, true
		}
	}
	return Sample{}, false
}

// Sum adds up every counter and gauge sample with the given name across
// label sets — e.g. total cache hits over all clients.
func (s Snapshot) Sum(name string) int64 {
	var total int64
	for _, c := range s.Counters {
		if c.Name == name {
			total += c.Value
		}
	}
	for _, g := range s.Gauges {
		if g.Name == name {
			total += g.Value
		}
	}
	return total
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (version 0.0.4). Histograms are rendered as summaries with
// quantile labels; durations are converted to seconds per Prometheus
// convention.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	var lastName string
	typeHeader := func(name, kind string) {
		if name != lastName {
			fmt.Fprintf(&b, "# TYPE %s %s\n", name, kind)
			lastName = name
		}
	}
	for _, c := range s.Counters {
		typeHeader(c.Name, "counter")
		fmt.Fprintf(&b, "%s%s %d\n", c.Name, promLabels(c.Labels, "", ""), c.Value)
	}
	for _, g := range s.Gauges {
		typeHeader(g.Name, "gauge")
		fmt.Fprintf(&b, "%s%s %d\n", g.Name, promLabels(g.Labels, "", ""), g.Value)
	}
	for _, h := range s.Histograms {
		typeHeader(h.Name, "summary")
		// Duration histograms export in seconds per Prometheus
		// convention; raw-valued families export unscaled.
		scale := seconds
		if h.Unit == UnitValue {
			scale = func(v int64) float64 { return float64(v) }
		}
		for _, q := range []struct {
			q string
			v int64
		}{{"0.5", h.P50Nanos}, {"0.95", h.P95Nanos}, {"0.99", h.P99Nanos}} {
			fmt.Fprintf(&b, "%s%s %g\n", h.Name, promLabels(h.Labels, "quantile", q.q), scale(q.v))
		}
		fmt.Fprintf(&b, "%s_sum%s %g\n", h.Name, promLabels(h.Labels, "", ""), scale(h.SumNanos))
		fmt.Fprintf(&b, "%s_count%s %d\n", h.Name, promLabels(h.Labels, "", ""), h.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func seconds(nanos int64) float64 { return float64(nanos) / 1e9 }

// promLabels renders a sorted {k="v",...} block, optionally with one
// extra label appended (the quantile), or "" when empty.
func promLabels(labels map[string]string, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	if extraKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraKey, extraVal)
	}
	b.WriteByte('}')
	return b.String()
}
