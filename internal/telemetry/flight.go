package telemetry

import (
	"encoding/json"
	"io"
	"sync"
)

// DefaultFlightEvents is the ring capacity a cluster's recorder gets
// when no explicit size is chosen: large enough to hold the tail of a
// benchmark run, small enough to dump over a debug endpoint.
const DefaultFlightEvents = 8192

// Event is one structured flight-recorder record: what one operation
// did and which path it took. Fields that do not apply to an op are
// left zero and omitted from JSON.
type Event struct {
	Seq       uint64 `json:"seq"`
	TimeNanos int64  `json:"t_ns"`             // completion instant (simulated or wall)
	Client    string `json:"client,omitempty"` // issuing client, if any
	Op        string `json:"op"`               // read, write, malloc, free, lock, ...
	Addr      uint64 `json:"addr,omitempty"`   // target global address
	Len       int    `json:"len,omitempty"`    // payload bytes
	Path      string `json:"path,omitempty"`   // verb path taken: dram_copy, nvm, proxy_ring, nvm_direct
	Hit       bool   `json:"hit,omitempty"`    // served by a DRAM copy
	RingDepth int    `json:"ring_depth,omitempty"`
	Batch     int    `json:"batch,omitempty"`  // records in a batched chain
	LatNanos  int64  `json:"lat_ns,omitempty"` // operation latency
}

// FlightRecorder is a fixed-size concurrent ring of Events: recording
// never blocks on consumers and never allocates once the ring is full —
// old events are overwritten. A nil *FlightRecorder is valid and drops
// every record, so instrumented code needs no nil checks.
type FlightRecorder struct {
	mu    sync.Mutex
	buf   []Event
	total uint64 // events ever recorded; buf[ (total-1) % cap ] is newest
}

// NewFlightRecorder returns a recorder holding the last capacity events
// (DefaultFlightEvents if capacity <= 0).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightEvents
	}
	return &FlightRecorder{buf: make([]Event, 0, capacity)}
}

// Record appends one event, assigning its sequence number (and stamping
// it into e.Seq). The oldest event is overwritten when the ring is full.
func (r *FlightRecorder) Record(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	e.Seq = r.total
	r.total++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[e.Seq%uint64(cap(r.buf))] = e
	}
	r.mu.Unlock()
}

// Total returns the number of events ever recorded (not just retained).
func (r *FlightRecorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Cap returns the ring capacity.
func (r *FlightRecorder) Cap() int {
	if r == nil {
		return 0
	}
	return cap(r.buf)
}

// Events returns the retained events, oldest first.
func (r *FlightRecorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	if len(r.buf) < cap(r.buf) {
		return append(out, r.buf...)
	}
	start := r.total % uint64(cap(r.buf)) // index of the oldest retained event
	out = append(out, r.buf[start:]...)
	return append(out, r.buf[:start]...)
}

// WriteJSONL dumps the retained events as one JSON object per line,
// oldest first — the offline-analysis format.
func (r *FlightRecorder) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range r.Events() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}
