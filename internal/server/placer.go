package server

import (
	"gengar/internal/cache"
	"gengar/internal/simnet"
)

// registryPlacer implements engine.Placer over the cluster-wide
// placement registry: promoted copies of home's objects may land on any
// server's DRAM buffer arena, written over server-to-server queue pairs
// when remote. Generation stamps come from the registry's cluster-wide
// counter, so a client can detect a buffer slot reused for a different
// object anywhere in the pool.
type registryPlacer struct {
	r    *Registry
	home *Server
}

func (p *registryPlacer) PlaceCopy(size int64) (cache.Location, error) {
	target, off, err := p.r.place(p.home, size)
	if err != nil {
		return cache.Location{}, err
	}
	return cache.Location{
		Node:   target.node.ID(),
		RKey:   target.cacheMR.RKey(),
		Off:    off,
		Size:   size,
		Gen:    p.r.nextGen(),
		HomeMR: p.home.nvmMR.RKey(),
	}, nil
}

func (p *registryPlacer) InstallCopy(at simnet.Time, loc cache.Location, payload []byte) (simnet.Time, error) {
	return p.r.installCopy(p.home, at, loc, payload)
}

func (p *registryPlacer) WriteCopy(at simnet.Time, loc cache.Location, delta int64, data []byte) (simnet.Time, error) {
	return p.r.writeCopy(p.home, at, loc, delta, data)
}

func (p *registryPlacer) ReadCopy(at simnet.Time, loc cache.Location, delta int64, buf []byte) (simnet.Time, error) {
	return p.r.readCopy(p.home, at, loc, delta, buf)
}

// CopyBudget reports zero — the simulated mount keeps its historical
// behavior of budgeting plans against the home server's configured
// arena (clients read remote copies one-sided, so placement is already
// cluster-wide without inflating any single home's plan).
func (p *registryPlacer) CopyBudget() int64 { return 0 }

func (p *registryPlacer) Release(loc cache.Location) {
	p.r.release(loc)
}
