package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"gengar/internal/cache"
	"gengar/internal/engine"
	"gengar/internal/hmem"
	"gengar/internal/rdma"
	"gengar/internal/simnet"
)

// ErrNoBufferSpace is returned when no server's DRAM buffer arena can
// host a promotion.
var ErrNoBufferSpace = errors.New("server: no DRAM buffer space in cluster")

// Registry is the cluster-wide view the servers share for distributed
// DRAM buffer placement: it knows every server's buffer pool and routes
// copy writes and releases to the owning server.
type Registry struct {
	mu      sync.RWMutex
	servers []*Server
	byNode  map[string]*Server

	// gen is the cluster-wide promotion generation counter stamped into
	// copy headers; cluster-wide uniqueness is what lets a client detect
	// that a buffer slot it is about to read was reused for a different
	// object.
	gen atomic.Uint64
}

// nextGen returns the next promotion generation stamp (never zero).
func (r *Registry) nextGen() uint64 { return r.gen.Add(1) }

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byNode: make(map[string]*Server)}
}

// Join adds a server to the registry and hands the server its back-
// reference. It must be called once per server before any traffic.
func (r *Registry) Join(s *Server) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byNode[s.node.ID()]; dup {
		return fmt.Errorf("server: %s already joined", s.node.ID())
	}
	r.servers = append(r.servers, s)
	r.byNode[s.node.ID()] = s
	s.registry = r
	// Joining is what makes cluster-wide placement possible, so this is
	// where the engine learns its placement strategy.
	s.eng.SetPlacer(&registryPlacer{r: r, home: s})
	return nil
}

// Servers returns the joined servers in join order.
func (r *Registry) Servers() []*Server {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Server, len(r.servers))
	copy(out, r.servers)
	return out
}

// ByNode returns the server whose fabric node has the given ID.
func (r *Registry) ByNode(nodeID string) (*Server, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.byNode[nodeID]
	return s, ok
}

// ByID returns the server with the given pool ID.
func (r *Registry) ByID(id uint16) (*Server, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, s := range r.servers {
		if s.id == id {
			return s, true
		}
	}
	return nil, false
}

// ConnectMesh creates the server-to-server queue pairs used to install
// and refresh remote DRAM copies. Call once after all servers joined.
func (r *Registry) ConnectMesh() error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for i, a := range r.servers {
		for _, b := range r.servers[i+1:] {
			qa, qb := a.node.NewQP(), b.node.NewQP()
			if err := qa.Connect(qb); err != nil {
				return fmt.Errorf("server: mesh %s<->%s: %w", a.node.ID(), b.node.ID(), err)
			}
			a.mu.Lock()
			a.peers[b.id] = qa
			a.mu.Unlock()
			b.mu.Lock()
			b.peers[a.id] = qb
			b.mu.Unlock()
		}
	}
	return nil
}

// place reserves buffer space for a copy (header + size bytes) on the
// server with the most free arena space, preferring the home server on
// ties so single-server deployments stay local.
func (r *Registry) place(home *Server, size int64) (*Server, int64, error) {
	r.mu.RLock()
	cands := make([]*Server, len(r.servers))
	copy(cands, r.servers)
	r.mu.RUnlock()

	sort.SliceStable(cands, func(i, j int) bool {
		fi := cands[i].bufp.Capacity() - cands[i].bufp.UsedBytes()
		fj := cands[j].bufp.Capacity() - cands[j].bufp.UsedBytes()
		if fi != fj {
			return fi > fj
		}
		return cands[i] == home
	})
	need := size + cache.CopyHeaderBytes
	for _, s := range cands {
		off, err := s.bufp.Place(need)
		if err == nil {
			return s, off, nil
		}
	}
	return nil, 0, fmt.Errorf("%w: %d bytes", ErrNoBufferSpace, need)
}

// release frees the buffer space behind a demoted copy.
func (r *Registry) release(loc cache.Location) {
	r.mu.RLock()
	s := r.byNode[loc.Node]
	r.mu.RUnlock()
	if s == nil {
		return
	}
	// A release failure means the location was already released — a
	// bookkeeping bug upstream, but never fatal to the pool.
	_ = s.bufp.Release(loc.Off)
}

// writeCopy writes data into a copy's data area at the given delta,
// charging local DRAM cost when the copy is on `from` and a server-to-
// server RDMA WRITE otherwise. It returns the completion instant.
func (r *Registry) writeCopy(from *Server, at simnet.Time, loc cache.Location, delta int64, data []byte) (simnet.Time, error) {
	r.mu.RLock()
	target := r.byNode[loc.Node]
	r.mu.RUnlock()
	if target == nil {
		return at, fmt.Errorf("server: unknown copy host %q", loc.Node)
	}
	off := loc.Off + cache.CopyHeaderBytes + delta
	if target == from {
		return from.cacheDev.Write(at, off, data)
	}
	from.mu.Lock()
	qp := from.peers[target.id]
	from.mu.Unlock()
	if qp == nil {
		return at, fmt.Errorf("server: no mesh QP %s->%s", from.node.ID(), target.node.ID())
	}
	return qp.Write(at, data, rdma.RemoteAddr{
		Region: rdma.RegionHandle{Node: loc.Node, RKey: loc.RKey},
		Offset: off,
	})
}

// readCopy fills buf from a copy's data area at the given delta,
// validating the location's generation against the header at the
// holder — a local DRAM read when the copy is on `from`, server-to-
// server RDMA READs otherwise. A mismatched generation (the slot was
// demoted and reused) comes back as engine.ErrStaleCopy so the home
// falls back to its authoritative NVM bytes.
func (r *Registry) readCopy(from *Server, at simnet.Time, loc cache.Location, delta int64, buf []byte) (simnet.Time, error) {
	r.mu.RLock()
	target := r.byNode[loc.Node]
	r.mu.RUnlock()
	if target == nil {
		return at, fmt.Errorf("server: unknown copy host %q", loc.Node)
	}
	var hdr [8]byte
	dataOff := loc.Off + cache.CopyHeaderBytes + delta
	if target == from {
		// The generation header shares its word with the engine's seqlock
		// protocol, so it is checked through the atomic word API.
		gw, err := from.cacheDev.LoadWordRaw(loc.Off + cache.CopyGenOff)
		if err != nil {
			return at, err
		}
		if gw != hmem.BEWord(loc.Gen) {
			return at, engine.ErrStaleCopy
		}
		return from.cacheDev.Read(at, dataOff, buf)
	}
	from.mu.Lock()
	qp := from.peers[target.id]
	from.mu.Unlock()
	if qp == nil {
		return at, fmt.Errorf("server: no mesh QP %s->%s", from.node.ID(), target.node.ID())
	}
	rh := rdma.RegionHandle{Node: loc.Node, RKey: loc.RKey}
	end, err := qp.Read(at, hdr[:], rdma.RemoteAddr{Region: rh, Offset: loc.Off + cache.CopyGenOff})
	if err != nil {
		return at, err
	}
	if binary.BigEndian.Uint64(hdr[:]) != loc.Gen {
		return at, engine.ErrStaleCopy
	}
	return qp.Read(end, buf, rdma.RemoteAddr{Region: rh, Offset: dataOff})
}

// installCopy writes a complete copy — generation header plus object
// data — into freshly placed buffer space.
func (r *Registry) installCopy(from *Server, at simnet.Time, loc cache.Location, payload []byte) (simnet.Time, error) {
	r.mu.RLock()
	target := r.byNode[loc.Node]
	r.mu.RUnlock()
	if target == nil {
		return at, fmt.Errorf("server: unknown copy host %q", loc.Node)
	}
	if target == from {
		return from.cacheDev.Write(at, loc.Off, payload)
	}
	from.mu.Lock()
	qp := from.peers[target.id]
	from.mu.Unlock()
	if qp == nil {
		return at, fmt.Errorf("server: no mesh QP %s->%s", from.node.ID(), target.node.ID())
	}
	return qp.Write(at, payload, rdma.RemoteAddr{
		Region: rdma.RegionHandle{Node: loc.Node, RKey: loc.RKey},
		Offset: loc.Off,
	})
}
