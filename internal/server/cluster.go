package server

import (
	"sync/atomic"

	"gengar/internal/config"
	"gengar/internal/rdma"
)

// Cluster owns a fabric and a set of meshed Gengar servers — the
// in-process stand-in for the paper's testbed rack.
type Cluster struct {
	fabric     *rdma.Fabric
	cfg        config.Cluster
	registry   *Registry
	nextClient atomic.Uint32
}

// NewCluster builds cfg.Servers servers (IDs 1..N), joins them to a
// placement registry and meshes them. Callers must Close the cluster to
// stop the per-server flushers.
func NewCluster(cfg config.Cluster) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	fabric, err := rdma.NewFabric(cfg.Network)
	if err != nil {
		return nil, err
	}
	c := &Cluster{fabric: fabric, cfg: cfg, registry: NewRegistry()}
	for i := 1; i <= cfg.Servers; i++ {
		s, err := New(fabric, uint16(i), cfg)
		if err != nil {
			c.Close()
			return nil, err
		}
		if err := c.registry.Join(s); err != nil {
			s.Close()
			c.Close()
			return nil, err
		}
	}
	if err := c.registry.ConnectMesh(); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// Fabric returns the cluster's RDMA fabric.
func (c *Cluster) Fabric() *rdma.Fabric { return c.fabric }

// Registry returns the placement registry (and through it the servers).
func (c *Cluster) Registry() *Registry { return c.registry }

// Config returns the cluster configuration.
func (c *Cluster) Config() config.Cluster { return c.cfg }

// NextClientID hands out fabric-unique nonzero client IDs.
func (c *Cluster) NextClientID() uint32 { return c.nextClient.Add(1) }

// Close stops every server.
func (c *Cluster) Close() {
	for _, s := range c.registry.Servers() {
		s.Close()
	}
}
