package server

import (
	"sync/atomic"

	"gengar/internal/config"
	"gengar/internal/rdma"
	"gengar/internal/telemetry"
	"gengar/internal/telemetry/span"
)

// Cluster owns a fabric and a set of meshed Gengar servers — the
// in-process stand-in for the paper's testbed rack. It also owns the
// deployment's telemetry: a metrics registry every component registers
// into and a flight recorder of recent operations. Both are per-cluster
// so concurrent clusters (e.g. parallel benchmark runs) never mix
// samples.
type Cluster struct {
	fabric     *rdma.Fabric
	cfg        config.Cluster
	registry   *Registry
	telem      *telemetry.Registry
	flight     *telemetry.FlightRecorder
	tracer     *span.Tracer
	nextClient atomic.Uint32
}

// NewCluster builds cfg.Servers servers (IDs 1..N), joins them to a
// placement registry and meshes them. Callers must Close the cluster to
// stop the per-server flushers.
func NewCluster(cfg config.Cluster) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	fabric, err := rdma.NewFabric(cfg.Network)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		fabric:   fabric,
		cfg:      cfg,
		registry: NewRegistry(),
		telem:    telemetry.NewRegistry(),
		flight:   telemetry.NewFlightRecorder(telemetry.DefaultFlightEvents),
	}
	fabric.RegisterTelemetry(c.telem)
	c.telem.GaugeFunc("gengar_flight_events", "operation events recorded since start", func() int64 {
		return int64(c.flight.Total())
	})
	// The sim mount runs client and servers in one process, so one
	// tracer spans the whole path. Sampling starts disabled (the
	// zero-allocation default); harness code opts in per run via
	// Tracer().SetSampleEvery. Stage instants come from the virtual
	// timeline — ops mark spans with explicit simnet instants — so the
	// clock here only stamps the rare wall-path fallbacks.
	c.tracer = span.NewTracer(span.Config{
		Side:     "sim",
		Clock:    func() int64 { return int64(fabric.Clock().Now()) },
		Registry: c.telem,
		Labels:   []telemetry.Label{telemetry.L("transport", "sim")},
	})
	for i := 1; i <= cfg.Servers; i++ {
		s, err := New(fabric, uint16(i), cfg)
		if err != nil {
			c.Close()
			return nil, err
		}
		if err := c.registry.Join(s); err != nil {
			s.Close()
			c.Close()
			return nil, err
		}
		s.RegisterTelemetry(c.telem)
		// Staged writes ack before their NVM apply, so the flusher's
		// persist latency is observed from the flush worker rather than
		// marked on the (already finished) op span.
		s.Engine().SetFlushObserver(func(lagNanos int64) {
			c.tracer.ObserveStage("write", span.StageFlushPersist, lagNanos)
		})
		// Likewise the pacer's gate waits: they happen on the flush
		// worker, after the staging span already acked.
		s.Engine().SetGateObserver(func(gateNanos int64) {
			c.tracer.ObserveStage("write", span.StageFlushGate, gateNanos)
		})
	}
	if err := c.registry.ConnectMesh(); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// Fabric returns the cluster's RDMA fabric.
func (c *Cluster) Fabric() *rdma.Fabric { return c.fabric }

// Registry returns the placement registry (and through it the servers).
func (c *Cluster) Registry() *Registry { return c.registry }

// Telemetry returns the cluster-wide metrics registry.
func (c *Cluster) Telemetry() *telemetry.Registry { return c.telem }

// Recorder returns the cluster-wide flight recorder of recent
// operations.
func (c *Cluster) Recorder() *telemetry.FlightRecorder { return c.flight }

// Tracer returns the cluster-wide op tracer. Sampling is disabled until
// a caller raises it with SetSampleEvery.
func (c *Cluster) Tracer() *span.Tracer { return c.tracer }

// Config returns the cluster configuration.
func (c *Cluster) Config() config.Cluster { return c.cfg }

// NextClientID hands out fabric-unique nonzero client IDs.
func (c *Cluster) NextClientID() uint32 { return c.nextClient.Add(1) }

// Close stops every server.
func (c *Cluster) Close() {
	for _, s := range c.registry.Servers() {
		s.Close()
	}
}
