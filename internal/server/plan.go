package server

import (
	"encoding/binary"

	"gengar/internal/alloc"

	"gengar/internal/cache"
	"gengar/internal/region"
	"gengar/internal/simnet"
)

// maybePlan schedules a promotion/demotion plan on the proxy flusher
// goroutine when an epoch has passed: either PlanEvery of simulated time
// since the last plan, or the sketch's total observed weight doubling
// (so a burst of fresh access information is acted on even when little
// simulated time has elapsed). Running on the flusher serializes plans
// with write-throughs, so a copy install can never race a flush of the
// same object.
func (s *Server) maybePlan(at simnet.Time) {
	s.mu.Lock()
	total := s.sketch.Total()
	elapsed := !s.planned || at.Sub(s.lastPlan) >= s.cfg.Hotness.PlanEvery
	grown := total >= 2*s.lastPlanWeight && total > 0
	// Never plan (and in particular never decay) without fresh access
	// information: back-to-back plans on a stale sketch would age the
	// hot set into oblivion.
	if s.newWeight == 0 || (!elapsed && !grown) {
		s.mu.Unlock()
		return
	}
	s.planned = true
	s.lastPlan = at
	s.lastPlanWeight = total
	s.newWeight = 0
	s.mu.Unlock()

	// Best-effort: if the engine is closing, skip the plan.
	_ = s.engine.Submit(func() { s.executePlan(at) })
}

// copyFootprint returns the DRAM arena bytes a promoted copy of the
// object actually consumes: generation header plus data, rounded to the
// buddy allocator's block size. Budgeting the footprint rather than the
// object size keeps plans honest — otherwise the planner overcommits the
// arena ~2x (a power-of-two object plus its 8-byte header rounds up to
// the next block) and promotion/demotion thrashes at the budget edge.
func (s *Server) copyFootprint(base region.GAddr) int64 {
	size := s.objIdx.sizeOf(base)
	if size <= 0 {
		return 0
	}
	return alloc.BlockSize(size + cache.CopyHeaderBytes)
}

// executePlan runs one promotion/demotion round at simulated time at.
// It must only run on the engine goroutine.
func (s *Server) executePlan(at simnet.Time) {
	s.mu.Lock()
	promote, demote := s.policy.Plan(s.sketch, s.copyFootprint, s.remap.Promoted())
	// Age the sketch on a wall of simulated time, not per plan: several
	// plans may execute back-to-back when digests arrive in bursts, and
	// halving on each would decay a perfectly hot working set to nothing.
	if decayEvery := 4 * s.cfg.Hotness.PlanEvery; at.Sub(s.lastDecay) >= decayEvery {
		s.sketch.Decay()
		s.lastDecay = at
	}
	s.mu.Unlock()

	add := make(map[region.GAddr]cache.Location, len(promote))
	for _, base := range promote {
		size := s.objIdx.sizeOf(base)
		if size <= 0 {
			continue // freed since the plan was computed
		}
		target, off, err := s.registry.place(s, size)
		if err != nil {
			continue // arena full; try again next epoch
		}
		loc := cache.Location{
			Node:   target.node.ID(),
			RKey:   target.cacheMR.RKey(),
			Off:    off,
			Size:   size,
			Gen:    s.registry.nextGen(),
			HomeMR: s.nvmMR.RKey(),
		}
		// Read the authoritative NVM data and install header + data.
		payload := make([]byte, cache.CopyHeaderBytes+size)
		binary.BigEndian.PutUint64(payload, loc.Gen)
		tRead, err := s.nvm.Read(at, base.Offset(), payload[cache.CopyHeaderBytes:])
		if err != nil {
			_ = target.bufp.Release(off)
			continue
		}
		if _, err := s.registry.installCopy(s, tRead, loc, payload); err != nil {
			_ = target.bufp.Release(off)
			continue
		}
		add[base] = loc
		s.promotions.Inc()
	}

	released := s.remap.Apply(add, demote)
	for _, loc := range released {
		s.registry.release(loc)
		s.demotions.Inc()
	}
}
