package server

import (
	"errors"
	"strings"
	"testing"

	"gengar/internal/cache"
	"gengar/internal/config"
	"gengar/internal/rdma"
	"gengar/internal/region"
	"gengar/internal/rpc"
	"gengar/internal/simnet"
)

func testCfg() config.Cluster {
	cfg := config.Default()
	cfg.Servers = 2
	cfg.NVMBytes = 1 << 20
	cfg.DRAMBufferBytes = 1 << 16
	cfg.RingBytes = 1 << 23
	return cfg
}

func newCluster(t *testing.T) *Cluster {
	t.Helper()
	c, err := NewCluster(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// dial opens a control channel to a server from a fresh client node.
func dial(t *testing.T, c *Cluster, s *Server, name string) *rpc.Client {
	t.Helper()
	node, err := c.Fabric().AddNode(name)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := rpc.Dial(node, s.Node(), s.RPC())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl
}

func TestNodeName(t *testing.T) {
	if NodeName(3) != "server-3" {
		t.Fatalf("NodeName = %q", NodeName(3))
	}
}

func TestNewClusterValidates(t *testing.T) {
	cfg := testCfg()
	cfg.Servers = 0
	if _, err := NewCluster(cfg); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestClusterBasics(t *testing.T) {
	c := newCluster(t)
	if len(c.Registry().Servers()) != 2 {
		t.Fatal("server count")
	}
	if c.NextClientID() == 0 || c.NextClientID() == c.NextClientID() {
		t.Fatal("client IDs must be nonzero and unique")
	}
	if _, ok := c.Registry().ByID(1); !ok {
		t.Fatal("ByID(1)")
	}
	if _, ok := c.Registry().ByID(99); ok {
		t.Fatal("phantom ByID")
	}
	if _, ok := c.Registry().ByNode("server-2"); !ok {
		t.Fatal("ByNode")
	}
	if _, ok := c.Registry().ByNode("nope"); ok {
		t.Fatal("phantom ByNode")
	}
	if c.Config().Servers != 2 {
		t.Fatal("Config roundtrip")
	}
}

func TestRegistryJoinDuplicate(t *testing.T) {
	c := newCluster(t)
	s, _ := c.Registry().ByID(1)
	if err := c.Registry().Join(s); err == nil {
		t.Fatal("duplicate join accepted")
	}
}

func TestRegistryNextGenMonotonic(t *testing.T) {
	r := NewRegistry()
	prev := uint64(0)
	for i := 0; i < 100; i++ {
		g := r.nextGen()
		if g <= prev {
			t.Fatalf("gen not monotonic: %d after %d", g, prev)
		}
		prev = g
	}
}

func TestMallocFreeRPC(t *testing.T) {
	c := newCluster(t)
	s, _ := c.Registry().ByID(1)
	ctl := dial(t, c, s, "client-a")

	var w rpc.Writer
	w.I64(500)
	resp, _, err := ctl.Call(0, KindMalloc, w.Bytes())
	if err != nil {
		t.Fatalf("malloc: %v", err)
	}
	addr := region.GAddr(resp.U64())
	if addr.IsNil() || addr.Server() != 1 {
		t.Fatalf("addr = %v", addr)
	}
	if addr.Offset() == 0 {
		t.Fatal("object allocated at offset 0 (nil-address hazard)")
	}
	st := s.Stats()
	if st.Mallocs != 1 || st.Objects != 1 || st.PoolUsed < 500 {
		t.Fatalf("stats after malloc: %+v", st)
	}

	var f rpc.Writer
	f.U64(uint64(addr))
	if _, _, err := ctl.Call(0, KindFree, f.Bytes()); err != nil {
		t.Fatalf("free: %v", err)
	}
	if st := s.Stats(); st.Frees != 1 || st.Objects != 0 {
		t.Fatalf("stats after free: %+v", st)
	}
	// Double free is an error.
	if _, _, err := ctl.Call(0, KindFree, f.Bytes()); err == nil {
		t.Fatal("double free accepted")
	}
}

func TestMallocRejectsBadSize(t *testing.T) {
	c := newCluster(t)
	s, _ := c.Registry().ByID(1)
	ctl := dial(t, c, s, "client-a")
	var w rpc.Writer
	w.I64(-5)
	if _, _, err := ctl.Call(0, KindMalloc, w.Bytes()); err == nil {
		t.Fatal("negative malloc accepted")
	}
}

func TestFreeWrongHome(t *testing.T) {
	c := newCluster(t)
	s, _ := c.Registry().ByID(1)
	ctl := dial(t, c, s, "client-a")
	var w rpc.Writer
	w.U64(uint64(region.MustGAddr(2, 64))) // homed on server 2
	_, _, err := ctl.Call(0, KindFree, w.Bytes())
	if err == nil || !strings.Contains(err.Error(), "not homed") {
		t.Fatalf("wrong-home free: %v", err)
	}
}

func TestOpenCloseSession(t *testing.T) {
	c := newCluster(t)
	s, _ := c.Registry().ByID(1)
	ctl := dial(t, c, s, "client-a")

	resp, _, err := ctl.Call(0, KindOpenSession, nil)
	if err != nil {
		t.Fatal(err)
	}
	ringRKey := resp.U32()
	ringBase := resp.I64()
	slots := resp.U32()
	slotSize := resp.U32()
	nvmRKey := resp.U32()
	lockRKey := resp.U32()
	_ = resp.I64() // lock base
	lockSlots := resp.U32()
	if err := resp.Err(); err != nil {
		t.Fatal(err)
	}
	if ringRKey == 0 || nvmRKey == 0 || lockRKey == 0 {
		t.Fatal("zero rkeys in session")
	}
	if int(slots) != testCfg().Proxy.RingSlots || int(slotSize) != testCfg().Proxy.RingSlotSize {
		t.Fatalf("ring geometry %dx%d", slots, slotSize)
	}
	if int(lockSlots) != testCfg().LockSlots {
		t.Fatalf("lock slots %d", lockSlots)
	}

	// Second session gets a disjoint ring.
	resp2, _, err := ctl.Call(0, KindOpenSession, nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp2.U32()
	ringBase2 := resp2.I64()
	if ringBase2 == ringBase {
		t.Fatal("sessions share a ring")
	}

	// Close the first; reopening reuses its ring.
	var w rpc.Writer
	w.I64(ringBase)
	if _, _, err := ctl.Call(0, KindCloseSession, w.Bytes()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ctl.Call(0, KindCloseSession, w.Bytes()); err == nil {
		t.Fatal("double ring close accepted")
	}
	resp3, _, err := ctl.Call(0, KindOpenSession, nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp3.U32()
	if got := resp3.I64(); got != ringBase {
		t.Fatalf("freed ring not reused: %d != %d", got, ringBase)
	}
}

func TestCloseSessionValidatesBase(t *testing.T) {
	c := newCluster(t)
	s, _ := c.Registry().ByID(1)
	ctl := dial(t, c, s, "client-a")
	var w rpc.Writer
	w.I64(12345) // not ring-aligned, never allocated
	if _, _, err := ctl.Call(0, KindCloseSession, w.Bytes()); err == nil {
		t.Fatal("bogus ring close accepted")
	}
}

func TestRegistryPlacePrefersMostFree(t *testing.T) {
	c := newCluster(t)
	r := c.Registry()
	s1, _ := r.ByID(1)
	s2, _ := r.ByID(2)
	// Consume most of s1's arena so s2 has more free space.
	if _, err := s1.bufp.Place(s1.bufp.Capacity() / 2); err != nil {
		t.Fatal(err)
	}
	target, off, err := r.place(s1, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if target != s2 {
		t.Fatalf("placed on %d, want 2", target.ID())
	}
	if err := s2.bufp.Release(off); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryPlaceExhaustion(t *testing.T) {
	c := newCluster(t)
	r := c.Registry()
	s1, _ := r.ByID(1)
	_, _, err := r.place(s1, 1<<30)
	if !errors.Is(err, ErrNoBufferSpace) {
		t.Fatalf("oversize place: %v", err)
	}
}

func TestRegistryReleaseUnknownNode(t *testing.T) {
	c := newCluster(t)
	// Must not panic.
	c.Registry().release(cache.Location{Node: "ghost"})
}

func TestWriteThroughRPC(t *testing.T) {
	// Covered end-to-end in core; here: wrong home is rejected, unknown
	// object is a no-op success.
	c := newCluster(t)
	s, _ := c.Registry().ByID(1)
	ctl := dial(t, c, s, "client-a")
	var w rpc.Writer
	w.U64(uint64(region.MustGAddr(2, 64))).U32(8)
	if _, _, err := ctl.Call(0, KindWriteThrough, w.Bytes()); err == nil {
		t.Fatal("wrong-home write-through accepted")
	}
	var w2 rpc.Writer
	w2.U64(uint64(region.MustGAddr(1, 64))).U32(8)
	if _, _, err := ctl.Call(0, KindWriteThrough, w2.Bytes()); err != nil {
		t.Fatalf("unknown-object write-through: %v", err)
	}
}

func TestServerStatsSnapshot(t *testing.T) {
	c := newCluster(t)
	s, _ := c.Registry().ByID(1)
	st := s.Stats()
	if st.Objects != 0 || st.Promoted != 0 || st.RemapEpoch != 0 {
		t.Fatalf("fresh stats: %+v", st)
	}
	if st.PoolUsed == 0 {
		t.Fatal("offset-0 guard block not accounted")
	}
}

func TestMeshConnected(t *testing.T) {
	c := newCluster(t)
	s1, _ := c.Registry().ByID(1)
	s2, _ := c.Registry().ByID(2)
	s1.mu.Lock()
	qp12 := s1.peers[2]
	s1.mu.Unlock()
	s2.mu.Lock()
	qp21 := s2.peers[1]
	s2.mu.Unlock()
	if qp12 == nil || qp21 == nil {
		t.Fatal("mesh QPs missing")
	}
	// The mesh QP can actually move bytes into the peer's cache arena.
	dst := rdma.RemoteAddr{
		Region: rdma.RegionHandle{Node: s2.Node().ID(), RKey: s2.cacheMR.RKey()},
		Offset: 0,
	}
	if _, err := qp12.Write(simnet.Time(0), []byte("mesh"), dst); err != nil {
		t.Fatalf("mesh write: %v", err)
	}
	got := make([]byte, 4)
	if err := s2.cacheDev.ReadRaw(0, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "mesh" {
		t.Fatalf("mesh data %q", got)
	}
}
