package server

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"

	"gengar/internal/cache"
	"gengar/internal/config"
	"gengar/internal/region"
	"gengar/internal/rpc"
	"gengar/internal/simnet"
)

// planCfg builds a config whose epochs trigger easily.
func planCfg() config.Cluster {
	cfg := testCfg()
	cfg.Hotness.MinWeight = 2
	cfg.Hotness.PlanEvery = time.Microsecond
	return cfg
}

// mallocOn allocates an object directly through a server's RPC handler.
func mallocOn(t *testing.T, ctl *rpc.Client, size int64) region.GAddr {
	t.Helper()
	var w rpc.Writer
	w.I64(size)
	resp, _, err := ctl.Call(0, KindMalloc, w.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	addr := region.GAddr(resp.U64())
	if err := resp.Err(); err != nil {
		t.Fatal(err)
	}
	return addr
}

// digest reports synthetic access counts for one object.
func digest(t *testing.T, ctl *rpc.Client, at simnet.Time, addr region.GAddr, reads uint32) uint64 {
	t.Helper()
	var w rpc.Writer
	w.U32(1).U64(uint64(addr)).U32(reads).U32(0)
	resp, _, err := ctl.Call(at, KindDigest, w.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	epoch := resp.U64()
	if err := resp.Err(); err != nil {
		t.Fatal(err)
	}
	return epoch
}

func TestPlanPromotesHotObject(t *testing.T) {
	c, err := NewCluster(planCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s, _ := c.Registry().ByID(1)
	ctl := dial(t, c, s, "client-x")

	addr := mallocOn(t, ctl, 512)
	want := bytes.Repeat([]byte{0xEE}, 512)
	if err := s.nvm.WriteRaw(addr.Offset(), want); err != nil {
		t.Fatal(err)
	}

	digest(t, ctl, 0, addr, 100)
	if err := s.Engine().Barrier(); err != nil {
		t.Fatal(err)
	}

	epoch, snap := s.RemapSnapshot()
	if epoch == 0 || len(snap) != 1 {
		t.Fatalf("promotion missing: epoch=%d snap=%v", epoch, snap)
	}
	loc, ok := snap[addr]
	if !ok {
		t.Fatalf("promoted set %v lacks %v", snap, addr)
	}
	if loc.Size != 512 || loc.Gen == 0 {
		t.Fatalf("location fields: %+v", loc)
	}

	// The copy carries the generation header followed by the NVM data.
	host, ok := c.Registry().ByNode(loc.Node)
	if !ok {
		t.Fatalf("copy host %q unknown", loc.Node)
	}
	hdr := make([]byte, cache.CopyHeaderBytes+512)
	if err := host.cacheDev.ReadRaw(loc.Off, hdr); err != nil {
		t.Fatal(err)
	}
	if binary.BigEndian.Uint64(hdr) != loc.Gen {
		t.Fatal("generation header mismatch")
	}
	if !bytes.Equal(hdr[cache.CopyHeaderBytes:], want) {
		t.Fatal("copy data mismatch")
	}
	if s.Stats().Promotions != 1 {
		t.Fatalf("promotions = %d", s.Stats().Promotions)
	}
}

func TestPlanDemotesWhenDisplaced(t *testing.T) {
	cfg := planCfg()
	cfg.DRAMBufferBytes = 1 << 10 // fits one 512 B copy (rounded to 1 KiB)
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s, _ := c.Registry().ByID(1)
	ctl := dial(t, c, s, "client-x")

	a := mallocOn(t, ctl, 512)
	b := mallocOn(t, ctl, 512)
	digest(t, ctl, 0, a, 10)
	if err := s.Engine().Barrier(); err != nil {
		t.Fatal(err)
	}
	if _, snap := s.RemapSnapshot(); len(snap) != 1 {
		t.Fatalf("first promotion: %v", snap)
	}
	// b becomes far hotter; with room for one copy, a must be displaced.
	// (Advance simulated time so the plan period elapses.)
	digest(t, ctl, simnet.Time(10*time.Millisecond), b, 1000)
	if err := s.Engine().Barrier(); err != nil {
		t.Fatal(err)
	}
	_, snap := s.RemapSnapshot()
	if len(snap) != 1 {
		t.Fatalf("after displacement: %v", snap)
	}
	if _, stillA := snap[a]; stillA {
		t.Fatal("cold incumbent survived a 100x hotter challenger")
	}
	if _, hasB := snap[b]; !hasB {
		t.Fatal("hot challenger not promoted")
	}
	if s.Stats().Demotions != 1 {
		t.Fatalf("demotions = %d", s.Stats().Demotions)
	}
	// Exactly one copy's worth of arena is in use cluster-wide (the
	// challenger may have spilled to the peer while the incumbent still
	// held the local arena).
	var used int64
	for _, srv := range c.Registry().Servers() {
		used += srv.bufp.UsedBytes()
	}
	if used != 1<<10 {
		t.Fatalf("cluster buffer bytes %d after displacement (leak?)", used)
	}
}

func TestDigestIgnoresUnknownAddresses(t *testing.T) {
	c, err := NewCluster(planCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s, _ := c.Registry().ByID(1)
	ctl := dial(t, c, s, "client-x")

	// A digest naming an address that was never allocated must not
	// promote anything or error.
	digest(t, ctl, 0, region.MustGAddr(1, 1<<16), 100)
	if err := s.Engine().Barrier(); err != nil {
		t.Fatal(err)
	}
	if _, snap := s.RemapSnapshot(); len(snap) != 0 {
		t.Fatalf("phantom promotion: %v", snap)
	}
}

func TestWriteThroughRefreshesPromotedCopy(t *testing.T) {
	c, err := NewCluster(planCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s, _ := c.Registry().ByID(1)
	ctl := dial(t, c, s, "client-x")

	addr := mallocOn(t, ctl, 256)
	digest(t, ctl, 0, addr, 100)
	if err := s.Engine().Barrier(); err != nil {
		t.Fatal(err)
	}
	_, snap := s.RemapSnapshot()
	loc, ok := snap[addr]
	if !ok {
		t.Fatal("not promoted")
	}

	// Simulate a client's direct NVM write of a sub-range, then the
	// write-through RPC; the copy must reflect it.
	patch := []byte("PATCH")
	if err := s.nvm.WriteRaw(addr.Offset()+100, patch); err != nil {
		t.Fatal(err)
	}
	var w rpc.Writer
	w.U64(uint64(addr.Add(100))).U32(uint32(len(patch)))
	if _, _, err := ctl.Call(0, KindWriteThrough, w.Bytes()); err != nil {
		t.Fatal(err)
	}
	host, _ := c.Registry().ByNode(loc.Node)
	got := make([]byte, len(patch))
	if err := host.cacheDev.ReadRaw(loc.Off+cache.CopyHeaderBytes+100, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, patch) {
		t.Fatalf("copy not refreshed: %q", got)
	}
}

func TestApplyToCacheBoundsAndMisses(t *testing.T) {
	c, err := NewCluster(planCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s, _ := c.Registry().ByID(1)
	ctl := dial(t, c, s, "client-x")
	addr := mallocOn(t, ctl, 128)

	// Not promoted: hook is a no-op returning the input time.
	if got := s.applyToCache(42, addr, []byte("x")); got != 42 {
		t.Fatalf("unpromoted applyToCache returned %v", got)
	}
	// Unknown object: also a no-op.
	if got := s.applyToCache(42, region.MustGAddr(1, 1<<20), []byte("x")); got != 42 {
		t.Fatalf("unknown-object applyToCache returned %v", got)
	}

	digest(t, ctl, 0, addr, 100)
	if err := s.Engine().Barrier(); err != nil {
		t.Fatal(err)
	}
	// Promoted: a write inside bounds advances time.
	if got := s.applyToCache(42, addr, []byte("ok")); got <= 42 {
		t.Fatalf("promoted applyToCache returned %v", got)
	}
}

func TestFreeWhilePromotedReleasesCopy(t *testing.T) {
	c, err := NewCluster(planCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s, _ := c.Registry().ByID(1)
	ctl := dial(t, c, s, "client-x")
	addr := mallocOn(t, ctl, 256)
	digest(t, ctl, 0, addr, 100)
	if err := s.Engine().Barrier(); err != nil {
		t.Fatal(err)
	}
	if s.remap.Len() != 1 {
		t.Fatal("not promoted")
	}
	var w rpc.Writer
	w.U64(uint64(addr))
	if _, _, err := ctl.Call(0, KindFree, w.Bytes()); err != nil {
		t.Fatal(err)
	}
	if s.remap.Len() != 0 || s.bufp.UsedBytes() != 0 {
		t.Fatalf("free left copy behind: promoted=%d used=%d", s.remap.Len(), s.bufp.UsedBytes())
	}
}

func TestCopyFootprint(t *testing.T) {
	c, err := NewCluster(planCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s, _ := c.Registry().ByID(1)
	ctl := dial(t, c, s, "client-x")
	addr := mallocOn(t, ctl, 1024)
	// 1024 data + 8 header rounds to 2048 in the buddy arena.
	if got := s.copyFootprint(addr); got != 2048 {
		t.Fatalf("copyFootprint = %d, want 2048", got)
	}
	if got := s.copyFootprint(region.MustGAddr(1, 1<<20)); got != 0 {
		t.Fatalf("phantom footprint = %d", got)
	}
}

func TestPlanSpillsToPeerWhenLocalArenaFull(t *testing.T) {
	cfg := planCfg()
	cfg.DRAMBufferBytes = 1 << 12
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s1, _ := c.Registry().ByID(1)
	s2, _ := c.Registry().ByID(2)
	ctl := dial(t, c, s1, "client-x")

	// Consume server 1's whole arena so placement must go to server 2.
	if _, err := s1.bufp.Place(s1.bufp.Capacity()); err != nil {
		t.Fatal(err)
	}
	addr := mallocOn(t, ctl, 256)
	digest(t, ctl, 0, addr, 100)
	if err := s1.Engine().Barrier(); err != nil {
		t.Fatal(err)
	}
	_, snap := s1.RemapSnapshot()
	loc, ok := snap[addr]
	if !ok {
		t.Fatal("not promoted despite peer space")
	}
	if loc.Node != s2.Node().ID() {
		t.Fatalf("copy placed on %s, want peer %s", loc.Node, s2.Node().ID())
	}
	// The remote install actually wrote the generation header.
	hdr := make([]byte, 8)
	if err := s2.cacheDev.ReadRaw(loc.Off, hdr); err != nil {
		t.Fatal(err)
	}
	if binary.BigEndian.Uint64(hdr) != loc.Gen {
		t.Fatal("remote install missing generation header")
	}
}
