// Package server mounts the transport-agnostic Gengar engine
// (internal/engine) on the simulated RDMA fabric: it is the in-process
// stand-in for the daemon a real deployment runs per memory server.
// The engine owns the mechanisms — NVM pool + buddy allocator, DRAM
// buffer arena with promoted copies, staging rings + proxy flusher,
// lock table, hotness sketch and remap table. This mount adds what is
// transport- and deployment-specific:
//
//   - a fabric node with registered memory regions (NVM, cache arena,
//     staging rings, lock table) clients address with one-sided verbs,
//   - the control-plane RPC endpoints (gmalloc/gfree/digest/...),
//   - cluster-wide placement of promoted copies via the shared registry
//     and server-to-server queue pairs — the "distributed DRAM buffers"
//     of the paper.
//
// Virtual time: every operation carries the caller's simnet instant, so
// the engine is driven entirely by the simulation's clockless timeline.
package server

import (
	"fmt"
	"sync"

	"gengar/internal/config"
	"gengar/internal/engine"
	"gengar/internal/hmem"
	"gengar/internal/hotness"
	"gengar/internal/lock"
	"gengar/internal/proxy"
	"gengar/internal/rdma"
	"gengar/internal/region"
	"gengar/internal/rpc"
	"gengar/internal/simnet"
	"gengar/internal/telemetry"

	"gengar/internal/cache"
)

// Control-plane RPC kinds served by every Gengar server.
const (
	KindMalloc rpc.Kind = iota + 1
	KindFree
	KindDigest
	KindRemapFetch
	KindOpenSession
	KindWriteThrough
	KindCloseSession
	KindWriteThroughBatch
)

// ErrNotHome is returned for operations addressed to the wrong home
// server.
var ErrNotHome = engine.ErrNotHome

// Stats is a server activity snapshot (the engine's, re-exported so
// callers of the mount need not import the engine package).
type Stats = engine.Stats

// NodeName returns the fabric node name of server id.
func NodeName(id uint16) string { return fmt.Sprintf("server-%d", id) }

// Server is one Gengar memory server: an engine mounted on the
// simulated fabric.
type Server struct {
	id   uint16
	cfg  config.Cluster
	node *rdma.Node
	eng  *engine.Engine

	// Aliases into the engine's state, for the mount's own paths (MR
	// registration, registry placement, tests).
	nvm      *hmem.Device
	cacheDev *hmem.Device
	ringDev  *hmem.Device
	lockDev  *hmem.Device
	bufp     *cache.BufferPool
	remap    *cache.RemapTable

	nvmMR   *rdma.MR
	cacheMR *rdma.MR
	ringMR  *rdma.MR
	lockMR  *rdma.MR

	rpcSrv   *rpc.Server
	registry *Registry

	mu    sync.Mutex // guards peers
	peers map[uint16]*rdma.QP
}

// New builds a server with the given ID on the fabric, creating its
// engine and registering its memory regions. The server is not usable
// for placement until Join has added it to a Registry and ConnectMesh
// has meshed it with its peers.
func New(f *rdma.Fabric, id uint16, cfg config.Cluster) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	node, err := f.AddNode(NodeName(id))
	if err != nil {
		return nil, err
	}
	eng, err := engine.New(engine.Config{ID: id, Name: NodeName(id), Cluster: cfg})
	if err != nil {
		return nil, err
	}

	s := &Server{
		id:       id,
		cfg:      cfg,
		node:     node,
		eng:      eng,
		nvm:      eng.NVM(),
		cacheDev: eng.CacheDev(),
		ringDev:  eng.RingDev(),
		lockDev:  eng.LockDev(),
		bufp:     eng.BufferPool(),
		remap:    eng.Remap(),
		peers:    make(map[uint16]*rdma.QP),
	}

	if s.nvmMR, err = node.RegisterMR(s.nvm, 0, s.nvm.Size(), rdma.AccessAll); err != nil {
		return nil, err
	}
	if s.cacheMR, err = node.RegisterMR(s.cacheDev, 0, s.cacheDev.Size(), rdma.AccessAll); err != nil {
		return nil, err
	}
	if s.ringMR, err = node.RegisterMR(s.ringDev, 0, s.ringDev.Size(), rdma.AccessRemoteWrite|rdma.AccessRemoteRead); err != nil {
		return nil, err
	}
	if s.lockMR, err = node.RegisterMR(s.lockDev, 0, s.lockDev.Size(), rdma.AccessAll); err != nil {
		return nil, err
	}

	s.rpcSrv = rpc.NewServer(eng.CPU(), cfg.RPCCPUPerReq)
	s.rpcSrv.Handle(KindMalloc, s.handleMalloc)
	s.rpcSrv.Handle(KindFree, s.handleFree)
	s.rpcSrv.Handle(KindDigest, s.handleDigest)
	s.rpcSrv.Handle(KindRemapFetch, s.handleRemapFetch)
	s.rpcSrv.Handle(KindOpenSession, s.handleOpenSession)
	s.rpcSrv.Handle(KindWriteThrough, s.handleWriteThrough)
	s.rpcSrv.Handle(KindCloseSession, s.handleCloseSession)
	s.rpcSrv.Handle(KindWriteThroughBatch, s.handleWriteThroughBatch)
	return s, nil
}

// ID returns the server's pool ID.
func (s *Server) ID() uint16 { return s.id }

// Node returns the server's fabric node.
func (s *Server) Node() *rdma.Node { return s.node }

// Core returns the server's engine — the transport-agnostic mechanism
// state this mount serves.
func (s *Server) Core() *engine.Engine { return s.eng }

// Engine returns the server's proxy flusher.
func (s *Server) Engine() *proxy.Engine { return s.eng.Flusher() }

// RPC returns the server's control-plane endpoint.
func (s *Server) RPC() *rpc.Server { return s.rpcSrv }

// NVMHandle returns the region handle of the NVM pool.
func (s *Server) NVMHandle() rdma.RegionHandle { return s.nvmMR.Handle() }

// LockGeometry returns the lock table description for clients.
func (s *Server) LockGeometry() lock.Geometry {
	tbl := s.eng.LockTable()
	return lock.Geometry{Handle: s.lockMR.Handle(), Base: tbl.Base(), Slots: tbl.Slots()}
}

// RemapSnapshot exposes the current remap table (epoch + entries).
func (s *Server) RemapSnapshot() (uint64, map[region.GAddr]cache.Location) {
	return s.eng.RemapSnapshot()
}

// Stats returns a snapshot of the server's counters.
func (s *Server) Stats() Stats { return s.eng.Stats() }

// RegisterTelemetry exposes the server's live counters and derived
// state in reg under the gengar_server_* names, labeled with the
// server's pool ID. The same counter instances back both Stats and the
// registry, so the two views never disagree.
func (s *Server) RegisterTelemetry(reg *telemetry.Registry) {
	s.eng.RegisterTelemetry(reg, telemetry.L("server", fmt.Sprintf("%d", s.id)))
}

// Close stops the server's flusher and RPC endpoint.
func (s *Server) Close() {
	s.eng.Close()
	s.rpcSrv.Close()
}

// copyFootprint is the engine's promotion budget charge for an object
// (kept as a method for the mount's tests).
func (s *Server) copyFootprint(base region.GAddr) int64 { return s.eng.CopyFootprint(base) }

// applyToCache is the proxy flusher's write-through hook (kept as a
// method for the mount's tests).
func (s *Server) applyToCache(at simnet.Time, addr region.GAddr, data []byte) simnet.Time {
	return s.eng.ApplyToCache(at, addr, data)
}

// --- control-plane handlers ---

func (s *Server) handleMalloc(at simnet.Time, req *rpc.Reader) ([]byte, simnet.Time, error) {
	size := req.I64()
	if err := req.Err(); err != nil {
		return nil, at, err
	}
	addr, err := s.eng.Malloc(size)
	if err != nil {
		return nil, at, err
	}
	var w rpc.Writer
	w.U64(uint64(addr))
	return w.Bytes(), at, nil
}

func (s *Server) handleFree(at simnet.Time, req *rpc.Reader) ([]byte, simnet.Time, error) {
	addr := region.GAddr(req.U64())
	if err := req.Err(); err != nil {
		return nil, at, err
	}
	if addr.Server() != s.id {
		return nil, at, fmt.Errorf("%w: %v", ErrNotHome, addr)
	}
	return nil, at, s.eng.Free(addr)
}

func (s *Server) handleDigest(at simnet.Time, req *rpc.Reader) ([]byte, simnet.Time, error) {
	n := int(req.U32())
	entries := make([]hotness.Entry, 0, n)
	for i := 0; i < n; i++ {
		ent := hotness.Entry{
			Addr:   region.GAddr(req.U64()),
			Reads:  uint64(req.U32()),
			Writes: uint64(req.U32()),
		}
		if req.Err() != nil {
			break
		}
		entries = append(entries, ent)
	}
	if err := req.Err(); err != nil {
		return nil, at, err
	}
	epoch := s.eng.Digest(at, entries)
	var w rpc.Writer
	w.U64(epoch)
	return w.Bytes(), at, nil
}

func (s *Server) handleRemapFetch(at simnet.Time, req *rpc.Reader) ([]byte, simnet.Time, error) {
	epoch, entries := s.eng.RemapSnapshot()
	var w rpc.Writer
	w.U64(epoch).U32(uint32(len(entries)))
	for base, loc := range entries {
		w.U64(uint64(base))
		loc.Encode(&w)
	}
	return w.Bytes(), at, nil
}

func (s *Server) handleOpenSession(at simnet.Time, req *rpc.Reader) ([]byte, simnet.Time, error) {
	base, err := s.eng.OpenRing()
	if err != nil {
		return nil, at, err
	}
	slots, slotSize := s.eng.RingGeometry()
	tbl := s.eng.LockTable()
	var w rpc.Writer
	w.U32(s.ringMR.RKey()).I64(base).
		U32(uint32(slots)).U32(uint32(slotSize)).
		U32(s.nvmMR.RKey()).
		U32(s.lockMR.RKey()).I64(tbl.Base()).U32(uint32(tbl.Slots()))
	return w.Bytes(), at, nil
}

// handleCloseSession returns a session's staging ring for reuse. The
// client must have drained its writer first; the server trusts the
// client here because ring contents are only interpreted via the
// flusher queue, which the departing writer no longer feeds.
func (s *Server) handleCloseSession(at simnet.Time, req *rpc.Reader) ([]byte, simnet.Time, error) {
	base := req.I64()
	if err := req.Err(); err != nil {
		return nil, at, err
	}
	return nil, at, s.eng.CloseRing(base)
}

// handleWriteThrough keeps a promoted copy coherent after a client wrote
// the home NVM directly (the proxy-disabled path): the server re-reads
// the just-written NVM range and refreshes the DRAM copy synchronously,
// so the RPC reply is the client's coherence point.
func (s *Server) handleWriteThrough(at simnet.Time, req *rpc.Reader) ([]byte, simnet.Time, error) {
	addr := region.GAddr(req.U64())
	size := int64(req.U32())
	if err := req.Err(); err != nil {
		return nil, at, err
	}
	end, err := s.refreshCopy(at, addr, size)
	return nil, end, err
}

// handleWriteThroughBatch is the vectored form of handleWriteThrough:
// one RPC refreshes the promoted copies of a whole batched write chain,
// so a k-record direct-path burst pays one control-plane round trip
// instead of k. Ranges are refreshed in request order.
func (s *Server) handleWriteThroughBatch(at simnet.Time, req *rpc.Reader) ([]byte, simnet.Time, error) {
	n := int(req.U32())
	end := at
	for i := 0; i < n; i++ {
		addr := region.GAddr(req.U64())
		size := int64(req.U32())
		if err := req.Err(); err != nil {
			return nil, at, err
		}
		var err error
		end, err = s.refreshCopy(end, addr, size)
		if err != nil {
			return nil, at, err
		}
	}
	return nil, end, req.Err()
}

// refreshCopy re-reads the just-written NVM range and refreshes the
// promoted DRAM copy covering it, if any.
func (s *Server) refreshCopy(at simnet.Time, addr region.GAddr, size int64) (simnet.Time, error) {
	if addr.Server() != s.id {
		return at, fmt.Errorf("%w: %v", ErrNotHome, addr)
	}
	return s.eng.RefreshCopy(at, addr, size)
}
