// Package server implements the Gengar memory server: the daemon that
// exports a server's NVM pool and DRAM into the distributed hybrid
// memory pool. Each server owns
//
//   - an NVM pool device with a buddy allocator (gmalloc/gfree targets),
//   - a DRAM buffer arena holding promoted copies of hot objects,
//   - DRAM staging rings and a proxy flusher for the redesigned write
//     path,
//   - a lock table for multi-user consistency,
//   - the hotness sketch and remap table for its home objects, and
//   - the control-plane RPC endpoints clients talk to.
//
// Promoted copies may be placed on any server's buffer arena — the
// "distributed DRAM buffers" of the paper — via the cluster-wide
// placement registry and server-to-server queue pairs.
package server

import (
	"errors"
	"fmt"
	"sync"

	"gengar/internal/alloc"
	"gengar/internal/cache"
	"gengar/internal/config"
	"gengar/internal/hmem"
	"gengar/internal/hotness"
	"gengar/internal/lock"
	"gengar/internal/metrics"
	"gengar/internal/proxy"
	"gengar/internal/rdma"
	"gengar/internal/region"
	"gengar/internal/rpc"
	"gengar/internal/simnet"
	"gengar/internal/telemetry"
)

// Control-plane RPC kinds served by every Gengar server.
const (
	KindMalloc rpc.Kind = iota + 1
	KindFree
	KindDigest
	KindRemapFetch
	KindOpenSession
	KindWriteThrough
	KindCloseSession
	KindWriteThroughBatch
)

// ErrNotHome is returned for operations addressed to the wrong home
// server.
var ErrNotHome = errors.New("server: address not homed here")

// NodeName returns the fabric node name of server id.
func NodeName(id uint16) string { return fmt.Sprintf("server-%d", id) }

// Server is one Gengar memory server.
type Server struct {
	id   uint16
	cfg  config.Cluster
	node *rdma.Node
	cpu  *simnet.Resource

	nvm      *hmem.Device
	cacheDev *hmem.Device
	ringDev  *hmem.Device
	lockDev  *hmem.Device

	nvmMR   *rdma.MR
	cacheMR *rdma.MR
	ringMR  *rdma.MR
	lockMR  *rdma.MR

	pool    *alloc.Buddy
	objIdx  *objIndex
	remap   *cache.RemapTable
	bufp    *cache.BufferPool
	policy  hotness.Policy
	engine  *proxy.Engine
	lockTbl *lock.Table
	rpcSrv  *rpc.Server

	registry *Registry

	mu             sync.Mutex // guards sketch, plan state, nextRing, peers
	sketch         *hotness.SpaceSaving
	lastPlan       simnet.Time
	lastPlanWeight uint64
	newWeight      uint64 // digest weight landed since the last plan
	lastDecay      simnet.Time
	planned        bool
	nextRing       int64
	freeRings      []int64
	peers          map[uint16]*rdma.QP

	promotions metrics.Counter
	demotions  metrics.Counter
	digests    metrics.Counter
	mallocs    metrics.Counter
	frees      metrics.Counter
}

// New builds a server with the given ID on the fabric, creating its
// devices and registering its memory regions. The server is not usable
// for placement until Join has added it to a Registry and ConnectPeer
// has meshed it with its peers.
func New(f *rdma.Fabric, id uint16, cfg config.Cluster) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	node, err := f.AddNode(NodeName(id))
	if err != nil {
		return nil, err
	}
	name := NodeName(id)
	nvm, err := hmem.NewDevice(name+"/nvm", cfg.NVMBytes, cfg.PoolMedia)
	if err != nil {
		return nil, err
	}
	cacheDev, err := hmem.NewDevice(name+"/cache", cfg.DRAMBufferBytes, cfg.BufferMedia)
	if err != nil {
		return nil, err
	}
	ringDev, err := hmem.NewDevice(name+"/rings", cfg.RingBytes, cfg.BufferMedia)
	if err != nil {
		return nil, err
	}
	lockDev, err := hmem.NewDevice(name+"/locks", int64(cfg.LockSlots)*lock.SlotBytes, cfg.BufferMedia)
	if err != nil {
		return nil, err
	}

	s := &Server{
		id:       id,
		cfg:      cfg,
		node:     node,
		cpu:      simnet.NewResource(name + "/cpu"),
		nvm:      nvm,
		cacheDev: cacheDev,
		ringDev:  ringDev,
		lockDev:  lockDev,
		objIdx:   newObjIndex(),
		remap:    cache.NewRemapTable(),
		sketch:   hotness.NewSpaceSaving(cfg.Hotness.SketchK),
		policy: hotness.Policy{
			BudgetBytes: cfg.DRAMBufferBytes,
			MinWeight:   cfg.Hotness.MinWeight,
			Hysteresis:  cfg.Hotness.Hysteresis,
			MaxChurn:    cfg.Hotness.MaxChurn,
		},
		peers: make(map[uint16]*rdma.QP),
	}

	if s.nvmMR, err = node.RegisterMR(nvm, 0, nvm.Size(), rdma.AccessAll); err != nil {
		return nil, err
	}
	if s.cacheMR, err = node.RegisterMR(cacheDev, 0, cacheDev.Size(), rdma.AccessAll); err != nil {
		return nil, err
	}
	if s.ringMR, err = node.RegisterMR(ringDev, 0, ringDev.Size(), rdma.AccessRemoteWrite|rdma.AccessRemoteRead); err != nil {
		return nil, err
	}
	if s.lockMR, err = node.RegisterMR(lockDev, 0, lockDev.Size(), rdma.AccessAll); err != nil {
		return nil, err
	}

	if s.pool, err = alloc.New(cfg.NVMBytes); err != nil {
		return nil, err
	}
	// Burn offset 0 so no object is ever at the nil global address.
	if _, err := s.pool.Alloc(alloc.MinBlock); err != nil {
		return nil, err
	}
	if s.bufp, err = cache.NewBufferPool(cacheDev); err != nil {
		return nil, err
	}
	if s.lockTbl, err = lock.NewTable(lockDev, 0, cfg.LockSlots); err != nil {
		return nil, err
	}
	if s.engine, err = proxy.NewEngine(ringDev, nvm, s.cpu, cfg.Proxy.PollCost, s.applyToCache); err != nil {
		return nil, err
	}

	s.rpcSrv = rpc.NewServer(s.cpu, cfg.RPCCPUPerReq)
	s.rpcSrv.Handle(KindMalloc, s.handleMalloc)
	s.rpcSrv.Handle(KindFree, s.handleFree)
	s.rpcSrv.Handle(KindDigest, s.handleDigest)
	s.rpcSrv.Handle(KindRemapFetch, s.handleRemapFetch)
	s.rpcSrv.Handle(KindOpenSession, s.handleOpenSession)
	s.rpcSrv.Handle(KindWriteThrough, s.handleWriteThrough)
	s.rpcSrv.Handle(KindCloseSession, s.handleCloseSession)
	s.rpcSrv.Handle(KindWriteThroughBatch, s.handleWriteThroughBatch)
	return s, nil
}

// ID returns the server's pool ID.
func (s *Server) ID() uint16 { return s.id }

// Node returns the server's fabric node.
func (s *Server) Node() *rdma.Node { return s.node }

// Engine returns the server's proxy flusher.
func (s *Server) Engine() *proxy.Engine { return s.engine }

// RPC returns the server's control-plane endpoint.
func (s *Server) RPC() *rpc.Server { return s.rpcSrv }

// NVMHandle returns the region handle of the NVM pool.
func (s *Server) NVMHandle() rdma.RegionHandle { return s.nvmMR.Handle() }

// LockGeometry returns the lock table description for clients.
func (s *Server) LockGeometry() lock.Geometry {
	return lock.Geometry{Handle: s.lockMR.Handle(), Base: s.lockTbl.Base(), Slots: s.lockTbl.Slots()}
}

// RemapSnapshot exposes the current remap table (epoch + entries).
func (s *Server) RemapSnapshot() (uint64, map[region.GAddr]cache.Location) {
	return s.remap.Snapshot()
}

// Stats is a server activity snapshot.
type Stats struct {
	Objects    int
	PoolUsed   int64
	BufferUsed int64
	Promoted   int
	Promotions int64
	Demotions  int64
	Digests    int64
	Mallocs    int64
	Frees      int64
	Proxy      proxy.EngineStats
	RemapEpoch uint64
}

// Stats returns a snapshot of the server's counters.
func (s *Server) Stats() Stats {
	return Stats{
		Objects:    s.objIdx.count(),
		PoolUsed:   s.pool.AllocatedBytes(),
		BufferUsed: s.bufp.UsedBytes(),
		Promoted:   s.remap.Len(),
		Promotions: s.promotions.Load(),
		Demotions:  s.demotions.Load(),
		Digests:    s.digests.Load(),
		Mallocs:    s.mallocs.Load(),
		Frees:      s.frees.Load(),
		Proxy:      s.engine.Stats(),
		RemapEpoch: s.remap.Epoch(),
	}
}

// RegisterTelemetry exposes the server's live counters and derived state
// in reg under the gengar_server_* names, labeled with the server's pool
// ID. The same counter instances back both Stats and the registry, so
// the two views never disagree.
func (s *Server) RegisterTelemetry(reg *telemetry.Registry) {
	sl := telemetry.L("server", fmt.Sprintf("%d", s.id))
	reg.RegisterCounter("gengar_server_promotions_total", "objects promoted to DRAM", &s.promotions, sl)
	reg.RegisterCounter("gengar_server_demotions_total", "objects demoted from DRAM", &s.demotions, sl)
	reg.RegisterCounter("gengar_server_digests_total", "hotness digests received", &s.digests, sl)
	reg.RegisterCounter("gengar_server_mallocs_total", "gmalloc requests served", &s.mallocs, sl)
	reg.RegisterCounter("gengar_server_frees_total", "gfree requests served", &s.frees, sl)
	reg.GaugeFunc("gengar_server_objects", "live objects homed here", func() int64 {
		return int64(s.objIdx.count())
	}, sl)
	reg.GaugeFunc("gengar_server_pool_used_bytes", "NVM pool bytes allocated", func() int64 {
		return s.pool.AllocatedBytes()
	}, sl)
	reg.GaugeFunc("gengar_server_buffer_used_bytes", "DRAM buffer bytes holding promoted copies", func() int64 {
		return s.bufp.UsedBytes()
	}, sl)
	reg.GaugeFunc("gengar_server_buffer_capacity_bytes", "DRAM buffer arena size", func() int64 {
		return s.cacheDev.Size()
	}, sl)
	reg.GaugeFunc("gengar_server_promoted_objects", "objects with a live DRAM copy", func() int64 {
		return int64(s.remap.Len())
	}, sl)
	reg.GaugeFunc("gengar_server_remap_epoch", "remap table epoch", func() int64 {
		return int64(s.remap.Epoch())
	}, sl)
	s.engine.RegisterTelemetry(reg, sl)
}

// Close stops the server's flusher and RPC endpoint.
func (s *Server) Close() {
	s.engine.Close()
	s.rpcSrv.Close()
}

// --- control-plane handlers ---

func (s *Server) handleMalloc(at simnet.Time, req *rpc.Reader) ([]byte, simnet.Time, error) {
	size := req.I64()
	if err := req.Err(); err != nil {
		return nil, at, err
	}
	if size <= 0 {
		return nil, at, fmt.Errorf("server: malloc of %d bytes", size)
	}
	off, err := s.pool.Alloc(size)
	if err != nil {
		return nil, at, err
	}
	addr, err := region.NewGAddr(s.id, off)
	if err != nil {
		freeErr := s.pool.Free(off)
		return nil, at, errors.Join(err, freeErr)
	}
	s.objIdx.insert(addr, alloc.BlockSize(size))
	s.mallocs.Inc()
	var w rpc.Writer
	w.U64(uint64(addr))
	return w.Bytes(), at, nil
}

func (s *Server) handleFree(at simnet.Time, req *rpc.Reader) ([]byte, simnet.Time, error) {
	addr := region.GAddr(req.U64())
	if err := req.Err(); err != nil {
		return nil, at, err
	}
	if addr.Server() != s.id {
		return nil, at, fmt.Errorf("%w: %v", ErrNotHome, addr)
	}
	if !s.objIdx.remove(addr) {
		return nil, at, fmt.Errorf("server: free of unknown object %v", addr)
	}
	// Demote first so no cache copy outlives the object.
	released := s.remap.Apply(nil, []region.GAddr{addr})
	for _, loc := range released {
		s.registry.release(loc)
		s.demotions.Inc()
	}
	if err := s.pool.Free(addr.Offset()); err != nil {
		return nil, at, err
	}
	s.frees.Inc()
	return nil, at, nil
}

func (s *Server) handleDigest(at simnet.Time, req *rpc.Reader) ([]byte, simnet.Time, error) {
	n := int(req.U32())
	for i := 0; i < n; i++ {
		raw := region.GAddr(req.U64())
		reads := uint64(req.U32())
		writes := uint64(req.U32())
		if req.Err() != nil {
			break
		}
		// Resolve the raw verb target to its containing object; the
		// digest reports verb semantics, the server owns the layout.
		base, _, ok := s.objIdx.findContaining(raw, 1)
		if !ok {
			continue // freed or foreign address
		}
		weight := hotness.Entry{Reads: reads, Writes: writes}.Weight()
		s.mu.Lock()
		s.sketch.Add(base, weight)
		s.newWeight += weight
		s.mu.Unlock()
	}
	if err := req.Err(); err != nil {
		return nil, at, err
	}
	s.digests.Inc()
	if s.cfg.Features.Cache {
		s.maybePlan(at)
	}
	var w rpc.Writer
	w.U64(s.remap.Epoch())
	return w.Bytes(), at, nil
}

func (s *Server) handleRemapFetch(at simnet.Time, req *rpc.Reader) ([]byte, simnet.Time, error) {
	epoch, entries := s.remap.Snapshot()
	var w rpc.Writer
	w.U64(epoch).U32(uint32(len(entries)))
	for base, loc := range entries {
		w.U64(uint64(base))
		loc.Encode(&w)
	}
	return w.Bytes(), at, nil
}

func (s *Server) handleOpenSession(at simnet.Time, req *rpc.Reader) ([]byte, simnet.Time, error) {
	ringSize := int64(s.cfg.Proxy.RingSlots) * int64(s.cfg.Proxy.RingSlotSize)
	s.mu.Lock()
	var base int64
	if n := len(s.freeRings); n > 0 {
		base = s.freeRings[n-1]
		s.freeRings = s.freeRings[:n-1]
	} else {
		base = s.nextRing
		if base+ringSize > s.ringDev.Size() {
			s.mu.Unlock()
			return nil, at, fmt.Errorf("server %d: staging ring space exhausted", s.id)
		}
		s.nextRing += ringSize
	}
	s.mu.Unlock()

	var w rpc.Writer
	w.U32(s.ringMR.RKey()).I64(base).
		U32(uint32(s.cfg.Proxy.RingSlots)).U32(uint32(s.cfg.Proxy.RingSlotSize)).
		U32(s.nvmMR.RKey()).
		U32(s.lockMR.RKey()).I64(s.lockTbl.Base()).U32(uint32(s.lockTbl.Slots()))
	return w.Bytes(), at, nil
}

// handleCloseSession returns a session's staging ring for reuse. The
// client must have drained its writer first; the server trusts the
// client here because ring contents are only interpreted via the
// flusher queue, which the departing writer no longer feeds.
func (s *Server) handleCloseSession(at simnet.Time, req *rpc.Reader) ([]byte, simnet.Time, error) {
	base := req.I64()
	if err := req.Err(); err != nil {
		return nil, at, err
	}
	ringSize := int64(s.cfg.Proxy.RingSlots) * int64(s.cfg.Proxy.RingSlotSize)
	s.mu.Lock()
	defer s.mu.Unlock()
	if base < 0 || base+ringSize > s.nextRing || base%ringSize != 0 {
		return nil, at, fmt.Errorf("server %d: close of bogus ring %d", s.id, base)
	}
	for _, f := range s.freeRings {
		if f == base {
			return nil, at, fmt.Errorf("server %d: double close of ring %d", s.id, base)
		}
	}
	s.freeRings = append(s.freeRings, base)
	return nil, at, nil
}

// handleWriteThrough keeps a promoted copy coherent after a client wrote
// the home NVM directly (the proxy-disabled path): the server re-reads
// the just-written NVM range and refreshes the DRAM copy synchronously,
// so the RPC reply is the client's coherence point.
func (s *Server) handleWriteThrough(at simnet.Time, req *rpc.Reader) ([]byte, simnet.Time, error) {
	addr := region.GAddr(req.U64())
	size := int64(req.U32())
	if err := req.Err(); err != nil {
		return nil, at, err
	}
	end, err := s.refreshCopy(at, addr, size)
	return nil, end, err
}

// handleWriteThroughBatch is the vectored form of handleWriteThrough:
// one RPC refreshes the promoted copies of a whole batched write chain,
// so a k-record direct-path burst pays one control-plane round trip
// instead of k. Ranges are refreshed in request order.
func (s *Server) handleWriteThroughBatch(at simnet.Time, req *rpc.Reader) ([]byte, simnet.Time, error) {
	n := int(req.U32())
	end := at
	for i := 0; i < n; i++ {
		addr := region.GAddr(req.U64())
		size := int64(req.U32())
		if err := req.Err(); err != nil {
			return nil, at, err
		}
		var err error
		end, err = s.refreshCopy(end, addr, size)
		if err != nil {
			return nil, at, err
		}
	}
	return nil, end, req.Err()
}

// refreshCopy re-reads the just-written NVM range and refreshes the
// promoted DRAM copy covering it, if any.
func (s *Server) refreshCopy(at simnet.Time, addr region.GAddr, size int64) (simnet.Time, error) {
	if addr.Server() != s.id {
		return at, fmt.Errorf("%w: %v", ErrNotHome, addr)
	}
	base, _, ok := s.objIdx.findContaining(addr, size)
	if !ok {
		return at, nil // object freed; nothing to refresh
	}
	loc, promoted := s.remap.Lookup(base)
	if !promoted {
		return at, nil
	}
	data := make([]byte, size)
	tRead, err := s.nvm.Read(at, addr.Offset(), data)
	if err != nil {
		return at, err
	}
	delta := addr.Offset() - base.Offset()
	return s.registry.writeCopy(s, tRead, loc, delta, data)
}

// applyToCache is the proxy flusher's write-through hook: after a staged
// record lands in NVM, refresh the promoted DRAM copy (if any) so cache
// reads observe the new data.
func (s *Server) applyToCache(at simnet.Time, addr region.GAddr, data []byte) simnet.Time {
	base, _, ok := s.objIdx.findContaining(addr, int64(len(data)))
	if !ok {
		return at
	}
	loc, promoted := s.remap.Lookup(base)
	if !promoted {
		return at
	}
	delta := addr.Offset() - base.Offset()
	if delta < 0 || delta+int64(len(data)) > loc.Size {
		return at
	}
	end, err := s.registry.writeCopy(s, at, loc, delta, data)
	if err != nil {
		return at
	}
	return end
}
