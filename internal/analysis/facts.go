package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Facts is the shared guarded-field fact layer: whole-batch knowledge
// computed once per Run over every loaded package, consumed by the
// concurrency-protocol analyzers. Packages are type-checked one at a
// time against export data, so the same field seen from two packages
// yields two distinct types.Object values; facts are therefore keyed by
// stable string keys ("pkgPath.Type.field" for struct fields,
// "pkgPath.var" for package-level variables) that both sides resolve
// identically.
type Facts struct {
	// atomicFields maps the key of every field or package-level var
	// whose address is passed to a sync/atomic function anywhere in the
	// batch to one such call site (for diagnostics). atomic-mixed-access
	// flags every plain access to these objects.
	atomicFields map[string]token.Position

	// guarded maps a //gengar:guardedby-annotated field's key to its
	// contract: the declared writer mutex and whether the field is an
	// atomic.Pointer (the COW shape cow-snapshot checks).
	guarded map[string]*guardFact

	// badGuards records malformed annotations (mutex name that is not a
	// sibling field) to report as findings in the declaring package.
	badGuards []badGuard

	// lockEdges is the interprocedurally-closed mutex acquisition graph:
	// one entry per (held-class, acquired-class) observation site.
	lockEdges []lockEdge

	// lockChains are the declared lock-order chains: the checked-in
	// defaultLockOrder plus every //gengar:lockorder directive in the
	// batch. before[x][y] means x is blessed to be acquired before y.
	before map[string]map[string]bool
}

// guardFact is one //gengar:guardedby contract.
type guardFact struct {
	fieldKey  string         // annotated field, e.g. "gengar/internal/cache.RemapTable.p"
	fieldName string         // display name, e.g. "RemapTable.p"
	muName    string         // declared sibling mutex field name
	muKey     string         // its key
	declPos   token.Position // annotation position (suppression anchor)
	isCOWPtr  bool           // field type is sync/atomic.Pointer[...]
}

// badGuard is a malformed //gengar:guardedby annotation.
type badGuard struct {
	pos     token.Position
	fileDir string
	msg     string
}

// lockEdge is one observed "acquired while held" pair, attributed to
// the source position of the inner acquisition (or the call leading to
// it).
type lockEdge struct {
	from, to string         // lock class keys, e.g. "engine.Engine.mu"
	pos      token.Position // where the ordering is established
	via      string         // callee chain for interprocedural edges ("" if direct)
}

// computeFacts builds the fact layer over the whole batch.
func computeFacts(pkgs []*Package) *Facts {
	f := &Facts{
		atomicFields: make(map[string]token.Position),
		guarded:      make(map[string]*guardFact),
		before:       make(map[string]map[string]bool),
	}
	for _, pkg := range pkgs {
		f.collectAtomicFields(pkg)
		f.collectGuardedBy(pkg)
		f.collectLockChains(pkg)
	}
	f.declareChain(defaultLockOrder)
	f.buildLockGraph(pkgs)
	return f
}

// ---- stable keys ----

// objectKey returns the cross-package key of a field or variable
// object, resolving struct fields through the selection that reached
// them. ok is false for locals and objects without a home package.
func objectKey(info *types.Info, sel *ast.SelectorExpr, id *ast.Ident) (string, bool) {
	var obj types.Object
	if sel != nil {
		if s, found := info.Selections[sel]; found {
			obj = s.Obj()
			if named := namedOf(s.Recv()); named != nil && obj.Pkg() != nil {
				return obj.Pkg().Path() + "." + named.Obj().Name() + "." + obj.Name(), true
			}
		}
		id = sel.Sel
	}
	if obj == nil && id != nil {
		obj = info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
	}
	v, isVar := obj.(*types.Var)
	if !isVar || v.Pkg() == nil {
		return "", false
	}
	if v.IsField() {
		// A field reached without selection info (e.g. a composite
		// literal key); the enclosing type is not recoverable here.
		return "", false
	}
	// Package-scope variable.
	if v.Parent() == v.Pkg().Scope() {
		return v.Pkg().Path() + "." + v.Name(), true
	}
	return "", false
}

// exprKey resolves an addressable expression (x.f, pkgvar, f) to its
// fact key.
func exprKey(info *types.Info, e ast.Expr) (string, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		return objectKey(info, x, nil)
	case *ast.Ident:
		return objectKey(info, nil, x)
	}
	return "", false
}

// displayKey shortens a full key for diagnostics: the package path
// collapses to its base ("gengar/internal/cache.RemapTable.p" ->
// "cache.RemapTable.p").
func displayKey(key string) string {
	if i := strings.LastIndexByte(key, '/'); i >= 0 {
		return key[i+1:]
	}
	return key
}

// ---- atomic field collection ----

// atomicFns are the sync/atomic package functions whose first argument
// is the address of the word they operate on.
var atomicFns = map[string]bool{
	"AddInt32": true, "AddInt64": true, "AddUint32": true, "AddUint64": true, "AddUintptr": true,
	"LoadInt32": true, "LoadInt64": true, "LoadUint32": true, "LoadUint64": true, "LoadUintptr": true, "LoadPointer": true,
	"StoreInt32": true, "StoreInt64": true, "StoreUint32": true, "StoreUint64": true, "StoreUintptr": true, "StorePointer": true,
	"SwapInt32": true, "SwapInt64": true, "SwapUint32": true, "SwapUint64": true, "SwapUintptr": true, "SwapPointer": true,
	"CompareAndSwapInt32": true, "CompareAndSwapInt64": true, "CompareAndSwapUint32": true,
	"CompareAndSwapUint64": true, "CompareAndSwapUintptr": true, "CompareAndSwapPointer": true,
}

func (f *Facts) collectAtomicFields(pkg *Package) {
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			c, ok := resolveCallee(pkg.Info, call)
			if !ok || c.pkgPath != "sync/atomic" || c.recv != "" || !atomicFns[c.name] {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || addr.Op != token.AND {
				return true
			}
			if key, ok := exprKey(pkg.Info, addr.X); ok {
				if _, seen := f.atomicFields[key]; !seen {
					f.atomicFields[key] = pkg.Fset.Position(call.Pos())
				}
			}
			return true
		})
	}
}

// ---- //gengar:guardedby annotations ----

const guardedByPrefix = "//gengar:guardedby"

func (f *Facts) collectGuardedBy(pkg *Package) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				f.collectStructGuards(pkg, ts.Name.Name, st)
			}
		}
	}
}

func (f *Facts) collectStructGuards(pkg *Package, typeName string, st *ast.StructType) {
	fieldNames := make(map[string]bool)
	for _, fd := range st.Fields.List {
		for _, n := range fd.Names {
			fieldNames[n.Name] = true
		}
	}
	for _, fd := range st.Fields.List {
		muName, pos, ok := guardedByDirective(pkg, fd)
		if !ok {
			continue
		}
		if len(fd.Names) == 0 {
			continue // embedded field: nothing to key on
		}
		if muName == "" || !fieldNames[muName] {
			f.badGuards = append(f.badGuards, badGuard{
				pos:     pos,
				fileDir: pkg.Dir,
				msg:     "gengar:guardedby must name a sibling mutex field of " + typeName,
			})
			continue
		}
		for _, n := range fd.Names {
			key := pkg.Path + "." + typeName + "." + n.Name
			f.guarded[key] = &guardFact{
				fieldKey:  key,
				fieldName: typeName + "." + n.Name,
				muName:    muName,
				muKey:     pkg.Path + "." + typeName + "." + muName,
				declPos:   pos,
				isCOWPtr:  isAtomicPointerField(pkg, fd.Type),
			}
		}
	}
}

// guardedByDirective extracts a //gengar:guardedby directive from a
// struct field's doc or trailing comment.
func guardedByDirective(pkg *Package, fd *ast.Field) (mu string, pos token.Position, ok bool) {
	for _, cg := range []*ast.CommentGroup{fd.Doc, fd.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, guardedByPrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, guardedByPrefix)
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) > 0 {
				mu = fields[0]
			}
			return mu, pkg.Fset.Position(c.Pos()), true
		}
	}
	return "", token.Position{}, false
}

// isAtomicPointerField reports whether the field type is
// sync/atomic.Pointer[...].
func isAtomicPointerField(pkg *Package, t ast.Expr) bool {
	tv, ok := pkg.Info.Types[t]
	if !ok {
		return false
	}
	named := namedOf(tv.Type)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync/atomic" && named.Obj().Name() == "Pointer"
}

// ---- lock-order graph ----

const lockOrderPrefix = "//gengar:lockorder"

// collectLockChains parses //gengar:lockorder directives: a chain of
// lock class names separated by "<", earliest-acquired first, e.g.
//
//	//gengar:lockorder engine.Engine.mu < cache.RemapTable.mu
func (f *Facts) collectLockChains(pkg *Package) {
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, lockOrderPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, lockOrderPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue
				}
				var chain []string
				for _, part := range strings.Split(rest, "<") {
					if part = strings.TrimSpace(part); part != "" {
						chain = append(chain, part)
					}
				}
				f.declareChain(chain)
			}
		}
	}
}

// declareChain blesses each ordered pair of the chain, transitively.
func (f *Facts) declareChain(chain []string) {
	for i, a := range chain {
		for _, b := range chain[i+1:] {
			if f.before[a] == nil {
				f.before[a] = make(map[string]bool)
			}
			f.before[a][b] = true
		}
	}
}

// orderedBefore reports whether the blessed hierarchy says a is
// acquired before b.
func (f *Facts) orderedBefore(a, b string) bool { return f.before[a][b] }

// fnSummary is one function's locking behavior, from a linear
// source-order scan of its body (branch-insensitive: precise enough for
// edge discovery, and the approximation errs toward missing an edge
// rather than fabricating one — see lockorder.go).
type fnSummary struct {
	key      string
	acquires map[string]bool // every lock class the body acquires
	calls    []fnCall
	edges    []lockEdge // direct held->acquired pairs with positions
}

type fnCall struct {
	callee string
	pos    token.Position
	held   []string // classes held at the call site
}

// buildLockGraph summarizes every function in the batch, closes the
// call graph, and materializes the global edge list.
func (f *Facts) buildLockGraph(pkgs []*Package) {
	sums := make(map[string]*fnSummary)
	var anon []*fnSummary // function literals: edges count, never callable
	for _, pkg := range pkgs {
		for _, fn := range funcDecls(pkg) {
			s, lits := summarizeFn(pkg, fn)
			sums[s.key] = s
			anon = append(anon, lits...)
		}
	}

	// Transitive acquisition closure over the call graph.
	closure := make(map[string]map[string]bool)
	var acquiresAll func(key string, seen map[string]bool) map[string]bool
	acquiresAll = func(key string, seen map[string]bool) map[string]bool {
		if got, ok := closure[key]; ok {
			return got
		}
		if seen[key] {
			return nil // recursive cycle: members' own summaries cover it
		}
		seen[key] = true
		s := sums[key]
		if s == nil {
			return nil
		}
		out := make(map[string]bool, len(s.acquires))
		for c := range s.acquires {
			out[c] = true
		}
		for _, call := range s.calls {
			for c := range acquiresAll(call.callee, seen) {
				out[c] = true
			}
		}
		closure[key] = out
		return out
	}

	all := make([]*fnSummary, 0, len(sums)+len(anon))
	for _, s := range sums {
		all = append(all, s)
	}
	all = append(all, anon...)
	sort.Slice(all, func(i, j int) bool { return all[i].key < all[j].key })

	for _, s := range all {
		f.lockEdges = append(f.lockEdges, s.edges...)
		for _, call := range s.calls {
			if len(call.held) == 0 {
				continue
			}
			acq := acquiresAll(call.callee, make(map[string]bool))
			for _, held := range call.held {
				for c := range acq {
					if c == held {
						continue // same class through a call: instance unknown, don't fabricate
					}
					f.lockEdges = append(f.lockEdges, lockEdge{
						from: held, to: c,
						pos: call.pos,
						via: displayKey(call.callee),
					})
				}
			}
		}
	}
	// Dedupe identical (from, to, position) observations and order the
	// list for deterministic reporting.
	seen := make(map[lockEdgeKey]bool, len(f.lockEdges))
	keep := f.lockEdges[:0]
	for _, e := range f.lockEdges {
		k := lockEdgeKey{e.from, e.to, e.pos.Filename, e.pos.Line, e.pos.Column}
		if seen[k] {
			continue
		}
		seen[k] = true
		keep = append(keep, e)
	}
	f.lockEdges = keep
	sort.Slice(f.lockEdges, func(i, j int) bool {
		a, b := f.lockEdges[i], f.lockEdges[j]
		if a.pos.Filename != b.pos.Filename {
			return a.pos.Filename < b.pos.Filename
		}
		if a.pos.Line != b.pos.Line {
			return a.pos.Line < b.pos.Line
		}
		if a.from != b.from {
			return a.from < b.from
		}
		return a.to < b.to
	})
}

type lockEdgeKey struct {
	from, to, file string
	line, col      int
}
