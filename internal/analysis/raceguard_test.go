package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// raceExcludeAllowlist are the only files permitted to carry a
// `//go:build !race` constraint: allocation-count tests, because
// testing.AllocsPerRun measures nothing under the race detector's
// instrumented allocator. Everything else must run under `make race` —
// excluding a test from -race is how data races hide (policy: see
// "Static analysis" in DESIGN.md).
var raceExcludeAllowlist = map[string]bool{
	"internal/core/scratch_alloc_test.go": true,
	"internal/tcpnet/wire_alloc_test.go":  true,
}

// TestRaceGuardAudit walks every Go file in the module and fails if a
// file outside the allowlist opts out of the race detector, or if an
// allowlisted file stops existing (stale allowlist) or no longer
// contains an AllocsPerRun measurement (no reason to be excluded).
func TestRaceGuardAudit(t *testing.T) {
	root := moduleRoot(t)
	found := make(map[string]bool)
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || name == ".git" || name == ".github" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		for _, line := range strings.Split(string(data), "\n") {
			line = strings.TrimSpace(line)
			if !strings.HasPrefix(line, "//go:build") {
				continue
			}
			if strings.Contains(line, "!race") {
				found[filepath.ToSlash(rel)] = true
				if !raceExcludeAllowlist[filepath.ToSlash(rel)] {
					t.Errorf("%s opts out of -race (%s); only AllocsPerRun tests may (see allowlist in raceguard_test.go)", rel, line)
				}
				if !strings.Contains(string(data), "AllocsPerRun") {
					t.Errorf("%s excludes -race but has no AllocsPerRun measurement; remove the constraint", rel)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for rel := range raceExcludeAllowlist {
		if !found[rel] {
			t.Errorf("allowlist entry %s has no //go:build !race file behind it; prune the allowlist", rel)
		}
	}
}
