package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// raceSibling describes the race-mode counterpart a `//go:build !race`
// file must have: a test file with no build constraint that drives the
// same entry points, so excluding the allocation counts from -race
// never excludes the code path itself.
type raceSibling struct {
	file    string   // module-relative path of the race-mode twin
	symbols []string // entry points both files must exercise
}

// raceExcludeAllowlist are the only files permitted to carry a
// `//go:build !race` constraint: allocation-count tests, because
// testing.AllocsPerRun measures nothing under the race detector's
// instrumented allocator. Everything else must run under `make race` —
// excluding a test from -race is how data races hide (policy: see
// "Static analysis" in DESIGN.md). Every entry names its race-mode
// sibling; the audit fails if the sibling disappears, grows its own
// constraint, or stops exercising the shared entry points.
var raceExcludeAllowlist = map[string]raceSibling{
	"internal/core/scratch_alloc_test.go": {
		file:    "internal/core/multiwrite_test.go",
		symbols: []string{"ReadMulti", "WriteMulti"},
	},
	"internal/tcpnet/wire_alloc_test.go": {
		file:    "internal/tcpnet/wire_path_test.go",
		symbols: []string{"Read", "ReadMulti", "WriteMulti"},
	},
	"internal/proxy/flush_alloc_test.go": {
		file:    "internal/proxy/coalesce_test.go",
		symbols: []string{"sortByNVMOff", "runSpan", "assembleRun"},
	},
}

// TestRaceGuardAudit walks every Go file in the module and fails if a
// file outside the allowlist opts out of the race detector, if an
// allowlisted file stops existing (stale allowlist), no longer contains
// an AllocsPerRun measurement (no reason to be excluded), or lacks a
// valid race-mode sibling per raceExcludeAllowlist.
func TestRaceGuardAudit(t *testing.T) {
	root := moduleRoot(t)
	found := make(map[string]bool)
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || name == ".git" || name == ".github" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		for _, line := range strings.Split(string(data), "\n") {
			line = strings.TrimSpace(line)
			if !strings.HasPrefix(line, "//go:build") {
				continue
			}
			if strings.Contains(line, "!race") {
				rel := filepath.ToSlash(rel)
				found[rel] = true
				if _, ok := raceExcludeAllowlist[rel]; !ok {
					t.Errorf("%s opts out of -race (%s); only AllocsPerRun tests may (see allowlist in raceguard_test.go)", rel, line)
				}
				if !strings.Contains(string(data), "AllocsPerRun") {
					t.Errorf("%s excludes -race but has no AllocsPerRun measurement; remove the constraint", rel)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for rel, sib := range raceExcludeAllowlist {
		if !found[rel] {
			t.Errorf("allowlist entry %s has no //go:build !race file behind it; prune the allowlist", rel)
			continue
		}
		excluded, err := os.ReadFile(filepath.Join(root, filepath.FromSlash(rel)))
		if err != nil {
			t.Errorf("reading %s: %v", rel, err)
			continue
		}
		data, err := os.ReadFile(filepath.Join(root, filepath.FromSlash(sib.file)))
		if err != nil {
			t.Errorf("%s has no race-mode sibling %s: %v", rel, sib.file, err)
			continue
		}
		text := string(data)
		if strings.Contains(text, "//go:build") {
			t.Errorf("race-mode sibling %s carries a build constraint; it must run under -race unconditionally", sib.file)
		}
		for _, sym := range sib.symbols {
			if !strings.Contains(text, "."+sym+"(") {
				t.Errorf("race-mode sibling %s no longer exercises %s; the -race exclusion of %s leaves that path uncovered", sib.file, sym, rel)
			}
			if !strings.Contains(string(excluded), "."+sym+"(") {
				t.Errorf("allowlist entry %s no longer exercises %s; update its sibling contract in raceguard_test.go", rel, sym)
			}
		}
	}
}
