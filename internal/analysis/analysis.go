// Package analysis is gengar-lint's engine: a stdlib-only static
// analysis driver (go/parser + go/ast + go/types, no x/tools) that
// loads every package in the module and runs a suite of Gengar-specific
// invariant analyzers over them.
//
// The analyzers machine-check the invariants the compiler cannot see
// and that code review has so far enforced by hand:
//
//   - lock-across-blocking: a sync.Mutex/RWMutex must not be held
//     across a wall-clock blocking operation (a call into tcpnet/rpc, a
//     channel send or receive, an RDMA post) — the availability hazard
//     of a stalled peer freezing every caller of the lock.
//   - wqe-aliasing: a payload buffer staged into a posted WQE must not
//     be mutated, returned to a pool, or reused before the posting call
//     completes and its result is observed.
//   - telemetry-hygiene: no package-level registries, no unbounded
//     label values, no double registration.
//   - hotpath-alloc: functions annotated //gengar:hotpath must not call
//     time.Now or fmt.Sprint*, and must not allocate outside pooled or
//     amortized storage.
//   - errcheck-core: errors returned by core/proxy/rdma (and the other
//     pool APIs) must not be silently discarded.
//   - atomic-mixed-access: a word accessed through sync/atomic or the
//     hmem word APIs anywhere must be accessed that way everywhere.
//   - cow-snapshot: //gengar:guardedby-annotated atomic.Pointer fields
//     are Store'd only under their declared writer mutex, and pointers
//     obtained via Load are never written through.
//   - seqlock-protocol: writers CAS the copy seq word odd before data
//     stores and store even after; readers re-load and compare the seq
//     word before trusting a copy.
//   - lock-order: the interprocedural mutex-acquisition graph contains
//     no cycles and no inversions of the blessed hierarchy
//     (lockhierarchy.go, //gengar:lockorder).
//
// A finding is suppressed with an explicit, reasoned annotation:
//
//	//gengar:lint-ignore <analyzer> <reason>
//
// on the finding's line, the line above it, or — for
// lock-across-blocking — on the mutex field's declaration (which marks
// every critical section of that mutex as intentional, e.g. a
// single-actor serialization lock). A suppression without a reason is
// itself a finding.
package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// A Finding is one analyzer diagnostic.
type Finding struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Message  string         `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// An Analyzer is one invariant checker.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(p *Pass) []Finding
}

// Pass is the per-package context handed to each analyzer.
type Pass struct {
	Pkg      *Package
	Facts    *Facts // batch-wide guarded-field facts (nil outside Run)
	suppress *suppressions
}

// finding constructs a Finding for the analyzer at pos.
func (p *Pass) finding(analyzer string, pos token.Pos, format string, args ...any) Finding {
	position := p.Pkg.Fset.Position(pos)
	return Finding{
		Analyzer: analyzer,
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	}
}

// SuppressedAt reports whether an ignore directive for the analyzer
// covers the given position (same line or the line above). Analyzers
// use it for secondary anchor points — e.g. lock-across-blocking checks
// the mutex field declaration and the Lock() site in addition to the
// blocking call the finding is reported at.
func (p *Pass) SuppressedAt(analyzer string, pos token.Pos) bool {
	return p.suppress.covers(analyzer, p.Pkg.Fset.Position(pos))
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		lockAcrossBlocking,
		wqeAliasing,
		telemetryHygiene,
		hotpathAlloc,
		errcheckCore,
		atomicMixedAccess,
		cowSnapshot,
		seqlockProtocol,
		lockOrder,
	}
}

// FastAnalyzers returns the cheap subset run by `make lint-fast`:
// single-pass AST scans with no fact layer or interprocedural closure
// behind them.
func FastAnalyzers() []*Analyzer {
	return []*Analyzer{
		hotpathAlloc,
		errcheckCore,
	}
}

// AnalyzerNames returns the names of the full suite plus the pseudo
// analyzer that reports broken ignore directives.
func AnalyzerNames() []string {
	names := []string{ignoreAnalyzerName}
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	return names
}

// Run applies the analyzers to the packages, filters findings through
// the suppression directives, and appends a finding for every broken
// directive (missing reason, unknown analyzer name) and every stale one
// (a well-formed directive that suppressed nothing). Directive names
// are validated against the FULL registry, not the subset being run, so
// a -only invocation does not misreport a valid suppression as unknown;
// symmetrically, staleness is only audited for analyzers that actually
// ran. Results are sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	ran := make(map[string]bool)
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	facts := computeFacts(pkgs)
	var out []Finding
	for _, pkg := range pkgs {
		sup := collectSuppressions(pkg)
		pass := &Pass{Pkg: pkg, Facts: facts, suppress: sup}
		for _, a := range analyzers {
			for _, f := range a.Run(pass) {
				if sup.covers(a.Name, f.Pos) {
					continue
				}
				out = append(out, f)
			}
		}
		out = append(out, sup.brokenDirectives(pkg, known)...)
		out = append(out, sup.staleDirectives(ran)...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		if out[i].Col != out[j].Col {
			return out[i].Col < out[j].Col
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out
}
