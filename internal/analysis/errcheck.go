package analysis

import (
	"go/ast"
	"strings"
)

// errcheckCore flags call statements that silently discard an error
// returned by a Gengar pool API (core, proxy, rdma, rpc, tcpnet, lock,
// server, cache). Every one of those errors is a pool-consistency
// signal — a failed post, a dead session, an unlocked lock — and the
// cmd/ tools especially have a history of dropping them on teardown
// paths. An explicit `_ =` assignment is an intentional, reviewable
// discard and is not flagged.
const errcheckCoreName = "errcheck-core"

var errcheckCore = &Analyzer{
	Name: errcheckCoreName,
	Doc:  "discarded error from a core/proxy/rdma (pool) API call",
	Run:  runErrcheckCore,
}

// errcheckPkgs are the module packages whose errors must not be dropped.
var errcheckPkgs = map[string]bool{
	"core": true, "proxy": true, "rdma": true, "rpc": true,
	"tcpnet": true, "lock": true, "server": true, "cache": true,
}

func isErrcheckPkg(path string) bool {
	if !strings.HasPrefix(path, "gengar/internal/") {
		return false
	}
	return errcheckPkgs[pkgBase(path)]
}

func runErrcheckCore(p *Pass) []Finding {
	var out []Finding
	for _, fn := range funcDecls(p.Pkg) {
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			c, ok := resolveCallee(p.Pkg.Info, call)
			if !ok || !isErrcheckPkg(c.pkgPath) {
				return true
			}
			if !returnsError(p.Pkg.Info, call) {
				return true
			}
			target := c.name
			if c.recv != "" {
				target = c.recv + "." + c.name
			}
			out = append(out, p.finding(errcheckCoreName, call.Pos(),
				"error from %s.%s discarded: handle it or discard explicitly with _ =", pkgBase(c.pkgPath), target))
			return true
		})
	}
	return out
}
