package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// wqeAliasing flags payload buffers handed to an RDMA post whose
// completion result is discarded, when the same buffer is then mutated,
// returned to a sync.Pool, or reused as a map key later in the
// function. On real hardware a posted WQE references the buffer until
// the completion is polled; writing to it, repooling it, or keying a
// map on its (soon to change) contents before observing the completion
// is the classic ordered-write corruption. The simulator completes
// posts synchronously, so awaiting is cheap: bind the post's results
// (even `_, err :=`) and the window closes.
//
// Tracked posts are the payload-carrying QP verbs: Write, Send,
// WriteBatch (via WriteReq.Src staging) and ReadBatch/Read destinations
// (the NIC writes into those; reusing them before completion races the
// DMA).
const wqeAliasName = "wqe-aliasing"

var wqeAliasing = &Analyzer{
	Name: wqeAliasName,
	Doc:  "posted WQE buffer mutated, repooled, or reused before completion awaited",
	Run:  runWQEAliasing,
}

const rdmaPkgPath = "gengar/internal/rdma"

// postedBuf is one buffer handed to an unawaited post.
type postedBuf struct {
	obj     types.Object
	text    string
	postPos token.Pos
	verb    string
}

func runWQEAliasing(p *Pass) []Finding {
	var out []Finding
	for _, fn := range funcDecls(p.Pkg) {
		out = append(out, wqeCheckFunc(p, fn)...)
	}
	return out
}

func wqeCheckFunc(p *Pass, fn *ast.FuncDecl) []Finding {
	info := p.Pkg.Info

	// Pass 1: find unawaited posts and the buffers they reference.
	var posted []postedBuf
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		c, ok := resolveCallee(info, call)
		if !ok || c.pkgPath != rdmaPkgPath || c.recv != "QP" {
			return true
		}
		var payloadArgs []ast.Expr
		switch c.name {
		case "Write", "Send": // (at, src, …) / (at, payload)
			if len(call.Args) >= 2 {
				payloadArgs = append(payloadArgs, call.Args[1])
			}
		case "Read": // (at, dst, raddr)
			if len(call.Args) >= 2 {
				payloadArgs = append(payloadArgs, call.Args[1])
			}
		case "WriteBatch", "ReadBatch": // (at, reqs)
			if len(call.Args) >= 2 {
				payloadArgs = append(payloadArgs, call.Args[1])
				payloadArgs = append(payloadArgs, reqPayloadExprs(info, fn, c.name, call.Pos())...)
			}
		default:
			return true
		}
		if postAwaited(info, fn, call) {
			return true
		}
		for _, arg := range payloadArgs {
			obj := rootObj(info, arg)
			if obj == nil || !isSliceish(info, arg) {
				continue
			}
			posted = append(posted, postedBuf{
				obj:     obj,
				text:    exprText(arg),
				postPos: call.Pos(),
				verb:    c.name,
			})
		}
		return true
	})
	if len(posted) == 0 {
		return nil
	}

	// Pass 2: look for uses of a posted buffer after its post.
	var out []Finding
	report := func(pos token.Pos, b postedBuf, what string) {
		out = append(out, p.finding(wqeAliasName, pos,
			"%s %s after unawaited %s post at line %d — await the completion (bind the post's results) first",
			b.text, what, b.verb, p.Pkg.Fset.Position(b.postPos).Line))
	}
	after := func(pos token.Pos, obj types.Object) (postedBuf, bool) {
		for _, b := range posted {
			if b.obj == obj && pos > b.postPos {
				return b, true
			}
		}
		return postedBuf{}, false
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				obj := rootObj(info, lhs)
				if obj == nil {
					continue
				}
				if b, ok := after(n.Pos(), obj); ok {
					report(n.Pos(), b, "mutated")
				}
			}
		case *ast.CallExpr:
			c, ok := resolveCallee(info, n)
			if !ok {
				// copy(dst, src) is a builtin: resolveCallee fails.
				if id, isIdent := ast.Unparen(n.Fun).(*ast.Ident); isIdent && id.Name == "copy" && len(n.Args) == 2 {
					if obj := rootObj(info, n.Args[0]); obj != nil {
						if b, ok := after(n.Pos(), obj); ok {
							report(n.Pos(), b, "mutated (copy destination)")
						}
					}
				}
				return true
			}
			if c.pkgPath == "sync" && c.recv == "Pool" && c.name == "Put" && len(n.Args) == 1 {
				if obj := rootObj(info, n.Args[0]); obj != nil {
					if b, ok := after(n.Pos(), obj); ok {
						report(n.Pos(), b, "returned to sync.Pool")
					}
				}
			}
		case *ast.IndexExpr:
			// Map key reuse: m[string(buf)] or m[buf] on a map type.
			if t := typeOf(p, n.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					for _, id := range identsIn(n.Index) {
						obj := objOf(p, id)
						if obj == nil {
							continue
						}
						if b, ok := after(n.Pos(), obj); ok {
							report(n.Pos(), b, "reused as map key")
							break
						}
					}
				}
			}
		}
		return true
	})
	return out
}

// reqPayloadExprs collects the Src/Dst payload expressions of every
// rdma.WriteReq / rdma.ReadReq composite literal staged in the function
// before the post at postPos — the buffers the batch references.
func reqPayloadExprs(info *types.Info, fn *ast.FuncDecl, verb string, postPos token.Pos) []ast.Expr {
	reqType, field := "WriteReq", "Src"
	if verb == "ReadBatch" {
		reqType, field = "ReadReq", "Dst"
	}
	var out []ast.Expr
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		cl, ok := n.(*ast.CompositeLit)
		if !ok || cl.Pos() > postPos {
			return true
		}
		t, ok := info.Types[cl]
		if !ok || !isNamedType(t.Type, rdmaPkgPath, reqType) {
			return true
		}
		for _, elt := range cl.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			if key, ok := kv.Key.(*ast.Ident); ok && key.Name == field {
				out = append(out, kv.Value)
			}
		}
		return true
	})
	return out
}

// postAwaited reports whether the post call's results are observed: the
// call is part of an assignment with at least one non-blank target, or
// is nested inside a larger expression. A bare statement (or an
// all-blank assignment) discards the completion.
func postAwaited(info *types.Info, fn *ast.FuncDecl, call *ast.CallExpr) bool {
	stmt := enclosingStmt(fn.Body, call)
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		return ast.Unparen(s.X) != call
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			if ast.Unparen(rhs) == call {
				for _, lhs := range s.Lhs {
					if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
						return true
					}
				}
				return false
			}
		}
		return true
	case nil:
		return true
	default:
		return true
	}
}

// enclosingStmt finds the innermost non-block statement containing the
// node.
func enclosingStmt(body *ast.BlockStmt, target ast.Node) ast.Stmt {
	var found ast.Stmt
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if n.Pos() > target.Pos() || n.End() < target.End() {
			return false // subtree does not contain the target
		}
		if s, ok := n.(ast.Stmt); ok {
			if _, isBlock := s.(*ast.BlockStmt); !isBlock {
				found = s // descending, so the last hit is innermost
			}
		}
		return true
	})
	return found
}

// isSliceish reports whether e is a slice (the only buffer shape the
// QP verbs take).
func isSliceish(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, ok = tv.Type.Underlying().(*types.Slice)
	return ok
}

// identsIn collects every identifier in an expression.
func identsIn(e ast.Expr) []*ast.Ident {
	var out []*ast.Ident
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			out = append(out, id)
		}
		return true
	})
	return out
}
