package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// lockAcrossBlocking flags critical sections in the pool's guarded
// layers (rdma, proxy, lock, cache, server, core, rpc, tcpnet) that
// hold a sync.Mutex or sync.RWMutex across a wall-clock blocking
// operation: a channel send/receive, a call into tcpnet or rpc, a
// stdlib net call, an RDMA queue-pair post, a gate advance, a
// sync.WaitGroup.Wait, or a time.Sleep. A stalled peer inside such a
// section freezes every other goroutine that touches the lock — the
// availability hazard the proxy's bounded worker channels exist to
// avoid.
//
// The check is intraprocedural and branch-sensitive: branches that
// terminate (return, panic) drop out of the merge, so the common
// "unlock-and-return on error" shape does not leak held state. Function
// literals and go statements start fresh — a spawned goroutine does not
// inherit the creator's critical section.
//
// A deliberate critical section is suppressed either at the offending
// line or at the mutex field's declaration; the latter marks every
// section of that mutex as intentional (e.g. core.Client.mu, which
// serializes a single application actor by design).
const lockBlockName = "lock-across-blocking"

var lockAcrossBlocking = &Analyzer{
	Name: lockBlockName,
	Doc:  "mutex held across a blocking network, channel, or RDMA operation",
	Run:  runLockAcrossBlocking,
}

func runLockAcrossBlocking(p *Pass) []Finding {
	if !isGuardedPath(p.Pkg.Path) {
		return nil
	}
	var out []Finding
	for _, fn := range funcDecls(p.Pkg) {
		w := &lockWalker{pass: p, pkgPath: p.Pkg.Path}
		w.block(fn.Body.List, newLockSet())
		out = append(out, w.findings...)
	}
	return out
}

// heldLock is one tracked acquisition.
type heldLock struct {
	text       string // rendered mutex expression, e.g. "c.mu"
	acquirePos token.Pos
}

// lockSet maps a mutex key (object pointer when resolvable, else the
// rendered expression) to its acquisition.
type lockSet map[any]heldLock

func newLockSet() lockSet { return make(lockSet) }

func (s lockSet) clone() lockSet {
	c := make(lockSet, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

func (s lockSet) union(o lockSet) {
	for k, v := range o {
		if _, ok := s[k]; !ok {
			s[k] = v
		}
	}
}

type lockWalker struct {
	pass     *Pass
	pkgPath  string
	findings []Finding
	// inSelectComm suppresses blocking reports while walking a select
	// case's comm statement: the select itself is the blocking point
	// (and with a default clause the comm ops never block at all).
	inSelectComm bool
}

// block walks a statement list sequentially, threading the held-lock
// set through it, and returns (resulting set, terminated).
func (w *lockWalker) block(stmts []ast.Stmt, held lockSet) (lockSet, bool) {
	for _, s := range stmts {
		var term bool
		held, term = w.stmt(s, held)
		if term {
			return held, true
		}
	}
	return held, false
}

func (w *lockWalker) stmt(s ast.Stmt, held lockSet) (lockSet, bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		w.expr(s.X, held)
	case *ast.SendStmt:
		w.expr(s.Chan, held)
		w.expr(s.Value, held)
		w.blockingOp(s.Arrow, "channel send", held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e, held)
		}
		for _, e := range s.Lhs {
			w.expr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.expr(e, held)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		w.expr(s.X, held)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, held)
		}
		return held, true
	case *ast.BranchStmt:
		// break/continue/goto leave the enclosing construct; treating
		// them as terminating keeps the merge conservative without
		// modeling jump targets.
		return held, true
	case *ast.BlockStmt:
		return w.block(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			held, _ = w.stmt(s.Init, held)
		}
		w.expr(s.Cond, held)
		thenSet, thenTerm := w.block(s.Body.List, held.clone())
		elseSet, elseTerm := held.clone(), false
		if s.Else != nil {
			elseSet, elseTerm = w.stmt(s.Else, held.clone())
		}
		switch {
		case thenTerm && elseTerm:
			return held, true
		case thenTerm:
			return elseSet, false
		case elseTerm:
			return thenSet, false
		default:
			thenSet.union(elseSet)
			return thenSet, false
		}
	case *ast.ForStmt:
		if s.Init != nil {
			held, _ = w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			w.expr(s.Cond, held)
		}
		body, _ := w.block(s.Body.List, held.clone())
		if s.Post != nil {
			w.stmt(s.Post, body)
		}
		held.union(body)
		return held, false
	case *ast.RangeStmt:
		w.expr(s.X, held)
		if isChanType(w.pass, s.X) {
			w.blockingOp(s.For, "range over channel", held)
		}
		body, _ := w.block(s.Body.List, held.clone())
		held.union(body)
		return held, false
	case *ast.SwitchStmt:
		if s.Init != nil {
			held, _ = w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			w.expr(s.Tag, held)
		}
		return w.switchBody(s.Body, held)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			held, _ = w.stmt(s.Init, held)
		}
		w.stmt(s.Assign, held)
		return w.switchBody(s.Body, held)
	case *ast.SelectStmt:
		hasDefault := false
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			w.blockingOp(s.Select, "select without default", held)
		}
		merged := newLockSet()
		any := false
		for _, cl := range s.Body.List {
			cc, ok := cl.(*ast.CommClause)
			if !ok {
				continue
			}
			caseSet := held.clone()
			if cc.Comm != nil {
				w.inSelectComm = true
				caseSet, _ = w.stmt(cc.Comm, caseSet)
				w.inSelectComm = false
			}
			caseSet, term := w.block(cc.Body, caseSet)
			if !term {
				merged.union(caseSet)
				any = true
			}
		}
		if !any {
			return held, true
		}
		return merged, false
	case *ast.DeferStmt:
		// defer mu.Unlock() releases at return — the lock stays held
		// for the rest of the body, which is exactly what the current
		// set already says, so a deferred unlock changes nothing here.
		// Other deferred calls run after the section too; skip their
		// bodies but still classify locking on the call itself is not
		// needed.
		for _, a := range s.Call.Args {
			w.expr(a, held)
		}
	case *ast.GoStmt:
		// A spawned goroutine does not run inside this critical
		// section; only evaluate the (synchronous) arguments.
		for _, a := range s.Call.Args {
			w.expr(a, held)
		}
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, held)
	case *ast.EmptyStmt:
	}
	return held, false
}

// switchBody merges the case clauses of a switch the same way if merges
// its branches.
func (w *lockWalker) switchBody(body *ast.BlockStmt, held lockSet) (lockSet, bool) {
	merged := held.clone() // no-match path falls through with entry set
	for _, cl := range body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			w.expr(e, held)
		}
		caseSet, term := w.block(cc.Body, held.clone())
		if !term {
			merged.union(caseSet)
		}
	}
	return merged, false
}

// expr scans an expression for channel receives, lock transitions, and
// blocking calls. Function literal bodies are skipped: they run later,
// in a context of their own.
func (w *lockWalker) expr(e ast.Expr, held lockSet) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.blockingOp(n.OpPos, "channel receive", held)
			}
		case *ast.CallExpr:
			w.call(n, held)
		}
		return true
	})
}

func (w *lockWalker) call(call *ast.CallExpr, held lockSet) {
	c, ok := resolveCallee(w.pass.Pkg.Info, call)
	if !ok {
		return
	}
	// Lock transitions: methods on sync.Mutex/RWMutex values.
	if c.pkgPath == "sync" && c.recvX != nil && isMutexType(typeOf(w.pass, c.recvX)) {
		key, declPos := mutexKey(w.pass, c.recvX)
		switch c.name {
		case "Lock", "RLock":
			// A reasoned ignore at the Lock site or at the mutex
			// field's declaration marks every section of this mutex as
			// deliberate; the lock is then not tracked at all.
			if w.pass.SuppressedAt(lockBlockName, call.Pos()) {
				return
			}
			if declPos.IsValid() && w.pass.SuppressedAt(lockBlockName, declPos) {
				return
			}
			held[key] = heldLock{text: exprText(c.recvX), acquirePos: call.Pos()}
		case "Unlock", "RUnlock":
			delete(held, key)
		}
		return
	}
	if why, blocking := w.blockingCall(c); blocking {
		w.blockingOp(call.Pos(), why, held)
	}
}

// blockingCall classifies a resolved callee as wall-clock blocking.
// Same-package calls are never classified (the check is intraprocedural;
// a package's own helpers are analyzed where they block).
func (w *lockWalker) blockingCall(c callee) (string, bool) {
	if c.pkgPath == w.pkgPath {
		return "", false
	}
	switch c.pkgPath {
	case "gengar/internal/tcpnet":
		return "call into tcpnet", true
	case "gengar/internal/rpc":
		return "call into rpc", true
	case "net":
		return "net call", true
	case "time":
		if c.name == "Sleep" {
			return "time.Sleep", true
		}
	case "sync":
		if c.recv == "WaitGroup" && c.name == "Wait" {
			return "sync.WaitGroup.Wait", true
		}
	case "gengar/internal/rdma":
		if c.recv == "QP" {
			switch c.name {
			case "Write", "Read", "Send", "Recv", "ReadBatch", "WriteBatch",
				"CompareAndSwap", "FetchAdd":
				return "RDMA post " + c.name, true
			}
		}
	case "gengar/internal/simnet":
		if c.recv == "GateHandle" && c.name == "Advance" {
			return "gate advance", true
		}
	}
	return "", false
}

func (w *lockWalker) blockingOp(pos token.Pos, why string, held lockSet) {
	if w.inSelectComm {
		return
	}
	for _, l := range held {
		if w.pass.SuppressedAt(lockBlockName, l.acquirePos) {
			continue
		}
		acq := w.pass.Pkg.Fset.Position(l.acquirePos)
		w.findings = append(w.findings, w.pass.finding(lockBlockName, pos,
			"%s held across %s (acquired at line %d)", l.text, why, acq.Line))
	}
}

// mutexKey returns a stable identity for the mutex operand — the
// types.Object of its final identifier when resolvable (the field or
// variable declaration), else the rendered expression — plus the
// declaration position for decl-level suppression lookup.
func mutexKey(p *Pass, operand ast.Expr) (any, token.Pos) {
	switch x := ast.Unparen(operand).(type) {
	case *ast.Ident:
		if obj := objOf(p, x); obj != nil {
			return obj, obj.Pos()
		}
	case *ast.SelectorExpr:
		if obj := objOf(p, x.Sel); obj != nil {
			return obj, obj.Pos()
		}
	}
	return exprText(operand), token.NoPos
}

func objOf(p *Pass, id *ast.Ident) types.Object {
	if obj := p.Pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return p.Pkg.Info.Defs[id]
}

// typeOf returns the static type of e, or nil when untyped.
func typeOf(p *Pass, e ast.Expr) types.Type {
	if tv, ok := p.Pkg.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// isChanType reports whether e's type is a channel.
func isChanType(p *Pass, e ast.Expr) bool {
	t := typeOf(p, e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}
