package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// seqlockProtocol checks the copy-header seqlock discipline in every
// function that touches the seq word (an hmem word-op whose offset
// mentions CopySeqOff, or a call to a same-package helper that does).
// The protocol (see DESIGN.md and internal/hmem/words.go):
//
//   - writers flip the seq word odd with CompareAndSwapWordRaw, store
//     data words (including the generation header) only inside that
//     window, and release by storing the next even value;
//   - readers load seq (even = quiescent), copy data with ReadWordsRaw,
//     then RE-load seq and compare against the first load before
//     trusting the copy; using the copied bytes before the comparison
//     defeats the torn-read detection.
//
// Reported hazards: a data store before the CAS or after the release, a
// writer that never releases, a copy read with no prior seq load, a
// reader missing the re-load or the comparison, and copied data used
// inside the unvalidated window.
//
// Tracking is the same linear source-order approximation as the other
// protocol analyzers: events are ordered by position, loops are scanned
// once, branches are not modeled. Functions whose only seq-word ops are
// the acquire (CAS) or release (store) primitives themselves — no data
// words — are exempt from the pairing rules, so helpers like
// acquireSeq/releaseSeq and tests that deliberately wedge the seq word
// stay clean.
const seqlockName = "seqlock-protocol"

var seqlockProtocol = &Analyzer{
	Name: seqlockName,
	Doc:  "seqlock writer window or reader re-check protocol violation around CopySeqOff",
	Run:  runSeqlock,
}

// seqEventKind classifies one protocol-relevant operation.
type seqEventKind int

const (
	evSeqLoad   seqEventKind = iota // LoadWordRaw(seq) -> var
	evAcquire                       // CAS on seq word, or call to an acquirer
	evRelease                       // store to seq word, or call to a releaser
	evDataRead                      // ReadWordsRaw at a non-header offset
	evDataWrite                     // WriteWordsRaw/StoreWordRaw at a data offset
	evCompare                       // == / != between two seq-load vars
)

type seqEvent struct {
	kind seqEventKind
	pos  token.Pos
	obj  types.Object   // evSeqLoad: result var; evDataRead: dst buffer root
	objs []types.Object // evCompare: the seq vars compared
	end  token.Pos      // evDataRead: end of the call (dst-use scan start)
}

func runSeqlock(p *Pass) []Finding {
	acquirers, releasers := collectSeqPrims(p)
	var out []Finding
	for _, fn := range funcDecls(p.Pkg) {
		out = append(out, checkSeqlockFn(p, fn, acquirers, releasers)...)
	}
	return out
}

// collectSeqPrims finds the package's seqlock primitives: functions that
// CAS the seq word (acquirers) and functions that store it (releasers).
// Calls to them count as acquire/release events in their callers.
func collectSeqPrims(p *Pass) (acquirers, releasers map[string]bool) {
	acquirers = make(map[string]bool)
	releasers = make(map[string]bool)
	for _, fn := range funcDecls(p.Pkg) {
		seqVars := seqOffsetVars(p, fn)
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, isSeq := seqWordCall(p, call, seqVars)
			if !isSeq {
				return true
			}
			switch name {
			case "CompareAndSwapWordRaw":
				acquirers[localFnKey(p, fn)] = true
			case "StoreWordRaw":
				releasers[localFnKey(p, fn)] = true
			}
			return true
		})
	}
	return acquirers, releasers
}

// localFnKey identifies a function within its package: "Recv.Name" or
// "Name".
func localFnKey(p *Pass, fn *ast.FuncDecl) string {
	if fn.Recv != nil && len(fn.Recv.List) > 0 {
		if named := namedOf(typeOf(p, fn.Recv.List[0].Type)); named != nil {
			return named.Obj().Name() + "." + fn.Name.Name
		}
	}
	return fn.Name.Name
}

// seqWordCall reports whether call is an hmem word op whose offset
// argument mentions CopySeqOff (directly or via a tracked offset var),
// returning the op name.
func seqWordCall(p *Pass, call *ast.CallExpr, seqVars map[any]string) (string, bool) {
	c, ok := resolveCallee(p.Pkg.Info, call)
	if !ok || len(call.Args) == 0 {
		return "", false
	}
	switch c.name {
	case "LoadWordRaw", "StoreWordRaw", "CompareAndSwapWordRaw", "ReadWordsRaw", "WriteWordsRaw":
	default:
		return "", false
	}
	if seqHeaderConstIn(p, call.Args[0], seqVars) != "CopySeqOff" {
		return "", false
	}
	return c.name, true
}

// checkSeqlockFn collects the function's protocol events in source order
// and applies the writer and reader rules.
func checkSeqlockFn(p *Pass, fn *ast.FuncDecl, acquirers, releasers map[string]bool) []Finding {
	events := collectSeqEvents(p, fn, acquirers, releasers)
	touchesSeq := false
	for _, e := range events {
		switch e.kind {
		case evSeqLoad, evAcquire, evRelease:
			touchesSeq = true
		}
	}
	if !touchesSeq {
		return nil // data ops with no seqlock involvement are out of scope
	}

	var out []Finding

	// Writer rules: every data store must sit inside an
	// acquire..release window.
	var lastAcquire, lastRelease, lastDataWrite token.Pos
	releaseAfterLastWrite := false
	afterReleaseReported := false
	for _, e := range events {
		switch e.kind {
		case evAcquire:
			lastAcquire = e.pos
		case evRelease:
			lastRelease = e.pos
			if lastDataWrite.IsValid() {
				releaseAfterLastWrite = true
			}
		case evDataWrite:
			lastDataWrite = e.pos
			releaseAfterLastWrite = false
			if !lastAcquire.IsValid() {
				out = append(out, p.finding(seqlockName, e.pos,
					"seqlock-protected data store before the seq word is acquired (CAS to odd) in %s",
					fn.Name.Name))
			} else if lastRelease.IsValid() && lastRelease > lastAcquire {
				afterReleaseReported = true
				out = append(out, p.finding(seqlockName, e.pos,
					"data store after the seqlock is released in %s: readers can no longer detect the overlap",
					fn.Name.Name))
			}
		}
	}
	// The after-release finding above already names the unpaired window;
	// don't stack a missing-release report on the same stores.
	if lastDataWrite.IsValid() && lastAcquire.IsValid() && !releaseAfterLastWrite && !afterReleaseReported {
		out = append(out, p.finding(seqlockName, lastDataWrite,
			"seqlock writer %s never releases (store seq back to even) after its data stores",
			fn.Name.Name))
	}

	// Reader rules apply to pure readers: data copies with no acquire.
	if lastAcquire.IsValid() {
		return out
	}
	var lastDataRead *seqEvent
	preLoads := make(map[types.Object]bool) // seq vars loaded before the last data read
	for i := range events {
		if events[i].kind == evDataRead {
			lastDataRead = &events[i]
		}
	}
	if lastDataRead == nil {
		return out
	}
	anyLoadBefore := false
	for _, e := range events {
		if e.kind == evSeqLoad && e.pos < lastDataRead.pos {
			anyLoadBefore = true
			if e.obj != nil {
				preLoads[e.obj] = true
			}
		}
	}
	if !anyLoadBefore {
		out = append(out, p.finding(seqlockName, lastDataRead.pos,
			"seqlock copy read in %s without loading the seq word first", fn.Name.Name))
		return out
	}
	var reload *seqEvent
	var validated *seqEvent
	for i := range events {
		e := &events[i]
		if e.pos <= lastDataRead.pos {
			continue
		}
		if e.kind == evSeqLoad {
			reload = e
		}
		if e.kind == evCompare && reload != nil {
			pre, post := false, false
			for _, o := range e.objs {
				if preLoads[o] {
					pre = true
				} else {
					post = true
				}
			}
			if pre && post {
				validated = e
				break
			}
		}
	}
	switch {
	case reload == nil:
		out = append(out, p.finding(seqlockName, lastDataRead.pos,
			"seqlock reader %s never re-loads the seq word after copying: torn reads go undetected",
			fn.Name.Name))
	case validated == nil:
		out = append(out, p.finding(seqlockName, reload.pos,
			"seqlock reader %s re-loads the seq word but never compares it against the pre-copy value",
			fn.Name.Name))
	default:
		// Validated: the copied bytes must not be used inside the
		// unvalidated window.
		if lastDataRead.obj != nil {
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok || id.Pos() <= lastDataRead.end || id.Pos() >= validated.pos {
					return true
				}
				if objOf(p, id) == lastDataRead.obj {
					out = append(out, p.finding(seqlockName, id.Pos(),
						"copied seqlock data (%s) used before the seq re-check validates it in %s",
						id.Name, fn.Name.Name))
				}
				return true
			})
		}
	}
	return out
}

// collectSeqEvents walks the body in source order and materializes the
// protocol event stream.
func collectSeqEvents(p *Pass, fn *ast.FuncDecl, acquirers, releasers map[string]bool) []seqEvent {
	info := p.Pkg.Info
	seqVars := seqOffsetVars(p, fn)

	// Pre-pass: LHS var of each `v, err := dev.LoadWordRaw(seqOff)`.
	loadDst := make(map[*ast.CallExpr]types.Object)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) == 0 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident); ok {
			if obj := objOf(p, id); obj != nil {
				loadDst[call] = obj
			}
		}
		return true
	})
	seqLoadVars := make(map[types.Object]bool)

	var events []seqEvent
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			c, ok := resolveCallee(info, n)
			if !ok {
				return true
			}
			// Same-package primitive calls.
			if c.obj != nil && c.obj.Pkg() != nil && c.obj.Pkg().Path() == p.Pkg.Path {
				key := c.name
				if c.recv != "" {
					key = c.recv + "." + c.name
				}
				if acquirers[key] {
					events = append(events, seqEvent{kind: evAcquire, pos: n.Pos()})
				}
				if releasers[key] {
					events = append(events, seqEvent{kind: evRelease, pos: n.Pos()})
				}
				return true
			}
			switch c.name {
			case "LoadWordRaw":
				if len(n.Args) == 0 {
					return true
				}
				switch seqHeaderConstIn(p, n.Args[0], seqVars) {
				case "CopySeqOff":
					ev := seqEvent{kind: evSeqLoad, pos: n.Pos(), obj: loadDst[n]}
					if ev.obj != nil {
						seqLoadVars[ev.obj] = true
					}
					events = append(events, ev)
				case "CopyGenOff":
					// Generation header loads are validation traffic.
				}
			case "StoreWordRaw", "CompareAndSwapWordRaw":
				if len(n.Args) == 0 {
					return true
				}
				if seqHeaderConstIn(p, n.Args[0], seqVars) == "CopySeqOff" {
					kind := evRelease
					if c.name == "CompareAndSwapWordRaw" {
						kind = evAcquire
					}
					events = append(events, seqEvent{kind: kind, pos: n.Pos()})
				} else if c.name == "StoreWordRaw" {
					events = append(events, seqEvent{kind: evDataWrite, pos: n.Pos()})
				}
			case "WriteWordsRaw":
				if len(n.Args) > 0 && seqHeaderConstIn(p, n.Args[0], seqVars) != "CopySeqOff" {
					events = append(events, seqEvent{kind: evDataWrite, pos: n.Pos()})
				}
			case "ReadWordsRaw":
				if len(n.Args) < 2 || seqHeaderConstIn(p, n.Args[0], seqVars) != "" {
					return true // seq/gen header reads are not data copies
				}
				events = append(events, seqEvent{
					kind: evDataRead, pos: n.Pos(), end: n.End(),
					obj: rootObj(info, n.Args[1]),
				})
			}
		case *ast.BinaryExpr:
			if n.Op != token.EQL && n.Op != token.NEQ {
				return true
			}
			var objs []types.Object
			for _, side := range []ast.Expr{n.X, n.Y} {
				if id, ok := ast.Unparen(side).(*ast.Ident); ok {
					if obj := objOf(p, id); obj != nil && seqLoadVars[obj] {
						objs = append(objs, obj)
					}
				}
			}
			if len(objs) == 2 {
				events = append(events, seqEvent{kind: evCompare, pos: n.Pos(), objs: objs})
			}
		}
		return true
	})
	return events
}
