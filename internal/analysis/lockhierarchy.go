package analysis

// defaultLockOrder is the blessed mutex-acquisition hierarchy for the
// repository — THE checked-in lock-order config. Classes are named
// "pkgbase.Type.field" (or "pkgbase.var" for package-level mutexes),
// earliest-acquired first: holding a class and acquiring one that
// appears EARLIER in the list is an order inversion the lock-order
// analyzer reports. Classes not listed are still covered by cycle
// detection; list a class the first time a second lock is ever taken
// under it, so the blessed direction is recorded before a back-edge can
// creep in. Corpus packages extend the hierarchy locally with
// //gengar:lockorder directives instead of editing this list.
//
// The order is the topological order of every edge the analyzer
// observes in the tree today (client/session actors outermost, then
// transport and proxy staging, then engine tables, with telemetry,
// allocator, and device leaves innermost). Adjacent entries that never
// nest in practice are still ordered so a future nesting has one
// blessed direction.
var defaultLockOrder = []string{
	// Client actor lock: serializes one application session and calls
	// into every layer below (ops.go holds it across telemetry, hotness,
	// remap-view, and transport work).
	"core.Client.mu",
	// TCP transport: the redial guard admits one redialer which then
	// takes the conn table, per-connection, and frame-queue locks. The
	// peer-link dial guard (TryLock-admitted) wraps a handshake on the
	// peer connection, so it sits above serverConn.
	"tcpnet.Pool.redialMu",
	"tcpnet.Pool.mu",
	"tcpnet.peerLink.mu",
	"tcpnet.serverConn.mu",
	"tcpnet.frameQueue.mu",
	// Server-side registry pairs QPs and pokes per-server state.
	"server.Registry.mu",
	"server.Server.mu",
	// Proxy: task tracking wraps the engine lock; the write-back path
	// stages under stageMu and posts to RDMA/device from inside it.
	"proxy.Engine.taskMu",
	"proxy.Engine.mu",
	"proxy.Writer.pendMu",
	"proxy.Writer.stageMu",
	// Engine plan lock and the tables it drives.
	"engine.Engine.mu",
	"lock.LeaseTable.mu",
	"cache.RemapTable.mu",
	"engine.objIndex.mu",
	// Hosted-copy table: short bookkeeping sections only; arena and
	// copy I/O run outside its critical sections.
	"engine.hostedTable.mu",
	"cache.ClientView.mu",
	"hotness.Recorder.mu",
	// Wire layers under everything above.
	"rpc.Client.mu",
	"rdma.Node.mu",
	"rdma.QP.mu",
	// Telemetry sinks: tracer -> registry -> histogram nests today.
	"span.Tracer.mu",
	"span.Tracer.ringMu",
	"telemetry.Registry.mu",
	"telemetry.FlightRecorder.mu",
	"metrics.Histogram.mu",
	// Allocator: per-shard lanes, pool-wide slab index, global buddy.
	"alloc.shard.mu",
	"alloc.ShardedPool.mu",
	"alloc.Buddy.mu",
	// Storage devices and simulated resources are leaves: nothing may
	// be acquired under them.
	"hmem.Device.mu",
	"simnet.Resource.mu",
}
