package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked module package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
}

// Loader type-checks module packages using the toolchain's export data
// for dependencies, so loading stays stdlib-only (go/parser + go/types;
// no x/tools) and costs one `go list` invocation per module.
type Loader struct {
	Root string // module root (directory containing go.mod)

	modulePath string
	exports    map[string]string // import path -> export data file
	listed     map[string]*listedPkg
	fset       *token.FileSet
	imp        types.Importer
}

// NewLoader runs `go list -deps -export` over the whole module rooted at
// root and prepares an importer backed by the resulting export data.
func NewLoader(root string) (*Loader, error) {
	l := &Loader{
		Root:    root,
		exports: make(map[string]string),
		listed:  make(map[string]*listedPkg),
		fset:    token.NewFileSet(),
	}
	mod, err := goCmd(root, "list", "-m")
	if err != nil {
		return nil, fmt.Errorf("analysis: resolve module path: %w", err)
	}
	l.modulePath = strings.TrimSpace(string(mod))

	out, err := goCmd(root, "list", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,Standard", "./...")
	if err != nil {
		return nil, fmt.Errorf("analysis: go list: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decode go list output: %w", err)
		}
		cp := p
		l.listed[p.ImportPath] = &cp
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
	}
	l.imp = importer.ForCompiler(l.fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := l.exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(f)
	})
	return l, nil
}

// ModulePath returns the module's import path prefix.
func (l *Loader) ModulePath() string { return l.modulePath }

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Load type-checks every module package matched by the patterns (the
// usual go tool patterns; "./..." loads the whole module) and returns
// them in import-path order. Test files are not loaded: the analyzers
// guard production invariants, and want-comment corpora live under
// testdata where the go tool never builds them.
func (l *Loader) Load(patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	out, err := goCmd(l.Root, append([]string{"list"}, patterns...)...)
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %w", patterns, err)
	}
	var paths []string
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if line == l.modulePath || strings.HasPrefix(line, l.modulePath+"/") {
			paths = append(paths, line)
		}
	}
	sort.Strings(paths)
	pkgs := make([]*Package, 0, len(paths))
	for _, path := range paths {
		lp := l.listed[path]
		if lp == nil || len(lp.GoFiles) == 0 {
			continue
		}
		pkg, err := l.check(path, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir type-checks a single directory of Go files (outside the build
// graph, e.g. a testdata corpus) against the module's export data. The
// directory's files may import the standard library and any module
// package the module itself builds.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	sort.Strings(names)
	return l.check("testdata/"+filepath.Base(dir), dir, names)
}

func (l *Loader) check(path, dir string, names []string) (*Package, error) {
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-check %s: %w", path, err)
	}
	return &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

func goCmd(dir string, args ...string) ([]byte, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %v: %s", strings.Join(args, " "), err, stderr.String())
	}
	return out, nil
}
