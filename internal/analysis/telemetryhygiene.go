package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// telemetryHygiene enforces the registry discipline from PR 2's unified
// telemetry work:
//
//   - no package-level registries: a *telemetry.Registry lives on the
//     cluster (one scrape surface, resettable in tests), never in a
//     package-scope var, where it would outlive clusters and merge
//     series across tests;
//   - bounded label values: a label value must be a compile-time
//     constant or an enum's String() — except inside constructors and
//     registration helpers (New*/Open*/Connect*/Dial*/Join*/Register*),
//     where identity labels like the client name are bound once.
//     Anything else (per-op formatting, addresses, counters) makes
//     series cardinality unbounded;
//   - no double registration: two registrations with the same constant
//     metric name in one function is the copy-paste bug the registry
//     only catches at runtime;
//   - bounded span identifiers: the op name handed to a tracer
//     (Start/StartAt/StartRemote/ObserveStage) must be a constant or an
//     enum's String(), and stage arguments must be the named span.Stage
//     constants — a span.Stage conversion of a non-constant expression
//     would mint stage labels outside the fixed enum. Every (op, stage)
//     pair becomes a histogram series, so both sets must be closed.
const telemetryHygieneName = "telemetry-hygiene"

var telemetryHygiene = &Analyzer{
	Name: telemetryHygieneName,
	Doc:  "package-level registries, unbounded label values, double registration",
	Run:  runTelemetryHygiene,
}

const (
	telemetryPkgPath = "gengar/internal/telemetry"
	spanPkgPath      = "gengar/internal/telemetry/span"
)

func runTelemetryHygiene(p *Pass) []Finding {
	if p.Pkg.Path == telemetryPkgPath || p.Pkg.Path == spanPkgPath {
		return nil // the instrumentation implementations are exempt from their own client rules
	}
	var out []Finding
	out = append(out, packageLevelRegistries(p)...)
	for _, fn := range funcDecls(p.Pkg) {
		out = append(out, labelAndRegistrationChecks(p, fn)...)
		out = append(out, spanIdentifierChecks(p, fn)...)
	}
	return out
}

// packageLevelRegistries flags package-scope vars of type
// telemetry.Registry (or pointer to it).
func packageLevelRegistries(p *Pass) []Finding {
	var out []Finding
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					obj := p.Pkg.Info.Defs[name]
					if obj == nil {
						continue
					}
					if isNamedType(obj.Type(), telemetryPkgPath, "Registry") {
						out = append(out, p.finding(telemetryHygieneName, name.Pos(),
							"package-level telemetry registry %s: registries belong to a cluster, not package scope", name.Name))
					}
				}
			}
		}
	}
	return out
}

// registrationMethods are the telemetry.Registry methods that create a
// series; their first argument is the metric name.
var registrationMethods = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true,
	"RegisterCounter": true, "RegisterGauge": true, "RegisterHistogram": true,
	"GaugeFunc": true,
}

// constructorPrefixes are function-name prefixes inside which dynamic
// label values are allowed: the label is bound once per constructed
// object, so cardinality tracks object count, not operation count.
var constructorPrefixes = []string{"new", "open", "connect", "dial", "join", "register", "init"}

func inConstructor(fn *ast.FuncDecl) bool {
	name := strings.ToLower(fn.Name.Name)
	for _, pre := range constructorPrefixes {
		if strings.HasPrefix(name, pre) {
			return true
		}
	}
	return false
}

func labelAndRegistrationChecks(p *Pass, fn *ast.FuncDecl) []Finding {
	var out []Finding
	info := p.Pkg.Info
	constructor := inConstructor(fn)
	// metric name (constant) -> first registration position
	seen := make(map[string]token.Pos)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			c, ok := resolveCallee(info, n)
			if !ok || c.pkgPath != telemetryPkgPath {
				return true
			}
			if c.recv == "Registry" && registrationMethods[c.name] && len(n.Args) > 0 {
				if tv, ok := info.Types[n.Args[0]]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
					name := constant.StringVal(tv.Value)
					// Same name with different constant labels is a family
					// (one series per label value), not a duplicate; key on
					// both. Dynamic labels can't be compared statically, so
					// those registrations are skipped.
					key, comparable := registrationKey(p, name, n.Args[1:])
					if comparable {
						if first, dup := seen[key]; dup {
							out = append(out, p.finding(telemetryHygieneName, n.Pos(),
								"metric %q registered twice with identical labels in %s (first at line %d)",
								name, fn.Name.Name, p.Pkg.Fset.Position(first).Line))
						} else {
							seen[key] = n.Pos()
						}
					}
				}
			}
			// telemetry.L(key, value): check the value argument.
			if c.recv == "" && c.name == "L" && len(n.Args) == 2 && !constructor {
				if f, bad := checkLabelValue(p, n.Args[1]); bad {
					out = append(out, f)
				}
			}
		case *ast.CompositeLit:
			// telemetry.Label{Key: …, Value: …} literals.
			if constructor {
				return true
			}
			if tv, ok := info.Types[n]; !ok || !isNamedType(tv.Type, telemetryPkgPath, "Label") {
				return true
			}
			for _, elt := range n.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Value" {
					if f, bad := checkLabelValue(p, kv.Value); bad {
						out = append(out, f)
					}
				}
			}
		}
		return true
	})
	return out
}

// registrationKey folds a registration call's constant labels into a
// comparable key. Arguments that are telemetry.L calls with two constant
// arguments contribute "k=v"; the instrument pointer/callback arguments
// contribute nothing; anything of type telemetry.Label (or a slice or
// spread of them) that is not constant-foldable makes the registration
// incomparable.
func registrationKey(p *Pass, name string, rest []ast.Expr) (string, bool) {
	info := p.Pkg.Info
	parts := []string{name}
	for _, arg := range rest {
		t := typeOf(p, arg)
		if t == nil {
			continue
		}
		isLabel := isNamedType(t, telemetryPkgPath, "Label")
		if sl, ok := t.Underlying().(*types.Slice); ok && isNamedType(sl.Elem(), telemetryPkgPath, "Label") {
			return "", false // labels... forwarded from a variable
		}
		if !isLabel {
			continue // help string, instrument pointer, callback
		}
		call, ok := ast.Unparen(arg).(*ast.CallExpr)
		if !ok || len(call.Args) != 2 {
			return "", false
		}
		kv, okK := info.Types[call.Args[0]]
		vv, okV := info.Types[call.Args[1]]
		if !okK || kv.Value == nil || !okV || vv.Value == nil {
			return "", false
		}
		parts = append(parts, kv.Value.ExactString()+"="+vv.Value.ExactString())
	}
	return strings.Join(parts, "\x00"), true
}

// tracerOpArg maps the span.Tracer methods that take an op name to the
// argument index carrying it.
var tracerOpArg = map[string]int{
	"Start": 0, "StartAt": 0, "ObserveStage": 0,
	"StartRemote": 1,
}

// spanIdentifierChecks enforces the closed span vocabularies: op names
// handed to a tracer are constants or enum String(), and span.Stage
// values never come from converting a non-constant expression. Unlike
// identity labels, span identifiers are per-operation-type, so the
// constructor exemption does not apply.
func spanIdentifierChecks(p *Pass, fn *ast.FuncDecl) []Finding {
	var out []Finding
	info := p.Pkg.Info
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// span.Stage(expr) conversions with a non-constant operand.
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() &&
			isNamedType(tv.Type, spanPkgPath, "Stage") {
			if len(call.Args) == 1 && !isConstExpr(info, ast.Unparen(call.Args[0])) {
				out = append(out, p.finding(telemetryHygieneName, call.Pos(),
					"non-constant conversion to span.Stage of %s: stage marks must use the named stage constants", exprText(call.Args[0])))
			}
			return true
		}
		c, ok := resolveCallee(info, call)
		if !ok || c.pkgPath != spanPkgPath || c.recv != "Tracer" {
			return true
		}
		idx, ok := tracerOpArg[c.name]
		if !ok || idx >= len(call.Args) {
			return true
		}
		arg := ast.Unparen(call.Args[idx])
		if isConstExpr(info, arg) {
			return true
		}
		if inner, ok := arg.(*ast.CallExpr); ok {
			if ic, ok := resolveCallee(info, inner); ok && ic.name == "String" && ic.recv != "" {
				return true // enum stringer: the op set is the enum's
			}
		}
		out = append(out, p.finding(telemetryHygieneName, arg.Pos(),
			"unbounded span op %s: op names must be constants or enum String()", exprText(arg)))
		return true
	})
	return out
}

// checkLabelValue accepts compile-time constants and enum String()
// calls; everything else is unbounded cardinality.
func checkLabelValue(p *Pass, v ast.Expr) (Finding, bool) {
	v = ast.Unparen(v)
	if isConstExpr(p.Pkg.Info, v) {
		return Finding{}, false
	}
	if call, ok := v.(*ast.CallExpr); ok {
		if c, ok := resolveCallee(p.Pkg.Info, call); ok && c.name == "String" && c.recv != "" {
			return Finding{}, false // enum stringer: value set is the enum's
		}
	}
	return p.finding(telemetryHygieneName, v.Pos(),
		"unbounded label value %s: label values must be constants or enum String() outside constructors", exprText(v)), true
}
