package analysis

import (
	"go/ast"
	"go/token"
	"sort"
	"strconv"
	"strings"
)

// ignoreAnalyzerName is the pseudo analyzer that reports malformed
// //gengar:lint-ignore directives. It cannot be suppressed.
const ignoreAnalyzerName = "lint-ignore"

const ignorePrefix = "//gengar:lint-ignore"

// directive is one parsed //gengar:lint-ignore comment.
type directive struct {
	pos      token.Position
	analyzer string // "" when missing
	reason   string // "" when missing
}

// suppLine is one well-formed directive's line, with a used bit set
// when it actually covers a finding (or a secondary anchor an analyzer
// consulted): an unused directive is stale and itself reported.
type suppLine struct {
	line int
	used bool
}

// suppressions indexes a package's ignore directives by file and line.
type suppressions struct {
	// byKey maps "<analyzer>\x00<file>" to the sorted lines holding a
	// well-formed directive for that analyzer.
	byKey  map[string][]*suppLine
	broken []directive
}

// collectSuppressions parses every //gengar:lint-ignore directive in the
// package. A directive must name an analyzer and give a reason; ones
// that do not are recorded as broken and reported as findings.
func collectSuppressions(pkg *Package) *suppressions {
	s := &suppressions{byKey: make(map[string][]*suppLine)}
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //gengar:lint-ignorexyz — not ours
				}
				d := directive{pos: pkg.Fset.Position(c.Pos())}
				fields := strings.Fields(rest)
				if len(fields) > 0 {
					d.analyzer = fields[0]
				}
				if len(fields) > 1 {
					d.reason = strings.Join(fields[1:], " ")
				}
				if d.analyzer == "" || d.reason == "" {
					s.broken = append(s.broken, d)
					continue
				}
				key := d.analyzer + "\x00" + d.pos.Filename
				s.byKey[key] = append(s.byKey[key], &suppLine{line: d.pos.Line})
			}
		}
	}
	for _, lines := range s.byKey {
		sort.Slice(lines, func(i, j int) bool { return lines[i].line < lines[j].line })
	}
	return s
}

// covers reports whether a well-formed directive for the analyzer sits
// on the finding's line or on the line directly above it, marking every
// matching directive as used.
func (s *suppressions) covers(analyzer string, pos token.Position) bool {
	hit := false
	for _, l := range s.byKey[analyzer+"\x00"+pos.Filename] {
		if l.line == pos.Line || l.line == pos.Line-1 {
			l.used = true
			hit = true
		}
	}
	return hit
}

// brokenDirectives reports findings for directives missing a reason or
// naming an analyzer that does not exist (a typo would otherwise
// silently suppress nothing — or worse, the author believes it does).
func (s *suppressions) brokenDirectives(pkg *Package, known map[string]bool) []Finding {
	var out []Finding
	for _, d := range s.broken {
		msg := "lint-ignore directive needs an analyzer name and a reason: //gengar:lint-ignore <analyzer> <reason>"
		out = append(out, Finding{
			Analyzer: ignoreAnalyzerName,
			Pos:      token.Position{Filename: d.pos.Filename, Line: d.pos.Line, Column: d.pos.Column},
			File:     d.pos.Filename,
			Line:     d.pos.Line,
			Col:      d.pos.Column,
			Message:  msg,
		})
	}
	for key, lines := range s.byKey {
		name := key[:strings.IndexByte(key, '\x00')]
		file := key[strings.IndexByte(key, '\x00')+1:]
		if known[name] {
			continue
		}
		for _, line := range lines {
			out = append(out, Finding{
				Analyzer: ignoreAnalyzerName,
				Pos:      token.Position{Filename: file, Line: line.line, Column: 1},
				File:     file,
				Line:     line.line,
				Col:      1,
				Message:  "lint-ignore names unknown analyzer " + strconv.Quote(name),
			})
		}
	}
	return out
}

// staleDirectives reports well-formed directives that suppressed
// nothing. Only analyzers that actually ran this invocation are
// audited, so `-only` subsets never misflag a directive whose analyzer
// was simply not in the suite.
func (s *suppressions) staleDirectives(ran map[string]bool) []Finding {
	var out []Finding
	for key, lines := range s.byKey {
		name := key[:strings.IndexByte(key, '\x00')]
		file := key[strings.IndexByte(key, '\x00')+1:]
		if !ran[name] {
			continue
		}
		for _, line := range lines {
			if line.used {
				continue
			}
			out = append(out, Finding{
				Analyzer: ignoreAnalyzerName,
				Pos:      token.Position{Filename: file, Line: line.line, Column: 1},
				File:     file,
				Line:     line.line,
				Col:      1,
				Message:  "lint-ignore for " + name + " suppresses nothing: remove the stale directive",
			})
		}
	}
	return out
}

// hasHotpathDirective reports whether the function declaration carries a
// //gengar:hotpath annotation in its doc comment.
func hasHotpathDirective(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		text := strings.TrimSpace(c.Text)
		if text == "//gengar:hotpath" || strings.HasPrefix(text, "//gengar:hotpath ") {
			return true
		}
	}
	return false
}
