package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// callee describes the resolved target of a call expression.
type callee struct {
	obj     types.Object
	pkgPath string // defining package ("" for builtins)
	name    string // function or method name
	recv    string // receiver named-type name ("" for plain functions)
	recvX   ast.Expr
}

// resolveCallee resolves a call's target through the type info. It
// handles plain identifiers (locals, package functions), selector calls
// (pkg.Func, value.Method), and parenthesized forms. ok is false for
// builtins, conversions, and calls through unresolvable expressions.
func resolveCallee(info *types.Info, call *ast.CallExpr) (callee, bool) {
	fun := ast.Unparen(call.Fun)
	var id *ast.Ident
	var c callee
	switch f := fun.(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
		c.recvX = f.X
	default:
		return callee{}, false
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return callee{}, false
	}
	c.obj = fn
	c.name = fn.Name()
	if fn.Pkg() != nil {
		c.pkgPath = fn.Pkg().Path()
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		// Named receivers cover both concrete and interface methods
		// (net.Conn is a named interface type).
		if named := namedOf(sig.Recv().Type()); named != nil {
			c.recv = named.Obj().Name()
		}
	} else {
		// Selector on a package name yields a plain function; recvX is
		// the package identifier, not a value.
		if c.recvX != nil {
			if pid, ok := c.recvX.(*ast.Ident); ok {
				if _, isPkg := info.Uses[pid].(*types.PkgName); isPkg {
					c.recvX = nil
				}
			}
		}
	}
	return c, true
}

// namedOf unwraps pointers and aliases to the underlying named type.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	named, _ := t.(*types.Named)
	return named
}

// pkgTypeOf returns the static type of e in pkg, or nil when untyped.
func pkgTypeOf(pkg *Package, e ast.Expr) types.Type {
	if tv, ok := pkg.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// isNamedType reports whether t (possibly behind a pointer) is the named
// type pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	named := namedOf(t)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == pkgPath && named.Obj().Name() == name
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex, possibly
// behind a pointer.
func isMutexType(t types.Type) bool {
	return isNamedType(t, "sync", "Mutex") || isNamedType(t, "sync", "RWMutex")
}

// returnsError reports whether the call's callee returns an error in any
// result position.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return false
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if types.Identical(sig.Results().At(i).Type(), types.Universe.Lookup("error").Type()) {
			return true
		}
	}
	return false
}

// rootObj returns the object of the leftmost identifier of an lvalue-ish
// expression: buf, buf[i], c.buf, (*c).buf[i:j] all resolve to the
// object bound to the leftmost identifier.
func rootObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				return obj
			}
			return info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// exprText renders a (small) expression for diagnostics: c.mu, buf.
func exprText(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprText(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprText(x.X) + "[…]"
	case *ast.StarExpr:
		return "*" + exprText(x.X)
	case *ast.UnaryExpr:
		return exprText(x.X)
	case *ast.CallExpr:
		return exprText(x.Fun) + "(…)"
	default:
		return "expr"
	}
}

// isConstExpr reports whether e has a compile-time constant value.
func isConstExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

// pkgBase returns the last path element of an import path.
func pkgBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// funcDecls returns every function declaration in the package that has
// a body.
func funcDecls(pkg *Package) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				out = append(out, fn)
			}
		}
	}
	return out
}

// isGuardedPath reports whether the package path is one of the Gengar
// layers whose locking discipline lock-across-blocking enforces.
// Corpus packages (path testdata/…) are always guarded.
func isGuardedPath(path string) bool {
	// Corpus packages are guarded however they were loaded: LoadDir
	// synthesizes "testdata/<dir>", while the CLI pointed at a corpus
	// directory resolves the real import path through go list.
	if strings.HasPrefix(path, "testdata/") || strings.Contains(path, "/testdata/") {
		return true
	}
	switch pkgBase(path) {
	case "rdma", "proxy", "lock", "cache", "server", "core", "rpc", "tcpnet", "engine":
		return strings.HasPrefix(path, "gengar/internal/")
	}
	return false
}
