package analysis

import (
	"go/ast"
	"go/types"
)

// hotpathAlloc guards functions annotated //gengar:hotpath — the
// per-operation data paths (ReadMulti, WriteMulti, StageMulti) whose
// allocation behavior PR 2's sync.Pool work pinned down. Inside a
// hotpath function:
//
//   - no time.Now (wall-clock reads; simulated time comes from the
//     operation's own simnet timestamps),
//   - no fmt.Sprint/Sprintf/Sprintln (per-op formatting allocates;
//     fmt.Errorf is tolerated — error construction is the cold path),
//   - no make with a non-constant size (per-op slice/map growth), and
//   - no append whose destination is a bare local slice — appends must
//     target pooled or amortized storage (a struct field such as
//     s.conns or s.stage[i], reused across operations).
//
// Function literals are skipped: pool New closures and deferred cleanup
// run off the per-op path.
const hotpathAllocName = "hotpath-alloc"

var hotpathAlloc = &Analyzer{
	Name: hotpathAllocName,
	Doc:  "//gengar:hotpath function calls time.Now/fmt.Sprintf or allocates outside a pool",
	Run:  runHotpathAlloc,
}

func runHotpathAlloc(p *Pass) []Finding {
	var out []Finding
	for _, fn := range funcDecls(p.Pkg) {
		if !hasHotpathDirective(fn) {
			continue
		}
		out = append(out, hotpathCheckFunc(p, fn)...)
	}
	return out
}

func hotpathCheckFunc(p *Pass, fn *ast.FuncDecl) []Finding {
	var out []Finding
	info := p.Pkg.Info
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			// Builtins resolve to *types.Builtin; a shadowing local
			// named "make" would resolve to a Var and is not our make.
			_, isBuiltin := info.Uses[id].(*types.Builtin)
			switch {
			case isBuiltin && id.Name == "make":
				if !makeSizeConstant(p, call) {
					out = append(out, p.finding(hotpathAllocName, call.Pos(),
						"make with non-constant size in hotpath %s: allocate from a pool or a reused scratch field", fn.Name.Name))
				}
				return true
			case isBuiltin && id.Name == "append" && len(call.Args) > 0:
				if appendsToLocal(p, call.Args[0]) {
					out = append(out, p.finding(hotpathAllocName, call.Pos(),
						"append to local slice %s in hotpath %s: grow a pooled or struct-field buffer instead", exprText(call.Args[0]), fn.Name.Name))
				}
				return true
			}
		}
		c, ok := resolveCallee(info, call)
		if !ok {
			return true
		}
		switch {
		case c.pkgPath == "time" && c.name == "Now":
			out = append(out, p.finding(hotpathAllocName, call.Pos(),
				"time.Now in hotpath %s: use the operation's simulated timestamps", fn.Name.Name))
		case c.pkgPath == "fmt" && (c.name == "Sprintf" || c.name == "Sprint" ||
			c.name == "Sprintln"):
			out = append(out, p.finding(hotpathAllocName, call.Pos(),
				"fmt.%s in hotpath %s: per-operation formatting allocates", c.name, fn.Name.Name))
		}
		return true
	})
	return out
}

// makeSizeConstant reports whether every size argument of a make call is
// a compile-time constant (make(T) with no size is fine: maps/chans of
// default capacity are still per-op allocs, but the flagged class is
// data-dependent growth — and make of a map with no hint is caught by
// being non-constant-free anyway, so treat no-size as constant).
func makeSizeConstant(p *Pass, call *ast.CallExpr) bool {
	for _, arg := range call.Args[1:] { // Args[0] is the type
		if !isConstExpr(p.Pkg.Info, arg) {
			return false
		}
	}
	return true
}

// appendsToLocal reports whether the append destination is a bare local
// variable (an Ident bound in this function) rather than a struct field
// or an element of one.
func appendsToLocal(p *Pass, dst ast.Expr) bool {
	id, ok := ast.Unparen(dst).(*ast.Ident)
	if !ok {
		return false // selector/index destination: amortized storage
	}
	obj := objOf(p, id)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	// Package-scope destinations are someone else's problem (and rare);
	// the hotpath hazard is the per-op local that escapes the pool.
	return obj.Parent() != obj.Pkg().Scope()
}
