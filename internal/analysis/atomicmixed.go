package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// atomicMixedAccess closes the classic go-vet gap around mixed
// atomic/plain access — the bug class that reintroduces torn reads the
// moment a lock-free protocol leaks one plain load:
//
//  1. Any field or package-level variable whose address is passed to a
//     sync/atomic function ANYWHERE in the batch (the shared fact
//     layer) must be accessed through sync/atomic EVERYWHERE: a plain
//     read, write, or address-take of such a word is a finding. The
//     one exception is pre-publication access through a local the
//     function itself just allocated (a constructor filling a struct
//     no other goroutine can see yet).
//
//  2. The hmem seqlock header words — device offsets derived from
//     cache.CopySeqOff/CopyGenOff — must go through the 8-byte word
//     APIs (LoadWordRaw/StoreWordRaw/CompareAndSwapWordRaw/
//     ReadWordsRaw/WriteWordsRaw). Routing such an offset into the
//     plain device ops (Read/Write/ReadRaw/WriteRaw) bypasses the
//     atomic words racing writers flip, and is a finding even when a
//     device lock happens to make it safe today — suppress with a
//     reasoned //gengar:lint-ignore where the pairing is deliberate.
//
// Fields of atomic.Int64/atomic.Pointer[...]-style types need no
// checking here: the type system already forbids plain access to them.
const atomicMixedName = "atomic-mixed-access"

var atomicMixedAccess = &Analyzer{
	Name: atomicMixedName,
	Doc:  "word accessed via sync/atomic or hmem word ops is also accessed non-atomically",
	Run:  runAtomicMixedAccess,
}

func runAtomicMixedAccess(p *Pass) []Finding {
	if p.Facts == nil {
		return nil
	}
	var out []Finding
	for _, fn := range funcDecls(p.Pkg) {
		out = append(out, atomicPlainUses(p, fn)...)
	}
	out = append(out, seqWordPlainDeviceOps(p)...)
	return out
}

// atomicPlainUses flags plain accesses to atomic-fact words inside one
// function.
func atomicPlainUses(p *Pass, fn *ast.FuncDecl) []Finding {
	info := p.Pkg.Info
	fresh := freshLocals(p, fn)
	var out []Finding

	// atomicArgs marks the &x.f operand of each sync/atomic call so the
	// use inside it is not misread as plain.
	atomicArgs := make(map[ast.Expr]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		c, ok := resolveCallee(info, call)
		if !ok || c.pkgPath != "sync/atomic" || c.recv != "" || !atomicFns[c.name] || len(call.Args) == 0 {
			return true
		}
		if addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr); ok && addr.Op == token.AND {
			atomicArgs[addr.X] = true
		}
		return true
	})

	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.KeyValueExpr:
			// Composite-literal keys name fields without accessing them;
			// the value side still gets walked.
			ast.Inspect(n.Value, visit)
			return false
		case *ast.SelectorExpr:
			if atomicArgs[n] {
				return false
			}
			key, ok := objectKey(info, n, nil)
			if !ok {
				return true
			}
			if atomicAt, isAtomic := p.Facts.atomicFields[key]; isAtomic {
				if root := rootObj(info, n.X); root == nil || !fresh[root] {
					out = append(out, p.finding(atomicMixedName, n.Sel.Pos(),
						"plain access to %s, which is accessed atomically at %s:%d: use sync/atomic everywhere",
						displayKey(key), atomicAt.Filename, atomicAt.Line))
				}
				return false
			}
		case *ast.Ident:
			if atomicArgs[n] {
				return false
			}
			key, ok := objectKey(info, nil, n)
			if !ok {
				return true
			}
			if atomicAt, isAtomic := p.Facts.atomicFields[key]; isAtomic {
				out = append(out, p.finding(atomicMixedName, n.Pos(),
					"plain access to %s, which is accessed atomically at %s:%d: use sync/atomic everywhere",
					displayKey(key), atomicAt.Filename, atomicAt.Line))
			}
		}
		return true
	}
	ast.Inspect(fn.Body, visit)
	return out
}

// plainDeviceOps maps the non-atomic hmem.Device data ops to the index
// of their offset argument.
var plainDeviceOps = map[string]int{
	"Read": 1, "Write": 1, "ReadRaw": 0, "WriteRaw": 0,
}

// seqWordPlainDeviceOps flags plain device ops whose offset derives
// from the seqlock header constants.
func seqWordPlainDeviceOps(p *Pass) []Finding {
	var out []Finding
	for _, fn := range funcDecls(p.Pkg) {
		seqVars := seqOffsetVars(p, fn)
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			c, ok := resolveCallee(p.Pkg.Info, call)
			if !ok {
				return true
			}
			argIdx, plain := plainDeviceOps[c.name]
			if !plain || !isNamedType(calleeRecvType(p, c), "gengar/internal/hmem", "Device") {
				return true
			}
			if argIdx >= len(call.Args) {
				return true
			}
			if which := seqHeaderConstIn(p, call.Args[argIdx], seqVars); which != "" {
				out = append(out, p.finding(atomicMixedName, call.Pos(),
					"seqlock header word (%s) accessed through non-atomic Device.%s: use the word APIs (LoadWordRaw/ReadWordsRaw/...)",
					which, c.name))
			}
			return true
		})
	}
	return out
}

// calleeRecvType returns the static type of a method call's receiver
// expression.
func calleeRecvType(p *Pass, c callee) types.Type {
	if c.recvX == nil {
		return nil
	}
	return typeOf(p, c.recvX)
}

// seqOffsetVars returns the local variables of fn whose assignments
// mention a seqlock header constant, so `off := loc.Off + CopySeqOff;
// dev.ReadRaw(off, ...)` is still caught.
func seqOffsetVars(p *Pass, fn *ast.FuncDecl) map[any]string {
	out := make(map[any]string)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			which := seqHeaderConstIn(p, rhs, nil)
			if which == "" {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := objOf(p, id); obj != nil {
					out[obj] = which
				}
			}
		}
		return true
	})
	return out
}

// seqHeaderConstIn reports which seqlock header constant (CopySeqOff or
// CopyGenOff) the expression mentions, directly or through a tracked
// offset variable; "" if none.
func seqHeaderConstIn(p *Pass, e ast.Expr, seqVars map[any]string) (which string) {
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || which != "" {
			return which == ""
		}
		if id.Name == "CopySeqOff" || id.Name == "CopyGenOff" {
			if obj := objOf(p, id); obj != nil {
				which = id.Name
				return false
			}
		}
		if seqVars != nil {
			if obj := objOf(p, id); obj != nil {
				if w, tracked := seqVars[obj]; tracked {
					which = w
					return false
				}
			}
		}
		return true
	})
	return which
}

// freshLocals returns the local objects of fn bound to values the
// function itself allocated (composite literals, &composite, new(T)):
// plain access through them is pre-publication initialization, not a
// data race.
func freshLocals(p *Pass, fn *ast.FuncDecl) map[any]bool {
	out := make(map[any]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if !isFreshAlloc(p, rhs) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := p.Pkg.Info.Defs[id]; obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// isFreshAlloc reports whether e evaluates to storage allocated by this
// expression: T{...}, &T{...}, new(T).
func isFreshAlloc(p *Pass, e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			_, comp := ast.Unparen(x.X).(*ast.CompositeLit)
			return comp
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "new" {
			_, builtin := p.Pkg.Info.Uses[id].(*types.Builtin)
			return builtin
		}
	}
	return false
}
