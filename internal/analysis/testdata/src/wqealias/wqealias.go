// Package wqealias is the golden corpus for the wqe-aliasing analyzer.
package wqealias

import (
	"sync"

	"gengar/internal/rdma"
	"gengar/internal/simnet"
)

type conn struct {
	qp   *rdma.QP
	pool sync.Pool
	seen map[string]int
}

// mutateAfterUnawaitedPost writes into the payload after discarding the
// post's completion.
func (c *conn) mutateAfterUnawaitedPost(at simnet.Time, buf []byte) {
	_, _ = c.qp.Write(at, buf, rdma.RemoteAddr{})
	buf[0] = 1 // want "buf mutated after unawaited Write post"
}

// repoolAfterUnawaitedPost returns the payload to its pool while the
// WQE may still reference it.
func (c *conn) repoolAfterUnawaitedPost(at simnet.Time, buf []byte) {
	c.qp.Send(at, buf)
	c.pool.Put(buf) // want "buf returned to sync.Pool after unawaited Send post"
}

// mapKeyAfterUnawaitedPost keys a map on contents that the DMA engine
// may still be reading.
func (c *conn) mapKeyAfterUnawaitedPost(at simnet.Time, buf []byte) {
	_, _ = c.qp.Write(at, buf, rdma.RemoteAddr{})
	c.seen[string(buf)]++ // want "buf reused as map key after unawaited Write post"
}

// batchSrcMutatedAfterPost stages a payload via WriteReq.Src and then
// overwrites it with the batch's completion discarded.
func (c *conn) batchSrcMutatedAfterPost(at simnet.Time, payload []byte) {
	reqs := []rdma.WriteReq{{Src: payload, Raddr: rdma.RemoteAddr{}}}
	_, _ = c.qp.WriteBatch(at, reqs)
	copy(payload, "stale") // want "payload mutated .copy destination. after unawaited WriteBatch post"
}

// readDstReusedAfterPost hands a destination buffer to an unawaited
// ReadBatch and reuses it while the NIC may still be writing into it.
func (c *conn) readDstReusedAfterPost(at simnet.Time, dst []byte) {
	reqs := []rdma.ReadReq{{Dst: dst, Raddr: rdma.RemoteAddr{}}}
	_, _ = c.qp.ReadBatch(at, reqs)
	dst[0] = 0 // want "dst mutated after unawaited ReadBatch post"
}

// awaitedPostIsSafe binds the completion before touching the buffer.
func (c *conn) awaitedPostIsSafe(at simnet.Time, buf []byte) error {
	_, err := c.qp.Write(at, buf, rdma.RemoteAddr{})
	if err != nil {
		return err
	}
	buf[0] = 1
	return nil
}

// untouchedAfterPost never reuses the buffer: no finding even though
// the completion is discarded (that drop is errcheck-core's business).
func (c *conn) untouchedAfterPost(at simnet.Time, buf []byte) {
	_, _ = c.qp.Write(at, buf, rdma.RemoteAddr{})
}
