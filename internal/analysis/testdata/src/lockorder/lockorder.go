// Package lockorder is the golden corpus for the lock-order analyzer.
// The package declares its own hierarchy with a //gengar:lockorder
// directive (class names collapse to "pkgbase.Type.field"):
//
//gengar:lockorder lockorder.outer.mu < lockorder.inner.mu
package lockorder

import "sync"

type outer struct {
	mu sync.Mutex
	in *inner
}

type inner struct {
	mu sync.Mutex
	n  int
}

// goodNesting follows the declared order: outer before inner.
func (o *outer) goodNesting() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.in.mu.Lock()
	o.in.n++
	o.in.mu.Unlock()
}

// inverted acquires the classes back to front.
func (i *inner) inverted(o *outer) {
	i.mu.Lock()
	defer i.mu.Unlock()
	o.mu.Lock() // want "lock lockorder.outer.mu acquired while lockorder.inner.mu is held inverts the declared lock order"
	o.mu.Unlock()
}

// invertedViaCall reaches the same inversion through a callee: the
// interprocedural closure attributes it to the call site.
func (i *inner) invertedViaCall(o *outer) {
	i.mu.Lock()
	defer i.mu.Unlock()
	lockOuter(o) // want "lock lockorder.outer.mu acquired while lockorder.inner.mu is held \(via call to lockorder.lockOuter\) inverts the declared lock order"
}

func lockOuter(o *outer) {
	o.mu.Lock()
	o.mu.Unlock()
}

type left struct{ mu sync.Mutex }

type right struct{ mu sync.Mutex }

// cycleAB and cycleBA close an undeclared two-class cycle: each
// direction is a finding, since neither order is blessed.
func cycleAB(l *left, r *right) {
	l.mu.Lock()
	defer l.mu.Unlock()
	r.mu.Lock() // want "lock lockorder.right.mu acquired while lockorder.left.mu is held closes an acquisition cycle"
	r.mu.Unlock()
}

func cycleBA(l *left, r *right) {
	r.mu.Lock()
	defer r.mu.Unlock()
	l.mu.Lock() // want "lock lockorder.left.mu acquired while lockorder.right.mu is held closes an acquisition cycle"
	l.mu.Unlock()
}

// twoInstances holds two locks of the same class with no defined
// instance order: the one-class cycle.
func twoInstances(a, b *inner) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want "lock lockorder.inner.mu acquired while lockorder.inner.mu is held closes an acquisition cycle"
	b.n++
	b.mu.Unlock()
}

// branchesAreNotNesting: the linear scan tracks release, so two
// sequential critical sections of different classes in one body do not
// fabricate an edge.
func branchesAreNotNesting(o *outer, i *inner) {
	i.mu.Lock()
	i.n++
	i.mu.Unlock()
	o.mu.Lock()
	o.mu.Unlock()
}

// suppressed is the address-ordered double lock of one class — the
// reviewed exception, as in rdma.QP.Connect.
func suppressed(a, b *inner) {
	if b.n < a.n {
		a, b = b, a
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	//gengar:lint-ignore lock-order corpus demo: instances locked in address order
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}
