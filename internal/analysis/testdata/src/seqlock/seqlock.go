// Package seqlock is the golden corpus for the seqlock-protocol
// analyzer.
package seqlock

import (
	"gengar/internal/cache"
	"gengar/internal/hmem"
)

type copyArena struct {
	dev *hmem.Device
}

// acquire is the writer-entry primitive: CAS the seq word odd. Exempt
// from the pairing rules (no data words), and calls to it count as the
// acquire event in callers.
func (a *copyArena) acquire(off int64) (uint64, error) {
	for {
		s, err := a.dev.LoadWordRaw(off + cache.CopySeqOff)
		if err != nil {
			return 0, err
		}
		if s&1 != 0 {
			continue
		}
		ok, err := a.dev.CompareAndSwapWordRaw(off+cache.CopySeqOff, s, s+1)
		if err != nil {
			return 0, err
		}
		if ok {
			return s + 1, nil
		}
	}
}

// release is the writer-exit primitive: seq moves odd -> next even.
func (a *copyArena) release(off int64, odd uint64) error {
	return a.dev.StoreWordRaw(off+cache.CopySeqOff, odd+1)
}

// goodWriter is the blessed shape: acquire, data stores, release.
func (a *copyArena) goodWriter(off int64, data []byte) error {
	odd, err := a.acquire(off)
	if err != nil {
		return err
	}
	if err := a.dev.WriteWordsRaw(off+cache.CopyHeaderBytes, data); err != nil {
		return err
	}
	return a.release(off, odd)
}

// writeBeforeAcquire stores data words while the seq word is still
// even: a concurrent reader sees no overlap and trusts a torn copy.
func (a *copyArena) writeBeforeAcquire(off int64, data []byte) error {
	if err := a.dev.WriteWordsRaw(off+cache.CopyHeaderBytes, data); err != nil { // want "data store before the seq word is acquired"
		return err
	}
	odd, err := a.acquire(off)
	if err != nil {
		return err
	}
	return a.release(off, odd)
}

// writeAfterRelease keeps mutating after seq went back to even.
func (a *copyArena) writeAfterRelease(off int64, data []byte) error {
	odd, err := a.acquire(off)
	if err != nil {
		return err
	}
	if err := a.release(off, odd); err != nil {
		return err
	}
	return a.dev.WriteWordsRaw(off+cache.CopyHeaderBytes, data) // want "data store after the seqlock is released"
}

// neverReleases wedges the seq word odd forever.
func (a *copyArena) neverReleases(off int64, data []byte) error {
	if _, err := a.acquire(off); err != nil {
		return err
	}
	return a.dev.WriteWordsRaw(off+cache.CopyHeaderBytes, data) // want "seqlock writer neverReleases never releases"
}

// goodReader is the blessed shape: seq load, copy, re-load, compare.
func (a *copyArena) goodReader(off int64, buf []byte) (bool, error) {
	seq1, err := a.dev.LoadWordRaw(off + cache.CopySeqOff)
	if err != nil || seq1&1 != 0 {
		return false, err
	}
	if err := a.dev.ReadWordsRaw(off+cache.CopyHeaderBytes, buf); err != nil {
		return false, err
	}
	seq2, err := a.dev.LoadWordRaw(off + cache.CopySeqOff)
	if err != nil {
		return false, err
	}
	return seq2 == seq1, nil
}

// noPreLoad copies without checking for a writer in progress.
func (a *copyArena) noPreLoad(off int64, buf []byte) error {
	if err := a.dev.ReadWordsRaw(off+cache.CopyHeaderBytes, buf); err != nil { // want "without loading the seq word first"
		return err
	}
	seq2, err := a.dev.LoadWordRaw(off + cache.CopySeqOff)
	_ = seq2
	return err
}

// noReload never looks at the seq word again after copying.
func (a *copyArena) noReload(off int64, buf []byte) error {
	seq1, err := a.dev.LoadWordRaw(off + cache.CopySeqOff)
	if err != nil || seq1&1 != 0 {
		return err
	}
	return a.dev.ReadWordsRaw(off+cache.CopyHeaderBytes, buf) // want "never re-loads the seq word after copying"
}

// noCompare re-loads but never validates against the first value.
func (a *copyArena) noCompare(off int64, buf []byte) error {
	seq1, err := a.dev.LoadWordRaw(off + cache.CopySeqOff)
	if err != nil || seq1&1 != 0 {
		return err
	}
	if err := a.dev.ReadWordsRaw(off+cache.CopyHeaderBytes, buf); err != nil {
		return err
	}
	_, err = a.dev.LoadWordRaw(off + cache.CopySeqOff) // want "re-loads the seq word but never compares it"
	return err
}

// usedBeforeValidated consumes the copied bytes inside the unvalidated
// window: a torn copy escapes before the re-check can reject it.
func (a *copyArena) usedBeforeValidated(off int64, buf []byte, sink func([]byte)) (bool, error) {
	seq1, err := a.dev.LoadWordRaw(off + cache.CopySeqOff)
	if err != nil || seq1&1 != 0 {
		return false, err
	}
	if err := a.dev.ReadWordsRaw(off+cache.CopyHeaderBytes, buf); err != nil {
		return false, err
	}
	sink(buf) // want "copied seqlock data \(buf\) used before the seq re-check"
	seq2, err := a.dev.LoadWordRaw(off + cache.CopySeqOff)
	if err != nil {
		return false, err
	}
	return seq2 == seq1, nil
}

// wedgeForTest pokes the seq word directly with no data traffic, like
// the engine's stalled-writer test: exempt.
func (a *copyArena) wedgeForTest(off int64) error {
	s, err := a.dev.LoadWordRaw(off + cache.CopySeqOff)
	if err != nil {
		return err
	}
	return a.dev.StoreWordRaw(off+cache.CopySeqOff, s|1)
}

// suppressed demonstrates a reviewed single-writer arena where the
// window rules are deliberately relaxed.
func (a *copyArena) suppressed(off int64, data []byte) error {
	//gengar:lint-ignore seqlock-protocol corpus demo: single-writer arena, no concurrent readers yet
	if err := a.dev.WriteWordsRaw(off+cache.CopyHeaderBytes, data); err != nil {
		return err
	}
	odd, err := a.acquire(off)
	if err != nil {
		return err
	}
	return a.release(off, odd)
}
