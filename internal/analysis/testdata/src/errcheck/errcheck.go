// Package errcheck is the golden corpus for the errcheck-core analyzer.
package errcheck

import (
	"fmt"

	"gengar/internal/rdma"
	"gengar/internal/simnet"
)

type mover struct {
	qp *rdma.QP
}

// dropsPostError discards the error of an RDMA post entirely.
func (m *mover) dropsPostError(at simnet.Time, buf []byte) {
	m.qp.Write(at, buf, rdma.RemoteAddr{}) // want "error from rdma.QP.Write discarded"
	m.qp.Connect(nil)                      // want "error from rdma.QP.Connect discarded"
}

// explicitDiscard is a reviewed, intentional drop: allowed.
func (m *mover) explicitDiscard(at simnet.Time, buf []byte) {
	_, _ = m.qp.Write(at, buf, rdma.RemoteAddr{})
}

// handled propagates the error: allowed.
func (m *mover) handled(at simnet.Time, buf []byte) error {
	_, err := m.qp.Write(at, buf, rdma.RemoteAddr{})
	if err != nil {
		return fmt.Errorf("post: %w", err)
	}
	return nil
}

// nonPoolCallsAreIgnored: fmt is not a pool API.
func (m *mover) nonPoolCallsAreIgnored() {
	fmt.Println("not a pool API")
}
