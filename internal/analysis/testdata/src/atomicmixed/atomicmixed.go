// Package atomicmixed is the golden corpus for the atomic-mixed-access
// analyzer.
package atomicmixed

import (
	"sync/atomic"

	"gengar/internal/cache"
	"gengar/internal/hmem"
	"gengar/internal/simnet"
)

// hits is accessed atomically in bump: every plain access elsewhere is
// a finding.
var hits int64

type counter struct {
	n     int64
	clean int64 // never touched atomically: plain access is fine
}

func bump(c *counter) {
	atomic.AddInt64(&c.n, 1)
	atomic.AddInt64(&hits, 1)
}

// plainReads mixes in non-atomic loads of both words.
func plainReads(c *counter) int64 {
	a := c.n  // want "plain access to atomicmixed.counter.n"
	b := hits // want "plain access to atomicmixed.hits"
	ok := c.clean
	return a + b + ok
}

// plainWrites mixes in non-atomic stores.
func plainWrites(c *counter) {
	c.n = 0 // want "plain access to atomicmixed.counter.n"
	hits++  // want "plain access to atomicmixed.hits"
	c.clean++
}

// freshInit fills a counter the function just allocated: nothing else
// can observe it yet, so plain stores are pre-publication init.
func freshInit() *counter {
	c := &counter{n: 7} // composite-literal keys name fields, not accesses
	c.n = 9
	return c
}

// suppressed demonstrates a reviewed mixed access.
func suppressed(c *counter) int64 {
	//gengar:lint-ignore atomic-mixed-access corpus demo of a reviewed snapshot read
	return c.n
}

type mover struct {
	dev *hmem.Device
}

// seqWordOps drives the copy-header words through the atomic word APIs:
// clean.
func (m *mover) seqWordOps(off int64, buf []byte) error {
	if _, err := m.dev.LoadWordRaw(off + cache.CopySeqOff); err != nil {
		return err
	}
	return m.dev.ReadWordsRaw(off+cache.CopyHeaderBytes, buf)
}

// seqWordPlain routes seqlock header offsets into the plain device ops.
func (m *mover) seqWordPlain(at simnet.Time, off int64, buf []byte) {
	m.dev.Read(at, off+cache.CopySeqOff, buf)  // want "seqlock header word \(CopySeqOff\) accessed through non-atomic Device.Read"
	m.dev.Write(at, off+cache.CopyGenOff, buf) // want "seqlock header word \(CopyGenOff\) accessed through non-atomic Device.Write"
}

// seqWordPlainViaVar reaches the same hazard through an offset variable.
func (m *mover) seqWordPlainViaVar(off int64, buf []byte) error {
	seqOff := off + cache.CopySeqOff
	return m.dev.ReadRaw(seqOff, buf) // want "seqlock header word \(CopySeqOff\) accessed through non-atomic Device.ReadRaw"
}

// dataPlain reads a data offset through the plain ops: out of scope.
func (m *mover) dataPlain(off int64, buf []byte) error {
	return m.dev.ReadRaw(off+cache.CopyHeaderBytes, buf)
}

// suppressedDeviceOp is the reviewed locked-fallback pattern.
func (m *mover) suppressedDeviceOp(at simnet.Time, off int64, buf []byte) {
	//gengar:lint-ignore atomic-mixed-access corpus demo: writers hold the device write lock here
	m.dev.Read(at, off+cache.CopyGenOff, buf)
}
