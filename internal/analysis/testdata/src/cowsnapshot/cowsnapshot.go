// Package cowsnapshot is the golden corpus for the cow-snapshot
// analyzer.
package cowsnapshot

import (
	"sync"
	"sync/atomic"
)

type state struct {
	m    map[string]int
	list []int
	hot  int
}

// table follows the repo's COW shape: readers Load a snapshot, writers
// clone under mu and publish with Store.
type table struct {
	mu sync.Mutex
	//gengar:guardedby mu
	p atomic.Pointer[state]
}

// newTable fills a receiver nothing else can see yet: the unlocked
// Store is pre-publication init.
func newTable() *table {
	t := &table{}
	t.p.Store(&state{m: make(map[string]int)})
	return t
}

// goodWriter clones under the writer lock and publishes the clone.
func (t *table) goodWriter(k string, v int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	cur := t.p.Load()
	next := &state{m: make(map[string]int, len(cur.m)+1)}
	for key, val := range cur.m {
		next.m[key] = val
	}
	next.m[k] = v
	t.p.Store(next)
}

// unlockedStore publishes without the declared writer lock.
func (t *table) unlockedStore(next *state) {
	t.p.Store(next) // want "Store on COW field table.p without holding its declared writer lock t.mu"
}

// storeAfterUnlock releases the lock before publishing.
func (t *table) storeAfterUnlock(next *state) {
	t.mu.Lock()
	t.mu.Unlock()
	t.p.Store(next) // want "Store on COW field table.p without holding its declared writer lock t.mu"
}

// swapUnlocked: Swap is a publication too.
func (t *table) swapUnlocked(next *state) *state {
	return t.p.Swap(next) // want "Swap on COW field table.p without holding its declared writer lock t.mu"
}

// mutateSnapshot writes through a Load'd pointer: readers are walking
// it concurrently, so even the writer lock does not make this legal.
func (t *table) mutateSnapshot(k string, v int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	cur := t.p.Load()
	cur.m[k] = v // want "write through a COW snapshot \(cur aliases a Load'd snapshot\)"
}

// mutateChained writes through the Load call directly.
func (t *table) mutateChained(k string, v int) {
	t.p.Load().m[k] = v // want "write through Load\(\) of COW field table.p"
}

// deleteThroughSnapshot mutates the shared map via the builtin.
func (t *table) deleteThroughSnapshot(k string) {
	cur := t.p.Load()
	delete(cur.m, k) // want "write through a COW snapshot \(cur aliases a Load'd snapshot\)"
}

// fieldStoreThroughSnapshot flags scalar field writes as well.
func (t *table) fieldStoreThroughSnapshot(v int) {
	cur := t.p.Load()
	cur.hot = v // want "write through a COW snapshot \(cur aliases a Load'd snapshot\)"
}

// taintFlowsThroughAliases follows the snapshot through rebinding and
// range values.
func (t *table) taintFlowsThroughAliases(k string, v int) {
	alias := t.p.Load()
	inner := alias.m
	inner[k] = v // want "write through a COW snapshot \(inner aliases a Load'd snapshot\)"
	for _, sl := range [][]int{alias.list} {
		_ = sl
	}
}

// readersAreClean: Loads and reads through the snapshot never flag.
func (t *table) readersAreClean(k string) (int, bool) {
	cur := t.p.Load()
	v, ok := cur.m[k]
	return v + cur.hot, ok
}

// suppressed demonstrates a reviewed in-place mutation.
func (t *table) suppressed(k string, v int) {
	cur := t.p.Load()
	//gengar:lint-ignore cow-snapshot corpus demo of a reviewed single-writer mutation
	cur.m[k] = v
}

// badAnnotation declares a guard that is not a sibling field.
type badAnnotation struct {
	//gengar:guardedby lock // want "gengar:guardedby must name a sibling mutex field of badAnnotation"
	p atomic.Pointer[state]
}
