// Package lockblock is the golden corpus for the lock-across-blocking
// analyzer. Every `want` comment is an expected finding on that line.
package lockblock

import (
	"sync"
	"time"

	"gengar/internal/rdma"
	"gengar/internal/simnet"
)

type pool struct {
	mu  sync.Mutex
	rw  sync.RWMutex
	qp  *rdma.QP
	ch  chan int
	buf []byte

	//gengar:lint-ignore lock-across-blocking single-actor serialization lock, sections are deliberate
	actorMu sync.Mutex
}

func (p *pool) sendUnderLock() {
	p.mu.Lock()
	p.ch <- 1 // want "p.mu held across channel send"
	p.mu.Unlock()
}

func (p *pool) recvUnderLock() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return <-p.ch // want "p.mu held across channel receive"
}

func (p *pool) rlockAcrossPost(at simnet.Time) error {
	p.rw.RLock()
	defer p.rw.RUnlock()
	_, err := p.qp.Write(at, p.buf, rdma.RemoteAddr{}) // want "p.rw held across RDMA post Write"
	return err
}

func (p *pool) sleepUnderLock() {
	p.mu.Lock()
	time.Sleep(time.Millisecond) // want "p.mu held across time.Sleep"
	p.mu.Unlock()
}

func (p *pool) selectUnderLock() {
	p.mu.Lock()
	defer p.mu.Unlock()
	select { // want "p.mu held across select without default"
	case v := <-p.ch:
		_ = v
	case p.ch <- 2:
	}
}

func (p *pool) waitUnderLock(wg *sync.WaitGroup) {
	p.mu.Lock()
	wg.Wait() // want "p.mu held across sync.WaitGroup.Wait"
	p.mu.Unlock()
}

// unlockFirst releases before blocking: no finding.
func (p *pool) unlockFirst() {
	p.mu.Lock()
	v := len(p.buf)
	p.mu.Unlock()
	p.ch <- v
}

// errorReturnBranch unlocks on the early-return path; the analyzer must
// still see the lock held on the fallthrough path.
func (p *pool) errorReturnBranch(bad bool) {
	p.mu.Lock()
	if bad {
		p.mu.Unlock()
		return
	}
	p.ch <- 1 // want "p.mu held across channel send"
	p.mu.Unlock()
}

// bothBranchesUnlock merges to an empty held set: no finding.
func (p *pool) bothBranchesUnlock(fast bool) {
	p.mu.Lock()
	if fast {
		p.mu.Unlock()
	} else {
		p.mu.Unlock()
	}
	p.ch <- 1
}

// goroutineDoesNotInherit: the spawned body is a fresh context.
func (p *pool) goroutineDoesNotInherit() {
	p.mu.Lock()
	defer p.mu.Unlock()
	go func() {
		p.ch <- 1
	}()
}

// suppressedAtLine documents a deliberate section inline.
func (p *pool) suppressedAtLine() {
	//gengar:lint-ignore lock-across-blocking demo: ack channel is buffered and owned by this goroutine
	p.mu.Lock()
	p.ch <- 1
	p.mu.Unlock()
}

// suppressedAtDecl: actorMu's field declaration carries the directive,
// so none of its sections report.
func (p *pool) suppressedAtDecl() {
	p.actorMu.Lock()
	defer p.actorMu.Unlock()
	p.ch <- 1
}

// rangeOverChannel blocks on every iteration.
func (p *pool) rangeOverChannel() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for v := range p.ch { // want "p.mu held across range over channel"
		_ = v
	}
}
