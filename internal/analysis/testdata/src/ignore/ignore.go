// Package ignore is the golden corpus for //gengar:lint-ignore
// directive validation, run with the full analyzer suite.
package ignore

import (
	"gengar/internal/rdma"
	"gengar/internal/simnet"
)

type mover struct {
	qp *rdma.QP
}

// reasoned suppresses a real finding with a reason: no findings at all.
func (m *mover) reasoned(at simnet.Time, buf []byte) {
	//gengar:lint-ignore errcheck-core corpus demo of a reviewed discard
	m.qp.Write(at, buf, rdma.RemoteAddr{})
}

// missingReason is itself a finding (and suppresses nothing, so the
// discarded error reports too).
func (m *mover) missingReason(at simnet.Time, buf []byte) {
	// want-below "lint-ignore directive needs an analyzer name and a reason"
	//gengar:lint-ignore errcheck-core
	m.qp.Write(at, buf, rdma.RemoteAddr{}) // want "error from rdma.QP.Write discarded"
}

// unknownAnalyzer names a checker that does not exist — a typo that
// would otherwise silently suppress nothing.
func (m *mover) unknownAnalyzer(at simnet.Time, buf []byte) {
	//gengar:lint-ignore errchek-core typo in the analyzer name // want "lint-ignore names unknown analyzer"
	_, _ = m.qp.Write(at, buf, rdma.RemoteAddr{})
}

// stale names a real analyzer but the violation it once excused is
// gone: the directive suppresses nothing and must be removed, or it
// will silently excuse the next regression on this line.
func (m *mover) stale(at simnet.Time, buf []byte) {
	//gengar:lint-ignore errcheck-core the discard this excused was fixed // want "lint-ignore for errcheck-core suppresses nothing"
	_, _ = m.qp.Write(at, buf, rdma.RemoteAddr{})
}
