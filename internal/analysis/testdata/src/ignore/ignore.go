// Package ignore is the golden corpus for //gengar:lint-ignore
// directive validation, run with the full analyzer suite.
package ignore

import (
	"gengar/internal/rdma"
	"gengar/internal/simnet"
)

type mover struct {
	qp *rdma.QP
}

// reasoned suppresses a real finding with a reason: no findings at all.
func (m *mover) reasoned(at simnet.Time, buf []byte) {
	//gengar:lint-ignore errcheck-core corpus demo of a reviewed discard
	m.qp.Write(at, buf, rdma.RemoteAddr{})
}

// missingReason is itself a finding (and suppresses nothing, so the
// discarded error reports too).
func (m *mover) missingReason(at simnet.Time, buf []byte) {
	// want-below "lint-ignore directive needs an analyzer name and a reason"
	//gengar:lint-ignore errcheck-core
	m.qp.Write(at, buf, rdma.RemoteAddr{}) // want "error from rdma.QP.Write discarded"
}

// unknownAnalyzer names a checker that does not exist — a typo that
// would otherwise silently suppress nothing.
func (m *mover) unknownAnalyzer(at simnet.Time, buf []byte) {
	//gengar:lint-ignore errchek-core typo in the analyzer name // want "lint-ignore names unknown analyzer"
	_, _ = m.qp.Write(at, buf, rdma.RemoteAddr{})
}
