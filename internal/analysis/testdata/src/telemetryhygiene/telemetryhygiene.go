// Package telemetryhygiene is the golden corpus for the
// telemetry-hygiene analyzer.
package telemetryhygiene

import (
	"gengar/internal/telemetry"
	"gengar/internal/telemetry/span"
)

// Package-level registries outlive clusters and merge series across
// tests.
var globalReg telemetry.Registry // want "package-level telemetry registry globalReg"

var globalRegPtr *telemetry.Registry // want "package-level telemetry registry globalRegPtr"

// verb is a bounded enum: its String() is an acceptable label value.
type verb int

func (v verb) String() string { return "read" }

// recordOp runs per operation, so its label values must be bounded.
func recordOp(reg *telemetry.Registry, peer string, v verb) {
	reg.Counter("ops_total", "ops", telemetry.L("kind", "write"))
	reg.Counter("ops_by_peer", "ops", telemetry.L("peer", peer)) // want "unbounded label value peer"
	reg.Counter("ops_by_verb", "ops", telemetry.L("verb", v.String()))
	lbl := telemetry.Label{Key: "peer", Value: peer} // want "unbounded label value peer"
	_ = lbl
}

// newSession is a constructor: identity labels bound once are fine.
func newSession(reg *telemetry.Registry, client string) {
	reg.Counter("sessions_total", "sessions", telemetry.L("client", client))
}

// registerAll registers the same series twice — the runtime panic this
// analyzer catches at build time.
func registerAll(reg *telemetry.Registry) {
	reg.Counter("dup_total", "dup")
	reg.Counter("dup_total", "dup") // want "metric \"dup_total\" registered twice with identical labels"
	reg.Counter("family_total", "family", telemetry.L("verb", "read"))
	reg.Counter("family_total", "family", telemetry.L("verb", "write"))
}

// traceOp exercises the span vocabulary rules: op names and stage
// values are closed sets; every (op, stage) pair mints a histogram
// series.
func traceOp(tr *span.Tracer, peer string, v verb, code int) {
	tr.Start("read")
	tr.StartAt("read_multi", 0)
	if sp := tr.Start(v.String()); sp != nil {
		sp.Finish()
	}
	tr.Start(peer)                                   // want "unbounded span op peer"
	tr.StartRemote(1, peer)                          // want "unbounded span op peer"
	tr.ObserveStage(peer, span.StageFlushPersist, 1) // want "unbounded span op peer"
	tr.ObserveStage("write", span.StageFlushPersist, 1)
	tr.ObserveStage("write", span.StageFlushGate, 1) // pacer gate waits: in-vocabulary stage constant

	sp := tr.StartRemote(1, "read")
	sp.Mark(span.StageDispatch)
	sp.Mark(span.Stage(code)) // want "non-constant conversion to span.Stage"
	const fixed = 3
	sp.Mark(span.Stage(fixed))
	sp.Finish()
}

// newTraceSession is a constructor, but span identifiers are not
// identity labels: the op-name rule still applies inside it.
func newTraceSession(tr *span.Tracer, client string) {
	tr.Start(client) // want "unbounded span op client"
}
