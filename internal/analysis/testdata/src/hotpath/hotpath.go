// Package hotpath is the golden corpus for the hotpath-alloc analyzer.
package hotpath

import (
	"fmt"
	"time"
)

type client struct {
	scratch []int
	stage   map[int][]byte
}

// readMulti is annotated: the per-operation rules apply.
//
//gengar:hotpath
func (c *client) readMulti(n int, evs []int) string {
	now := time.Now() // want "time.Now in hotpath readMulti"
	_ = now
	tmp := make([]byte, n) // want "make with non-constant size in hotpath readMulti"
	_ = tmp
	fixed := make([]byte, 64) // constant size: amortizable, allowed
	_ = fixed
	var local []int
	local = append(local, evs...) // want "append to local slice local in hotpath readMulti"
	c.scratch = append(c.scratch, evs...)
	c.stage[0] = append(c.stage[0], 1)
	return fmt.Sprintf("%d", n) // want "fmt.Sprintf in hotpath readMulti"
}

// coldPath is not annotated: nothing is flagged.
func (c *client) coldPath(n int) string {
	_ = time.Now()
	buf := make([]byte, n)
	return fmt.Sprintf("%v", buf)
}

// pooledOK grows only pooled storage and is clean.
//
//gengar:hotpath
func (c *client) pooledOK(evs []int) {
	c.scratch = c.scratch[:0]
	c.scratch = append(c.scratch, evs...)
}

// closuresAreOffPath: a pool New func may allocate.
//
//gengar:hotpath
func (c *client) closuresAreOffPath(n int) {
	newBuf := func() []byte { return make([]byte, n) }
	_ = newBuf
}
