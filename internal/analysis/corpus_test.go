package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sync"
	"testing"
)

// moduleRoot walks up from the test's working directory to the
// directory containing go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}

var (
	loaderOnce sync.Once
	loaderVal  *Loader
	loaderErr  error
)

// sharedLoader builds one Loader (one `go list -deps -export` run) for
// all tests in the package.
func sharedLoader(t *testing.T) *Loader {
	t.Helper()
	root := moduleRoot(t)
	loaderOnce.Do(func() {
		loaderVal, loaderErr = NewLoader(root)
	})
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	return loaderVal
}

// wantRe matches the corpus expectation markers: `want "regex"` expects
// a finding on the marker's line, `want-below "regex"` on the next line
// (for lines that cannot carry a second comment, like a lint-ignore
// directive under test).
var wantRe = regexp.MustCompile(`want(-below)? "((?:[^"\\]|\\.)*)"`)

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

func collectExpectations(t *testing.T, pkg *Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					re, err := regexp.Compile(m[2])
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, m[2], err)
					}
					line := pos.Line
					if m[1] == "-below" {
						line++
					}
					out = append(out, &expectation{file: pos.Filename, line: line, re: re})
				}
			}
		}
	}
	return out
}

// TestGoldenCorpus runs each analyzer over its seeded-violation corpus
// under testdata/src and checks the findings against the want comments
// — both directions: every want must be hit, every finding must be
// wanted.
func TestGoldenCorpus(t *testing.T) {
	byName := make(map[string]*Analyzer)
	for _, a := range Analyzers() {
		byName[a.Name] = a
	}
	cases := []struct {
		dir       string
		analyzers []string // nil = full suite
	}{
		{"lockblock", []string{"lock-across-blocking"}},
		{"wqealias", []string{"wqe-aliasing"}},
		{"telemetryhygiene", []string{"telemetry-hygiene"}},
		{"hotpath", []string{"hotpath-alloc"}},
		{"errcheck", []string{"errcheck-core"}},
		{"atomicmixed", []string{"atomic-mixed-access"}},
		{"cowsnapshot", []string{"cow-snapshot"}},
		{"seqlock", []string{"seqlock-protocol"}},
		{"lockorder", []string{"lock-order"}},
		{"ignore", nil},
	}
	loader := sharedLoader(t)
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			dir := filepath.Join(moduleRoot(t), "internal", "analysis", "testdata", "src", tc.dir)
			pkg, err := loader.LoadDir(dir)
			if err != nil {
				t.Fatalf("LoadDir(%s): %v", dir, err)
			}
			suite := Analyzers()
			if tc.analyzers != nil {
				suite = nil
				for _, name := range tc.analyzers {
					a := byName[name]
					if a == nil {
						t.Fatalf("unknown analyzer %q", name)
					}
					suite = append(suite, a)
				}
			}
			findings := Run([]*Package{pkg}, suite)
			expects := collectExpectations(t, pkg)
			if len(expects) == 0 {
				t.Fatalf("corpus %s has no want comments", tc.dir)
			}
			for _, f := range findings {
				ok := false
				for _, e := range expects {
					if !e.matched && e.file == f.File && e.line == f.Line && e.re.MatchString(f.Message) {
						e.matched = true
						ok = true
						break
					}
				}
				if !ok {
					t.Errorf("unexpected finding: %s", f)
				}
			}
			for _, e := range expects {
				if !e.matched {
					t.Errorf("%s:%d: expected finding matching %q, got none", e.file, e.line, e.re)
				}
			}
		})
	}
}

// TestSeededCorpusFailsTheDriver asserts the driver contract the CI
// gate relies on: a package with violations yields a non-empty, sorted
// finding list.
func TestSeededCorpusFailsTheDriver(t *testing.T) {
	loader := sharedLoader(t)
	dir := filepath.Join(moduleRoot(t), "internal", "analysis", "testdata", "src", "errcheck")
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	findings := Run([]*Package{pkg}, Analyzers())
	if len(findings) == 0 {
		t.Fatal("seeded corpus produced no findings; the lint gate would pass vacuously")
	}
	for i := 1; i < len(findings); i++ {
		a, b := findings[i-1], findings[i]
		if a.File > b.File || (a.File == b.File && a.Line > b.Line) {
			t.Fatalf("findings not sorted: %s before %s", a, b)
		}
	}
	for _, f := range findings {
		if f.Analyzer == "" || f.Message == "" || f.File == "" || f.Line == 0 {
			t.Fatalf("incomplete finding: %+v", f)
		}
	}
}

// TestRepoRunsClean is the self-check: the suite must report nothing on
// the repository itself — the invariant `make lint` enforces in CI.
func TestRepoRunsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	loader := sharedLoader(t)
	pkgs, err := loader.Load([]string{"./..."})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; loader is missing the module", len(pkgs))
	}
	var msgs []string
	for _, f := range Run(pkgs, Analyzers()) {
		msgs = append(msgs, f.String())
	}
	if len(msgs) > 0 {
		t.Errorf("gengar-lint is not clean on the repo:\n%s", fmt.Sprint(msgs))
	}
}
