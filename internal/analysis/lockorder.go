package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// lockOrder builds the interprocedural mutex-acquisition graph across
// the module — which lock classes are acquired while which others are
// held, directly or through any chain of module-internal calls — and
// reports two hazards:
//
//   - a cycle: a set of lock classes that can each be waited on while
//     another member is held (the deadlock precondition), including the
//     one-class case of two instances of the same class held at once
//     with no defined instance order;
//   - an order inversion: an edge that contradicts the blessed
//     hierarchy, declared once in lockhierarchy.go (and extendable per
//     package with //gengar:lockorder directives — see the corpus).
//
// A lock class is a mutex field identified by its declaring struct
// ("engine.Engine.mu", "alloc.shard.mu"); package-level mutexes use
// "pkg.var". Hold tracking is a linear source-order scan per function:
// branch merges are not modeled, so a lock released on any path is
// treated as released — the approximation drops edges rather than
// fabricating them, and deferred unlocks correctly keep the lock held
// to the end of the body. Call edges resolve through static callees
// only; calls through interfaces or function values are not followed.
//
// Findings anchor at the inner acquisition (or at the call that leads
// to it); suppress with //gengar:lint-ignore lock-order <reason> when
// an observed edge is a false pairing (e.g. the callee only locks on a
// path the caller's lock provably prevents).
const lockOrderName = "lock-order"

var lockOrder = &Analyzer{
	Name: lockOrderName,
	Doc:  "mutex acquisition-order cycle or inversion of the blessed lock hierarchy",
	Run:  runLockOrder,
}

func runLockOrder(p *Pass) []Finding {
	facts := p.Facts
	if facts == nil {
		return nil
	}
	inPkg := pkgFileSet(p.Pkg)
	inversion, cyclic := classifyLockEdges(facts)
	var out []Finding
	for i, e := range facts.lockEdges {
		if !inPkg[e.pos.Filename] {
			continue
		}
		via := ""
		if e.via != "" {
			via = " (via call to " + e.via + ")"
		}
		if inversion[i] {
			out = append(out, findingAt(lockOrderName, e.pos,
				"lock %s acquired while %s is held%s inverts the declared lock order (%s before %s)",
				e.to, e.from, via, e.to, e.from))
			continue
		}
		if cyc := cyclic[i]; cyc != "" {
			out = append(out, findingAt(lockOrderName, e.pos,
				"lock %s acquired while %s is held%s closes an acquisition cycle [%s]",
				e.to, e.from, via, cyc))
		}
	}
	return out
}

// classifyLockEdges marks each edge index as an inversion of the
// declared hierarchy and/or a participant in an acquisition cycle.
// Inverted edges are excluded from the cycle graph: the inversion
// finding already names the exact contradiction, and the matching
// blessed edge would otherwise report the same pair twice.
func classifyLockEdges(f *Facts) (inversion map[int]bool, cyclic map[int]string) {
	inversion = make(map[int]bool)
	cyclic = make(map[int]string)
	adj := make(map[string]map[string]bool)
	for i, e := range f.lockEdges {
		if f.orderedBefore(e.to, e.from) {
			inversion[i] = true
			continue
		}
		if e.from == e.to {
			cyclic[i] = e.from + " -> " + e.to
			continue
		}
		if adj[e.from] == nil {
			adj[e.from] = make(map[string]bool)
		}
		adj[e.from][e.to] = true
	}
	scc := stronglyConnected(adj)
	for i, e := range f.lockEdges {
		if inversion[i] || e.from == e.to {
			continue
		}
		if comp, ok := scc[e.from]; ok && comp == scc[e.to] && len(membersOf(scc, comp)) > 1 {
			cyclic[i] = strings.Join(membersOf(scc, comp), " -> ")
		}
	}
	return inversion, cyclic
}

// stronglyConnected returns a node->component assignment (Tarjan) where
// only nodes in nontrivial components (or with self-edges, handled by
// the caller) matter.
func stronglyConnected(adj map[string]map[string]bool) map[string]int {
	nodes := make([]string, 0, len(adj))
	seen := make(map[string]bool)
	for a, tos := range adj {
		if !seen[a] {
			seen[a] = true
			nodes = append(nodes, a)
		}
		for b := range tos {
			if !seen[b] {
				seen[b] = true
				nodes = append(nodes, b)
			}
		}
	}
	sort.Strings(nodes)

	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	comp := make(map[string]int)
	var stack []string
	next, nComp := 0, 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		var succs []string
		for w := range adj[v] {
			succs = append(succs, w)
		}
		sort.Strings(succs)
		for _, w := range succs {
			if _, ok := index[w]; !ok {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp[w] = nComp
				if w == v {
					break
				}
			}
			nComp++
		}
	}
	for _, v := range nodes {
		if _, ok := index[v]; !ok {
			strongconnect(v)
		}
	}
	return comp
}

func membersOf(scc map[string]int, comp int) []string {
	var out []string
	for n, c := range scc {
		if c == comp {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// ---- per-function summarization (called from facts.go) ----

// summarizeFn scans one function declaration linearly and returns its
// summary plus independent summaries for every function literal inside
// it (literals run in their own goroutine/context: their acquisitions
// must not leak into the enclosing hold-set, but their own edges still
// count).
func summarizeFn(pkg *Package, fn *ast.FuncDecl) (*fnSummary, []*fnSummary) {
	s := &fnSummary{key: fnKeyOf(pkg, fn), acquires: make(map[string]bool)}
	var lits []*fnSummary
	scanLockBody(pkg, s, fn.Body, &lits)
	return s, lits
}

// fnKeyOf returns the summary key of a declared function:
// "pkgPath.Recv.Name" for methods, "pkgPath.Name" for functions.
func fnKeyOf(pkg *Package, fn *ast.FuncDecl) string {
	key := pkg.Path + "."
	if fn.Recv != nil && len(fn.Recv.List) > 0 {
		if named := namedOf(pkgTypeOf(pkg, fn.Recv.List[0].Type)); named != nil {
			key += named.Obj().Name() + "."
		}
	}
	return key + fn.Name.Name
}

// lockClassAndInstance resolves a mutex operand to its class key and an
// instance discriminator (the rendered expression, so a.mu and b.mu of
// the same struct are distinct instances while two branches locking
// x.mu are one).
func lockClassAndInstance(pkg *Package, operand ast.Expr) (class, instance string, ok bool) {
	key, keyed := exprKey(pkg.Info, operand)
	if !keyed {
		// Local mutex variables get a function-agnostic per-name class;
		// they rarely escape, and a stable name keeps output readable.
		switch x := ast.Unparen(operand).(type) {
		case *ast.Ident:
			key = pkg.Path + "." + x.Name
		default:
			key = pkg.Path + "." + exprText(operand)
		}
	}
	return displayKey(key), exprText(operand), true
}

// scanLockBody walks a body in source order maintaining the held-set.
// Function literals are collected into lits with fresh state.
func scanLockBody(pkg *Package, s *fnSummary, body *ast.BlockStmt, lits *[]*fnSummary) {
	type heldEnt struct {
		class string
	}
	held := make(map[string]heldEnt) // instance -> class
	heldClasses := func() []string {
		m := make(map[string]bool, len(held))
		for _, h := range held {
			m[h.class] = true
		}
		out := make([]string, 0, len(m))
		for c := range m {
			out = append(out, c)
		}
		sort.Strings(out)
		return out
	}

	deferred := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferred[d.Call] = true
		}
		return true
	})

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			lit := &fnSummary{
				key:      s.key + ".func@" + itoaPos(pkg, n.Pos()),
				acquires: make(map[string]bool),
			}
			scanLockBody(pkg, lit, n.Body, lits)
			*lits = append(*lits, lit)
			return false
		case *ast.CallExpr:
			c, ok := resolveCallee(pkg.Info, n)
			if !ok {
				return true
			}
			if c.pkgPath == "sync" && c.recvX != nil && isMutexType(pkgTypeOf(pkg, c.recvX)) {
				class, instance, _ := lockClassAndInstance(pkg, c.recvX)
				switch c.name {
				case "Lock", "RLock":
					s.acquires[class] = true
					if _, already := held[instance]; !already {
						for inst, h := range held {
							if inst == instance {
								continue
							}
							s.edges = append(s.edges, lockEdge{
								from: h.class, to: class,
								pos: pkg.Fset.Position(n.Pos()),
							})
						}
						held[instance] = heldEnt{class: class}
					}
				case "Unlock", "RUnlock":
					if !deferred[n] {
						delete(held, instance)
					}
				}
				return true
			}
			// Module-internal call: record with the held snapshot. The
			// callee key mirrors fnKeyOf; unknown keys are dropped when
			// the closure finds no summary.
			if c.obj != nil && c.obj.Pkg() != nil {
				key := c.obj.Pkg().Path() + "."
				if c.recv != "" {
					key += c.recv + "."
				}
				key += c.name
				s.calls = append(s.calls, fnCall{
					callee: key,
					pos:    pkg.Fset.Position(n.Pos()),
					held:   heldClasses(),
				})
			}
			return true
		}
		return true
	}
	ast.Inspect(body, walk)
}

func itoaPos(pkg *Package, pos token.Pos) string {
	p := pkg.Fset.Position(pos)
	return p.Filename + ":" + itoa(p.Line)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

// pkgFileSet returns the set of file names belonging to the package.
func pkgFileSet(pkg *Package) map[string]bool {
	out := make(map[string]bool, len(pkg.Files))
	for _, f := range pkg.Files {
		out[pkg.Fset.Position(f.Pos()).Filename] = true
	}
	return out
}

// findingAt builds a Finding from an already-resolved position (facts
// carry Positions, not Pos).
func findingAt(analyzer string, pos token.Position, format string, args ...any) Finding {
	return Finding{
		Analyzer: analyzer,
		Pos:      pos,
		File:     pos.Filename,
		Line:     pos.Line,
		Col:      pos.Column,
		Message:  fmt.Sprintf(format, args...),
	}
}
