package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// cowSnapshot enforces the copy-on-write discipline on fields annotated
//
//	//gengar:guardedby <mu>
//
// whose type is atomic.Pointer[...] (cache.RemapTable.p,
// engine.objIndex.p, alloc.ShardedPool.slabIndex). The contract has two
// sides:
//
//   - Publication: Store/Swap on the field is legal only while the
//     declared sibling writer mutex of the SAME receiver is held (or on
//     a receiver the function just allocated and has not yet published
//     — the constructor pattern). Writers serialize on the mutex;
//     readers never take it.
//
//   - Immutability: a pointer obtained via Load is a shared snapshot
//     that lock-free readers are walking concurrently. Any write
//     through it — a field store, a map/slice element write, a delete —
//     is a finding, even under the writer mutex: mutation must go
//     through a fresh clone that is then Store'd.
//
// Annotations naming a mutex that is not a sibling field are themselves
// reported here, in the declaring package. Mutex-held tracking is the
// same linear source-order approximation as lock-order (see
// lockorder.go); only Lock (not RLock) authorizes publication.
const cowSnapshotName = "cow-snapshot"

var cowSnapshot = &Analyzer{
	Name: cowSnapshotName,
	Doc:  "COW atomic.Pointer stored without its writer lock, or snapshot mutated after Load",
	Run:  runCowSnapshot,
}

func runCowSnapshot(p *Pass) []Finding {
	if p.Facts == nil {
		return nil
	}
	var out []Finding
	for _, bg := range p.Facts.badGuards {
		if bg.fileDir == p.Pkg.Dir {
			out = append(out, findingAt(cowSnapshotName, bg.pos, "%s", bg.msg))
		}
	}
	for _, fn := range funcDecls(p.Pkg) {
		w := &cowWalker{
			p:       p,
			fresh:   freshLocals(p, fn),
			held:    make(map[string]bool),
			tainted: make(map[types.Object]bool),
		}
		w.markDeferred(fn.Body)
		w.walkBody(fn.Body)
		out = append(out, w.findings...)
	}
	return out
}

// cowWalker scans one function body in source order, tracking which
// mutex instances are held and which locals alias a Load'd snapshot.
type cowWalker struct {
	p        *Pass
	fresh    map[any]bool // locals allocated by this function
	held     map[string]bool
	tainted  map[types.Object]bool
	deferred map[*ast.CallExpr]bool
	findings []Finding
}

func (w *cowWalker) markDeferred(body *ast.BlockStmt) {
	w.deferred = make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			w.deferred[d.Call] = true
		}
		return true
	})
}

func (w *cowWalker) walkBody(body *ast.BlockStmt) {
	ast.Inspect(body, w.visit)
}

func (w *cowWalker) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.FuncLit:
		// A literal may run on another goroutine: fresh lock state, but
		// captured snapshots stay tainted.
		inner := &cowWalker{
			p:        w.p,
			fresh:    w.fresh,
			held:     make(map[string]bool),
			tainted:  copyTaint(w.tainted),
			deferred: w.deferred,
		}
		inner.markDeferred(n.Body)
		inner.walkBody(n.Body)
		w.findings = append(w.findings, inner.findings...)
		return false
	case *ast.AssignStmt:
		w.assign(n)
		return true
	case *ast.RangeStmt:
		// Ranging over a snapshot chain hands out its elements: writes
		// through the value variable mutate shared state.
		if w.chainTainted(n.X) || w.loadChainOf(n.X) != nil {
			if id, ok := n.Value.(*ast.Ident); ok && id.Name != "_" {
				if obj := w.p.Pkg.Info.Defs[id]; obj != nil {
					w.tainted[obj] = true
				}
			}
		}
		return true
	case *ast.IncDecStmt:
		w.checkWrite(n.X, n.Pos())
		return true
	case *ast.CallExpr:
		w.call(n)
		return true
	}
	return true
}

func (w *cowWalker) call(call *ast.CallExpr) {
	info := w.p.Pkg.Info

	// delete(snapshotMap, k) mutates the shared map.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "delete" && len(call.Args) == 2 {
		if _, builtin := info.Uses[id].(*types.Builtin); builtin {
			w.checkWrite(call.Args[0], call.Pos())
			return
		}
	}

	c, ok := resolveCallee(info, call)
	if !ok {
		return
	}

	// Mutex bookkeeping.
	if c.pkgPath == "sync" && c.recvX != nil && isMutexType(typeOf(w.p, c.recvX)) {
		inst := exprText(c.recvX)
		switch c.name {
		case "Lock":
			w.held[inst] = true
		case "RLock":
			// Read locks never authorize publication; not tracked.
		case "Unlock", "RUnlock":
			if !w.deferred[call] {
				delete(w.held, inst)
			}
		}
		return
	}

	// Store/Swap on a guarded COW field.
	if c.name != "Store" && c.name != "Swap" {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	g := w.guardOf(sel.X)
	if g == nil {
		return
	}
	fieldSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return
	}
	if root := rootObj(info, fieldSel.X); root != nil && w.fresh[root] {
		return // pre-publication constructor fill
	}
	needed := exprText(fieldSel.X) + "." + g.muName
	if !w.held[needed] {
		w.findings = append(w.findings, w.p.finding(cowSnapshotName, call.Pos(),
			"%s on COW field %s without holding its declared writer lock %s (gengar:guardedby at %s:%d)",
			c.name, g.fieldName, needed, g.declPos.Filename, g.declPos.Line))
	}
}

// assign records snapshot taint flowing through := / = and checks every
// left-hand side for writes through a snapshot.
func (w *cowWalker) assign(as *ast.AssignStmt) {
	info := w.p.Pkg.Info
	for _, lhs := range as.Lhs {
		if _, plain := ast.Unparen(lhs).(*ast.Ident); !plain {
			w.checkWrite(lhs, lhs.Pos())
		}
	}
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, rhs := range as.Rhs {
		id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			continue
		}
		if w.loadChainOf(rhs) != nil || w.chainTainted(rhs) {
			w.tainted[obj] = true
		} else if as.Tok == token.ASSIGN || as.Tok == token.DEFINE {
			delete(w.tainted, obj) // rebound to something clean
		}
	}
}

// checkWrite reports a mutation whose target chains down to a snapshot:
// a tainted local, or a direct x.p.Load().field chain.
func (w *cowWalker) checkWrite(target ast.Expr, pos token.Pos) {
	if g := w.loadChainOf(target); g != nil {
		w.findings = append(w.findings, w.p.finding(cowSnapshotName, pos,
			"write through Load() of COW field %s: snapshots are immutable, mutate a clone and Store it",
			g.fieldName))
		return
	}
	if w.chainTainted(target) {
		g := ""
		if root := rootObj(w.p.Pkg.Info, target); root != nil {
			g = " (" + root.Name() + " aliases a Load'd snapshot)"
		}
		w.findings = append(w.findings, w.p.finding(cowSnapshotName, pos,
			"write through a COW snapshot%s: snapshots are immutable, mutate a clone and Store it", g))
	}
}

// chainTainted reports whether the expression is a selector/index/star
// chain rooted at a tainted local.
func (w *cowWalker) chainTainted(e ast.Expr) bool {
	root := rootObj(w.p.Pkg.Info, e)
	return root != nil && w.tainted[root]
}

// loadChainOf returns the guard contract when the expression contains a
// Load() call on a guarded COW field anywhere down its access chain
// (t.p.Load().m, (*t.p.Load()).m[k], ...).
func (w *cowWalker) loadChainOf(e ast.Expr) *guardFact {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.CallExpr:
			c, ok := resolveCallee(w.p.Pkg.Info, x)
			if ok && c.name == "Load" {
				if sel, isSel := ast.Unparen(x.Fun).(*ast.SelectorExpr); isSel {
					if g := w.guardOf(sel.X); g != nil {
						return g
					}
				}
			}
			return nil
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// guardOf resolves an expression to its guarded-COW-field contract, or
// nil when the expression is not an annotated atomic.Pointer field.
func (w *cowWalker) guardOf(fieldExpr ast.Expr) *guardFact {
	key, ok := exprKey(w.p.Pkg.Info, fieldExpr)
	if !ok {
		return nil
	}
	g := w.p.Facts.guarded[key]
	if g == nil || !g.isCOWPtr {
		return nil
	}
	return g
}

func copyTaint(m map[types.Object]bool) map[types.Object]bool {
	out := make(map[types.Object]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
