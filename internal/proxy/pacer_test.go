package proxy

import (
	"testing"
	"time"

	"gengar/internal/simnet"
)

const usec = simnet.Duration(time.Microsecond)

// calmReads feeds n unloaded reads ending at successive instants,
// returning the last instant.
func calmReads(p *pacer, from simnet.Time, n int) simnet.Time {
	at := from
	for i := 0; i < n; i++ {
		at = at.Add(10 * usec)
		p.observeRead(at, time.Microsecond, time.Microsecond)
	}
	return at
}

// pressedReads feeds n reads inflated by the given factor.
func pressedReads(p *pacer, from simnet.Time, n, factor int) simnet.Time {
	at := from
	for i := 0; i < n; i++ {
		at = at.Add(10 * usec)
		p.observeRead(at, time.Microsecond, time.Duration(factor)*time.Microsecond)
	}
	return at
}

func TestPacerPressureReducesFlushRate(t *testing.T) {
	p := newPacer(true, 10*time.Millisecond, nil)
	if got := p.batchLimit(); got != maxFlushBatch {
		t.Fatalf("unpressed batch limit %d, want %d", got, maxFlushBatch)
	}
	at := pressedReads(p, 0, 64, 8)
	if p.level.Load() == 0 {
		t.Fatal("8x read inflation did not raise the backoff level")
	}
	pressed := p.batchLimit()
	if pressed >= maxFlushBatch {
		t.Fatalf("pressed batch limit %d did not drop below %d", pressed, maxFlushBatch)
	}
	// Recovery: pressure subsides, the level decays back to zero and the
	// batch limit recovers.
	calmReads(p, at, 200)
	if p.level.Load() != 0 {
		t.Fatalf("level %d after pressure subsided, want 0", p.level.Load())
	}
	if got := p.batchLimit(); got != maxFlushBatch {
		t.Fatalf("recovered batch limit %d, want %d", got, maxFlushBatch)
	}
}

func TestPacerDisabledNeverBacksOff(t *testing.T) {
	p := newPacer(false, 0, nil)
	pressedReads(p, 0, 64, 100)
	if p.level.Load() != 0 || p.batchLimit() != maxFlushBatch {
		t.Fatal("greedy pacer reacted to pressure")
	}
	if waited := p.gate(0); waited != 0 {
		t.Fatal("greedy pacer gated a flush")
	}
}

func TestPacerGateYieldsWhileControllerLeads(t *testing.T) {
	// Virtual clock: wait() advances the foreground frontier, modeling
	// readers making progress while the flusher yields. The gate must
	// wait while the NVM controller watermark leads the frontier beyond
	// the level's budget, and release once the frontier catches up.
	lead := simnet.Time(0)
	p := newPacer(true, time.Second, func() simnet.Time { return lead })
	var waits int
	p.wait = func(d time.Duration) {
		waits++
		p.advanceFrontier(simnet.Time(p.frontier.Load()).Add(simnet.Duration(d) * 10))
	}
	at := pressedReads(p, 0, 64, 8)
	lead = at.Add(5 * simnet.Duration(time.Millisecond)) // controller far ahead
	waited := p.gate(at)
	if waits == 0 || waited == 0 {
		t.Fatal("gate did not yield while the controller led the frontier")
	}
	if waits >= pacerGateMaxWaits {
		t.Fatalf("gate never released: %d waits", waits)
	}
	budget := simnet.Duration(pacerLeadBudget) >> p.level.Load()
	if gap := lead.Sub(simnet.Time(p.frontier.Load())); gap > budget {
		t.Fatalf("gate released with lead %v over budget %v", gap, budget)
	}
	// With the controller already close, the gate is free.
	waits = 0
	if waited := p.gate(simnet.Time(p.frontier.Load())); waited != 0 || waits != 0 {
		t.Fatal("gate yielded with the controller within budget")
	}
}

func TestPacerGateBoundedWhenFrontierStalls(t *testing.T) {
	// If the foreground goes idle (frontier frozen) the gate must give
	// up after pacerGateMaxWaits quanta rather than wedge the flusher.
	lead := simnet.Time(simnet.Duration(time.Second))
	p := newPacer(true, time.Minute, func() simnet.Time { return lead })
	var waits int
	p.wait = func(time.Duration) { waits++ } // frontier never moves
	pressedReads(p, 0, 64, 8)
	p.gate(simnet.Time(p.frontier.Load()))
	if waits != pacerGateMaxWaits {
		t.Fatalf("stalled gate spun %d quanta, want exactly %d", waits, pacerGateMaxWaits)
	}
}

func TestPacerAntiStarvationBoundsFlushLag(t *testing.T) {
	const maxLag = 2 * time.Millisecond
	lead := simnet.Time(simnet.Duration(10 * time.Second))
	p := newPacer(true, maxLag, func() simnet.Time { return lead })
	p.wait = func(time.Duration) {}
	at := pressedReads(p, 0, 64, 64)
	if p.level.Load() == 0 {
		t.Fatal("no backoff to override")
	}

	// Oldest staged record lags the frontier past the bound: the gate
	// must wave the batch through at full throttle, never waiting.
	oldest := at.Add(-simnet.Duration(maxLag) - usec)
	if waited := p.gate(oldest); waited != 0 {
		t.Fatal("gated a starving batch")
	}
	if !p.starving.Load() {
		t.Fatal("starvation override did not engage")
	}
	if got := p.batchLimit(); got != maxFlushBatch {
		t.Fatalf("starving batch limit %d, want full %d", got, maxFlushBatch)
	}

	// Still behind half the bound: the override holds.
	if waited := p.gate(at.Add(-simnet.Duration(maxLag))); waited != 0 {
		t.Fatal("gated while still starving")
	}
	if !p.starving.Load() {
		t.Fatal("override released before the backlog halved the bound")
	}

	// Backlog recovered to half the bound: the override releases and —
	// with pressure still high — the gate engages again.
	var waits int
	p.wait = func(time.Duration) { waits++ }
	p.gate(at.Add(-simnet.Duration(maxLag) / 2))
	if p.starving.Load() {
		t.Fatal("override held after the backlog recovered")
	}
	p.gate(at)
	if waits == 0 {
		t.Fatal("gate idle after recovery despite sustained pressure")
	}
}

func TestPacerFlushLagNeverExceedsBoundInLoop(t *testing.T) {
	// Closed-loop virtual-time run under sustained heavy pressure: a
	// producer stages continuously, the flusher gates before each batch.
	// At every gate entry whose lag exceeds the bound, the pacer must
	// not add a single quantum of delay (full throttle), so flush lag is
	// bounded by maxLag plus at most one fully-gated batch.
	const maxLag = 2 * time.Millisecond
	lead := simnet.Time(0)
	p := newPacer(true, maxLag, func() simnet.Time { return lead })
	vnow := simnet.Time(0)
	p.wait = func(d time.Duration) { vnow = vnow.Add(simnet.Duration(d)) }

	worst := simnet.Duration(0)
	oldest := simnet.Time(0)
	for step := 0; step < 3000; step++ {
		vnow = vnow.Add(5 * usec)
		p.observeRead(vnow, time.Microsecond, 64*time.Microsecond)
		lead = vnow.Add(simnet.Duration(10 * time.Millisecond))
		lag := simnet.Time(p.frontier.Load()).Sub(oldest)
		if lag > worst {
			worst = lag
		}
		if waited := p.gate(oldest); waited > 0 && lag > simnet.Duration(maxLag) {
			t.Fatalf("step %d: gated %v with lag %v past the %v bound", step, waited, lag, maxLag)
		}
		oldest = vnow // batch flushed; the next batch starts fresh
	}
	bound := simnet.Duration(maxLag) + pacerGateMaxWaits*simnet.Duration(pacerGateQuantum) + 10*usec
	if worst > bound {
		t.Fatalf("flush lag reached %v, bound is %v", worst, bound)
	}
	if p.gateWaits.Load() == 0 {
		t.Fatal("pressure never gated a batch; the loop tested nothing")
	}
}

func TestPacerBandwidthMeter(t *testing.T) {
	p := newPacer(true, 0, nil)
	// 4 KiB per 2 µs of occupancy = 2 GB/s.
	for i := 0; i < 16; i++ {
		p.recordPersist(4096, 2*usec)
	}
	bw := p.ewmaBW.Load()
	if bw < 1_900_000_000 || bw > 2_100_000_000 {
		t.Fatalf("EWMA bandwidth %d, want ~2 GB/s", bw)
	}
	p.recordPersist(0, usec) // ignored
	p.recordPersist(4096, 0) // ignored
	if p.ewmaBW.Load() != bw {
		t.Fatal("degenerate persists perturbed the meter")
	}
}
