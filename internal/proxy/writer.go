package proxy

import (
	"encoding/binary"
	"fmt"
	"sync"

	"gengar/internal/metrics"
	"gengar/internal/rdma"
	"gengar/internal/region"
	"gengar/internal/simnet"
)

// Ring describes one client's staging ring inside a server's DRAM: an
// RDMA-writable window divided into fixed-size slots used round-robin.
// The server allocates it and hands the descriptor to the client at
// connection time.
type Ring struct {
	ID       int
	Handle   rdma.RegionHandle // MR covering the ring
	Base     int64             // ring start, relative to the MR
	DevBase  int64             // ring start, absolute in the server DRAM device
	Slots    int
	SlotSize int // per-slot bytes, including the record header
}

// MaxPayload returns the largest write the ring can stage in one slot.
func (r Ring) MaxPayload() int { return r.SlotSize - slotHeaderBytes }

// Validate reports whether the descriptor is usable.
func (r Ring) Validate() error {
	if r.Slots <= 0 || r.SlotSize <= slotHeaderBytes {
		return fmt.Errorf("proxy: bad ring geometry %d x %d", r.Slots, r.SlotSize)
	}
	return nil
}

type pendingWrite struct {
	seq  uint64
	addr region.GAddr
	data []byte
}

// Writer is the client side of the proxy write path for one
// (client, server) pair. Stage RDMA-WRITEs a record into the next ring
// slot — completing at DRAM speed — and hands it to the server's flusher.
// The writer holds one credit per ring slot; when the ring is full, Stage
// blocks until the flusher copies records out (the backpressure that
// surfaces as the write-throughput knee in the evaluation).
//
// Writer also keeps the staged-but-unflushed payloads so the owning
// client reads its own writes: ApplyPending overlays them onto data read
// from the server.
//
// Locking: stageMu serializes staging (sequence/slot assignment, the
// ring write and the enqueue — FIFO order into the flusher is what makes
// slot reuse safe); pendMu guards the pending set and applied state. The
// ack path takes only pendMu, so it always makes progress while a stager
// waits on a briefly-full flusher queue under stageMu.
type Writer struct {
	engine *Engine
	qp     *rdma.QP
	ring   Ring

	credits chan struct{}
	ackCh   chan Ack
	quit    chan struct{}
	wg      sync.WaitGroup

	stageMu sync.Mutex
	nextSeq uint64

	// occHW tracks the staging ring's occupancy high-water mark (slots
	// taken and not yet copied out by the flusher) — where write
	// backpressure builds before Stage starts blocking.
	occHW metrics.Gauge

	pendMu      sync.Mutex
	cond        *sync.Cond
	pending     []pendingWrite
	lastApplied simnet.Time
	closed      bool
}

// NewWriter builds the client side of a staging ring. qp must be
// connected to the server hosting the ring; engine is the server's
// flusher (the in-process stand-in for its polling threads discovering
// ring tail updates).
func NewWriter(engine *Engine, qp *rdma.QP, ring Ring) (*Writer, error) {
	if err := ring.Validate(); err != nil {
		return nil, err
	}
	w := &Writer{
		engine:  engine,
		qp:      qp,
		ring:    ring,
		credits: make(chan struct{}, ring.Slots),
		// The flusher must never block sending an ack (deadlock freedom
		// of the whole pipeline rests on it), so the channel holds a
		// full ring plus everything that can sit inside the flush
		// pipeline.
		ackCh: make(chan Ack, ring.Slots+2*flushWorkers+4),
		quit:  make(chan struct{}),
	}
	w.cond = sync.NewCond(&w.pendMu)
	for i := 0; i < ring.Slots; i++ {
		w.credits <- struct{}{}
	}
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		w.ackLoop()
	}()
	return w, nil
}

func (w *Writer) ackLoop() {
	for {
		select {
		case ack := <-w.ackCh:
			w.pendMu.Lock()
			if ack.AppliedAt > w.lastApplied {
				w.lastApplied = ack.AppliedAt
			}
			// Flushing is FIFO per ring, so completed records form a
			// prefix.
			for len(w.pending) > 0 && w.pending[0].seq <= ack.Seq {
				w.pending = w.pending[1:]
			}
			w.cond.Broadcast()
			w.pendMu.Unlock()
		case <-w.quit:
			return
		}
	}
}

// Stage submits a proxied write of data to the global address addr,
// whose NVM backing lives at nvmOff in the server's pool device. It
// returns the simulated instant the client's write is staged (DRAM-speed
// acknowledgment) — the client-visible write latency under Gengar.
func (w *Writer) Stage(at simnet.Time, addr region.GAddr, nvmOff int64, data []byte) (simnet.Time, error) {
	if len(data) > w.ring.MaxPayload() {
		return at, fmt.Errorf("%w: %d > %d", ErrPayloadTooLarge, len(data), w.ring.MaxPayload())
	}
	w.pendMu.Lock()
	closed := w.closed
	w.pendMu.Unlock()
	if closed {
		return at, ErrEngineClosed
	}

	// Take a ring slot; blocks when the flusher is behind.
	<-w.credits
	w.occHW.SetMax(int64(w.ring.Slots - len(w.credits)))

	w.stageMu.Lock()
	seq := w.nextSeq
	w.nextSeq++
	slot := int(seq % uint64(w.ring.Slots))

	// One RDMA WRITE carries header + payload into the slot.
	buf := make([]byte, slotHeaderBytes+len(data))
	binary.BigEndian.PutUint64(buf, uint64(addr))
	binary.BigEndian.PutUint32(buf[8:], uint32(len(data)))
	copy(buf[slotHeaderBytes:], data)
	slotOff := w.ring.Base + int64(slot)*int64(w.ring.SlotSize)
	stagedAt, err := w.qp.Write(at, buf, rdma.RemoteAddr{Region: w.ring.Handle, Offset: slotOff})
	if err != nil {
		w.stageMu.Unlock()
		w.credits <- struct{}{}
		return at, fmt.Errorf("proxy: stage: %w", err)
	}

	w.pendMu.Lock()
	w.pending = append(w.pending, pendingWrite{
		seq:  seq,
		addr: addr,
		data: append([]byte(nil), data...),
	})
	w.pendMu.Unlock()

	rec := record{
		ringID:   w.ring.ID,
		seq:      seq,
		addr:     addr,
		nvmOff:   nvmOff,
		ringOff:  w.ring.DevBase + int64(slot)*int64(w.ring.SlotSize) + slotHeaderBytes,
		size:     len(data),
		stagedAt: stagedAt,
		acks:     w.ackCh,
		slotFree: w.credits,
	}
	// Enqueue before releasing stageMu: the flusher must see this ring's
	// records in sequence order, because slot-reuse safety rests on
	// credits returning in FIFO order.
	err = w.engine.enqueue(rec)
	w.stageMu.Unlock()
	if err != nil {
		// The record will never flush; undo the pending entry and credit.
		w.pendMu.Lock()
		for i := range w.pending {
			if w.pending[i].seq == seq {
				w.pending = append(w.pending[:i], w.pending[i+1:]...)
				break
			}
		}
		w.pendMu.Unlock()
		w.credits <- struct{}{}
		return at, err
	}
	return stagedAt, nil
}

// ApplyPending overlays any staged-but-unflushed writes onto buf, which
// holds the bytes [addr, addr+len(buf)) as read from the server. It
// returns whether anything was overlaid. Pending records are applied in
// staging order, so the newest write to a byte wins.
func (w *Writer) ApplyPending(addr region.GAddr, buf []byte) bool {
	w.pendMu.Lock()
	defer w.pendMu.Unlock()
	applied := false
	for _, p := range w.pending {
		if p.addr.Server() != addr.Server() {
			continue
		}
		pOff, rOff := p.addr.Offset(), addr.Offset()
		lo := max64(pOff, rOff)
		hi := min64(pOff+int64(len(p.data)), rOff+int64(len(buf)))
		if lo >= hi {
			continue
		}
		copy(buf[lo-rOff:hi-rOff], p.data[lo-pOff:hi-pOff])
		applied = true
	}
	return applied
}

// PendingCount returns the number of staged-but-unflushed records.
func (w *Writer) PendingCount() int {
	w.pendMu.Lock()
	defer w.pendMu.Unlock()
	return len(w.pending)
}

// OccupancyHighWater returns the most ring slots ever simultaneously in
// use by this writer.
func (w *Writer) OccupancyHighWater() int64 { return w.occHW.Load() }

// RingSlots returns the staging ring's slot count.
func (w *Writer) RingSlots() int { return w.ring.Slots }

// Drain blocks until every write staged so far has been applied to NVM
// and returns the simulated instant the last one completed. It is the
// synchronization point lock release uses to publish a writer's updates.
func (w *Writer) Drain() simnet.Time {
	w.pendMu.Lock()
	defer w.pendMu.Unlock()
	for len(w.pending) > 0 {
		w.cond.Wait()
	}
	return w.lastApplied
}

// Close drains outstanding writes and stops the writer. Further Stage
// calls fail with ErrEngineClosed.
func (w *Writer) Close() {
	w.pendMu.Lock()
	if w.closed {
		w.pendMu.Unlock()
		return
	}
	w.closed = true
	for len(w.pending) > 0 {
		w.cond.Wait()
	}
	w.pendMu.Unlock()
	close(w.quit)
	w.wg.Wait()
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
