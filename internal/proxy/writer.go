package proxy

import (
	"encoding/binary"
	"fmt"
	"sync"

	"gengar/internal/hmem"
	"gengar/internal/metrics"
	"gengar/internal/rdma"
	"gengar/internal/region"
	"gengar/internal/simnet"
)

// Ring describes one client's staging ring inside a server's DRAM: an
// RDMA-writable window divided into fixed-size slots used round-robin.
// The server allocates it and hands the descriptor to the client at
// connection time.
type Ring struct {
	ID       int
	Handle   rdma.RegionHandle // MR covering the ring
	Base     int64             // ring start, relative to the MR
	DevBase  int64             // ring start, absolute in the server DRAM device
	Slots    int
	SlotSize int // per-slot bytes, including the record header
}

// MaxPayload returns the largest write the ring can stage in one slot.
func (r Ring) MaxPayload() int { return r.SlotSize - slotHeaderBytes }

// Validate reports whether the descriptor is usable.
func (r Ring) Validate() error {
	if r.Slots <= 0 || r.SlotSize <= slotHeaderBytes {
		return fmt.Errorf("proxy: bad ring geometry %d x %d", r.Slots, r.SlotSize)
	}
	return nil
}

type pendingWrite struct {
	seq  uint64
	addr region.GAddr
	data []byte
	buf  *[]byte // pooled backing of data, recycled when the ack pops it
}

// bufPool recycles the per-record byte buffers of the staging hot path:
// slot images (header + payload) and the pending read-your-writes
// copies. Both are short-lived and sized by the ring slot, so pooling
// them removes the two per-record allocations Stage/StageMulti would
// otherwise pay.
var bufPool = sync.Pool{New: func() any { return new([]byte) }}

// getBuf returns a pooled buffer of length n.
func getBuf(n int) *[]byte {
	bp := bufPool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	*bp = (*bp)[:n]
	return bp
}

func putBuf(bp *[]byte) { bufPool.Put(bp) }

// Writer is the client side of the proxy write path for one
// (client, server) pair. Stage RDMA-WRITEs a record into the next ring
// slot — completing at DRAM speed — and hands it to the server's flusher.
// The writer holds one credit per ring slot; when the ring is full, Stage
// blocks until the flusher copies records out (the backpressure that
// surfaces as the write-throughput knee in the evaluation).
//
// Writer also keeps the staged-but-unflushed payloads so the owning
// client reads its own writes: ApplyPending overlays them onto data read
// from the server.
//
// Locking: stageMu serializes staging (sequence/slot assignment, the
// ring write and the enqueue — FIFO order into the flusher is what makes
// slot reuse safe); pendMu guards the pending set and applied state. The
// ack path takes only pendMu, so it always makes progress while a stager
// waits on a briefly-full flusher queue under stageMu.
type Writer struct {
	engine *Engine
	qp     *rdma.QP // nil for a server-local writer
	// localDev is the ring device for server-local staging (NewLocalWriter):
	// slot images are posted by direct device writes instead of RDMA WRITEs.
	localDev *hmem.Device
	ring     Ring

	credits chan struct{}
	ackCh   chan Ack
	quit    chan struct{}
	wg      sync.WaitGroup

	//gengar:lint-ignore lock-across-blocking staging holds stageMu across the ring post and enqueue by design: FIFO order into the flusher is what makes slot reuse safe (see Locking above)
	stageMu sync.Mutex
	nextSeq uint64
	// Chain-staging scratch, reused across stageChain calls (guarded by
	// stageMu): one WQE and one pooled slot image per record, capped at
	// ring.Slots entries by the StageMulti chain split.
	wqeScratch     []rdma.WriteReq
	slotBufScratch []*[]byte

	// occHW tracks the staging ring's occupancy high-water mark (slots
	// taken and not yet copied out by the flusher) — where write
	// backpressure builds before Stage starts blocking.
	occHW metrics.Gauge

	pendMu      sync.Mutex
	cond        *sync.Cond
	pending     []pendingWrite
	lastApplied simnet.Time
	closed      bool
}

// NewWriter builds the client side of a staging ring. qp must be
// connected to the server hosting the ring; engine is the server's
// flusher (the in-process stand-in for its polling threads discovering
// ring tail updates).
func NewWriter(engine *Engine, qp *rdma.QP, ring Ring) (*Writer, error) {
	if qp == nil {
		return nil, fmt.Errorf("proxy: NewWriter without a QP (use NewLocalWriter)")
	}
	return newWriter(engine, qp, nil, ring)
}

// NewLocalWriter builds a server-local writer over the flusher's own
// ring device: slot images are posted by direct device writes instead of
// one-sided RDMA WRITEs. This is the staging path of server-mediated
// transports (the TCP mount), where the daemon stages on the client's
// behalf — same slots, credits, FIFO flush order, read-your-writes and
// backpressure as the RDMA path. Ring.DevBase addresses the ring within
// the flusher's ring device; Handle may be zero.
func NewLocalWriter(engine *Engine, ring Ring) (*Writer, error) {
	if engine == nil {
		return nil, fmt.Errorf("proxy: NewLocalWriter without an engine")
	}
	return newWriter(engine, nil, engine.ringDev, ring)
}

func newWriter(engine *Engine, qp *rdma.QP, localDev *hmem.Device, ring Ring) (*Writer, error) {
	if err := ring.Validate(); err != nil {
		return nil, err
	}
	w := &Writer{
		engine:   engine,
		qp:       qp,
		localDev: localDev,
		ring:     ring,
		credits:  make(chan struct{}, ring.Slots),
		// The flusher must never block sending an ack (deadlock freedom
		// of the whole pipeline rests on it), so the channel holds a
		// full ring plus everything that can sit inside the flush
		// pipeline: with batched flushing, a worker can hold one whole
		// copied-out-but-unacked batch on top of the staged records.
		ackCh: make(chan Ack, ring.Slots+maxFlushBatch+2*flushWorkers+4),
		quit:  make(chan struct{}),
	}
	w.cond = sync.NewCond(&w.pendMu)
	for i := 0; i < ring.Slots; i++ {
		w.credits <- struct{}{}
	}
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		w.ackLoop()
	}()
	return w, nil
}

func (w *Writer) ackLoop() {
	for {
		select {
		case ack := <-w.ackCh:
			w.pendMu.Lock()
			if ack.AppliedAt > w.lastApplied {
				w.lastApplied = ack.AppliedAt
			}
			// Flushing is FIFO per ring, so completed records form a
			// prefix.
			for len(w.pending) > 0 && w.pending[0].seq <= ack.Seq {
				if bp := w.pending[0].buf; bp != nil {
					putBuf(bp)
				}
				w.pending[0] = pendingWrite{}
				w.pending = w.pending[1:]
			}
			w.cond.Broadcast()
			w.pendMu.Unlock()
		case <-w.quit:
			return
		}
	}
}

// Stage submits a proxied write of data to the global address addr,
// whose NVM backing lives at nvmOff in the server's pool device. It
// returns the simulated instant the client's write is staged (DRAM-speed
// acknowledgment) — the client-visible write latency under Gengar.
//
//gengar:hotpath
func (w *Writer) Stage(at simnet.Time, addr region.GAddr, nvmOff int64, data []byte) (simnet.Time, error) {
	if len(data) > w.ring.MaxPayload() {
		return at, fmt.Errorf("%w: %d > %d", ErrPayloadTooLarge, len(data), w.ring.MaxPayload())
	}
	w.pendMu.Lock()
	closed := w.closed
	w.pendMu.Unlock()
	if closed {
		return at, ErrEngineClosed
	}

	// Take a ring slot; blocks when the flusher is behind.
	<-w.credits
	w.occHW.SetMax(int64(w.ring.Slots - len(w.credits)))

	w.stageMu.Lock()
	seq := w.nextSeq
	w.nextSeq++
	slot := int(seq % uint64(w.ring.Slots))

	// One RDMA WRITE carries header + payload into the slot. The slot
	// image is pooled: the device copies it during the WRITE, so it is
	// reusable the moment the verb returns.
	slotBuf := getBuf(slotHeaderBytes + len(data))
	buf := *slotBuf
	binary.BigEndian.PutUint64(buf, uint64(addr))
	binary.BigEndian.PutUint32(buf[8:], uint32(len(data)))
	copy(buf[slotHeaderBytes:], data)
	var stagedAt simnet.Time
	var err error
	if w.qp != nil {
		slotOff := w.ring.Base + int64(slot)*int64(w.ring.SlotSize)
		stagedAt, err = w.qp.Write(at, buf, rdma.RemoteAddr{Region: w.ring.Handle, Offset: slotOff})
	} else {
		stagedAt, err = w.localDev.Write(at, w.ring.DevBase+int64(slot)*int64(w.ring.SlotSize), buf)
	}
	putBuf(slotBuf)
	if err != nil {
		w.stageMu.Unlock()
		w.credits <- struct{}{}
		return at, fmt.Errorf("proxy: stage: %w", err)
	}

	pb := getBuf(len(data))
	copy(*pb, data)
	w.pendMu.Lock()
	w.pending = append(w.pending, pendingWrite{
		seq:  seq,
		addr: addr,
		data: *pb,
		buf:  pb,
	})
	w.pendMu.Unlock()

	rec := record{
		ringID:   w.ring.ID,
		seq:      seq,
		addr:     addr,
		nvmOff:   nvmOff,
		ringOff:  w.ring.DevBase + int64(slot)*int64(w.ring.SlotSize) + slotHeaderBytes,
		size:     len(data),
		stagedAt: stagedAt,
		acks:     w.ackCh,
		slotFree: w.credits,
	}
	// Enqueue before releasing stageMu: the flusher must see this ring's
	// records in sequence order, because slot-reuse safety rests on
	// credits returning in FIFO order.
	err = w.engine.enqueue(rec)
	w.stageMu.Unlock()
	if err != nil {
		// The record will never flush; undo the pending entry and credit.
		w.dropPending(seq)
		w.credits <- struct{}{}
		return at, err
	}
	return stagedAt, nil
}

// dropPending removes (and recycles) the pending entry with the given
// sequence number — the undo path when an enqueue fails.
func (w *Writer) dropPending(seq uint64) {
	w.pendMu.Lock()
	for i := range w.pending {
		if w.pending[i].seq == seq {
			if bp := w.pending[i].buf; bp != nil {
				putBuf(bp)
			}
			w.pending = append(w.pending[:i], w.pending[i+1:]...)
			break
		}
	}
	w.pendMu.Unlock()
}

// StageReq is one record in a batched stage: a proxied write of Data to
// the global address Addr, whose NVM backing lives at NvmOff in the
// server's pool device.
type StageReq struct {
	Addr   region.GAddr
	NvmOff int64
	Data   []byte
}

// StageMulti stages a burst of records into consecutive ring slots,
// posting each ring-sized run as a single doorbell-batched WRITE chain
// — one PerOp for the whole burst instead of one per record. Per-slot
// credits and backpressure are unchanged (the call blocks while the
// flusher is behind), records enter the flusher in staging order, and
// every record joins the pending set before the call returns, so
// read-your-writes holds exactly as for Stage.
//
// The returned instant is when the chain's last WQE is acknowledged —
// the client-visible latency of the whole burst.
//
//gengar:hotpath
func (w *Writer) StageMulti(at simnet.Time, reqs []StageReq) (simnet.Time, error) {
	for _, r := range reqs {
		if len(r.Data) > w.ring.MaxPayload() {
			return at, fmt.Errorf("%w: %d > %d", ErrPayloadTooLarge, len(r.Data), w.ring.MaxPayload())
		}
	}
	end := at
	// A chain longer than the ring would deadlock on credits; split the
	// burst into ring-sized chains, each fully credited before posting.
	for len(reqs) > 0 {
		n := len(reqs)
		if n > w.ring.Slots {
			n = w.ring.Slots
		}
		var err error
		end, err = w.stageChain(end, reqs[:n])
		if err != nil {
			return at, err
		}
		reqs = reqs[n:]
	}
	return end, nil
}

// stageChain stages up to ring.Slots records as one doorbell-batched
// chain. Caller has validated payload sizes.
//
//gengar:hotpath
func (w *Writer) stageChain(at simnet.Time, reqs []StageReq) (simnet.Time, error) {
	w.pendMu.Lock()
	closed := w.closed
	w.pendMu.Unlock()
	if closed {
		return at, ErrEngineClosed
	}

	// Take one ring slot per record; blocks when the flusher is behind.
	for range reqs {
		<-w.credits
	}
	w.occHW.SetMax(int64(w.ring.Slots - len(w.credits)))

	w.stageMu.Lock()
	seq0 := w.nextSeq
	w.nextSeq += uint64(len(reqs))

	// Build the chain: one WQE per slot image, all pooled, into the
	// writer's scratch (no per-burst slice allocation on the hot path).
	w.wqeScratch = w.wqeScratch[:0]
	w.slotBufScratch = w.slotBufScratch[:0]
	for i, r := range reqs {
		slot := int((seq0 + uint64(i)) % uint64(w.ring.Slots))
		sb := getBuf(slotHeaderBytes + len(r.Data))
		buf := *sb
		binary.BigEndian.PutUint64(buf, uint64(r.Addr))
		binary.BigEndian.PutUint32(buf[8:], uint32(len(r.Data)))
		copy(buf[slotHeaderBytes:], r.Data)
		w.slotBufScratch = append(w.slotBufScratch, sb)
		if w.qp != nil {
			w.wqeScratch = append(w.wqeScratch, rdma.WriteReq{
				Src: buf,
				Raddr: rdma.RemoteAddr{
					Region: w.ring.Handle,
					Offset: w.ring.Base + int64(slot)*int64(w.ring.SlotSize),
				},
			})
		}
	}
	var stagedAt simnet.Time
	var err error
	if w.qp != nil {
		stagedAt, err = w.qp.WriteBatch(at, w.wqeScratch)
	} else {
		// Local mode has no doorbell chain; post the slot images directly
		// into the ring device in sequence.
		stagedAt = at
		for i, sb := range w.slotBufScratch {
			slot := int((seq0 + uint64(i)) % uint64(w.ring.Slots))
			stagedAt, err = w.localDev.Write(stagedAt, w.ring.DevBase+int64(slot)*int64(w.ring.SlotSize), *sb)
			if err != nil {
				break
			}
		}
	}
	for _, sb := range w.slotBufScratch {
		putBuf(sb)
	}
	if err != nil {
		w.stageMu.Unlock()
		for range reqs {
			w.credits <- struct{}{}
		}
		return at, fmt.Errorf("proxy: stage batch: %w", err)
	}

	w.pendMu.Lock()
	for i, r := range reqs {
		pb := getBuf(len(r.Data))
		copy(*pb, r.Data)
		w.pending = append(w.pending, pendingWrite{
			seq:  seq0 + uint64(i),
			addr: r.Addr,
			data: *pb,
			buf:  pb,
		})
	}
	w.pendMu.Unlock()

	// Enqueue in sequence order before releasing stageMu (slot-reuse
	// safety rests on FIFO credit return). The whole chain completes at
	// the final WQE's ack — the single signaled work request.
	for i, r := range reqs {
		seq := seq0 + uint64(i)
		slot := int(seq % uint64(w.ring.Slots))
		rec := record{
			ringID:   w.ring.ID,
			seq:      seq,
			addr:     r.Addr,
			nvmOff:   r.NvmOff,
			ringOff:  w.ring.DevBase + int64(slot)*int64(w.ring.SlotSize) + slotHeaderBytes,
			size:     len(r.Data),
			stagedAt: stagedAt,
			acks:     w.ackCh,
			slotFree: w.credits,
		}
		if err := w.engine.enqueue(rec); err != nil {
			// Records before i are in flight and will ack normally; undo
			// the tail that will never flush.
			w.stageMu.Unlock()
			for j := i; j < len(reqs); j++ {
				w.dropPending(seq0 + uint64(j))
				w.credits <- struct{}{}
			}
			return at, err
		}
	}
	w.stageMu.Unlock()
	return stagedAt, nil
}

// ApplyPending overlays any staged-but-unflushed writes onto buf, which
// holds the bytes [addr, addr+len(buf)) as read from the server. It
// returns whether anything was overlaid. Pending records are applied in
// staging order, so the newest write to a byte wins.
func (w *Writer) ApplyPending(addr region.GAddr, buf []byte) bool {
	w.pendMu.Lock()
	defer w.pendMu.Unlock()
	applied := false
	for _, p := range w.pending {
		if p.addr.Server() != addr.Server() {
			continue
		}
		pOff, rOff := p.addr.Offset(), addr.Offset()
		lo := max64(pOff, rOff)
		hi := min64(pOff+int64(len(p.data)), rOff+int64(len(buf)))
		if lo >= hi {
			continue
		}
		copy(buf[lo-rOff:hi-rOff], p.data[lo-pOff:hi-pOff])
		applied = true
	}
	return applied
}

// PendingCount returns the number of staged-but-unflushed records.
func (w *Writer) PendingCount() int {
	w.pendMu.Lock()
	defer w.pendMu.Unlock()
	return len(w.pending)
}

// OccupancyHighWater returns the most ring slots ever simultaneously in
// use by this writer.
func (w *Writer) OccupancyHighWater() int64 { return w.occHW.Load() }

// FreeSlots reports how many staging-ring slots are currently
// uncommitted — an advisory, allocation-free backpressure probe for
// transports deciding whether a stage would park behind the flusher.
// The answer can be stale by the time a Stage runs; callers use it to
// choose a dispatch mode, not as a capacity guarantee.
func (w *Writer) FreeSlots() int { return len(w.credits) }

// RingSlots returns the staging ring's slot count.
func (w *Writer) RingSlots() int { return w.ring.Slots }

// Ring returns the writer's ring descriptor.
func (w *Writer) Ring() Ring { return w.ring }

// Drain blocks until every write staged so far has been applied to NVM
// and returns the simulated instant the last one completed. It is the
// synchronization point lock release uses to publish a writer's updates.
func (w *Writer) Drain() simnet.Time {
	w.pendMu.Lock()
	defer w.pendMu.Unlock()
	for len(w.pending) > 0 {
		w.cond.Wait()
	}
	return w.lastApplied
}

// Close drains outstanding writes and stops the writer. Further Stage
// calls fail with ErrEngineClosed.
func (w *Writer) Close() {
	w.pendMu.Lock()
	if w.closed {
		w.pendMu.Unlock()
		return
	}
	w.closed = true
	for len(w.pending) > 0 {
		w.cond.Wait()
	}
	w.pendMu.Unlock()
	close(w.quit)
	w.wg.Wait()
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
