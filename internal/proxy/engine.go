// Package proxy implements Gengar's redesigned RDMA write path. A direct
// RDMA WRITE to remote NVM pays the NVM media latency plus a persistence
// round trip, and under load saturates at the NVM's low write bandwidth.
// Gengar instead has clients RDMA-WRITE each update into a per-client
// DRAM staging ring at the server — acknowledged at DRAM speed — while
// server-side proxy workers apply staged records to NVM in FIFO order
// off the critical path, updating any promoted DRAM copy as they go.
//
// The split is: Engine (server side: rings live in server DRAM, a pool
// of flush workers drains them to NVM) and Writer (client side: stages
// writes, tracks credits for backpressure, buffers pending updates so
// the client observes its own writes before they flush).
package proxy

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gengar/internal/hmem"
	"gengar/internal/metrics"
	"gengar/internal/region"
	"gengar/internal/simnet"
	"gengar/internal/telemetry"
)

// Errors returned by the proxy.
var (
	// ErrEngineClosed is returned when staging to a stopped engine.
	ErrEngineClosed = errors.New("proxy: engine closed")
	// ErrPayloadTooLarge is returned when a write exceeds the ring slot.
	ErrPayloadTooLarge = errors.New("proxy: payload exceeds ring slot size")
)

// slotHeaderBytes is the per-record header written into a ring slot:
// target global address (8) + payload length (4).
const slotHeaderBytes = 12

// DefaultPollCost is the server CPU cost of discovering and dispatching
// one staged record (the polling loop's per-record share).
const DefaultPollCost = 200 * time.Nanosecond

// flushWorkers is the number of proxy threads per server. Records are
// sharded by ring, so each client's writes keep their FIFO order while
// the server drains many clients in parallel — both for fidelity (real
// proxies run several polling threads) and so the simulation's wall-
// clock flush rate keeps up with its producers.
const flushWorkers = 4

// Ack reports that a staged record has been applied to NVM (and to the
// DRAM copy, if the object is promoted).
type Ack struct {
	Seq       uint64
	AppliedAt simnet.Time
}

// CacheApply is the hook the server installs so flushed data is written
// through to a promoted object's DRAM copy. It receives the flush
// completion instant and the write's target range, and returns the
// instant the copy is updated (at, if the object is not promoted).
type CacheApply func(at simnet.Time, addr region.GAddr, data []byte) simnet.Time

// record is one staged write traveling from a Writer to the Engine.
type record struct {
	ringID   int
	seq      uint64
	addr     region.GAddr // target global address of the write
	nvmOff   int64        // target offset in the NVM device
	ringOff  int64        // payload location in the ring (past header)
	size     int
	stagedAt simnet.Time
	acks     chan<- Ack
	slotFree chan<- struct{} // signaled once the payload left the ring
}

// EngineStats is a snapshot of flusher activity.
type EngineStats struct {
	Staged         int64
	Flushed        int64
	FlushLag       metrics.Summary // staged->applied simulated delay
	BytesFlushed   int64
	Barriers       int64 // drain barriers executed
	QueueHighWater int64 // deepest flusher queue observed
}

// Engine is one server's proxy flusher pool: it drains staged records
// from all of the server's rings to the NVM pool, in FIFO order per
// ring.
type Engine struct {
	ringDev    *hmem.Device // server DRAM holding the rings
	nvm        *hmem.Device // server NVM pool
	cpu        *simnet.Resource
	pollCost   time.Duration
	cacheApply CacheApply

	workers []chan any // record or func() per worker
	wg      sync.WaitGroup
	once    sync.Once

	mu     sync.Mutex
	closed bool
	// inflight counts senders that passed the closed check but have not
	// finished their worker-channel send yet; Close waits for it before
	// closing the channels, so sends never race the close. It also lets
	// enqueue/Submit/Barrier send outside e.mu: a full worker queue then
	// stalls only the one producer, not everyone touching the engine.
	inflight sync.WaitGroup
	//gengar:lint-ignore lock-across-blocking Submit's quiesce holds taskMu across worker handshakes by design: it serializes exclusive tasks, and concurrent Submits must wait for the whole quiesce anyway
	taskMu sync.Mutex // serializes quiescent tasks

	staged   metrics.Counter
	flushed  metrics.Counter
	bytes    metrics.Counter
	barriers metrics.Counter
	queueHW  metrics.Gauge // flusher-queue depth high-water mark
	flushLag metrics.Histogram

	// flushObserver, when set, receives each flushed record's staged-to-
	// applied lag in nanoseconds. It runs on the flush worker, so it must
	// be cheap and never block.
	flushObserver atomic.Value // of func(lagNanos int64)
}

// NewEngine starts the flush workers draining records into nvm. ringDev
// is the DRAM device holding staging rings; cpu is the server CPU
// resource charged pollCost per record (DefaultPollCost if
// non-positive). cacheApply may be nil. Call Close to stop the workers.
func NewEngine(ringDev, nvm *hmem.Device, cpu *simnet.Resource, pollCost time.Duration, cacheApply CacheApply) (*Engine, error) {
	if ringDev == nil || nvm == nil || cpu == nil {
		return nil, errors.New("proxy: nil device or cpu")
	}
	if ringDev.Kind() != hmem.KindDRAM {
		return nil, fmt.Errorf("proxy: staging rings must live in DRAM, got %v", ringDev.Kind())
	}
	if pollCost <= 0 {
		pollCost = DefaultPollCost
	}
	e := &Engine{
		ringDev:    ringDev,
		nvm:        nvm,
		cpu:        cpu,
		pollCost:   pollCost,
		cacheApply: cacheApply,
		workers:    make([]chan any, flushWorkers),
	}
	for i := range e.workers {
		// Shallow queues keep the flush workers tightly coupled to their
		// producers in wall-clock time: a worker that falls far behind
		// would otherwise process records whose virtual timestamps lie
		// deep in the past, retroactively perturbing shared resource
		// timelines that concurrent clients have already moved past.
		ch := make(chan any, 8)
		e.workers[i] = ch
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			e.workerLoop(ch)
		}()
	}
	return e, nil
}

func (e *Engine) workerLoop(ch chan any) {
	buf := make([]byte, 0, 64<<10)
	for item := range ch {
		if task, ok := item.(func()); ok {
			task()
			continue
		}
		buf = e.flushRecord(item.(record), buf)
	}
}

func (e *Engine) flushRecord(rec record, buf []byte) []byte {
	// Discover the record and copy it out of the ring: the poll loop's
	// per-record CPU share plus the copy itself, charged to the server
	// CPU. (The copy is a local cached load by the polling core; charging
	// it to the ring DRAM's contended timeline would stall clients'
	// incoming stage DMAs behind the flusher's batched catch-up reads.)
	copyCost := e.ringDev.Profile().ReadTime(rec.size)
	_, tRead := e.cpu.Acquire(rec.stagedAt, e.pollCost+copyCost)

	if cap(buf) < rec.size {
		buf = make([]byte, rec.size)
	}
	data := buf[:rec.size]
	err := e.ringDev.ReadRaw(rec.ringOff, data)
	// The slot is reusable the moment its payload has been copied out,
	// well before the NVM apply completes — real proxies free ring space
	// the same way, which keeps staging from stalling behind slow media.
	rec.slotFree <- struct{}{}
	if err != nil {
		// A ring-read failure is a wiring bug (offsets are engine-
		// controlled); ack anyway so clients never deadlock.
		rec.acks <- Ack{Seq: rec.seq, AppliedAt: tRead}
		return buf
	}

	// Apply to NVM.
	tApply, err := e.nvm.Write(tRead, rec.nvmOff, data)
	if err != nil {
		rec.acks <- Ack{Seq: rec.seq, AppliedAt: tRead}
		return buf
	}

	// Write through to the DRAM copy, if promoted.
	end := tApply
	if e.cacheApply != nil {
		if t := e.cacheApply(tApply, rec.addr, data); t > end {
			end = t
		}
	}

	e.flushed.Inc()
	e.bytes.Add(int64(rec.size))
	e.flushLag.Record(end.Sub(rec.stagedAt))
	if fn, ok := e.flushObserver.Load().(func(int64)); ok {
		fn(int64(end.Sub(rec.stagedAt)))
	}
	rec.acks <- Ack{Seq: rec.seq, AppliedAt: end}
	return buf
}

// SetFlushObserver installs a hook invoked on each flushed record with
// its staged-to-applied lag in nanoseconds. The op's trace span finishes
// at the acknowledgement, before the async NVM apply, so the tracer
// observes flushPersist through this hook instead of a span mark. Pass
// nil-safe functions only; the hook runs on flush workers.
func (e *Engine) SetFlushObserver(fn func(lagNanos int64)) {
	if fn != nil {
		e.flushObserver.Store(fn)
	}
}

// enqueue hands a staged record to its ring's worker, preserving the
// client's write order.
func (e *Engine) enqueue(rec record) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrEngineClosed
	}
	e.staged.Inc()
	ch := e.workers[rec.ringID%len(e.workers)]
	e.queueHW.SetMax(int64(len(ch)) + 1)
	e.inflight.Add(1)
	e.mu.Unlock()
	// The send happens outside e.mu: a backed-up worker queue must stall
	// only this producer, never Close/Submit/Barrier or other rings.
	ch <- rec
	e.inflight.Done()
	return nil
}

// Submit quiesces every flush worker, runs task exclusively, and resumes
// them. Gengar servers run promotion/demotion plans this way, so a
// cache-copy install never races a concurrent write-through of the same
// object. Submit returns after the task has run.
func (e *Engine) Submit(task func()) error {
	e.taskMu.Lock()
	defer e.taskMu.Unlock()

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrEngineClosed
	}
	workers := e.workers
	e.inflight.Add(1)
	e.mu.Unlock()

	var reached sync.WaitGroup
	release := make(chan struct{})
	reached.Add(len(workers))
	for _, ch := range workers {
		ch <- func() {
			reached.Done()
			<-release
		}
	}
	e.inflight.Done()
	reached.Wait()
	task()
	close(release)
	return nil
}

// Barrier blocks until every record enqueued before the call has been
// processed by its worker.
func (e *Engine) Barrier() error {
	e.barriers.Inc()
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrEngineClosed
	}
	workers := e.workers
	e.inflight.Add(1)
	e.mu.Unlock()

	var wg sync.WaitGroup
	wg.Add(len(workers))
	for _, ch := range workers {
		ch <- func() { wg.Done() }
	}
	e.inflight.Done()
	wg.Wait()
	return nil
}

// Stats returns a snapshot of flusher activity.
func (e *Engine) Stats() EngineStats {
	return EngineStats{
		Staged:         e.staged.Load(),
		Flushed:        e.flushed.Load(),
		FlushLag:       e.flushLag.Summarize(),
		BytesFlushed:   e.bytes.Load(),
		Barriers:       e.barriers.Load(),
		QueueHighWater: e.queueHW.Load(),
	}
}

// RegisterTelemetry exposes the engine's live flusher instruments in reg
// under the gengar_proxy_* names, tagged with the given labels (the
// owning server's identity).
func (e *Engine) RegisterTelemetry(reg *telemetry.Registry, labels ...telemetry.Label) {
	reg.RegisterCounter("gengar_proxy_staged_total", "writes staged into rings", &e.staged, labels...)
	reg.RegisterCounter("gengar_proxy_flushed_total", "staged records applied to NVM", &e.flushed, labels...)
	reg.RegisterCounter("gengar_proxy_flushed_bytes_total", "payload bytes applied to NVM", &e.bytes, labels...)
	reg.RegisterCounter("gengar_proxy_barriers_total", "drain barriers executed", &e.barriers, labels...)
	reg.RegisterGauge("gengar_proxy_queue_high_water", "deepest flusher queue observed", &e.queueHW, labels...)
	reg.RegisterHistogram("gengar_proxy_flush_lag_seconds", "staged-to-applied simulated delay", &e.flushLag, labels...)
	reg.GaugeFunc("gengar_proxy_inflight", "records staged but not yet flushed", func() int64 {
		return e.staged.Load() - e.flushed.Load()
	}, labels...)
}

// Close stops accepting records, drains the backlog and joins the
// workers. It is idempotent.
func (e *Engine) Close() {
	e.once.Do(func() {
		e.mu.Lock()
		e.closed = true
		e.mu.Unlock()
		// New producers now fail the closed check; wait out the ones
		// already past it before closing their target channels.
		e.inflight.Wait()
		for _, ch := range e.workers {
			close(ch)
		}
		e.wg.Wait()
	})
}
