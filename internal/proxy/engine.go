// Package proxy implements Gengar's redesigned RDMA write path. A direct
// RDMA WRITE to remote NVM pays the NVM media latency plus a persistence
// round trip, and under load saturates at the NVM's low write bandwidth.
// Gengar instead has clients RDMA-WRITE each update into a per-client
// DRAM staging ring at the server — acknowledged at DRAM speed — while
// server-side proxy workers apply staged records to NVM in FIFO order
// off the critical path, updating any promoted DRAM copy as they go.
//
// The split is: Engine (server side: rings live in server DRAM, a pool
// of flush workers drains them to NVM) and Writer (client side: stages
// writes, tracks credits for backpressure, buffers pending updates so
// the client observes its own writes before they flush).
//
// Flushing is batched and interference-aware. Each worker drains its
// queue into a batch, coalesces records targeting adjacent or
// overlapping NVM ranges into single large writes (coalesce.go), and —
// when adaptive flushing is enabled — defers to the pacer (pacer.go)
// before spending NVM controller occupancy that foreground reads would
// queue behind.
package proxy

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gengar/internal/hmem"
	"gengar/internal/metrics"
	"gengar/internal/region"
	"gengar/internal/simnet"
	"gengar/internal/telemetry"
)

// Errors returned by the proxy.
var (
	// ErrEngineClosed is returned when staging to a stopped engine.
	ErrEngineClosed = errors.New("proxy: engine closed")
	// ErrPayloadTooLarge is returned when a write exceeds the ring slot.
	ErrPayloadTooLarge = errors.New("proxy: payload exceeds ring slot size")
)

// slotHeaderBytes is the per-record header written into a ring slot:
// target global address (8) + payload length (4).
const slotHeaderBytes = 12

// DefaultPollCost is the server CPU cost of discovering and dispatching
// one staged record (the polling loop's per-record share).
const DefaultPollCost = 200 * time.Nanosecond

// flushWorkers is the number of proxy threads per server. Records are
// sharded by ring, so each client's writes keep their FIFO order while
// the server drains many clients in parallel — both for fidelity (real
// proxies run several polling threads) and so the simulation's wall-
// clock flush rate keeps up with its producers.
const flushWorkers = 4

// Ack reports that a staged record has been applied to NVM (and to the
// DRAM copy, if the object is promoted).
type Ack struct {
	Seq       uint64
	AppliedAt simnet.Time
}

// CacheApply is the hook the server installs so flushed data is written
// through to a promoted object's DRAM copy. It receives the flush
// completion instant and the write's target range, and returns the
// instant the copy is updated (at, if the object is not promoted).
type CacheApply func(at simnet.Time, addr region.GAddr, data []byte) simnet.Time

// record is one staged write traveling from a Writer to the Engine.
type record struct {
	ringID   int
	seq      uint64
	addr     region.GAddr // target global address of the write
	nvmOff   int64        // target offset in the NVM device
	ringOff  int64        // payload location in the ring (past header)
	size     int
	stagedAt simnet.Time
	acks     chan<- Ack
	slotFree chan<- struct{} // signaled once the payload left the ring
}

// EngineStats is a snapshot of flusher activity.
type EngineStats struct {
	Staged         int64
	Flushed        int64           // staged records applied to NVM
	FlushLag       metrics.Summary // staged->applied simulated delay
	BytesFlushed   int64           // bytes written to NVM, after coalescing
	NVMWrites      int64           // coalesced NVM device writes
	Coalesced      int64           // records merged into another record's NVM write
	Barriers       int64           // drain barriers executed
	QueueHighWater int64           // deepest flusher queue observed
	BackoffLevel   int64           // current pacer backoff level (0 = full throttle)
	FlushBW        int64           // EWMA effective NVM flush bandwidth, bytes/sec
	GateWaits      int64           // wall-clock quanta flush workers spent gated
}

// Config configures an Engine.
type Config struct {
	// RingDev is the DRAM device holding the staging rings.
	RingDev *hmem.Device
	// NVM is the server's NVM pool the flushers drain into.
	NVM *hmem.Device
	// CPU is the server CPU resource charged PollCost per record.
	CPU *simnet.Resource
	// PollCost is the per-record poll/dispatch CPU cost
	// (DefaultPollCost if non-positive).
	PollCost time.Duration
	// CacheApply writes flushed data through to promoted DRAM copies.
	// May be nil.
	CacheApply CacheApply
	// FlushAdaptive enables the interference-aware pacer: flush batch
	// size and inter-batch delay track foreground NVM read pressure.
	// When false the flushers still coalesce but never back off.
	FlushAdaptive bool
	// FlushMaxLag bounds how far flushing may lag behind staging under
	// backoff (DefaultFlushMaxLag if non-positive). Ignored unless
	// FlushAdaptive is set.
	FlushMaxLag time.Duration
}

// Engine is one server's proxy flusher pool: it drains staged records
// from all of the server's rings to the NVM pool, in FIFO order per
// ring.
type Engine struct {
	ringDev    *hmem.Device // server DRAM holding the rings
	nvm        *hmem.Device // server NVM pool
	cpu        *simnet.Resource
	pollCost   time.Duration
	cacheApply CacheApply
	pacer      *pacer

	workers []chan any // record or func() per worker
	wg      sync.WaitGroup
	once    sync.Once

	mu     sync.Mutex
	closed bool
	// inflight counts senders that passed the closed check but have not
	// finished their worker-channel send yet; Close waits for it before
	// closing the channels, so sends never race the close. It also lets
	// enqueue/Submit/Barrier send outside e.mu: a full worker queue then
	// stalls only the one producer, not everyone touching the engine.
	inflight sync.WaitGroup
	//gengar:lint-ignore lock-across-blocking Submit's quiesce holds taskMu across worker handshakes by design: it serializes exclusive tasks, and concurrent Submits must wait for the whole quiesce anyway
	taskMu sync.Mutex // serializes quiescent tasks

	staged    metrics.Counter
	flushed   metrics.Counter
	bytes     metrics.Counter // bytes written to NVM, after coalescing
	nvmWrites metrics.Counter // coalesced NVM device writes
	coalesced metrics.Counter // records merged into another record's write
	barriers  metrics.Counter
	queueHW   metrics.Gauge // flusher-queue depth high-water mark
	flushLag  metrics.Histogram

	// flushObserver, when set, receives each flushed record's staged-to-
	// applied lag in nanoseconds. It runs on the flush worker, so it must
	// be cheap and never block.
	flushObserver atomic.Value // of func(lagNanos int64)
	// gateObserver, when set, receives each batch's pacer gate wait in
	// nanoseconds (only when the gate actually waited). Same contract.
	gateObserver atomic.Value // of func(gateNanos int64)
}

// NewEngine starts the flush workers draining records into cfg.NVM.
// Call Close to stop the workers.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.RingDev == nil || cfg.NVM == nil || cfg.CPU == nil {
		return nil, errors.New("proxy: nil device or cpu")
	}
	if cfg.RingDev.Kind() != hmem.KindDRAM {
		return nil, fmt.Errorf("proxy: staging rings must live in DRAM, got %v", cfg.RingDev.Kind())
	}
	if cfg.PollCost <= 0 {
		cfg.PollCost = DefaultPollCost
	}
	nvm := cfg.NVM
	e := &Engine{
		ringDev:    cfg.RingDev,
		nvm:        nvm,
		cpu:        cfg.CPU,
		pollCost:   cfg.PollCost,
		cacheApply: cfg.CacheApply,
		pacer: newPacer(cfg.FlushAdaptive, cfg.FlushMaxLag, func() simnet.Time {
			return nvm.ControllerBusyUntil()
		}),
		workers: make([]chan any, flushWorkers),
	}
	// The pacer's pressure signal is every foreground NVM read — wired at
	// the device so one-sided RDMA reads, which never pass through the
	// engine, are seen too. The flushers themselves only read ring DRAM,
	// so they never feed their own backoff.
	profile := nvm.Profile()
	nvm.SetReadObserver(func(at, end simnet.Time, n int) {
		e.pacer.observeRead(end, profile.ReadTime(n), end.Sub(at))
	})
	for i := range e.workers {
		// Shallow queues keep the flush workers tightly coupled to their
		// producers in wall-clock time: a worker that falls far behind
		// would otherwise process records whose virtual timestamps lie
		// deep in the past, retroactively perturbing shared resource
		// timelines that concurrent clients have already moved past.
		ch := make(chan any, 8)
		e.workers[i] = ch
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			e.workerLoop(ch)
		}()
	}
	return e, nil
}

func (e *Engine) workerLoop(ch chan any) {
	b := &flushBatch{}
	for item := range ch {
		if task, ok := item.(func()); ok {
			task()
			continue
		}
		b.reset()
		b.add(item.(record))
		pending := e.drainInto(b, ch)
		e.flushSweep(b)
		// An exclusive task encountered mid-drain runs only after the
		// batch it interrupted is fully applied: Submit's mutual
		// exclusion and Barrier's all-enqueued-before-the-call contract
		// both survive batching.
		if pending != nil {
			pending()
		}
	}
}

// drainInto opportunistically drains queued records into b, up to the
// pacer's current batch cap. It stops at an empty queue, a closed
// channel, or an exclusive task — which is returned, not run.
func (e *Engine) drainInto(b *flushBatch, ch chan any) func() {
	limit := e.pacer.batchLimit()
	for len(b.recs) < limit {
		select {
		case item, ok := <-ch:
			if !ok {
				return nil
			}
			if task, ok := item.(func()); ok {
				return task
			}
			b.add(item.(record))
		default:
			return nil
		}
	}
	return nil
}

// flushSweep applies one drained batch: copy every payload out of its
// ring (freeing the slot immediately), coalesce records into runs of
// adjacent/overlapping NVM ranges, persist each run with a single NVM
// write, write through to promoted DRAM copies, and ack — in the exact
// order records were drained, so every client still sees FIFO acks.
//
//gengar:hotpath
func (e *Engine) flushSweep(b *flushBatch) {
	// Phase 1 — copy-out. The poll loop's per-record CPU share plus the
	// copy itself, charged to the server CPU. (The copy is a local cached
	// load by the polling core; charging it to the ring DRAM's contended
	// timeline would stall clients' incoming stage DMAs behind the
	// flusher's batched catch-up reads.) A slot is reusable the moment
	// its payload has been copied out, well before the NVM apply
	// completes — real proxies free ring space the same way, which keeps
	// staging from stalling behind slow media. Releasing before the whole
	// batch persists is safe: credits are anonymous and copy-out is FIFO
	// per ring, so at most Slots records per ring are staged-not-copied.
	for i := range b.recs {
		rec := &b.recs[i]
		copyCost := e.ringDev.Profile().ReadTime(rec.size)
		_, tRead := e.cpu.Acquire(rec.stagedAt, e.pollCost+copyCost)
		b.tRead = append(b.tRead, tRead)
		b.ackAt = append(b.ackAt, tRead)
		b.ok = append(b.ok, false)
		dst := b.payload(rec.size)
		err := e.ringDev.ReadRaw(rec.ringOff, dst)
		rec.slotFree <- struct{}{}
		if err != nil {
			// A ring-read failure is a wiring bug (offsets are engine-
			// controlled); the record is acked anyway in phase 3 so
			// clients never deadlock.
			b.off = append(b.off, -1)
			b.data = b.data[:len(b.data)-rec.size]
		} else {
			b.off = append(b.off, len(b.data)-rec.size)
		}
	}

	// Phase 2 — gate, coalesce, persist. The gate runs after copy-out so
	// a backed-off flusher delays persists, never credit returns: the
	// ring cannot wedge behind the pacer.
	if waited := e.pacer.gate(b.oldestStaged()); waited > 0 {
		if fn, ok := e.gateObserver.Load().(func(int64)); ok {
			fn(int64(waited))
		}
	}
	b.sortByNVMOff()
	for lo := 0; lo < len(b.idx); {
		if b.off[b.idx[lo]] < 0 {
			lo++ // ring read failed; acked at tRead in phase 3
			continue
		}
		hi, runOff, runEnd := b.runSpan(lo)
		b.assembleRun(lo, hi, runOff, runEnd)
		// The NVM write departs when its latest member finished copy-out.
		arrival := b.tRead[b.memb[0]]
		for _, ri := range b.memb[1:] {
			if b.tRead[ri] > arrival {
				arrival = b.tRead[ri]
			}
		}
		tApply, err := e.nvm.Write(arrival, runOff, b.run)
		if err != nil {
			lo = hi // members ack at tRead in phase 3
			continue
		}
		e.nvmWrites.Inc()
		e.bytes.Add(int64(len(b.run)))
		e.coalesced.Add(int64(hi - lo - 1))
		e.pacer.recordPersist(int64(len(b.run)), e.nvm.Profile().WriteOccupancy(len(b.run)))
		// Write through to promoted DRAM copies, member by member in
		// batch order (a later overwrite must land last there too).
		for _, ri := range b.memb {
			rec := &b.recs[ri]
			end := tApply
			if e.cacheApply != nil {
				if t := e.cacheApply(tApply, rec.addr, b.data[b.off[ri]:b.off[ri]+rec.size]); t > end {
					end = t
				}
			}
			b.ackAt[ri] = end
			b.ok[ri] = true
		}
		lo = hi
	}

	// Phase 3 — account and ack, in batch order. Acks only leave after
	// every run has persisted, so a client that has seen ack N knows
	// records 1..N are all in NVM regardless of how runs reordered them.
	for i := range b.recs {
		rec := &b.recs[i]
		if b.ok[i] {
			lag := b.ackAt[i].Sub(rec.stagedAt)
			e.flushed.Inc()
			e.flushLag.Record(lag)
			if fn, ok := e.flushObserver.Load().(func(int64)); ok {
				fn(int64(lag))
			}
		}
		rec.acks <- Ack{Seq: rec.seq, AppliedAt: b.ackAt[i]}
	}
}

// SetFlushObserver installs a hook invoked on each flushed record with
// its staged-to-applied lag in nanoseconds. The op's trace span finishes
// at the acknowledgement, before the async NVM apply, so the tracer
// observes flushPersist through this hook instead of a span mark. Pass
// nil-safe functions only; the hook runs on flush workers.
func (e *Engine) SetFlushObserver(fn func(lagNanos int64)) {
	if fn != nil {
		e.flushObserver.Store(fn)
	}
}

// SetGateObserver installs a hook invoked with the wall-clock
// nanoseconds a flush batch spent waiting at the pacer gate (only for
// batches that waited). Same contract as SetFlushObserver.
func (e *Engine) SetGateObserver(fn func(gateNanos int64)) {
	if fn != nil {
		e.gateObserver.Store(fn)
	}
}

// enqueue hands a staged record to its ring's worker, preserving the
// client's write order.
func (e *Engine) enqueue(rec record) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrEngineClosed
	}
	e.staged.Inc()
	ch := e.workers[rec.ringID%len(e.workers)]
	e.queueHW.SetMax(int64(len(ch)) + 1)
	e.inflight.Add(1)
	e.mu.Unlock()
	e.pacer.observeStaged(rec.stagedAt)
	// The send happens outside e.mu: a backed-up worker queue must stall
	// only this producer, never Close/Submit/Barrier or other rings.
	ch <- rec
	e.inflight.Done()
	return nil
}

// Submit quiesces every flush worker, runs task exclusively, and resumes
// them. Gengar servers run promotion/demotion plans this way, so a
// cache-copy install never races a concurrent write-through of the same
// object. Submit returns after the task has run.
func (e *Engine) Submit(task func()) error {
	e.taskMu.Lock()
	defer e.taskMu.Unlock()

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrEngineClosed
	}
	workers := e.workers
	e.inflight.Add(1)
	e.mu.Unlock()

	var reached sync.WaitGroup
	release := make(chan struct{})
	reached.Add(len(workers))
	for _, ch := range workers {
		ch <- func() {
			reached.Done()
			<-release
		}
	}
	e.inflight.Done()
	reached.Wait()
	task()
	close(release)
	return nil
}

// Barrier blocks until every record enqueued before the call has been
// processed by its worker.
func (e *Engine) Barrier() error {
	e.barriers.Inc()
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrEngineClosed
	}
	workers := e.workers
	e.inflight.Add(1)
	e.mu.Unlock()

	var wg sync.WaitGroup
	wg.Add(len(workers))
	for _, ch := range workers {
		ch <- func() { wg.Done() }
	}
	e.inflight.Done()
	wg.Wait()
	return nil
}

// Stats returns a snapshot of flusher activity.
func (e *Engine) Stats() EngineStats {
	return EngineStats{
		Staged:         e.staged.Load(),
		Flushed:        e.flushed.Load(),
		FlushLag:       e.flushLag.Summarize(),
		BytesFlushed:   e.bytes.Load(),
		NVMWrites:      e.nvmWrites.Load(),
		Coalesced:      e.coalesced.Load(),
		Barriers:       e.barriers.Load(),
		QueueHighWater: e.queueHW.Load(),
		BackoffLevel:   e.pacer.level.Load(),
		FlushBW:        e.pacer.ewmaBW.Load(),
		GateWaits:      e.pacer.gateWaits.Load(),
	}
}

// RegisterTelemetry exposes the engine's live flusher instruments in reg
// under the gengar_proxy_* names, tagged with the given labels (the
// owning server's identity).
func (e *Engine) RegisterTelemetry(reg *telemetry.Registry, labels ...telemetry.Label) {
	reg.RegisterCounter("gengar_proxy_staged_total", "writes staged into rings", &e.staged, labels...)
	reg.RegisterCounter("gengar_proxy_flushed_total", "staged records applied to NVM", &e.flushed, labels...)
	reg.RegisterCounter("gengar_proxy_flushed_bytes_total", "bytes written to NVM after coalescing", &e.bytes, labels...)
	reg.RegisterCounter("gengar_proxy_nvm_writes_total", "coalesced NVM device writes", &e.nvmWrites, labels...)
	reg.RegisterCounter("gengar_proxy_coalesced_records_total", "records merged into another record's NVM write", &e.coalesced, labels...)
	reg.RegisterCounter("gengar_proxy_flush_gate_waits_total", "wall-clock quanta flush workers spent gated", &e.pacer.gateWaits, labels...)
	reg.RegisterCounter("gengar_proxy_barriers_total", "drain barriers executed", &e.barriers, labels...)
	reg.RegisterGauge("gengar_proxy_queue_high_water", "deepest flusher queue observed", &e.queueHW, labels...)
	reg.RegisterHistogram("gengar_proxy_flush_lag_seconds", "staged-to-applied simulated delay", &e.flushLag, labels...)
	reg.GaugeFunc("gengar_proxy_inflight", "records staged but not yet flushed", func() int64 {
		return e.staged.Load() - e.flushed.Load()
	}, labels...)
	reg.GaugeFunc("gengar_proxy_flush_backoff_level", "pacer backoff level (0 = full throttle)", func() int64 {
		return e.pacer.level.Load()
	}, labels...)
	reg.GaugeFunc("gengar_proxy_flush_bw_bytes_per_sec", "EWMA effective NVM flush bandwidth", func() int64 {
		return e.pacer.ewmaBW.Load()
	}, labels...)
}

// Close stops accepting records, drains the backlog and joins the
// workers. It is idempotent.
func (e *Engine) Close() {
	e.once.Do(func() {
		e.mu.Lock()
		e.closed = true
		e.mu.Unlock()
		// New producers now fail the closed check; wait out the ones
		// already past it before closing their target channels.
		e.inflight.Wait()
		for _, ch := range e.workers {
			close(ch)
		}
		e.wg.Wait()
	})
}
