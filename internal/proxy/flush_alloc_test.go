//go:build !race

package proxy

import "testing"

// TestCoalesceAllocFree pins the zero-allocation contract of the
// coalescing flush path: once the batch scratch has grown to its
// high-water mark, sorting, run discovery, and run assembly allocate
// nothing per batch. Race-mode coverage of the same entry points lives
// in coalesce_test.go (see raceguard_test.go).
func TestCoalesceAllocFree(t *testing.T) {
	b := &flushBatch{}
	sweep := func() {
		b.reset()
		for i := 0; i < 32; i++ {
			// Overlapping pattern: 128-byte records every 96 bytes, so
			// every run merges several records.
			off := int64((i % 8) * 96)
			b.add(record{nvmOff: off, size: 128, stagedAt: 1})
			p := b.payload(128)
			for j := range p {
				p[j] = byte(i)
			}
			b.off = append(b.off, len(b.data)-128)
		}
		b.sortByNVMOff()
		for lo := 0; lo < len(b.idx); {
			hi, runOff, runEnd := b.runSpan(lo)
			b.assembleRun(lo, hi, runOff, runEnd)
			lo = hi
		}
	}
	sweep() // grow every scratch slice to its high-water mark
	if allocs := testing.AllocsPerRun(100, sweep); allocs != 0 {
		t.Fatalf("coalescing allocates %v allocs per batch on the flush path, want 0", allocs)
	}
}
