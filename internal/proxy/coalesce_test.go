package proxy

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"time"

	"gengar/internal/simnet"
)

// stageQuiesced stages records while the flush workers are parked
// inside an exclusive task, so every record is queued before any worker
// wakes — the whole set drains as one coalescable batch. At most the
// worker queue depth (8) records fit without blocking the task.
func stageQuiesced(t *testing.T, h *harness, reqs []StageReq) {
	t.Helper()
	err := h.engine.Submit(func() {
		for _, r := range reqs {
			if _, err := h.writer.Stage(0, r.Addr, r.NvmOff, r.Data); err != nil {
				t.Errorf("Stage: %v", err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCoalesceAdjacentMergesToOneWrite(t *testing.T) {
	h := newHarness(t, 16, 256+slotHeaderBytes, nil)
	reqs := []StageReq{
		{Addr: gaddr(0), NvmOff: 0, Data: bytes.Repeat([]byte{'a'}, 64)},
		{Addr: gaddr(64), NvmOff: 64, Data: bytes.Repeat([]byte{'b'}, 64)},
		{Addr: gaddr(128), NvmOff: 128, Data: bytes.Repeat([]byte{'c'}, 64)},
	}
	stageQuiesced(t, h, reqs)
	h.writer.Drain()
	st := h.engine.Stats()
	if st.Flushed != 3 {
		t.Fatalf("flushed %d, want 3", st.Flushed)
	}
	if st.NVMWrites != 1 || st.Coalesced != 2 {
		t.Fatalf("adjacent records not merged: %d NVM writes, %d coalesced", st.NVMWrites, st.Coalesced)
	}
	if st.BytesFlushed != 192 {
		t.Fatalf("BytesFlushed = %d, want 192", st.BytesFlushed)
	}
	got := make([]byte, 192)
	if err := h.nvm.ReadRaw(0, got); err != nil {
		t.Fatal(err)
	}
	want := append(append(bytes.Repeat([]byte{'a'}, 64), bytes.Repeat([]byte{'b'}, 64)...), bytes.Repeat([]byte{'c'}, 64)...)
	if !bytes.Equal(got, want) {
		t.Fatal("merged NVM content differs from sequential flushes")
	}
}

func TestCoalesceOverlapOutOfOrderLastWins(t *testing.T) {
	// Overlapping ranges staged in descending-offset order: the merged
	// write must apply staging order, not offset order, wherever they
	// overlap — byte-identical to flushing each record on its own.
	h := newHarness(t, 16, 256+slotHeaderBytes, nil)
	reqs := []StageReq{
		{Addr: gaddr(100), NvmOff: 100, Data: bytes.Repeat([]byte{'X'}, 100)}, // [100,200)
		{Addr: gaddr(50), NvmOff: 50, Data: bytes.Repeat([]byte{'Y'}, 100)},   // [50,150): wins on [100,150)
		{Addr: gaddr(0), NvmOff: 0, Data: bytes.Repeat([]byte{'Z'}, 80)},      // [0,80):   wins on [50,80)
	}
	shadow := make([]byte, 200)
	for _, r := range reqs {
		copy(shadow[r.NvmOff:], r.Data)
	}
	stageQuiesced(t, h, reqs)
	h.writer.Drain()
	st := h.engine.Stats()
	if st.NVMWrites != 1 || st.Coalesced != 2 {
		t.Fatalf("overlapping records not merged: %d NVM writes, %d coalesced", st.NVMWrites, st.Coalesced)
	}
	if st.BytesFlushed != 200 {
		t.Fatalf("BytesFlushed = %d, want the 200-byte union", st.BytesFlushed)
	}
	got := make([]byte, 200)
	if err := h.nvm.ReadRaw(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, shadow) {
		t.Fatal("merged NVM content differs from sequential flushes")
	}
}

func TestCoalescePropertyByteIdentical(t *testing.T) {
	// Property: for random batches of overlapping, adjacent, and
	// out-of-order records, the coalesced persist leaves NVM exactly as
	// sequential per-record flushes would.
	const region = 2048
	h := newHarness(t, 16, 256+slotHeaderBytes, nil)
	shadow := make([]byte, region)
	rng := rand.New(rand.NewSource(0xC0A1E5CE))
	for round := 0; round < 25; round++ {
		reqs := make([]StageReq, 8)
		for i := range reqs {
			size := 1 + rng.Intn(128)
			off := int64(rng.Intn(region - size))
			data := make([]byte, size)
			rng.Read(data)
			reqs[i] = StageReq{Addr: gaddr(off), NvmOff: off, Data: data}
			copy(shadow[off:], data)
		}
		stageQuiesced(t, h, reqs)
		h.writer.Drain()
		got := make([]byte, region)
		if err := h.nvm.ReadRaw(0, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, shadow) {
			t.Fatalf("round %d: merged NVM content diverged from sequential flushes", round)
		}
	}
	st := h.engine.Stats()
	if st.Flushed != 25*8 {
		t.Fatalf("flushed %d, want %d", st.Flushed, 25*8)
	}
	// Random 128-byte ranges in a 2 KiB region overlap constantly; the
	// merge ratio over the whole run must beat 1.
	if st.NVMWrites >= st.Flushed {
		t.Fatalf("no merging happened: %d NVM writes for %d records", st.NVMWrites, st.Flushed)
	}
}

func TestRunMergingUnit(t *testing.T) {
	// Drive the batch scratch directly: sort, span, assemble — the exact
	// entry points the alloc gate (flush_alloc_test.go) measures.
	b := &flushBatch{}
	b.reset()
	recs := []struct {
		off  int64
		data string
	}{
		{40, "AAAAAAAAAA"}, // [40,50)
		{0, "BBBBBBBBBB"},  // [0,10)
		{45, "CCCCCCCCCC"}, // [45,55): overlaps first, staged later
		{10, "DDDDDDDDDD"}, // [10,20): adjacent to second
	}
	shadow := make([]byte, 55)
	for i := range shadow {
		shadow[i] = '.'
	}
	for _, r := range recs {
		b.add(record{nvmOff: r.off, size: len(r.data)})
		copy(b.payload(len(r.data)), r.data)
		b.off = append(b.off, len(b.data)-len(r.data))
		copy(shadow[r.off:], r.data)
	}
	b.sortByNVMOff()
	if want := []int{1, 3, 0, 2}; len(b.idx) != len(want) {
		t.Fatalf("idx = %v", b.idx)
	} else {
		for i, w := range want {
			if b.idx[i] != w {
				t.Fatalf("idx = %v, want %v", b.idx, want)
			}
		}
	}
	// First run: [0,20) — records 1 and 3 touch.
	hi, runOff, runEnd := b.runSpan(0)
	if hi != 2 || runOff != 0 || runEnd != 20 {
		t.Fatalf("run 1 = [%d,%d) span %d", runOff, runEnd, hi)
	}
	b.assembleRun(0, hi, runOff, runEnd)
	if string(b.run) != string(shadow[0:20]) {
		t.Fatalf("run 1 bytes %q", b.run)
	}
	// Second run: [40,55) — records 0 and 2 overlap, 2 staged later wins.
	hi2, runOff, runEnd := b.runSpan(hi)
	if hi2 != 4 || runOff != 40 || runEnd != 55 {
		t.Fatalf("run 2 = [%d,%d) span %d", runOff, runEnd, hi2)
	}
	b.assembleRun(hi, hi2, runOff, runEnd)
	if string(b.run) != string(shadow[40:55]) {
		t.Fatalf("run 2 bytes %q, want %q", b.run, shadow[40:55])
	}
	if b.oldestStaged() != 0 {
		t.Fatalf("oldestStaged = %v", b.oldestStaged())
	}
}

func TestFlushVsReadStress(t *testing.T) {
	// Race-mode stress: flushers coalescing overlapping records while
	// foreground readers hammer the same NVM ranges (which also drives
	// the device read observer feeding the pacer frontier).
	h := newHarness(t, 32, 256+slotHeaderBytes, nil)
	const writers, readers, iters = 2, 2, 150
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			data := bytes.Repeat([]byte{byte(w)}, 96)
			for i := 0; i < iters; i++ {
				off := int64((i % 8) * 64) // heavy overlap across iterations
				if _, err := h.writer.Stage(0, gaddr(off), off, data); err != nil {
					t.Errorf("Stage: %v", err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 128)
			at := simnet.Time(0)
			for i := 0; i < iters; i++ {
				end, err := h.nvm.Read(at, int64((i%8)*64), buf)
				if err != nil {
					t.Errorf("Read: %v", err)
					return
				}
				at = end.Add(simnet.Duration(time.Microsecond))
			}
		}()
	}
	wg.Wait()
	h.writer.Drain()
	if st := h.engine.Stats(); st.Flushed != writers*iters {
		t.Fatalf("flushed %d, want %d", st.Flushed, writers*iters)
	}
}
