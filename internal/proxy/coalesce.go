package proxy

import (
	"gengar/internal/simnet"
)

// maxFlushBatch bounds how many drained records one flush sweep may
// coalesce. It also sizes the writer's ack channel headroom: a worker
// holds at most one batch of copied-out-but-unacked records at a time.
const maxFlushBatch = 64

// flushBatch is one flush worker's drained-batch scratch. Every slice
// grows to its high-water mark on first use and is reused across
// batches, so the steady-state flush path allocates nothing. The batch
// is owned by a single worker goroutine; no locking.
type flushBatch struct {
	recs  []record      // drained records, in queue (batch) order
	data  []byte        // payloads copied out of the rings, concatenated
	off   []int         // recs[i]'s payload start in data; -1 if ring read failed
	tRead []simnet.Time // recs[i]'s copy-out completion instant
	ackAt []simnet.Time // recs[i]'s ack instant (copy-out until persisted)
	ok    []bool        // recs[i] persisted and written through
	idx   []int         // record indices sorted by (nvmOff, batch order)
	memb  []int         // current run's member indices, batch order
	run   []byte        // assembled bytes of the current run
}

// reset clears the batch for reuse, keeping capacity.
func (b *flushBatch) reset() {
	b.recs = b.recs[:0]
	b.data = b.data[:0]
	b.off = b.off[:0]
	b.tRead = b.tRead[:0]
	b.ackAt = b.ackAt[:0]
	b.ok = b.ok[:0]
	b.idx = b.idx[:0]
	b.memb = b.memb[:0]
}

// add appends one drained record.
func (b *flushBatch) add(rec record) { b.recs = append(b.recs, rec) }

// payload extends the payload scratch by n bytes and returns the new
// tail for the caller to fill.
//
//gengar:hotpath
func (b *flushBatch) payload(n int) []byte {
	need := len(b.data) + n
	if cap(b.data) < need {
		//gengar:lint-ignore hotpath-alloc scratch growth to the batch high-water mark, amortized across batches
		grown := make([]byte, len(b.data), need*2)
		copy(grown, b.data)
		b.data = grown
	}
	b.data = b.data[:need]
	return b.data[need-n : need]
}

// oldestStaged returns the earliest staging instant in the batch.
func (b *flushBatch) oldestStaged() simnet.Time {
	oldest := b.recs[0].stagedAt
	for _, rec := range b.recs[1:] {
		if rec.stagedAt < oldest {
			oldest = rec.stagedAt
		}
	}
	return oldest
}

// sortByNVMOff fills b.idx with record indices ordered by target NVM
// offset, stable in batch order for equal offsets. Insertion sort: the
// batch is at most maxFlushBatch records and often nearly sorted
// (sequential writers), and the sort must not allocate.
//
//gengar:hotpath
func (b *flushBatch) sortByNVMOff() {
	for i := range b.recs {
		b.idx = append(b.idx, i)
	}
	for i := 1; i < len(b.idx); i++ {
		for j := i; j > 0 && b.recs[b.idx[j]].nvmOff < b.recs[b.idx[j-1]].nvmOff; j-- {
			b.idx[j], b.idx[j-1] = b.idx[j-1], b.idx[j]
		}
	}
}

// runSpan identifies the maximal run of sorted records starting at
// sorted position lo whose target ranges overlap or touch, and returns
// one past its last sorted position plus the run's byte extent.
// Records whose ring read failed (off < 0) never join a run; they are
// skipped by the caller.
//
//gengar:hotpath
func (b *flushBatch) runSpan(lo int) (hi int, runOff, runEnd int64) {
	first := b.recs[b.idx[lo]]
	runOff = first.nvmOff
	runEnd = first.nvmOff + int64(first.size)
	hi = lo + 1
	for hi < len(b.idx) {
		rec := b.recs[b.idx[hi]]
		if b.off[b.idx[hi]] < 0 || rec.nvmOff > runEnd {
			break
		}
		if end := rec.nvmOff + int64(rec.size); end > runEnd {
			runEnd = end
		}
		hi++
	}
	return hi, runOff, runEnd
}

// assembleRun builds the run's bytes in b.run and its member list in
// b.memb. Members apply in batch order, so a later record's bytes win
// over an earlier record's wherever they overlap — byte-identical to
// flushing every record sequentially. The union [runOff, runEnd) is
// contiguous by construction (runSpan only extends through touching
// ranges), so every byte of b.run is covered by at least one member.
//
//gengar:hotpath
func (b *flushBatch) assembleRun(lo, hi int, runOff, runEnd int64) {
	b.memb = b.memb[:0]
	for k := lo; k < hi; k++ {
		b.memb = append(b.memb, b.idx[k])
	}
	// Restore batch order: idx is offset-sorted, overlap semantics are
	// staging-ordered.
	for i := 1; i < len(b.memb); i++ {
		for j := i; j > 0 && b.memb[j] < b.memb[j-1]; j-- {
			b.memb[j], b.memb[j-1] = b.memb[j-1], b.memb[j]
		}
	}
	n := int(runEnd - runOff)
	if cap(b.run) < n {
		//gengar:lint-ignore hotpath-alloc scratch growth to the run high-water mark, amortized across batches
		b.run = make([]byte, n)
	}
	b.run = b.run[:n]
	for _, ri := range b.memb {
		rec := b.recs[ri]
		src := b.data[b.off[ri] : b.off[ri]+rec.size]
		copy(b.run[rec.nvmOff-runOff:], src)
	}
}
