package proxy

import (
	"bytes"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gengar/internal/hmem"
	"gengar/internal/rdma"
	"gengar/internal/region"
	"gengar/internal/simnet"
)

type harness struct {
	fabric *rdma.Fabric
	nvm    *hmem.Device
	ramDev *hmem.Device
	engine *Engine
	writer *Writer
	qp     *rdma.QP
}

func newHarness(t *testing.T, slots, slotSize int, cacheApply CacheApply) *harness {
	t.Helper()
	f, err := rdma.NewFabric(simnet.LinkModel{
		PerOp:       600 * time.Nanosecond,
		Propagation: 300 * time.Nanosecond,
		BytesPerSec: 12.5e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	cn, _ := f.AddNode("client")
	sn, _ := f.AddNode("server")
	nvm, err := hmem.NewDevice("nvm", 1<<20, hmem.OptaneProfile())
	if err != nil {
		t.Fatal(err)
	}
	ramDev, err := hmem.NewDevice("ring-dram", 1<<20, hmem.DRAMProfile())
	if err != nil {
		t.Fatal(err)
	}
	mr, err := sn.RegisterMR(ramDev, 0, ramDev.Size(), rdma.AccessAll)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(Config{RingDev: ramDev, NVM: nvm, CPU: simnet.NewResource("cpu"), CacheApply: cacheApply})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	cq, sq := cn.NewQP(), sn.NewQP()
	if err := cq.Connect(sq); err != nil {
		t.Fatal(err)
	}
	ring := Ring{
		ID:       1,
		Handle:   mr.Handle(),
		Base:     0,
		DevBase:  0,
		Slots:    slots,
		SlotSize: slotSize,
	}
	w, err := NewWriter(eng, cq, ring)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	return &harness{fabric: f, nvm: nvm, ramDev: ramDev, engine: eng, writer: w, qp: cq}
}

func gaddr(off int64) region.GAddr { return region.MustGAddr(1, off) }

func TestNewEngineValidation(t *testing.T) {
	nvm, _ := hmem.NewDevice("nvm", 1<<12, hmem.OptaneProfile())
	dram, _ := hmem.NewDevice("dram", 1<<12, hmem.DRAMProfile())
	cpu := simnet.NewResource("cpu")
	if _, err := NewEngine(Config{NVM: nvm, CPU: cpu}); err == nil {
		t.Fatal("nil ring device accepted")
	}
	if _, err := NewEngine(Config{RingDev: nvm, NVM: nvm, CPU: cpu}); err == nil {
		t.Fatal("NVM ring device accepted")
	}
	if _, err := NewEngine(Config{RingDev: dram, NVM: nvm}); err == nil {
		t.Fatal("nil cpu accepted")
	}
}

func TestRingValidate(t *testing.T) {
	if err := (Ring{Slots: 0, SlotSize: 100}).Validate(); err == nil {
		t.Fatal("zero slots accepted")
	}
	if err := (Ring{Slots: 4, SlotSize: slotHeaderBytes}).Validate(); err == nil {
		t.Fatal("header-only slot accepted")
	}
	r := Ring{Slots: 4, SlotSize: 64}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if r.MaxPayload() != 64-slotHeaderBytes {
		t.Fatalf("MaxPayload = %d", r.MaxPayload())
	}
}

func TestStageFlushesToNVM(t *testing.T) {
	h := newHarness(t, 8, 4096+slotHeaderBytes, nil)
	payload := bytes.Repeat([]byte{0xAB}, 128)
	stagedAt, err := h.writer.Stage(0, gaddr(256), 256, payload)
	if err != nil {
		t.Fatalf("Stage: %v", err)
	}
	if stagedAt <= 0 {
		t.Fatal("stage charged no time")
	}
	appliedAt := h.writer.Drain()
	if appliedAt < stagedAt {
		t.Fatalf("applied %v before staged %v", appliedAt, stagedAt)
	}
	got := make([]byte, 128)
	if err := h.nvm.ReadRaw(256, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("NVM content mismatch after flush")
	}
	st := h.engine.Stats()
	if st.Staged != 1 || st.Flushed != 1 || st.BytesFlushed != 128 {
		t.Fatalf("stats: %+v", st)
	}
	if st.FlushLag.Count != 1 || st.FlushLag.Mean <= 0 {
		t.Fatalf("flush lag: %+v", st.FlushLag)
	}
}

func TestStageFasterThanDirectNVMWrite(t *testing.T) {
	// The headline claim of the proxy: staged ack << direct NVM write+ack.
	h := newHarness(t, 8, 4096+slotHeaderBytes, nil)
	payload := make([]byte, 4096)

	stagedAt, err := h.writer.Stage(0, gaddr(0), 0, payload)
	if err != nil {
		t.Fatal(err)
	}

	// Direct write path to NVM for comparison, same fabric parameters.
	sn, _ := h.fabric.Node("server")
	nvmMR, err := sn.RegisterMR(h.nvm, 0, h.nvm.Size(), rdma.AccessAll)
	if err != nil {
		t.Fatal(err)
	}
	cn, _ := h.fabric.Node("client")
	cq, sq := cn.NewQP(), sn.NewQP()
	if err := cq.Connect(sq); err != nil {
		t.Fatal(err)
	}
	directEnd, err := cq.Write(0, payload, rdma.RemoteAddr{Region: nvmMR.Handle(), Offset: 8192})
	if err != nil {
		t.Fatal(err)
	}
	if stagedAt >= directEnd {
		t.Fatalf("staged %v not faster than direct %v", stagedAt, directEnd)
	}
}

func TestFIFOOrderSameAddress(t *testing.T) {
	// Two writes to the same range must apply in order: last wins.
	h := newHarness(t, 8, 1024, nil)
	if _, err := h.writer.Stage(0, gaddr(0), 0, []byte("first-value")); err != nil {
		t.Fatal(err)
	}
	if _, err := h.writer.Stage(0, gaddr(0), 0, []byte("secondvalue")); err != nil {
		t.Fatal(err)
	}
	h.writer.Drain()
	got := make([]byte, 11)
	if err := h.nvm.ReadRaw(0, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "secondvalue" {
		t.Fatalf("NVM = %q, want last write", got)
	}
}

func TestPayloadTooLarge(t *testing.T) {
	h := newHarness(t, 4, 64, nil)
	if _, err := h.writer.Stage(0, gaddr(0), 0, make([]byte, 64)); !errors.Is(err, ErrPayloadTooLarge) {
		t.Fatalf("oversize stage: %v", err)
	}
}

func TestReadYourWrites(t *testing.T) {
	h := newHarness(t, 8, 1024, nil)
	if err := h.nvm.WriteRaw(0, bytes.Repeat([]byte{'o'}, 32)); err != nil {
		t.Fatal(err)
	}
	if _, err := h.writer.Stage(0, gaddr(8), 8, []byte("NEW!")); err != nil {
		t.Fatal(err)
	}
	// Simulate a read of [0,16) that raced the flush: server returned old
	// bytes; the pending overlay must surface the staged write.
	buf := bytes.Repeat([]byte{'o'}, 16)
	if h.writer.PendingCount() == 0 {
		// Flush may already have completed; ApplyPending is then a no-op
		// and the data is in NVM — either way the write is visible.
		h.writer.Drain()
		got := make([]byte, 4)
		if err := h.nvm.ReadRaw(8, got); err != nil {
			t.Fatal(err)
		}
		if string(got) != "NEW!" {
			t.Fatal("write lost")
		}
		return
	}
	if !h.writer.ApplyPending(gaddr(0), buf) {
		t.Fatal("overlay did not apply")
	}
	if string(buf) != "oooooooo"+"NEW!"+"oooo" {
		t.Fatalf("overlay result %q", buf)
	}
}

func TestApplyPendingDisjoint(t *testing.T) {
	h := newHarness(t, 8, 1024, nil)
	if _, err := h.writer.Stage(0, gaddr(4096), 4096, []byte("xyz")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	if h.writer.ApplyPending(gaddr(0), buf) {
		t.Fatal("disjoint overlay applied")
	}
	// Different server: no overlay.
	if h.writer.ApplyPending(region.MustGAddr(2, 4096), buf) {
		t.Fatal("cross-server overlay applied")
	}
	h.writer.Drain()
}

func TestBackpressureRingFull(t *testing.T) {
	// A tiny ring with a slow NVM: staging more records than slots must
	// still complete (blocking, not failing), and all records flush.
	h := newHarness(t, 2, 4096+slotHeaderBytes, nil)
	payload := make([]byte, 4096)
	var now simnet.Time
	for i := 0; i < 10; i++ {
		end, err := h.writer.Stage(now, gaddr(int64(i)*4096), int64(i)*4096, payload)
		if err != nil {
			t.Fatal(err)
		}
		now = end
	}
	h.writer.Drain()
	if st := h.engine.Stats(); st.Flushed != 10 {
		t.Fatalf("flushed %d, want 10", st.Flushed)
	}
	if h.writer.PendingCount() != 0 {
		t.Fatal("pending not drained")
	}
}

func TestCacheApplyHookCalled(t *testing.T) {
	var mu sync.Mutex
	var calls []region.GAddr
	hook := func(at simnet.Time, addr region.GAddr, data []byte) simnet.Time {
		mu.Lock()
		calls = append(calls, addr)
		mu.Unlock()
		return at.Add(time.Microsecond)
	}
	h := newHarness(t, 4, 1024, hook)
	if _, err := h.writer.Stage(0, gaddr(64), 64, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	applied := h.writer.Drain()
	mu.Lock()
	defer mu.Unlock()
	if len(calls) != 1 || calls[0] != gaddr(64) {
		t.Fatalf("hook calls: %v", calls)
	}
	if applied <= 0 {
		t.Fatal("applied time not propagated")
	}
}

func TestStageAfterClose(t *testing.T) {
	h := newHarness(t, 4, 1024, nil)
	h.writer.Close()
	if _, err := h.writer.Stage(0, gaddr(0), 0, []byte("x")); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("stage after close: %v", err)
	}
	h.writer.Close() // idempotent
}

func TestEngineCloseDrainsBacklog(t *testing.T) {
	h := newHarness(t, 8, 1024, nil)
	for i := 0; i < 5; i++ {
		if _, err := h.writer.Stage(0, gaddr(int64(i)*64), int64(i)*64, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	h.engine.Close()
	if st := h.engine.Stats(); st.Flushed != 5 {
		t.Fatalf("close did not drain: %+v", st)
	}
	// Staging after engine close fails.
	if _, err := h.writer.Stage(0, gaddr(0), 0, []byte("x")); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("stage after engine close: %v", err)
	}
}

func TestConcurrentStagers(t *testing.T) {
	h := newHarness(t, 16, 1024, nil)
	const goroutines, per = 4, 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				off := int64(g*per+i) * 64
				if _, err := h.writer.Stage(0, gaddr(off), off, []byte{byte(g), byte(i)}); err != nil {
					t.Errorf("Stage: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	h.writer.Drain()
	if st := h.engine.Stats(); st.Flushed != goroutines*per {
		t.Fatalf("flushed %d, want %d", st.Flushed, goroutines*per)
	}
	// Verify every record landed.
	for g := 0; g < goroutines; g++ {
		for i := 0; i < per; i++ {
			got := make([]byte, 2)
			if err := h.nvm.ReadRaw(int64(g*per+i)*64, got); err != nil {
				t.Fatal(err)
			}
			if got[0] != byte(g) || got[1] != byte(i) {
				t.Fatalf("record %d/%d corrupted: %v", g, i, got)
			}
		}
	}
}

func TestRingSlotContainsRealBytes(t *testing.T) {
	// The staged record must actually be present in server DRAM (it got
	// there via a real RDMA WRITE).
	h := newHarness(t, 4, 1024, nil)
	if _, err := h.writer.Stage(0, gaddr(128), 128, []byte("ringdata")); err != nil {
		t.Fatal(err)
	}
	hdr := make([]byte, slotHeaderBytes+8)
	if err := h.ramDev.ReadRaw(0, hdr); err != nil {
		t.Fatal(err)
	}
	if string(hdr[slotHeaderBytes:]) != "ringdata" {
		t.Fatalf("ring slot payload %q", hdr[slotHeaderBytes:])
	}
	h.writer.Drain()
}

func TestSubmitQuiescesWorkers(t *testing.T) {
	h := newHarness(t, 8, 1024, nil)
	// Stage a few records, then run an exclusive task: when it runs, the
	// previously-enqueued records may or may not have flushed, but no
	// flush may be concurrent with it; afterwards everything drains.
	for i := 0; i < 4; i++ {
		if _, err := h.writer.Stage(0, gaddr(int64(i)*64), int64(i)*64, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	ran := false
	if err := h.engine.Submit(func() { ran = true }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("Submit returned before the task ran")
	}
	if err := h.engine.Barrier(); err != nil {
		t.Fatal(err)
	}
	if st := h.engine.Stats(); st.Flushed != 4 {
		t.Fatalf("flushed %d after barrier", st.Flushed)
	}
	h.engine.Close()
	if err := h.engine.Submit(func() {}); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("Submit after close: %v", err)
	}
	if err := h.engine.Barrier(); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("Barrier after close: %v", err)
	}
}

func TestSubmitMutualExclusionWithFlushes(t *testing.T) {
	// Property: a task never observes a flush in progress. The hook
	// flips a flag around each flush; the task asserts it is clear.
	var inFlush atomic.Bool
	var violations atomic.Int64
	hook := func(at simnet.Time, addr region.GAddr, data []byte) simnet.Time {
		inFlush.Store(true)
		defer inFlush.Store(false)
		return at
	}
	h := newHarness(t, 64, 1024, hook)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			if _, err := h.writer.Stage(0, gaddr(int64(i%16)*64), int64(i%16)*64, []byte{1}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 20; i++ {
		if err := h.engine.Submit(func() {
			if inFlush.Load() {
				violations.Add(1)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	h.writer.Drain()
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d tasks overlapped a flush", v)
	}
}

func TestStageMultiFlushesToNVM(t *testing.T) {
	h := newHarness(t, 8, 4096+slotHeaderBytes, nil)
	reqs := make([]StageReq, 4)
	for i := range reqs {
		off := int64(i) * 256
		reqs[i] = StageReq{Addr: gaddr(off), NvmOff: off, Data: bytes.Repeat([]byte{byte('a' + i)}, 64)}
	}
	stagedAt, err := h.writer.StageMulti(0, reqs)
	if err != nil {
		t.Fatalf("StageMulti: %v", err)
	}
	if stagedAt <= 0 {
		t.Fatal("batch charged no time")
	}
	appliedAt := h.writer.Drain()
	if appliedAt < stagedAt {
		t.Fatalf("applied %v before staged %v", appliedAt, stagedAt)
	}
	got := make([]byte, 64)
	for i := range reqs {
		if err := h.nvm.ReadRaw(int64(i)*256, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, reqs[i].Data) {
			t.Fatalf("record %d: NVM content mismatch after flush", i)
		}
	}
	if st := h.engine.Stats(); st.Staged != 4 || st.Flushed != 4 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestStageMultiCheaperThanSequential(t *testing.T) {
	// A k-record burst staged as one chain should cost far less than k
	// sequential stages — one doorbell and one overlapped round trip
	// instead of k.
	const k = 8
	payload := make([]byte, 256)
	mk := func() []StageReq {
		reqs := make([]StageReq, k)
		for i := range reqs {
			off := int64(i) * 256
			reqs[i] = StageReq{Addr: gaddr(off), NvmOff: off, Data: payload}
		}
		return reqs
	}

	hb := newHarness(t, 32, 4096+slotHeaderBytes, nil)
	batchEnd, err := hb.writer.StageMulti(0, mk())
	if err != nil {
		t.Fatal(err)
	}

	hs := newHarness(t, 32, 4096+slotHeaderBytes, nil)
	var now simnet.Time
	for _, r := range mk() {
		end, err := hs.writer.Stage(now, r.Addr, r.NvmOff, r.Data)
		if err != nil {
			t.Fatal(err)
		}
		now = end
	}
	if simnet.Duration(batchEnd)*2 > simnet.Duration(now) {
		t.Fatalf("batch %v not <1/2 of sequential %v", simnet.Duration(batchEnd), simnet.Duration(now))
	}
}

func TestStageMultiReadYourWrites(t *testing.T) {
	h := newHarness(t, 8, 1024, nil)
	if err := h.nvm.WriteRaw(0, bytes.Repeat([]byte{'o'}, 32)); err != nil {
		t.Fatal(err)
	}
	reqs := []StageReq{
		{Addr: gaddr(8), NvmOff: 8, Data: []byte("NEW!")},
		{Addr: gaddr(12), NvmOff: 12, Data: []byte("MORE")},
	}
	if _, err := h.writer.StageMulti(0, reqs); err != nil {
		t.Fatal(err)
	}
	buf := bytes.Repeat([]byte{'o'}, 16)
	if h.writer.PendingCount() > 0 {
		if !h.writer.ApplyPending(gaddr(0), buf) {
			t.Fatal("overlay did not apply")
		}
		if string(buf) != "oooooooo"+"NEW!"+"MORE" {
			t.Fatalf("overlay result %q", buf)
		}
	}
	h.writer.Drain()
	got := make([]byte, 8)
	if err := h.nvm.ReadRaw(8, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "NEW!MORE" {
		t.Fatalf("NVM after drain = %q", got)
	}
}

func TestStageMultiLargerThanRing(t *testing.T) {
	// A burst wider than the ring must chunk into ring-sized chains
	// (blocking on backpressure, not deadlocking) and flush everything
	// in FIFO order.
	h := newHarness(t, 2, 4096+slotHeaderBytes, nil)
	const k = 9
	reqs := make([]StageReq, k)
	for i := range reqs {
		off := int64(i) * 4096
		reqs[i] = StageReq{Addr: gaddr(off), NvmOff: off, Data: []byte{byte(i)}}
	}
	// Same-address pair at the end: last must win.
	reqs[k-1] = StageReq{Addr: gaddr(0), NvmOff: 0, Data: []byte{0xFF}}
	if _, err := h.writer.StageMulti(0, reqs); err != nil {
		t.Fatal(err)
	}
	h.writer.Drain()
	if st := h.engine.Stats(); st.Flushed != k {
		t.Fatalf("flushed %d, want %d", st.Flushed, k)
	}
	var got [1]byte
	if err := h.nvm.ReadRaw(0, got[:]); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xFF {
		t.Fatalf("NVM[0] = %#x, want last write", got[0])
	}
}

func TestStageMultiValidation(t *testing.T) {
	h := newHarness(t, 4, 64, nil)
	// Empty burst is a no-op.
	if end, err := h.writer.StageMulti(7, nil); err != nil || end != 7 {
		t.Fatalf("empty burst: %v %v", end, err)
	}
	// One oversize payload fails the whole burst before anything stages.
	reqs := []StageReq{
		{Addr: gaddr(0), NvmOff: 0, Data: make([]byte, 8)},
		{Addr: gaddr(64), NvmOff: 64, Data: make([]byte, 64)},
	}
	if _, err := h.writer.StageMulti(0, reqs); !errors.Is(err, ErrPayloadTooLarge) {
		t.Fatalf("oversize burst: %v", err)
	}
	if h.writer.PendingCount() != 0 {
		t.Fatal("failed burst left pending records")
	}
}
