package proxy

import (
	"sync"
	"sync/atomic"
	"time"

	"gengar/internal/metrics"
	"gengar/internal/simnet"
)

// The pacer closes the loop between foreground read latency and flush
// aggressiveness. The interference the loop manages is the one "Analysis
// of Interference between RDMA and Local Access on Hybrid Memory
// System" measures on real hardware: proxy flushers are local NVM write
// traffic, and every occupancy slot they take on the pool controller is
// a slot a client-serving read queues behind.
//
// Inputs:
//
//   - every NVM pool read reports its modeled latency against the
//     unloaded expectation (observeRead, wired through the hmem read
//     observer) — the pressure signal;
//   - every staged record reports its staging instant (observeStaged) —
//     together with read instants this maintains the *frontier*, the
//     most recent instant any foreground actor has reached.
//
// Output: a backoff level in [0, pacerMaxLevel]. The flush engine asks
// the pacer two questions per drained batch: how many records it may
// coalesce into one sweep (batchLimit), and whether it must yield
// before persisting (gate). Gating bounds the NVM controller's
// watermark *lead* over the frontier: the watermark model serializes
// Acquire calls in wall-clock order, so a flusher that has pushed the
// controller far past the instants foreground reads arrive at is
// exactly a flusher whose writes those reads will queue behind. While
// the lead exceeds the level's budget the flush worker waits in wall
// time, letting reader Acquires land first.
//
// Two guarantees temper the backoff:
//
//   - anti-starvation: when the oldest drained record's staging instant
//     trails the frontier by more than MaxLag, the pacer forces full
//     throttle until the backlog halves that distance — flush lag is
//     bounded, acks always arrive;
//   - the ring never wedges: gating delays persists, never ring
//     copy-out, so credits keep returning and Stage keeps admitting.
const (
	// pacerMaxLevel is the deepest backoff step. Each level halves the
	// batch cap and the controller-lead budget.
	pacerMaxLevel = 7

	// pacerCalmRatio is the read latency inflation (actual/unloaded)
	// below which pressure decays toward level 0. Unloaded reads sit at
	// 1.0; queueing behind one flushed 4 KiB run roughly doubles it.
	pacerCalmRatio = 1.5

	// pacerAlpha is the EWMA weight of one read observation, as a
	// rational (alphaNum/alphaDen) so the update stays in fixed point.
	pacerAlphaNum, pacerAlphaDen = 1, 8

	// pacerLeadBudget anchors the bound on how far the NVM controller
	// watermark may lead the foreground frontier before the flusher
	// yields: level 1 allows half of it, each further level halves it
	// again. It is a few multiples of one max-coalesced run's occupancy
	// (64 x 4 KiB at 2 GB/s is ~131 us), so level 1 already forces the
	// flusher to interleave with foreground reads instead of draining a
	// whole burst ahead of them.
	pacerLeadBudget = 64 * time.Microsecond

	// pacerMinBatch floors the backed-off batch cap: coalescing needs a
	// few records in hand to merge overwrites, and the gate — not batch
	// shrinking — is what bounds the controller lead at deep levels.
	pacerMinBatch = 8

	// pacerGateQuantum is one wall-clock yield while gated; the gate
	// re-checks the lead after each quantum.
	pacerGateQuantum = 20 * time.Microsecond

	// pacerGateMaxWaits bounds a single gate so a stalled frontier
	// (foreground went idle between observations) cannot wedge a
	// flusher; pressure then decays and the gate stops engaging.
	pacerGateMaxWaits = 64

	// DefaultFlushMaxLag bounds flush lag (frontier minus the oldest
	// unflushed record's staging instant) when the deployment enables
	// adaptive flushing without choosing a bound.
	DefaultFlushMaxLag = 10 * time.Millisecond
)

// pacer holds the adaptive-flushing control state. All methods are safe
// for concurrent use: flush workers, device read observers and staging
// producers all feed it.
type pacer struct {
	adaptive bool
	maxLag   simnet.Duration

	// wait yields wall-clock time while gated; injectable for the
	// deterministic pacer tests. Defaults to time.Sleep.
	wait func(time.Duration)
	// lead reports the NVM controller watermark; injectable for tests.
	lead func() simnet.Time

	// frontier is the latest foreground instant observed (reads and
	// staging acks), i.e. "now" as the workload experiences it.
	frontier atomic.Int64
	// level is the current backoff step, derived from ewmaMilli.
	level atomic.Int64
	// starving is set while anti-starvation overrides the backoff.
	starving atomic.Bool
	// ewmaBW is the smoothed effective NVM flush bandwidth in bytes/sec.
	ewmaBW atomic.Int64
	// gateWaits counts wall-clock quanta spent gated (telemetry).
	gateWaits metrics.Counter

	mu        sync.Mutex
	ewmaMilli int64 // read-latency inflation ratio EWMA, in thousandths
}

// newPacer builds a pacer. lead reports the paced device's controller
// watermark (nil only in tests that never gate).
func newPacer(adaptive bool, maxLag time.Duration, lead func() simnet.Time) *pacer {
	if maxLag <= 0 {
		maxLag = DefaultFlushMaxLag
	}
	return &pacer{
		adaptive: adaptive,
		maxLag:   simnet.Duration(maxLag),
		wait:     time.Sleep,
		lead:     lead,
	}
}

// observeRead feeds one foreground NVM read: its completion instant and
// how its modeled latency compares to the unloaded expectation. Ratios
// are clamped to [1, 1000].
func (p *pacer) observeRead(end simnet.Time, expected, actual simnet.Duration) {
	p.advanceFrontier(end)
	if !p.adaptive || expected <= 0 {
		return
	}
	ratioMilli := int64(actual) * 1000 / int64(expected)
	if ratioMilli < 1000 {
		ratioMilli = 1000
	}
	if ratioMilli > 1000_000 {
		ratioMilli = 1000_000
	}
	p.mu.Lock()
	if p.ewmaMilli == 0 {
		p.ewmaMilli = 1000
	}
	p.ewmaMilli += (ratioMilli - p.ewmaMilli) * pacerAlphaNum / pacerAlphaDen
	ewma := p.ewmaMilli
	p.mu.Unlock()
	p.level.Store(levelFor(ewma))
}

// levelFor maps the pressure EWMA (ratio in thousandths) to a backoff
// level: calm below pacerCalmRatio, one level per doubling above it.
func levelFor(ewmaMilli int64) int64 {
	const calmMilli = int64(pacerCalmRatio * 1000)
	if ewmaMilli <= calmMilli {
		return 0
	}
	level := int64(1)
	for bound := calmMilli * 2; ewmaMilli > bound && level < pacerMaxLevel; bound *= 2 {
		level++
	}
	return level
}

// observeStaged advances the frontier to a record's staging instant.
func (p *pacer) observeStaged(at simnet.Time) { p.advanceFrontier(at) }

// advanceFrontier lifts the frontier to at (monotonic max).
func (p *pacer) advanceFrontier(at simnet.Time) {
	for {
		cur := p.frontier.Load()
		if int64(at) <= cur || p.frontier.CompareAndSwap(cur, int64(at)) {
			return
		}
	}
}

// batchLimit returns how many drained records one flush sweep may
// coalesce under the current backoff level.
func (p *pacer) batchLimit() int {
	if !p.adaptive || p.starving.Load() {
		return maxFlushBatch
	}
	limit := maxFlushBatch >> p.level.Load()
	if limit < pacerMinBatch {
		limit = pacerMinBatch
	}
	return limit
}

// gate is called with the oldest staging instant of a drained batch,
// before its records are persisted. It enforces anti-starvation and —
// when backed off — yields wall-clock time until the NVM controller's
// watermark lead over the frontier fits the level's budget. It returns
// the wall-clock time spent waiting.
func (p *pacer) gate(oldestStaged simnet.Time) time.Duration {
	if !p.adaptive {
		return 0
	}
	frontier := simnet.Time(p.frontier.Load())
	lag := frontier.Sub(oldestStaged)
	if p.starving.Load() {
		// Full throttle until the backlog recovers to half the bound.
		if lag <= p.maxLag/2 {
			p.starving.Store(false)
		}
		return 0
	}
	if lag > p.maxLag {
		p.starving.Store(true)
		return 0
	}
	level := p.level.Load()
	if level == 0 || p.lead == nil {
		return 0
	}
	budget := simnet.Duration(pacerLeadBudget) >> level
	var waited time.Duration
	for i := 0; i < pacerGateMaxWaits; i++ {
		frontier = simnet.Time(p.frontier.Load())
		if p.lead().Sub(frontier) <= budget {
			return waited
		}
		// Re-check starvation while yielding: the frontier moves under
		// us, and a gated flusher must never hold the backlog past the
		// lag bound.
		if frontier.Sub(oldestStaged) > p.maxLag {
			p.starving.Store(true)
			return waited
		}
		p.gateWaits.Inc()
		waited += pacerGateQuantum
		p.wait(pacerGateQuantum)
	}
	return waited
}

// recordPersist feeds one coalesced NVM sweep into the bandwidth meter:
// bytes written and the controller occupancy they charged.
func (p *pacer) recordPersist(bytes int64, occupancy simnet.Duration) {
	if occupancy <= 0 || bytes <= 0 {
		return
	}
	bw := bytes * int64(time.Second) / int64(occupancy)
	for {
		cur := p.ewmaBW.Load()
		next := cur + (bw-cur)*pacerAlphaNum/pacerAlphaDen
		if cur == 0 {
			next = bw
		}
		if p.ewmaBW.CompareAndSwap(cur, next) {
			return
		}
	}
}
