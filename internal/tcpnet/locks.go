package tcpnet

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"gengar/internal/lock"
	"gengar/internal/region"
)

// Lock errors.
var (
	// ErrLockTimeout reports that an acquire waited out its budget.
	ErrLockTimeout = errors.New("tcpnet: lock acquire timed out")
	// ErrLockNotHeld reports a release of a lock the session does not
	// hold.
	ErrLockNotHeld = errors.New("tcpnet: lock not held by session")
)

// lockTable is the daemon-side reader/writer lock table with leases.
// Every grant carries an expiry; an expired grant may be stolen by any
// contender, which is how the deployment survives clients that crash
// while holding locks — the recovery mechanism DESIGN.md defers from the
// simulator to the real-network mode.
type lockTable struct {
	slots int

	mu    sync.Mutex
	cond  *sync.Cond
	words map[int64]*lockWord
	now   func() time.Time // injectable for tests
}

type lockWord struct {
	writer       uint64 // session holding exclusive; 0 if none
	writerExpiry time.Time
	readers      map[uint64]time.Time // session -> lease expiry
}

func newLockTable(slots int, now func() time.Time) (*lockTable, error) {
	if slots <= 0 || slots&(slots-1) != 0 {
		return nil, fmt.Errorf("tcpnet: lock slots %d not a power of two", slots)
	}
	if now == nil {
		now = time.Now
	}
	t := &lockTable{slots: slots, words: make(map[int64]*lockWord), now: now}
	t.cond = sync.NewCond(&t.mu)
	return t, nil
}

func (t *lockTable) word(addr region.GAddr) *lockWord {
	i := lock.SlotIndex(addr, t.slots)
	w := t.words[i]
	if w == nil {
		w = &lockWord{readers: make(map[uint64]time.Time)}
		t.words[i] = w
	}
	return w
}

// reap drops expired grants on w at instant now.
func (w *lockWord) reap(now time.Time) {
	if w.writer != 0 && now.After(w.writerExpiry) {
		w.writer = 0
	}
	for s, exp := range w.readers {
		if now.After(exp) {
			delete(w.readers, s)
		}
	}
}

// lockExclusive grants session the write lock covering addr, waiting up
// to timeout for holders (or their lease expiries).
func (t *lockTable) lockExclusive(session uint64, addr region.GAddr, lease, timeout time.Duration) error {
	deadline := t.now().Add(timeout)
	t.mu.Lock()
	defer t.mu.Unlock()
	w := t.word(addr)
	for {
		now := t.now()
		w.reap(now)
		if w.writer == 0 && len(w.readers) == 0 {
			w.writer = session
			w.writerExpiry = now.Add(lease)
			return nil
		}
		if w.writer == session {
			// Lease renewal for the current holder.
			w.writerExpiry = now.Add(lease)
			return nil
		}
		if now.After(deadline) {
			return fmt.Errorf("%w: exclusive %v", ErrLockTimeout, addr)
		}
		t.wait(deadline)
	}
}

// lockShared grants session a read lock covering addr.
func (t *lockTable) lockShared(session uint64, addr region.GAddr, lease, timeout time.Duration) error {
	deadline := t.now().Add(timeout)
	t.mu.Lock()
	defer t.mu.Unlock()
	w := t.word(addr)
	for {
		now := t.now()
		w.reap(now)
		if w.writer == 0 {
			w.readers[session] = now.Add(lease)
			return nil
		}
		if now.After(deadline) {
			return fmt.Errorf("%w: shared %v", ErrLockTimeout, addr)
		}
		t.wait(deadline)
	}
}

// wait blocks until a release broadcast or (approximately) the deadline;
// a ticker bounds the wait so lease expiries are eventually observed.
func (t *lockTable) wait(deadline time.Time) {
	done := make(chan struct{})
	go func() {
		select {
		case <-time.After(10 * time.Millisecond):
			t.cond.Broadcast()
		case <-done:
		}
	}()
	t.cond.Wait()
	close(done)
}

func (t *lockTable) unlockExclusive(session uint64, addr region.GAddr) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	w := t.word(addr)
	w.reap(t.now())
	if w.writer != session {
		return fmt.Errorf("%w: exclusive %v session %d", ErrLockNotHeld, addr, session)
	}
	w.writer = 0
	t.cond.Broadcast()
	return nil
}

func (t *lockTable) unlockShared(session uint64, addr region.GAddr) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	w := t.word(addr)
	w.reap(t.now())
	if _, ok := w.readers[session]; !ok {
		return fmt.Errorf("%w: shared %v session %d", ErrLockNotHeld, addr, session)
	}
	delete(w.readers, session)
	t.cond.Broadcast()
	return nil
}
