package tcpnet

import "gengar/internal/lock"

// Lock errors. The lease-based lock table itself lives in the lock
// package (lock.LeaseTable) as a first-class engine feature; these
// aliases keep the tcpnet API stable.
var (
	// ErrLockTimeout reports that an acquire waited out its budget.
	ErrLockTimeout = lock.ErrLeaseTimeout
	// ErrLockNotHeld reports a release of a lock the session does not
	// hold.
	ErrLockNotHeld = lock.ErrLeaseNotHeld
)
