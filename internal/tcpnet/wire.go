// Package tcpnet is Gengar's real-network deployment mode: the same
// distributed-shared-memory API (malloc/free/read/write and multi-user
// locks over 64-bit global addresses, sharded across servers) served by
// gengard daemons over TCP to out-of-process clients.
//
// It complements the in-process simulator: the simulator reproduces the
// paper's *performance* behavior on modeled RDMA+NVM hardware, while
// tcpnet demonstrates the *protocol and consistency* machinery over a
// real transport with real concurrency — wall-clock timed, server-
// mediated (TCP has no one-sided verbs), and with lease-based lock
// recovery, which a real deployment needs because clients can vanish.
package tcpnet

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"gengar/internal/metrics"
	"gengar/internal/rpc"
	"gengar/internal/telemetry/span"
)

// Op identifies a request type on the wire.
type Op uint8

// Wire operations.
const (
	OpHello      Op = iota + 1 // -> serverID u16, poolBytes i64, features u8
	OpMalloc                   // size i64 -> gaddr u64
	OpFree                     // gaddr u64
	OpRead                     // gaddr u64, len u32 -> blob, hit u8
	OpWrite                    // gaddr u64, blob
	OpLockEx                   // gaddr u64, leaseMs u32
	OpUnlockEx                 // gaddr u64
	OpLockSh                   // gaddr u64, leaseMs u32
	OpUnlockSh                 // gaddr u64
	OpStats                    // -> see ServerStats field order
	OpWriteBatch               // n u32, n x (gaddr u64, blob)
	OpDigest                   // n u32, n x (gaddr u64, reads u32, writes u32) -> epoch u64
	OpVersion                  // gaddr u64 -> version u64

	// Daemon-to-daemon ops: a home server under arena pressure spills a
	// hot object's copy into a peer's DRAM and drives it through these.
	// The generation is home-minted (node-id-salted, cluster-unique) and
	// checked at the holder on every touch, so a slot the holder demoted
	// or recycled fails cleanly instead of serving another home's bytes.
	OpPeerPlace   // gen u64, size i64 -> off i64
	OpPeerInstall // off i64, gen u64, blob
	OpPeerWrite   // off i64, gen u64, delta i64, blob
	OpPeerRead    // off i64, gen u64, delta i64, len u32 -> blob
	OpPeerRelease // off i64, gen u64
)

// OpHello feature bits.
const (
	featureCache     = 1 << 0 // hotness tracking + DRAM cache serving reads
	featureProxy     = 1 << 1 // staged writes acknowledged before NVM flush
	featureTrace     = 1 << 2 // understands the trace frame-header extension
	featurePeerCache = 1 << 3 // hosts peer copies; hello reply carries cacheBytes i64
)

// String returns the op's wire name, for telemetry labels and errors.
func (o Op) String() string {
	switch o {
	case OpHello:
		return "hello"
	case OpMalloc:
		return "malloc"
	case OpFree:
		return "free"
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpLockEx:
		return "lock_ex"
	case OpUnlockEx:
		return "unlock_ex"
	case OpLockSh:
		return "lock_sh"
	case OpUnlockSh:
		return "unlock_sh"
	case OpStats:
		return "stats"
	case OpWriteBatch:
		return "write_batch"
	case OpDigest:
		return "digest"
	case OpVersion:
		return "version"
	case OpPeerPlace:
		return "peer_place"
	case OpPeerInstall:
		return "peer_install"
	case OpPeerWrite:
		return "peer_write"
	case OpPeerRead:
		return "peer_read"
	case OpPeerRelease:
		return "peer_release"
	default:
		return fmt.Sprintf("op%d", uint8(o))
	}
}

// maxFrame bounds a single message, including headers.
const maxFrame = 16 << 20

// Frame layout: length u32 (of the rest) | id u64 | op/status u8 | payload.
const frameHeader = 4 + 8 + 1

// Status bytes in responses.
const (
	statusOK  = 0
	statusErr = 1
)

// ---------------------------------------------------------------------
// Trace frame-header extension.
//
// A request stitching a client span across the wire sets tagTraced on
// its op byte and carries a length-versioned extension between the tag
// and the payload:
//
//	extLen u8 | flags u8 | traceID u64 | (future fields) | payload
//
// extLen counts the bytes after itself, so a receiver skips fields it
// does not understand and a future version grows the extension without
// a flag day. Negotiation: servers advertise featureTrace in the
// OpHello reply; clients only emit extended frames to peers that did.
// A pre-trace peer receiving one anyway sees an op byte >= maxOpTag
// and rejects the frame as an unknown op — a clean error, not a
// misparse, because tagTraced is far above the op vocabulary.

// tagTraced flags an op byte as carrying the trace extension.
const tagTraced = 0x80

// traceExtLen is the current extension length (flags + trace ID);
// traceExtSize adds the length byte itself.
const (
	traceExtLen  = 1 + 8
	traceExtSize = 1 + traceExtLen
)

// traceFlagSampled marks the operation as sampled by the sender.
const traceFlagSampled = 1 << 0

// traceExt is a decoded trace extension.
type traceExt struct {
	present bool
	sampled bool
	traceID uint64
}

// Wire errors.
var (
	// ErrFrameTooLarge reports a message exceeding maxFrame.
	ErrFrameTooLarge = errors.New("tcpnet: frame too large")
	// ErrClosed reports use of a closed connection or pool.
	ErrClosed = errors.New("tcpnet: connection closed")
)

// RemoteError carries a server-reported failure.
type RemoteError struct {
	Op  Op
	Msg string
}

// Error implements the error interface.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("tcpnet: remote error on op %d: %s", e.Op, e.Msg)
}

// payloadWriter/payloadReader reuse the rpc package's codec for message
// bodies.
type (
	payloadWriter = rpc.Writer
	payloadReader = rpc.Reader
)

func newPayloadReader(b []byte) *payloadReader { return rpc.NewReader(b) }

// ---------------------------------------------------------------------
// Pooled frame buffers.
//
// Every frame on the wire — requests, responses, read payloads — lives
// in a size-classed pooled buffer. Payloads are encoded directly after
// the reserved frameHeader prefix, so an OpRead reply is filled from
// the engine straight into the bytes that hit the socket: no
// intermediate payload slice, no header copy.

// frameClasses are the pooled buffer capacities. The smallest covers
// every control op; the ladder tops out at 1 MiB, above which frames
// are allocated exactly and dropped on release.
var frameClasses = [...]int{64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20}

// framePool hands out pooled frame buffers by size class. Buffers move
// as *[]byte so re-pooling never re-boxes the slice header. Each
// endpoint (daemon, client pool) owns one, so hit rates are observable
// per process role.
type framePool struct {
	classes [len(frameClasses)]sync.Pool
	hits    metrics.Counter
	misses  metrics.Counter
}

// frameClassFor returns the smallest class index holding n bytes, or -1
// when n exceeds the largest class.
func frameClassFor(n int) int {
	for i, c := range frameClasses {
		if n <= c {
			return i
		}
	}
	return -1
}

// get returns a buffer with len n from the smallest fitting class.
//
//gengar:hotpath
func (p *framePool) get(n int) *[]byte {
	ci := frameClassFor(n)
	if ci >= 0 {
		if f, ok := p.classes[ci].Get().(*[]byte); ok {
			p.hits.Inc()
			*f = (*f)[:n]
			return f
		}
	}
	return p.alloc(n, ci)
}

// alloc is the pool-miss path: a fresh buffer sized to its class.
func (p *framePool) alloc(n, ci int) *[]byte {
	p.misses.Inc()
	c := n
	if ci >= 0 {
		c = frameClasses[ci]
	}
	b := make([]byte, n, c)
	return &b
}

// put recycles a buffer into the largest class its capacity can serve.
// Buffers below the smallest class (never produced by get) are dropped,
// as are buffers above the largest: donating a multi-MiB exact-size
// allocation to the 1 MiB class would pin it behind ~1 MiB requests and
// amplify steady-state memory by its oversize factor.
//
//gengar:hotpath
func (p *framePool) put(f *[]byte) {
	if f == nil {
		return
	}
	if cap(*f) > frameClasses[len(frameClasses)-1] {
		return
	}
	ci := -1
	for i, c := range frameClasses {
		if cap(*f) < c {
			break
		}
		ci = i
	}
	if ci < 0 {
		return
	}
	p.classes[ci].Put(f)
}

// ---------------------------------------------------------------------
// Frame encoding.

// newFrame returns a pooled buffer with the frame header reserved and w
// positioned to append the payload in place.
//
//gengar:hotpath
func (p *framePool) newFrame(w *payloadWriter, payloadHint int) *[]byte {
	f := p.get(frameHeader + payloadHint)
	w.Reset((*f)[:frameHeader])
	return f
}

// newTracedFrame is newFrame for a sampled request: it additionally
// reserves and fills the trace extension, so the payload writer starts
// after it. The caller stamps the frame with tagTraced set.
//
//gengar:hotpath
func (p *framePool) newTracedFrame(w *payloadWriter, payloadHint int, traceID uint64) *[]byte {
	f := p.get(frameHeader + traceExtSize + payloadHint)
	b := *f
	b[frameHeader] = traceExtLen
	b[frameHeader+1] = traceFlagSampled
	binary.BigEndian.PutUint64(b[frameHeader+2:], traceID)
	w.Reset(b[:frameHeader+traceExtSize])
	return f
}

// stampFrame writes the wire header over a frame image whose payload is
// already in place: length, request id, and tag (op or status).
//
//gengar:hotpath
func stampFrame(f *[]byte, id uint64, tag uint8) error {
	b := *f
	if len(b) > maxFrame {
		return ErrFrameTooLarge
	}
	binary.BigEndian.PutUint32(b, uint32(len(b)-4))
	binary.BigEndian.PutUint64(b[4:], id)
	b[12] = tag
	return nil
}

// encodeFrameInto publishes w's accumulated frame image (header
// reserved by newFrame, payload appended in place) back into f and
// stamps the header. After it returns, *f is the exact byte sequence
// the writer goroutine hands to the kernel.
//
//gengar:hotpath
func encodeFrameInto(f *[]byte, w *payloadWriter, id uint64, tag uint8) error {
	*f = w.Bytes()
	return stampFrame(f, id, tag)
}

// encodeFrame builds a complete frame from a detached payload — the
// cold path for error responses and tests; hot paths encode in place
// via newFrame/encodeFrameInto.
func (p *framePool) encodeFrame(id uint64, tag uint8, payload []byte) (*[]byte, error) {
	var w payloadWriter
	f := p.newFrame(&w, len(payload))
	w.Reset(append((*f)[:frameHeader], payload...))
	if err := encodeFrameInto(f, &w, id, tag); err != nil {
		p.put(f)
		return nil, err
	}
	return f, nil
}

// ---------------------------------------------------------------------
// Frame reading.

// connReadBuf sizes the per-connection buffered reader: one kernel read
// drains many queued frames, the receive-side mirror of the writer
// goroutine's writev coalescing.
const connReadBuf = 64 << 10

// frameReader reads frames from a buffered connection into pooled
// buffers.
type frameReader struct {
	br   *bufio.Reader
	pool *framePool
}

func newFrameReader(conn io.Reader, pool *framePool) frameReader {
	return frameReader{br: bufio.NewReaderSize(conn, connReadBuf), pool: pool}
}

// read receives one message. On success the returned frame owns the
// pooled storage backing payload; the caller recycles it with
// pool.put(frame) once the payload is dead. A frame flagged tagTraced
// has its extension decoded into ext and stripped from both the
// returned tag and payload; a malformed extension is rejected in the
// ErrFrameTooLarge class, like any other unparseable header.
//
//gengar:hotpath
func (r *frameReader) read() (id uint64, tag uint8, frame *[]byte, payload []byte, ext traceExt, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r.br, hdr[:]); err != nil {
		return 0, 0, nil, nil, traceExt{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n < 9 || n > maxFrame {
		return 0, 0, nil, nil, traceExt{}, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	frame = r.pool.get(int(n))
	body := *frame
	if _, err := io.ReadFull(r.br, body); err != nil {
		r.pool.put(frame)
		return 0, 0, nil, nil, traceExt{}, err
	}
	id, tag, payload = binary.BigEndian.Uint64(body), body[8], body[9:]
	if tag&tagTraced != 0 {
		tag &^= tagTraced
		// The extension is length-versioned: at least the fields this
		// version defines, and any longer tail is skipped unread.
		if len(payload) < traceExtSize || int(payload[0]) < traceExtLen || 1+int(payload[0]) > len(payload) {
			r.pool.put(frame)
			return 0, 0, nil, nil, traceExt{}, fmt.Errorf("%w: bad trace extension", ErrFrameTooLarge)
		}
		ext.present = true
		ext.sampled = payload[1]&traceFlagSampled != 0
		ext.traceID = binary.BigEndian.Uint64(payload[2:])
		payload = payload[1+int(payload[0]):]
	}
	return id, tag, frame, payload, ext, nil
}

// ---------------------------------------------------------------------
// Frame queue: the send half of a connection.

// frameQueue serializes frame writes onto one connection through a
// dedicated writer goroutine that drains every queued frame per wakeup
// and hands the batch to the kernel as one writev (net.Buffers) — many
// responses or pipelined requests per syscall, replacing the
// lock-and-write-per-frame scheme. Enqueued frames transfer ownership;
// the drain loop recycles them after the flush. A frame enqueued with
// a span additionally transfers span ownership: the drain loop marks
// the span's writevFlush stage once the syscall returns and finishes
// it — the single-owner hand-off that lets a traced response attribute
// its queue wait plus syscall share without any span locking.
type frameQueue struct {
	conn net.Conn
	pool *framePool

	// Telemetry, optionally wired by the owning endpoint.
	framesPerFlush  *metrics.Histogram // frames drained per writev
	bytesPerSyscall *metrics.Histogram // bytes handed to the kernel per writev

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []queuedFrame // frames awaiting flush
	spare  []queuedFrame // drained slice, recycled to become the next queue
	err    error         // first write failure; sticky
	closed bool
	done   chan struct{}

	vecs net.Buffers // writev scratch, reused across flushes
}

// queuedFrame is one frame awaiting flush, with the span riding it (nil
// for the untraced common case).
type queuedFrame struct {
	f  *[]byte
	sp *span.Span
}

func newFrameQueue(conn net.Conn, pool *framePool) *frameQueue {
	q := &frameQueue{conn: conn, pool: pool, done: make(chan struct{})}
	q.cond = sync.NewCond(&q.mu)
	go q.run()
	return q
}

// enqueue hands one stamped frame to the writer goroutine. Ownership
// transfers: the frame is recycled after the flush (or immediately if
// the queue is dead).
//
//gengar:hotpath
func (q *frameQueue) enqueue(f *[]byte) error {
	return q.enqueueTraced(f, nil)
}

// enqueueTraced is enqueue carrying a span. The span is finished by the
// drain loop after the flush — or here, without a writevFlush mark, if
// the queue is already dead.
//
//gengar:hotpath
func (q *frameQueue) enqueueTraced(f *[]byte, sp *span.Span) error {
	q.mu.Lock()
	if q.err != nil || q.closed {
		err := q.err
		q.mu.Unlock()
		q.pool.put(f)
		sp.Finish()
		if err == nil {
			err = ErrClosed
		}
		return err
	}
	q.queue = append(q.queue, queuedFrame{f: f, sp: sp})
	q.mu.Unlock()
	q.cond.Signal()
	return nil
}

// run is the writer goroutine: grab everything queued, flush it in one
// writev, recycle the frames, repeat. A write failure poisons the queue
// and closes the connection so the read side tears the session down —
// a response that cannot be delivered must kill the connection, not
// leave the read loop consuming requests whose replies go nowhere.
//
//gengar:hotpath
func (q *frameQueue) run() {
	defer close(q.done)
	for {
		q.mu.Lock()
		for len(q.queue) == 0 && !q.closed {
			q.cond.Wait()
		}
		if len(q.queue) == 0 {
			q.mu.Unlock()
			return // closed and drained
		}
		batch := q.queue
		q.queue = q.spare[:0]
		failed := q.err != nil
		q.mu.Unlock()

		if !failed {
			total := 0
			q.vecs = q.vecs[:0]
			for _, e := range batch {
				q.vecs = append(q.vecs, *e.f)
				total += len(*e.f)
			}
			if q.framesPerFlush != nil {
				q.framesPerFlush.Observe(int64(len(batch)))
			}
			if q.bytesPerSyscall != nil {
				q.bytesPerSyscall.Observe(int64(total))
			}
			vecs := q.vecs // WriteTo consumes the header; keep q.vecs anchored
			if _, err := vecs.WriteTo(q.conn); err != nil {
				q.fail(err)
			}
		}
		for i, e := range batch {
			q.pool.put(e.f)
			if e.sp != nil {
				e.sp.Mark(span.StageWritevFlush)
				e.sp.Finish()
			}
			batch[i] = queuedFrame{}
		}
		q.mu.Lock()
		q.spare = batch[:0]
		q.mu.Unlock()
	}
}

// fail records the first write error and severs the connection, which
// unblocks the connection's read loop and triggers teardown.
func (q *frameQueue) fail(err error) {
	q.mu.Lock()
	if q.err == nil {
		q.err = err
	}
	q.mu.Unlock()
	_ = q.conn.Close()
}

// close stops the writer goroutine after it drains everything already
// queued, and waits for it to exit. Safe to call more than once.
func (q *frameQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
	<-q.done
}

// ---------------------------------------------------------------------
// Connection tuning.

// defaultKeepAlive is the keep-alive probe period selected when a
// config leaves it zero.
const defaultKeepAlive = 30 * time.Second

// tuneConn applies the transport knobs to a TCP connection: explicit
// TCP_NODELAY (on unless Nagle batching is requested — the wire layer
// does its own coalescing in the frame queue, so delayed small writes
// only add latency) and keep-alive probes so half-dead peers are
// detected even when the protocol is idle. keepAlive <= 0 disables
// probing. Non-TCP connections (in-process pipes in tests) pass
// through untouched.
func tuneConn(conn net.Conn, nagle bool, keepAlive time.Duration) {
	tc, ok := conn.(*net.TCPConn)
	if !ok {
		return
	}
	_ = tc.SetNoDelay(!nagle)
	if keepAlive > 0 {
		_ = tc.SetKeepAlive(true)
		_ = tc.SetKeepAlivePeriod(keepAlive)
	} else {
		_ = tc.SetKeepAlive(false)
	}
}
