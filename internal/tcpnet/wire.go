// Package tcpnet is Gengar's real-network deployment mode: the same
// distributed-shared-memory API (malloc/free/read/write and multi-user
// locks over 64-bit global addresses, sharded across servers) served by
// gengard daemons over TCP to out-of-process clients.
//
// It complements the in-process simulator: the simulator reproduces the
// paper's *performance* behavior on modeled RDMA+NVM hardware, while
// tcpnet demonstrates the *protocol and consistency* machinery over a
// real transport with real concurrency — wall-clock timed, server-
// mediated (TCP has no one-sided verbs), and with lease-based lock
// recovery, which a real deployment needs because clients can vanish.
package tcpnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"

	"gengar/internal/rpc"
)

// Op identifies a request type on the wire.
type Op uint8

// Wire operations.
const (
	OpHello      Op = iota + 1 // -> serverID u16, poolBytes i64, features u8
	OpMalloc                   // size i64 -> gaddr u64
	OpFree                     // gaddr u64
	OpRead                     // gaddr u64, len u32 -> blob, hit u8
	OpWrite                    // gaddr u64, blob
	OpLockEx                   // gaddr u64, leaseMs u32
	OpUnlockEx                 // gaddr u64
	OpLockSh                   // gaddr u64, leaseMs u32
	OpUnlockSh                 // gaddr u64
	OpStats                    // -> see ServerStats field order
	OpWriteBatch               // n u32, n x (gaddr u64, blob)
	OpDigest                   // n u32, n x (gaddr u64, reads u32, writes u32) -> epoch u64
	OpVersion                  // gaddr u64 -> version u64
)

// OpHello feature bits.
const (
	featureCache = 1 << 0 // hotness tracking + DRAM cache serving reads
	featureProxy = 1 << 1 // staged writes acknowledged before NVM flush
)

// String returns the op's wire name, for telemetry labels and errors.
func (o Op) String() string {
	switch o {
	case OpHello:
		return "hello"
	case OpMalloc:
		return "malloc"
	case OpFree:
		return "free"
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpLockEx:
		return "lock_ex"
	case OpUnlockEx:
		return "unlock_ex"
	case OpLockSh:
		return "lock_sh"
	case OpUnlockSh:
		return "unlock_sh"
	case OpStats:
		return "stats"
	case OpWriteBatch:
		return "write_batch"
	case OpDigest:
		return "digest"
	case OpVersion:
		return "version"
	default:
		return fmt.Sprintf("op%d", uint8(o))
	}
}

// maxFrame bounds a single message, including headers.
const maxFrame = 16 << 20

// Frame layout: length u32 (of the rest) | id u64 | op/status u8 | payload.
const frameHeader = 4 + 8 + 1

// Status bytes in responses.
const (
	statusOK  = 0
	statusErr = 1
)

// Wire errors.
var (
	// ErrFrameTooLarge reports a message exceeding maxFrame.
	ErrFrameTooLarge = errors.New("tcpnet: frame too large")
	// ErrClosed reports use of a closed connection or pool.
	ErrClosed = errors.New("tcpnet: connection closed")
)

// RemoteError carries a server-reported failure.
type RemoteError struct {
	Op  Op
	Msg string
}

// Error implements the error interface.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("tcpnet: remote error on op %d: %s", e.Op, e.Msg)
}

// writeFrame sends one message: id, tag (op for requests, status for
// responses) and payload.
func writeFrame(conn net.Conn, id uint64, tag uint8, payload []byte) error {
	n := 8 + 1 + len(payload)
	if n+4 > maxFrame {
		return ErrFrameTooLarge
	}
	buf := make([]byte, 4+n)
	binary.BigEndian.PutUint32(buf, uint32(n))
	binary.BigEndian.PutUint64(buf[4:], id)
	buf[12] = tag
	copy(buf[13:], payload)
	_, err := conn.Write(buf)
	return err
}

// readFrame receives one message.
func readFrame(conn net.Conn) (id uint64, tag uint8, payload []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n < 9 || n > maxFrame {
		return 0, 0, nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(conn, body); err != nil {
		return 0, 0, nil, err
	}
	return binary.BigEndian.Uint64(body), body[8], body[9:], nil
}

// payloadWriter/payloadReader reuse the rpc package's codec for message
// bodies.
type (
	payloadWriter = rpc.Writer
	payloadReader = rpc.Reader
)

func newPayloadReader(b []byte) *payloadReader { return rpc.NewReader(b) }
