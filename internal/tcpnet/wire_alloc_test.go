//go:build !race

// Allocation-regression tests for the wire path: request and response
// frames come from the size-classed frame pool and payloads are decoded
// off the pooled body in place, so a small-object round trip must stay
// within a handful of allocations — channel operations and the few
// interface conversions the runtime charges, not buffers. The race
// detector instruments allocations, so these run only in normal builds.

package tcpnet

import (
	"bytes"
	"testing"
	"time"
)

// Caps are measured steady-state counts plus headroom for runtime
// noise. The point is catching a regression back to per-request buffer
// allocation (the old wire path charged ~23 allocs per round trip), not
// pinning the runtime's exact accounting.
const (
	maxReadAllocs  = 10
	maxWriteAllocs = 10
)

func allocPool(t *testing.T) *Pool {
	t.Helper()
	addrs := startServers(t, 1, func(c *ServerConfig) { c.PoolBytes = 1 << 22 })
	p, err := Dial(addrs, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

func TestReadRoundTripAllocs(t *testing.T) {
	p := allocPool(t)
	a, err := p.Malloc(256)
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{0x6b}, 256)
	if err := p.Write(a, want); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	// Warm the frame pool and the daemon's session state.
	for i := 0; i < 64; i++ {
		if err := p.Read(a, buf); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		if err := p.Read(a, buf); err != nil {
			t.Fatal(err)
		}
	})
	if !bytes.Equal(buf, want) {
		t.Fatal("read returned wrong bytes")
	}
	if avg > maxReadAllocs {
		t.Fatalf("OpRead round trip: %.1f allocs/op, want <= %d", avg, maxReadAllocs)
	}
}

// dialTracedPool dials its own single-server deployment with the given
// trace cadence. A cadence of 1<<30 never fires within a test, so every
// op runs the full sampling gate and traced-frame decision without ever
// allocating a span — the configuration the zero-allocation tracing
// claim covers.
func dialTracedPool(t *testing.T, sample int) *Pool {
	t.Helper()
	addrs := startServers(t, 1, func(c *ServerConfig) { c.PoolBytes = 1 << 22 })
	p, err := DialConfig(PoolConfig{Addrs: addrs, Timeout: 2 * time.Second, TraceSample: sample})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

// measureOpAllocs reports steady-state allocs/op for a read, a write, a
// 4-record ReadMulti and a 4-record WriteMulti against p.
func measureOpAllocs(t *testing.T, p *Pool) (read, write, readMulti, writeMulti float64) {
	t.Helper()
	a, err := p.Malloc(4 * 256)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0x5a}, 256)
	buf := make([]byte, 256)
	rreqs := make([]ReadReq, 4)
	wreqs := make([]WriteReq, 4)
	for i := range rreqs {
		rreqs[i] = ReadReq{Addr: a.Add(int64(i * 256)), Buf: make([]byte, 256)}
		wreqs[i] = WriteReq{Addr: a.Add(int64(i * 256)), Data: data}
	}
	for i := 0; i < 64; i++ {
		if err := p.Write(a, data); err != nil {
			t.Fatal(err)
		}
		if err := p.Read(a, buf); err != nil {
			t.Fatal(err)
		}
		if err := p.WriteMulti(wreqs); err != nil {
			t.Fatal(err)
		}
		if err := p.ReadMulti(rreqs); err != nil {
			t.Fatal(err)
		}
	}
	read = testing.AllocsPerRun(200, func() {
		if err := p.Read(a, buf); err != nil {
			t.Fatal(err)
		}
	})
	write = testing.AllocsPerRun(200, func() {
		if err := p.Write(a, data); err != nil {
			t.Fatal(err)
		}
	})
	readMulti = testing.AllocsPerRun(200, func() {
		if err := p.ReadMulti(rreqs); err != nil {
			t.Fatal(err)
		}
	})
	writeMulti = testing.AllocsPerRun(200, func() {
		if err := p.WriteMulti(wreqs); err != nil {
			t.Fatal(err)
		}
	})
	return read, write, readMulti, writeMulti
}

// TestUnsampledTracingAddsNoAllocs is the differential half of the
// tracing zero-cost claim: a pool with sampling configured (but never
// firing) must allocate exactly as much per op as a pool with tracing
// off entirely, across the whole op surface.
func TestUnsampledTracingAddsNoAllocs(t *testing.T) {
	baseR, baseW, baseRM, baseWM := measureOpAllocs(t, dialTracedPool(t, 0))
	trR, trW, trRM, trWM := measureOpAllocs(t, dialTracedPool(t, 1<<30))
	for _, c := range []struct {
		op           string
		base, traced float64
	}{
		{"Read", baseR, trR},
		{"Write", baseW, trW},
		{"ReadMulti", baseRM, trRM},
		{"WriteMulti", baseWM, trWM},
	} {
		if c.traced > c.base+0.5 {
			t.Errorf("%s: %.1f allocs/op with unsampled tracing, %.1f without — tracing must be free when unsampled",
				c.op, c.traced, c.base)
		}
	}
}

func TestWriteRoundTripAllocs(t *testing.T) {
	p := allocPool(t)
	a, err := p.Malloc(256)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0x3c}, 256)
	for i := 0; i < 64; i++ {
		if err := p.Write(a, data); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		if err := p.Write(a, data); err != nil {
			t.Fatal(err)
		}
	})
	if avg > maxWriteAllocs {
		t.Fatalf("OpWrite round trip: %.1f allocs/op, want <= %d", avg, maxWriteAllocs)
	}
}
