//go:build !race

// Allocation-regression tests for the wire path: request and response
// frames come from the size-classed frame pool and payloads are decoded
// off the pooled body in place, so a small-object round trip must stay
// within a handful of allocations — channel operations and the few
// interface conversions the runtime charges, not buffers. The race
// detector instruments allocations, so these run only in normal builds.

package tcpnet

import (
	"bytes"
	"testing"
	"time"
)

// Caps are measured steady-state counts plus headroom for runtime
// noise. The point is catching a regression back to per-request buffer
// allocation (the old wire path charged ~23 allocs per round trip), not
// pinning the runtime's exact accounting.
const (
	maxReadAllocs  = 10
	maxWriteAllocs = 10
)

func allocPool(t *testing.T) *Pool {
	t.Helper()
	addrs := startServers(t, 1, func(c *ServerConfig) { c.PoolBytes = 1 << 22 })
	p, err := Dial(addrs, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

func TestReadRoundTripAllocs(t *testing.T) {
	p := allocPool(t)
	a, err := p.Malloc(256)
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{0x6b}, 256)
	if err := p.Write(a, want); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	// Warm the frame pool and the daemon's session state.
	for i := 0; i < 64; i++ {
		if err := p.Read(a, buf); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		if err := p.Read(a, buf); err != nil {
			t.Fatal(err)
		}
	})
	if !bytes.Equal(buf, want) {
		t.Fatal("read returned wrong bytes")
	}
	if avg > maxReadAllocs {
		t.Fatalf("OpRead round trip: %.1f allocs/op, want <= %d", avg, maxReadAllocs)
	}
}

func TestWriteRoundTripAllocs(t *testing.T) {
	p := allocPool(t)
	a, err := p.Malloc(256)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0x3c}, 256)
	for i := 0; i < 64; i++ {
		if err := p.Write(a, data); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		if err := p.Write(a, data); err != nil {
			t.Fatal(err)
		}
	})
	if avg > maxWriteAllocs {
		t.Fatalf("OpWrite round trip: %.1f allocs/op, want <= %d", avg, maxWriteAllocs)
	}
}
