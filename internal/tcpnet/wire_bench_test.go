package tcpnet

import (
	"fmt"
	"net"
	"os"
	"sync/atomic"
	"testing"
	"time"

	"gengar/internal/region"
)

// The E17 wire-throughput suite: loopback TCP, one daemon, pipelined
// clients. Run with -benchmem; results are recorded in EXPERIMENTS.md
// (E17) and results/e17.csv. `make bench-wire` runs the short smoke.

// benchPool starts one daemon on loopback and dials it.
func benchPool(b *testing.B) (*Pool, *PoolServer) {
	b.Helper()
	srv, err := NewPoolServer(ServerConfig{ID: 1, PoolBytes: 64 << 20})
	if err != nil {
		b.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go func() { _ = srv.Serve(lis) }()
	p, err := Dial([]string{lis.Addr().String()}, 2*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		maybeDumpE17Telemetry(b, srv)
		p.Close()
		srv.Close()
	})
	return p, srv
}

// benchObjects mallocs and initializes n objects of the given size.
func benchObjects(b *testing.B, p *Pool, n int, size int) []region.GAddr {
	b.Helper()
	addrs := make([]region.GAddr, n)
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i)
	}
	for i := range addrs {
		a, err := p.Malloc(int64(size))
		if err != nil {
			b.Fatal(err)
		}
		if err := p.Write(a, data); err != nil {
			b.Fatal(err)
		}
		addrs[i] = a
	}
	return addrs
}

var benchSizes = []int{64, 256, 4096}

// BenchmarkTCPRead measures pipelined small-op read throughput: many
// concurrent callers issuing OpRead against one daemon, the regime where
// per-frame syscalls and allocations cap the wire.
func BenchmarkTCPRead(b *testing.B) {
	for _, size := range benchSizes {
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			p, _ := benchPool(b)
			addrs := benchObjects(b, p, 64, size)
			var next atomic.Uint64
			b.SetBytes(int64(size))
			b.ReportAllocs()
			b.ResetTimer()
			b.SetParallelism(8)
			b.RunParallel(func(pb *testing.PB) {
				buf := make([]byte, size)
				for pb.Next() {
					a := addrs[next.Add(1)%uint64(len(addrs))]
					if err := p.Read(a, buf); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkTCPWrite measures pipelined small-op write throughput.
func BenchmarkTCPWrite(b *testing.B) {
	for _, size := range benchSizes {
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			p, _ := benchPool(b)
			addrs := benchObjects(b, p, 64, size)
			var next atomic.Uint64
			b.SetBytes(int64(size))
			b.ReportAllocs()
			b.ResetTimer()
			b.SetParallelism(8)
			b.RunParallel(func(pb *testing.PB) {
				data := make([]byte, size)
				for pb.Next() {
					a := addrs[next.Add(1)%uint64(len(addrs))]
					if err := p.Write(a, data); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkTCPMixed measures a 90/10 read/write mix at 256 B — the
// YCSB-B shape the paper's workloads center on.
func BenchmarkTCPMixed(b *testing.B) {
	const size = 256
	p, _ := benchPool(b)
	addrs := benchObjects(b, p, 64, size)
	var next atomic.Uint64
	b.SetBytes(size)
	b.ReportAllocs()
	b.ResetTimer()
	b.SetParallelism(8)
	b.RunParallel(func(pb *testing.PB) {
		buf := make([]byte, size)
		for pb.Next() {
			n := next.Add(1)
			a := addrs[n%uint64(len(addrs))]
			if n%10 == 9 {
				if err := p.Write(a, buf); err != nil {
					b.Error(err)
					return
				}
			} else {
				if err := p.Read(a, buf); err != nil {
					b.Error(err)
					return
				}
			}
		}
	})
}

// maybeDumpE17Telemetry writes the daemon's telemetry snapshot when the
// E17 harness asks for it (GENGAR_E17_TELEMETRY=<path>), so the
// committed results/e17.telemetry.json tracks the measured run.
func maybeDumpE17Telemetry(b *testing.B, srv *PoolServer) {
	path := os.Getenv("GENGAR_E17_TELEMETRY")
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		b.Logf("e17 telemetry: %v", err)
		return
	}
	defer f.Close()
	if err := srv.Telemetry().Snapshot().WriteJSON(f); err != nil {
		b.Logf("e17 telemetry: %v", err)
	}
}
