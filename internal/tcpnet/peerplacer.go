package tcpnet

import (
	"fmt"

	"gengar/internal/alloc"
	"gengar/internal/cache"
	"gengar/internal/engine"
	"gengar/internal/simnet"
)

// peerPlacer is the TCP mount's distributed placement strategy: copies
// land in the home daemon's own arena while it has room and spill into
// peer daemons' arenas under pressure, turning the cluster's DRAM into
// one aggregated cache the way the paper's distributed buffers do.
//
// The decision layer and the copy data plane split cleanly: placement
// picks local-first then round-robins live peers, and every copy-I/O
// call routes by Location.Node — the local seqlocked arena for home
// copies, the peer wire ops for spilled ones. Generation stamps are
// always minted by the home's LocalPlacer (node-id-salted), so one
// stamp space covers both arms and the holder-side generation check
// stays sound wherever the copy lives.
type peerPlacer struct {
	eng   *engine.Engine
	local *engine.LocalPlacer
	peers *peerSet
}

func newPeerPlacer(eng *engine.Engine, local *engine.LocalPlacer, peers *peerSet) *peerPlacer {
	return &peerPlacer{eng: eng, local: local, peers: peers}
}

// PlaceCopy reserves space for a copy: the local arena first (local
// hits stay lock-free and wire-free), then each live peer in rotation.
func (p *peerPlacer) PlaceCopy(size int64) (cache.Location, error) {
	loc, localErr := p.local.PlaceCopy(size)
	if localErr == nil {
		return loc, nil
	}
	gen := p.local.Stamp()
	for _, l := range p.peers.placementOrder() {
		off, err := l.place(gen, size)
		if err != nil {
			continue // down, full, or mid-dial: try the next peer
		}
		l.spilled.Add(alloc.BlockSize(size + cache.CopyHeaderBytes))
		return cache.Location{Node: l.nodeName(), Off: off, Size: size, Gen: gen}, nil
	}
	return cache.Location{}, fmt.Errorf("tcpnet: no arena space locally or on any live peer: %w", localErr)
}

// CopyBudget reports the aggregate arena the planner may budget copies
// against: the local arena plus every live peer's advertised capacity.
// Peers joining grow the hot set the cluster can cache; a peer dying
// shrinks the budget, and the next plan demotes the overflow.
func (p *peerPlacer) CopyBudget() int64 {
	return p.eng.BufferPool().Capacity() + p.peers.budget()
}

// link resolves the holder link for an off-box location.
func (p *peerPlacer) link(loc cache.Location) (*peerLink, error) {
	if l := p.peers.linkFor(loc.Node); l != nil {
		return l, nil
	}
	return nil, fmt.Errorf("tcpnet: no peer link to copy host %q", loc.Node)
}

// local reports whether the location lives in the home arena.
func (p *peerPlacer) isLocal(loc cache.Location) bool {
	return loc.Node == p.eng.Name()
}

// InstallCopy writes header + data into the holder's arena. The peer
// form ships only the data bytes; the holder stamps the generation
// header itself from its validated hosted-copy table entry.
func (p *peerPlacer) InstallCopy(at simnet.Time, loc cache.Location, payload []byte) (simnet.Time, error) {
	if p.isLocal(loc) {
		return p.local.InstallCopy(at, loc, payload)
	}
	l, err := p.link(loc)
	if err != nil {
		return at, err
	}
	return at, l.install(loc.Off, loc.Gen, payload[cache.CopyHeaderBytes:])
}

// WriteCopy applies a write-through to the copy's data area, wherever
// it lives.
func (p *peerPlacer) WriteCopy(at simnet.Time, loc cache.Location, delta int64, data []byte) (simnet.Time, error) {
	if p.isLocal(loc) {
		return p.local.WriteCopy(at, loc, delta, data)
	}
	l, err := p.link(loc)
	if err != nil {
		return at, err
	}
	return at, l.write(loc.Off, loc.Gen, delta, data)
}

// ReadCopy serves a cache hit from the copy, generation-checked at the
// holder: the local seqlock path for home copies, a proxied round trip
// over the peer link for spilled ones.
func (p *peerPlacer) ReadCopy(at simnet.Time, loc cache.Location, delta int64, buf []byte) (simnet.Time, error) {
	if p.isLocal(loc) {
		return p.local.ReadCopy(at, loc, delta, buf)
	}
	l, err := p.link(loc)
	if err != nil {
		return at, err
	}
	return at, l.read(loc.Off, loc.Gen, delta, buf)
}

// Release returns the copy's arena space. A peer release is best
// effort: if the holder is unreachable the slot stays hosted until the
// peer restarts (its table dies with it), bounded by the peer's arena;
// spill accounting drops the copy either way, since this home will
// never address it again.
func (p *peerPlacer) Release(loc cache.Location) {
	if p.isLocal(loc) {
		p.local.Release(loc)
		return
	}
	l, err := p.link(loc)
	if err != nil {
		return
	}
	l.spilled.Add(-alloc.BlockSize(loc.Size + cache.CopyHeaderBytes))
	_ = l.releaseCopy(loc.Off, loc.Gen)
}
