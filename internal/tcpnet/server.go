package tcpnet

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"gengar/internal/alloc"
	"gengar/internal/metrics"
	"gengar/internal/region"
	"gengar/internal/telemetry"
)

// ServerConfig shapes one gengard daemon.
type ServerConfig struct {
	// ID is this server's pool ID (the high bits of addresses it homes).
	ID uint16
	// PoolBytes is the exported memory capacity (power of two).
	PoolBytes int64
	// LockSlots sizes the lock table (power of two); 0 selects 16384.
	LockSlots int
	// DefaultLease bounds how long a lock grant survives a silent
	// client; 0 selects 5s.
	DefaultLease time.Duration
	// AcquireTimeout bounds how long a lock request waits; 0 selects 2s.
	AcquireTimeout time.Duration
}

func (c *ServerConfig) fill() error {
	if c.ID == 0 {
		return errors.New("tcpnet: server ID must be nonzero")
	}
	if c.PoolBytes < alloc.MinBlock || c.PoolBytes&(c.PoolBytes-1) != 0 {
		return fmt.Errorf("tcpnet: pool bytes %d not a power of two", c.PoolBytes)
	}
	if c.LockSlots == 0 {
		c.LockSlots = 1 << 14
	}
	if c.DefaultLease == 0 {
		c.DefaultLease = 5 * time.Second
	}
	if c.AcquireTimeout == 0 {
		c.AcquireTimeout = 2 * time.Second
	}
	return nil
}

// PoolServer is one gengard daemon: it exports PoolBytes of memory as
// the home of global addresses with its server ID, serving allocation,
// data access and leased locks over TCP.
type PoolServer struct {
	cfg   ServerConfig
	pool  *alloc.Buddy
	locks *lockTable

	memMu sync.RWMutex
	mem   []byte

	ops      metrics.Counter
	objects  metrics.Counter
	rxBytes  metrics.Counter // payload bytes written into the pool
	txBytes  metrics.Counter // payload bytes read out of the pool
	failures metrics.Counter // requests answered with an error status

	telem  *telemetry.Registry
	flight *telemetry.FlightRecorder

	mu       sync.Mutex
	lis      net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	sessions atomic.Uint64
	wg       sync.WaitGroup
}

// NewPoolServer validates cfg and builds an idle daemon; call Serve.
func NewPoolServer(cfg ServerConfig) (*PoolServer, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	b, err := alloc.New(cfg.PoolBytes)
	if err != nil {
		return nil, err
	}
	// Burn offset 0 so no object sits at the nil global address.
	if _, err := b.Alloc(alloc.MinBlock); err != nil {
		return nil, err
	}
	locks, err := newLockTable(cfg.LockSlots, nil)
	if err != nil {
		return nil, err
	}
	s := &PoolServer{
		cfg:    cfg,
		pool:   b,
		locks:  locks,
		mem:    make([]byte, cfg.PoolBytes),
		conns:  make(map[net.Conn]struct{}),
		telem:  telemetry.NewRegistry(),
		flight: telemetry.NewFlightRecorder(telemetry.DefaultFlightEvents),
	}
	sl := telemetry.L("server", fmt.Sprintf("%d", cfg.ID))
	s.telem.RegisterCounter("gengar_tcp_ops_total", "wire requests served", &s.ops, sl)
	s.telem.RegisterCounter("gengar_tcp_rx_bytes_total", "payload bytes written into the pool", &s.rxBytes, sl)
	s.telem.RegisterCounter("gengar_tcp_tx_bytes_total", "payload bytes read out of the pool", &s.txBytes, sl)
	s.telem.RegisterCounter("gengar_tcp_failures_total", "requests answered with an error", &s.failures, sl)
	s.telem.GaugeFunc("gengar_tcp_objects", "live objects homed here", s.objects.Load, sl)
	s.telem.GaugeFunc("gengar_tcp_pool_used_bytes", "pool bytes allocated", s.pool.AllocatedBytes, sl)
	s.telem.GaugeFunc("gengar_tcp_pool_capacity_bytes", "exported pool size", func() int64 {
		return s.cfg.PoolBytes
	}, sl)
	s.telem.GaugeFunc("gengar_tcp_sessions", "sessions opened since start", func() int64 {
		return int64(s.sessions.Load())
	}, sl)
	s.telem.GaugeFunc("gengar_tcp_open_conns", "currently open connections", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return int64(len(s.conns))
	}, sl)
	return s, nil
}

// Telemetry returns the daemon's metrics registry (served by gengard's
// debug endpoint).
func (s *PoolServer) Telemetry() *telemetry.Registry { return s.telem }

// Recorder returns the daemon's flight recorder of recent operations.
func (s *PoolServer) Recorder() *telemetry.FlightRecorder { return s.flight }

// Serve accepts and serves connections on lis until Close. It returns
// nil after a graceful Close and the accept error otherwise.
func (s *PoolServer) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.lis = lis
	s.mu.Unlock()

	for {
		conn, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				s.wg.Wait()
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// Close stops accepting, closes every connection and waits for handlers.
func (s *PoolServer) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	lis := s.lis
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	// Tear the sockets down outside s.mu: Close on a TCP connection can
	// block in the kernel, and handler goroutines need the lock to finish.
	if lis != nil {
		_ = lis.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
}

func (s *PoolServer) serveConn(conn net.Conn) {
	session := s.sessions.Add(1)
	var writeMu sync.Mutex
	var reqWG sync.WaitGroup
	defer func() {
		reqWG.Wait()
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	for {
		id, tag, payload, err := readFrame(conn)
		if err != nil {
			return // connection gone
		}
		reqWG.Add(1)
		go func() {
			defer reqWG.Done()
			resp, herr := s.handle(session, Op(tag), newPayloadReader(payload))
			writeMu.Lock()
			defer writeMu.Unlock()
			if herr != nil {
				s.failures.Inc()
				_ = writeFrame(conn, id, statusErr, []byte(herr.Error()))
				return
			}
			_ = writeFrame(conn, id, statusOK, resp)
		}()
	}
}

func (s *PoolServer) handle(session uint64, op Op, req *payloadReader) (resp []byte, err error) {
	s.ops.Inc()
	s.telem.Counter("gengar_tcp_requests_total", "wire requests by kind",
		telemetry.L("op", op.String())).Inc()
	start := time.Now()
	defer func() {
		s.telem.Histogram("gengar_tcp_request_latency_seconds",
			"wall-clock request handling latency by kind",
			telemetry.L("op", op.String())).Record(time.Since(start))
	}()
	switch op {
	case OpHello:
		var w payloadWriter
		w.U16(s.cfg.ID).I64(s.cfg.PoolBytes)
		return w.Bytes(), nil

	case OpMalloc:
		size := req.I64()
		if err := req.Err(); err != nil {
			return nil, err
		}
		if size <= 0 {
			return nil, fmt.Errorf("tcpnet: malloc of %d bytes", size)
		}
		off, err := s.pool.Alloc(size)
		if err != nil {
			return nil, err
		}
		addr, err := region.NewGAddr(s.cfg.ID, off)
		if err != nil {
			ferr := s.pool.Free(off)
			return nil, errors.Join(err, ferr)
		}
		s.objects.Inc()
		var w payloadWriter
		w.U64(uint64(addr))
		return w.Bytes(), nil

	case OpFree:
		addr, err := s.homeAddr(req)
		if err != nil {
			return nil, err
		}
		if err := s.pool.Free(addr.Offset()); err != nil {
			return nil, err
		}
		s.objects.Add(-1)
		return nil, nil

	case OpRead:
		addr, err := s.homeAddr(req)
		if err != nil {
			return nil, err
		}
		n := int64(req.U32())
		if err := req.Err(); err != nil {
			return nil, err
		}
		if n < 0 || addr.Offset()+n > s.cfg.PoolBytes {
			return nil, fmt.Errorf("tcpnet: read [%d,%d) out of pool", addr.Offset(), addr.Offset()+n)
		}
		out := make([]byte, n)
		s.memMu.RLock()
		copy(out, s.mem[addr.Offset():addr.Offset()+n])
		s.memMu.RUnlock()
		s.txBytes.Add(n)
		s.flight.Record(telemetry.Event{
			TimeNanos: start.UnixNano(), Op: "read", Addr: uint64(addr),
			Len: int(n), Path: "tcp", LatNanos: int64(time.Since(start)),
		})
		var w payloadWriter
		w.Blob(out)
		return w.Bytes(), nil

	case OpWrite:
		addr, err := s.homeAddr(req)
		if err != nil {
			return nil, err
		}
		data := req.Blob()
		if err := req.Err(); err != nil {
			return nil, err
		}
		if addr.Offset()+int64(len(data)) > s.cfg.PoolBytes {
			return nil, fmt.Errorf("tcpnet: write [%d,%d) out of pool", addr.Offset(), addr.Offset()+int64(len(data)))
		}
		s.memMu.Lock()
		copy(s.mem[addr.Offset():], data)
		s.memMu.Unlock()
		s.rxBytes.Add(int64(len(data)))
		s.flight.Record(telemetry.Event{
			TimeNanos: start.UnixNano(), Op: "write", Addr: uint64(addr),
			Len: len(data), Path: "tcp", LatNanos: int64(time.Since(start)),
		})
		return nil, nil

	case OpLockEx, OpLockSh:
		addr, err := s.homeAddr(req)
		if err != nil {
			return nil, err
		}
		lease := time.Duration(req.U32()) * time.Millisecond
		if err := req.Err(); err != nil {
			return nil, err
		}
		if lease <= 0 {
			lease = s.cfg.DefaultLease
		}
		if op == OpLockEx {
			return nil, s.locks.lockExclusive(session, addr, lease, s.cfg.AcquireTimeout)
		}
		return nil, s.locks.lockShared(session, addr, lease, s.cfg.AcquireTimeout)

	case OpUnlockEx:
		addr, err := s.homeAddr(req)
		if err != nil {
			return nil, err
		}
		return nil, s.locks.unlockExclusive(session, addr)

	case OpUnlockSh:
		addr, err := s.homeAddr(req)
		if err != nil {
			return nil, err
		}
		return nil, s.locks.unlockShared(session, addr)

	case OpStats:
		var w payloadWriter
		w.I64(s.objects.Load()).I64(s.pool.AllocatedBytes()).I64(s.ops.Load())
		return w.Bytes(), nil

	default:
		return nil, fmt.Errorf("tcpnet: unknown op %d", op)
	}
}

// homeAddr decodes an address operand and checks it is homed here.
func (s *PoolServer) homeAddr(req *payloadReader) (region.GAddr, error) {
	addr := region.GAddr(req.U64())
	if err := req.Err(); err != nil {
		return region.NilGAddr, err
	}
	if addr.Server() != s.cfg.ID {
		return region.NilGAddr, fmt.Errorf("tcpnet: %v not homed on server %d", addr, s.cfg.ID)
	}
	return addr, nil
}
