package tcpnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"gengar/internal/alloc"
	"gengar/internal/config"
	"gengar/internal/engine"
	"gengar/internal/hotness"
	"gengar/internal/metrics"
	"gengar/internal/proxy"
	"gengar/internal/region"
	"gengar/internal/telemetry"
	"gengar/internal/telemetry/span"
)

// ServerConfig shapes one gengard daemon.
type ServerConfig struct {
	// ID is this server's pool ID (the high bits of addresses it homes).
	ID uint16
	// PoolBytes is the exported memory capacity (power of two).
	PoolBytes int64
	// CacheBytes sizes the DRAM buffer arena holding promoted copies of
	// hot objects (power of two); 0 selects 8 MiB.
	CacheBytes int64
	// RingBytes sizes the staging-ring arena backing proxied writes;
	// 0 selects 8 MiB.
	RingBytes int64
	// LockSlots sizes the lock table (power of two); 0 selects 16384.
	LockSlots int
	// DigestEvery is how many data accesses the daemon folds into one
	// server-side hotness digest; 0 selects 64.
	DigestEvery int
	// NoCache disables hotness tracking and DRAM cache promotion.
	NoCache bool
	// Peers are the dial addresses of the other gengard daemons in the
	// cluster. When set (and the cache is on), this daemon joins the
	// distributed DRAM cache: under local arena pressure it spills hot
	// copies into peers' arenas and proxies their hits back over the
	// peer links, and it hosts peers' copies in its own arena in turn.
	Peers []string
	// NoProxy disables staged writes (every write goes straight to the
	// pool).
	NoProxy bool
	// DefaultLease bounds how long a lock grant survives a silent
	// client; 0 selects 5s.
	DefaultLease time.Duration
	// AcquireTimeout bounds how long a lock request waits; 0 selects 2s.
	AcquireTimeout time.Duration
	// Nagle re-enables Nagle's algorithm on accepted connections. The
	// default (false) sets TCP_NODELAY: the wire layer batches frames
	// itself, so kernel-side delay only adds latency.
	Nagle bool
	// KeepAlive is the TCP keep-alive probe period on accepted
	// connections; 0 selects 30s, negative disables probing.
	KeepAlive time.Duration
	// TraceSample opens a server-initiated span on one in every N
	// requests that did not already carry a client trace ID; 0
	// disables local sampling. Client-sampled requests are always
	// traced regardless — the peer decided up front.
	TraceSample int
	// TraceSlow gates the slow-op ring served at /debug/trace: spans
	// at least this slow are retained. 0 retains every sampled span.
	TraceSlow time.Duration
	// FlushAdaptive enables interference-aware flushing: the proxy
	// flushers back off while foreground NVM read latency climbs.
	FlushAdaptive bool
	// FlushMaxLag bounds flush lag under adaptive backoff; 0 selects
	// the proxy default. Ignored unless FlushAdaptive is set.
	FlushMaxLag time.Duration
}

func (c *ServerConfig) fill() error {
	if c.ID == 0 {
		return errors.New("tcpnet: server ID must be nonzero")
	}
	if c.PoolBytes < alloc.MinBlock || c.PoolBytes&(c.PoolBytes-1) != 0 {
		return fmt.Errorf("tcpnet: pool bytes %d not a power of two", c.PoolBytes)
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 8 << 20
	}
	if c.RingBytes == 0 {
		c.RingBytes = 8 << 20
	}
	if c.LockSlots == 0 {
		c.LockSlots = 1 << 14
	}
	if c.DigestEvery == 0 {
		c.DigestEvery = 64
	}
	if c.DefaultLease == 0 {
		c.DefaultLease = 5 * time.Second
	}
	if c.AcquireTimeout == 0 {
		c.AcquireTimeout = 2 * time.Second
	}
	if c.KeepAlive == 0 {
		c.KeepAlive = defaultKeepAlive
	}
	return nil
}

// cluster maps the daemon configuration onto the engine's cluster
// configuration: one server, real feature switches, default media and
// hotness tuning.
func (c *ServerConfig) cluster() config.Cluster {
	cc := config.Default()
	cc.Servers = 1
	cc.NVMBytes = c.PoolBytes
	cc.DRAMBufferBytes = c.CacheBytes
	cc.RingBytes = c.RingBytes
	cc.LockSlots = c.LockSlots
	cc.Features = config.Features{Cache: !c.NoCache, Proxy: !c.NoProxy}
	cc.Proxy.FlushAdaptive = c.FlushAdaptive
	cc.Proxy.FlushMaxLag = c.FlushMaxLag
	return cc
}

// PoolServer is one gengard daemon: a Gengar engine mounted on TCP. It
// serves the paper's full mechanism set server-mediated — reads hit the
// DRAM cache when the object is promoted, writes are acknowledged from
// the staging ring before the asynchronous NVM-model flush, hotness
// epochs run over the daemon's own access observations, and locks are
// leased so crashed clients cannot wedge the pool.
type PoolServer struct {
	cfg ServerConfig
	eng *engine.Engine

	ops      metrics.Counter
	rxBytes  metrics.Counter // payload bytes written into the pool
	txBytes  metrics.Counter // payload bytes read out of the pool
	failures metrics.Counter // requests answered with an error status

	// frames backs every request and response buffer this daemon
	// touches; the flush histograms are wired into each connection's
	// frame queue.
	frames          framePool
	framesPerFlush  *metrics.Histogram
	bytesPerSyscall *metrics.Histogram

	// Per-op instruments resolved once at startup so the request path
	// never does a labeled registry lookup.
	opRequests [maxOpTag]*metrics.Counter
	opLatency  [maxOpTag]*metrics.Histogram

	telem  *telemetry.Registry
	flight *telemetry.FlightRecorder
	tracer *span.Tracer

	// peers are this daemon's links into the distributed DRAM cache;
	// nil when no -peers were configured (or the cache is off).
	peers *peerSet

	mu       sync.Mutex
	lis      net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	sessions atomic.Uint64
	wg       sync.WaitGroup
}

// maxOpTag bounds the per-op instrument caches; op bytes at or above it
// are unknown and rejected before any instrument is touched.
const maxOpTag = int(OpPeerRelease) + 1

// NewPoolServer validates cfg and builds an idle daemon; call Serve.
func NewPoolServer(cfg ServerConfig) (*PoolServer, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	eng, err := engine.New(engine.Config{
		ID:      cfg.ID,
		Name:    fmt.Sprintf("gengard-%d", cfg.ID),
		Cluster: cfg.cluster(),
		Clock:   engine.NewWallClock(),
	})
	if err != nil {
		return nil, fmt.Errorf("tcpnet: %w", err)
	}
	s := &PoolServer{
		cfg:    cfg,
		eng:    eng,
		conns:  make(map[net.Conn]struct{}),
		telem:  telemetry.NewRegistry(),
		flight: telemetry.NewFlightRecorder(telemetry.DefaultFlightEvents),
	}
	sl := telemetry.L("server", fmt.Sprintf("%d", cfg.ID))
	s.telem.RegisterCounter("gengar_tcp_ops_total", "wire requests served", &s.ops, sl)
	s.telem.RegisterCounter("gengar_tcp_rx_bytes_total", "payload bytes written into the pool", &s.rxBytes, sl)
	s.telem.RegisterCounter("gengar_tcp_tx_bytes_total", "payload bytes read out of the pool", &s.txBytes, sl)
	s.telem.RegisterCounter("gengar_tcp_failures_total", "requests answered with an error", &s.failures, sl)
	s.telem.GaugeFunc("gengar_tcp_objects", "live objects homed here", func() int64 {
		return int64(s.eng.Stats().Objects)
	}, sl)
	s.telem.GaugeFunc("gengar_tcp_pool_used_bytes", "pool bytes allocated", s.eng.Pool().AllocatedBytes, sl)
	s.telem.GaugeFunc("gengar_tcp_pool_capacity_bytes", "exported pool size", func() int64 {
		return s.cfg.PoolBytes
	}, sl)
	s.telem.GaugeFunc("gengar_tcp_sessions", "sessions opened since start", func() int64 {
		return int64(s.sessions.Load())
	}, sl)
	s.telem.GaugeFunc("gengar_tcp_open_conns", "currently open connections", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return int64(len(s.conns))
	}, sl)
	// Wire-path instruments: syscall coalescing and frame-pool recycling.
	s.framesPerFlush = s.telem.ValueHistogram("gengar_tcp_frames_per_flush",
		"response frames drained per writev flush", sl)
	s.bytesPerSyscall = s.telem.ValueHistogram("gengar_tcp_bytes_per_syscall",
		"bytes handed to the kernel per response writev", sl)
	s.telem.RegisterCounter("gengar_tcp_frame_pool_hits_total",
		"frame buffers served from the pool", &s.frames.hits, sl)
	s.telem.RegisterCounter("gengar_tcp_frame_pool_misses_total",
		"frame buffers freshly allocated on pool miss", &s.frames.misses, sl)
	// Per-op instruments, resolved once: the request path must not pay
	// a labeled lookup (and its label-sorting allocation) per frame.
	for tag := 1; tag < maxOpTag; tag++ {
		op := telemetry.L("op", Op(tag).String())
		s.opRequests[tag] = s.telem.Counter("gengar_tcp_requests_total",
			"wire requests by kind", sl, op)
		s.opLatency[tag] = s.telem.Histogram("gengar_tcp_request_latency_seconds",
			"wall-clock request handling latency by kind", sl, op)
	}
	// The engine's own counters (promotions, cache hits, proxy staging,
	// ...) under the same names the simulated mount uses, distinguished
	// by the transport label.
	eng.RegisterTelemetry(s.telem, sl, telemetry.L("transport", "tcp"))
	// Placement strategy: a lone daemon keeps promoted copies in its
	// local arena; with peers configured the daemon joins the
	// distributed DRAM cache and may spill copies into their arenas.
	// Peers are indexed by their position in cfg.Peers for telemetry —
	// the stable identity a link has before (and across) connects.
	if len(cfg.Peers) > 0 && !cfg.NoCache {
		s.peers = newPeerSet(cfg.Peers, cfg.ID, &s.frames, cfg.Nagle, cfg.KeepAlive)
		for i, l := range s.peers.links {
			l := l
			pl := telemetry.L("peer", strconv.Itoa(i))
			l.rtt = s.telem.Histogram("gengar_tcp_peer_rtt_seconds",
				"peer-link round-trip latency (placement and copy I/O)", sl, pl)
			s.telem.GaugeFunc("gengar_tcp_peer_spilled_bytes",
				"arena bytes this daemon's copies occupy on the peer", func() int64 {
					return l.spilled.Load()
				}, sl, pl)
			s.telem.GaugeFunc("gengar_tcp_peer_up",
				"whether the peer link is connected", func() int64 {
					if l.live() {
						return 1
					}
					return 0
				}, sl, pl)
		}
		s.telem.GaugeFunc("gengar_tcp_peers_live",
			"peer links currently connected", func() int64 {
				return int64(s.peers.liveCount())
			}, sl)
		eng.SetPlacer(newPeerPlacer(eng, engine.NewLocalPlacer(eng), s.peers))
		s.peers.start()
	} else {
		eng.SetPlacer(engine.NewLocalPlacer(eng))
	}
	// The span tracer: stage timestamps flow through the engine's
	// clock seam (the wall mount's WallClock here), never raw time.Now,
	// so the same marking code traces identically under virtual time.
	s.tracer = span.NewTracer(span.Config{
		Side:          "server",
		SampleEvery:   cfg.TraceSample,
		SlowThreshold: cfg.TraceSlow,
		Clock:         func() int64 { return int64(eng.Now()) },
		Registry:      s.telem,
		Labels:        []telemetry.Label{sl},
	})
	// The flusher persists staged writes after their spans finish, so
	// its stage is observed standalone: staged→applied lag per record.
	eng.Flusher().SetFlushObserver(func(lagNanos int64) {
		s.tracer.ObserveStage("write", span.StageFlushPersist, lagNanos)
	})
	eng.Flusher().SetGateObserver(func(gateNanos int64) {
		s.tracer.ObserveStage("write", span.StageFlushGate, gateNanos)
	})
	return s, nil
}

// Engine returns the daemon's engine, for tests and tooling.
func (s *PoolServer) Engine() *engine.Engine { return s.eng }

// Telemetry returns the daemon's metrics registry (served by gengard's
// debug endpoint).
func (s *PoolServer) Telemetry() *telemetry.Registry { return s.telem }

// Recorder returns the daemon's flight recorder of recent operations.
func (s *PoolServer) Recorder() *telemetry.FlightRecorder { return s.flight }

// Tracer returns the daemon's span tracer (stage quantiles and the
// slow-op ring served by gengard's /debug/trace endpoint).
func (s *PoolServer) Tracer() *span.Tracer { return s.tracer }

// Serve accepts and serves connections on lis until Close. It returns
// nil after a graceful Close and the accept error otherwise.
func (s *PoolServer) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.lis = lis
	s.mu.Unlock()

	for {
		conn, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				s.wg.Wait()
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// Close stops accepting, closes every connection, waits for handlers
// and stops the engine's flusher.
func (s *PoolServer) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	lis := s.lis
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	// Tear the sockets down outside s.mu: Close on a TCP connection can
	// block in the kernel, and handler goroutines need the lock to finish.
	if lis != nil {
		_ = lis.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
	s.eng.Close()
	if s.peers != nil {
		s.peers.close()
	}
}

// session is one connection's server-side state: its lock-session
// identity, its leased staging ring (when proxied writes are on), and
// the access recorder feeding server-side hotness digests.
type session struct {
	id  uint64
	srv *PoolServer

	writer   *proxy.Writer // nil when staging is off or rings ran out
	ringBase int64
	hasRing  bool

	// staged is the session-local hotness buffer: per-op appends only,
	// folded into one engine digest (one sketch-lock acquisition) every
	// DigestEvery accesses. Guarded by stagedMu; per-connection sessions
	// make it effectively uncontended.
	stagedMu sync.Mutex
	staged   []hotness.Obs
}

func (s *PoolServer) openSession() *session {
	sess := &session{id: s.sessions.Add(1), srv: s, staged: make([]hotness.Obs, 0, s.cfg.DigestEvery)}
	if !s.eng.Features().Proxy {
		return sess
	}
	base, err := s.eng.OpenRing()
	if err != nil {
		return sess // rings exhausted: session degrades to direct writes
	}
	slots, slotSize := s.eng.RingGeometry()
	w, err := proxy.NewLocalWriter(s.eng.Flusher(), proxy.Ring{
		ID:       int(sess.id),
		Base:     base,
		DevBase:  base,
		Slots:    slots,
		SlotSize: slotSize,
	})
	if err != nil {
		_ = s.eng.CloseRing(base)
		return sess
	}
	sess.writer, sess.ringBase, sess.hasRing = w, base, true
	return sess
}

func (sess *session) close() {
	if sess.writer != nil {
		sess.writer.Close() // waits for staged records to flush
	}
	if sess.hasRing {
		_ = sess.srv.eng.CloseRing(sess.ringBase)
	}
}

// observe records one data access for hotness identification and lands
// a digest on the engine every DigestEvery accesses — the daemon plays
// the client's digest-reporting role from the simulated mount, since a
// TCP client has no recorder of its own unless it sends OpDigest.
func (sess *session) observe(addr region.GAddr, write bool) {
	if !sess.srv.eng.Features().Cache {
		return
	}
	sess.stagedMu.Lock()
	sess.staged = append(sess.staged, hotness.Obs{Addr: addr, Write: write})
	if len(sess.staged) < sess.srv.cfg.DigestEvery {
		sess.stagedMu.Unlock()
		return
	}
	batch := sess.staged
	sess.staged = make([]hotness.Obs, 0, sess.srv.cfg.DigestEvery)
	sess.stagedMu.Unlock()
	// Aggregation and the digest run outside the staging lock, so a
	// concurrent op only ever waits on the append above.
	eng := sess.srv.eng
	eng.Digest(eng.Now(), hotness.AggregateObs(batch))
}

// serveConn runs one connection: a buffered read loop feeding a
// dedicated writer goroutine (the frame queue) that flushes many
// response frames per writev.
//
// Dispatch rule: ops that cannot park — read, write with ring credit,
// digest, version, stats, malloc, unlock, hello — are handled inline on
// the read goroutine, so the common path spawns nothing. Ops that can
// park (lock acquires waiting out contention, frees draining staged
// writes, writes facing staging-ring backpressure) get a goroutine so
// a parked request never stalls the connection's other traffic.
//
// A response-write failure poisons the frame queue, which severs the
// connection; the read loop then unwinds and tears down the session —
// the daemon never keeps consuming requests whose replies go nowhere.
func (s *PoolServer) serveConn(conn net.Conn) {
	tuneConn(conn, s.cfg.Nagle, s.cfg.KeepAlive)
	sess := s.openSession()
	q := newFrameQueue(conn, &s.frames)
	q.framesPerFlush = s.framesPerFlush
	q.bytesPerSyscall = s.bytesPerSyscall
	r := newFrameReader(conn, &s.frames)
	var reqWG sync.WaitGroup
	defer func() {
		reqWG.Wait() // parked handlers may still enqueue responses
		q.close()    // flush them, then stop the writer goroutine
		sess.close()
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	for {
		id, tag, frame, payload, ext, err := r.read()
		if err != nil {
			return // connection gone (or a poisoned frame)
		}
		op := Op(tag)
		// Span policy: a request carrying a sampled trace extension is
		// always traced (the client decided up front, and its ID makes
		// the two halves stitchable); otherwise local sampling applies.
		var sp *span.Span
		if ext.sampled {
			sp = s.tracer.StartRemote(ext.traceID, op.String())
		} else {
			sp = s.tracer.Start(op.String())
		}
		if parks(sess, op, payload) {
			reqWG.Add(1)
			go func() {
				defer reqWG.Done()
				s.dispatch(sess, q, id, op, frame, payload, sp)
			}()
			continue
		}
		s.dispatch(sess, q, id, op, frame, payload, sp)
	}
}

// parks reports whether an op may block the handling goroutine: lock
// acquires wait out contention, frees drain the session's staged
// writes, and stages park when the ring is out of credits. The credit
// probe is advisory — a concurrent stage can still win the last slot —
// so an inline write may briefly wait on the flusher; that is bounded
// and deadlock-free (the flusher runs independently).
func parks(sess *session, op Op, payload []byte) bool {
	switch op {
	case OpLockEx, OpLockSh, OpFree:
		return true
	case OpWrite:
		return sess.writer != nil && sess.writer.FreeSlots() < 1
	case OpWriteBatch:
		if sess.writer == nil || len(payload) < 4 {
			return false
		}
		return sess.writer.FreeSlots() < int(binary.BigEndian.Uint32(payload))
	}
	return false
}

// dispatch handles one request and enqueues its response frame. It owns
// frame (the pooled request buffer) and recycles it after handling. It
// also owns sp until the response is enqueued, at which point span
// ownership transfers to the frame queue's drain loop — the one place
// that can stamp the writevFlush stage and finish the span.
//
//gengar:hotpath
func (s *PoolServer) dispatch(sess *session, q *frameQueue, id uint64, op Op, frame *[]byte, payload []byte, sp *span.Span) {
	sp.Mark(span.StageQueueWait)
	var req payloadReader
	req.Reset(payload)
	resp, err := s.handle(sess, op, &req, sp)
	s.frames.put(frame)
	if err != nil {
		s.failures.Inc()
		ef, eerr := s.frames.encodeFrame(id, statusErr, []byte(err.Error()))
		if eerr != nil {
			sp.Finish()
			q.fail(eerr)
			return
		}
		_ = q.enqueueTraced(ef, sp)
		return
	}
	if resp == nil {
		resp = s.frames.get(frameHeader)
	}
	if err := stampFrame(resp, id, statusOK); err != nil {
		s.frames.put(resp)
		sp.Finish()
		q.fail(err)
		return
	}
	_ = q.enqueueTraced(resp, sp)
}

// finishResp publishes a payload encoded in place over a pooled frame
// image (header still unstamped — dispatch stamps it with the request
// id and status).
//
//gengar:hotpath
func finishResp(f *[]byte, w *payloadWriter) *[]byte {
	*f = w.Bytes()
	return f
}

// handle serves one request and returns its response as a pooled frame
// with the header reserved and the payload encoded in place, or nil for
// an empty-payload success. Errors travel back as error frames. A
// non-nil sp collects engine-level stage marks; traced ops skip the
// blanket flight-recorder capture, which the span supersedes.
func (s *PoolServer) handle(sess *session, op Op, req *payloadReader, sp *span.Span) (resp *[]byte, err error) {
	if int(op) <= 0 || int(op) >= maxOpTag {
		return nil, fmt.Errorf("tcpnet: unknown op %d", op)
	}
	s.ops.Inc()
	s.opRequests[op].Inc()
	start := time.Now()
	defer func() {
		s.opLatency[op].Record(time.Since(start))
	}()
	switch op {
	case OpHello:
		feat := uint8(featureTrace) // this daemon parses the trace extension
		if s.eng.Features().Cache {
			// A caching daemon also hosts peer copies; the peer-cache bit
			// extends the reply with the arena capacity peers may budget.
			feat |= featureCache | featurePeerCache
		}
		if s.eng.Features().Proxy {
			feat |= featureProxy
		}
		var w payloadWriter
		f := s.frames.newFrame(&w, 19)
		w.U16(s.cfg.ID).I64(s.cfg.PoolBytes).U8(feat)
		if feat&featurePeerCache != 0 {
			w.I64(s.cfg.CacheBytes)
		}
		return finishResp(f, &w), nil

	case OpMalloc:
		size := req.I64()
		if err := req.Err(); err != nil {
			return nil, err
		}
		addr, err := s.eng.Malloc(size)
		if err != nil {
			return nil, err
		}
		var w payloadWriter
		f := s.frames.newFrame(&w, 8)
		w.U64(uint64(addr))
		return finishResp(f, &w), nil

	case OpFree:
		addr, err := s.homeAddr(req)
		if err != nil {
			return nil, err
		}
		// Flush the session's own staged writes first so none of them
		// lands in a recycled allocation later.
		if sess.writer != nil {
			sess.writer.Drain()
		}
		return nil, s.eng.Free(addr)

	case OpRead:
		addr, err := s.homeAddr(req)
		if err != nil {
			return nil, err
		}
		n := int64(req.U32())
		if err := req.Err(); err != nil {
			return nil, err
		}
		if n < 0 || addr.Offset()+n > s.cfg.PoolBytes {
			return nil, fmt.Errorf("tcpnet: read [%d,%d) out of pool", addr.Offset(), addr.Offset()+n)
		}
		// Bound the reply frame up front: a read the pool can satisfy may
		// still not fit a frame, and that must come back as an error frame,
		// not reach stampFrame and sever the whole connection.
		if frameHeader+4+n+1 > maxFrame {
			return nil, fmt.Errorf("tcpnet: read of %d bytes exceeds max frame", n)
		}
		// The reply layout is blob(len u32, data) + source u8; the engine
		// fills the pool bytes directly into the frame that hits the
		// socket — no intermediate payload copy.
		f := s.frames.get(frameHeader + 4 + int(n) + 1)
		b := *f
		binary.BigEndian.PutUint32(b[frameHeader:], uint32(n))
		out := b[frameHeader+4 : frameHeader+4+int(n)]
		sp.Mark(span.StageDispatch)
		_, src, err := s.eng.ReadAt(s.eng.Now(), addr, out)
		if err != nil {
			s.frames.put(f)
			return nil, err
		}
		// Read-your-writes: overlay this session's staged-but-unflushed
		// records, exactly as the RDMA client library does.
		if sess.writer != nil {
			sess.writer.ApplyPending(addr, out)
		}
		b[frameHeader+4+int(n)] = byte(src)
		switch src {
		case engine.ReadHitLocal:
			sp.Mark(span.StageCacheHit)
		case engine.ReadHitPeer:
			sp.Mark(span.StagePeerRead)
		default:
			sp.Mark(span.StageNVMCopy)
		}
		sess.observe(addr, false)
		s.txBytes.Add(n)
		if sp == nil {
			s.flight.Record(telemetry.Event{
				TimeNanos: start.UnixNano(), Op: "read", Addr: uint64(addr),
				Len: int(n), Path: readPath(src), LatNanos: int64(time.Since(start)),
			})
		}
		return f, nil

	case OpWrite:
		addr, err := s.homeAddr(req)
		if err != nil {
			return nil, err
		}
		data := req.Blob()
		if err := req.Err(); err != nil {
			return nil, err
		}
		sp.Mark(span.StageDispatch)
		if err := s.writeOne(sess, addr, data, sp); err != nil {
			return nil, err
		}
		if sp == nil {
			s.flight.Record(telemetry.Event{
				TimeNanos: start.UnixNano(), Op: "write", Addr: uint64(addr),
				Len: len(data), Path: "tcp", LatNanos: int64(time.Since(start)),
			})
		}
		return nil, nil

	case OpWriteBatch:
		n := int(req.U32())
		reqs := make([]proxy.StageReq, 0, n)
		for i := 0; i < n; i++ {
			addr := region.GAddr(req.U64())
			data := req.Blob()
			if err := req.Err(); err != nil {
				return nil, err
			}
			if addr.Server() != s.cfg.ID {
				return nil, fmt.Errorf("tcpnet: %v not homed on server %d", addr, s.cfg.ID)
			}
			if addr.Offset()+int64(len(data)) > s.cfg.PoolBytes {
				return nil, fmt.Errorf("tcpnet: write [%d,%d) out of pool", addr.Offset(), addr.Offset()+int64(len(data)))
			}
			reqs = append(reqs, proxy.StageReq{Addr: addr, NvmOff: addr.Offset(), Data: data})
		}
		sp.Mark(span.StageDispatch)
		if err := s.writeBatch(sess, reqs, sp); err != nil {
			return nil, err
		}
		return nil, nil

	case OpDigest:
		n := int(req.U32())
		entries := make([]hotness.Entry, 0, n)
		for i := 0; i < n; i++ {
			ent := hotness.Entry{
				Addr:   region.GAddr(req.U64()),
				Reads:  uint64(req.U32()),
				Writes: uint64(req.U32()),
			}
			if req.Err() != nil {
				break
			}
			entries = append(entries, ent)
		}
		if err := req.Err(); err != nil {
			return nil, err
		}
		epoch := s.eng.Digest(s.eng.Now(), entries)
		var w payloadWriter
		f := s.frames.newFrame(&w, 8)
		w.U64(epoch)
		return finishResp(f, &w), nil

	case OpVersion:
		addr, err := s.homeAddr(req)
		if err != nil {
			return nil, err
		}
		var w payloadWriter
		f := s.frames.newFrame(&w, 8)
		w.U64(s.eng.Version(addr))
		return finishResp(f, &w), nil

	case OpLockEx, OpLockSh:
		addr, err := s.homeAddr(req)
		if err != nil {
			return nil, err
		}
		lease := time.Duration(req.U32()) * time.Millisecond
		if err := req.Err(); err != nil {
			return nil, err
		}
		if lease <= 0 {
			lease = s.cfg.DefaultLease
		}
		if op == OpLockEx {
			err = s.eng.Leases().LockExclusive(sess.id, addr, lease, s.cfg.AcquireTimeout)
		} else {
			err = s.eng.Leases().LockShared(sess.id, addr, lease, s.cfg.AcquireTimeout)
		}
		sp.Mark(span.StageLockWait)
		return nil, err

	case OpUnlockEx:
		addr, err := s.homeAddr(req)
		if err != nil {
			return nil, err
		}
		return nil, s.eng.Leases().UnlockExclusive(sess.id, addr)

	case OpUnlockSh:
		addr, err := s.homeAddr(req)
		if err != nil {
			return nil, err
		}
		return nil, s.eng.Leases().UnlockShared(sess.id, addr)

	case OpStats:
		st := s.eng.Stats()
		var spilled, live int64
		if s.peers != nil {
			spilled = s.peers.spilledBytes()
			live = int64(s.peers.liveCount())
		}
		var w payloadWriter
		f := s.frames.newFrame(&w, 22*8)
		w.I64(int64(st.Objects)).I64(st.PoolUsed).I64(s.ops.Load()).
			I64(st.Hits).I64(st.Misses).
			I64(st.Proxy.Staged).I64(st.Proxy.Flushed).
			I64(st.Promotions).I64(st.Demotions).I64(int64(st.Promoted)).
			I64(st.Digests).U64(st.RemapEpoch).
			I64(st.PeerHits).I64(st.PeerErrors).
			I64(int64(st.HostedCopies)).I64(st.HostedBytes).
			I64(spilled).I64(live).
			I64(st.Proxy.BytesFlushed).I64(st.Proxy.NVMWrites).
			I64(st.Proxy.Coalesced).I64(st.Proxy.BackoffLevel)
		return finishResp(f, &w), nil

	case OpPeerPlace:
		gen := req.U64()
		size := req.I64()
		if err := req.Err(); err != nil {
			return nil, err
		}
		if !s.eng.Features().Cache {
			return nil, errors.New("tcpnet: peer placement refused: cache disabled")
		}
		off, err := s.eng.HostCopy(gen, size)
		if err != nil {
			return nil, err
		}
		var w payloadWriter
		f := s.frames.newFrame(&w, 8)
		w.I64(off)
		return finishResp(f, &w), nil

	case OpPeerInstall:
		off := req.I64()
		gen := req.U64()
		data := req.Blob()
		if err := req.Err(); err != nil {
			return nil, err
		}
		return nil, s.eng.HostedInstall(s.eng.Now(), off, gen, data)

	case OpPeerWrite:
		off := req.I64()
		gen := req.U64()
		delta := req.I64()
		data := req.Blob()
		if err := req.Err(); err != nil {
			return nil, err
		}
		return nil, s.eng.HostedWrite(s.eng.Now(), off, gen, delta, data)

	case OpPeerRead:
		off := req.I64()
		gen := req.U64()
		delta := req.I64()
		n := int64(req.U32())
		if err := req.Err(); err != nil {
			return nil, err
		}
		if n < 0 || frameHeader+4+n > maxFrame {
			return nil, fmt.Errorf("tcpnet: peer read of %d bytes exceeds max frame", n)
		}
		// Like OpRead: the hosted copy's bytes land directly in the reply
		// frame, generation-checked against the hosted-copy table first.
		f := s.frames.get(frameHeader + 4 + int(n))
		b := *f
		binary.BigEndian.PutUint32(b[frameHeader:], uint32(n))
		if err := s.eng.HostedRead(s.eng.Now(), off, gen, delta, b[frameHeader+4:frameHeader+4+int(n)]); err != nil {
			s.frames.put(f)
			return nil, err
		}
		s.txBytes.Add(n)
		return f, nil

	case OpPeerRelease:
		off := req.I64()
		gen := req.U64()
		if err := req.Err(); err != nil {
			return nil, err
		}
		return nil, s.eng.HostedRelease(off, gen)

	default:
		return nil, fmt.Errorf("tcpnet: unknown op %d", op)
	}
}

// writeOne lands one write: staged into the session's ring (acknowledged
// before the NVM flush, like the paper's proxied writes) when it fits,
// written through to the pool otherwise. The span stage tells the two
// apart: ringStage covers staging (including any credit backpressure
// wait), flushPersist covers an inline write-through.
func (s *PoolServer) writeOne(sess *session, addr region.GAddr, data []byte, sp *span.Span) error {
	if addr.Offset()+int64(len(data)) > s.cfg.PoolBytes {
		return fmt.Errorf("tcpnet: write [%d,%d) out of pool", addr.Offset(), addr.Offset()+int64(len(data)))
	}
	at := s.eng.Now()
	var err error
	if sess.writer != nil && len(data) <= sess.writer.Ring().MaxPayload() {
		_, err = sess.writer.Stage(at, addr, addr.Offset(), data)
		sp.Mark(span.StageRingStage)
	} else {
		_, err = s.eng.WriteNVM(at, addr, data)
		sp.Mark(span.StageFlushPersist)
	}
	if err != nil {
		return err
	}
	sess.observe(addr, true)
	s.rxBytes.Add(int64(len(data)))
	return nil
}

// writeBatch lands a batched write chain. When every record fits the
// ring it stages the whole chain at once (the TCP analogue of the
// doorbell-batched WRITE chain); otherwise records land one by one.
func (s *PoolServer) writeBatch(sess *session, reqs []proxy.StageReq, sp *span.Span) error {
	allFit := sess.writer != nil
	if sess.writer != nil {
		maxPayload := sess.writer.Ring().MaxPayload()
		for _, r := range reqs {
			if len(r.Data) > maxPayload {
				allFit = false
				break
			}
		}
	}
	if allFit && len(reqs) > 0 {
		if _, err := sess.writer.StageMulti(s.eng.Now(), reqs); err != nil {
			return err
		}
		sp.Mark(span.StageRingStage)
		for _, r := range reqs {
			sess.observe(r.Addr, true)
			s.rxBytes.Add(int64(len(r.Data)))
		}
		return nil
	}
	for _, r := range reqs {
		if err := s.writeOne(sess, r.Addr, r.Data, sp); err != nil {
			return err
		}
	}
	return nil
}

func readPath(src engine.ReadSource) string {
	switch src {
	case engine.ReadHitLocal:
		return "tcp/cache"
	case engine.ReadHitPeer:
		return "tcp/peer"
	default:
		return "tcp/nvm"
	}
}

// homeAddr decodes an address operand and checks it is homed here.
func (s *PoolServer) homeAddr(req *payloadReader) (region.GAddr, error) {
	addr := region.GAddr(req.U64())
	if err := req.Err(); err != nil {
		return region.NilGAddr, err
	}
	if addr.Server() != s.cfg.ID {
		return region.NilGAddr, fmt.Errorf("tcpnet: %v not homed on server %d", addr, s.cfg.ID)
	}
	return addr, nil
}
