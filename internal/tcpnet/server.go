package tcpnet

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"gengar/internal/alloc"
	"gengar/internal/config"
	"gengar/internal/engine"
	"gengar/internal/hotness"
	"gengar/internal/metrics"
	"gengar/internal/proxy"
	"gengar/internal/region"
	"gengar/internal/telemetry"
)

// ServerConfig shapes one gengard daemon.
type ServerConfig struct {
	// ID is this server's pool ID (the high bits of addresses it homes).
	ID uint16
	// PoolBytes is the exported memory capacity (power of two).
	PoolBytes int64
	// CacheBytes sizes the DRAM buffer arena holding promoted copies of
	// hot objects (power of two); 0 selects 8 MiB.
	CacheBytes int64
	// RingBytes sizes the staging-ring arena backing proxied writes;
	// 0 selects 8 MiB.
	RingBytes int64
	// LockSlots sizes the lock table (power of two); 0 selects 16384.
	LockSlots int
	// DigestEvery is how many data accesses the daemon folds into one
	// server-side hotness digest; 0 selects 64.
	DigestEvery int
	// NoCache disables hotness tracking and DRAM cache promotion.
	NoCache bool
	// NoProxy disables staged writes (every write goes straight to the
	// pool).
	NoProxy bool
	// DefaultLease bounds how long a lock grant survives a silent
	// client; 0 selects 5s.
	DefaultLease time.Duration
	// AcquireTimeout bounds how long a lock request waits; 0 selects 2s.
	AcquireTimeout time.Duration
}

func (c *ServerConfig) fill() error {
	if c.ID == 0 {
		return errors.New("tcpnet: server ID must be nonzero")
	}
	if c.PoolBytes < alloc.MinBlock || c.PoolBytes&(c.PoolBytes-1) != 0 {
		return fmt.Errorf("tcpnet: pool bytes %d not a power of two", c.PoolBytes)
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 8 << 20
	}
	if c.RingBytes == 0 {
		c.RingBytes = 8 << 20
	}
	if c.LockSlots == 0 {
		c.LockSlots = 1 << 14
	}
	if c.DigestEvery == 0 {
		c.DigestEvery = 64
	}
	if c.DefaultLease == 0 {
		c.DefaultLease = 5 * time.Second
	}
	if c.AcquireTimeout == 0 {
		c.AcquireTimeout = 2 * time.Second
	}
	return nil
}

// cluster maps the daemon configuration onto the engine's cluster
// configuration: one server, real feature switches, default media and
// hotness tuning.
func (c *ServerConfig) cluster() config.Cluster {
	cc := config.Default()
	cc.Servers = 1
	cc.NVMBytes = c.PoolBytes
	cc.DRAMBufferBytes = c.CacheBytes
	cc.RingBytes = c.RingBytes
	cc.LockSlots = c.LockSlots
	cc.Features = config.Features{Cache: !c.NoCache, Proxy: !c.NoProxy}
	return cc
}

// PoolServer is one gengard daemon: a Gengar engine mounted on TCP. It
// serves the paper's full mechanism set server-mediated — reads hit the
// DRAM cache when the object is promoted, writes are acknowledged from
// the staging ring before the asynchronous NVM-model flush, hotness
// epochs run over the daemon's own access observations, and locks are
// leased so crashed clients cannot wedge the pool.
type PoolServer struct {
	cfg ServerConfig
	eng *engine.Engine

	ops      metrics.Counter
	rxBytes  metrics.Counter // payload bytes written into the pool
	txBytes  metrics.Counter // payload bytes read out of the pool
	failures metrics.Counter // requests answered with an error status

	telem  *telemetry.Registry
	flight *telemetry.FlightRecorder

	mu       sync.Mutex
	lis      net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	sessions atomic.Uint64
	wg       sync.WaitGroup
}

// NewPoolServer validates cfg and builds an idle daemon; call Serve.
func NewPoolServer(cfg ServerConfig) (*PoolServer, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	eng, err := engine.New(engine.Config{
		ID:      cfg.ID,
		Name:    fmt.Sprintf("gengard-%d", cfg.ID),
		Cluster: cfg.cluster(),
		Clock:   engine.NewWallClock(),
	})
	if err != nil {
		return nil, fmt.Errorf("tcpnet: %w", err)
	}
	// Single daemon, no mesh: promoted copies live in the local arena.
	eng.SetPlacer(engine.NewLocalPlacer(eng))

	s := &PoolServer{
		cfg:    cfg,
		eng:    eng,
		conns:  make(map[net.Conn]struct{}),
		telem:  telemetry.NewRegistry(),
		flight: telemetry.NewFlightRecorder(telemetry.DefaultFlightEvents),
	}
	sl := telemetry.L("server", fmt.Sprintf("%d", cfg.ID))
	s.telem.RegisterCounter("gengar_tcp_ops_total", "wire requests served", &s.ops, sl)
	s.telem.RegisterCounter("gengar_tcp_rx_bytes_total", "payload bytes written into the pool", &s.rxBytes, sl)
	s.telem.RegisterCounter("gengar_tcp_tx_bytes_total", "payload bytes read out of the pool", &s.txBytes, sl)
	s.telem.RegisterCounter("gengar_tcp_failures_total", "requests answered with an error", &s.failures, sl)
	s.telem.GaugeFunc("gengar_tcp_objects", "live objects homed here", func() int64 {
		return int64(s.eng.Stats().Objects)
	}, sl)
	s.telem.GaugeFunc("gengar_tcp_pool_used_bytes", "pool bytes allocated", s.eng.Pool().AllocatedBytes, sl)
	s.telem.GaugeFunc("gengar_tcp_pool_capacity_bytes", "exported pool size", func() int64 {
		return s.cfg.PoolBytes
	}, sl)
	s.telem.GaugeFunc("gengar_tcp_sessions", "sessions opened since start", func() int64 {
		return int64(s.sessions.Load())
	}, sl)
	s.telem.GaugeFunc("gengar_tcp_open_conns", "currently open connections", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return int64(len(s.conns))
	}, sl)
	// The engine's own counters (promotions, cache hits, proxy staging,
	// ...) under the same names the simulated mount uses, distinguished
	// by the transport label.
	eng.RegisterTelemetry(s.telem, sl, telemetry.L("transport", "tcp"))
	return s, nil
}

// Engine returns the daemon's engine, for tests and tooling.
func (s *PoolServer) Engine() *engine.Engine { return s.eng }

// Telemetry returns the daemon's metrics registry (served by gengard's
// debug endpoint).
func (s *PoolServer) Telemetry() *telemetry.Registry { return s.telem }

// Recorder returns the daemon's flight recorder of recent operations.
func (s *PoolServer) Recorder() *telemetry.FlightRecorder { return s.flight }

// Serve accepts and serves connections on lis until Close. It returns
// nil after a graceful Close and the accept error otherwise.
func (s *PoolServer) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.lis = lis
	s.mu.Unlock()

	for {
		conn, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				s.wg.Wait()
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// Close stops accepting, closes every connection, waits for handlers
// and stops the engine's flusher.
func (s *PoolServer) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	lis := s.lis
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	// Tear the sockets down outside s.mu: Close on a TCP connection can
	// block in the kernel, and handler goroutines need the lock to finish.
	if lis != nil {
		_ = lis.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
	s.eng.Close()
}

// session is one connection's server-side state: its lock-session
// identity, its leased staging ring (when proxied writes are on), and
// the access recorder feeding server-side hotness digests.
type session struct {
	id  uint64
	srv *PoolServer

	writer   *proxy.Writer // nil when staging is off or rings ran out
	ringBase int64
	hasRing  bool

	recMu       sync.Mutex
	rec         *hotness.Recorder
	sinceDigest int
}

func (s *PoolServer) openSession() *session {
	sess := &session{id: s.sessions.Add(1), srv: s, rec: hotness.NewRecorder()}
	if !s.eng.Features().Proxy {
		return sess
	}
	base, err := s.eng.OpenRing()
	if err != nil {
		return sess // rings exhausted: session degrades to direct writes
	}
	slots, slotSize := s.eng.RingGeometry()
	w, err := proxy.NewLocalWriter(s.eng.Flusher(), proxy.Ring{
		ID:       int(sess.id),
		Base:     base,
		DevBase:  base,
		Slots:    slots,
		SlotSize: slotSize,
	})
	if err != nil {
		_ = s.eng.CloseRing(base)
		return sess
	}
	sess.writer, sess.ringBase, sess.hasRing = w, base, true
	return sess
}

func (sess *session) close() {
	if sess.writer != nil {
		sess.writer.Close() // waits for staged records to flush
	}
	if sess.hasRing {
		_ = sess.srv.eng.CloseRing(sess.ringBase)
	}
}

// observe records one data access for hotness identification and lands
// a digest on the engine every DigestEvery accesses — the daemon plays
// the client's digest-reporting role from the simulated mount, since a
// TCP client has no recorder of its own unless it sends OpDigest.
func (sess *session) observe(addr region.GAddr, write bool) {
	if !sess.srv.eng.Features().Cache {
		return
	}
	sess.recMu.Lock()
	if write {
		sess.rec.RecordWrite(addr)
	} else {
		sess.rec.RecordRead(addr)
	}
	sess.sinceDigest++
	if sess.sinceDigest < sess.srv.cfg.DigestEvery {
		sess.recMu.Unlock()
		return
	}
	entries := sess.rec.Drain()
	sess.sinceDigest = 0
	sess.recMu.Unlock()
	eng := sess.srv.eng
	eng.Digest(eng.Now(), entries)
}

func (s *PoolServer) serveConn(conn net.Conn) {
	sess := s.openSession()
	var writeMu sync.Mutex
	var reqWG sync.WaitGroup
	defer func() {
		reqWG.Wait()
		sess.close()
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	for {
		id, tag, payload, err := readFrame(conn)
		if err != nil {
			return // connection gone
		}
		reqWG.Add(1)
		go func() {
			defer reqWG.Done()
			resp, herr := s.handle(sess, Op(tag), newPayloadReader(payload))
			writeMu.Lock()
			defer writeMu.Unlock()
			if herr != nil {
				s.failures.Inc()
				_ = writeFrame(conn, id, statusErr, []byte(herr.Error()))
				return
			}
			_ = writeFrame(conn, id, statusOK, resp)
		}()
	}
}

func (s *PoolServer) handle(sess *session, op Op, req *payloadReader) (resp []byte, err error) {
	s.ops.Inc()
	s.telem.Counter("gengar_tcp_requests_total", "wire requests by kind",
		telemetry.L("op", op.String())).Inc()
	start := time.Now()
	defer func() {
		s.telem.Histogram("gengar_tcp_request_latency_seconds",
			"wall-clock request handling latency by kind",
			telemetry.L("op", op.String())).Record(time.Since(start))
	}()
	switch op {
	case OpHello:
		var feat uint8
		if s.eng.Features().Cache {
			feat |= featureCache
		}
		if s.eng.Features().Proxy {
			feat |= featureProxy
		}
		var w payloadWriter
		w.U16(s.cfg.ID).I64(s.cfg.PoolBytes).U8(feat)
		return w.Bytes(), nil

	case OpMalloc:
		size := req.I64()
		if err := req.Err(); err != nil {
			return nil, err
		}
		addr, err := s.eng.Malloc(size)
		if err != nil {
			return nil, err
		}
		var w payloadWriter
		w.U64(uint64(addr))
		return w.Bytes(), nil

	case OpFree:
		addr, err := s.homeAddr(req)
		if err != nil {
			return nil, err
		}
		// Flush the session's own staged writes first so none of them
		// lands in a recycled allocation later.
		if sess.writer != nil {
			sess.writer.Drain()
		}
		return nil, s.eng.Free(addr)

	case OpRead:
		addr, err := s.homeAddr(req)
		if err != nil {
			return nil, err
		}
		n := int64(req.U32())
		if err := req.Err(); err != nil {
			return nil, err
		}
		if n < 0 || addr.Offset()+n > s.cfg.PoolBytes {
			return nil, fmt.Errorf("tcpnet: read [%d,%d) out of pool", addr.Offset(), addr.Offset()+n)
		}
		out := make([]byte, n)
		_, hit, err := s.eng.ReadAt(s.eng.Now(), addr, out)
		if err != nil {
			return nil, err
		}
		// Read-your-writes: overlay this session's staged-but-unflushed
		// records, exactly as the RDMA client library does.
		if sess.writer != nil {
			sess.writer.ApplyPending(addr, out)
		}
		sess.observe(addr, false)
		s.txBytes.Add(n)
		s.flight.Record(telemetry.Event{
			TimeNanos: start.UnixNano(), Op: "read", Addr: uint64(addr),
			Len: int(n), Path: readPath(hit), LatNanos: int64(time.Since(start)),
		})
		var w payloadWriter
		w.Blob(out)
		if hit {
			w.U8(1)
		} else {
			w.U8(0)
		}
		return w.Bytes(), nil

	case OpWrite:
		addr, err := s.homeAddr(req)
		if err != nil {
			return nil, err
		}
		data := req.Blob()
		if err := req.Err(); err != nil {
			return nil, err
		}
		if err := s.writeOne(sess, addr, data); err != nil {
			return nil, err
		}
		s.flight.Record(telemetry.Event{
			TimeNanos: start.UnixNano(), Op: "write", Addr: uint64(addr),
			Len: len(data), Path: "tcp", LatNanos: int64(time.Since(start)),
		})
		return nil, nil

	case OpWriteBatch:
		n := int(req.U32())
		reqs := make([]proxy.StageReq, 0, n)
		for i := 0; i < n; i++ {
			addr := region.GAddr(req.U64())
			data := req.Blob()
			if err := req.Err(); err != nil {
				return nil, err
			}
			if addr.Server() != s.cfg.ID {
				return nil, fmt.Errorf("tcpnet: %v not homed on server %d", addr, s.cfg.ID)
			}
			if addr.Offset()+int64(len(data)) > s.cfg.PoolBytes {
				return nil, fmt.Errorf("tcpnet: write [%d,%d) out of pool", addr.Offset(), addr.Offset()+int64(len(data)))
			}
			reqs = append(reqs, proxy.StageReq{Addr: addr, NvmOff: addr.Offset(), Data: data})
		}
		if err := s.writeBatch(sess, reqs); err != nil {
			return nil, err
		}
		return nil, nil

	case OpDigest:
		n := int(req.U32())
		entries := make([]hotness.Entry, 0, n)
		for i := 0; i < n; i++ {
			ent := hotness.Entry{
				Addr:   region.GAddr(req.U64()),
				Reads:  uint64(req.U32()),
				Writes: uint64(req.U32()),
			}
			if req.Err() != nil {
				break
			}
			entries = append(entries, ent)
		}
		if err := req.Err(); err != nil {
			return nil, err
		}
		epoch := s.eng.Digest(s.eng.Now(), entries)
		var w payloadWriter
		w.U64(epoch)
		return w.Bytes(), nil

	case OpVersion:
		addr, err := s.homeAddr(req)
		if err != nil {
			return nil, err
		}
		var w payloadWriter
		w.U64(s.eng.Version(addr))
		return w.Bytes(), nil

	case OpLockEx, OpLockSh:
		addr, err := s.homeAddr(req)
		if err != nil {
			return nil, err
		}
		lease := time.Duration(req.U32()) * time.Millisecond
		if err := req.Err(); err != nil {
			return nil, err
		}
		if lease <= 0 {
			lease = s.cfg.DefaultLease
		}
		if op == OpLockEx {
			return nil, s.eng.Leases().LockExclusive(sess.id, addr, lease, s.cfg.AcquireTimeout)
		}
		return nil, s.eng.Leases().LockShared(sess.id, addr, lease, s.cfg.AcquireTimeout)

	case OpUnlockEx:
		addr, err := s.homeAddr(req)
		if err != nil {
			return nil, err
		}
		return nil, s.eng.Leases().UnlockExclusive(sess.id, addr)

	case OpUnlockSh:
		addr, err := s.homeAddr(req)
		if err != nil {
			return nil, err
		}
		return nil, s.eng.Leases().UnlockShared(sess.id, addr)

	case OpStats:
		st := s.eng.Stats()
		var w payloadWriter
		w.I64(int64(st.Objects)).I64(st.PoolUsed).I64(s.ops.Load()).
			I64(st.Hits).I64(st.Misses).
			I64(st.Proxy.Staged).I64(st.Proxy.Flushed).
			I64(st.Promotions).I64(st.Demotions).I64(int64(st.Promoted)).
			I64(st.Digests).U64(st.RemapEpoch)
		return w.Bytes(), nil

	default:
		return nil, fmt.Errorf("tcpnet: unknown op %d", op)
	}
}

// writeOne lands one write: staged into the session's ring (acknowledged
// before the NVM flush, like the paper's proxied writes) when it fits,
// written through to the pool otherwise.
func (s *PoolServer) writeOne(sess *session, addr region.GAddr, data []byte) error {
	if addr.Offset()+int64(len(data)) > s.cfg.PoolBytes {
		return fmt.Errorf("tcpnet: write [%d,%d) out of pool", addr.Offset(), addr.Offset()+int64(len(data)))
	}
	at := s.eng.Now()
	var err error
	if sess.writer != nil && len(data) <= sess.writer.Ring().MaxPayload() {
		_, err = sess.writer.Stage(at, addr, addr.Offset(), data)
	} else {
		_, err = s.eng.WriteNVM(at, addr, data)
	}
	if err != nil {
		return err
	}
	sess.observe(addr, true)
	s.rxBytes.Add(int64(len(data)))
	return nil
}

// writeBatch lands a batched write chain. When every record fits the
// ring it stages the whole chain at once (the TCP analogue of the
// doorbell-batched WRITE chain); otherwise records land one by one.
func (s *PoolServer) writeBatch(sess *session, reqs []proxy.StageReq) error {
	allFit := sess.writer != nil
	if sess.writer != nil {
		maxPayload := sess.writer.Ring().MaxPayload()
		for _, r := range reqs {
			if len(r.Data) > maxPayload {
				allFit = false
				break
			}
		}
	}
	if allFit && len(reqs) > 0 {
		if _, err := sess.writer.StageMulti(s.eng.Now(), reqs); err != nil {
			return err
		}
		for _, r := range reqs {
			sess.observe(r.Addr, true)
			s.rxBytes.Add(int64(len(r.Data)))
		}
		return nil
	}
	for _, r := range reqs {
		if err := s.writeOne(sess, r.Addr, r.Data); err != nil {
			return err
		}
	}
	return nil
}

func readPath(hit bool) string {
	if hit {
		return "tcp/cache"
	}
	return "tcp/nvm"
}

// homeAddr decodes an address operand and checks it is homed here.
func (s *PoolServer) homeAddr(req *payloadReader) (region.GAddr, error) {
	addr := region.GAddr(req.U64())
	if err := req.Err(); err != nil {
		return region.NilGAddr, err
	}
	if addr.Server() != s.cfg.ID {
		return region.NilGAddr, fmt.Errorf("tcpnet: %v not homed on server %d", addr, s.cfg.ID)
	}
	return addr, nil
}
