package tcpnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"gengar/internal/metrics"
)

// gatedConn wraps a net.Conn so tests can stall and fail its write
// side independently of the (still healthy) read side.
type gatedConn struct {
	net.Conn
	mu       sync.Mutex
	gate     chan struct{} // non-nil: writes block here first
	writeErr error         // non-nil: writes fail with this
}

func (c *gatedConn) Write(b []byte) (int, error) {
	c.mu.Lock()
	gate, werr := c.gate, c.writeErr
	c.mu.Unlock()
	if gate != nil {
		<-gate
	}
	if werr != nil {
		return 0, werr
	}
	return c.Conn.Write(b)
}

func (c *gatedConn) setWriteErr(err error) {
	c.mu.Lock()
	c.writeErr = err
	c.mu.Unlock()
}

// TestFlushCoalescing drives the frame queue through a stalled first
// write and checks that frames enqueued during the stall leave as one
// batch — the writev coalescing the wire path is built around.
func TestFlushCoalescing(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c2.Close()
	gate := make(chan struct{})
	gc := &gatedConn{Conn: c1, gate: gate}

	var pool framePool
	q := newFrameQueue(gc, &pool)
	q.framesPerFlush = new(metrics.Histogram)
	q.bytesPerSyscall = new(metrics.Histogram)

	// Drain everything the queue writes so the pipe never backs up once
	// the gate opens.
	drained := make(chan int)
	go func() {
		n, _ := io.Copy(io.Discard, c2)
		drained <- int(n)
	}()

	// First frame occupies the writer goroutine at the gate; the next
	// three pile up in the queue and must flush together.
	var total int
	for i := 0; i < 4; i++ {
		f, err := pool.encodeFrame(uint64(i+1), statusOK, []byte("response"))
		if err != nil {
			t.Fatal(err)
		}
		total += len(*f)
		if err := q.enqueue(f); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			// Give the writer goroutine time to reach the gate so the
			// remaining frames land in the same pending batch.
			time.Sleep(10 * time.Millisecond)
		}
	}
	close(gate)
	q.close()
	_ = gc.Close()
	if got := <-drained; got != total {
		t.Fatalf("receiver got %d bytes, want %d", got, total)
	}
	if int64(q.framesPerFlush.Max()) < 3 {
		t.Fatalf("max frames per flush = %d, want >= 3 (no coalescing)", q.framesPerFlush.Max())
	}
	if q.framesPerFlush.Count() < 1 || q.bytesPerSyscall.Count() < 1 {
		t.Fatal("flush histograms never observed")
	}
}

// TestAbortDrainsClaimedWaiter covers the start/failAll race: when a
// request's send fails because the connection died, failAll may already
// have claimed its id and sent a failure into the waiter channel. The
// abort path must drain that message before the channel returns to the
// pool — re-pooling it buffered hands the stale response (or another
// request's payload) to a future caller.
func TestAbortDrainsClaimedWaiter(t *testing.T) {
	var pool framePool
	sc := &serverConn{frames: &pool, pending: make(map[uint64]chan response)}

	// Uncontended path: the id is still pending; abort unregisters it
	// and the empty channel is safe to pool.
	ch := make(chan response, 1)
	sc.pending[1] = ch
	sc.abort(1, ch)
	if _, live := sc.pending[1]; live {
		t.Fatal("abort left the waiter registered")
	}
	select {
	case <-ch:
		t.Fatal("abort of a still-pending id produced a message")
	default:
	}

	// Raced path: failAll (or demux) claimed the id first and delivered
	// a response carrying a pooled frame. Abort must consume it so the
	// channel is empty — and the frame recycled — before re-pooling.
	ch = make(chan response, 1)
	f := pool.get(32)
	ch <- response{frame: f, payload: (*f)[:0]}
	sc.abort(2, ch)
	select {
	case <-ch:
		t.Fatal("abort left the claimed response buffered in the channel")
	default:
	}
}

// TestOversizedReadKeepsConnAlive covers the regression where an OpRead
// whose reply could not fit a frame only failed at stampFrame, which
// poisoned the frame queue and severed the connection. A read the pool
// can satisfy but the wire cannot must come back as an ordinary error
// frame on a connection that keeps serving.
func TestOversizedReadKeepsConnAlive(t *testing.T) {
	addrs := startServers(t, 1, func(c *ServerConfig) { c.PoolBytes = 32 << 20 })
	p := dialPool(t, addrs)

	a, err := p.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := p.conn(a)
	if err != nil {
		t.Fatal(err)
	}

	// Reply frame would be frameHeader+4+n+1 = maxFrame+1 bytes.
	big := make([]byte, maxFrame-frameHeader-4)
	err = p.Read(a, big)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("oversized read: got %v, want RemoteError", err)
	}
	if sc.dead() {
		t.Fatal("oversized read severed the connection")
	}
	if err := p.Read(a, make([]byte, 64)); err != nil {
		t.Fatalf("follow-up read on the same connection: %v", err)
	}
}

// TestFramePoolDropsOversized checks that exact-size allocations above
// the largest class are dropped on release rather than donated to the
// 1 MiB class, where they would be pinned behind ~1 MiB requests.
func TestFramePoolDropsOversized(t *testing.T) {
	var p framePool
	big := make([]byte, 2<<20)
	p.put(&big)
	largest := frameClasses[len(frameClasses)-1]
	if f, ok := p.classes[len(frameClasses)-1].Get().(*[]byte); ok && f != nil && cap(*f) > largest {
		t.Fatalf("oversized buffer (cap %d) donated to the %d class", cap(*f), largest)
	}

	// A buffer of exactly the largest class still recycles. Under the
	// race detector sync.Pool drops a quarter of puts on purpose, so
	// retry until a put sticks rather than asserting on a single cycle.
	before := p.hits.Load()
	recycled := false
	for i := 0; i < 50 && !recycled; i++ {
		exact := make([]byte, largest)
		p.put(&exact)
		p.put(p.get(largest))
		recycled = p.hits.Load() > before
	}
	if !recycled {
		t.Fatal("largest-class buffer was not recycled")
	}
}

// TestReadMultiRoundtrip pipelines a batch of reads spanning servers
// and verifies every buffer lands, including the error path: a read of
// a never-allocated address fails without losing the batch's other
// responses.
func TestReadMultiRoundtrip(t *testing.T) {
	addrs := startServers(t, 3, nil)
	p := dialPool(t, addrs)

	const k = 12
	var writes []WriteReq
	for i := 0; i < k; i++ {
		a, err := p.Malloc(512)
		if err != nil {
			t.Fatal(err)
		}
		writes = append(writes, WriteReq{Addr: a, Data: bytes.Repeat([]byte{byte(i + 1)}, 512)})
	}
	if err := p.WriteMulti(writes); err != nil {
		t.Fatal(err)
	}
	reads := make([]ReadReq, k)
	for i := range reads {
		reads[i] = ReadReq{Addr: writes[i].Addr, Buf: make([]byte, 512)}
	}
	if err := p.ReadMulti(reads); err != nil {
		t.Fatal(err)
	}
	for i := range reads {
		if !bytes.Equal(reads[i].Buf, writes[i].Data) {
			t.Fatalf("record %d mismatch", i)
		}
	}

	// One bad address mid-batch: the call reports the failure, and the
	// good records still fill.
	for i := range reads {
		reads[i].Buf = make([]byte, 512)
	}
	bad := reads
	bad[k/2].Addr = writes[k/2].Addr + 1<<30
	if err := p.ReadMulti(bad); err == nil {
		t.Fatal("ReadMulti with an unmapped address succeeded")
	}
	if !bytes.Equal(bad[0].Buf, writes[0].Data) || !bytes.Equal(bad[k-1].Buf, writes[k-1].Data) {
		t.Fatal("good records lost alongside the failed one")
	}
}

// TestWriteFailureTearsDownConn covers the regression where a response
// write error was ignored and the daemon kept consuming requests whose
// replies went nowhere. A write failure must sever the connection and
// unwind the session even though the read side is still healthy.
func TestWriteFailureTearsDownConn(t *testing.T) {
	srv, err := NewPoolServer(ServerConfig{ID: 1, PoolBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c1, c2 := net.Pipe()
	defer c2.Close()
	gc := &gatedConn{Conn: c1}
	done := make(chan struct{})
	go func() {
		srv.serveConn(gc)
		close(done)
	}()

	var pool framePool
	r := newFrameReader(c2, &pool)
	hello, _ := pool.encodeFrame(1, uint8(OpHello), nil)
	if _, err := c2.Write(*hello); err != nil {
		t.Fatal(err)
	}
	if _, tag, frame, _, _, err := r.read(); err != nil || tag != statusOK {
		t.Fatalf("hello: tag=%d err=%v", tag, err)
	} else {
		pool.put(frame)
	}

	// Break the write side only, then issue a request. The response
	// write fails, which must tear the whole connection down.
	gc.setWriteErr(errors.New("injected write failure"))
	var w payloadWriter
	req := pool.newFrame(&w, 8)
	w.I64(64)
	if err := encodeFrameInto(req, &w, 2, uint8(OpMalloc)); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Write(*req); err != nil {
		t.Fatal(err)
	}

	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("server kept the connection alive after a response-write failure")
	}
}
