package tcpnet

import (
	"testing"

	"gengar/internal/config"
	"gengar/internal/engine"
	"gengar/internal/engine/placertest"
)

// TestPeerPlacerConformance runs the shared Placer conformance suite
// against the peer-spilling placer, with a real gengard daemon on
// loopback as the holder. The home engine's arena is a single block
// smaller than one conformance copy's footprint, so every placement is
// forced through the peer arm — the suite's lifecycle, staleness, and
// torn-read checks all exercise the wire ops and the holder-side
// generation check rather than the local seqlock fast path.
func TestPeerPlacerConformance(t *testing.T) {
	placertest.Run(t, func(t *testing.T) engine.Placer {
		peerAddrs := startServers(t, 1, func(c *ServerConfig) { c.ID = 9 })

		cfg := config.Default()
		cfg.Servers = 1
		// Smaller than one CopySize copy with its header: local placement
		// always fails, so the placer must spill.
		cfg.DRAMBufferBytes = placertest.CopySize
		eng, err := engine.New(engine.Config{ID: 1, Name: "gengard-1", Cluster: cfg, Clock: engine.NewWallClock()})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(eng.Close)

		var frames framePool
		ps := newPeerSet(peerAddrs, 1, &frames, false, defaultKeepAlive)
		t.Cleanup(ps.close)
		// Dial eagerly so the link's node name is known before the first
		// placement (production daemons do this via the background watch).
		if _, err := ps.links[0].get(); err != nil {
			t.Fatalf("peer dial: %v", err)
		}
		return newPeerPlacer(eng, engine.NewLocalPlacer(eng), ps)
	})
}
