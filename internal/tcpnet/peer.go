package tcpnet

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gengar/internal/engine"
	"gengar/internal/metrics"
)

// Daemon-to-daemon links: the transport half of the distributed DRAM
// cache. Each gengard daemon configured with -peers keeps one outbound
// client connection per peer daemon — the same pooled-frame, pipelined,
// writev-coalescing serverConn machinery the client pool uses — and
// drives the OpPeer* vocabulary over it: place, install, write, read,
// release. Links dial lazily with backoff, are watched in the
// background so capacity reappears after a peer restart, and fail fast
// while a peer is down so a read burst degrades to local NVM instead of
// stacking up behind a dead socket.

// Peer link tuning. Dials are deliberately short-fused: a peer that
// cannot complete a handshake quickly is treated as down, because every
// moment spent waiting is a moment reads that could fall back to NVM do
// not.
const (
	peerDialTimeout   = time.Second
	peerRedialBackoff = 500 * time.Millisecond
	peerWatchEvery    = time.Second
)

// errPeerDown reports a peer link with no usable connection right now
// (dead, mid-dial by another caller, or inside its redial backoff).
var errPeerDown = errors.New("tcpnet: peer link down")

// peerLink is one daemon's outbound link to one peer daemon.
type peerLink struct {
	addr   string
	homeID uint16 // this daemon's ID, to reject accidental self-peering
	dial   PoolConfig
	frames *framePool

	// rtt observes peer-link round trips (placement and copy I/O), the
	// latency of the distributed half of the cache.
	rtt *metrics.Histogram

	// mu admits one dialer; get uses TryLock so concurrent callers fail
	// fast to their NVM fallback instead of queueing behind the dial.
	mu sync.Mutex
	//gengar:guardedby mu
	nextDial time.Time // redial backoff gate
	conn     atomic.Pointer[serverConn]

	// Learned from the peer's hello; zero until the first connect.
	peerID     atomic.Uint32
	cacheBytes atomic.Int64

	// spilled tracks the bytes of this home's copies currently placed on
	// the peer (block-rounded footprint), for occupancy telemetry.
	spilled atomic.Int64

	closed atomic.Bool
	done   chan struct{}
}

func newPeerLink(addr string, homeID uint16, frames *framePool, nagle bool, keepAlive time.Duration) *peerLink {
	return &peerLink{
		addr:   addr,
		homeID: homeID,
		dial: PoolConfig{
			Addrs:     []string{addr},
			Timeout:   peerDialTimeout,
			Nagle:     nagle,
			KeepAlive: keepAlive,
		},
		frames: frames,
		done:   make(chan struct{}),
	}
}

// live reports whether the link has a usable connection right now.
func (l *peerLink) live() bool {
	sc := l.conn.Load()
	return sc != nil && !sc.dead()
}

// nodeName returns the peer engine's node name (the Location.Node
// value for copies it hosts), or "" before the first connect.
func (l *peerLink) nodeName() string {
	id := l.peerID.Load()
	if id == 0 {
		return ""
	}
	return fmt.Sprintf("gengard-%d", id)
}

// get returns a live connection, dialing if the link is down and its
// backoff has elapsed. Exactly one caller dials; the rest fail fast
// with errPeerDown and take their NVM fallback.
func (l *peerLink) get() (*serverConn, error) {
	if sc := l.conn.Load(); sc != nil && !sc.dead() {
		return sc, nil
	}
	if l.closed.Load() {
		return nil, ErrClosed
	}
	if !l.mu.TryLock() {
		return nil, errPeerDown // another caller is dialing
	}
	// peerLink.mu intentionally covers the blocking dial: admission is via
	// TryLock, so waiters fail fast to NVM instead of queueing, and one
	// miss burst dials a dead peer exactly once.
	defer l.mu.Unlock()
	if sc := l.conn.Load(); sc != nil && !sc.dead() {
		return sc, nil
	}
	now := time.Now()
	if now.Before(l.nextDial) {
		return nil, errPeerDown
	}
	l.nextDial = now.Add(peerRedialBackoff)
	sc, err := dialServer(l.addr, &l.dial, l.frames)
	if err != nil {
		return nil, err
	}
	if sc.features&featurePeerCache == 0 || sc.serverID == l.homeID {
		sc.close()
		return nil, fmt.Errorf("tcpnet: peer %s unusable (id %d, features %#x)", l.addr, sc.serverID, sc.features)
	}
	l.peerID.Store(uint32(sc.serverID))
	l.cacheBytes.Store(sc.cacheBytes)
	l.conn.Store(sc)
	return sc, nil
}

// watch keeps the link dialed in the background: capacity joins the
// planner's budget as soon as the peer is reachable (not only once
// arena pressure forces a placement attempt) and reappears after a
// peer restart. It exits on close.
func (l *peerLink) watch() {
	t := time.NewTicker(peerWatchEvery)
	defer t.Stop()
	for {
		select {
		case <-l.done:
			return
		case <-t.C:
			if !l.live() {
				_, _ = l.get()
			}
		}
	}
}

// close tears the link down.
func (l *peerLink) close() {
	if l.closed.Swap(true) {
		return
	}
	close(l.done)
	if sc := l.conn.Load(); sc != nil {
		sc.close()
	}
}

// peerErr rehydrates the staleness sentinel after its trip over the
// wire as an error string: a holder that rejected the op because the
// slot's generation no longer matches must compare equal to
// engine.ErrStaleCopy on this side too, the same contract the local
// copy-I/O arm honors.
func peerErr(err error) error {
	var re *RemoteError
	if errors.As(err, &re) && strings.Contains(re.Msg, engine.ErrStaleCopy.Error()) {
		return fmt.Errorf("%w: %s", engine.ErrStaleCopy, re.Msg)
	}
	return err
}

// roundTrip runs one peer op over the link, observing its round trip.
func (l *peerLink) roundTrip(op Op, hint int, enc func(w *payloadWriter)) (response, *serverConn, error) {
	sc, err := l.get()
	if err != nil {
		return response{}, nil, err
	}
	var w payloadWriter
	f := l.frames.newFrame(&w, hint)
	enc(&w)
	start := time.Now()
	resp, err := sc.roundTrip(f, &w, op, nil)
	if err != nil {
		return response{}, nil, peerErr(err)
	}
	if l.rtt != nil {
		l.rtt.Record(time.Since(start))
	}
	return resp, sc, nil
}

// callPeer is roundTrip for ops with an empty success payload.
func (l *peerLink) callPeer(op Op, hint int, enc func(w *payloadWriter)) error {
	resp, sc, err := l.roundTrip(op, hint, enc)
	if err != nil {
		return err
	}
	sc.release(resp)
	return nil
}

// place asks the peer to reserve arena space for a copy of size data
// bytes under the home-minted generation, returning the slot offset.
func (l *peerLink) place(gen uint64, size int64) (int64, error) {
	resp, sc, err := l.roundTrip(OpPeerPlace, 16, func(w *payloadWriter) {
		w.U64(gen).I64(size)
	})
	if err != nil {
		return 0, err
	}
	r := newPayloadReader(resp.payload)
	off := r.I64()
	err = r.Err()
	sc.release(resp)
	return off, err
}

// install ships the copy's full data image to the holder.
func (l *peerLink) install(off int64, gen uint64, data []byte) error {
	return l.callPeer(OpPeerInstall, 16+4+len(data), func(w *payloadWriter) {
		w.I64(off).U64(gen).Blob(data)
	})
}

// write applies a write-through to the hosted copy's data area.
func (l *peerLink) write(off int64, gen uint64, delta int64, data []byte) error {
	return l.callPeer(OpPeerWrite, 24+4+len(data), func(w *payloadWriter) {
		w.I64(off).U64(gen).I64(delta).Blob(data)
	})
}

// read proxies a cache hit through the holder, which generation-checks
// the slot before serving it.
func (l *peerLink) read(off int64, gen uint64, delta int64, buf []byte) error {
	resp, sc, err := l.roundTrip(OpPeerRead, 28, func(w *payloadWriter) {
		w.I64(off).U64(gen).I64(delta).U32(uint32(len(buf)))
	})
	if err != nil {
		return err
	}
	r := newPayloadReader(resp.payload)
	data := r.Blob()
	err = r.Err()
	if err == nil && len(data) != len(buf) {
		err = fmt.Errorf("tcpnet: short peer read: %d of %d bytes", len(data), len(buf))
	}
	if err == nil {
		copy(buf, data)
	}
	sc.release(resp)
	return err
}

// releaseCopy returns the hosted copy's arena space at the holder.
func (l *peerLink) releaseCopy(off int64, gen uint64) error {
	return l.callPeer(OpPeerRelease, 16, func(w *payloadWriter) {
		w.I64(off).U64(gen)
	})
}

// peerSet is a daemon's configured peer links.
type peerSet struct {
	links []*peerLink
	rr    atomic.Uint64 // placement round-robin cursor
}

func newPeerSet(addrs []string, homeID uint16, frames *framePool, nagle bool, keepAlive time.Duration) *peerSet {
	ps := &peerSet{}
	for _, a := range addrs {
		ps.links = append(ps.links, newPeerLink(a, homeID, frames, nagle, keepAlive))
	}
	return ps
}

// start launches the background watchers that keep links dialed.
func (ps *peerSet) start() {
	for _, l := range ps.links {
		go l.watch()
	}
}

// close tears down every link.
func (ps *peerSet) close() {
	for _, l := range ps.links {
		l.close()
	}
}

// budget sums the advertised arena capacity of every live peer — the
// remote half of the planner's capacity-aware copy budget. A dead peer
// drops out immediately, so the next plan demotes the overflow.
func (ps *peerSet) budget() int64 {
	var sum int64
	for _, l := range ps.links {
		if l.live() {
			sum += l.cacheBytes.Load()
		}
	}
	return sum
}

// spilledBytes sums the footprint of this home's copies on all peers.
func (ps *peerSet) spilledBytes() int64 {
	var sum int64
	for _, l := range ps.links {
		sum += l.spilled.Load()
	}
	return sum
}

// liveCount reports how many links are currently connected.
func (ps *peerSet) liveCount() int {
	n := 0
	for _, l := range ps.links {
		if l.live() {
			n++
		}
	}
	return n
}

// linkFor resolves a copy's holder node name to its link.
func (ps *peerSet) linkFor(node string) *peerLink {
	for _, l := range ps.links {
		if l.nodeName() == node {
			return l
		}
	}
	return nil
}

// placementOrder returns the links in round-robin rotation, so spills
// spread across peers instead of filling the first arena end to end.
func (ps *peerSet) placementOrder() []*peerLink {
	n := len(ps.links)
	if n == 0 {
		return nil
	}
	start := int(ps.rr.Add(1)) % n
	out := make([]*peerLink, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, ps.links[(start+i)%n])
	}
	return out
}
