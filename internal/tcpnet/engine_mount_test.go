package tcpnet

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"net"
	"os"
	"strings"
	"testing"
	"time"

	"gengar/internal/hotness"
	"gengar/internal/region"
)

// These tests exercise the TCP mount as an engine mount: the wire-visible
// behavior of the paper's mechanisms (cache-served reads, staged-write
// acknowledgment, hotness-driven promotion) and the operational
// satellites (reconnect, snapshot compatibility).

// TestCacheHitAndStagedAckOverTCP is the mount's acceptance check: a TCP
// client observes a cache-served read (hit flag on the wire plus the hit
// counter) and staged-write acknowledgment (proxy ring telemetry), with
// promotion driven by the daemon's own hotness digests.
func TestCacheHitAndStagedAckOverTCP(t *testing.T) {
	addrs := startServers(t, 1, func(c *ServerConfig) { c.DigestEvery = 4 })
	p := dialPool(t, addrs)

	a, err := p.Malloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{0x5A}, 4096)
	if err := p.Write(a, want); err != nil {
		t.Fatal(err)
	}

	// The write must have been acknowledged from the staging ring, not
	// the pool: proxy telemetry shows it staged.
	st, err := p.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st[0].Staged == 0 {
		t.Fatalf("write was not staged: %+v", st[0])
	}

	// Read-your-writes holds immediately, before any flush completes.
	got := make([]byte, 4096)
	if err := p.Read(a, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("read-your-writes violated over TCP")
	}

	// Repeated reads make the object hot; the daemon digests every 4
	// accesses and promotes it, after which reads report cache hits.
	deadline := time.Now().Add(5 * time.Second)
	hit := false
	for !hit && time.Now().Before(deadline) {
		if hit, err = p.ReadCheck(a, got); err != nil {
			t.Fatal(err)
		}
		if !hit {
			time.Sleep(2 * time.Millisecond)
		}
	}
	if !hit {
		t.Fatal("reads never hit the DRAM cache")
	}
	if !bytes.Equal(got, want) {
		t.Fatal("cache-served read returned wrong bytes")
	}
	st, err = p.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st[0].CacheHits == 0 || st[0].Promotions == 0 || st[0].Promoted == 0 {
		t.Fatalf("promotion not visible in stats: %+v", st[0])
	}
	if st[0].Digests == 0 {
		t.Fatalf("daemon never digested accesses: %+v", st[0])
	}
}

func TestFeatureSwitchesOverTCP(t *testing.T) {
	addrs := startServers(t, 1, func(c *ServerConfig) {
		c.NoCache = true
		c.NoProxy = true
		c.DigestEvery = 2
	})
	// The hello handshake reports both features off.
	var frames framePool
	sc, err := dialServer(addrs[0], &PoolConfig{Timeout: time.Second, KeepAlive: defaultKeepAlive}, &frames)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.close()
	if sc.features != featureTrace {
		t.Fatalf("features = %b, want trace only", sc.features)
	}

	p := dialPool(t, addrs)
	a, err := p.Malloc(1024)
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{3}, 1024)
	if err := p.Write(a, want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 1024)
	for i := 0; i < 32; i++ {
		hit, err := p.ReadCheck(a, got)
		if err != nil {
			t.Fatal(err)
		}
		if hit {
			t.Fatal("cache hit with caching disabled")
		}
	}
	if !bytes.Equal(got, want) {
		t.Fatal("roundtrip broken with features off")
	}
	st, err := p.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st[0].Staged != 0 || st[0].CacheHits != 0 || st[0].Promotions != 0 {
		t.Fatalf("disabled mechanisms still active: %+v", st[0])
	}

	// The default deployment advertises both features.
	full := startServers(t, 1, func(c *ServerConfig) { c.ID = 7 })
	sc2, err := dialServer(full[0], &PoolConfig{Timeout: time.Second, KeepAlive: defaultKeepAlive}, &frames)
	if err != nil {
		t.Fatal(err)
	}
	defer sc2.close()
	if sc2.features != featureCache|featureProxy|featureTrace|featurePeerCache {
		t.Fatalf("features = %b, want cache|proxy|trace|peerCache", sc2.features)
	}
}

func TestWriteMultiRoundtrip(t *testing.T) {
	addrs := startServers(t, 3, nil)
	p := dialPool(t, addrs)

	// Interleave records across the three homes, small and ring-oversized
	// payloads mixed, and verify per-address contents.
	var reqs []WriteReq
	var live []region.GAddr
	for i := 0; i < 9; i++ {
		size := int64(512)
		if i%4 == 3 {
			size = 8192 // larger than a ring slot: falls back to direct writes
		}
		a, err := p.Malloc(size)
		if err != nil {
			t.Fatal(err)
		}
		live = append(live, a)
		reqs = append(reqs, WriteReq{Addr: a, Data: bytes.Repeat([]byte{byte(i + 1)}, int(size))})
	}
	if err := p.WriteMulti(reqs); err != nil {
		t.Fatal(err)
	}
	for i, a := range live {
		got := make([]byte, len(reqs[i].Data))
		if err := p.Read(a, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, reqs[i].Data) {
			t.Fatalf("record %d mismatch", i)
		}
	}
	// Batches that fit the ring were staged as chains.
	st, err := p.Stats()
	if err != nil {
		t.Fatal(err)
	}
	var staged int64
	for _, s := range st {
		staged += s.Staged
	}
	if staged == 0 {
		t.Fatal("no batched record was staged")
	}
	if err := p.WriteMulti(nil); err != nil {
		t.Fatal(err)
	}
}

func TestVersionBumpsOnExclusiveRelease(t *testing.T) {
	addrs := startServers(t, 1, nil)
	p := dialPool(t, addrs)
	a, err := p.Malloc(256)
	if err != nil {
		t.Fatal(err)
	}
	v0, err := p.Version(a)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.LockExclusive(a); err != nil {
		t.Fatal(err)
	}
	if err := p.UnlockExclusive(a); err != nil {
		t.Fatal(err)
	}
	v1, err := p.Version(a)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v0+1 {
		t.Fatalf("version after exclusive release: %d -> %d", v0, v1)
	}
	// Shared cycles leave it alone.
	if err := p.LockShared(a); err != nil {
		t.Fatal(err)
	}
	if err := p.UnlockShared(a); err != nil {
		t.Fatal(err)
	}
	if v2, _ := p.Version(a); v2 != v1 {
		t.Fatalf("version after shared release: %d -> %d", v1, v2)
	}
}

func TestClientDigestDrivesPromotion(t *testing.T) {
	// A client that reports its own access counts (the simulated mount's
	// protocol) drives promotion without the daemon-side cadence.
	addrs := startServers(t, 1, func(c *ServerConfig) { c.DigestEvery = 1 << 30 })
	p := dialPool(t, addrs)
	a, err := p.Malloc(2048)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Write(a, bytes.Repeat([]byte{1}, 2048)); err != nil {
		t.Fatal(err)
	}
	epochs, err := p.Digest([]hotness.Entry{{Addr: a, Reads: 500}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := epochs[a.Server()]; !ok {
		t.Fatalf("no epoch for home server in %v", epochs)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st, err := p.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if st[0].Promotions > 0 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("client digest never promoted the object")
}

// restartableServer runs one daemon whose listener address survives a
// kill/restart cycle.
type restartableServer struct {
	t    *testing.T
	cfg  ServerConfig
	addr string
	srv  *PoolServer
}

func startRestartable(t *testing.T, cfg ServerConfig) *restartableServer {
	t.Helper()
	rs := &restartableServer{t: t, cfg: cfg}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rs.addr = lis.Addr().String()
	rs.serveOn(lis)
	t.Cleanup(func() { rs.srv.Close() })
	return rs
}

func (rs *restartableServer) serveOn(lis net.Listener) {
	rs.t.Helper()
	srv, err := NewPoolServer(rs.cfg)
	if err != nil {
		rs.t.Fatal(err)
	}
	rs.srv = srv
	go func() { _ = srv.Serve(lis) }()
}

// kill stops the daemon; restart brings a fresh one up on the same
// address (retrying the bind while the old socket drains).
func (rs *restartableServer) kill() { rs.srv.Close() }

func (rs *restartableServer) restart() {
	rs.t.Helper()
	var lis net.Listener
	var err error
	for try := 0; try < 50; try++ {
		if lis, err = net.Listen("tcp", rs.addr); err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		rs.t.Fatalf("rebind %s: %v", rs.addr, err)
	}
	rs.serveOn(lis)
}

func TestPoolReconnectsAfterDaemonRestart(t *testing.T) {
	rs := startRestartable(t, ServerConfig{ID: 1, PoolBytes: 1 << 20})
	p := dialPool(t, []string{rs.addr})

	a, err := p.Malloc(512)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Write(a, bytes.Repeat([]byte{8}, 512)); err != nil {
		t.Fatal(err)
	}

	rs.kill()
	rs.restart()

	// Mid-workload operations ride the redial path: the first calls may
	// fail while the daemon comes back, then the pool reconnects and the
	// workload continues. Volatile state (allocations) restarted empty, so
	// the workload allocates afresh.
	var b region.GAddr
	deadline := time.Now().Add(10 * time.Second)
	for {
		if b, err = p.Malloc(512); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool never reconnected: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	want := bytes.Repeat([]byte{9}, 512)
	if err := p.Write(b, want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 512)
	if err := p.Read(b, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("post-restart roundtrip mismatch")
	}
	// The restarted daemon has no memory of pre-kill allocations. (The
	// fresh allocator may have handed b the same offset a had; free b
	// first so a cannot alias a live object.)
	if err := p.Free(b); err != nil {
		t.Fatal(err)
	}
	if err := p.Free(a); err == nil {
		t.Fatal("pre-restart allocation survived a restart without a snapshot")
	}
}

func TestPoolReconnectConcurrentWorkload(t *testing.T) {
	// Writers hammering the pool across a kill/restart all recover: no
	// wedged callers, every worker completes a post-restart roundtrip.
	rs := startRestartable(t, ServerConfig{ID: 1, PoolBytes: 1 << 20})
	p := dialPool(t, []string{rs.addr})

	const workers = 4
	kill := make(chan struct{})
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			<-kill
			deadline := time.Now().Add(10 * time.Second)
			for {
				a, err := p.Malloc(256)
				if err == nil {
					data := bytes.Repeat([]byte{byte(w + 1)}, 256)
					if err = p.Write(a, data); err == nil {
						got := make([]byte, 256)
						if err = p.Read(a, got); err == nil && !bytes.Equal(got, data) {
							errs <- errors.New("roundtrip mismatch after reconnect")
							return
						}
					}
				}
				if err == nil {
					errs <- nil
					return
				}
				if time.Now().After(deadline) {
					errs <- err
					return
				}
				time.Sleep(10 * time.Millisecond)
			}
		}(w)
	}

	rs.kill()
	rs.restart()
	close(kill)
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatalf("worker failed after restart: %v", err)
		}
	}
}

func TestPoolReconnectGivesUpWithoutDaemon(t *testing.T) {
	rs := startRestartable(t, ServerConfig{ID: 1, PoolBytes: 1 << 20})
	p := dialPool(t, []string{rs.addr})
	if _, err := p.Malloc(64); err != nil {
		t.Fatal(err)
	}
	rs.kill()
	// The op that was racing the kill fails with a connection error; once
	// the pool notices the dead connection, operations report the bounded
	// reconnect giving up.
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, err := p.Malloc(64)
		if err == nil {
			t.Fatal("malloc succeeded against a dead daemon")
		}
		if strings.Contains(err.Error(), "reconnect") {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("error never reported the bounded reconnect: %v", err)
		}
	}
}

// rewriteSnapshot applies mutate to the decoded snapshot bytes and
// recomputes the trailing checksum, so the result is structurally valid
// but carries the mutated content.
func rewriteSnapshot(t *testing.T, path string, mutate func(body []byte)) string {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	body := append([]byte(nil), raw[:len(raw)-4]...)
	mutate(body)
	var sum [4]byte
	binary.BigEndian.PutUint32(sum[:], crc32.ChecksumIEEE(body))
	out := path + ".mut"
	if err := os.WriteFile(out, append(body, sum[:]...), 0o644); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSnapshotForwardCompat(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/pool.snap"
	cfg := ServerConfig{ID: 1, PoolBytes: 1 << 16}
	srv, err := NewPoolServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lis, _ := net.Listen("tcp", "127.0.0.1:0")
	go func() { _ = srv.Serve(lis) }()
	p, err := Dial([]string{lis.Addr().String()}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	a1, _ := p.Malloc(256)
	a2, _ := p.Malloc(1024)
	_ = p.Write(a1, bytes.Repeat([]byte{1}, 256))
	_ = p.Write(a2, bytes.Repeat([]byte{2}, 1024))
	p.Close()
	srv.Close()
	if err := srv.WriteSnapshot(path); err != nil {
		t.Fatal(err)
	}

	// A snapshot from a future format version is rejected outright even
	// though its checksum is intact.
	future := rewriteSnapshot(t, path, func(body []byte) {
		binary.BigEndian.PutUint32(body[len(snapshotMagic):], snapshotVersion+1)
	})
	srv2, err := NewPoolServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	baseObjects := srv2.eng.Stats().Objects
	basePool := srv2.eng.Pool().AllocatedBytes()
	if err := srv2.RestoreSnapshot(future); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("future-version snapshot: %v", err)
	}

	// A snapshot whose trailing checksum is cut off is rejected.
	raw, _ := os.ReadFile(path)
	cut := dir + "/cut.snap"
	if err := os.WriteFile(cut, raw[:len(raw)-2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := srv2.RestoreSnapshot(cut); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("truncated-checksum snapshot: %v", err)
	}

	// Overlapping allocation records are rejected before any state lands:
	// corrupt the second live record to collide with the first.
	overlap := rewriteSnapshot(t, path, func(body []byte) {
		recs := body[len(snapshotMagic)+4+2+8:]
		n := binary.BigEndian.Uint32(recs)
		recs = recs[4:]
		var firstOff uint64
		seen := 0
		for i := uint32(0); i < n; i++ {
			rec := recs[i*16:]
			off := binary.BigEndian.Uint64(rec)
			if off == 0 {
				continue // the nil-address guard block is skipped on restore
			}
			seen++
			if seen == 1 {
				firstOff = off
			} else {
				binary.BigEndian.PutUint64(rec, firstOff)
				return
			}
		}
		t.Fatalf("snapshot carries %d live records, want >= 2", seen)
	})
	if err := srv2.RestoreSnapshot(overlap); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("overlapping snapshot: %v", err)
	}

	// No partial restore: every rejected snapshot left the engine
	// untouched, so a valid restore still starts from a clean slate.
	if got := srv2.eng.Stats().Objects; got != baseObjects {
		t.Fatalf("rejected restores leaked %d objects", got-baseObjects)
	}
	if got := srv2.eng.Pool().AllocatedBytes(); got != basePool {
		t.Fatalf("rejected restores leaked pool bytes: %d != %d", got, basePool)
	}
	if err := srv2.RestoreSnapshot(path); err != nil {
		t.Fatal(err)
	}
	if got := srv2.eng.Stats().Objects; got != 2 {
		t.Fatalf("valid restore after rejections: %d objects", got)
	}
}

func TestSnapshotRestoreThenMallocReusesFreedRange(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/pool.snap"
	cfg := ServerConfig{ID: 1, PoolBytes: 1 << 16}
	srv, err := NewPoolServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lis, _ := net.Listen("tcp", "127.0.0.1:0")
	go func() { _ = srv.Serve(lis) }()
	p, err := Dial([]string{lis.Addr().String()}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Fill the pool completely so the allocator has no slack.
	var live []region.GAddr
	for {
		a, err := p.Malloc(4096)
		if err != nil {
			break
		}
		live = append(live, a)
	}
	if len(live) < 2 {
		t.Fatalf("pool filled after only %d allocations", len(live))
	}
	p.Close()
	srv.Close()
	if err := srv.WriteSnapshot(path); err != nil {
		t.Fatal(err)
	}

	srv2, err := NewPoolServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv2.RestoreSnapshot(path); err != nil {
		t.Fatal(err)
	}
	lis2, _ := net.Listen("tcp", "127.0.0.1:0")
	go func() { _ = srv2.Serve(lis2) }()
	defer srv2.Close()
	p2, err := Dial([]string{lis2.Addr().String()}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()

	// The restored allocator is still full...
	if _, err := p2.Malloc(4096); err == nil {
		t.Fatal("restored full pool accepted another allocation")
	}
	// ...and freeing one restored block makes exactly its range
	// allocatable again.
	victim := live[len(live)/2]
	if err := p2.Free(victim); err != nil {
		t.Fatal(err)
	}
	got, err := p2.Malloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	if got != victim {
		t.Fatalf("freed range not reused: freed %v, malloc returned %v", victim, got)
	}
}
