package tcpnet

import (
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gengar/internal/region"
)

// The E20 distributed-cache suite: one home daemon whose DRAM arena is
// far smaller than the hot working set, joined by a growing number of
// peer daemons in a -peers mesh. The home spills hot copies into its
// peers' arenas, so the aggregate DRAM cache — and with it the fraction
// of reads served from DRAM anywhere in the cluster — grows with daemon
// count. Results are recorded in EXPERIMENTS.md (E20) and
// results/e20.csv; `make bench` runs the short smoke.
//
// Environment hooks for the harness:
//
//	GENGAR_E20_CSV=<path>        append one row per subtest
//	GENGAR_E20_TELEMETRY=<path>  dump the home daemon's telemetry
//	                             snapshot (hit split, peer occupancy)

var e20Daemons = []int{1, 2, 3, 4}

// startCluster launches n daemons in a full peer mesh: the home (ID 1)
// with a deliberately tiny copy arena, peers with 128 KiB each. It
// returns the home server and every dial address, home first.
func startCluster(b *testing.B, n int) (*PoolServer, []string) {
	b.Helper()
	liss := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range liss {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		liss[i] = lis
		addrs[i] = lis.Addr().String()
	}
	var home *PoolServer
	for i := 0; i < n; i++ {
		var peers []string
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		cfg := ServerConfig{
			ID:          uint16(i + 1),
			PoolBytes:   16 << 20,
			CacheBytes:  128 << 10,
			DigestEvery: 4,
			Peers:       peers,
		}
		if i == 0 {
			cfg.CacheBytes = 16 << 10 // the home arena the hot set overflows
		}
		srv, err := NewPoolServer(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			home = srv
		}
		lis := liss[i]
		go func() { _ = srv.Serve(lis) }()
		if i == 0 {
			b.Cleanup(func() {
				maybeDumpE20Telemetry(b, srv)
				srv.Close()
			})
		} else {
			b.Cleanup(srv.Close)
		}
	}
	return home, addrs
}

// e20Readers is the client-side read concurrency for both warm-up and
// measurement. The hotness sketch decays on the planner's clock, so a
// single synchronous client spread over the whole set cannot keep any
// one object above the planner's MinWeight — several in-flight readers
// are what make the set register as hot, exactly as a fan-in of real
// clients would.
const e20Readers = 4

// clusterPass sends one concurrent sweep over the working set: each of
// the e20Readers goroutines reads every object once, offset so they
// fan out across the set rather than convoying on one object.
func clusterPass(b *testing.B, p *Pool, addrs []region.GAddr, size int) {
	var wg sync.WaitGroup
	var failed atomic.Bool
	for r := 0; r < e20Readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			buf := make([]byte, size)
			for i := 0; i < len(addrs); i++ {
				if _, err := p.ReadCheck(addrs[(r+i)%len(addrs)], buf); err != nil {
					b.Error(err)
					failed.Store(true)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	if failed.Load() {
		b.FailNow()
	}
}

// warmCluster first waits for every peer link to come up (the links
// dial on a background watch tick, so the planner's aggregate budget
// grows ~1s after start), then hammers the working set until promotion
// settles: passes repeat until the home's promoted-copy count stops
// moving (three stable passes) or the deadline lapses. Unlike E19's
// warm-up it does NOT require every object promoted — with few daemons
// the aggregate arena cannot hold the set, and that shortfall is the
// measurement.
func warmCluster(b *testing.B, p *Pool, addrs []region.GAddr, size, peers int) {
	b.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := p.Stats()
		if err != nil {
			b.Fatal(err)
		}
		if int(st[0].PeersLive) >= peers {
			break
		}
		if time.Now().After(deadline) {
			b.Fatalf("peer links never came up: live=%d want %d", st[0].PeersLive, peers)
		}
		time.Sleep(20 * time.Millisecond)
	}
	lastPromoted, stable := -1, 0
	for stable < 3 {
		clusterPass(b, p, addrs, size)
		st, err := p.Stats()
		if err != nil {
			b.Fatal(err)
		}
		promoted := int(st[0].Promoted)
		if promoted == lastPromoted {
			stable++
		} else {
			lastPromoted, stable = promoted, 0
		}
		if time.Now().After(deadline) {
			b.Logf("warm-up deadline: promoted=%d still moving", promoted)
			return
		}
	}
}

// BenchmarkTCPDistributedCache measures the DRAM-served fraction of a
// fixed hot working set as daemons join the cluster. The working set is
// sized so one daemon's arena holds only a sliver of it; each joining
// peer contributes arena, so the served-from-DRAM fraction (local +
// peer hits) climbs with daemon count — the paper's aggregated-memory
// effect on the cache layer.
func BenchmarkTCPDistributedCache(b *testing.B) {
	// 48 objects x 4 KiB (8 KiB copy footprint each) = a 384 KiB hot
	// set. The home arena holds 2 copies; each peer adds 16 more, so
	// aggregate capacity crosses the whole set at 4 daemons.
	const size = 4096
	const objects = 48
	daemons := e20Daemons
	if testing.Short() {
		daemons = []int{1, 2}
	}
	for _, d := range daemons {
		b.Run(fmt.Sprintf("daemons=%d", d), func(b *testing.B) {
			srv, addrs := startCluster(b, d)
			p, err := Dial([]string{addrs[0]}, 2*time.Second)
			if err != nil {
				b.Fatal(err)
			}
			defer p.Close()

			objAddrs := benchObjects(b, p, objects, size)
			warmCluster(b, p, objAddrs, size, d-1)

			st0 := srv.eng.Stats()
			b.SetBytes(size)
			b.ReportAllocs()
			b.ResetTimer()
			start := time.Now()
			var wg sync.WaitGroup
			var failed atomic.Bool
			for r := 0; r < e20Readers; r++ {
				wg.Add(1)
				go func(r, n int) {
					defer wg.Done()
					buf := make([]byte, size)
					for i := 0; i < n; i++ {
						if err := p.Read(objAddrs[(r+i)%len(objAddrs)], buf); err != nil {
							b.Error(err)
							failed.Store(true)
							return
						}
					}
				}(r, b.N/e20Readers+1)
			}
			wg.Wait()
			elapsed := time.Since(start)
			b.StopTimer()
			if failed.Load() {
				b.FailNow()
			}
			ops := e20Readers * (b.N/e20Readers + 1)

			st := srv.eng.Stats()
			local := st.Hits - st0.Hits
			peer := st.PeerHits - st0.PeerHits
			hitFrac := float64(local+peer) / float64(ops)
			peerFrac := float64(peer) / float64(ops)
			b.ReportMetric(hitFrac, "hit-frac")
			b.ReportMetric(peerFrac, "peer-hit-frac")
			var spilled int64
			if srv.peers != nil {
				spilled = srv.peers.spilledBytes()
			}
			maybeAppendE20Row(b, d, objects, ops, elapsed, hitFrac, peerFrac, spilled)
		})
	}
}

// maybeAppendE20Row appends one CSV row per subtest when the E20
// harness asks for it (GENGAR_E20_CSV=<path>). The benchmark
// framework's short probe iterations are skipped — a handful of reads
// says nothing about the steady-state hit fraction.
func maybeAppendE20Row(b *testing.B, daemons, objects, ops int, elapsed time.Duration, hitFrac, peerFrac float64, spilled int64) {
	path := os.Getenv("GENGAR_E20_CSV")
	if path == "" || ops < 1000 {
		return
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		b.Logf("e20 csv: %v", err)
		return
	}
	defer f.Close()
	if st, err := f.Stat(); err == nil && st.Size() == 0 {
		fmt.Fprintln(f, "daemons,objects,ops,ns_per_op,ops_per_sec,hit_frac,peer_hit_frac,spilled_bytes")
	}
	nsPerOp := float64(elapsed.Nanoseconds()) / float64(ops)
	fmt.Fprintf(f, "%d,%d,%d,%.1f,%.0f,%.3f,%.3f,%d\n",
		daemons, objects, ops, nsPerOp, float64(ops)/elapsed.Seconds(), hitFrac, peerFrac, spilled)
}

// maybeDumpE20Telemetry writes the home daemon's telemetry snapshot
// (GENGAR_E20_TELEMETRY=<path>) so the committed
// results/e20.telemetry.json carries the local/peer hit split and
// per-peer occupancy gauges of the measured run.
func maybeDumpE20Telemetry(b *testing.B, srv *PoolServer) {
	path := os.Getenv("GENGAR_E20_TELEMETRY")
	if path == "" {
		return
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		b.Logf("e20 telemetry: %v", err)
		return
	}
	defer f.Close()
	if err := srv.Telemetry().Snapshot().WriteJSON(f); err != nil {
		b.Logf("e20 telemetry: %v", err)
	}
}
