package tcpnet

import (
	"bytes"
	"encoding/binary"
	"net"
	"testing"
	"time"

	"gengar/internal/telemetry/span"
)

// startTracedServer launches one daemon and returns it together with
// its address, so tests can read its tracer's slow-op ring.
func startTracedServer(t *testing.T, mutate func(*ServerConfig)) (*PoolServer, string) {
	t.Helper()
	cfg := ServerConfig{ID: 1, PoolBytes: 1 << 20}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := NewPoolServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(lis) }()
	t.Cleanup(srv.Close)
	return srv, lis.Addr().String()
}

// stages flattens a record's stage names.
func stages(r span.Record) []string {
	out := make([]string, len(r.Stages))
	for i, s := range r.Stages {
		out[i] = s.Stage
	}
	return out
}

// findRecord polls the tracer's ring for a record matching op and
// traceID (0 matches any) — the server half finishes on the writer
// goroutine after the response writev, slightly after the client
// observes the response.
func findRecord(t *testing.T, tr *span.Tracer, op string, traceID uint64) span.Record {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		for _, r := range tr.Records() {
			if r.Op == op && (traceID == 0 || r.TraceID == traceID) {
				return r
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("no %q record with trace ID %#x in ring: %+v", op, traceID, tr.Records())
		}
		time.Sleep(time.Millisecond)
	}
}

func hasStage(seq []string, want string) bool {
	for _, s := range seq {
		if s == want {
			return true
		}
	}
	return false
}

// TestTracedOpsStitchClientAndServerSpans drives a sampled read and a
// sampled staged write through a real daemon and checks both halves of
// each trace: the client span's wire stages, the server span's engine
// stages, and the shared trace ID that stitches them.
func TestTracedOpsStitchClientAndServerSpans(t *testing.T) {
	srv, addr := startTracedServer(t, nil)
	p, err := DialConfig(PoolConfig{Addrs: []string{addr}, Timeout: 2 * time.Second, TraceSample: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)

	a, err := p.Malloc(256)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0x7e}, 256)
	if err := p.Write(a, data); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	if err := p.Read(a, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("read returned wrong bytes")
	}

	// Client halves: every op sampled at 1-in-1.
	cRead := findRecord(t, p.Tracer(), "read", 0)
	if cRead.Remote || cRead.TraceID == 0 {
		t.Fatalf("client read span: %+v", cRead)
	}
	cSeq := stages(cRead)
	for _, want := range []string{"encode", "netWait", "decode"} {
		if !hasStage(cSeq, want) {
			t.Fatalf("client read stages %v missing %q", cSeq, want)
		}
	}
	cWrite := findRecord(t, p.Tracer(), "write", 0)
	wSeq := stages(cWrite)
	for _, want := range []string{"encode", "netWait"} {
		if !hasStage(wSeq, want) {
			t.Fatalf("client write stages %v missing %q", wSeq, want)
		}
	}

	// Server halves: remote spans carrying the client's trace IDs.
	sRead := findRecord(t, srv.Tracer(), "read", cRead.TraceID)
	if !sRead.Remote {
		t.Fatalf("server read span not remote: %+v", sRead)
	}
	sSeq := stages(sRead)
	for _, want := range []string{"queueWait", "dispatch", "writevFlush"} {
		if !hasStage(sSeq, want) {
			t.Fatalf("server read stages %v missing %q", sSeq, want)
		}
	}
	if !hasStage(sSeq, "cacheHit") && !hasStage(sSeq, "nvmCopy") {
		t.Fatalf("server read stages %v name no serving path", sSeq)
	}
	sWrite := findRecord(t, srv.Tracer(), "write", cWrite.TraceID)
	swSeq := stages(sWrite)
	for _, want := range []string{"queueWait", "dispatch", "ringStage", "writevFlush"} {
		if !hasStage(swSeq, want) {
			t.Fatalf("server write stages %v missing %q", swSeq, want)
		}
	}
}

// TestClientGatesTraceOnNegotiation proves the wire extension is only
// sent to peers that advertised featureTrace: with the feature bit
// cleared locally, traced ops degrade to plain frames and no client
// spans open.
func TestClientGatesTraceOnNegotiation(t *testing.T) {
	addrs := startServers(t, 1, nil)
	p, err := DialConfig(PoolConfig{Addrs: addrs, Timeout: 2 * time.Second, TraceSample: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	// Simulate a pre-extension peer: negotiation said no.
	for _, sc := range p.conns {
		sc.features &^= featureTrace
	}
	a, err := p.Malloc(128)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{9}, 128)
	if err := p.Write(a, data); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 128)
	if err := p.Read(a, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("roundtrip broken without trace negotiation")
	}
	if recs := p.Tracer().Records(); len(recs) != 0 {
		t.Fatalf("spans opened against a peer without featureTrace: %+v", recs)
	}
}

// TestServerRejectsMalformedTraceExtension sends a traced frame whose
// extension is garbage; the server must tear the connection down like
// any other unparseable header, not serve a misdecoded request.
func TestServerRejectsMalformedTraceExtension(t *testing.T) {
	_, addr := startTracedServer(t, nil)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Frame: id 1, OpRead with the traced bit, then an extension whose
	// length word promises fewer bytes than this version requires.
	body := binary.BigEndian.AppendUint64(nil, 1)
	body = append(body, uint8(OpRead)|tagTraced)
	body = append(body, 4, 0xde, 0xad, 0xbe, 0xef)
	frame := binary.BigEndian.AppendUint32(nil, uint32(len(body)))
	frame = append(frame, body...)
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	var one [1]byte
	if _, err := conn.Read(one[:]); err == nil {
		t.Fatal("server answered a frame with a malformed trace extension")
	}
}
