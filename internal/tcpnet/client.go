package tcpnet

import (
	"fmt"
	"net"
	"sync"
	"time"

	"gengar/internal/hotness"
	"gengar/internal/region"
)

// DefaultLease is the lock lease clients request unless overridden.
const DefaultLease = 5 * time.Second

// Reconnect policy: a pool whose connection to a daemon died redials it
// on next use, a few times with doubling backoff, then reports the dial
// error. In-flight requests on the dead connection are failed, never
// silently retried — the pool cannot know whether a write or lock
// landed before the cut.
const (
	redialTries   = 3
	redialBackoff = 50 * time.Millisecond
)

// ServerStats is a daemon's activity snapshot.
type ServerStats struct {
	ServerID  uint16
	Objects   int64
	PoolUsed  int64
	Ops       int64
	PoolBytes int64

	// Engine-level mechanism counters.
	CacheHits   int64 // mediated reads served from the DRAM cache
	CacheMisses int64 // mediated reads served from the pool
	Staged      int64 // writes acknowledged from the staging ring
	Flushed     int64 // staged writes landed in the pool
	Promotions  int64
	Demotions   int64
	Promoted    int64 // objects with a live DRAM copy now
	Digests     int64
	RemapEpoch  uint64
}

// Pool is a client of a set of gengard daemons: one TCP connection per
// server, requests pipelined and demultiplexed by ID. It is safe for
// concurrent use. A connection that dies is redialed transparently on
// the next operation that needs it.
type Pool struct {
	timeout time.Duration

	mu     sync.Mutex
	conns  map[uint16]*serverConn
	order  []uint16
	rr     int
	lease  time.Duration
	closed bool

	// redialMu serializes reconnection attempts so a burst of failing
	// operations dials each dead server once, not once per caller.
	redialMu sync.Mutex
}

// serverConn is one pipelined connection to a daemon.
type serverConn struct {
	addr      string // dial address, kept for reconnection
	serverID  uint16
	poolBytes int64
	features  uint8

	c       net.Conn
	writeMu sync.Mutex

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan response
	closed  bool
	done    chan struct{}
}

type response struct {
	payload []byte
	err     error
}

// dialServer opens and handshakes one connection.
func dialServer(addr string, timeout time.Duration) (*serverConn, error) {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: dial %s: %w", addr, err)
	}
	sc := &serverConn{
		addr:    addr,
		c:       nc,
		pending: make(map[uint64]chan response),
		done:    make(chan struct{}),
	}
	go sc.demux()
	resp, err := sc.call(OpHello, nil)
	if err != nil {
		sc.close()
		return nil, fmt.Errorf("tcpnet: hello %s: %w", addr, err)
	}
	r := newPayloadReader(resp)
	sc.serverID = r.U16()
	sc.poolBytes = r.I64()
	sc.features = r.U8()
	if err := r.Err(); err != nil {
		sc.close()
		return nil, err
	}
	return sc, nil
}

// Dial connects to every daemon address, performs the hello handshake
// and returns a pool client. All servers must report distinct IDs.
func Dial(addrs []string, timeout time.Duration) (*Pool, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("tcpnet: no server addresses")
	}
	p := &Pool{conns: make(map[uint16]*serverConn), lease: DefaultLease, timeout: timeout}
	for _, a := range addrs {
		sc, err := dialServer(a, timeout)
		if err != nil {
			p.Close()
			return nil, err
		}
		if _, dup := p.conns[sc.serverID]; dup {
			sc.close()
			p.Close()
			return nil, fmt.Errorf("tcpnet: duplicate server ID %d at %s", sc.serverID, a)
		}
		p.conns[sc.serverID] = sc
		p.order = append(p.order, sc.serverID)
	}
	return p, nil
}

// SetLease overrides the lock lease requested by this client.
func (p *Pool) SetLease(d time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if d > 0 {
		p.lease = d
	}
}

func (sc *serverConn) demux() {
	defer close(sc.done)
	for {
		id, status, payload, err := readFrame(sc.c)
		if err != nil {
			sc.failAll(err)
			return
		}
		sc.mu.Lock()
		ch := sc.pending[id]
		delete(sc.pending, id)
		sc.mu.Unlock()
		if ch == nil {
			continue
		}
		if status == statusOK {
			ch <- response{payload: payload}
		} else {
			ch <- response{err: &RemoteError{Msg: string(payload)}}
		}
	}
}

func (sc *serverConn) failAll(err error) {
	sc.mu.Lock()
	sc.closed = true
	failed := make([]chan response, 0, len(sc.pending))
	for id, ch := range sc.pending {
		delete(sc.pending, id)
		failed = append(failed, ch)
	}
	sc.mu.Unlock()
	// Deliver failures outside sc.mu: the channels are buffered today, but
	// waking callers must never depend on that while the demux lock is held.
	for _, ch := range failed {
		ch <- response{err: fmt.Errorf("tcpnet: connection lost: %w", err)}
	}
}

// dead reports whether the connection has failed and needs redialing.
func (sc *serverConn) dead() bool {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.closed
}

// call issues one request and waits for its response payload.
func (sc *serverConn) call(op Op, payload []byte) ([]byte, error) {
	ch := make(chan response, 1)
	sc.mu.Lock()
	if sc.closed {
		sc.mu.Unlock()
		return nil, ErrClosed
	}
	sc.nextID++
	id := sc.nextID
	sc.pending[id] = ch
	sc.mu.Unlock()

	sc.writeMu.Lock()
	err := writeFrame(sc.c, id, uint8(op), payload)
	sc.writeMu.Unlock()
	if err != nil {
		sc.mu.Lock()
		delete(sc.pending, id)
		sc.mu.Unlock()
		return nil, fmt.Errorf("tcpnet: send: %w", err)
	}
	resp := <-ch
	if resp.err != nil {
		if re, ok := resp.err.(*RemoteError); ok {
			re.Op = op
		}
		return nil, resp.err
	}
	return resp.payload, nil
}

func (sc *serverConn) close() {
	_ = sc.c.Close()
	<-sc.done
}

// connByID returns a live connection to the given server, redialing a
// dead one. Unknown server IDs are an error.
func (p *Pool) connByID(id uint16) (*serverConn, error) {
	p.mu.Lock()
	sc := p.conns[id]
	closed := p.closed
	p.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	if sc == nil {
		return nil, fmt.Errorf("tcpnet: no connection to server %d", id)
	}
	if !sc.dead() {
		return sc, nil
	}
	return p.redial(id, sc.addr)
}

// redial replaces a dead connection to server id, retrying with
// backoff. Concurrent callers coalesce on redialMu: whoever enters
// first dials; the rest find the fresh connection installed.
func (p *Pool) redial(id uint16, addr string) (*serverConn, error) {
	//gengar:lint-ignore lock-across-blocking redialMu intentionally serializes the blocking dial+backoff loop so one failure burst dials each dead server once
	p.redialMu.Lock()
	defer p.redialMu.Unlock()

	// Someone else may have reconnected while we waited.
	p.mu.Lock()
	sc := p.conns[id]
	closed := p.closed
	p.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	if sc != nil && !sc.dead() {
		return sc, nil
	}

	var lastErr error
	backoff := redialBackoff
	for try := 0; try < redialTries; try++ {
		if try > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		fresh, err := dialServer(addr, p.timeout)
		if err != nil {
			lastErr = err
			continue
		}
		if fresh.serverID != id {
			fresh.close()
			return nil, fmt.Errorf("tcpnet: %s now reports server ID %d, want %d", addr, fresh.serverID, id)
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			fresh.close()
			return nil, ErrClosed
		}
		p.conns[id] = fresh
		p.mu.Unlock()
		return fresh, nil
	}
	return nil, fmt.Errorf("tcpnet: reconnect to server %d (%s) failed after %d tries: %w",
		id, addr, redialTries, lastErr)
}

func (p *Pool) conn(addr region.GAddr) (*serverConn, error) {
	p.mu.Lock()
	known := p.conns[addr.Server()] != nil
	p.mu.Unlock()
	if !known {
		return nil, fmt.Errorf("tcpnet: no connection to server %d (%v)", addr.Server(), addr)
	}
	return p.connByID(addr.Server())
}

// Malloc allocates size bytes, choosing home servers round-robin.
func (p *Pool) Malloc(size int64) (region.GAddr, error) {
	p.mu.Lock()
	if len(p.order) == 0 {
		p.mu.Unlock()
		return region.NilGAddr, ErrClosed
	}
	id := p.order[p.rr%len(p.order)]
	p.rr++
	p.mu.Unlock()

	sc, err := p.connByID(id)
	if err != nil {
		return region.NilGAddr, err
	}
	var w payloadWriter
	w.I64(size)
	resp, err := sc.call(OpMalloc, w.Bytes())
	if err != nil {
		return region.NilGAddr, err
	}
	r := newPayloadReader(resp)
	addr := region.GAddr(r.U64())
	return addr, r.Err()
}

// Free releases an object.
func (p *Pool) Free(addr region.GAddr) error {
	return p.addrOp(OpFree, addr)
}

// Read fills buf from global memory at addr.
func (p *Pool) Read(addr region.GAddr, buf []byte) error {
	_, err := p.ReadCheck(addr, buf)
	return err
}

// ReadCheck fills buf from global memory at addr and reports whether
// the daemon served it from its DRAM cache (a promoted hot object).
func (p *Pool) ReadCheck(addr region.GAddr, buf []byte) (hit bool, err error) {
	sc, err := p.conn(addr)
	if err != nil {
		return false, err
	}
	var w payloadWriter
	w.U64(uint64(addr)).U32(uint32(len(buf)))
	resp, err := sc.call(OpRead, w.Bytes())
	if err != nil {
		return false, err
	}
	r := newPayloadReader(resp)
	data := r.Blob()
	hit = r.U8() == 1
	if err := r.Err(); err != nil {
		return false, err
	}
	if len(data) != len(buf) {
		return false, fmt.Errorf("tcpnet: short read: %d of %d bytes", len(data), len(buf))
	}
	copy(buf, data)
	return hit, nil
}

// Write stores data at addr.
func (p *Pool) Write(addr region.GAddr, data []byte) error {
	sc, err := p.conn(addr)
	if err != nil {
		return err
	}
	var w payloadWriter
	w.U64(uint64(addr)).Blob(data)
	_, err = sc.call(OpWrite, w.Bytes())
	return err
}

// WriteReq is one record of a batched write.
type WriteReq struct {
	Addr region.GAddr
	Data []byte
}

// WriteMulti stores a batch of records, one OpWriteBatch frame per home
// server — the wire analogue of the RDMA client's doorbell-batched
// write chains. Records to the same server land in request order.
func (p *Pool) WriteMulti(reqs []WriteReq) error {
	if len(reqs) == 0 {
		return nil
	}
	// Group by home server, preserving per-server request order.
	groups := make(map[uint16][]WriteReq)
	var order []uint16
	for _, r := range reqs {
		id := r.Addr.Server()
		if _, seen := groups[id]; !seen {
			order = append(order, id)
		}
		groups[id] = append(groups[id], r)
	}
	for _, id := range order {
		sc, err := p.connByID(id)
		if err != nil {
			return err
		}
		chain := groups[id]
		var w payloadWriter
		w.U32(uint32(len(chain)))
		for _, r := range chain {
			w.U64(uint64(r.Addr)).Blob(r.Data)
		}
		if _, err := sc.call(OpWriteBatch, w.Bytes()); err != nil {
			return err
		}
	}
	return nil
}

// Digest reports client-observed access counts to the home servers, one
// OpDigest frame per server. It returns each server's remap epoch.
func (p *Pool) Digest(entries []hotness.Entry) (map[uint16]uint64, error) {
	epochs := make(map[uint16]uint64)
	groups := make(map[uint16][]hotness.Entry)
	var order []uint16
	for _, e := range entries {
		id := e.Addr.Server()
		if _, seen := groups[id]; !seen {
			order = append(order, id)
		}
		groups[id] = append(groups[id], e)
	}
	for _, id := range order {
		sc, err := p.connByID(id)
		if err != nil {
			return nil, err
		}
		batch := groups[id]
		var w payloadWriter
		w.U32(uint32(len(batch)))
		for _, e := range batch {
			w.U64(uint64(e.Addr)).U32(uint32(e.Reads)).U32(uint32(e.Writes))
		}
		resp, err := sc.call(OpDigest, w.Bytes())
		if err != nil {
			return nil, err
		}
		r := newPayloadReader(resp)
		epochs[id] = r.U64()
		if err := r.Err(); err != nil {
			return nil, err
		}
	}
	return epochs, nil
}

// Version returns the version word covering addr — bumped on every
// exclusive-lock release, so readers can detect concurrent updates.
func (p *Pool) Version(addr region.GAddr) (uint64, error) {
	sc, err := p.conn(addr)
	if err != nil {
		return 0, err
	}
	var w payloadWriter
	w.U64(uint64(addr))
	resp, err := sc.call(OpVersion, w.Bytes())
	if err != nil {
		return 0, err
	}
	r := newPayloadReader(resp)
	v := r.U64()
	return v, r.Err()
}

// LockExclusive takes the write lock covering addr with the pool's
// lease.
func (p *Pool) LockExclusive(addr region.GAddr) error { return p.lockOp(OpLockEx, addr) }

// UnlockExclusive releases the write lock covering addr.
func (p *Pool) UnlockExclusive(addr region.GAddr) error { return p.addrOp(OpUnlockEx, addr) }

// LockShared takes a read lock covering addr with the pool's lease.
func (p *Pool) LockShared(addr region.GAddr) error { return p.lockOp(OpLockSh, addr) }

// UnlockShared releases a read lock covering addr.
func (p *Pool) UnlockShared(addr region.GAddr) error { return p.addrOp(OpUnlockSh, addr) }

func (p *Pool) lockOp(op Op, addr region.GAddr) error {
	sc, err := p.conn(addr)
	if err != nil {
		return err
	}
	p.mu.Lock()
	lease := p.lease
	p.mu.Unlock()
	var w payloadWriter
	w.U64(uint64(addr)).U32(uint32(lease / time.Millisecond))
	_, err = sc.call(op, w.Bytes())
	return err
}

func (p *Pool) addrOp(op Op, addr region.GAddr) error {
	sc, err := p.conn(addr)
	if err != nil {
		return err
	}
	var w payloadWriter
	w.U64(uint64(addr))
	_, err = sc.call(op, w.Bytes())
	return err
}

// Stats fetches every server's snapshot, in dial order.
func (p *Pool) Stats() ([]ServerStats, error) {
	p.mu.Lock()
	order := append([]uint16(nil), p.order...)
	p.mu.Unlock()
	out := make([]ServerStats, 0, len(order))
	for _, id := range order {
		sc, err := p.connByID(id)
		if err != nil {
			return nil, err
		}
		resp, err := sc.call(OpStats, nil)
		if err != nil {
			return nil, err
		}
		r := newPayloadReader(resp)
		st := ServerStats{
			ServerID:    id,
			Objects:     r.I64(),
			PoolUsed:    r.I64(),
			Ops:         r.I64(),
			CacheHits:   r.I64(),
			CacheMisses: r.I64(),
			Staged:      r.I64(),
			Flushed:     r.I64(),
			Promotions:  r.I64(),
			Demotions:   r.I64(),
			Promoted:    r.I64(),
			Digests:     r.I64(),
			RemapEpoch:  r.U64(),
			PoolBytes:   sc.poolBytes,
		}
		if err := r.Err(); err != nil {
			return nil, err
		}
		out = append(out, st)
	}
	return out, nil
}

// Close tears down every connection.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	conns := make([]*serverConn, 0, len(p.conns))
	for _, sc := range p.conns {
		conns = append(conns, sc)
	}
	p.conns = make(map[uint16]*serverConn)
	p.order = nil
	p.mu.Unlock()
	for _, sc := range conns {
		sc.close()
	}
}
