package tcpnet

import (
	"fmt"
	"net"
	"sync"
	"time"

	"gengar/internal/hotness"
	"gengar/internal/region"
	"gengar/internal/telemetry/span"
)

// DefaultLease is the lock lease clients request unless overridden.
const DefaultLease = 5 * time.Second

// Reconnect policy: a pool whose connection to a daemon died redials it
// on next use, a few times with doubling backoff, then reports the dial
// error. In-flight requests on the dead connection are failed, never
// silently retried — the pool cannot know whether a write or lock
// landed before the cut.
const (
	redialTries   = 3
	redialBackoff = 50 * time.Millisecond
)

// ServerStats is a daemon's activity snapshot.
type ServerStats struct {
	ServerID  uint16
	Objects   int64
	PoolUsed  int64
	Ops       int64
	PoolBytes int64

	// Engine-level mechanism counters.
	CacheHits   int64 // mediated reads served from the DRAM cache
	CacheMisses int64 // mediated reads served from the pool
	Staged      int64 // writes acknowledged from the staging ring
	Flushed     int64 // staged writes landed in the pool
	Promotions  int64
	Demotions   int64
	Promoted    int64 // objects with a live DRAM copy now
	Digests     int64
	RemapEpoch  uint64

	// Distributed DRAM cache counters: the peer half of the hit split,
	// copies this daemon hosts for its peers, and copies it spilled out.
	PeerHits     int64 // reads served through a peer's arena
	PeerErrors   int64 // peer copy-I/O failures (demoted, never surfaced)
	HostedCopies int64 // peer copies resident in this daemon's arena
	HostedBytes  int64 // arena bytes those hosted copies occupy
	SpilledBytes int64 // bytes this daemon has spilled onto its peers
	PeersLive    int64 // peer links currently connected

	// Adaptive-flushing counters: NVM bytes actually written after
	// coalescing, the device writes that carried them, the records merged
	// away, and the pacer's current backoff level.
	FlushedBytes int64
	NVMWrites    int64
	Coalesced    int64
	BackoffLevel int64
}

// PoolConfig shapes a client pool beyond its server addresses.
type PoolConfig struct {
	// Addrs are the daemon dial addresses; required.
	Addrs []string
	// Timeout bounds each dial (and redial) attempt.
	Timeout time.Duration
	// Lease is the lock lease requested by this client; 0 selects
	// DefaultLease.
	Lease time.Duration
	// Nagle re-enables Nagle's algorithm on dialed connections. The
	// default (false) sets TCP_NODELAY: the pool coalesces pipelined
	// frames itself, so kernel-side delay only adds latency.
	Nagle bool
	// KeepAlive is the TCP keep-alive probe period on dialed
	// connections; 0 selects 30s, negative disables probing.
	KeepAlive time.Duration
	// TraceSample opens a client span (and propagates its trace ID to
	// the daemon) on one in every N data operations; 0 disables
	// tracing entirely — the zero-allocation default.
	TraceSample int
	// TraceSlow gates the client tracer's slow-op ring: sampled spans
	// at least this slow are retained. 0 retains every sampled span.
	TraceSlow time.Duration
}

func (c *PoolConfig) fill() error {
	if len(c.Addrs) == 0 {
		return fmt.Errorf("tcpnet: no server addresses")
	}
	if c.Lease == 0 {
		c.Lease = DefaultLease
	}
	if c.KeepAlive == 0 {
		c.KeepAlive = defaultKeepAlive
	}
	return nil
}

// Pool is a client of a set of gengard daemons: one TCP connection per
// server, requests pipelined and demultiplexed by ID, with send-side
// flush coalescing — frames started together (a WriteMulti chain, a
// ReadMulti scan, concurrent callers) leave in one writev. It is safe
// for concurrent use. A connection that dies is redialed transparently
// on the next operation that needs it.
type Pool struct {
	cfg PoolConfig

	// frames backs every request frame this client encodes and every
	// response frame its demux loops read.
	frames framePool

	// tracer samples per-op spans; nil unless PoolConfig.TraceSample
	// is set, so the untraced pool pays only nil checks.
	tracer *span.Tracer

	mu     sync.Mutex
	conns  map[uint16]*serverConn
	order  []uint16
	rr     int
	lease  time.Duration
	closed bool

	// redialMu serializes reconnection attempts so a burst of failing
	// operations dials each dead server once, not once per caller.
	redialMu sync.Mutex
}

// serverConn is one pipelined connection to a daemon.
type serverConn struct {
	addr       string // dial address, kept for reconnection
	serverID   uint16
	poolBytes  int64
	features   uint8
	cacheBytes int64 // peer-hosting arena capacity; 0 unless featurePeerCache

	c      net.Conn
	q      *frameQueue // send side: coalesces pipelined frames per writev
	frames *framePool

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan response
	closed  bool
	done    chan struct{}
}

// response is one demuxed reply. frame owns the pooled storage backing
// payload; the receiver recycles it once the payload is decoded.
type response struct {
	frame   *[]byte
	payload []byte
	err     error
}

// waiters pools the single-use response channels handed to callers —
// each completes exactly one send/receive, so it is clean for reuse.
var waiters = sync.Pool{New: func() any { return make(chan response, 1) }}

// dialServer opens and handshakes one connection.
func dialServer(addr string, cfg *PoolConfig, frames *framePool) (*serverConn, error) {
	nc, err := net.DialTimeout("tcp", addr, cfg.Timeout)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: dial %s: %w", addr, err)
	}
	tuneConn(nc, cfg.Nagle, cfg.KeepAlive)
	sc := &serverConn{
		addr:    addr,
		c:       nc,
		q:       newFrameQueue(nc, frames),
		frames:  frames,
		pending: make(map[uint64]chan response),
		done:    make(chan struct{}),
	}
	go sc.demux()
	var w payloadWriter
	f := frames.newFrame(&w, 0)
	resp, err := sc.roundTrip(f, &w, OpHello, nil)
	if err != nil {
		sc.close()
		return nil, fmt.Errorf("tcpnet: hello %s: %w", addr, err)
	}
	r := newPayloadReader(resp.payload)
	sc.serverID = r.U16()
	sc.poolBytes = r.I64()
	sc.features = r.U8()
	if sc.features&featurePeerCache != 0 {
		sc.cacheBytes = r.I64()
	}
	err = r.Err()
	sc.release(resp)
	if err != nil {
		sc.close()
		return nil, err
	}
	return sc, nil
}

// Dial connects to every daemon address, performs the hello handshake
// and returns a pool client. All servers must report distinct IDs.
func Dial(addrs []string, timeout time.Duration) (*Pool, error) {
	return DialConfig(PoolConfig{Addrs: addrs, Timeout: timeout})
}

// DialConfig is Dial with the full knob set.
func DialConfig(cfg PoolConfig) (*Pool, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	p := &Pool{cfg: cfg, conns: make(map[uint16]*serverConn), lease: cfg.Lease}
	if cfg.TraceSample > 0 {
		p.tracer = span.NewTracer(span.Config{
			Side:          "client",
			SampleEvery:   cfg.TraceSample,
			SlowThreshold: cfg.TraceSlow,
		})
	}
	for _, a := range cfg.Addrs {
		sc, err := dialServer(a, &p.cfg, &p.frames)
		if err != nil {
			p.Close()
			return nil, err
		}
		if _, dup := p.conns[sc.serverID]; dup {
			sc.close()
			p.Close()
			return nil, fmt.Errorf("tcpnet: duplicate server ID %d at %s", sc.serverID, a)
		}
		p.conns[sc.serverID] = sc
		p.order = append(p.order, sc.serverID)
	}
	return p, nil
}

// SetLease overrides the lock lease requested by this client.
func (p *Pool) SetLease(d time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if d > 0 {
		p.lease = d
	}
}

// Tracer returns the pool's span tracer (nil unless TraceSample was
// set): per-stage latency digests and the slow-op ring for the client
// half of every stitched span.
func (p *Pool) Tracer() *span.Tracer { return p.tracer }

// traceStart opens a client span for one op against sc, or returns nil
// when tracing is off, the op lost the sampling draw, or the server
// predates the trace extension — negotiation means a peer that never
// advertised featureTrace is never sent an extended frame.
//
//gengar:hotpath
func (p *Pool) traceStart(sc *serverConn, op Op) *span.Span {
	if p.tracer == nil || sc.features&featureTrace == 0 {
		return nil
	}
	return p.tracer.Start(op.String())
}

// traceFor gates an already-open span per connection: a multi-op chain
// spanning servers must not leak extended frames to one that did not
// negotiate the extension.
//
//gengar:hotpath
func traceFor(sc *serverConn, sp *span.Span) *span.Span {
	if sp == nil || sc.features&featureTrace != 0 {
		return sp
	}
	return nil
}

// opFrame reserves a request frame: a plain one on the untraced path,
// one carrying the span's trace extension otherwise. The sp passed here
// must be the sp passed to start, which sets the matching tag bit.
//
//gengar:hotpath
func (p *Pool) opFrame(sp *span.Span, w *payloadWriter, hint int) *[]byte {
	if sp == nil {
		return p.frames.newFrame(w, hint)
	}
	return p.frames.newTracedFrame(w, hint, sp.TraceID())
}

// demux reads response frames into pooled buffers and delivers each to
// its waiter, which owns (and recycles) the buffer from then on.
//
//gengar:hotpath
func (sc *serverConn) demux() {
	defer close(sc.done)
	r := newFrameReader(sc.c, sc.frames)
	for {
		id, status, frame, payload, _, err := r.read()
		if err != nil {
			sc.failAll(err)
			return
		}
		sc.mu.Lock()
		ch := sc.pending[id]
		delete(sc.pending, id)
		sc.mu.Unlock()
		if ch == nil {
			sc.frames.put(frame)
			continue
		}
		if status == statusOK {
			ch <- response{frame: frame, payload: payload}
		} else {
			ch <- response{err: &RemoteError{Msg: string(payload)}}
			sc.frames.put(frame)
		}
	}
}

func (sc *serverConn) failAll(err error) {
	sc.mu.Lock()
	sc.closed = true
	failed := make([]chan response, 0, len(sc.pending))
	for id, ch := range sc.pending {
		delete(sc.pending, id)
		failed = append(failed, ch)
	}
	sc.mu.Unlock()
	// Deliver failures outside sc.mu: the channels are buffered today, but
	// waking callers must never depend on that while the demux lock is held.
	for _, ch := range failed {
		ch <- response{err: fmt.Errorf("tcpnet: connection lost: %w", err)}
	}
}

// dead reports whether the connection has failed and needs redialing.
func (sc *serverConn) dead() bool {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.closed
}

// start registers a waiter and enqueues a request frame whose payload
// was encoded in place over f via w. The returned channel receives
// exactly one response; pass it to wait. Frames started back-to-back
// before their waits coalesce into one writev. A non-nil sp means f was
// reserved via opFrame with the trace extension in place; start sets
// the matching tag bit and marks the span's encode stage.
//
//gengar:hotpath
func (sc *serverConn) start(f *[]byte, w *payloadWriter, op Op, sp *span.Span) (chan response, error) {
	ch := waiters.Get().(chan response)
	sc.mu.Lock()
	if sc.closed {
		sc.mu.Unlock()
		waiters.Put(ch)
		sc.frames.put(f)
		return nil, ErrClosed
	}
	sc.nextID++
	id := sc.nextID
	sc.pending[id] = ch
	sc.mu.Unlock()

	tag := uint8(op)
	if sp != nil {
		tag |= tagTraced
	}
	if err := encodeFrameInto(f, w, id, tag); err != nil {
		sc.abort(id, ch)
		sc.frames.put(f)
		return nil, err
	}
	if err := sc.q.enqueue(f); err != nil {
		sc.abort(id, ch)
		return nil, fmt.Errorf("tcpnet: send: %w", err)
	}
	sp.Mark(span.StageEncode)
	return ch, nil
}

// unregister removes a pending waiter and reports whether it was still
// registered. A false return means demux or failAll claimed the id
// first and has sent (or will send) exactly one response into the
// waiter channel.
func (sc *serverConn) unregister(id uint64) bool {
	sc.mu.Lock()
	_, ok := sc.pending[id]
	delete(sc.pending, id)
	sc.mu.Unlock()
	return ok
}

// abort retires the waiter of a request that failed before reaching the
// wire. If a concurrent demux or failAll claimed the id in the window
// between registration and the failure, the channel's one guaranteed
// response is drained (recycling any frame it carries) before the
// channel returns to the pool — re-pooling it buffered would hand a
// stale response, or another request's payload, to a future caller.
func (sc *serverConn) abort(id uint64, ch chan response) {
	if !sc.unregister(id) {
		sc.release(<-ch)
	}
	waiters.Put(ch)
}

// wait receives the response started on ch. The caller must release
// the returned response once decoded.
//
//gengar:hotpath
func (sc *serverConn) wait(ch chan response, op Op, sp *span.Span) (response, error) {
	resp := <-ch
	waiters.Put(ch)
	sp.Mark(span.StageNetWait)
	if resp.err != nil {
		if re, ok := resp.err.(*RemoteError); ok {
			re.Op = op
		}
		return response{}, resp.err
	}
	return resp, nil
}

// release recycles a response's pooled frame once its payload is dead.
//
//gengar:hotpath
func (sc *serverConn) release(resp response) {
	if resp.frame != nil {
		sc.frames.put(resp.frame)
	}
}

// roundTrip issues one request and waits for its response.
//
//gengar:hotpath
func (sc *serverConn) roundTrip(f *[]byte, w *payloadWriter, op Op, sp *span.Span) (response, error) {
	ch, err := sc.start(f, w, op, sp)
	if err != nil {
		return response{}, err
	}
	return sc.wait(ch, op, sp)
}

// call issues one request and waits, discarding any response payload —
// for ops whose reply is empty (write, free, locks).
//
//gengar:hotpath
func (sc *serverConn) call(f *[]byte, w *payloadWriter, op Op, sp *span.Span) error {
	resp, err := sc.roundTrip(f, w, op, sp)
	if err != nil {
		return err
	}
	sc.release(resp)
	return nil
}

func (sc *serverConn) close() {
	_ = sc.c.Close()
	<-sc.done
	sc.q.close()
}

// connByID returns a live connection to the given server, redialing a
// dead one. Unknown server IDs are an error.
func (p *Pool) connByID(id uint16) (*serverConn, error) {
	p.mu.Lock()
	sc := p.conns[id]
	closed := p.closed
	p.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	if sc == nil {
		return nil, fmt.Errorf("tcpnet: no connection to server %d", id)
	}
	if !sc.dead() {
		return sc, nil
	}
	return p.redial(id, sc.addr)
}

// redial replaces a dead connection to server id, retrying with
// backoff. Concurrent callers coalesce on redialMu: whoever enters
// first dials; the rest find the fresh connection installed.
func (p *Pool) redial(id uint16, addr string) (*serverConn, error) {
	//gengar:lint-ignore lock-across-blocking redialMu intentionally serializes the blocking dial+backoff loop so one failure burst dials each dead server once
	p.redialMu.Lock()
	defer p.redialMu.Unlock()

	// Someone else may have reconnected while we waited.
	p.mu.Lock()
	sc := p.conns[id]
	closed := p.closed
	p.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	if sc != nil && !sc.dead() {
		return sc, nil
	}

	var lastErr error
	backoff := redialBackoff
	for try := 0; try < redialTries; try++ {
		if try > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		fresh, err := dialServer(addr, &p.cfg, &p.frames)
		if err != nil {
			lastErr = err
			continue
		}
		if fresh.serverID != id {
			fresh.close()
			return nil, fmt.Errorf("tcpnet: %s now reports server ID %d, want %d", addr, fresh.serverID, id)
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			fresh.close()
			return nil, ErrClosed
		}
		p.conns[id] = fresh
		p.mu.Unlock()
		return fresh, nil
	}
	return nil, fmt.Errorf("tcpnet: reconnect to server %d (%s) failed after %d tries: %w",
		id, addr, redialTries, lastErr)
}

func (p *Pool) conn(addr region.GAddr) (*serverConn, error) {
	p.mu.Lock()
	known := p.conns[addr.Server()] != nil
	p.mu.Unlock()
	if !known {
		return nil, fmt.Errorf("tcpnet: no connection to server %d (%v)", addr.Server(), addr)
	}
	return p.connByID(addr.Server())
}

// Malloc allocates size bytes, choosing home servers round-robin.
func (p *Pool) Malloc(size int64) (region.GAddr, error) {
	p.mu.Lock()
	if len(p.order) == 0 {
		p.mu.Unlock()
		return region.NilGAddr, ErrClosed
	}
	id := p.order[p.rr%len(p.order)]
	p.rr++
	p.mu.Unlock()

	sc, err := p.connByID(id)
	if err != nil {
		return region.NilGAddr, err
	}
	var w payloadWriter
	f := p.frames.newFrame(&w, 8)
	w.I64(size)
	resp, err := sc.roundTrip(f, &w, OpMalloc, nil)
	if err != nil {
		return region.NilGAddr, err
	}
	var r payloadReader
	r.Reset(resp.payload)
	addr := region.GAddr(r.U64())
	err = r.Err()
	sc.release(resp)
	return addr, err
}

// Free releases an object.
func (p *Pool) Free(addr region.GAddr) error {
	return p.addrOp(OpFree, addr)
}

// Read fills buf from global memory at addr.
//
//gengar:hotpath
func (p *Pool) Read(addr region.GAddr, buf []byte) error {
	_, err := p.ReadCheck(addr, buf)
	return err
}

// ReadCheck fills buf from global memory at addr and reports whether
// the daemon served it from the DRAM cache (a promoted hot object) —
// its own arena or, for a copy it spilled, a peer daemon's.
//
//gengar:hotpath
func (p *Pool) ReadCheck(addr region.GAddr, buf []byte) (hit bool, err error) {
	sc, err := p.conn(addr)
	if err != nil {
		return false, err
	}
	sp := p.traceStart(sc, OpRead)
	var w payloadWriter
	f := p.opFrame(sp, &w, 12)
	w.U64(uint64(addr)).U32(uint32(len(buf)))
	resp, err := sc.roundTrip(f, &w, OpRead, sp)
	if err != nil {
		sp.Finish()
		return false, err
	}
	hit, err = decodeReadInto(sc, resp, buf)
	sp.Mark(span.StageDecode)
	sp.Finish()
	return hit, err
}

// decodeReadInto copies an OpRead reply into the caller's buffer and
// recycles the response frame.
//
//gengar:hotpath
func decodeReadInto(sc *serverConn, resp response, buf []byte) (hit bool, err error) {
	var r payloadReader
	r.Reset(resp.payload)
	data := r.Blob()
	// The source byte is engine.ReadSource: 0 NVM miss, nonzero a DRAM
	// cache hit (1 the daemon's own arena, 2 proxied through a peer's).
	hit = r.U8() != 0
	if err := r.Err(); err != nil {
		sc.release(resp)
		return false, err
	}
	if len(data) != len(buf) {
		sc.release(resp)
		return false, fmt.Errorf("tcpnet: short read: %d of %d bytes", len(data), len(buf))
	}
	copy(buf, data)
	sc.release(resp)
	return hit, nil
}

// Write stores data at addr.
//
//gengar:hotpath
func (p *Pool) Write(addr region.GAddr, data []byte) error {
	sc, err := p.conn(addr)
	if err != nil {
		return err
	}
	sp := p.traceStart(sc, OpWrite)
	var w payloadWriter
	f := p.opFrame(sp, &w, 8+4+len(data))
	w.U64(uint64(addr)).Blob(data)
	err = sc.call(f, &w, OpWrite, sp)
	sp.Finish()
	return err
}

// WriteReq is one record of a batched write.
type WriteReq struct {
	Addr region.GAddr
	Data []byte
}

// ReadReq is one record of a batched read: Buf gives both the length
// requested and where the bytes land.
type ReadReq struct {
	Addr region.GAddr
	Buf  []byte
}

// inflight tracks one started request awaiting its response.
type inflight struct {
	sc *serverConn
	ch chan response
	op Op
}

// ReadMulti fills every request's Buf — the wire analogue of the RDMA
// client's doorbell-batched READ chains. All requests are started
// before any is waited on, so a k-record chain to one daemon leaves in
// a single writev and overlaps its round trips across daemons. The
// first failure is reported after every started request has settled.
func (p *Pool) ReadMulti(reqs []ReadReq) error {
	if len(reqs) == 0 {
		return nil
	}
	started := make([]inflight, 0, len(reqs))
	var firstErr error
	var sp *span.Span
	for i := range reqs {
		sc, err := p.conn(reqs[i].Addr)
		if err != nil {
			firstErr = err
			break
		}
		if i == 0 {
			sp = p.traceStart(sc, OpRead)
		}
		fsp := traceFor(sc, sp)
		var w payloadWriter
		f := p.opFrame(fsp, &w, 12)
		w.U64(uint64(reqs[i].Addr)).U32(uint32(len(reqs[i].Buf)))
		ch, err := sc.start(f, &w, OpRead, fsp)
		if err != nil {
			firstErr = err
			break
		}
		started = append(started, inflight{sc: sc, ch: ch, op: OpRead})
	}
	for i, fl := range started {
		resp, err := fl.sc.wait(fl.ch, fl.op, traceFor(fl.sc, sp))
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if _, err := decodeReadInto(fl.sc, resp, reqs[i].Buf); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	sp.Mark(span.StageDecode)
	sp.Finish()
	return firstErr
}

// WriteMulti stores a batch of records, one OpWriteBatch frame per home
// server — the wire analogue of the RDMA client's doorbell-batched
// write chains. Records to the same server land in request order; the
// per-server chains are started together and overlap their round trips.
func (p *Pool) WriteMulti(reqs []WriteReq) error {
	if len(reqs) == 0 {
		return nil
	}
	// Group by home server, preserving per-server request order.
	groups := make(map[uint16][]WriteReq)
	var order []uint16
	for _, r := range reqs {
		id := r.Addr.Server()
		if _, seen := groups[id]; !seen {
			order = append(order, id)
		}
		groups[id] = append(groups[id], r)
	}
	started := make([]inflight, 0, len(order))
	var firstErr error
	var sp *span.Span
	for i, id := range order {
		sc, err := p.connByID(id)
		if err != nil {
			firstErr = err
			break
		}
		if i == 0 {
			sp = p.traceStart(sc, OpWriteBatch)
		}
		fsp := traceFor(sc, sp)
		chain := groups[id]
		size := 4
		for _, r := range chain {
			size += 8 + 4 + len(r.Data)
		}
		var w payloadWriter
		f := p.opFrame(fsp, &w, size)
		w.U32(uint32(len(chain)))
		for _, r := range chain {
			w.U64(uint64(r.Addr)).Blob(r.Data)
		}
		ch, err := sc.start(f, &w, OpWriteBatch, fsp)
		if err != nil {
			firstErr = err
			break
		}
		started = append(started, inflight{sc: sc, ch: ch, op: OpWriteBatch})
	}
	for _, fl := range started {
		resp, err := fl.sc.wait(fl.ch, fl.op, traceFor(fl.sc, sp))
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		fl.sc.release(resp)
	}
	sp.Finish()
	return firstErr
}

// Digest reports client-observed access counts to the home servers, one
// OpDigest frame per server. It returns each server's remap epoch.
func (p *Pool) Digest(entries []hotness.Entry) (map[uint16]uint64, error) {
	epochs := make(map[uint16]uint64)
	groups := make(map[uint16][]hotness.Entry)
	var order []uint16
	for _, e := range entries {
		id := e.Addr.Server()
		if _, seen := groups[id]; !seen {
			order = append(order, id)
		}
		groups[id] = append(groups[id], e)
	}
	for _, id := range order {
		sc, err := p.connByID(id)
		if err != nil {
			return nil, err
		}
		batch := groups[id]
		var w payloadWriter
		f := p.frames.newFrame(&w, 4+16*len(batch))
		w.U32(uint32(len(batch)))
		for _, e := range batch {
			w.U64(uint64(e.Addr)).U32(uint32(e.Reads)).U32(uint32(e.Writes))
		}
		resp, err := sc.roundTrip(f, &w, OpDigest, nil)
		if err != nil {
			return nil, err
		}
		var r payloadReader
		r.Reset(resp.payload)
		epochs[id] = r.U64()
		err = r.Err()
		sc.release(resp)
		if err != nil {
			return nil, err
		}
	}
	return epochs, nil
}

// Version returns the version word covering addr — bumped on every
// exclusive-lock release, so readers can detect concurrent updates.
func (p *Pool) Version(addr region.GAddr) (uint64, error) {
	sc, err := p.conn(addr)
	if err != nil {
		return 0, err
	}
	var w payloadWriter
	f := p.frames.newFrame(&w, 8)
	w.U64(uint64(addr))
	resp, err := sc.roundTrip(f, &w, OpVersion, nil)
	if err != nil {
		return 0, err
	}
	var r payloadReader
	r.Reset(resp.payload)
	v := r.U64()
	err = r.Err()
	sc.release(resp)
	return v, err
}

// LockExclusive takes the write lock covering addr with the pool's
// lease.
func (p *Pool) LockExclusive(addr region.GAddr) error { return p.lockOp(OpLockEx, addr) }

// UnlockExclusive releases the write lock covering addr.
func (p *Pool) UnlockExclusive(addr region.GAddr) error { return p.addrOp(OpUnlockEx, addr) }

// LockShared takes a read lock covering addr with the pool's lease.
func (p *Pool) LockShared(addr region.GAddr) error { return p.lockOp(OpLockSh, addr) }

// UnlockShared releases a read lock covering addr.
func (p *Pool) UnlockShared(addr region.GAddr) error { return p.addrOp(OpUnlockSh, addr) }

func (p *Pool) lockOp(op Op, addr region.GAddr) error {
	sc, err := p.conn(addr)
	if err != nil {
		return err
	}
	p.mu.Lock()
	lease := p.lease
	p.mu.Unlock()
	sp := p.traceStart(sc, op)
	var w payloadWriter
	f := p.opFrame(sp, &w, 12)
	w.U64(uint64(addr)).U32(uint32(lease / time.Millisecond))
	err = sc.call(f, &w, op, sp)
	sp.Finish()
	return err
}

func (p *Pool) addrOp(op Op, addr region.GAddr) error {
	sc, err := p.conn(addr)
	if err != nil {
		return err
	}
	var w payloadWriter
	f := p.frames.newFrame(&w, 8)
	w.U64(uint64(addr))
	return sc.call(f, &w, op, nil)
}

// Stats fetches every server's snapshot, in dial order.
func (p *Pool) Stats() ([]ServerStats, error) {
	p.mu.Lock()
	order := append([]uint16(nil), p.order...)
	p.mu.Unlock()
	out := make([]ServerStats, 0, len(order))
	for _, id := range order {
		sc, err := p.connByID(id)
		if err != nil {
			return nil, err
		}
		var w payloadWriter
		f := p.frames.newFrame(&w, 0)
		resp, err := sc.roundTrip(f, &w, OpStats, nil)
		if err != nil {
			return nil, err
		}
		var r payloadReader
		r.Reset(resp.payload)
		st := ServerStats{
			ServerID:    id,
			Objects:     r.I64(),
			PoolUsed:    r.I64(),
			Ops:         r.I64(),
			CacheHits:   r.I64(),
			CacheMisses: r.I64(),
			Staged:      r.I64(),
			Flushed:     r.I64(),
			Promotions:  r.I64(),
			Demotions:   r.I64(),
			Promoted:    r.I64(),
			Digests:     r.I64(),
			RemapEpoch:  r.U64(),
			PoolBytes:   sc.poolBytes,
		}
		st.PeerHits = r.I64()
		st.PeerErrors = r.I64()
		st.HostedCopies = r.I64()
		st.HostedBytes = r.I64()
		st.SpilledBytes = r.I64()
		st.PeersLive = r.I64()
		st.FlushedBytes = r.I64()
		st.NVMWrites = r.I64()
		st.Coalesced = r.I64()
		st.BackoffLevel = r.I64()
		err = r.Err()
		sc.release(resp)
		if err != nil {
			return nil, err
		}
		out = append(out, st)
	}
	return out, nil
}

// WireStats reports the client's frame-pool recycling counters — how
// many request/response buffers were served from the pool versus
// freshly allocated.
func (p *Pool) WireStats() (poolHits, poolMisses int64) {
	return p.frames.hits.Load(), p.frames.misses.Load()
}

// Close tears down every connection.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	conns := make([]*serverConn, 0, len(p.conns))
	for _, sc := range p.conns {
		conns = append(conns, sc)
	}
	p.conns = make(map[uint16]*serverConn)
	p.order = nil
	p.mu.Unlock()
	for _, sc := range conns {
		sc.close()
	}
}
