package tcpnet

import (
	"fmt"
	"net"
	"sync"
	"time"

	"gengar/internal/region"
)

// DefaultLease is the lock lease clients request unless overridden.
const DefaultLease = 5 * time.Second

// ServerStats is a daemon's activity snapshot.
type ServerStats struct {
	ServerID  uint16
	Objects   int64
	PoolUsed  int64
	Ops       int64
	PoolBytes int64
}

// Pool is a client of a set of gengard daemons: one TCP connection per
// server, requests pipelined and demultiplexed by ID. It is safe for
// concurrent use.
type Pool struct {
	mu    sync.Mutex
	conns map[uint16]*serverConn
	order []uint16
	rr    int
	lease time.Duration
}

// serverConn is one pipelined connection to a daemon.
type serverConn struct {
	serverID  uint16
	poolBytes int64

	c       net.Conn
	writeMu sync.Mutex

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan response
	closed  bool
	done    chan struct{}
}

type response struct {
	payload []byte
	err     error
}

// Dial connects to every daemon address, performs the hello handshake
// and returns a pool client. All servers must report distinct IDs.
func Dial(addrs []string, timeout time.Duration) (*Pool, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("tcpnet: no server addresses")
	}
	p := &Pool{conns: make(map[uint16]*serverConn), lease: DefaultLease}
	for _, a := range addrs {
		nc, err := net.DialTimeout("tcp", a, timeout)
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("tcpnet: dial %s: %w", a, err)
		}
		sc := &serverConn{
			c:       nc,
			pending: make(map[uint64]chan response),
			done:    make(chan struct{}),
		}
		go sc.demux()
		resp, err := sc.call(OpHello, nil)
		if err != nil {
			sc.close()
			p.Close()
			return nil, fmt.Errorf("tcpnet: hello %s: %w", a, err)
		}
		r := newPayloadReader(resp)
		sc.serverID = r.U16()
		sc.poolBytes = r.I64()
		if err := r.Err(); err != nil {
			sc.close()
			p.Close()
			return nil, err
		}
		if _, dup := p.conns[sc.serverID]; dup {
			sc.close()
			p.Close()
			return nil, fmt.Errorf("tcpnet: duplicate server ID %d at %s", sc.serverID, a)
		}
		p.conns[sc.serverID] = sc
		p.order = append(p.order, sc.serverID)
	}
	return p, nil
}

// SetLease overrides the lock lease requested by this client.
func (p *Pool) SetLease(d time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if d > 0 {
		p.lease = d
	}
}

func (sc *serverConn) demux() {
	defer close(sc.done)
	for {
		id, status, payload, err := readFrame(sc.c)
		if err != nil {
			sc.failAll(err)
			return
		}
		sc.mu.Lock()
		ch := sc.pending[id]
		delete(sc.pending, id)
		sc.mu.Unlock()
		if ch == nil {
			continue
		}
		if status == statusOK {
			ch <- response{payload: payload}
		} else {
			ch <- response{err: &RemoteError{Msg: string(payload)}}
		}
	}
}

func (sc *serverConn) failAll(err error) {
	sc.mu.Lock()
	sc.closed = true
	failed := make([]chan response, 0, len(sc.pending))
	for id, ch := range sc.pending {
		delete(sc.pending, id)
		failed = append(failed, ch)
	}
	sc.mu.Unlock()
	// Deliver failures outside sc.mu: the channels are buffered today, but
	// waking callers must never depend on that while the demux lock is held.
	for _, ch := range failed {
		ch <- response{err: fmt.Errorf("tcpnet: connection lost: %w", err)}
	}
}

// call issues one request and waits for its response payload.
func (sc *serverConn) call(op Op, payload []byte) ([]byte, error) {
	ch := make(chan response, 1)
	sc.mu.Lock()
	if sc.closed {
		sc.mu.Unlock()
		return nil, ErrClosed
	}
	sc.nextID++
	id := sc.nextID
	sc.pending[id] = ch
	sc.mu.Unlock()

	sc.writeMu.Lock()
	err := writeFrame(sc.c, id, uint8(op), payload)
	sc.writeMu.Unlock()
	if err != nil {
		sc.mu.Lock()
		delete(sc.pending, id)
		sc.mu.Unlock()
		return nil, fmt.Errorf("tcpnet: send: %w", err)
	}
	resp := <-ch
	if resp.err != nil {
		if re, ok := resp.err.(*RemoteError); ok {
			re.Op = op
		}
		return nil, resp.err
	}
	return resp.payload, nil
}

func (sc *serverConn) close() {
	_ = sc.c.Close()
	<-sc.done
}

func (p *Pool) conn(addr region.GAddr) (*serverConn, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	sc := p.conns[addr.Server()]
	if sc == nil {
		return nil, fmt.Errorf("tcpnet: no connection to server %d (%v)", addr.Server(), addr)
	}
	return sc, nil
}

// Malloc allocates size bytes, choosing home servers round-robin.
func (p *Pool) Malloc(size int64) (region.GAddr, error) {
	p.mu.Lock()
	if len(p.order) == 0 {
		p.mu.Unlock()
		return region.NilGAddr, ErrClosed
	}
	id := p.order[p.rr%len(p.order)]
	p.rr++
	sc := p.conns[id]
	p.mu.Unlock()

	var w payloadWriter
	w.I64(size)
	resp, err := sc.call(OpMalloc, w.Bytes())
	if err != nil {
		return region.NilGAddr, err
	}
	r := newPayloadReader(resp)
	addr := region.GAddr(r.U64())
	return addr, r.Err()
}

// Free releases an object.
func (p *Pool) Free(addr region.GAddr) error {
	return p.addrOp(OpFree, addr)
}

// Read fills buf from global memory at addr.
func (p *Pool) Read(addr region.GAddr, buf []byte) error {
	sc, err := p.conn(addr)
	if err != nil {
		return err
	}
	var w payloadWriter
	w.U64(uint64(addr)).U32(uint32(len(buf)))
	resp, err := sc.call(OpRead, w.Bytes())
	if err != nil {
		return err
	}
	r := newPayloadReader(resp)
	data := r.Blob()
	if err := r.Err(); err != nil {
		return err
	}
	if len(data) != len(buf) {
		return fmt.Errorf("tcpnet: short read: %d of %d bytes", len(data), len(buf))
	}
	copy(buf, data)
	return nil
}

// Write stores data at addr.
func (p *Pool) Write(addr region.GAddr, data []byte) error {
	sc, err := p.conn(addr)
	if err != nil {
		return err
	}
	var w payloadWriter
	w.U64(uint64(addr)).Blob(data)
	_, err = sc.call(OpWrite, w.Bytes())
	return err
}

// LockExclusive takes the write lock covering addr with the pool's
// lease.
func (p *Pool) LockExclusive(addr region.GAddr) error { return p.lockOp(OpLockEx, addr) }

// UnlockExclusive releases the write lock covering addr.
func (p *Pool) UnlockExclusive(addr region.GAddr) error { return p.addrOp(OpUnlockEx, addr) }

// LockShared takes a read lock covering addr with the pool's lease.
func (p *Pool) LockShared(addr region.GAddr) error { return p.lockOp(OpLockSh, addr) }

// UnlockShared releases a read lock covering addr.
func (p *Pool) UnlockShared(addr region.GAddr) error { return p.addrOp(OpUnlockSh, addr) }

func (p *Pool) lockOp(op Op, addr region.GAddr) error {
	sc, err := p.conn(addr)
	if err != nil {
		return err
	}
	p.mu.Lock()
	lease := p.lease
	p.mu.Unlock()
	var w payloadWriter
	w.U64(uint64(addr)).U32(uint32(lease / time.Millisecond))
	_, err = sc.call(op, w.Bytes())
	return err
}

func (p *Pool) addrOp(op Op, addr region.GAddr) error {
	sc, err := p.conn(addr)
	if err != nil {
		return err
	}
	var w payloadWriter
	w.U64(uint64(addr))
	_, err = sc.call(op, w.Bytes())
	return err
}

// Stats fetches every server's snapshot, in dial order.
func (p *Pool) Stats() ([]ServerStats, error) {
	p.mu.Lock()
	order := append([]uint16(nil), p.order...)
	p.mu.Unlock()
	out := make([]ServerStats, 0, len(order))
	for _, id := range order {
		p.mu.Lock()
		sc := p.conns[id]
		p.mu.Unlock()
		if sc == nil {
			continue
		}
		resp, err := sc.call(OpStats, nil)
		if err != nil {
			return nil, err
		}
		r := newPayloadReader(resp)
		st := ServerStats{
			ServerID:  id,
			Objects:   r.I64(),
			PoolUsed:  r.I64(),
			Ops:       r.I64(),
			PoolBytes: sc.poolBytes,
		}
		if err := r.Err(); err != nil {
			return nil, err
		}
		out = append(out, st)
	}
	return out, nil
}

// Close tears down every connection.
func (p *Pool) Close() {
	p.mu.Lock()
	conns := make([]*serverConn, 0, len(p.conns))
	for _, sc := range p.conns {
		conns = append(conns, sc)
	}
	p.conns = make(map[uint16]*serverConn)
	p.order = nil
	p.mu.Unlock()
	for _, sc := range conns {
		sc.close()
	}
}
