package tcpnet

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// tracedSeed builds one complete wire frame carrying a trace extension
// with the given extLen byte and body, for seeding the fuzzer with
// well-formed and malformed extension shapes.
func tracedSeed(id uint64, op Op, extLen byte, extBody, payload []byte) []byte {
	body := make([]byte, 0, 9+1+len(extBody)+len(payload))
	body = binary.BigEndian.AppendUint64(body, id)
	body = append(body, uint8(op)|tagTraced)
	body = append(body, extLen)
	body = append(body, extBody...)
	body = append(body, payload...)
	frame := binary.BigEndian.AppendUint32(nil, uint32(len(body)))
	return append(frame, body...)
}

// FuzzReadFrame throws arbitrary byte streams at the frame reader. The
// reader must never panic, never hand back a frame that disagrees with
// its own header, must reject oversized or undersized length words with
// ErrFrameTooLarge rather than attempting the allocation, and must
// decode or reject the versioned trace extension without ever letting a
// malformed extension leak into the delivered payload.
func FuzzReadFrame(f *testing.F) {
	// A well-formed small frame.
	good, _ := (&framePool{}).encodeFrame(42, uint8(OpRead), []byte("payload"))
	f.Add(*good)
	// Truncated header: too few bytes for even the length word.
	f.Add([]byte{0x00, 0x00})
	// Length word present, body missing entirely.
	f.Add([]byte{0x00, 0x00, 0x00, 0x20})
	// Oversized length word.
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3})
	// Undersized length word (below the id+tag minimum).
	f.Add([]byte{0x00, 0x00, 0x00, 0x04, 1, 2, 3, 4})
	// Short body: header promises more than the stream holds.
	short := make([]byte, 4+9)
	binary.BigEndian.PutUint32(short, 64)
	f.Add(short)
	// Two frames back to back, second truncated mid-body.
	double := append(append([]byte(nil), *good...), (*good)[:len(*good)-3]...)
	f.Add(double)
	// A well-formed traced frame: sampled flag + trace ID + payload.
	ext := append([]byte{traceFlagSampled}, binary.BigEndian.AppendUint64(nil, 0xabcdef01)...)
	f.Add(tracedSeed(7, OpRead, traceExtLen, ext, []byte("pay")))
	// A longer extension from a future peer: the tail must be skipped.
	f.Add(tracedSeed(7, OpRead, traceExtLen+4, append(ext, 1, 2, 3, 4), []byte("pay")))
	// Truncated extension: traced tag but body ends mid-extension.
	f.Add(tracedSeed(7, OpRead, traceExtLen, ext[:4], nil))
	// Undersized extension length word (below this version's fields).
	f.Add(tracedSeed(7, OpRead, 4, ext, []byte("pay")))
	// Extension length word pointing past the body.
	f.Add(tracedSeed(7, OpRead, 200, ext, nil))

	f.Fuzz(func(t *testing.T, stream []byte) {
		var pool framePool
		r := newFrameReader(bytes.NewReader(stream), &pool)
		for {
			id, tag, frame, payload, ext, err := r.read()
			if err != nil {
				if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) &&
					!errors.Is(err, ErrFrameTooLarge) {
					t.Fatalf("unexpected error class: %v", err)
				}
				return
			}
			// A delivered frame must be self-consistent: the body we
			// decode from the raw bytes matches what read() reported.
			raw := *frame
			if len(raw) < 9 {
				t.Fatalf("delivered body of %d bytes, below the id+tag minimum", len(raw))
			}
			if got := binary.BigEndian.Uint64(raw); got != id {
				t.Fatalf("frame id %d != reported %d", got, id)
			}
			if tag&tagTraced != 0 {
				t.Fatalf("reported tag %#x still carries the traced bit", tag)
			}
			if raw[8]&^tagTraced != tag {
				t.Fatalf("frame tag %d != reported %d", raw[8], tag)
			}
			rest := raw[9:]
			if raw[8]&tagTraced != 0 {
				// A traced frame that survived read() must have a
				// well-formed extension, decoded and stripped.
				if !ext.present {
					t.Fatal("traced frame delivered without a decoded extension")
				}
				extLen := int(rest[0])
				if extLen < traceExtLen || 1+extLen > len(rest) {
					t.Fatalf("malformed extension (extLen=%d body=%d) was delivered", extLen, len(rest))
				}
				if ext.sampled != (rest[1]&traceFlagSampled != 0) {
					t.Fatalf("sampled flag %v disagrees with wire byte %#x", ext.sampled, rest[1])
				}
				if got := binary.BigEndian.Uint64(rest[2:]); got != ext.traceID {
					t.Fatalf("trace ID %#x != reported %#x", got, ext.traceID)
				}
				rest = rest[1+extLen:]
			} else if ext.present {
				t.Fatal("untraced frame delivered an extension")
			}
			if !bytes.Equal(rest, payload) {
				t.Fatal("payload does not alias frame body")
			}
			pool.put(frame)
		}
	})
}
