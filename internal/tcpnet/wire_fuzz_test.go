package tcpnet

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// FuzzReadFrame throws arbitrary byte streams at the frame reader. The
// reader must never panic, never hand back a frame that disagrees with
// its own header, and must reject oversized or undersized length words
// with ErrFrameTooLarge rather than attempting the allocation.
func FuzzReadFrame(f *testing.F) {
	// A well-formed small frame.
	good, _ := (&framePool{}).encodeFrame(42, uint8(OpRead), []byte("payload"))
	f.Add(*good)
	// Truncated header: too few bytes for even the length word.
	f.Add([]byte{0x00, 0x00})
	// Length word present, body missing entirely.
	f.Add([]byte{0x00, 0x00, 0x00, 0x20})
	// Oversized length word.
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3})
	// Undersized length word (below the id+tag minimum).
	f.Add([]byte{0x00, 0x00, 0x00, 0x04, 1, 2, 3, 4})
	// Short body: header promises more than the stream holds.
	short := make([]byte, 4+9)
	binary.BigEndian.PutUint32(short, 64)
	f.Add(short)
	// Two frames back to back, second truncated mid-body.
	double := append(append([]byte(nil), *good...), (*good)[:len(*good)-3]...)
	f.Add(double)

	f.Fuzz(func(t *testing.T, stream []byte) {
		var pool framePool
		r := newFrameReader(bytes.NewReader(stream), &pool)
		for {
			id, tag, frame, payload, err := r.read()
			if err != nil {
				if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) &&
					!errors.Is(err, ErrFrameTooLarge) {
					t.Fatalf("unexpected error class: %v", err)
				}
				return
			}
			// A delivered frame must be self-consistent: the body we
			// decode from the raw bytes matches what read() reported.
			raw := *frame
			if len(raw) < 9 {
				t.Fatalf("delivered body of %d bytes, below the id+tag minimum", len(raw))
			}
			if got := binary.BigEndian.Uint64(raw); got != id {
				t.Fatalf("frame id %d != reported %d", got, id)
			}
			if raw[8] != tag {
				t.Fatalf("frame tag %d != reported %d", raw[8], tag)
			}
			if !bytes.Equal(raw[9:], payload) {
				t.Fatal("payload does not alias frame body")
			}
			pool.put(frame)
		}
	})
}
