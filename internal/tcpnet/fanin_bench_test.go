package tcpnet

import (
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gengar/internal/region"
)

// The E19 fan-in suite: one daemon, a growing number of client
// connections (one Pool per connection), every read served from the
// DRAM cache. This is the scaling experiment the sharded hot-path work
// targets — before it, every cache hit serialized on the device mutex,
// so fan-in flattened at one connection's throughput. Results are
// recorded in EXPERIMENTS.md (E19) and results/e19.csv; `make
// bench-scale` runs the short smoke.
//
// Environment hooks for the harness:
//
//	GENGAR_E19_CSV=<path>        append one row per subtest
//	GENGAR_E19_TELEMETRY=<path>  dump the daemon telemetry snapshot
//	                             (seqlock retry counters, shard gauges)

var e19Conns = []int{1, 2, 4, 8, 16, 32, 64}

// startFanInServer runs one daemon with a server-side digest cadence
// fast enough to promote the working set during warm-up.
func startFanInServer(b *testing.B) (*PoolServer, string) {
	b.Helper()
	srv, err := NewPoolServer(ServerConfig{ID: 1, PoolBytes: 64 << 20, DigestEvery: 16})
	if err != nil {
		b.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go func() { _ = srv.Serve(lis) }()
	b.Cleanup(func() {
		maybeDumpE19Telemetry(b, srv)
		srv.Close()
	})
	return srv, lis.Addr().String()
}

// warmPromoted mallocs n objects and hammers them until every read is a
// cache hit, so the measured section runs entirely on the lock-free hit
// path.
func warmPromoted(b *testing.B, p *Pool, n, size int) []region.GAddr {
	b.Helper()
	addrs := benchObjects(b, p, n, size)
	buf := make([]byte, size)
	deadline := time.Now().Add(30 * time.Second)
	for _, a := range addrs {
		for {
			hit, err := p.ReadCheck(a, buf)
			if err != nil {
				b.Fatal(err)
			}
			if hit {
				break
			}
			if time.Now().After(deadline) {
				b.Fatal("working set never fully promoted")
			}
		}
	}
	return addrs
}

// BenchmarkTCPFanIn measures aggregate read throughput as independent
// client connections pile onto one daemon. Each connection is its own
// Pool (own socket, own demux goroutine) issuing synchronous 256 B
// reads of promoted objects.
func BenchmarkTCPFanIn(b *testing.B) {
	const size = 256
	conns := e19Conns
	if testing.Short() {
		conns = []int{1, 4, 16}
	}
	for _, c := range conns {
		b.Run(fmt.Sprintf("conns=%d", c), func(b *testing.B) {
			srv, addr := startFanInServer(b)
			warm, err := Dial([]string{addr}, 2*time.Second)
			if err != nil {
				b.Fatal(err)
			}
			defer warm.Close()
			addrs := warmPromoted(b, warm, 16, size)

			pools := make([]*Pool, c)
			for i := range pools {
				p, err := Dial([]string{addr}, 2*time.Second)
				if err != nil {
					b.Fatal(err)
				}
				defer p.Close()
				pools[i] = p
			}

			hits0 := srv.eng.Stats().Hits
			var next atomic.Uint64
			var wg sync.WaitGroup
			b.SetBytes(size)
			b.ReportAllocs()
			b.ResetTimer()
			start := time.Now()
			per := b.N / c
			extra := b.N % c
			for i, p := range pools {
				n := per
				if i < extra {
					n++
				}
				if n == 0 {
					continue
				}
				wg.Add(1)
				go func(p *Pool, n int) {
					defer wg.Done()
					buf := make([]byte, size)
					for j := 0; j < n; j++ {
						a := addrs[next.Add(1)%uint64(len(addrs))]
						if err := p.Read(a, buf); err != nil {
							b.Error(err)
							return
						}
					}
				}(p, n)
			}
			wg.Wait()
			elapsed := time.Since(start)
			b.StopTimer()

			st := srv.eng.Stats()
			served := st.Hits - hits0
			b.ReportMetric(float64(served)/float64(b.N), "hit-frac")
			maybeAppendE19Row(b, c, b.N, elapsed, float64(served)/float64(b.N))
		})
	}
}

// maybeAppendE19Row appends one CSV row per subtest when the E19
// harness asks for it (GENGAR_E19_CSV=<path>).
func maybeAppendE19Row(b *testing.B, conns, ops int, elapsed time.Duration, hitFrac float64) {
	path := os.Getenv("GENGAR_E19_CSV")
	if path == "" {
		return
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		b.Logf("e19 csv: %v", err)
		return
	}
	defer f.Close()
	if st, err := f.Stat(); err == nil && st.Size() == 0 {
		fmt.Fprintln(f, "conns,ops,ns_per_op,ops_per_sec,hit_frac")
	}
	nsPerOp := float64(elapsed.Nanoseconds()) / float64(ops)
	fmt.Fprintf(f, "%d,%d,%.1f,%.0f,%.3f\n",
		conns, ops, nsPerOp, float64(ops)/elapsed.Seconds(), hitFrac)
}

// maybeDumpE19Telemetry writes the daemon's telemetry snapshot
// (GENGAR_E19_TELEMETRY=<path>) so the committed
// results/e19.telemetry.json carries the seqlock and shard gauges of
// the measured run.
func maybeDumpE19Telemetry(b *testing.B, srv *PoolServer) {
	path := os.Getenv("GENGAR_E19_TELEMETRY")
	if path == "" {
		return
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		b.Logf("e19 telemetry: %v", err)
		return
	}
	defer f.Close()
	if err := srv.Telemetry().Snapshot().WriteJSON(f); err != nil {
		b.Logf("e19 telemetry: %v", err)
	}
}
