package tcpnet

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"gengar/internal/region"
)

// startServers launches n daemons on loopback and returns their
// addresses.
func startServers(t *testing.T, n int, mutate func(*ServerConfig)) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		cfg := ServerConfig{ID: uint16(i + 1), PoolBytes: 1 << 20}
		if mutate != nil {
			mutate(&cfg)
		}
		srv, err := NewPoolServer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = lis.Addr().String()
		go func() {
			if err := srv.Serve(lis); err != nil {
				t.Errorf("serve: %v", err)
			}
		}()
		t.Cleanup(srv.Close)
	}
	return addrs
}

func dialPool(t *testing.T, addrs []string) *Pool {
	t.Helper()
	p, err := Dial(addrs, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

func TestServerConfigValidation(t *testing.T) {
	if _, err := NewPoolServer(ServerConfig{ID: 0, PoolBytes: 1 << 20}); err == nil {
		t.Fatal("zero ID accepted")
	}
	if _, err := NewPoolServer(ServerConfig{ID: 1, PoolBytes: 1000}); err == nil {
		t.Fatal("non-pow2 pool accepted")
	}
	if _, err := NewPoolServer(ServerConfig{ID: 1, PoolBytes: 1 << 20, LockSlots: 3}); err == nil {
		t.Fatal("non-pow2 lock slots accepted")
	}
}

func TestDialErrors(t *testing.T) {
	if _, err := Dial(nil, time.Second); err == nil {
		t.Fatal("empty address list accepted")
	}
	if _, err := Dial([]string{"127.0.0.1:1"}, 200*time.Millisecond); err == nil {
		t.Fatal("dial to dead port succeeded")
	}
}

func TestRoundtripAcrossServers(t *testing.T) {
	addrs := startServers(t, 3, nil)
	p := dialPool(t, addrs)

	seen := make(map[uint16]bool)
	for i := 0; i < 6; i++ {
		addr, err := p.Malloc(256)
		if err != nil {
			t.Fatal(err)
		}
		seen[addr.Server()] = true
		want := bytes.Repeat([]byte{byte(i + 1)}, 256)
		if err := p.Write(addr, want); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 256)
		if err := p.Read(addr, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("roundtrip %d mismatch", i)
		}
		if err := p.Free(addr); err != nil {
			t.Fatal(err)
		}
	}
	if len(seen) != 3 {
		t.Fatalf("round robin hit %d servers, want 3", len(seen))
	}
}

func TestErrorsPropagate(t *testing.T) {
	addrs := startServers(t, 1, nil)
	p := dialPool(t, addrs)

	if _, err := p.Malloc(-1); err == nil {
		t.Fatal("negative malloc accepted")
	}
	var re *RemoteError
	_, err := p.Malloc(1 << 30)
	if !errors.As(err, &re) {
		t.Fatalf("oversize malloc error: %v", err)
	}
	// Unknown server in address.
	bogus := region.MustGAddr(42, 64)
	if err := p.Read(bogus, make([]byte, 4)); err == nil {
		t.Fatal("read from unknown server accepted")
	}
	// Wrong home rejected server-side.
	addr, _ := p.Malloc(64)
	wrong := region.MustGAddr(1, 1<<21) // out of pool
	if err := p.Write(wrong, []byte("x")); err == nil {
		t.Fatal("out-of-pool write accepted")
	}
	if err := p.Read(wrong, make([]byte, 8)); err == nil {
		t.Fatal("out-of-pool read accepted")
	}
	_ = p.Free(addr)
	if err := p.Free(addr); err == nil {
		t.Fatal("double free accepted")
	}
}

func TestStats(t *testing.T) {
	addrs := startServers(t, 2, nil)
	p := dialPool(t, addrs)
	a, _ := p.Malloc(128)
	_ = a
	st, err := p.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(st) != 2 {
		t.Fatalf("stats for %d servers", len(st))
	}
	var objs int64
	for _, s := range st {
		if s.PoolBytes != 1<<20 {
			t.Fatalf("pool bytes %d", s.PoolBytes)
		}
		objs += s.Objects
	}
	if objs != 1 {
		t.Fatalf("objects = %d", objs)
	}
}

func TestConcurrentClientsPipelined(t *testing.T) {
	addrs := startServers(t, 2, nil)
	p := dialPool(t, addrs)
	const goroutines, per = 8, 40
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				addr, err := p.Malloc(64)
				if err != nil {
					t.Errorf("malloc: %v", err)
					return
				}
				val := []byte{byte(g), byte(i)}
				if err := p.Write(addr, val); err != nil {
					t.Errorf("write: %v", err)
					return
				}
				got := make([]byte, 2)
				if err := p.Read(addr, got); err != nil {
					t.Errorf("read: %v", err)
					return
				}
				if !bytes.Equal(got, val) {
					t.Errorf("mismatch %v != %v", got, val)
					return
				}
				if err := p.Free(addr); err != nil {
					t.Errorf("free: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestLockedCounterAcrossClients(t *testing.T) {
	addrs := startServers(t, 1, nil)
	setup := dialPool(t, addrs)
	counter, err := setup.Malloc(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := setup.Write(counter, make([]byte, 8)); err != nil {
		t.Fatal(err)
	}

	const clients, per = 4, 50
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		p := dialPool(t, addrs) // separate session per client
		wg.Add(1)
		go func(p *Pool) {
			defer wg.Done()
			buf := make([]byte, 8)
			for i := 0; i < per; i++ {
				if err := p.LockExclusive(counter); err != nil {
					t.Errorf("lock: %v", err)
					return
				}
				if err := p.Read(counter, buf); err != nil {
					t.Errorf("read: %v", err)
					return
				}
				binary.BigEndian.PutUint64(buf, binary.BigEndian.Uint64(buf)+1)
				if err := p.Write(counter, buf); err != nil {
					t.Errorf("write: %v", err)
					return
				}
				if err := p.UnlockExclusive(counter); err != nil {
					t.Errorf("unlock: %v", err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	got := make([]byte, 8)
	if err := setup.Read(counter, got); err != nil {
		t.Fatal(err)
	}
	if n := binary.BigEndian.Uint64(got); n != clients*per {
		t.Fatalf("lost updates: %d, want %d", n, clients*per)
	}
}

func TestSharedLocksAndWriterExclusion(t *testing.T) {
	addrs := startServers(t, 1, func(c *ServerConfig) {
		c.AcquireTimeout = 150 * time.Millisecond
	})
	r1 := dialPool(t, addrs)
	r2 := dialPool(t, addrs)
	w := dialPool(t, addrs)
	addr, _ := r1.Malloc(64)

	if err := r1.LockShared(addr); err != nil {
		t.Fatal(err)
	}
	if err := r2.LockShared(addr); err != nil {
		t.Fatal(err)
	}
	if err := w.LockExclusive(addr); !strings.Contains(fmt.Sprint(err), "timed out") {
		t.Fatalf("writer with readers: %v", err)
	}
	if err := r1.UnlockShared(addr); err != nil {
		t.Fatal(err)
	}
	if err := r2.UnlockShared(addr); err != nil {
		t.Fatal(err)
	}
	if err := w.LockExclusive(addr); err != nil {
		t.Fatalf("writer after readers: %v", err)
	}
	// Release validation.
	if err := r1.UnlockShared(addr); err == nil {
		t.Fatal("unlock of unheld shared lock accepted")
	}
	if err := r1.UnlockExclusive(addr); err == nil {
		t.Fatal("unlock of other's exclusive lock accepted")
	}
}

func TestLeaseRecoversCrashedHolder(t *testing.T) {
	addrs := startServers(t, 1, func(c *ServerConfig) {
		c.AcquireTimeout = 2 * time.Second
	})
	victim := dialPool(t, addrs)
	victim.SetLease(100 * time.Millisecond)
	addr, _ := victim.Malloc(64)
	if err := victim.LockExclusive(addr); err != nil {
		t.Fatal(err)
	}
	victim.Close() // "crash" while holding the lock

	survivor := dialPool(t, addrs)
	start := time.Now()
	if err := survivor.LockExclusive(addr); err != nil {
		t.Fatalf("lease steal failed: %v", err)
	}
	if waited := time.Since(start); waited > time.Second {
		t.Fatalf("lease recovery took %v", waited)
	}
}

func TestServerCloseIsGraceful(t *testing.T) {
	cfg := ServerConfig{ID: 1, PoolBytes: 1 << 20}
	srv, err := NewPoolServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(lis) }()
	p, err := Dial([]string{lis.Addr().String()}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Malloc(64); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if err := <-served; err != nil {
		t.Fatalf("Serve returned %v after Close", err)
	}
	// Calls now fail cleanly.
	if _, err := p.Malloc(64); err == nil {
		t.Fatal("malloc after server close succeeded")
	}
	p.Close()
	srv.Close() // idempotent
}

func TestFrameValidation(t *testing.T) {
	var pool framePool
	// A frame larger than the cap is rejected at encode time.
	if _, err := pool.encodeFrame(1, 1, make([]byte, maxFrame)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversize frame: %v", err)
	}
	// Garbage length is rejected by the frame reader.
	r := newFrameReader(bytes.NewReader([]byte{0xFF, 0xFF, 0xFF, 0xFF}), &pool)
	if _, _, _, _, _, err := r.read(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("garbage length: %v", err)
	}
}

func TestHelloReportsGeometry(t *testing.T) {
	addrs := startServers(t, 1, func(c *ServerConfig) { c.PoolBytes = 1 << 18 })
	p := dialPool(t, addrs)
	st, err := p.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st[0].ServerID != 1 || st[0].PoolBytes != 1<<18 {
		t.Fatalf("hello geometry: %+v", st[0])
	}
}

func TestSnapshotRoundtrip(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/pool.snap"

	cfg := ServerConfig{ID: 3, PoolBytes: 1 << 18}
	srv, err := NewPoolServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lis, _ := net.Listen("tcp", "127.0.0.1:0")
	go func() { _ = srv.Serve(lis) }()
	p, err := Dial([]string{lis.Addr().String()}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	a1, _ := p.Malloc(256)
	a2, _ := p.Malloc(1024)
	want1 := bytes.Repeat([]byte{7}, 256)
	want2 := bytes.Repeat([]byte{9}, 1024)
	if err := p.Write(a1, want1); err != nil {
		t.Fatal(err)
	}
	if err := p.Write(a2, want2); err != nil {
		t.Fatal(err)
	}
	p.Close()
	srv.Close()
	if err := srv.WriteSnapshot(path); err != nil {
		t.Fatal(err)
	}

	// A fresh daemon restores the pool: data and allocation state.
	srv2, err := NewPoolServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv2.RestoreSnapshot(path); err != nil {
		t.Fatal(err)
	}
	lis2, _ := net.Listen("tcp", "127.0.0.1:0")
	go func() { _ = srv2.Serve(lis2) }()
	defer srv2.Close()
	p2, err := Dial([]string{lis2.Addr().String()}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()

	got := make([]byte, 256)
	if err := p2.Read(a1, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want1) {
		t.Fatal("a1 data lost across restart")
	}
	got2 := make([]byte, 1024)
	if err := p2.Read(a2, got2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, want2) {
		t.Fatal("a2 data lost across restart")
	}
	// Old allocations survive as live: freeing works, double free fails.
	if err := p2.Free(a1); err != nil {
		t.Fatal(err)
	}
	if err := p2.Free(a1); err == nil {
		t.Fatal("restored allocation state wrong: double free accepted")
	}
	// New allocations never overlap restored ones.
	a3, err := p2.Malloc(512)
	if err != nil {
		t.Fatal(err)
	}
	if a3 == a2 {
		t.Fatal("fresh allocation reused a live restored block")
	}
	st, err := p2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st[0].Objects != 2 { // a2 restored + a3; a1 freed
		t.Fatalf("objects after restore+ops = %d", st[0].Objects)
	}
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/pool.snap"
	cfg := ServerConfig{ID: 1, PoolBytes: 1 << 16}
	srv, _ := NewPoolServer(cfg)
	if err := srv.WriteSnapshot(path); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(path)

	flip := append([]byte(nil), raw...)
	flip[len(flip)/2] ^= 0xFF
	bad := path + ".bad"
	if err := os.WriteFile(bad, flip, 0o644); err != nil {
		t.Fatal(err)
	}
	srv2, _ := NewPoolServer(cfg)
	if err := srv2.RestoreSnapshot(bad); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("corrupt snapshot: %v", err)
	}
	// Truncated file.
	if err := os.WriteFile(bad, raw[:10], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := srv2.RestoreSnapshot(bad); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("truncated snapshot: %v", err)
	}
	// Mismatched geometry.
	srv3, _ := NewPoolServer(ServerConfig{ID: 2, PoolBytes: 1 << 16})
	if err := srv3.RestoreSnapshot(path); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("wrong-ID snapshot: %v", err)
	}
	// Missing file is a plain I/O error.
	if err := srv2.RestoreSnapshot(dir + "/nope.snap"); err == nil {
		t.Fatal("missing snapshot accepted")
	}
}

func TestFrameRoundtripProperty(t *testing.T) {
	// Property: any (id, tag, payload) under the size cap survives the
	// framing intact.
	var pool framePool
	f := func(id uint64, tag uint8, payload []byte) bool {
		// The traced bit is not a free tag value: it announces a trace
		// extension ahead of the payload (covered by FuzzReadFrame).
		tag &^= tagTraced
		if len(payload) > 1<<16 {
			payload = payload[:1<<16]
		}
		fr, err := pool.encodeFrame(id, tag, payload)
		if err != nil {
			return false
		}
		r := newFrameReader(bytes.NewReader(*fr), &pool)
		gotID, gotTag, frame, gotPayload, _, err := r.read()
		if err != nil {
			return false
		}
		ok := gotID == id && gotTag == tag && bytes.Equal(gotPayload, payload)
		pool.put(frame)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestServerSurvivesGarbageBytes(t *testing.T) {
	// A client that writes garbage must not crash the daemon or poison
	// other sessions.
	addrs := startServers(t, 1, nil)
	raw, err := net.Dial("tcp", addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	_, _ = raw.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3})
	_ = raw.Close()

	p := dialPool(t, addrs)
	if _, err := p.Malloc(64); err != nil {
		t.Fatalf("daemon poisoned by garbage connection: %v", err)
	}
}
