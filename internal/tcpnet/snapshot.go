package tcpnet

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Pool snapshots: gengard persists its exported memory and allocation
// state to a file on shutdown and restores it on start, so a daemon
// restart does not lose the pool — the behavior users expect of a
// *non-volatile* memory service even when the backing store is a file
// standing in for NVM. Only the NVM pool is persisted: the DRAM cache,
// staging rings and lock state are volatile by design and rebuilt from
// traffic after a restart.
//
// Format:
//
//	magic "GGARSNAP" | version u32 | serverID u16 | poolBytes i64
//	allocCount u32 | (off i64, size i64)*   — live allocations
//	pool image (poolBytes raw)
//	crc32(IEEE) of everything above, u32
const (
	snapshotMagic   = "GGARSNAP"
	snapshotVersion = 1
)

// snapshotChunk sizes the streaming copies between the pool device and
// the snapshot file.
const snapshotChunk = 1 << 20

// ErrBadSnapshot reports a corrupt or incompatible snapshot file.
var ErrBadSnapshot = errors.New("tcpnet: bad snapshot")

// WriteSnapshot persists the server's pool to path atomically (via a
// temporary file and rename). Callers must ensure the server is
// quiescent (gengard snapshots after Close, which drains the flusher).
func (s *PoolServer) WriteSnapshot(path string) (err error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			_ = f.Close()
			_ = os.Remove(tmp)
		}
	}()

	crc := crc32.NewIEEE()
	w := bufio.NewWriterSize(io.MultiWriter(f, crc), snapshotChunk)

	if _, err = w.WriteString(snapshotMagic); err != nil {
		return err
	}
	var hdr [4 + 2 + 8]byte
	binary.BigEndian.PutUint32(hdr[0:], snapshotVersion)
	binary.BigEndian.PutUint16(hdr[4:], s.cfg.ID)
	binary.BigEndian.PutUint64(hdr[6:], uint64(s.cfg.PoolBytes))
	if _, err = w.Write(hdr[:]); err != nil {
		return err
	}

	allocs := s.eng.Pool().Live()
	var cnt [4]byte
	binary.BigEndian.PutUint32(cnt[:], uint32(len(allocs)))
	if _, err = w.Write(cnt[:]); err != nil {
		return err
	}
	var rec [16]byte
	for _, a := range allocs {
		binary.BigEndian.PutUint64(rec[0:], uint64(a.Off))
		binary.BigEndian.PutUint64(rec[8:], uint64(a.Size))
		if _, err = w.Write(rec[:]); err != nil {
			return err
		}
	}

	// Stream the pool image out of the device in chunks; ReadRaw takes
	// the device's internal lock per chunk, so a huge pool never pins it.
	nvm := s.eng.NVM()
	buf := make([]byte, snapshotChunk)
	for off := int64(0); off < s.cfg.PoolBytes; off += snapshotChunk {
		n := s.cfg.PoolBytes - off
		if n > snapshotChunk {
			n = snapshotChunk
		}
		if err = nvm.ReadRaw(off, buf[:n]); err != nil {
			return err
		}
		if _, err = w.Write(buf[:n]); err != nil {
			return err
		}
	}
	if err = w.Flush(); err != nil {
		return err
	}
	var sum [4]byte
	binary.BigEndian.PutUint32(sum[:], crc.Sum32())
	if _, err = f.Write(sum[:]); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// RestoreSnapshot loads a snapshot written by WriteSnapshot into a
// freshly-constructed server. The server's ID and pool size must match
// the snapshot's. On any validation failure the server is left
// untouched — no partial restore.
func (s *PoolServer) RestoreSnapshot(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(raw) < len(snapshotMagic)+4+2+8+4+4 {
		return fmt.Errorf("%w: truncated (%d bytes)", ErrBadSnapshot, len(raw))
	}
	body, sum := raw[:len(raw)-4], binary.BigEndian.Uint32(raw[len(raw)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return fmt.Errorf("%w: checksum mismatch", ErrBadSnapshot)
	}
	if string(body[:len(snapshotMagic)]) != snapshotMagic {
		return fmt.Errorf("%w: magic mismatch", ErrBadSnapshot)
	}
	p := body[len(snapshotMagic):]
	version := binary.BigEndian.Uint32(p[0:])
	id := binary.BigEndian.Uint16(p[4:])
	poolBytes := int64(binary.BigEndian.Uint64(p[6:]))
	p = p[14:]
	if version != snapshotVersion {
		return fmt.Errorf("%w: version %d", ErrBadSnapshot, version)
	}
	if id != s.cfg.ID || poolBytes != s.cfg.PoolBytes {
		return fmt.Errorf("%w: snapshot is server %d/%d bytes, this daemon is %d/%d",
			ErrBadSnapshot, id, poolBytes, s.cfg.ID, s.cfg.PoolBytes)
	}

	n := binary.BigEndian.Uint32(p)
	p = p[4:]
	if int64(len(p)) != int64(n)*16+poolBytes {
		return fmt.Errorf("%w: body length %d inconsistent", ErrBadSnapshot, len(p))
	}
	// Validate every allocation record before mutating any engine state,
	// so a bad snapshot never leaves a half-restored pool.
	type allocRec struct{ off, size int64 }
	recs := make([]allocRec, 0, n)
	for i := uint32(0); i < n; i++ {
		off := int64(binary.BigEndian.Uint64(p[0:]))
		size := int64(binary.BigEndian.Uint64(p[8:]))
		p = p[16:]
		if off == 0 {
			continue // the reserved nil-address guard block is re-made by the engine
		}
		if off < 0 || size <= 0 || off+size > poolBytes {
			return fmt.Errorf("%w: allocation [%d,+%d) out of pool", ErrBadSnapshot, off, size)
		}
		for _, prev := range recs {
			if off < prev.off+prev.size && prev.off < off+size {
				return fmt.Errorf("%w: allocations [%d,+%d) and [%d,+%d) overlap",
					ErrBadSnapshot, prev.off, prev.size, off, size)
			}
		}
		recs = append(recs, allocRec{off, size})
	}
	pool := s.eng.Pool()
	for _, a := range recs {
		if err := pool.Reserve(a.off, a.size); err != nil {
			return fmt.Errorf("%w: allocation [%d,+%d): %v", ErrBadSnapshot, a.off, a.size, err)
		}
		if err := s.eng.AdoptObject(a.off, a.size); err != nil {
			return fmt.Errorf("%w: allocation [%d,+%d): %v", ErrBadSnapshot, a.off, a.size, err)
		}
	}
	return s.eng.NVM().WriteRaw(0, p)
}
