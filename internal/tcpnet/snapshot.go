package tcpnet

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Pool snapshots: gengard persists its exported memory and allocation
// state to a file on shutdown and restores it on start, so a daemon
// restart does not lose the pool — the behavior users expect of a
// *non-volatile* memory service even when the backing store is a file
// standing in for NVM.
//
// Format:
//
//	magic "GGARSNAP" | version u32 | serverID u16 | poolBytes i64
//	allocCount u32 | (off i64, size i64)*   — live allocations
//	pool image (poolBytes raw)
//	crc32(IEEE) of everything above, u32
const (
	snapshotMagic   = "GGARSNAP"
	snapshotVersion = 1
)

// ErrBadSnapshot reports a corrupt or incompatible snapshot file.
var ErrBadSnapshot = errors.New("tcpnet: bad snapshot")

// WriteSnapshot persists the server's pool to path atomically (via a
// temporary file and rename). Callers must ensure the server is
// quiescent (gengard snapshots after Close).
func (s *PoolServer) WriteSnapshot(path string) (err error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			_ = f.Close()
			_ = os.Remove(tmp)
		}
	}()

	crc := crc32.NewIEEE()
	w := bufio.NewWriterSize(io.MultiWriter(f, crc), 1<<20)

	if _, err = w.WriteString(snapshotMagic); err != nil {
		return err
	}
	var hdr [4 + 2 + 8]byte
	binary.BigEndian.PutUint32(hdr[0:], snapshotVersion)
	binary.BigEndian.PutUint16(hdr[4:], s.cfg.ID)
	binary.BigEndian.PutUint64(hdr[6:], uint64(s.cfg.PoolBytes))
	if _, err = w.Write(hdr[:]); err != nil {
		return err
	}

	allocs := s.pool.Live()
	var cnt [4]byte
	binary.BigEndian.PutUint32(cnt[:], uint32(len(allocs)))
	if _, err = w.Write(cnt[:]); err != nil {
		return err
	}
	var rec [16]byte
	for _, a := range allocs {
		binary.BigEndian.PutUint64(rec[0:], uint64(a.Off))
		binary.BigEndian.PutUint64(rec[8:], uint64(a.Size))
		if _, err = w.Write(rec[:]); err != nil {
			return err
		}
	}

	s.memMu.RLock()
	_, err = w.Write(s.mem)
	s.memMu.RUnlock()
	if err != nil {
		return err
	}
	if err = w.Flush(); err != nil {
		return err
	}
	var sum [4]byte
	binary.BigEndian.PutUint32(sum[:], crc.Sum32())
	if _, err = f.Write(sum[:]); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// RestoreSnapshot loads a snapshot written by WriteSnapshot into a
// freshly-constructed server. The server's ID and pool size must match
// the snapshot's.
func (s *PoolServer) RestoreSnapshot(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(raw) < len(snapshotMagic)+4+2+8+4+4 {
		return fmt.Errorf("%w: truncated (%d bytes)", ErrBadSnapshot, len(raw))
	}
	body, sum := raw[:len(raw)-4], binary.BigEndian.Uint32(raw[len(raw)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return fmt.Errorf("%w: checksum mismatch", ErrBadSnapshot)
	}
	if string(body[:len(snapshotMagic)]) != snapshotMagic {
		return fmt.Errorf("%w: magic mismatch", ErrBadSnapshot)
	}
	p := body[len(snapshotMagic):]
	version := binary.BigEndian.Uint32(p[0:])
	id := binary.BigEndian.Uint16(p[4:])
	poolBytes := int64(binary.BigEndian.Uint64(p[6:]))
	p = p[14:]
	if version != snapshotVersion {
		return fmt.Errorf("%w: version %d", ErrBadSnapshot, version)
	}
	if id != s.cfg.ID || poolBytes != s.cfg.PoolBytes {
		return fmt.Errorf("%w: snapshot is server %d/%d bytes, this daemon is %d/%d",
			ErrBadSnapshot, id, poolBytes, s.cfg.ID, s.cfg.PoolBytes)
	}

	n := binary.BigEndian.Uint32(p)
	p = p[4:]
	if int64(len(p)) != int64(n)*16+poolBytes {
		return fmt.Errorf("%w: body length %d inconsistent", ErrBadSnapshot, len(p))
	}
	var objs int64
	for i := uint32(0); i < n; i++ {
		off := int64(binary.BigEndian.Uint64(p[0:]))
		size := int64(binary.BigEndian.Uint64(p[8:]))
		p = p[16:]
		if off == 0 {
			continue // the reserved nil-address guard block is re-made by NewPoolServer
		}
		if err := s.pool.Reserve(off, size); err != nil {
			return fmt.Errorf("%w: allocation [%d,+%d): %v", ErrBadSnapshot, off, size, err)
		}
		objs++
	}
	s.memMu.Lock()
	copy(s.mem, p)
	s.memMu.Unlock()
	s.objects.Add(objs)
	return nil
}
