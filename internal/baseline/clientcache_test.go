package baseline

import (
	"bytes"
	"testing"

	"gengar/internal/config"
	"gengar/internal/core"
	"gengar/internal/region"
	"gengar/internal/server"
)

func newDirectCluster(t *testing.T) *server.Cluster {
	t.Helper()
	cfg := config.NVMDirect()
	cfg.Servers = 2
	cfg.NVMBytes = 1 << 22
	c, err := server.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func connectTo(t *testing.T, c *server.Cluster, name string) *core.Client {
	t.Helper()
	cl, err := core.Connect(c, name)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl
}

func newDirectClient(t *testing.T) *core.Client {
	t.Helper()
	return connectTo(t, newDirectCluster(t), "cc")
}

func TestNewClientCacheValidation(t *testing.T) {
	cl := newDirectClient(t)
	if _, err := NewClientCache(nil, 1024); err == nil {
		t.Fatal("nil client accepted")
	}
	if _, err := NewClientCache(cl, 0); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

func TestClientCacheHitFlow(t *testing.T) {
	cl := newDirectClient(t)
	cc, err := NewClientCache(cl, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	if cc.Client() != cl {
		t.Fatal("Client accessor")
	}
	addr, _ := cl.Malloc(256)
	want := bytes.Repeat([]byte{9}, 256)
	if err := cc.Write(addr, want); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	// First read: miss + fill.
	if err := cc.Read(addr, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, want) {
		t.Fatal("first read wrong data")
	}
	st := cc.Stats()
	if st.Misses != 1 || st.Hits != 0 || st.Entries != 1 {
		t.Fatalf("after miss: %+v", st)
	}
	// Second read: validated local hit.
	if err := cc.Read(addr, buf); err != nil {
		t.Fatal(err)
	}
	st = cc.Stats()
	if st.Hits != 1 || st.Validations != 1 {
		t.Fatalf("after hit: %+v", st)
	}
	if !bytes.Equal(buf, want) {
		t.Fatal("hit returned wrong data")
	}
}

func TestClientCacheInvalidatedByVersionBump(t *testing.T) {
	cluster := newDirectCluster(t)
	cl := connectTo(t, cluster, "reader")
	other := connectTo(t, cluster, "writer")
	cc, err := NewClientCache(cl, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	addr, _ := cl.Malloc(64)
	if err := cc.Write(addr, bytes.Repeat([]byte{1}, 64)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if err := cc.Read(addr, buf); err != nil { // fill
		t.Fatal(err)
	}
	// Another client updates the object under the lock (bumping the
	// version); the cached copy must not be served afterwards.
	if err := other.LockExclusive(addr); err != nil {
		t.Fatal(err)
	}
	if err := other.Write(addr, bytes.Repeat([]byte{2}, 64)); err != nil {
		t.Fatal(err)
	}
	if err := other.UnlockExclusive(addr); err != nil {
		t.Fatal(err)
	}
	if err := cc.Read(addr, buf); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf {
		if b != 2 {
			t.Fatalf("stale byte %d at %d after version bump", b, i)
		}
	}
	st := cc.Stats()
	if st.Misses != 2 {
		t.Fatalf("expected a re-fetch: %+v", st)
	}
}

func TestClientCacheEviction(t *testing.T) {
	cl := newDirectClient(t)
	cc, err := NewClientCache(cl, 256) // fits two 128B objects
	if err != nil {
		t.Fatal(err)
	}
	var addrs []region.GAddr
	for i := 0; i < 3; i++ {
		a, err := cl.Malloc(128)
		if err != nil {
			t.Fatal(err)
		}
		if err := cc.Write(a, bytes.Repeat([]byte{byte(i)}, 128)); err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	buf := make([]byte, 128)
	for _, a := range addrs { // fill: third insert evicts the first
		if err := cc.Read(a, buf); err != nil {
			t.Fatal(err)
		}
	}
	st := cc.Stats()
	if st.Entries != 2 || st.UsedBytes != 256 {
		t.Fatalf("eviction: %+v", st)
	}
	// Oversized objects are never cached.
	big, _ := cl.Malloc(1024)
	bigBuf := make([]byte, 1024)
	if err := cl.Write(big, bigBuf); err != nil {
		t.Fatal(err)
	}
	if err := cc.Read(big, bigBuf); err != nil {
		t.Fatal(err)
	}
	if cc.Stats().Entries != 2 {
		t.Fatal("oversized object cached")
	}
}

func TestClientCacheInvalidate(t *testing.T) {
	cl := newDirectClient(t)
	cc, _ := NewClientCache(cl, 1<<16)
	addr, _ := cl.Malloc(64)
	buf := make([]byte, 64)
	if err := cc.Write(addr, buf); err != nil {
		t.Fatal(err)
	}
	if err := cc.Read(addr, buf); err != nil {
		t.Fatal(err)
	}
	cc.Invalidate(addr)
	cc.Invalidate(addr) // idempotent
	if st := cc.Stats(); st.Entries != 0 || st.UsedBytes != 0 {
		t.Fatalf("after invalidate: %+v", st)
	}
}

func TestClientCacheWriteThroughOwnCopy(t *testing.T) {
	cl := newDirectClient(t)
	cc, _ := NewClientCache(cl, 1<<16)
	addr, _ := cl.Malloc(64)
	if err := cc.Write(addr, bytes.Repeat([]byte{1}, 64)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if err := cc.Read(addr, buf); err != nil { // fill
		t.Fatal(err)
	}
	if err := cc.Write(addr, bytes.Repeat([]byte{7}, 64)); err != nil {
		t.Fatal(err)
	}
	if err := cc.Read(addr, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 7 || buf[63] != 7 {
		t.Fatal("own write not visible through cache")
	}
}
