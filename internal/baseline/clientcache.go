// Package baseline implements comparator designs evaluated against
// Gengar beyond the two headline configurations (the NVM-direct DSHM and
// the DRAM-only pool are pure feature/media presets — see
// config.NVMDirect and config.DRAMPool).
//
// ClientCache is the architectural alternative to Gengar's server-side
// distributed DRAM buffers: GAM-style client-local caching with version
// validation. Each client keeps hot objects in its own memory; every
// cached read still pays a one-sided version check against the home
// server, and a mismatch re-fetches. The comparison isolates the
// design question the paper answers implicitly: where should the DRAM
// copy live — at the (shared, write-through-coherent) server, or at each
// client (private, validation-coherent)?
package baseline

import (
	"container/list"
	"fmt"
	"sync"

	"gengar/internal/core"
	"gengar/internal/metrics"
	"gengar/internal/region"
)

// ClientCache wraps a pool client (normally connected to an NVM-direct
// cluster) with a private validation-coherent object cache.
//
// Protocol per cached read: read the object's version word (one small
// one-sided atomic); if it matches the cached copy's version, serve
// locally; otherwise fetch the whole object and cache it with the
// version observed *before* the fetch (conservative: a racing writer
// forces another validation miss rather than a stale hit).
//
// Like the underlying client, a ClientCache models one application
// thread.
type ClientCache struct {
	c        *core.Client
	capacity int64

	mu    sync.Mutex
	used  int64
	lru   *list.List // front = most recent; values are *ccEntry
	items map[region.GAddr]*ccEntry

	hits        metrics.Counter
	validations metrics.Counter
	misses      metrics.Counter
}

type ccEntry struct {
	addr    region.GAddr
	version uint64
	data    []byte
	elem    *list.Element
}

// NewClientCache wraps c with a private cache of the given capacity in
// bytes. Objects are cached whole at their base address.
func NewClientCache(c *core.Client, capacity int64) (*ClientCache, error) {
	if c == nil {
		return nil, fmt.Errorf("baseline: nil client")
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("baseline: cache capacity %d", capacity)
	}
	return &ClientCache{
		c:        c,
		capacity: capacity,
		lru:      list.New(),
		items:    make(map[region.GAddr]*ccEntry),
	}, nil
}

// Client returns the wrapped pool client (for writes, locks, stats).
func (cc *ClientCache) Client() *core.Client { return cc.c }

// Read fills buf with len(buf) bytes from the object based at base.
// Reads are whole-object-rooted: base must be the object's base address
// (the common KV pattern), and len(buf) its size.
func (cc *ClientCache) Read(base region.GAddr, buf []byte) error {
	cc.mu.Lock()
	ent := cc.items[base]
	cc.mu.Unlock()

	if ent != nil {
		// Validate: one small one-sided read of the version word.
		v, err := cc.c.Version(base)
		if err != nil {
			return err
		}
		cc.validations.Inc()
		cc.mu.Lock()
		// Re-look-up: the entry may have been evicted while validating.
		if ent = cc.items[base]; ent != nil && ent.version == v && len(ent.data) >= len(buf) {
			copy(buf, ent.data)
			cc.lru.MoveToFront(ent.elem)
			cc.mu.Unlock()
			cc.hits.Inc()
			return nil
		}
		cc.mu.Unlock()
	}

	// Miss: version first, then the data — a writer racing the fetch
	// bumps the version and the next read re-validates.
	v, err := cc.c.Version(base)
	if err != nil {
		return err
	}
	if err := cc.c.Read(base, buf); err != nil {
		return err
	}
	cc.misses.Inc()
	cc.insert(base, v, buf)
	return nil
}

func (cc *ClientCache) insert(base region.GAddr, version uint64, data []byte) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if int64(len(data)) > cc.capacity {
		return // never fits
	}
	if old := cc.items[base]; old != nil {
		cc.used -= int64(len(old.data))
		cc.lru.Remove(old.elem)
		delete(cc.items, base)
	}
	for cc.used+int64(len(data)) > cc.capacity {
		tail := cc.lru.Back()
		if tail == nil {
			break
		}
		victim := tail.Value.(*ccEntry)
		cc.used -= int64(len(victim.data))
		cc.lru.Remove(tail)
		delete(cc.items, victim.addr)
	}
	ent := &ccEntry{addr: base, version: version, data: append([]byte(nil), data...)}
	ent.elem = cc.lru.PushFront(ent)
	cc.items[base] = ent
	cc.used += int64(len(data))
}

// Write stores data at the object base and updates the local copy. The
// underlying write bumps no version (versions move under locks), so the
// local copy keeps the last validated version — our own write is
// coherent with it by construction (single-writer or locked usage).
func (cc *ClientCache) Write(base region.GAddr, data []byte) error {
	if err := cc.c.Write(base, data); err != nil {
		return err
	}
	cc.mu.Lock()
	if ent := cc.items[base]; ent != nil && len(ent.data) >= len(data) {
		copy(ent.data, data)
		cc.lru.MoveToFront(ent.elem)
	}
	cc.mu.Unlock()
	return nil
}

// Invalidate drops the local copy of base (callers do this when another
// client's lock release signals a change they must observe immediately).
func (cc *ClientCache) Invalidate(base region.GAddr) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if ent := cc.items[base]; ent != nil {
		cc.used -= int64(len(ent.data))
		cc.lru.Remove(ent.elem)
		delete(cc.items, base)
	}
}

// CacheStats reports the private cache's effectiveness.
type CacheStats struct {
	Hits        int64 // validated local serves
	Validations int64 // version checks for present entries
	Misses      int64 // full fetches
	UsedBytes   int64
	Entries     int
}

// Stats returns a snapshot.
func (cc *ClientCache) Stats() CacheStats {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return CacheStats{
		Hits:        cc.hits.Load(),
		Validations: cc.validations.Load(),
		Misses:      cc.misses.Load(),
		UsedBytes:   cc.used,
		Entries:     len(cc.items),
	}
}
