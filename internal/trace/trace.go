// Package trace records and replays pool operation traces. A trace is a
// line-oriented text format (one op per line) that captures what a
// client did — reads, writes, allocations, locks — with object-relative
// addressing, so a workload captured against one deployment replays
// against any other (the simulator, an ablated variant, a gengard
// cluster) for apples-to-apples comparison.
//
// Format (whitespace-separated, # comments):
//
//	malloc <obj> <size>
//	free   <obj>
//	read   <obj> <off> <len>
//	write  <obj> <off> <len>
//	lockx  <obj>
//	unlockx <obj>
//	locks  <obj>
//	unlocks <obj>
//
// <obj> is a trace-local object index; sizes and offsets are bytes.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Kind is a trace operation type.
type Kind uint8

// Trace operation kinds.
const (
	OpMalloc Kind = iota + 1
	OpFree
	OpRead
	OpWrite
	OpLockX
	OpUnlockX
	OpLockS
	OpUnlockS
)

var kindNames = map[Kind]string{
	OpMalloc:  "malloc",
	OpFree:    "free",
	OpRead:    "read",
	OpWrite:   "write",
	OpLockX:   "lockx",
	OpUnlockX: "unlockx",
	OpLockS:   "locks",
	OpUnlockS: "unlocks",
}

var kindByName = func() map[string]Kind {
	m := make(map[string]Kind, len(kindNames))
	for k, n := range kindNames {
		m[n] = k
	}
	return m
}()

// String names the kind.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Op is one trace record.
type Op struct {
	Kind Kind
	Obj  int64 // trace-local object index
	Off  int64 // for read/write
	Len  int64 // for read/write; size for malloc
}

// Validate reports whether the op is structurally sound.
func (o Op) Validate() error {
	switch o.Kind {
	case OpMalloc:
		if o.Len <= 0 {
			return fmt.Errorf("trace: malloc of %d bytes", o.Len)
		}
	case OpRead, OpWrite:
		if o.Off < 0 || o.Len <= 0 {
			return fmt.Errorf("trace: %s with off=%d len=%d", o.Kind, o.Off, o.Len)
		}
	case OpFree, OpLockX, OpUnlockX, OpLockS, OpUnlockS:
	default:
		return fmt.Errorf("trace: unknown kind %d", uint8(o.Kind))
	}
	if o.Obj < 0 {
		return fmt.Errorf("trace: negative object index %d", o.Obj)
	}
	return nil
}

// Writer emits trace records.
type Writer struct {
	w   *bufio.Writer
	err error
	n   int64
}

// NewWriter wraps an io.Writer.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Append writes one record.
func (t *Writer) Append(op Op) error {
	if t.err != nil {
		return t.err
	}
	if t.err = op.Validate(); t.err != nil {
		return t.err
	}
	switch op.Kind {
	case OpMalloc:
		_, t.err = fmt.Fprintf(t.w, "malloc %d %d\n", op.Obj, op.Len)
	case OpRead, OpWrite:
		_, t.err = fmt.Fprintf(t.w, "%s %d %d %d\n", op.Kind, op.Obj, op.Off, op.Len)
	default:
		_, t.err = fmt.Fprintf(t.w, "%s %d\n", op.Kind, op.Obj)
	}
	if t.err == nil {
		t.n++
	}
	return t.err
}

// Len returns the number of records appended.
func (t *Writer) Len() int64 { return t.n }

// Flush flushes buffered records.
func (t *Writer) Flush() error {
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// Read parses a whole trace.
func Read(r io.Reader) ([]Op, error) {
	var ops []Op
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		kind, ok := kindByName[fields[0]]
		if !ok {
			return nil, fmt.Errorf("trace: line %d: unknown op %q", line, fields[0])
		}
		op := Op{Kind: kind}
		parse := func(i int) (int64, error) {
			if i >= len(fields) {
				return 0, fmt.Errorf("trace: line %d: missing field %d", line, i)
			}
			return strconv.ParseInt(fields[i], 10, 64)
		}
		var err error
		if op.Obj, err = parse(1); err != nil {
			return nil, err
		}
		switch kind {
		case OpMalloc:
			if op.Len, err = parse(2); err != nil {
				return nil, err
			}
		case OpRead, OpWrite:
			if op.Off, err = parse(2); err != nil {
				return nil, err
			}
			if op.Len, err = parse(3); err != nil {
				return nil, err
			}
		}
		if err := op.Validate(); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		ops = append(ops, op)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return ops, nil
}
