package trace

import (
	"fmt"
	"math/rand"
	"time"

	"gengar/internal/core"
	"gengar/internal/metrics"
	"gengar/internal/region"
)

// ReplayResult reports one trace replay.
type ReplayResult struct {
	Ops         int64
	SimDuration time.Duration
	Throughput  float64 // ops per simulated second
	PerKind     map[Kind]metrics.Summary
}

// Replay executes a trace against a pool client and reports simulated
// timing. Object indexes are bound to fresh allocations as the trace's
// malloc records are encountered; reads and writes address ranges within
// those objects.
func Replay(c *core.Client, ops []Op) (ReplayResult, error) {
	objs := make(map[int64]region.GAddr)
	sizes := make(map[int64]int64)
	hists := make(map[Kind]*metrics.Histogram)
	res := ReplayResult{PerKind: make(map[Kind]metrics.Summary)}

	start := c.Now()
	buf := make([]byte, 0, 64<<10)
	for i, op := range ops {
		addr, bound := objs[op.Obj]
		if op.Kind != OpMalloc && !bound {
			return res, fmt.Errorf("trace: op %d: object %d used before malloc", i, op.Obj)
		}
		if op.Kind == OpRead || op.Kind == OpWrite {
			if op.Off+op.Len > sizes[op.Obj] {
				return res, fmt.Errorf("trace: op %d: [%d,%d) exceeds object %d size %d",
					i, op.Off, op.Off+op.Len, op.Obj, sizes[op.Obj])
			}
			if int64(cap(buf)) < op.Len {
				buf = make([]byte, op.Len)
			}
		}

		before := c.Now()
		var err error
		switch op.Kind {
		case OpMalloc:
			var a region.GAddr
			if a, err = c.Malloc(op.Len); err == nil {
				objs[op.Obj] = a
				sizes[op.Obj] = op.Len
			}
		case OpFree:
			err = c.Free(addr)
			delete(objs, op.Obj)
			delete(sizes, op.Obj)
		case OpRead:
			err = c.Read(addr.Add(op.Off), buf[:op.Len])
		case OpWrite:
			err = c.Write(addr.Add(op.Off), buf[:op.Len])
		case OpLockX:
			err = c.LockExclusive(addr)
		case OpUnlockX:
			err = c.UnlockExclusive(addr)
		case OpLockS:
			err = c.LockShared(addr)
		case OpUnlockS:
			err = c.UnlockShared(addr)
		default:
			err = fmt.Errorf("trace: unknown kind %d", uint8(op.Kind))
		}
		if err != nil {
			return res, fmt.Errorf("trace: op %d (%s obj %d): %w", i, op.Kind, op.Obj, err)
		}
		h := hists[op.Kind]
		if h == nil {
			h = new(metrics.Histogram)
			hists[op.Kind] = h
		}
		h.Record(c.Now().Sub(before))
		res.Ops++
	}
	res.SimDuration = c.Now().Sub(start)
	if res.SimDuration > 0 {
		res.Throughput = float64(res.Ops) / res.SimDuration.Seconds()
	}
	for k, h := range hists {
		res.PerKind[k] = h.Summarize()
	}
	return res, nil
}

// Synthesize generates a random-but-representative trace: allocate a
// working set, then issue zipf-skewed reads and writes over it with the
// given read fraction, locking a configurable fraction of writes.
// Deterministic for a given seed.
func Synthesize(seed int64, objects int, objSize int64, ops int, readFrac, lockedFrac float64) []Op {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.1, 8, uint64(objects-1))
	out := make([]Op, 0, objects+ops)
	for i := 0; i < objects; i++ {
		out = append(out, Op{Kind: OpMalloc, Obj: int64(i), Len: objSize})
	}
	for i := 0; i < ops; i++ {
		obj := int64(zipf.Uint64())
		if rng.Float64() < readFrac {
			out = append(out, Op{Kind: OpRead, Obj: obj, Off: 0, Len: objSize})
			continue
		}
		n := objSize / 4
		if n <= 0 {
			n = 1
		}
		off := rng.Int63n(objSize - n + 1)
		if rng.Float64() < lockedFrac {
			out = append(out,
				Op{Kind: OpLockX, Obj: obj},
				Op{Kind: OpWrite, Obj: obj, Off: off, Len: n},
				Op{Kind: OpUnlockX, Obj: obj},
			)
			continue
		}
		out = append(out, Op{Kind: OpWrite, Obj: obj, Off: off, Len: n})
	}
	return out
}
