package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"gengar/internal/config"
	"gengar/internal/core"
	"gengar/internal/server"
)

func TestKindString(t *testing.T) {
	if OpMalloc.String() != "malloc" || OpUnlockS.String() != "unlocks" {
		t.Fatal("kind names")
	}
	if Kind(99).String() != "Kind(99)" {
		t.Fatal("unknown kind name")
	}
}

func TestOpValidate(t *testing.T) {
	bad := []Op{
		{Kind: OpMalloc, Obj: 0, Len: 0},
		{Kind: OpRead, Obj: 0, Off: -1, Len: 4},
		{Kind: OpWrite, Obj: 0, Off: 0, Len: 0},
		{Kind: Kind(77), Obj: 0},
		{Kind: OpFree, Obj: -1},
	}
	for i, op := range bad {
		if op.Validate() == nil {
			t.Errorf("bad op %d accepted", i)
		}
	}
	good := []Op{
		{Kind: OpMalloc, Obj: 1, Len: 64},
		{Kind: OpRead, Obj: 1, Off: 8, Len: 8},
		{Kind: OpLockX, Obj: 1},
	}
	for i, op := range good {
		if err := op.Validate(); err != nil {
			t.Errorf("good op %d rejected: %v", i, err)
		}
	}
}

func TestWriteReadRoundtrip(t *testing.T) {
	ops := []Op{
		{Kind: OpMalloc, Obj: 0, Len: 128},
		{Kind: OpWrite, Obj: 0, Off: 16, Len: 32},
		{Kind: OpLockX, Obj: 0},
		{Kind: OpRead, Obj: 0, Off: 0, Len: 128},
		{Kind: OpUnlockX, Obj: 0},
		{Kind: OpLockS, Obj: 0},
		{Kind: OpUnlockS, Obj: 0},
		{Kind: OpFree, Obj: 0},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, op := range ops {
		if err := w.Append(op); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Len() != int64(len(ops)) {
		t.Fatalf("Len = %d", w.Len())
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ops) {
		t.Fatalf("read %d ops, want %d", len(got), len(ops))
	}
	for i := range ops {
		if got[i] != ops[i] {
			t.Fatalf("op %d: %+v != %+v", i, got[i], ops[i])
		}
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	in := "# a trace\n\nmalloc 0 64\n  # indented comment\nread 0 0 64\n"
	ops, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 2 || ops[0].Kind != OpMalloc || ops[1].Kind != OpRead {
		t.Fatalf("parsed %+v", ops)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	for _, in := range []string{
		"explode 1\n",
		"malloc 0\n",         // missing size
		"read 0 0\n",         // missing len
		"malloc 0 -5\n",      // invalid
		"read 0 zero four\n", // non-numeric
	} {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("garbage %q accepted", in)
		}
	}
}

func TestWriterRejectsInvalidAndSticks(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Append(Op{Kind: OpMalloc, Obj: 0, Len: -1}); err == nil {
		t.Fatal("invalid op accepted")
	}
	if err := w.Append(Op{Kind: OpMalloc, Obj: 0, Len: 64}); err == nil {
		t.Fatal("writer did not stick after error")
	}
}

func TestRoundtripProperty(t *testing.T) {
	f := func(seed int64) bool {
		ops := Synthesize(seed, 8, 256, 50, 0.7, 0.3)
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, op := range ops {
			if w.Append(op) != nil {
				return false
			}
		}
		if w.Flush() != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil || len(got) != len(ops) {
			return false
		}
		for i := range ops {
			if got[i] != ops[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSynthesizeShape(t *testing.T) {
	ops := Synthesize(1, 16, 512, 200, 0.5, 0.5)
	var mallocs, reads, writes, locks, unlocks int
	for _, op := range ops {
		if err := op.Validate(); err != nil {
			t.Fatalf("invalid synthesized op: %v", err)
		}
		switch op.Kind {
		case OpMalloc:
			mallocs++
		case OpRead:
			reads++
		case OpWrite:
			writes++
		case OpLockX:
			locks++
		case OpUnlockX:
			unlocks++
		}
	}
	if mallocs != 16 {
		t.Fatalf("mallocs = %d", mallocs)
	}
	if reads == 0 || writes == 0 || locks == 0 {
		t.Fatalf("degenerate mix: r=%d w=%d l=%d", reads, writes, locks)
	}
	if locks != unlocks {
		t.Fatalf("unbalanced locks: %d vs %d", locks, unlocks)
	}
	// Deterministic.
	again := Synthesize(1, 16, 512, 200, 0.5, 0.5)
	if len(again) != len(ops) || again[5] != ops[5] {
		t.Fatal("not deterministic")
	}
}

func newPoolClient(t *testing.T) *core.Client {
	t.Helper()
	cfg := config.Default()
	cfg.Servers = 2
	cfg.NVMBytes = 1 << 22
	c, err := server.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	cl, err := core.Connect(c, "replayer")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl
}

func TestReplayEndToEnd(t *testing.T) {
	cl := newPoolClient(t)
	ops := Synthesize(7, 12, 512, 150, 0.6, 0.2)
	res, err := Replay(cl, ops)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != int64(len(ops)) {
		t.Fatalf("replayed %d of %d ops", res.Ops, len(ops))
	}
	if res.Throughput <= 0 || res.SimDuration <= 0 {
		t.Fatalf("timing: %+v", res)
	}
	if res.PerKind[OpRead].Count == 0 || res.PerKind[OpWrite].Count == 0 {
		t.Fatal("per-kind histograms missing")
	}
}

func TestReplayRejectsUnboundObject(t *testing.T) {
	cl := newPoolClient(t)
	_, err := Replay(cl, []Op{{Kind: OpRead, Obj: 3, Off: 0, Len: 8}})
	if err == nil {
		t.Fatal("read of unbound object accepted")
	}
}

func TestReplayRejectsOutOfRange(t *testing.T) {
	cl := newPoolClient(t)
	_, err := Replay(cl, []Op{
		{Kind: OpMalloc, Obj: 0, Len: 64},
		{Kind: OpRead, Obj: 0, Off: 32, Len: 64},
	})
	if err == nil {
		t.Fatal("out-of-object read accepted")
	}
}
