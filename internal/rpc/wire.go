// Package rpc implements the two-sided control-plane messaging Gengar
// uses for everything that is not on the data path: bootstrap, gmalloc/
// gfree, hotness digest reporting and remap-table refresh. It multiplexes
// concurrent request/response exchanges over a single RDMA queue pair.
//
// Control-plane operations involve the server CPU (unlike the one-sided
// data path), so the server charges a per-request CPU cost on a shared
// simnet resource — making RPCs measurably more expensive than one-sided
// verbs, as on real hardware.
package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Kind identifies an RPC method on a server.
type Kind uint8

// Wire-format errors.
var (
	// ErrTruncated reports a message shorter than its header demands.
	ErrTruncated = errors.New("rpc: truncated message")
	// ErrClosed is returned for calls on a closed client or server.
	ErrClosed = errors.New("rpc: connection closed")
)

// RemoteError wraps an error string returned by a server handler.
type RemoteError struct {
	Kind Kind
	Msg  string
}

// Error implements the error interface.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("rpc: remote error on kind %d: %s", e.Kind, e.Msg)
}

const (
	statusOK    = 0
	statusError = 1
)

// reqHeaderLen is id(8) + kind(1); respHeaderLen is id(8) + status(1).
const reqHeaderLen = 9

func encodeRequest(id uint64, kind Kind, payload []byte) []byte {
	buf := make([]byte, reqHeaderLen+len(payload))
	binary.BigEndian.PutUint64(buf, id)
	buf[8] = byte(kind)
	copy(buf[reqHeaderLen:], payload)
	return buf
}

func decodeRequest(msg []byte) (id uint64, kind Kind, payload []byte, err error) {
	if len(msg) < reqHeaderLen {
		return 0, 0, nil, ErrTruncated
	}
	return binary.BigEndian.Uint64(msg), Kind(msg[8]), msg[reqHeaderLen:], nil
}

func encodeResponse(id uint64, status byte, payload []byte) []byte {
	buf := make([]byte, reqHeaderLen+len(payload))
	binary.BigEndian.PutUint64(buf, id)
	buf[8] = status
	copy(buf[reqHeaderLen:], payload)
	return buf
}

func decodeResponse(msg []byte) (id uint64, status byte, payload []byte, err error) {
	if len(msg) < reqHeaderLen {
		return 0, 0, nil, ErrTruncated
	}
	return binary.BigEndian.Uint64(msg), msg[8], msg[reqHeaderLen:], nil
}

// Writer appends binary fields to a request or response payload. Its
// methods never fail; the zero value is ready to use.
type Writer struct {
	buf []byte
}

// Bytes returns the accumulated payload.
func (w *Writer) Bytes() []byte { return w.buf }

// Reset makes w append after the existing contents of buf — the hook
// transports use to encode payloads directly into pooled frame buffers
// with wire headers reserved up front, instead of accumulating into a
// fresh allocation and copying.
func (w *Writer) Reset(buf []byte) { w.buf = buf }

// U8 appends one byte.
func (w *Writer) U8(v uint8) *Writer { w.buf = append(w.buf, v); return w }

// U16 appends a big-endian 16-bit value.
func (w *Writer) U16(v uint16) *Writer {
	w.buf = binary.BigEndian.AppendUint16(w.buf, v)
	return w
}

// U32 appends a big-endian 32-bit value.
func (w *Writer) U32(v uint32) *Writer {
	w.buf = binary.BigEndian.AppendUint32(w.buf, v)
	return w
}

// U64 appends a big-endian 64-bit value.
func (w *Writer) U64(v uint64) *Writer {
	w.buf = binary.BigEndian.AppendUint64(w.buf, v)
	return w
}

// I64 appends a big-endian 64-bit signed value.
func (w *Writer) I64(v int64) *Writer { return w.U64(uint64(v)) }

// Str appends a length-prefixed string (max 64 KiB).
func (w *Writer) Str(s string) *Writer {
	w.U16(uint16(len(s)))
	w.buf = append(w.buf, s...)
	return w
}

// Blob appends a 32-bit-length-prefixed byte slice.
func (w *Writer) Blob(b []byte) *Writer {
	w.U32(uint32(len(b)))
	w.buf = append(w.buf, b...)
	return w
}

// Reader consumes binary fields from a payload. The first decode error
// sticks; check Err once at the end.
type Reader struct {
	buf []byte
	err error
}

// NewReader wraps a payload for decoding.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Reset points r at a new payload, clearing any sticky error — so hot
// paths can decode with a stack-allocated Reader value instead of a
// fresh NewReader per message.
func (r *Reader) Reset(b []byte) { r.buf, r.err = b, nil }

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.buf) < n {
		r.err = ErrTruncated
		return nil
	}
	b := r.buf[:n]
	r.buf = r.buf[n:]
	return b
}

// U8 consumes one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 consumes a big-endian 16-bit value.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

// U32 consumes a big-endian 32-bit value.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// U64 consumes a big-endian 64-bit value.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// I64 consumes a big-endian 64-bit signed value.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Str consumes a length-prefixed string.
func (r *Reader) Str() string {
	n := int(r.U16())
	b := r.take(n)
	return string(b)
}

// Blob consumes a 32-bit-length-prefixed byte slice. The returned slice
// aliases the payload; copy it if retained.
func (r *Reader) Blob() []byte {
	n := int(r.U32())
	return r.take(n)
}
