package rpc

import (
	"fmt"
	"sync"
	"time"

	"gengar/internal/rdma"
	"gengar/internal/simnet"
)

// DefaultCPUPerRequest is the server CPU cost charged per RPC when the
// server is constructed with a non-positive value: dispatch, decode and
// reply on a commodity core.
const DefaultCPUPerRequest = 1500 * time.Nanosecond

// Handler services one RPC kind. It receives the simulated instant the
// request finished occupying the server CPU and the request payload, and
// returns the response payload plus the simulated instant the response is
// ready (at least the given instant; later if the handler charged device
// time). Returning an error sends a RemoteError to the client.
type Handler func(at simnet.Time, req *Reader) (resp []byte, done simnet.Time, err error)

// Server dispatches RPCs arriving on any number of queue pairs to
// registered handlers. Handlers for all kinds must be registered before
// the first Serve call.
type Server struct {
	cpu       *simnet.Resource
	cpuPerReq time.Duration

	mu       sync.Mutex
	handlers map[Kind]Handler
	conns    []*rdma.QP
	closed   bool
	wg       sync.WaitGroup
}

// NewServer returns a server whose request processing serializes on the
// given CPU resource with the given per-request cost (DefaultCPUPerRequest
// if non-positive).
func NewServer(cpu *simnet.Resource, cpuPerReq time.Duration) *Server {
	if cpuPerReq <= 0 {
		cpuPerReq = DefaultCPUPerRequest
	}
	return &Server{
		cpu:       cpu,
		cpuPerReq: cpuPerReq,
		handlers:  make(map[Kind]Handler),
	}
}

// Handle registers the handler for a kind, replacing any previous one.
func (s *Server) Handle(kind Kind, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[kind] = h
}

// Serve starts servicing requests arriving on qp in a background
// goroutine that exits when the QP or the server is closed.
func (s *Server) Serve(qp *rdma.QP) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.conns = append(s.conns, qp)
	s.wg.Add(1)
	s.mu.Unlock()

	go func() {
		defer s.wg.Done()
		s.serveLoop(qp)
	}()
	return nil
}

func (s *Server) serveLoop(qp *rdma.QP) {
	for {
		msg, arrival, err := qp.Recv()
		if err != nil {
			return // QP closed
		}
		id, kind, payload, err := decodeRequest(msg)
		if err != nil {
			continue // drop garbage; nothing to reply to
		}
		s.mu.Lock()
		h := s.handlers[kind]
		s.mu.Unlock()

		_, cpuDone := s.cpu.Acquire(arrival, s.cpuPerReq)

		var respMsg []byte
		var done simnet.Time
		if h == nil {
			respMsg = encodeResponse(id, statusError, []byte(fmt.Sprintf("no handler for kind %d", kind)))
			done = cpuDone
		} else {
			resp, hDone, herr := h(cpuDone, NewReader(payload))
			done = simnet.MaxTime(cpuDone, hDone)
			if herr != nil {
				respMsg = encodeResponse(id, statusError, []byte(herr.Error()))
			} else {
				respMsg = encodeResponse(id, statusOK, resp)
			}
		}
		if _, err := qp.Send(done, respMsg); err != nil {
			return
		}
	}
}

// Close stops the server: all connection QPs are closed and serving
// goroutines are joined.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := s.conns
	s.mu.Unlock()
	for _, qp := range conns {
		qp.Close()
	}
	s.wg.Wait()
}

// Client issues RPCs over one queue pair, multiplexing concurrent calls
// by request ID. Construct with NewClient; close with Close.
type Client struct {
	qp *rdma.QP

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan response
	closed  bool
	done    chan struct{}
}

type response struct {
	payload []byte
	at      simnet.Time
	err     error
}

// NewClient wraps a connected queue pair and starts the demultiplexing
// goroutine.
func NewClient(qp *rdma.QP) *Client {
	c := &Client{
		qp:      qp,
		pending: make(map[uint64]chan response),
		done:    make(chan struct{}),
	}
	go c.demux()
	return c
}

func (c *Client) demux() {
	defer close(c.done)
	for {
		msg, arrival, err := c.qp.Recv()
		if err != nil {
			c.failAll(err)
			return
		}
		id, status, payload, err := decodeResponse(msg)
		if err != nil {
			continue
		}
		c.mu.Lock()
		ch, ok := c.pending[id]
		delete(c.pending, id)
		c.mu.Unlock()
		if !ok {
			continue // response to a forgotten call
		}
		if status == statusOK {
			ch <- response{payload: payload, at: arrival}
		} else {
			ch <- response{at: arrival, err: &RemoteError{Msg: string(payload)}}
		}
	}
}

func (c *Client) failAll(err error) {
	c.mu.Lock()
	c.closed = true
	failed := make([]chan response, 0, len(c.pending))
	for id, ch := range c.pending {
		delete(c.pending, id)
		failed = append(failed, ch)
	}
	c.mu.Unlock()
	// Deliver failures outside c.mu: the channels are buffered today, but
	// waking callers must never depend on that while the demux lock is held.
	for _, ch := range failed {
		ch <- response{err: fmt.Errorf("rpc: connection lost: %w", err)}
	}
}

// Call issues a request of the given kind at simulated time at and blocks
// until the response arrives. It returns the response payload reader and
// the simulated completion instant at the client.
func (c *Client) Call(at simnet.Time, kind Kind, req []byte) (*Reader, simnet.Time, error) {
	ch := make(chan response, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, at, ErrClosed
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = ch
	c.mu.Unlock()

	if _, err := c.qp.Send(at, encodeRequest(id, kind, req)); err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, at, fmt.Errorf("rpc: send: %w", err)
	}
	resp := <-ch
	if resp.err != nil {
		if re, ok := resp.err.(*RemoteError); ok {
			re.Kind = kind
		}
		return nil, resp.at, resp.err
	}
	return NewReader(resp.payload), resp.at, nil
}

// Close tears the client down; in-flight calls fail with ErrClosed-
// wrapped errors.
func (c *Client) Close() {
	c.qp.Close()
	<-c.done
}

// Dial creates a connected queue pair between the client node and the
// server's node QP, registers it with the server, and returns a Client.
func Dial(clientNode *rdma.Node, serverNode *rdma.Node, srv *Server) (*Client, error) {
	cq := clientNode.NewQP()
	sq := serverNode.NewQP()
	if err := cq.Connect(sq); err != nil {
		return nil, fmt.Errorf("rpc: dial: %w", err)
	}
	if err := srv.Serve(sq); err != nil {
		cq.Close()
		sq.Close()
		return nil, err
	}
	return NewClient(cq), nil
}
