package rpc

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"gengar/internal/rdma"
	"gengar/internal/simnet"
)

func testFabric(t *testing.T) (*rdma.Fabric, *rdma.Node, *rdma.Node) {
	t.Helper()
	f, err := rdma.NewFabric(simnet.LinkModel{
		PerOp:       600 * time.Nanosecond,
		Propagation: 300 * time.Nanosecond,
		BytesPerSec: 12.5e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	cn, err := f.AddNode("client")
	if err != nil {
		t.Fatal(err)
	}
	sn, err := f.AddNode("server")
	if err != nil {
		t.Fatal(err)
	}
	return f, cn, sn
}

const (
	kindEcho Kind = iota + 1
	kindFail
	kindAdd
)

func newEchoServer(t *testing.T) (*Server, *rdma.Node, *rdma.Node) {
	t.Helper()
	_, cn, sn := testFabric(t)
	srv := NewServer(simnet.NewResource("cpu"), 0)
	srv.Handle(kindEcho, func(at simnet.Time, req *Reader) ([]byte, simnet.Time, error) {
		b := req.Blob()
		if err := req.Err(); err != nil {
			return nil, at, err
		}
		var w Writer
		w.Blob(b)
		return w.Bytes(), at, nil
	})
	srv.Handle(kindFail, func(at simnet.Time, req *Reader) ([]byte, simnet.Time, error) {
		return nil, at, errors.New("boom")
	})
	srv.Handle(kindAdd, func(at simnet.Time, req *Reader) ([]byte, simnet.Time, error) {
		a, b := req.U64(), req.U64()
		if err := req.Err(); err != nil {
			return nil, at, err
		}
		var w Writer
		w.U64(a + b)
		return w.Bytes(), at, nil
	})
	return srv, cn, sn
}

func TestCallRoundtrip(t *testing.T) {
	srv, cn, sn := newEchoServer(t)
	defer srv.Close()
	cl, err := Dial(cn, sn, srv)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	var w Writer
	w.Blob([]byte("hello"))
	resp, end, err := cl.Call(0, kindEcho, w.Bytes())
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if got := resp.Blob(); string(got) != "hello" {
		t.Fatalf("echo = %q", got)
	}
	if end <= 0 {
		t.Fatal("RPC charged no simulated time")
	}
	// An RPC must cost at least one network RTT plus the CPU charge.
	minCost := simnet.Duration(2*(600+300))*time.Nanosecond/time.Nanosecond + DefaultCPUPerRequest
	if simnet.Duration(end) < minCost {
		t.Fatalf("RPC too cheap: %v < %v", simnet.Duration(end), minCost)
	}
}

func TestRemoteError(t *testing.T) {
	srv, cn, sn := newEchoServer(t)
	defer srv.Close()
	cl, err := Dial(cn, sn, srv)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	_, _, err = cl.Call(0, kindFail, nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("error = %v, want RemoteError", err)
	}
	if re.Msg != "boom" || re.Kind != kindFail {
		t.Fatalf("RemoteError = %+v", re)
	}
	if re.Error() == "" {
		t.Fatal("empty error text")
	}
}

func TestUnknownKind(t *testing.T) {
	srv, cn, sn := newEchoServer(t)
	defer srv.Close()
	cl, err := Dial(cn, sn, srv)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	_, _, err = cl.Call(0, Kind(200), nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("unknown kind error = %v", err)
	}
}

func TestConcurrentCalls(t *testing.T) {
	srv, cn, sn := newEchoServer(t)
	defer srv.Close()
	cl, err := Dial(cn, sn, srv)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var w Writer
				w.U64(uint64(g)).U64(uint64(i))
				resp, _, err := cl.Call(0, kindAdd, w.Bytes())
				if err != nil {
					t.Errorf("Call: %v", err)
					return
				}
				if got := resp.U64(); got != uint64(g+i) {
					t.Errorf("add = %d, want %d", got, g+i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestMultipleClients(t *testing.T) {
	srv, cn, sn := newEchoServer(t)
	defer srv.Close()
	var clients []*Client
	for i := 0; i < 4; i++ {
		cl, err := Dial(cn, sn, srv)
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, cl)
	}
	for i, cl := range clients {
		var w Writer
		w.U64(uint64(i)).U64(1)
		resp, _, err := cl.Call(0, kindAdd, w.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		if got := resp.U64(); got != uint64(i+1) {
			t.Fatalf("client %d: got %d", i, got)
		}
		cl.Close()
	}
}

func TestClientCloseFailsInflight(t *testing.T) {
	srv, cn, sn := newEchoServer(t)
	defer srv.Close()
	cl, err := Dial(cn, sn, srv)
	if err != nil {
		t.Fatal(err)
	}
	cl.Close()
	if _, _, err := cl.Call(0, kindEcho, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("call after close: %v", err)
	}
}

func TestServerCloseStopsServing(t *testing.T) {
	srv, cn, sn := newEchoServer(t)
	cl, err := Dial(cn, sn, srv)
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if _, _, err := cl.Call(0, kindEcho, nil); err == nil {
		t.Fatal("call succeeded after server close")
	}
	if err := srv.Serve(sn.NewQP()); !errors.Is(err, ErrClosed) {
		t.Fatalf("Serve after close: %v", err)
	}
	srv.Close() // idempotent
}

func TestCPUSerializesRequests(t *testing.T) {
	// With a large CPU cost, N concurrent RPCs must take at least
	// N*cost of simulated time on the server CPU.
	_, cn, sn := testFabric(t)
	cpu := simnet.NewResource("cpu")
	const cost = 10 * time.Microsecond
	srv := NewServer(cpu, cost)
	srv.Handle(kindEcho, func(at simnet.Time, req *Reader) ([]byte, simnet.Time, error) {
		return nil, at, nil
	})
	defer srv.Close()
	cl, err := Dial(cn, sn, srv)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const n = 10
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := cl.Call(0, kindEcho, nil); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if busy := cpu.Stats().BusyTotal; busy != n*cost {
		t.Fatalf("CPU busy %v, want %v", busy, n*cost)
	}
}

func TestWriterReaderRoundtrip(t *testing.T) {
	var w Writer
	w.U8(7).U16(300).U32(70000).U64(1 << 40).I64(-5).Str("hi").Blob([]byte{1, 2, 3})
	r := NewReader(w.Bytes())
	if r.U8() != 7 || r.U16() != 300 || r.U32() != 70000 || r.U64() != 1<<40 || r.I64() != -5 {
		t.Fatal("numeric roundtrip failed")
	}
	if r.Str() != "hi" {
		t.Fatal("string roundtrip failed")
	}
	if b := r.Blob(); len(b) != 3 || b[2] != 3 {
		t.Fatal("blob roundtrip failed")
	}
	if r.Err() != nil {
		t.Fatalf("Err = %v", r.Err())
	}
}

func TestReaderTruncation(t *testing.T) {
	r := NewReader([]byte{1, 2})
	_ = r.U64()
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Fatalf("Err = %v, want ErrTruncated", r.Err())
	}
	// Error sticks; further reads are zero.
	if r.U8() != 0 || r.Str() != "" || r.Blob() != nil {
		t.Fatal("reads after error not zero-valued")
	}
}

func TestDecodeRequestTruncated(t *testing.T) {
	if _, _, _, err := decodeRequest([]byte{1}); !errors.Is(err, ErrTruncated) {
		t.Fatal("short request accepted")
	}
	if _, _, _, err := decodeResponse(nil); !errors.Is(err, ErrTruncated) {
		t.Fatal("nil response accepted")
	}
}

func TestHandlerDeviceTimePropagates(t *testing.T) {
	// A handler that charges extra virtual time must delay the response.
	_, cn, sn := testFabric(t)
	srv := NewServer(simnet.NewResource("cpu"), time.Microsecond)
	const extra = 100 * time.Microsecond
	srv.Handle(kindEcho, func(at simnet.Time, req *Reader) ([]byte, simnet.Time, error) {
		return nil, at.Add(extra), nil
	})
	defer srv.Close()
	cl, err := Dial(cn, sn, srv)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	_, end, err := cl.Call(0, kindEcho, nil)
	if err != nil {
		t.Fatal(err)
	}
	if simnet.Duration(end) < extra {
		t.Fatalf("completion %v does not include handler time %v", simnet.Duration(end), extra)
	}
}

func TestDialBadConnect(t *testing.T) {
	// Dialing across fabrics must fail cleanly.
	_, cn, _ := testFabric(t)
	f2, _ := rdma.NewFabric(simnet.LinkModel{})
	other, _ := f2.AddNode("other")
	srv := NewServer(simnet.NewResource("cpu"), 0)
	defer srv.Close()
	if _, err := Dial(cn, other, srv); err == nil {
		t.Fatal("cross-fabric dial succeeded")
	}
}

func ExampleWriter() {
	var w Writer
	w.U64(42).Str("pool")
	r := NewReader(w.Bytes())
	fmt.Println(r.U64(), r.Str())
	// Output: 42 pool
}
