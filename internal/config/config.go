// Package config defines the tunable parameters of a Gengar deployment:
// cluster shape, device timing profiles, network model, hotness epoching,
// proxy geometry and feature switches for the ablation baselines.
package config

import (
	"errors"
	"fmt"
	"time"

	"gengar/internal/hmem"
	"gengar/internal/simnet"
)

// Features switches Gengar's two key mechanisms on and off, yielding the
// ablation variants evaluated in EXPERIMENTS.md (E12). With both off the
// system degenerates to the NVM-direct DSHM baseline.
type Features struct {
	// Cache enables hotness tracking and the distributed DRAM buffers.
	Cache bool
	// Proxy enables DRAM-staged writes with asynchronous NVM flush.
	Proxy bool
}

// Hotness tunes frequently-accessed-data identification.
type Hotness struct {
	// DigestEvery is the number of data-path accesses to one home server
	// after which a client reports its digest there.
	DigestEvery int
	// SketchK is the Space-Saving counter budget per server.
	SketchK int
	// PlanEvery is the minimum simulated time between promotion plans at
	// one server.
	PlanEvery time.Duration
	// MinWeight, Hysteresis and MaxChurn parameterize the promotion
	// policy (see hotness.Policy).
	MinWeight  uint64
	Hysteresis float64
	MaxChurn   int
}

// Proxy tunes the write-staging path.
type Proxy struct {
	// RingSlots and RingSlotSize define each client's staging ring. The
	// slot size bounds the largest proxied write (minus a 12 B header).
	RingSlots    int
	RingSlotSize int
	// PollCost is the server CPU charge per flushed record.
	PollCost time.Duration
	// FlushAdaptive enables interference-aware flushing: flush workers
	// coalesce harder and back off when foreground NVM read latency
	// climbs. Off by default so baselines measure greedy flushing.
	FlushAdaptive bool
	// FlushMaxLag bounds flush lag under adaptive backoff (the proxy's
	// default when zero). Ignored unless FlushAdaptive is set.
	FlushMaxLag time.Duration
}

// Cluster is the full deployment description.
type Cluster struct {
	// Servers is the number of memory servers contributing NVM and DRAM.
	Servers int

	// NVMBytes is each server's NVM pool capacity (power of two).
	NVMBytes int64
	// DRAMBufferBytes is each server's DRAM buffer arena for promoted
	// copies (power of two).
	DRAMBufferBytes int64
	// RingBytes is each server's DRAM reserved for staging rings.
	RingBytes int64
	// LockSlots is the per-server lock table size (power of two).
	LockSlots int

	// PoolMedia is the timing profile of pool devices. Swapping
	// OptaneProfile for DRAMProfile yields the DRAM-only baseline pool.
	PoolMedia hmem.MediaProfile
	// BufferMedia is the timing profile of DRAM buffer/ring devices.
	BufferMedia hmem.MediaProfile
	// Network is the fabric link model.
	Network simnet.LinkModel

	// RPCCPUPerReq is the server CPU charge per control-plane RPC.
	RPCCPUPerReq time.Duration

	Hotness  Hotness
	Proxy    Proxy
	Features Features
}

// Default returns the configuration used throughout the evaluation
// unless a sweep overrides a field: a 4-server pool of 64 MiB Optane-
// profile NVM each, 8 MiB DRAM buffers, 100 Gb/s-class fabric, and both
// Gengar mechanisms enabled.
func Default() Cluster {
	return Cluster{
		Servers:         4,
		NVMBytes:        64 << 20,
		DRAMBufferBytes: 8 << 20,
		RingBytes:       8 << 20,
		LockSlots:       1 << 14,
		PoolMedia:       hmem.OptaneProfile(),
		BufferMedia:     hmem.DRAMProfile(),
		Network: simnet.LinkModel{
			PerOp:       600 * time.Nanosecond,
			RespPerOp:   20 * time.Nanosecond, // NIC per-message hardware cost
			Propagation: 300 * time.Nanosecond,
			BytesPerSec: 12.5e9, // 100 Gb/s
		},
		RPCCPUPerReq: 1500 * time.Nanosecond,
		Hotness: Hotness{
			DigestEvery: 256,
			SketchK:     4096,
			PlanEvery:   time.Millisecond,
			MinWeight:   4,
			Hysteresis:  1.5,
			MaxChurn:    16,
		},
		Proxy: Proxy{
			RingSlots:    128,
			RingSlotSize: 4096 + 12,
			PollCost:     200 * time.Nanosecond,
		},
		Features: Features{Cache: true, Proxy: true},
	}
}

// NVMDirect returns the state-of-the-art-comparator configuration: the
// same substrate with Gengar's mechanisms disabled, i.e. a DSHM exposing
// remote NVM directly over one-sided verbs (Octopus-class).
func NVMDirect() Cluster {
	c := Default()
	c.Features = Features{}
	return c
}

// DRAMPool returns the DRAM-only pool baseline: every pool byte is DRAM
// (the latency upper bound a hybrid system chases, at a capacity and
// cost real deployments cannot afford).
func DRAMPool() Cluster {
	c := Default()
	c.PoolMedia = hmem.DRAMProfile()
	c.Features = Features{}
	return c
}

func pow2(v int64) bool { return v > 0 && v&(v-1) == 0 }

// Validate reports the first problem with the configuration.
func (c Cluster) Validate() error {
	if c.Servers <= 0 || c.Servers > 1<<16-1 {
		return fmt.Errorf("config: servers %d out of range", c.Servers)
	}
	if !pow2(c.NVMBytes) {
		return fmt.Errorf("config: NVMBytes %d not a power of two", c.NVMBytes)
	}
	if !pow2(c.DRAMBufferBytes) {
		return fmt.Errorf("config: DRAMBufferBytes %d not a power of two", c.DRAMBufferBytes)
	}
	if c.RingBytes <= 0 {
		return errors.New("config: RingBytes must be positive")
	}
	if c.LockSlots <= 0 || c.LockSlots&(c.LockSlots-1) != 0 {
		return fmt.Errorf("config: LockSlots %d not a power of two", c.LockSlots)
	}
	if err := c.PoolMedia.Validate(); err != nil {
		return fmt.Errorf("config: pool media: %w", err)
	}
	if err := c.BufferMedia.Validate(); err != nil {
		return fmt.Errorf("config: buffer media: %w", err)
	}
	if c.BufferMedia.Kind != hmem.KindDRAM {
		return errors.New("config: buffer media must be DRAM")
	}
	if err := c.Network.Validate(); err != nil {
		return fmt.Errorf("config: network: %w", err)
	}
	if c.Hotness.DigestEvery <= 0 || c.Hotness.SketchK <= 0 {
		return errors.New("config: hotness DigestEvery and SketchK must be positive")
	}
	if c.Proxy.RingSlots <= 0 || c.Proxy.RingSlotSize <= 12 {
		return errors.New("config: proxy ring geometry invalid")
	}
	if c.Proxy.FlushMaxLag < 0 {
		return errors.New("config: proxy FlushMaxLag must be non-negative")
	}
	if int64(c.Proxy.RingSlots)*int64(c.Proxy.RingSlotSize) > c.RingBytes {
		return fmt.Errorf("config: one ring (%d B) exceeds RingBytes %d",
			int64(c.Proxy.RingSlots)*int64(c.Proxy.RingSlotSize), c.RingBytes)
	}
	return nil
}

// MaxProxiedWrite returns the largest write the proxy path can stage.
func (c Cluster) MaxProxiedWrite() int { return c.Proxy.RingSlotSize - 12 }
