package config

import (
	"testing"

	"gengar/internal/hmem"
)

func TestDefaultValid(t *testing.T) {
	for name, c := range map[string]Cluster{
		"default":    Default(),
		"nvm-direct": NVMDirect(),
		"dram-pool":  DRAMPool(),
	} {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestPresetSemantics(t *testing.T) {
	if f := NVMDirect().Features; f.Cache || f.Proxy {
		t.Fatal("NVMDirect must disable both mechanisms")
	}
	d := DRAMPool()
	if d.PoolMedia.Kind != hmem.KindDRAM {
		t.Fatal("DRAMPool must use DRAM pool media")
	}
	g := Default()
	if !g.Features.Cache || !g.Features.Proxy {
		t.Fatal("Default must enable both mechanisms")
	}
	if g.PoolMedia.Kind != hmem.KindNVM {
		t.Fatal("Default pool must be NVM")
	}
}

func TestValidateCatchesBadFields(t *testing.T) {
	mutations := map[string]func(*Cluster){
		"zero servers":     func(c *Cluster) { c.Servers = 0 },
		"too many servers": func(c *Cluster) { c.Servers = 1 << 16 },
		"non-pow2 nvm":     func(c *Cluster) { c.NVMBytes = 1000 },
		"non-pow2 dram":    func(c *Cluster) { c.DRAMBufferBytes = 1000 },
		"zero ring bytes":  func(c *Cluster) { c.RingBytes = 0 },
		"non-pow2 locks":   func(c *Cluster) { c.LockSlots = 3 },
		"bad pool media":   func(c *Cluster) { c.PoolMedia = hmem.MediaProfile{} },
		"bad buffer media": func(c *Cluster) { c.BufferMedia = hmem.MediaProfile{} },
		"nvm buffer media": func(c *Cluster) { c.BufferMedia = hmem.OptaneProfile() },
		"bad network":      func(c *Cluster) { c.Network.PerOp = -1 },
		"zero digest":      func(c *Cluster) { c.Hotness.DigestEvery = 0 },
		"zero sketch":      func(c *Cluster) { c.Hotness.SketchK = 0 },
		"bad ring slots":   func(c *Cluster) { c.Proxy.RingSlots = 0 },
		"tiny ring slot":   func(c *Cluster) { c.Proxy.RingSlotSize = 12 },
		"ring overflow":    func(c *Cluster) { c.RingBytes = 100 },
	}
	for name, mutate := range mutations {
		c := Default()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: validation passed", name)
		}
	}
}

func TestMaxProxiedWrite(t *testing.T) {
	c := Default()
	if got := c.MaxProxiedWrite(); got != 4096 {
		t.Fatalf("MaxProxiedWrite = %d, want 4096", got)
	}
}
