package cache

import (
	"errors"
	"testing"
	"testing/quick"

	"gengar/internal/alloc"
	"gengar/internal/hmem"
	"gengar/internal/region"
	"gengar/internal/rpc"
)

func ga(off int64) region.GAddr { return region.MustGAddr(1, off) }

func TestLocationWireRoundtrip(t *testing.T) {
	l := Location{Node: "s2", RKey: 7, Off: 4096, Size: 1024, Gen: 9, HomeMR: 3}
	var w rpc.Writer
	l.Encode(&w)
	got := DecodeLocation(rpc.NewReader(w.Bytes()))
	if got != l {
		t.Fatalf("roundtrip: %+v != %+v", got, l)
	}
}

func TestLocationWireProperty(t *testing.T) {
	f := func(node string, rkey uint32, off, size int64, gen uint64, home uint32) bool {
		if len(node) > 1<<15 {
			node = node[:1<<15]
		}
		l := Location{Node: node, RKey: rkey, Off: off, Size: size, Gen: gen, HomeMR: home}
		var w rpc.Writer
		l.Encode(&w)
		return DecodeLocation(rpc.NewReader(w.Bytes())) == l
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func newPool(t *testing.T, size int64) *BufferPool {
	t.Helper()
	dev, err := hmem.NewDevice("dram-buf", size, hmem.DRAMProfile())
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewBufferPool(dev)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBufferPoolBasics(t *testing.T) {
	p := newPool(t, 1<<12)
	if p.Capacity() != 1<<12 || p.Device() == nil {
		t.Fatal("accessors")
	}
	off, err := p.Place(100)
	if err != nil {
		t.Fatal(err)
	}
	if p.UsedBytes() != alloc.BlockSize(100) {
		t.Fatalf("UsedBytes = %d", p.UsedBytes())
	}
	if err := p.Release(off); err != nil {
		t.Fatal(err)
	}
	if p.UsedBytes() != 0 {
		t.Fatal("release did not return space")
	}
	if err := p.Release(off); err == nil {
		t.Fatal("double release accepted")
	}
}

func TestBufferPoolExhaustion(t *testing.T) {
	p := newPool(t, 1<<10)
	if _, err := p.Place(1 << 11); !errors.Is(err, alloc.ErrOutOfMemory) {
		t.Fatalf("oversize place: %v", err)
	}
}

func TestBufferPoolRejectsNVM(t *testing.T) {
	dev, err := hmem.NewDevice("nvm", 1<<12, hmem.OptaneProfile())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewBufferPool(dev); err == nil {
		t.Fatal("NVM device accepted as DRAM buffer")
	}
}

func TestBufferPoolRejectsNonPow2(t *testing.T) {
	dev, err := hmem.NewDevice("d", 1000, hmem.DRAMProfile())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewBufferPool(dev); err == nil {
		t.Fatal("non-power-of-two arena accepted")
	}
}

func TestRemapTableEpochs(t *testing.T) {
	rt := NewRemapTable()
	if rt.Epoch() != 0 || rt.Len() != 0 {
		t.Fatal("fresh table not empty")
	}
	loc := Location{Node: "s1", RKey: 1, Off: 0, Size: 64}
	released := rt.Apply(map[region.GAddr]Location{ga(64): loc}, nil)
	if len(released) != 0 || rt.Epoch() != 1 || rt.Len() != 1 {
		t.Fatalf("after promote: epoch=%d len=%d", rt.Epoch(), rt.Len())
	}
	got, ok := rt.Lookup(ga(64))
	if !ok || got != loc {
		t.Fatalf("Lookup: %+v %v", got, ok)
	}
	if _, ok := rt.Lookup(ga(128)); ok {
		t.Fatal("phantom lookup")
	}
	// Empty apply does not bump the epoch.
	rt.Apply(nil, nil)
	if rt.Epoch() != 1 {
		t.Fatal("no-op apply bumped epoch")
	}
	// Removing a non-promoted address is a no-op.
	rt.Apply(nil, []region.GAddr{ga(999)})
	if rt.Epoch() != 1 {
		t.Fatal("no-op removal bumped epoch")
	}
	released = rt.Apply(nil, []region.GAddr{ga(64)})
	if len(released) != 1 || released[0] != loc || rt.Epoch() != 2 || rt.Len() != 0 {
		t.Fatalf("demote: released=%v epoch=%d", released, rt.Epoch())
	}
}

func TestRemapTablePromotedAndSnapshot(t *testing.T) {
	rt := NewRemapTable()
	rt.Apply(map[region.GAddr]Location{
		ga(64):  {Size: 64},
		ga(256): {Size: 128},
	}, nil)
	prom := rt.Promoted()
	if !prom[ga(64)] || !prom[ga(256)] || len(prom) != 2 {
		t.Fatalf("Promoted = %v", prom)
	}
	epoch, snap := rt.Snapshot()
	if epoch != 1 || len(snap) != 2 {
		t.Fatalf("snapshot: %d %v", epoch, snap)
	}
	// Snapshot is a copy.
	delete(snap, ga(64))
	if rt.Len() != 2 {
		t.Fatal("snapshot aliases table")
	}
}

func TestClientViewLookupContainment(t *testing.T) {
	v := NewClientView()
	if _, _, ok := v.Lookup(ga(100), 4); ok {
		t.Fatal("empty view hit")
	}
	v.Replace(3, map[region.GAddr]Location{
		ga(128): {Node: "s1", Off: 0, Size: 128},
		ga(512): {Node: "s2", Off: 64, Size: 64},
	})
	if v.Epoch() != 3 || v.Len() != 2 {
		t.Fatalf("epoch=%d len=%d", v.Epoch(), v.Len())
	}
	cases := []struct {
		addr region.GAddr
		size int64
		hit  bool
		base region.GAddr
	}{
		{ga(128), 128, true, ga(128)}, // exact
		{ga(160), 32, true, ga(128)},  // interior range
		{ga(255), 1, true, ga(128)},   // last byte
		{ga(255), 2, false, 0},        // crosses object end
		{ga(127), 1, false, 0},        // before first object
		{ga(64), 4, false, 0},         // below all bases
		{ga(512), 64, true, ga(512)},
		{ga(600), 4, false, 0}, // past second object
		{ga(300), 8, false, 0}, // gap between objects
		{ga(520), -1, false, 0},
	}
	for i, c := range cases {
		loc, base, ok := v.Lookup(c.addr, c.size)
		if ok != c.hit {
			t.Errorf("case %d: hit=%v want %v", i, ok, c.hit)
			continue
		}
		if ok && base != c.base {
			t.Errorf("case %d: base=%v want %v (loc %+v)", i, base, c.base, loc)
		}
	}
}

func TestClientViewReplaceDiscardsOld(t *testing.T) {
	v := NewClientView()
	v.Replace(1, map[region.GAddr]Location{ga(64): {Size: 64}})
	v.Replace(2, map[region.GAddr]Location{ga(256): {Size: 64}})
	if _, _, ok := v.Lookup(ga(64), 8); ok {
		t.Fatal("stale entry survived Replace")
	}
	if _, _, ok := v.Lookup(ga(256), 8); !ok {
		t.Fatal("new entry missing")
	}
}

func TestClientViewMatchesTableProperty(t *testing.T) {
	// Property: for random promoted sets, every byte inside a promoted
	// object hits and maps to the right base; every byte outside misses.
	f := func(seed int64) bool {
		rt := NewRemapTable()
		add := make(map[region.GAddr]Location)
		// Non-overlapping 64B objects at even slots chosen by seed bits.
		for i := 0; i < 32; i++ {
			if seed>>uint(i)&1 == 1 {
				add[ga(int64(i)*128)] = Location{Size: 64}
			}
		}
		rt.Apply(add, nil)
		v := NewClientView()
		epoch, snap := rt.Snapshot()
		v.Replace(epoch, snap)
		for i := 0; i < 32; i++ {
			base := ga(int64(i) * 128)
			_, gotBase, ok := v.Lookup(base.Add(63), 1)
			if _, promoted := add[base]; promoted {
				if !ok || gotBase != base {
					return false
				}
			} else if ok && gotBase == base {
				return false
			}
			// The second 64B half of each slot is never promoted.
			if _, _, ok := v.Lookup(base.Add(64), 1); ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
