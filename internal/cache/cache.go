// Package cache implements Gengar's distributed DRAM buffers: the
// server-side buffer pools that hold DRAM copies of hot NVM objects, the
// authoritative remap table each home server maintains (object -> current
// DRAM location), and the client-side cached view of that table that lets
// gread hit DRAM with a single one-sided verb.
//
// Promotion and demotion happen at object granularity at hotness-epoch
// boundaries (see package hotness); the remap table's epoch number lets
// clients detect staleness cheaply — the epoch is piggybacked on digest
// replies, and a client refreshes its view only when it changes.
package cache

import (
	"fmt"
	"sync"

	"gengar/internal/alloc"
	"gengar/internal/hmem"
	"gengar/internal/region"
	"gengar/internal/rpc"
)

// CopyHeaderBytes is the per-copy header: an 8-byte generation stamp
// written at promotion time. A client whose remap view is stale may
// direct a read at a buffer slot that has since been demoted and reused;
// comparing the stamp against the generation in its view detects the
// reuse, and the client falls back to the authoritative NVM copy.
const CopyHeaderBytes = 8

// Location records where the DRAM copy of a promoted object lives: an
// RDMA-addressable window on some node, plus the object size. Off points
// at the copy's generation header; the data follows at Off+CopyHeaderBytes.
type Location struct {
	Node   string // fabric node hosting the DRAM buffer
	RKey   uint32 // memory region key of the buffer arena
	Off    int64  // offset of the copy header within that region
	Size   int64  // object size in bytes (data, excluding header)
	Gen    uint64 // promotion generation stamped into the header
	HomeMR uint32 // rkey of the object's home NVM pool (for write-back)
}

// Encode appends the location to a wire payload.
func (l Location) Encode(w *rpc.Writer) {
	w.Str(l.Node).U32(l.RKey).I64(l.Off).I64(l.Size).U64(l.Gen).U32(l.HomeMR)
}

// DecodeLocation consumes a location from a wire payload.
func DecodeLocation(r *rpc.Reader) Location {
	return Location{
		Node:   r.Str(),
		RKey:   r.U32(),
		Off:    r.I64(),
		Size:   r.I64(),
		Gen:    r.U64(),
		HomeMR: r.U32(),
	}
}

// BufferPool manages one server's DRAM buffer arena: the capacity pledged
// to hold promoted copies. It wraps a buddy allocator over a DRAM device;
// registration of the arena as an RDMA region is the server's job.
type BufferPool struct {
	dev   *hmem.Device
	buddy *alloc.Buddy
}

// NewBufferPool returns a pool over the whole of dev, whose size must be
// a power of two.
func NewBufferPool(dev *hmem.Device) (*BufferPool, error) {
	if dev.Kind() != hmem.KindDRAM {
		return nil, fmt.Errorf("cache: buffer pool requires DRAM device, got %v", dev.Kind())
	}
	b, err := alloc.New(dev.Size())
	if err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	return &BufferPool{dev: dev, buddy: b}, nil
}

// Device returns the DRAM device backing the pool.
func (p *BufferPool) Device() *hmem.Device { return p.dev }

// Place reserves space for an object copy of the given size and returns
// its offset within the arena.
func (p *BufferPool) Place(size int64) (int64, error) {
	off, err := p.buddy.Alloc(size)
	if err != nil {
		return 0, fmt.Errorf("cache: place %d bytes: %w", size, err)
	}
	return off, nil
}

// Release frees a previously placed copy.
func (p *BufferPool) Release(off int64) error {
	if err := p.buddy.Free(off); err != nil {
		return fmt.Errorf("cache: release: %w", err)
	}
	return nil
}

// UsedBytes returns the bytes currently holding promoted copies
// (rounded to allocator blocks).
func (p *BufferPool) UsedBytes() int64 { return p.buddy.AllocatedBytes() }

// Capacity returns the arena size.
func (p *BufferPool) Capacity() int64 { return p.buddy.ArenaSize() }

// RemapTable is the home server's authoritative object->DRAM-copy map.
// Every mutation bumps the epoch; clients compare epochs to decide when
// to refresh. It is safe for concurrent use.
type RemapTable struct {
	mu    sync.RWMutex
	epoch uint64
	m     map[region.GAddr]Location
}

// NewRemapTable returns an empty table at epoch zero.
func NewRemapTable() *RemapTable {
	return &RemapTable{m: make(map[region.GAddr]Location)}
}

// Epoch returns the current table version.
func (t *RemapTable) Epoch() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.epoch
}

// Lookup returns the DRAM location of the object based at addr, if
// promoted.
func (t *RemapTable) Lookup(addr region.GAddr) (Location, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	loc, ok := t.m[addr]
	return loc, ok
}

// Promoted returns the set of currently promoted object bases.
func (t *RemapTable) Promoted() map[region.GAddr]bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make(map[region.GAddr]bool, len(t.m))
	for a := range t.m {
		out[a] = true
	}
	return out
}

// Apply installs a batch of promotions and removals atomically and bumps
// the epoch once (if anything changed). Removed entries are returned so
// the caller can release their buffer space.
func (t *RemapTable) Apply(add map[region.GAddr]Location, remove []region.GAddr) []Location {
	t.mu.Lock()
	defer t.mu.Unlock()
	var released []Location
	for _, a := range remove {
		if loc, ok := t.m[a]; ok {
			released = append(released, loc)
			delete(t.m, a)
		}
	}
	for a, loc := range add {
		t.m[a] = loc
	}
	if len(add) > 0 || len(released) > 0 {
		t.epoch++
	}
	return released
}

// Snapshot returns the epoch and all entries, for shipping to clients.
func (t *RemapTable) Snapshot() (uint64, map[region.GAddr]Location) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make(map[region.GAddr]Location, len(t.m))
	for a, l := range t.m {
		out[a] = l
	}
	return t.epoch, out
}

// Len returns the number of promoted objects.
func (t *RemapTable) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.m)
}
