// Package cache implements Gengar's distributed DRAM buffers: the
// server-side buffer pools that hold DRAM copies of hot NVM objects, the
// authoritative remap table each home server maintains (object -> current
// DRAM location), and the client-side cached view of that table that lets
// gread hit DRAM with a single one-sided verb.
//
// Promotion and demotion happen at object granularity at hotness-epoch
// boundaries (see package hotness); the remap table's epoch number lets
// clients detect staleness cheaply — the epoch is piggybacked on digest
// replies, and a client refreshes its view only when it changes.
package cache

import (
	"fmt"
	"sync"
	"sync/atomic"

	"gengar/internal/alloc"
	"gengar/internal/hmem"
	"gengar/internal/region"
	"gengar/internal/rpc"
)

// Copy header layout. Every promoted copy starts with a 16-byte header:
//
//	[0,8)  generation stamp, big-endian — written at promotion time. A
//	       client whose remap view is stale may direct a read at a buffer
//	       slot that has since been demoted and reused; comparing the
//	       stamp against the generation in its view detects the reuse,
//	       and the client falls back to the authoritative NVM copy.
//	[8,16) seqlock word, native order — server-local. Writers flip it odd
//	       before mutating the copy and even (+2) after; the lock-free
//	       server-mediated read path copies the data without a mutex and
//	       retries when the word is odd or changed. One-sided clients
//	       never interpret it (their gen check subsumes it: the remote
//	       READ snapshots gen+data in one verb).
const (
	CopyHeaderBytes = 16
	// CopyGenOff is the header offset of the generation stamp.
	CopyGenOff = 0
	// CopySeqOff is the header offset of the seqlock word.
	CopySeqOff = 8
)

// Location records where the DRAM copy of a promoted object lives: an
// RDMA-addressable window on some node, plus the object size. Off points
// at the copy's generation header; the data follows at Off+CopyHeaderBytes.
type Location struct {
	Node   string // fabric node hosting the DRAM buffer
	RKey   uint32 // memory region key of the buffer arena
	Off    int64  // offset of the copy header within that region
	Size   int64  // object size in bytes (data, excluding header)
	Gen    uint64 // promotion generation stamped into the header
	HomeMR uint32 // rkey of the object's home NVM pool (for write-back)
}

// Encode appends the location to a wire payload.
func (l Location) Encode(w *rpc.Writer) {
	w.Str(l.Node).U32(l.RKey).I64(l.Off).I64(l.Size).U64(l.Gen).U32(l.HomeMR)
}

// DecodeLocation consumes a location from a wire payload.
func DecodeLocation(r *rpc.Reader) Location {
	return Location{
		Node:   r.Str(),
		RKey:   r.U32(),
		Off:    r.I64(),
		Size:   r.I64(),
		Gen:    r.U64(),
		HomeMR: r.U32(),
	}
}

// BufferPool manages one server's DRAM buffer arena: the capacity pledged
// to hold promoted copies. It wraps a buddy allocator over a DRAM device;
// registration of the arena as an RDMA region is the server's job.
type BufferPool struct {
	dev   *hmem.Device
	buddy *alloc.ShardedPool
}

// NewBufferPool returns a pool over the whole of dev, whose size must be
// a power of two.
func NewBufferPool(dev *hmem.Device) (*BufferPool, error) {
	if dev.Kind() != hmem.KindDRAM {
		return nil, fmt.Errorf("cache: buffer pool requires DRAM device, got %v", dev.Kind())
	}
	b, err := alloc.NewSharded(dev.Size())
	if err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	return &BufferPool{dev: dev, buddy: b}, nil
}

// Device returns the DRAM device backing the pool.
func (p *BufferPool) Device() *hmem.Device { return p.dev }

// Place reserves space for an object copy of the given size and returns
// its offset within the arena.
func (p *BufferPool) Place(size int64) (int64, error) {
	off, err := p.buddy.Alloc(size)
	if err != nil {
		return 0, fmt.Errorf("cache: place %d bytes: %w", size, err)
	}
	return off, nil
}

// Release frees a previously placed copy.
func (p *BufferPool) Release(off int64) error {
	if err := p.buddy.Free(off); err != nil {
		return fmt.Errorf("cache: release: %w", err)
	}
	return nil
}

// UsedBytes returns the bytes currently holding promoted copies
// (rounded to allocator blocks).
func (p *BufferPool) UsedBytes() int64 { return p.buddy.AllocatedBytes() }

// Capacity returns the arena size.
func (p *BufferPool) Capacity() int64 { return p.buddy.ArenaSize() }

// Allocator returns the sharded allocator behind the arena, for
// per-shard occupancy telemetry.
func (p *BufferPool) Allocator() *alloc.ShardedPool { return p.buddy }

// RemapTable is the home server's authoritative object->DRAM-copy map.
// Every mutation bumps the epoch; clients compare epochs to decide when
// to refresh. It is safe for concurrent use: readers follow an
// atomically-swapped immutable snapshot (promotions are rare, lookups
// are per-op, so copy-on-write beats a read lock on the hit path), and
// mutations clone under a writer mutex before publishing.
type RemapTable struct {
	mu sync.Mutex // serializes writers
	//gengar:guardedby mu
	p atomic.Pointer[remapState]
}

// remapState is one immutable table version. The map is never mutated
// after publication.
type remapState struct {
	epoch uint64
	m     map[region.GAddr]Location
}

// NewRemapTable returns an empty table at epoch zero.
func NewRemapTable() *RemapTable {
	t := &RemapTable{}
	t.p.Store(&remapState{m: make(map[region.GAddr]Location)})
	return t
}

// Epoch returns the current table version.
func (t *RemapTable) Epoch() uint64 {
	return t.p.Load().epoch
}

// Lookup returns the DRAM location of the object based at addr, if
// promoted. It takes no locks.
//
//gengar:hotpath
func (t *RemapTable) Lookup(addr region.GAddr) (Location, bool) {
	loc, ok := t.p.Load().m[addr]
	return loc, ok
}

// Promoted returns the set of currently promoted object bases.
func (t *RemapTable) Promoted() map[region.GAddr]bool {
	s := t.p.Load()
	out := make(map[region.GAddr]bool, len(s.m))
	for a := range s.m {
		out[a] = true
	}
	return out
}

// Apply installs a batch of promotions and removals atomically and bumps
// the epoch once (if anything changed). Removed entries are returned so
// the caller can release their buffer space.
func (t *RemapTable) Apply(add map[region.GAddr]Location, remove []region.GAddr) []Location {
	t.mu.Lock()
	defer t.mu.Unlock()
	old := t.p.Load()
	next := &remapState{epoch: old.epoch, m: make(map[region.GAddr]Location, len(old.m)+len(add))}
	for a, l := range old.m {
		next.m[a] = l
	}
	var released []Location
	for _, a := range remove {
		if loc, ok := next.m[a]; ok {
			released = append(released, loc)
			delete(next.m, a)
		}
	}
	for a, loc := range add {
		next.m[a] = loc
	}
	if len(add) > 0 || len(released) > 0 {
		next.epoch++
		t.p.Store(next)
	}
	return released
}

// Snapshot returns the epoch and all entries, for shipping to clients.
// The returned map is a defensive copy.
func (t *RemapTable) Snapshot() (uint64, map[region.GAddr]Location) {
	s := t.p.Load()
	out := make(map[region.GAddr]Location, len(s.m))
	for a, l := range s.m {
		out[a] = l
	}
	return s.epoch, out
}

// Len returns the number of promoted objects.
func (t *RemapTable) Len() int {
	return len(t.p.Load().m)
}
