package cache

import (
	"sort"
	"sync"

	"gengar/internal/metrics"
	"gengar/internal/region"
	"gengar/internal/telemetry"
)

// ClientView is a client's cached copy of one home server's remap table.
// Lookups are by containment — a gread of any byte range inside a
// promoted object is redirected to the DRAM copy — so entries are kept
// sorted by object base address for binary search. It is safe for
// concurrent use.
type ClientView struct {
	mu      sync.RWMutex
	epoch   uint64
	bases   []region.GAddr // sorted object bases
	entries map[region.GAddr]Location

	lookups   metrics.Counter
	redirects metrics.Counter // lookups that hit a promoted object
}

// Lookups returns how many Lookup calls the view has served.
func (v *ClientView) Lookups() int64 { return v.lookups.Load() }

// Redirects returns how many lookups resolved to a promoted DRAM copy.
func (v *ClientView) Redirects() int64 { return v.redirects.Load() }

// RegisterTelemetry exposes the view's lookup counters and state in reg
// under the gengar_view_* names with the given labels (typically the
// owning client and home server).
func (v *ClientView) RegisterTelemetry(reg *telemetry.Registry, labels ...telemetry.Label) {
	reg.RegisterCounter("gengar_view_lookups_total", "remap-view lookups served", &v.lookups, labels...)
	reg.RegisterCounter("gengar_view_redirects_total", "lookups redirected to a DRAM copy", &v.redirects, labels...)
	reg.GaugeFunc("gengar_view_entries", "promoted objects in the cached remap view", func() int64 {
		return int64(v.Len())
	}, labels...)
	reg.GaugeFunc("gengar_view_epoch", "epoch of the cached remap view", func() int64 {
		return int64(v.Epoch())
	}, labels...)
}

// NewClientView returns an empty view at epoch zero.
func NewClientView() *ClientView {
	return &ClientView{entries: make(map[region.GAddr]Location)}
}

// Epoch returns the epoch of the last installed snapshot.
func (v *ClientView) Epoch() uint64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.epoch
}

// Replace installs a full snapshot, discarding the previous view.
// Snapshots may arrive out of order from concurrent background
// refreshes; an older epoch never overwrites a newer one (except that
// epoch 0 installs unconditionally, so tests can reset).
func (v *ClientView) Replace(epoch uint64, entries map[region.GAddr]Location) {
	bases := make([]region.GAddr, 0, len(entries))
	m := make(map[region.GAddr]Location, len(entries))
	for a, l := range entries {
		bases = append(bases, a)
		m[a] = l
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })

	v.mu.Lock()
	defer v.mu.Unlock()
	if epoch != 0 && epoch < v.epoch {
		return
	}
	v.epoch = epoch
	v.bases = bases
	v.entries = m
}

// Lookup redirects the byte range [addr, addr+size) to a DRAM copy if a
// promoted object contains it. It returns the copy's location, the
// object's base address, and whether the redirect applies.
func (v *ClientView) Lookup(addr region.GAddr, size int64) (Location, region.GAddr, bool) {
	v.lookups.Inc()
	v.mu.RLock()
	defer v.mu.RUnlock()
	if len(v.bases) == 0 || size < 0 {
		return Location{}, region.NilGAddr, false
	}
	// Greatest base <= addr.
	i := sort.Search(len(v.bases), func(i int) bool { return v.bases[i] > addr }) - 1
	if i < 0 {
		return Location{}, region.NilGAddr, false
	}
	base := v.bases[i]
	loc := v.entries[base]
	span := region.Span{Addr: base, Size: loc.Size}
	if !span.Contains(addr, size) {
		return Location{}, region.NilGAddr, false
	}
	v.redirects.Inc()
	return loc, base, true
}

// Len returns the number of entries in the view.
func (v *ClientView) Len() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.entries)
}
