package bench

import (
	"fmt"
	"math/bits"
	"time"

	"gengar/internal/config"
	"gengar/internal/core"
	"gengar/internal/server"
	"gengar/internal/telemetry"
	"gengar/internal/ycsb"
)

// Scale sizes an experiment: Quick keeps unit tests and testing.B
// iterations fast; Full is what cmd/gengar-bench runs for the recorded
// results in EXPERIMENTS.md.
type Scale struct {
	Records      int // YCSB table size
	RecordSize   int
	OpsPerClient int
	Clients      int // default client count where not swept
	MRDocs       int // MapReduce corpus documents
	MRDocWords   int
}

// Quick is the test-suite scale.
func Quick() Scale {
	return Scale{Records: 256, RecordSize: 512, OpsPerClient: 150, Clients: 4, MRDocs: 6, MRDocWords: 120}
}

// Full is the recorded-results scale.
func Full() Scale {
	return Scale{Records: 4096, RecordSize: 1024, OpsPerClient: 1500, Clients: 8, MRDocs: 32, MRDocWords: 600}
}

// Runner is one experiment entry point.
type Runner func(Scale) (*Table, error)

// Experiments returns the registry of all experiment runners in ID
// order.
func Experiments() []struct {
	ID  string
	Run Runner
} {
	return []struct {
		ID  string
		Run Runner
	}{
		{"E1", E01ReadLatency},
		{"E2", E02WriteLatency},
		{"E3", E03SkewRead},
		{"E4", E04ProxyWrite},
		{"E5", E05ClientScale},
		{"E6", E06WriteScale},
		{"E7", E07YCSB},
		{"E8", E08BufferSize},
		{"E9", E09Hotness},
		{"E10", E10Sharing},
		{"E11", E11MapReduce},
		{"E12", E12Ablation},
		{"E13", E13ClientCache},
		{"E14", E14NVMSensitivity},
		{"E15", E15ScanBatching},
		{"E16", E16WriteBatching},
		// E17 is the TCP wire-throughput suite (internal/tcpnet Go
		// benchmarks); it lives outside this registry.
		{"E18", E18LatencyAnatomy},
		{"E21", E21Interference},
	}
}

// Run executes one experiment by ID.
func Run(id string, s Scale) (*Table, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e.Run(s)
		}
	}
	return nil, fmt.Errorf("bench: unknown experiment %q", id)
}

// pow2Floor returns the largest power of two <= v (min 64).
func pow2Floor(v int64) int64 {
	if v < 64 {
		return 64
	}
	return 1 << (bits.Len64(uint64(v)) - 1)
}

// baseConfig returns a cluster config sized for the scale: the NVM pool
// comfortably holds the dataset, the DRAM buffer holds bufFrac of it.
func baseConfig(s Scale, bufFrac float64) config.Cluster {
	cfg := config.Default()
	cfg.Servers = 4
	dataset := int64(s.Records) * int64(s.RecordSize)
	cfg.NVMBytes = pow2Floor(dataset) * 8
	if cfg.NVMBytes < 1<<20 {
		cfg.NVMBytes = 1 << 20
	}
	perServer := int64(float64(dataset) * bufFrac / float64(cfg.Servers))
	cfg.DRAMBufferBytes = pow2Floor(perServer)
	cfg.RingBytes = 1 << 25 // rings for the widest client sweep (32) plus loaders
	// Digest frequency scales with run length: clients spread accesses
	// over cfg.Servers sessions, so the per-session counter must trip
	// several times within one run for promotions to land.
	every := s.OpsPerClient / 10
	if every < 64 {
		every = 64
	}
	if every > 512 {
		every = 512
	}
	cfg.Hotness.DigestEvery = every
	cfg.Hotness.PlanEvery = 200 * time.Microsecond
	return cfg
}

// featuresOff returns the all-mechanisms-disabled feature set.
func featuresOff() config.Features { return config.Features{} }

// sys is one system under test: a named configuration.
type sys struct {
	name string
	cfg  config.Cluster
}

// systems returns the three headline systems at this scale.
func systems(s Scale) []sys {
	gengar := baseConfig(s, 0.125)
	direct := baseConfig(s, 0.125)
	direct.Features = config.Features{}
	dram := baseConfig(s, 0.125)
	dram.PoolMedia = config.DRAMPool().PoolMedia
	dram.Features = config.Features{}
	return []sys{{"Gengar", gengar}, {"NVM-Direct", direct}, {"DRAM-Pool", dram}}
}

// ycsbRun loads a table and runs one workload on a fresh cluster built
// from cfg, returning the result, the final server stats, and a
// telemetry snapshot of the whole deployment taken at the end of the
// measured run.
func ycsbRun(cfg config.Cluster, w ycsb.Workload, s Scale, clients int, seed int64) (ycsb.Result, []server.Stats, telemetry.Snapshot, error) {
	var snap telemetry.Snapshot
	cl, err := server.NewCluster(cfg)
	if err != nil {
		return ycsb.Result{}, nil, snap, err
	}
	defer cl.Close()

	loader, err := core.Connect(cl, "loader")
	if err != nil {
		return ycsb.Result{}, nil, snap, err
	}
	defer loader.Close()
	w.RecordSize = s.RecordSize
	table, err := ycsb.Load(loader, s.Records, w.RecordSize)
	if err != nil {
		return ycsb.Result{}, nil, snap, err
	}

	var cs []*core.Client
	for i := 0; i < clients; i++ {
		cc, err := core.Connect(cl, fmt.Sprintf("c%d", i))
		if err != nil {
			return ycsb.Result{}, nil, snap, err
		}
		defer cc.Close()
		cs = append(cs, cc)
	}

	// Warm-up pass so hotness epochs fire and promotions land before
	// measurement, as the paper's steady-state numbers assume; then
	// quiesce the flushers and give every client a current remap view.
	if _, err := ycsb.Run(cs, table, w, s.OpsPerClient/3+1, seed+7777); err != nil {
		return ycsb.Result{}, nil, snap, err
	}
	for pass := 0; pass < 2; pass++ {
		for _, srv := range cl.Registry().Servers() {
			if err := srv.Engine().Barrier(); err != nil {
				return ycsb.Result{}, nil, snap, err
			}
		}
		for _, cc := range cs {
			if err := cc.SyncAllViews(); err != nil {
				return ycsb.Result{}, nil, snap, err
			}
		}
	}
	// Measure only the steady-state run: warm-up traffic would otherwise
	// dominate the snapshot's counters.
	cl.Telemetry().Reset()

	res, err := ycsb.Run(cs, table, w, s.OpsPerClient, seed)
	if err != nil {
		return ycsb.Result{}, nil, snap, err
	}
	var stats []server.Stats
	for _, srv := range cl.Registry().Servers() {
		stats = append(stats, srv.Stats())
	}
	return res, stats, cl.Telemetry().Snapshot(), nil
}
