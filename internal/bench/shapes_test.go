package bench

import (
	"sort"
	"strconv"
	"strings"
	"testing"
)

// cell parses a numeric table cell (stripping % and x suffixes).
func cell(t *testing.T, tb *Table, row, col int) float64 {
	t.Helper()
	if row >= len(tb.Rows) || col >= len(tb.Rows[row]) {
		t.Fatalf("%s: no cell (%d,%d)", tb.ID, row, col)
	}
	s := strings.TrimRight(tb.Rows[row][col], "%x")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("%s: cell (%d,%d) = %q: %v", tb.ID, row, col, tb.Rows[row][col], err)
	}
	return v
}

func mustRun(t *testing.T, id string) *Table {
	t.Helper()
	tb, err := Run(id, Quick())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	return tb
}

// The shape tests assert the qualitative claims of the paper's
// evaluation — who wins, where, and in which direction effects move —
// at Quick scale. EXPERIMENTS.md records the Full-scale magnitudes.

func TestShapeE1NVMReadsSlower(t *testing.T) {
	tb := mustRun(t, "E1")
	for r := range tb.Rows {
		nvm, dram := cell(t, tb, r, 1), cell(t, tb, r, 2)
		if nvm <= dram {
			t.Errorf("row %d: NVM read %.2f not slower than DRAM %.2f", r, nvm, dram)
		}
	}
	// The gap grows with transfer size (bandwidth asymmetry).
	first := cell(t, tb, 0, 3)
	last := cell(t, tb, len(tb.Rows)-1, 3)
	if last <= first {
		t.Errorf("NVM/DRAM read ratio shrank with size: %.2f -> %.2f", first, last)
	}
}

func TestShapeE2NVMWritesMuchSlower(t *testing.T) {
	tb := mustRun(t, "E2")
	last := len(tb.Rows) - 1
	if ratio := cell(t, tb, last, 3); ratio < 2 {
		t.Errorf("large NVM writes only %.2fx DRAM; want bandwidth-bound >2x", ratio)
	}
}

func TestShapeE3CacheTracksSkew(t *testing.T) {
	tb := mustRun(t, "E3")
	// Hit rate rises with skew.
	lo := cell(t, tb, 0, 4)
	hi := cell(t, tb, len(tb.Rows)-1, 4)
	if hi <= lo {
		t.Errorf("hit rate did not rise with skew: %.1f%% -> %.1f%%", lo, hi)
	}
	// At the highest skew Gengar reads are at least as fast as NVM-Direct.
	last := len(tb.Rows) - 1
	if g, d := cell(t, tb, last, 1), cell(t, tb, last, 2); g > d*1.02 {
		t.Errorf("high-skew Gengar read %.2fus slower than direct %.2fus", g, d)
	}
}

func TestShapeE4ProxyBeatsDirectWrites(t *testing.T) {
	tb := mustRun(t, "E4")
	for r := range tb.Rows {
		g, d := cell(t, tb, r, 1), cell(t, tb, r, 2)
		if g >= d {
			t.Errorf("row %d: proxied write %.2fus not faster than direct %.2fus", r, g, d)
		}
	}
	// At 4 KiB the proxy should win by a wide margin (amplified media
	// write + persistence fence vs DRAM staging).
	last := len(tb.Rows) - 1
	if g, d := cell(t, tb, last, 1), cell(t, tb, last, 2); d < 1.3*g {
		t.Errorf("4KiB direct %.2fus not >1.3x proxied %.2fus", d, g)
	}
}

func TestShapeE5ThroughputScales(t *testing.T) {
	tb := mustRun(t, "E5")
	first := cell(t, tb, 0, 1)
	last := cell(t, tb, len(tb.Rows)-1, 1)
	if last < 2*first {
		t.Errorf("Gengar did not scale with clients: %.1f -> %.1f kops", first, last)
	}
}

func TestShapeE6ProxySpeedsUpdates(t *testing.T) {
	tb := mustRun(t, "E6")
	if sp := cell(t, tb, 0, 3); sp < 1.5 {
		t.Errorf("single-client update speedup %.2fx < 1.5x", sp)
	}
}

func TestShapeE7GengarWinsMixedWorkloads(t *testing.T) {
	tb := mustRun(t, "E7")
	byName := map[string][]string{}
	for _, row := range tb.Rows {
		byName[row[0]] = row
	}
	parse := func(w string, col int) float64 {
		row := byName[w]
		if row == nil {
			t.Fatalf("workload %s missing", w)
		}
		v, err := strconv.ParseFloat(strings.TrimRight(row[col], "%x"), 64)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	// Write-heavy workloads gain substantially over the NVM-direct DSHM.
	if imp := parse("A", 4); imp < 10 {
		t.Errorf("YCSB-A improvement %.1f%% < 10%%", imp)
	}
	if imp := parse("F", 4); imp < 10 {
		t.Errorf("YCSB-F improvement %.1f%% < 10%%", imp)
	}
	// DRAM-Pool remains the upper bound for read-dominated workloads.
	// (On write-heavy mixes Gengar may edge past it: a staged-write ACK
	// is a weaker durability point than the baseline's synchronous
	// store, so the comparison is not bound-shaped there.)
	for _, w := range []string{"B", "C"} {
		if g, d := parse(w, 1), parse(w, 3); g > d*1.05 {
			t.Errorf("workload %s: Gengar %.1f above DRAM-Pool bound %.1f", w, g, d)
		}
	}
}

func TestShapeE8HitRateRisesWithBuffer(t *testing.T) {
	tb := mustRun(t, "E8")
	first := cell(t, tb, 0, 1)
	last := cell(t, tb, len(tb.Rows)-1, 1)
	if last <= first {
		t.Errorf("hit rate flat across buffer sizes: %.1f%% -> %.1f%%", first, last)
	}
}

func TestShapeE10LockSerializesSharers(t *testing.T) {
	tb := mustRun(t, "E10")
	last := len(tb.Rows) - 1
	shared := cell(t, tb, last, 1)
	private := cell(t, tb, last, 2)
	if private < 1.5*shared {
		t.Errorf("private %.1f kops not well above shared %.1f at max sharers", private, shared)
	}
	// Private scales with the population.
	if p0 := cell(t, tb, 0, 2); private < 2*p0 {
		t.Errorf("private throughput did not scale: %.1f -> %.1f", p0, private)
	}
}

func TestShapeE11GengarFasterJobs(t *testing.T) {
	// Quick-scale MapReduce jobs complete in tens of simulated µs, so
	// flusher-goroutine scheduling alone swings the Gengar/NVM-Direct
	// ratio by more than the margin this shape asserts — a single run
	// crosses 1.0x every few attempts on a loaded host (seed-era flake).
	// Assert the median of three runs instead: the winner must be
	// systematic, not a scheduling accident. (Three, not more: the race
	// detector's memory pressure grows across back-to-back sims in one
	// process, biasing later runs against the flusher-heavy configs.)
	const runs = 3
	tables := make([]*Table, runs)
	for i := range tables {
		tables[i] = mustRun(t, "E11")
	}
	median := func(r, c int) float64 {
		vals := make([]float64, runs)
		for i, tb := range tables {
			vals[i] = cell(t, tb, r, c)
		}
		sort.Float64s(vals)
		return vals[runs/2]
	}
	for r, row := range tables[0].Rows {
		if sp := median(r, 4); sp < 1.0 {
			t.Errorf("%s: Gengar slower than NVM-Direct (median %.2fx)", row[0], sp)
		}
		g, d := median(r, 1), median(r, 3)
		if g < d*0.9 {
			t.Errorf("%s: Gengar %.2fms beats the DRAM-Pool bound %.2fms", row[0], g, d)
		}
	}
}

func TestShapeE12ProxyCarriesWriteLatency(t *testing.T) {
	tb := mustRun(t, "E12")
	byName := map[string][]string{}
	for _, row := range tb.Rows {
		byName[row[0]] = row
	}
	upd := func(v string) float64 {
		f, err := strconv.ParseFloat(byName[v][4], 64)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	// Removing the proxy must blow up update latency; the cache alone
	// cannot compensate.
	if upd("-proxy") < 2*upd("Gengar") {
		t.Errorf("-proxy update latency %.2f not >2x Gengar %.2f", upd("-proxy"), upd("Gengar"))
	}
	if upd("neither") < 1.5*upd("Gengar") {
		t.Errorf("neither update latency %.2f not >1.5x Gengar %.2f", upd("neither"), upd("Gengar"))
	}
}

func TestShapeE13CachePlacementCrossover(t *testing.T) {
	tb := mustRun(t, "E13")
	// Small objects: Gengar at least matches the client cache (no
	// validation round trip on its hits).
	if g, cc := cell(t, tb, 0, 1), cell(t, tb, 0, 2); g > cc*1.05 {
		t.Errorf("small objects: Gengar %.2fus worse than client cache %.2fus", g, cc)
	}
	// Large objects: the client cache wins (hits move no data).
	last := len(tb.Rows) - 1
	if g, cc := cell(t, tb, last, 1), cell(t, tb, last, 2); cc > g {
		t.Errorf("large objects: client cache %.2fus not faster than Gengar %.2fus", cc, g)
	}
	// Both beat the uncached pool at the largest size.
	if d, g := cell(t, tb, last, 3), cell(t, tb, last, 1); d < g {
		t.Errorf("NVM-direct %.2fus beats Gengar %.2fus on large hot objects", d, g)
	}
}

func TestShapeE14AsymmetryDrivesValue(t *testing.T) {
	tb := mustRun(t, "E14")
	first := cell(t, tb, 0, 4)             // fastest NVM
	last := cell(t, tb, len(tb.Rows)-1, 4) // slowest NVM
	if last <= first {
		t.Errorf("improvement did not grow with NVM degradation: %.1f%% -> %.1f%%", first, last)
	}
	for r := range tb.Rows {
		if imp := cell(t, tb, r, 4); imp <= 0 {
			t.Errorf("row %d: Gengar lost to direct (%.1f%%)", r, imp)
		}
	}
}

func TestShapeE15BatchingSpeedsScans(t *testing.T) {
	tb := mustRun(t, "E15")
	prev := 0.0
	for r := range tb.Rows {
		sp := cell(t, tb, r, 3)
		if sp < 1.3 {
			t.Errorf("row %d: batching speedup only %.2fx", r, sp)
		}
		if sp < prev*0.8 {
			t.Errorf("row %d: speedup regressed sharply (%.2fx after %.2fx)", r, sp, prev)
		}
		prev = sp
	}
	// At the longest scan the win is large.
	if sp := cell(t, tb, len(tb.Rows)-1, 3); sp < 3 {
		t.Errorf("32-record scan speedup only %.2fx", sp)
	}
}

func TestShapeE16BatchingSpeedsWrites(t *testing.T) {
	tb := mustRun(t, "E16")
	if len(tb.Rows) != 10 {
		t.Fatalf("E16 has %d rows, want 2 systems x 5 batch lengths", len(tb.Rows))
	}
	sawK16 := 0
	for r, row := range tb.Rows {
		sp := cell(t, tb, r, 4)
		if sp <= 1 {
			t.Errorf("row %d (%s k=%s): batching speedup only %.2fx", r, row[0], row[1], sp)
		}
		// The headline claim: at a 16-record burst, batched writes are at
		// least 2x cheaper per op on BOTH the proxied and direct paths.
		if row[1] == "16" {
			sawK16++
			if sp < 2 {
				t.Errorf("%s k=16: batched writes only %.2fx cheaper, want >=2x", row[0], sp)
			}
		}
	}
	if sawK16 != 2 {
		t.Fatalf("found %d k=16 rows, want 2", sawK16)
	}
	if tb.Telemetry == nil {
		t.Fatal("E16 table missing telemetry snapshot")
	}
}

// e18Cell finds E18's (scenario, stage) row and returns one numeric
// column from it.
func e18Cell(t *testing.T, tb *Table, scenario, stage string, col int) float64 {
	t.Helper()
	for r, row := range tb.Rows {
		if row[0] == scenario && row[2] == stage {
			return cell(t, tb, r, col)
		}
	}
	t.Fatalf("E18 has no (%s, %s) row in %v", scenario, stage, tb.Rows)
	return 0
}

func TestShapeE18LatencyAnatomy(t *testing.T) {
	tb := mustRun(t, "E18")
	const p50, p99 = 4, 5
	// Reads served from the promoted DRAM copy beat reads paying the NVM
	// pool, within the same traced run.
	hit := e18Cell(t, tb, "cache_hit_read", "cacheHit", p50)
	miss := e18Cell(t, tb, "cache_hit_read", "nvmCopy", p50)
	if hit >= miss {
		t.Errorf("cacheHit p50 %.2fus >= nvmCopy p50 %.2fus", hit, miss)
	}
	// The proxy decouples the client-visible write from persistence: the
	// whole client-observed write is ring admission (no flush wait in the
	// total), while the flush-persist lag is attributed asynchronously by
	// the flusher hook. The lag's magnitude depends on flusher backlog
	// (wall-clock scheduling), so only the decoupling itself is asserted.
	ring := e18Cell(t, tb, "staged_write", "ringStage", p50)
	total := e18Cell(t, tb, "staged_write", "total", p50)
	if ring < 0.8*total {
		t.Errorf("ringStage p50 %.2fus < 80%% of write total p50 %.2fus — client-visible write should be ring admission", ring, total)
	}
	if n := e18Cell(t, tb, "staged_write", "flushPersist", 3); n <= 0 {
		t.Errorf("no flushPersist observations — flusher hook not attributing async persists")
	}
	// Flusher interference shows up in the read tail: the same NVM read
	// path gets slower at p99 when staged bursts drain concurrently.
	quiet := e18Cell(t, tb, "nvm_read", "nvmCopy", p99)
	loaded := e18Cell(t, tb, "flush_interfered_read", "nvmCopy", p99)
	if loaded < 1.5*quiet {
		t.Errorf("interfered nvmCopy p99 %.2fus < 1.5x quiet %.2fus — flush interference invisible", loaded, quiet)
	}
	if tb.Telemetry == nil {
		t.Fatal("E18 table missing telemetry snapshot")
	}
}

func TestShapeE21AdaptiveFlushingProtectsReads(t *testing.T) {
	tb := mustRun(t, "E21")
	const (
		quiet, greedy, adaptive           = 0, 1, 2
		readerP99, lagMax, flushed, wrcol = 3, 7, 9, 10
	)
	// The aggressor's bursts must actually interfere: greedy inflates the
	// reader's p99 well past the unloaded run.
	q, g, a := cell(t, tb, quiet, readerP99), cell(t, tb, greedy, readerP99), cell(t, tb, adaptive, readerP99)
	if g < 2*q {
		t.Errorf("greedy reader p99 %.2fus < 2x quiet %.2fus — aggressor invisible", g, q)
	}
	// The acceptance shape: adaptive pacing recovers >=2x of that tail...
	if a*2 > g {
		t.Errorf("adaptive reader p99 %.2fus not >=2x better than greedy %.2fus", a, g)
	}
	// ...at equal eventual flush throughput (both systems drain every
	// staged record before reporting).
	gf, af := cell(t, tb, greedy, flushed), cell(t, tb, adaptive, flushed)
	if gf != af || gf == 0 {
		t.Errorf("flushed counts differ (greedy %.0f, adaptive %.0f) — systems not comparable", gf, af)
	}
	// The bounded cost: adaptive flush lag rides -flush-max-lag (plus one
	// gated batch), never runs away.
	maxLagUS := float64(e21MaxLag.Microseconds())
	if lag := cell(t, tb, adaptive, lagMax); lag > 2*maxLagUS {
		t.Errorf("adaptive flush lag max %.0fus exceeds 2x the %0.fus bound", lag, maxLagUS)
	}
	// Overwrite-heavy bursts make the coalescer visible: merge ratio > 1
	// on both loaded systems.
	for _, r := range []int{greedy, adaptive} {
		fl, wr := cell(t, tb, r, flushed), cell(t, tb, r, wrcol)
		if wr <= 0 || fl/wr <= 1 {
			t.Errorf("row %d merge ratio %.2f (flushed %.0f / writes %.0f) not > 1", r, fl/wr, fl, wr)
		}
	}
	if tb.Telemetry == nil {
		t.Fatal("E21 table missing telemetry snapshot")
	}
}
