package bench

import (
	"strings"
	"testing"
	"time"
)

func TestTableRendering(t *testing.T) {
	tb := &Table{ID: "T1", Title: "demo", Columns: []string{"a", "bb"}}
	tb.AddRow("1", "2")
	tb.AddRow("333", "4")
	tb.Note("note %d", 7)
	s := tb.String()
	for _, want := range []string{"T1 — demo", "a", "bb", "333", "# note 7"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q in:\n%s", want, s)
		}
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "a,bb\n1,2\n") {
		t.Errorf("CSV = %q", csv)
	}
	if strings.Contains(csv, "note") {
		t.Error("CSV contains notes")
	}
}

func TestFormatters(t *testing.T) {
	if us(1500*time.Nanosecond) != "1.50" {
		t.Errorf("us = %q", us(1500*time.Nanosecond))
	}
	if kops(2500) != "2.5" {
		t.Errorf("kops = %q", kops(2500))
	}
	if pct(0.125) != "12.5%" {
		t.Errorf("pct = %q", pct(0.125))
	}
	if speedup(2, 3) != "1.50x" {
		t.Errorf("speedup = %q", speedup(2, 3))
	}
	if speedup(0, 3) != "n/a" {
		t.Errorf("speedup(0,·) = %q", speedup(0, 3))
	}
}

func TestPow2Floor(t *testing.T) {
	cases := map[int64]int64{0: 64, 63: 64, 64: 64, 65: 64, 128: 128, 1000: 512}
	for in, want := range cases {
		if got := pow2Floor(in); got != want {
			t.Errorf("pow2Floor(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := Run("E99", Quick()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	exps := Experiments()
	if len(exps) != 18 {
		t.Fatalf("%d experiments registered, want 18", len(exps))
	}
	seen := make(map[string]bool)
	for _, e := range exps {
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil {
			t.Fatalf("%s has nil runner", e.ID)
		}
	}
}

// TestAllExperimentsQuick executes every experiment at Quick scale and
// sanity-checks the output tables. This is the harness's own integration
// test; shape assertions live in the root bench suite.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are not short")
	}
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			tb, err := e.Run(Quick())
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if tb.ID != e.ID {
				t.Errorf("table ID %q != %q", tb.ID, e.ID)
			}
			if len(tb.Rows) == 0 || len(tb.Columns) == 0 {
				t.Fatalf("%s produced an empty table", e.ID)
			}
			for i, row := range tb.Rows {
				if len(row) != len(tb.Columns) {
					t.Errorf("%s row %d has %d cells, want %d", e.ID, i, len(row), len(tb.Columns))
				}
			}
		})
	}
}
