package bench

import (
	"fmt"
	"time"

	"gengar/internal/config"
	"gengar/internal/hmem"
	"gengar/internal/rdma"
	"gengar/internal/simnet"
)

// microSizes are the transfer sizes swept in the motivation
// microbenchmarks.
var microSizes = []int{64, 256, 1024, 4096, 16384, 65536}

// microPair builds a minimal client/server fabric with one registered
// device of the given profile and returns the client QP and region.
func microPair(profile hmem.MediaProfile) (*rdma.QP, rdma.RemoteAddr, error) {
	f, err := rdma.NewFabric(config.Default().Network)
	if err != nil {
		return nil, rdma.RemoteAddr{}, err
	}
	cn, err := f.AddNode("client")
	if err != nil {
		return nil, rdma.RemoteAddr{}, err
	}
	sn, err := f.AddNode("server")
	if err != nil {
		return nil, rdma.RemoteAddr{}, err
	}
	dev, err := hmem.NewDevice("mem", 1<<20, profile)
	if err != nil {
		return nil, rdma.RemoteAddr{}, err
	}
	mr, err := sn.RegisterMR(dev, 0, dev.Size(), rdma.AccessAll)
	if err != nil {
		return nil, rdma.RemoteAddr{}, err
	}
	cq, sq := cn.NewQP(), sn.NewQP()
	if err := cq.Connect(sq); err != nil {
		return nil, rdma.RemoteAddr{}, err
	}
	return cq, rdma.RemoteAddr{Region: mr.Handle()}, nil
}

// E01ReadLatency is the motivation figure: one-sided remote read latency
// against NVM vs DRAM as a function of transfer size.
func E01ReadLatency(Scale) (*Table, error) {
	t := &Table{
		ID:      "E1",
		Title:   "Remote read latency vs transfer size (one-sided READ, unloaded)",
		Columns: []string{"size_B", "NVM_us", "DRAM_us", "NVM/DRAM"},
	}
	for _, size := range microSizes {
		nvm, err := microRead(hmem.OptaneProfile(), size)
		if err != nil {
			return nil, err
		}
		dram, err := microRead(hmem.DRAMProfile(), size)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", size), us(nvm), us(dram),
			fmt.Sprintf("%.2f", float64(nvm)/float64(dram)))
	}
	t.Note("shape: NVM > DRAM at every size; gap grows with size (NVM random-read BW 2.4 vs 38 GB/s)")
	return t, nil
}

// E02WriteLatency is the second motivation figure: remote durable write
// latency against NVM vs DRAM — the bottleneck the proxy removes.
func E02WriteLatency(Scale) (*Table, error) {
	t := &Table{
		ID:      "E2",
		Title:   "Remote write+persist latency vs transfer size (one-sided WRITE, unloaded)",
		Columns: []string{"size_B", "NVM_us", "DRAM_us", "NVM/DRAM"},
	}
	for _, size := range microSizes {
		nvm, err := microWrite(hmem.OptaneProfile(), size)
		if err != nil {
			return nil, err
		}
		dram, err := microWrite(hmem.DRAMProfile(), size)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", size), us(nvm), us(dram),
			fmt.Sprintf("%.2f", float64(nvm)/float64(dram)))
	}
	t.Note("shape: small NVM writes pay 256B write amplification; large ones are 2 GB/s bound")
	return t, nil
}

func microRead(p hmem.MediaProfile, size int) (time.Duration, error) {
	qp, raddr, err := microPair(p)
	if err != nil {
		return 0, err
	}
	const iters = 16
	buf := make([]byte, size)
	var now simnet.Time
	var total time.Duration
	for i := 0; i < iters; i++ {
		end, err := qp.Read(now, buf, raddr)
		if err != nil {
			return 0, err
		}
		total += end.Sub(now)
		now = end
	}
	return total / iters, nil
}

func microWrite(p hmem.MediaProfile, size int) (time.Duration, error) {
	qp, raddr, err := microPair(p)
	if err != nil {
		return 0, err
	}
	const iters = 16
	buf := make([]byte, size)
	var now simnet.Time
	var total time.Duration
	for i := 0; i < iters; i++ {
		end, err := qp.Write(now, buf, raddr)
		if err != nil {
			return 0, err
		}
		total += end.Sub(now)
		now = end
	}
	return total / iters, nil
}
