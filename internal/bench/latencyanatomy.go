package bench

import (
	"fmt"
	"math/rand"
	"strconv"
	"time"

	"gengar/internal/config"
	"gengar/internal/core"
	"gengar/internal/metrics"
	"gengar/internal/region"
	"gengar/internal/server"
	"gengar/internal/telemetry/span"
)

// E18LatencyAnatomy: the observability experiment — where does an
// operation's time go? Each scenario drives one serving path with the
// tracer sampling every op, then reports the per-stage latency cells
// (internal/telemetry/span) next to the client-observed end-to-end
// digest. Four scenarios separate the paths the paper's latency claims
// rest on: reads served from the promoted DRAM copy, reads paying the
// NVM pool, writes absorbed by the staging ring (with the asynchronous
// flush-persist lag the client never waits for), and reads whose tail
// inflates because the flusher is draining staged bursts into the same
// pool device.
func E18LatencyAnatomy(s Scale) (*Table, error) {
	t := &Table{
		ID:      "E18",
		Title:   "Latency anatomy: per-stage attribution across serving paths",
		Columns: []string{"scenario", "op", "stage", "count", "p50_us", "p99_us", "max_us"},
	}
	if err := e18CacheHitRead(t, s); err != nil {
		return nil, fmt.Errorf("E18 cache_hit_read: %w", err)
	}
	if err := e18NVMRead(t, s, false); err != nil {
		return nil, fmt.Errorf("E18 nvm_read: %w", err)
	}
	if err := e18StagedWrite(t, s); err != nil {
		return nil, fmt.Errorf("E18 staged_write: %w", err)
	}
	if err := e18NVMRead(t, s, true); err != nil {
		return nil, fmt.Errorf("E18 flush_interfered_read: %w", err)
	}
	t.Note("shape: cacheHit p50 < nvmCopy p50; staged-write ringStage p50 << flushPersist p50 " +
		"(the client returns at ring admission, persistence is asynchronous); " +
		"flush-interfered nvmCopy p99 > quiet nvmCopy p99")
	return t, nil
}

// e18Emit appends one scenario's rows: the client-observed end-to-end
// digest ("total") plus every traced stage cell the scenario's op
// exercised.
func e18Emit(t *Table, scenario, op string, total metrics.Summary, sums []span.StageSummary) {
	t.AddRow(scenario, op, "total", strconv.FormatInt(total.Count, 10),
		us(total.P50), us(total.P99), us(total.Max))
	for _, ss := range sums {
		if ss.Op != op || ss.Summary.Count == 0 {
			continue
		}
		t.AddRow(scenario, op, ss.Stage, strconv.FormatInt(ss.Summary.Count, 10),
			us(ss.Summary.P50), us(ss.Summary.P99), us(ss.Summary.Max))
	}
}

// e18Quiesce drains flushers and refreshes the client's remap view so a
// warm-up's promotions are visible before measurement.
func e18Quiesce(cl *server.Cluster, client *core.Client) error {
	for pass := 0; pass < 2; pass++ {
		for _, srv := range cl.Registry().Servers() {
			if err := srv.Engine().Barrier(); err != nil {
				return err
			}
		}
		if err := client.SyncAllViews(); err != nil {
			return err
		}
	}
	return nil
}

// e18CacheHitRead measures reads against full Gengar after the warm-up
// promoted the zipfian hot set: most measured reads are served from the
// DRAM copy and attribute to the cacheHit stage, with the residual cold
// tail visible as nvmCopy.
func e18CacheHitRead(t *Table, s Scale) error {
	cfg := baseConfig(s, 0.125)
	// Single-client rows advance simulated time slowly; a tighter plan
	// period lets warm-up promotions land (same tuning as E13).
	cfg.Hotness.PlanEvery = 50 * time.Microsecond
	objects := e13Objects(s, s.RecordSize)
	cfg.DRAMBufferBytes = pow2Floor(int64(objects) * int64(s.RecordSize) / 8)
	if cfg.DRAMBufferBytes < 1<<15 {
		cfg.DRAMBufferBytes = 1 << 15
	}
	cl, err := server.NewCluster(cfg)
	if err != nil {
		return err
	}
	defer cl.Close()
	client, err := core.Connect(cl, "reader")
	if err != nil {
		return err
	}
	defer client.Close()

	addrs, err := e13Load(client, objects, s.RecordSize)
	if err != nil {
		return err
	}
	// Warm untraced (sampling is off until measurement) so promotions
	// land without polluting the stage histograms.
	if err := e13ReadLoop(nil, client, addrs, s.RecordSize, s.OpsPerClient, 1801); err != nil {
		return err
	}
	if err := e18Quiesce(cl, client); err != nil {
		return err
	}

	cl.Tracer().SetSampleEvery(1)
	var hist metrics.Histogram
	if err := e13ReadLoop(&hist, client, addrs, s.RecordSize, s.OpsPerClient, 1802); err != nil {
		return err
	}
	e18Emit(t, "cache_hit_read", "read", hist.Summarize(), cl.Tracer().StageSummaries())
	return nil
}

// e18NVMRead measures reads that always pay the NVM pool (cache off).
// With interfere set, the same client also stages write bursts through
// the proxy ring between reads, so the flusher drains into the pool
// device concurrently with the measured reads — the read path is
// unchanged, only the device contention differs from the quiet run.
func e18NVMRead(t *Table, s Scale, interfere bool) error {
	cfg := baseConfig(s, 0.125)
	cfg.Features = config.Features{Proxy: interfere}
	cl, err := server.NewCluster(cfg)
	if err != nil {
		return err
	}
	defer cl.Close()
	client, err := core.Connect(cl, "reader")
	if err != nil {
		return err
	}
	defer client.Close()

	objects := e13Objects(s, s.RecordSize)
	addrs, err := e13Load(client, objects, s.RecordSize)
	if err != nil {
		return err
	}
	// Disjoint burst window so interfering writes never overlap the
	// addresses the measured reads touch. The bursts are sized to keep
	// the NVM controllers' flush backlog comparable to the reader's
	// progress (32 XPLine-amplified 4 KiB records per measured read), so
	// reads genuinely queue behind flush writes.
	const burst, burstSize = 32, 4096
	burstAddrs := make([]region.GAddr, burst)
	burstBufs := make([][]byte, burst)
	for i := range burstAddrs {
		a, err := client.Malloc(burstSize)
		if err != nil {
			return err
		}
		burstAddrs[i] = a
		burstBufs[i] = make([]byte, burstSize)
		for j := range burstBufs[i] {
			burstBufs[i][j] = byte(i + j)
		}
	}
	if err := e13ReadLoop(nil, client, addrs, s.RecordSize, 32, 1803); err != nil {
		return err // warm scratch pools and sessions
	}

	cl.Tracer().SetSampleEvery(1)
	var hist metrics.Histogram
	rng := rand.New(rand.NewSource(1804))
	zipf := rand.NewZipf(rng, 1.1, 8, uint64(len(addrs)-1))
	buf := make([]byte, s.RecordSize)
	for i := 0; i < s.OpsPerClient; i++ {
		if interfere {
			// Keep the flusher's queue non-empty: a staged burst lands in
			// the ring just before each measured read and drains into the
			// pool behind it. The burst itself is not timed — only the
			// read that contends with its flush.
			if err := client.WriteMulti(burstAddrs, burstBufs); err != nil {
				return err
			}
		}
		a := addrs[zipf.Uint64()]
		before := client.Now()
		if err := client.Read(a, buf); err != nil {
			return err
		}
		hist.Record(client.Now().Sub(before))
	}
	scenario := "nvm_read"
	if interfere {
		scenario = "flush_interfered_read"
		// E18's attached telemetry snapshot comes from the interfered
		// run, whose counters show both the flush traffic and the reads.
		snap := cl.Telemetry().Snapshot()
		t.Telemetry = &snap
	}
	e18Emit(t, scenario, "read", hist.Summarize(), cl.Tracer().StageSummaries())
	return nil
}

// e18StagedWrite measures writes through the proxy ring on full Gengar.
// The client-visible write ends at ring admission (ringStage); the
// flush-persist lag of every staged record is observed asynchronously by
// the flusher hook and lands in the flushPersist cell, so the row pair
// shows the decoupling the proxy buys.
func e18StagedWrite(t *Table, s Scale) error {
	cfg := baseConfig(s, 0.125)
	cl, err := server.NewCluster(cfg)
	if err != nil {
		return err
	}
	defer cl.Close()
	client, err := core.Connect(cl, "writer")
	if err != nil {
		return err
	}
	defer client.Close()

	objects := e13Objects(s, s.RecordSize)
	addrs, err := e13Load(client, objects, s.RecordSize)
	if err != nil {
		return err
	}
	buf := make([]byte, s.RecordSize)
	for j := range buf {
		buf[j] = 0x5a
	}
	for i := 0; i < 32; i++ { // warm the ring session
		if err := client.Write(addrs[i%len(addrs)], buf); err != nil {
			return err
		}
	}

	cl.Tracer().SetSampleEvery(1)
	var hist metrics.Histogram
	for i := 0; i < s.OpsPerClient; i++ {
		a := addrs[i%len(addrs)]
		before := client.Now()
		if err := client.Write(a, buf); err != nil {
			return err
		}
		hist.Record(client.Now().Sub(before))
	}
	// Drain the flushers so every measured record's flushPersist lag has
	// been observed before the summaries are read.
	if err := e18Quiesce(cl, client); err != nil {
		return err
	}
	e18Emit(t, "staged_write", "write", hist.Summarize(), cl.Tracer().StageSummaries())
	return nil
}
