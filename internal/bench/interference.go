package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"strconv"
	"time"

	"gengar/internal/config"
	"gengar/internal/core"
	"gengar/internal/metrics"
	"gengar/internal/region"
	"gengar/internal/server"
)

// E21 workload geometry. The aggressor stages rounds of overwrite-heavy
// bursts: e21Targets distinct 4 KiB objects, each written e21Repeats
// times per burst (target-major, so every drained batch holds repeats
// for the coalescer to merge). One round is one burst staged
// concurrently with the reader's zipfian NVM reads; everything lands on
// a single server so the whole burst contends with every read on one
// pool controller.
const (
	e21Targets       = 64
	e21Repeats       = 8
	e21BurstSize     = 4096
	e21ReadsPerRound = 16

	// e21MaxLag is the adaptive run's flush-lag bound (the gengard
	// -flush-max-lag knob).
	e21MaxLag = 10 * time.Millisecond
)

// E21Interference: the adaptive-flushing experiment — an aggressor
// staging overwrite-heavy write bursts through the proxy ring while a
// latency-sensitive reader pays the same NVM pool. Greedy flushing
// drains every staged burst at full throttle, so the pool controller's
// write backlog inflates the reader's tail; the adaptive pacer watches
// that inflation, shrinks flush batches, and yields until the
// controller watermark falls back within the level's budget — trading
// bounded flush lag for reader latency. Both systems stage the same
// bursts and end with a drain barrier, so they compare at equal
// eventual flush throughput; the overwrite-heavy bursts also exercise
// the coalescer, visible as merge_ratio > 1.
func E21Interference(s Scale) (*Table, error) {
	t := &Table{
		ID:    "E21",
		Title: "Interference-aware flushing: aggressor writer vs latency-sensitive reader",
		Columns: []string{"system", "reads", "reader_p50_us", "reader_p99_us",
			"writer_ack_p50_us", "writer_ack_p99_us",
			"flush_lag_p99_us", "flush_lag_max_us",
			"merge_ratio", "flushed", "nvm_writes"},
	}
	if err := e21Run(t, s, "quiet", false, false); err != nil {
		return nil, fmt.Errorf("E21 quiet: %w", err)
	}
	if err := e21Run(t, s, "greedy", true, false); err != nil {
		return nil, fmt.Errorf("E21 greedy: %w", err)
	}
	if err := e21Run(t, s, "adaptive", true, true); err != nil {
		return nil, fmt.Errorf("E21 adaptive: %w", err)
	}
	t.Note("shape: with the aggressor running, adaptive reader p99 < greedy reader p99 "+
		"(target >=2x) at equal flushed counts; merge_ratio > 1 under the "+
		"overwrite-heavy bursts; adaptive flush lag stays within -flush-max-lag "+
		"(%v) plus one gated batch while greedy lag is bounded only by ring capacity", e21MaxLag)
	return t, nil
}

// e21Run drives one system: a reader paying the NVM pool (cache off)
// while an aggressor client stages bursts from its own goroutine. The
// reader never blocks on the writer — it keeps reading while a burst
// stages, which is the closed loop the pacer manages (foreground reads
// advance the frontier the gate waits on). Each round ends when the
// burst is fully staged and the reader has taken at least
// e21ReadsPerRound samples. Flush counters are reset after load and
// warm-up, so the reported totals cover exactly the measured rounds.
func e21Run(t *Table, s Scale, name string, aggress, adaptive bool) error {
	cfg := baseConfig(s, 0.125)
	cfg.Servers = 1 // one pool controller: every read contends with the flusher
	cfg.Features = config.Features{Proxy: true}
	cfg.Proxy.FlushAdaptive = adaptive
	cfg.Proxy.FlushMaxLag = e21MaxLag
	cl, err := server.NewCluster(cfg)
	if err != nil {
		return err
	}
	defer cl.Close()
	reader, err := core.Connect(cl, "e21-reader")
	if err != nil {
		return err
	}
	defer reader.Close()
	writer, err := core.Connect(cl, "e21-writer")
	if err != nil {
		return err
	}
	defer writer.Close()

	objects := e13Objects(s, s.RecordSize)
	addrs, err := e13Load(reader, objects, s.RecordSize)
	if err != nil {
		return err
	}
	burstAddrs := make([]region.GAddr, 0, e21Targets*e21Repeats)
	burstBufs := make([][]byte, 0, e21Targets*e21Repeats)
	for i := 0; i < e21Targets; i++ {
		a, err := writer.Malloc(e21BurstSize)
		if err != nil {
			return err
		}
		for r := 0; r < e21Repeats; r++ {
			buf := make([]byte, e21BurstSize)
			for j := range buf {
				buf[j] = byte(i + j + r)
			}
			burstAddrs = append(burstAddrs, a)
			burstBufs = append(burstBufs, buf)
		}
	}
	if err := e13ReadLoop(nil, reader, addrs, s.RecordSize, 32, 2101); err != nil {
		return err // warm scratch pools and sessions
	}
	if err := e18Quiesce(cl, reader); err != nil {
		return err
	}
	// Scope every flush counter (and the flush-lag histogram) to the
	// measured rounds: the loader's writes are not the workload.
	cl.Telemetry().Reset()

	rounds := s.OpsPerClient / e21ReadsPerRound
	if rounds < 6 {
		rounds = 6
	}
	var readHist, ackHist metrics.Histogram
	rng := rand.New(rand.NewSource(2102))
	zipf := rand.NewZipf(rng, 1.1, 8, uint64(len(addrs)-1))
	buf := make([]byte, s.RecordSize)
	for round := 0; round < rounds; round++ {
		staged := make(chan error, 1)
		if aggress {
			go func() {
				before := writer.Now()
				err := writer.WriteMulti(burstAddrs, burstBufs)
				if err == nil {
					ackHist.Record(writer.Now().Sub(before))
				}
				staged <- err
			}()
		} else {
			staged <- nil
		}
		// Read while the burst stages and drains; the round ends only
		// once the burst is fully staged, so a throttled flusher keeps
		// seeing foreground progress instead of a frozen frontier.
		burstDone := false
		for reads := 0; reads < e21ReadsPerRound || !burstDone; reads++ {
			if !burstDone {
				select {
				case err := <-staged:
					if err != nil {
						return err
					}
					burstDone = true
				default:
					// Share the CPU with the writer goroutine and the flush
					// workers: a reader spinning unyielded on a small machine
					// takes thousands of unloaded samples per burst and dilutes
					// the interfered reads out of its own p99.
					runtime.Gosched()
				}
			}
			a := addrs[zipf.Uint64()]
			before := reader.Now()
			if err := reader.Read(a, buf); err != nil {
				return err
			}
			readHist.Record(reader.Now().Sub(before))
		}
	}
	// Drain every flusher: both systems end having persisted every staged
	// record, so the comparison is at equal eventual flush throughput.
	if err := e18Quiesce(cl, reader); err != nil {
		return err
	}

	var flushed, writes int64
	// Flush lag is a per-server histogram; report the worst server's
	// quantiles — the bound must hold on every flusher.
	var lag metrics.Summary
	for _, srv := range cl.Registry().Servers() {
		st := srv.Stats().Proxy
		flushed += st.Flushed
		writes += st.NVMWrites
		if st.FlushLag.P99 > lag.P99 {
			lag.P99 = st.FlushLag.P99
		}
		if st.FlushLag.Max > lag.Max {
			lag.Max = st.FlushLag.Max
		}
	}
	merge := "n/a"
	if writes > 0 {
		merge = fmt.Sprintf("%.2f", float64(flushed)/float64(writes))
	}
	if adaptive {
		// The attached telemetry snapshot comes from the adaptive run: its
		// counters show the coalescer and pacer at work (nvm_writes,
		// coalesced records, gate waits, backoff level, flush bandwidth).
		snap := cl.Telemetry().Snapshot()
		t.Telemetry = &snap
	}
	reads, acks := readHist.Summarize(), ackHist.Summarize()
	t.AddRow(name, strconv.FormatInt(reads.Count, 10),
		us(reads.P50), us(reads.P99),
		us(acks.P50), us(acks.P99),
		us(lag.P99), us(lag.Max),
		merge, strconv.FormatInt(flushed, 10), strconv.FormatInt(writes, 10))
	return nil
}
