package bench

import (
	"fmt"
	"strconv"

	"gengar/internal/core"
	"gengar/internal/metrics"
	"gengar/internal/region"
	"gengar/internal/server"
)

// E16WriteBatching: the write side of the doorbell-batching study — a
// k-record burst posted as one chained work request per home server
// versus k dependent writes. On the proxied path the chain lands in
// consecutive staging-ring slots under one doorbell; on the direct path
// it additionally coalesces the per-record persist fences into one
// read-after-write per chain. This is the optimization behind the
// batched YCSB load phase and the MapReduce shuffle emit.
func E16WriteBatching(s Scale) (*Table, error) {
	t := &Table{
		ID:      "E16",
		Title:   "Write latency: doorbell-batched vs sequential writes",
		Columns: []string{"system", "batch_len", "sequential_us", "batched_us", "speedup"},
	}
	for _, system := range systems(s)[:2] { // Gengar (proxied), NVM-Direct
		cl, err := server.NewCluster(system.cfg)
		if err != nil {
			return nil, err
		}
		client, err := core.Connect(cl, "writer")
		if err != nil {
			cl.Close()
			return nil, err
		}

		const records = 256
		addrs, err := e13Load(client, records, s.RecordSize)
		if err != nil {
			client.Close()
			cl.Close()
			return nil, err
		}
		for _, k := range []int{2, 4, 8, 16, 32} {
			seq, bat, err := writePair(client, addrs, s.RecordSize, k, s.OpsPerClient/4+8)
			if err != nil {
				client.Close()
				cl.Close()
				return nil, fmt.Errorf("E16 %s k=%d: %w", system.name, k, err)
			}
			t.AddRow(system.name, strconv.Itoa(k),
				us(seq.Mean), us(bat.Mean), speedup(float64(bat.Mean), float64(seq.Mean)))
		}
		// The attached telemetry is the last system's (NVM-Direct), whose
		// coalesced-fence and write-through counters only the direct path
		// moves; both systems populate the batch-length histogram.
		snap := cl.Telemetry().Snapshot()
		t.Telemetry = &snap
		client.Close()
		cl.Close()
	}
	t.Note("shape: batched bursts approach one round trip + serialization per home server; " +
		"direct-path chains also pay one persist fence instead of k")
	return t, nil
}

// writePair measures one burst length both ways over rotating windows of
// the table.
func writePair(client *core.Client, addrs []region.GAddr, recordSize, k, iters int) (seq, bat metrics.Summary, err error) {
	var seqH, batH metrics.Histogram
	bufs := make([][]byte, k)
	for i := range bufs {
		bufs[i] = make([]byte, recordSize)
		for j := range bufs[i] {
			bufs[i][j] = byte(i + j)
		}
	}
	window := make([]region.GAddr, k)
	for it := 0; it < iters; it++ {
		base := (it * k) % (len(addrs) - k)
		copy(window, addrs[base:base+k])

		before := client.Now()
		for i := 0; i < k; i++ {
			if err := client.Write(window[i], bufs[i]); err != nil {
				return seq, bat, err
			}
		}
		seqH.Record(client.Now().Sub(before))

		before = client.Now()
		if err := client.WriteMulti(window, bufs); err != nil {
			return seq, bat, err
		}
		batH.Record(client.Now().Sub(before))
	}
	return seqH.Summarize(), batH.Summarize(), nil
}
