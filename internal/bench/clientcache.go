package bench

import (
	"fmt"
	"math/rand"
	"strconv"
	"time"

	"gengar/internal/baseline"
	"gengar/internal/config"
	"gengar/internal/core"
	"gengar/internal/metrics"
	"gengar/internal/region"
	"gengar/internal/server"
)

// E13ClientCache: the architectural ablation — where should the DRAM
// copy live? Gengar's server-side distributed buffers (shared,
// write-through-coherent, one full-data READ per hit) against GAM-style
// client-local caches (private, validation-coherent: one version-check
// round trip per hit, no data transfer). The crossover is object size:
// validation wins once the data transfer dominates the round trip.
func E13ClientCache(s Scale) (*Table, error) {
	t := &Table{
		ID:      "E13",
		Title:   "Server-side (Gengar) vs client-side (GAM-style) caching: read latency",
		Columns: []string{"obj_B", "Gengar_us", "ClientCache_us", "NVM-Direct_us", "Gengar_hit", "CC_hit"},
	}
	for _, objSize := range []int{256, 1024, 4096, 16384} {
		g, gHit, err := serverCacheRead(s, objSize)
		if err != nil {
			return nil, fmt.Errorf("E13 gengar %dB: %w", objSize, err)
		}
		cc, ccHit, err := clientCacheRead(s, objSize, true)
		if err != nil {
			return nil, fmt.Errorf("E13 client-cache %dB: %w", objSize, err)
		}
		direct, _, err := clientCacheRead(s, objSize, false)
		if err != nil {
			return nil, fmt.Errorf("E13 direct %dB: %w", objSize, err)
		}
		t.AddRow(strconv.Itoa(objSize), us(g.Mean), us(cc.Mean), us(direct.Mean),
			pct(gHit), pct(ccHit))
	}
	t.Note("shape: per-hit, validation beats data transfer as objects grow; but the server cache keeps write-through coherence for free and its sketch-driven hot set can out-select client LRU under load")
	return t, nil
}

// e13SizePool grows the NVM pool to hold the row's working set with
// headroom for allocator rounding.
func e13SizePool(cfg *config.Cluster, s Scale, objSize int) {
	need := int64(e13Objects(s, objSize)) * int64(objSize) * 4 / int64(cfg.Servers)
	for cfg.NVMBytes < need {
		cfg.NVMBytes *= 2
	}
}

// e13Objects sizes the working set: enough objects for a zipfian hot
// set, scaled down so large-object rows still fit the pool.
func e13Objects(s Scale, objSize int) int {
	n := s.Records
	for n*objSize > 8<<20 && n > 64 {
		n /= 2
	}
	return n
}

// serverCacheRead measures whole-object reads on full Gengar.
func serverCacheRead(s Scale, objSize int) (metrics.Summary, float64, error) {
	cfg := baseConfig(s, 0.125)
	e13SizePool(&cfg, s, objSize)
	// Single-client rows advance simulated time slowly; a tighter plan
	// period lets warm-up promotions land at every object size.
	cfg.Hotness.PlanEvery = 50 * time.Microsecond
	cfg.DRAMBufferBytes = pow2Floor(int64(e13Objects(s, objSize)) * int64(objSize) / 8)
	if cfg.DRAMBufferBytes < 1<<15 {
		cfg.DRAMBufferBytes = 1 << 15
	}
	cl, err := server.NewCluster(cfg)
	if err != nil {
		return metrics.Summary{}, 0, err
	}
	defer cl.Close()
	client, err := core.Connect(cl, "reader")
	if err != nil {
		return metrics.Summary{}, 0, err
	}
	defer client.Close()

	addrs, err := e13Load(client, e13Objects(s, objSize), objSize)
	if err != nil {
		return metrics.Summary{}, 0, err
	}
	warm := s.OpsPerClient / 2
	if err := e13ReadLoop(nil, client, addrs, objSize, warm, 101); err != nil {
		return metrics.Summary{}, 0, err
	}
	for _, srv := range cl.Registry().Servers() {
		if err := srv.Engine().Barrier(); err != nil {
			return metrics.Summary{}, 0, err
		}
	}
	if err := client.SyncAllViews(); err != nil {
		return metrics.Summary{}, 0, err
	}
	st0 := client.Stats()
	var hist metrics.Histogram
	if err := e13MeasuredLoop(&hist, func(a region.GAddr, buf []byte) error {
		return client.Read(a, buf)
	}, client, addrs, objSize, s.OpsPerClient, 102); err != nil {
		return metrics.Summary{}, 0, err
	}
	st1 := client.Stats()
	hit := metrics.Ratio(st1.CacheHits-st0.CacheHits,
		(st1.CacheHits-st0.CacheHits)+(st1.CacheMiss-st0.CacheMiss))
	return hist.Summarize(), hit, nil
}

// clientCacheRead measures whole-object reads through a private
// validation cache over the NVM-direct pool (or without any cache).
func clientCacheRead(s Scale, objSize int, withCache bool) (metrics.Summary, float64, error) {
	cfg := baseConfig(s, 0.125)
	e13SizePool(&cfg, s, objSize)
	cfg.Features = config.Features{}
	cl, err := server.NewCluster(cfg)
	if err != nil {
		return metrics.Summary{}, 0, err
	}
	defer cl.Close()
	client, err := core.Connect(cl, "reader")
	if err != nil {
		return metrics.Summary{}, 0, err
	}
	defer client.Close()

	objects := e13Objects(s, objSize)
	addrs, err := e13Load(client, objects, objSize)
	if err != nil {
		return metrics.Summary{}, 0, err
	}
	read := func(a region.GAddr, buf []byte) error { return client.Read(a, buf) }
	var cc *baseline.ClientCache
	if withCache {
		// Same capacity share as Gengar's buffers get in serverCacheRead.
		capacity := int64(objects) * int64(objSize) / 8
		if capacity < 1<<15 {
			capacity = 1 << 15
		}
		if cc, err = baseline.NewClientCache(client, capacity); err != nil {
			return metrics.Summary{}, 0, err
		}
		read = cc.Read
		if err := e13MeasuredLoop(nil, read, client, addrs, objSize, s.OpsPerClient/2, 101); err != nil {
			return metrics.Summary{}, 0, err // warm the private cache
		}
	}
	var hist metrics.Histogram
	if err := e13MeasuredLoop(&hist, read, client, addrs, objSize, s.OpsPerClient, 102); err != nil {
		return metrics.Summary{}, 0, err
	}
	var hit float64
	if cc != nil {
		st := cc.Stats()
		hit = metrics.Ratio(st.Hits, st.Hits+st.Misses)
	}
	return hist.Summarize(), hit, nil
}

func e13Load(client *core.Client, objects, objSize int) ([]region.GAddr, error) {
	addrs := make([]region.GAddr, objects)
	row := make([]byte, objSize)
	for i := range addrs {
		a, err := client.Malloc(int64(objSize))
		if err != nil {
			return nil, err
		}
		if err := client.Write(a, row); err != nil {
			return nil, err
		}
		addrs[i] = a
	}
	return addrs, client.Flush()
}

func e13ReadLoop(hist *metrics.Histogram, client *core.Client, addrs []region.GAddr, objSize, ops int, seed int64) error {
	return e13MeasuredLoop(hist, func(a region.GAddr, buf []byte) error {
		return client.Read(a, buf)
	}, client, addrs, objSize, ops, seed)
}

func e13MeasuredLoop(hist *metrics.Histogram, read func(region.GAddr, []byte) error, client *core.Client, addrs []region.GAddr, objSize, ops int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.1, 8, uint64(len(addrs)-1))
	buf := make([]byte, objSize)
	for i := 0; i < ops; i++ {
		a := addrs[zipf.Uint64()]
		before := client.Now()
		if err := read(a, buf); err != nil {
			return err
		}
		if hist != nil {
			hist.Record(client.Now().Sub(before))
		}
	}
	return nil
}
