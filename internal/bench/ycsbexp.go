package bench

import (
	"fmt"
	"strconv"
	"time"

	"gengar/internal/config"
	"gengar/internal/ycsb"
)

// E03SkewRead: mean read latency vs access skew for the three systems —
// the DRAM cache should close most of the NVM/DRAM gap once skew makes a
// small hot set dominate.
func E03SkewRead(s Scale) (*Table, error) {
	t := &Table{
		ID:      "E3",
		Title:   "Read latency vs zipfian skew (read-only, steady state)",
		Columns: []string{"theta", "Gengar_us", "NVM-Direct_us", "DRAM-Pool_us", "Gengar_hit"},
	}
	for _, theta := range []float64{0.5, 0.9, 0.99, 1.2} {
		w := ycsb.C()
		w.Theta = theta
		row := []string{fmt.Sprintf("%.2f", theta)}
		var hit float64
		for _, sy := range systems(s) {
			res, _, snap, err := ycsbRun(sy.cfg, w, s, s.Clients, 11)
			if err != nil {
				return nil, fmt.Errorf("E3 %s theta=%.2f: %w", sy.name, theta, err)
			}
			row = append(row, us(res.PerKind[ycsb.OpRead].Mean))
			if sy.name == "Gengar" {
				hit = res.HitRate
				t.Telemetry = &snap
			}
		}
		row = append(row, pct(hit))
		t.AddRow(row...)
	}
	t.Note("shape: Gengar tracks DRAM-Pool as skew grows; at low skew it tracks NVM-Direct")
	return t, nil
}

// E04ProxyWrite: client-visible write latency by size — proxied staging
// vs direct NVM vs the DRAM pool bound.
func E04ProxyWrite(s Scale) (*Table, error) {
	t := &Table{
		ID:      "E4",
		Title:   "Write latency vs size: proxy staging vs direct NVM",
		Columns: []string{"size_B", "Gengar_us", "NVM-Direct_us", "DRAM-Pool_us", "Gengar_p99_us"},
	}
	for _, size := range []int{256, 1024, 4096} {
		sz := s
		sz.RecordSize = size
		w := ycsb.Workload{Name: "update-only", UpdateProp: 1,
			Distribution: ycsb.DistUniform, RecordSize: size, UpdateBytes: size}
		row := []string{strconv.Itoa(size)}
		var p99 time.Duration
		for _, sy := range systems(sz) {
			res, _, snap, err := ycsbRun(sy.cfg, w, sz, 1, 13)
			if err != nil {
				return nil, fmt.Errorf("E4 %s size=%d: %w", sy.name, size, err)
			}
			sum := res.PerKind[ycsb.OpUpdate]
			row = append(row, us(sum.Mean))
			if sy.name == "Gengar" {
				p99 = sum.P99
				t.Telemetry = &snap
			}
		}
		row = append(row, us(p99))
		t.AddRow(row...)
	}
	t.Note("shape: Gengar write latency ~ DRAM-Pool (staging ring is DRAM); NVM-Direct pays media+amplification")
	return t, nil
}

// E05ClientScale: read-heavy throughput vs client count, Gengar vs the
// NVM-direct DSHM.
func E05ClientScale(s Scale) (*Table, error) {
	t := &Table{
		ID:      "E5",
		Title:   "Throughput vs clients (YCSB-B, zipf 0.99)",
		Columns: []string{"clients", "Gengar_kops", "NVM-Direct_kops", "speedup"},
	}
	sys := systems(s)
	for _, n := range clientSweep(s) {
		w := ycsb.B()
		g, _, snap, err := ycsbRun(sys[0].cfg, w, s, n, 17)
		if err != nil {
			return nil, fmt.Errorf("E5 gengar n=%d: %w", n, err)
		}
		t.Telemetry = &snap
		d, _, _, err := ycsbRun(sys[1].cfg, w, s, n, 17)
		if err != nil {
			return nil, fmt.Errorf("E5 direct n=%d: %w", n, err)
		}
		t.AddRow(strconv.Itoa(n), kops(g.Throughput), kops(d.Throughput),
			speedup(d.Throughput, g.Throughput))
	}
	t.Note("shape: gap widens with clients as NVM read bandwidth saturates while DRAM absorbs the hot set")
	return t, nil
}

// E06WriteScale: update-only throughput vs client count — the staging
// ring accelerates writes until the flusher's NVM bandwidth saturates
// (the backpressure knee).
func E06WriteScale(s Scale) (*Table, error) {
	t := &Table{
		ID:      "E6",
		Title:   "Throughput vs clients (update-only, uniform)",
		Columns: []string{"clients", "Gengar_kops", "NVM-Direct_kops", "speedup"},
	}
	w := ycsb.Workload{Name: "update-only", UpdateProp: 1,
		Distribution: ycsb.DistUniform, RecordSize: s.RecordSize}
	sys := systems(s)
	for _, n := range clientSweep(s) {
		g, _, snap, err := ycsbRun(sys[0].cfg, w, s, n, 19)
		if err != nil {
			return nil, fmt.Errorf("E6 gengar n=%d: %w", n, err)
		}
		t.Telemetry = &snap
		d, _, _, err := ycsbRun(sys[1].cfg, w, s, n, 19)
		if err != nil {
			return nil, fmt.Errorf("E6 direct n=%d: %w", n, err)
		}
		t.AddRow(strconv.Itoa(n), kops(g.Throughput), kops(d.Throughput),
			speedup(d.Throughput, g.Throughput))
	}
	t.Note("shape: large speedup at low client counts; converges toward NVM write bandwidth at the knee")
	return t, nil
}

// E07YCSB is the headline comparison: all six core workloads across the
// three systems.
func E07YCSB(s Scale) (*Table, error) {
	t := &Table{
		ID:      "E7",
		Title:   "YCSB A-F throughput (kops/simulated-second)",
		Columns: []string{"workload", "Gengar", "NVM-Direct", "DRAM-Pool", "Gengar_vs_Direct"},
	}
	var maxImp float64
	for _, w := range ycsb.Core() {
		row := []string{w.Name}
		var g, d float64
		for _, sy := range systems(s) {
			res, _, snap, err := ycsbRun(sy.cfg, w, s, s.Clients, 23)
			if err != nil {
				return nil, fmt.Errorf("E7 %s/%s: %w", w.Name, sy.name, err)
			}
			row = append(row, kops(res.Throughput))
			switch sy.name {
			case "Gengar":
				g = res.Throughput
				t.Telemetry = &snap
			case "NVM-Direct":
				d = res.Throughput
			}
		}
		imp := g/d - 1
		if imp > maxImp {
			maxImp = imp
		}
		row = append(row, pct(imp))
		t.AddRow(row...)
	}
	t.Note("paper claim: Gengar improves YCSB by up to ~70%% over NVM-exposing DSHM; measured max improvement %s", pct(maxImp))
	return t, nil
}

// E08BufferSize: cache-capacity sensitivity — hit rate and throughput as
// the DRAM buffer share of the dataset grows.
func E08BufferSize(s Scale) (*Table, error) {
	t := &Table{
		ID:      "E8",
		Title:   "Sensitivity to DRAM buffer size (YCSB-C, zipf 0.99)",
		Columns: []string{"buffer_frac", "hit_rate", "kops", "read_us"},
	}
	for _, frac := range []float64{0.02, 0.05, 0.125, 0.25, 0.5} {
		cfg := baseConfig(s, frac)
		res, _, snap, err := ycsbRun(cfg, ycsb.C(), s, s.Clients, 29)
		if err != nil {
			return nil, fmt.Errorf("E8 frac=%.2f: %w", frac, err)
		}
		t.Telemetry = &snap
		t.AddRow(fmt.Sprintf("%.3f", frac), pct(res.HitRate),
			kops(res.Throughput), us(res.PerKind[ycsb.OpRead].Mean))
	}
	t.Note("shape: hit rate and throughput rise steeply then flatten — zipfian hot set fits early")
	return t, nil
}

// E09Hotness: identification ablation — digest reporting period and
// sketch size.
func E09Hotness(s Scale) (*Table, error) {
	t := &Table{
		ID:      "E9",
		Title:   "Hotness identification ablation (YCSB-C, zipf 0.99)",
		Columns: []string{"digest_every", "sketch_k", "hit_rate", "kops", "digests"},
	}
	type point struct {
		every int
		k     int
	}
	points := []point{
		{32, 4096}, {128, 4096}, {512, 4096}, {2048, 4096},
		{128, 16}, {128, 256},
	}
	for _, p := range points {
		cfg := baseConfig(s, 0.125)
		cfg.Hotness.DigestEvery = p.every
		cfg.Hotness.SketchK = p.k
		res, stats, snap, err := ycsbRun(cfg, ycsb.C(), s, s.Clients, 31)
		if err != nil {
			return nil, fmt.Errorf("E9 every=%d k=%d: %w", p.every, p.k, err)
		}
		t.Telemetry = &snap
		var digests int64
		for _, st := range stats {
			digests += st.Digests
		}
		t.AddRow(strconv.Itoa(p.every), strconv.Itoa(p.k), pct(res.HitRate),
			kops(res.Throughput), strconv.FormatInt(digests, 10))
	}
	t.Note("shape: longer digest periods cost little hit rate (sketch persists); tiny sketches hurt")
	return t, nil
}

// E12Ablation: which mechanism buys what — full Gengar vs each mechanism
// alone vs neither, on the mixed workload.
func E12Ablation(s Scale) (*Table, error) {
	t := &Table{
		ID:      "E12",
		Title:   "Ablation (YCSB-A, zipf 0.99)",
		Columns: []string{"variant", "kops", "hit_rate", "read_us", "update_us"},
	}
	variants := []struct {
		name string
		f    config.Features
	}{
		{"Gengar", config.Features{Cache: true, Proxy: true}},
		{"-cache", config.Features{Cache: false, Proxy: true}},
		{"-proxy", config.Features{Cache: true, Proxy: false}},
		{"neither", config.Features{}},
	}
	for _, v := range variants {
		cfg := baseConfig(s, 0.125)
		cfg.Features = v.f
		res, _, snap, err := ycsbRun(cfg, ycsb.A(), s, s.Clients, 37)
		if err != nil {
			return nil, fmt.Errorf("E12 %s: %w", v.name, err)
		}
		if v.name == "Gengar" {
			t.Telemetry = &snap
		}
		t.AddRow(v.name, kops(res.Throughput), pct(res.HitRate),
			us(res.PerKind[ycsb.OpRead].Mean), us(res.PerKind[ycsb.OpUpdate].Mean))
	}
	t.Note("shape: proxy buys write latency, cache buys read latency; full Gengar wins the mix")
	return t, nil
}

// clientSweep returns the client counts swept by scaling experiments.
func clientSweep(s Scale) []int {
	if s.Clients <= 4 {
		return []int{1, 2, 4}
	}
	return []int{1, 2, 4, 8, 16, 32}
}
