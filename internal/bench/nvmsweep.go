package bench

import (
	"fmt"
	"time"

	"gengar/internal/ycsb"
)

// E14NVMSensitivity: forward-looking sensitivity — how much of Gengar's
// advantage survives as NVM technology changes? Sweeps the pool media's
// read latency and write bandwidth around the Optane operating point
// (faster next-generation parts above, denser/slower parts below) and
// reports the improvement over the NVM-direct baseline on the mixed
// workload.
func E14NVMSensitivity(s Scale) (*Table, error) {
	t := &Table{
		ID:      "E14",
		Title:   "Sensitivity to NVM technology (YCSB-A improvement over NVM-direct)",
		Columns: []string{"read_lat_ns", "write_GBps", "Gengar_kops", "Direct_kops", "improvement"},
	}
	type point struct {
		readLat time.Duration
		writeBW float64
	}
	points := []point{
		{150 * time.Nanosecond, 4.0}, // next-gen: faster reads, 2x write BW
		{300 * time.Nanosecond, 2.0}, // Optane DC PMM operating point
		{600 * time.Nanosecond, 1.0}, // denser/slower media
		{1200 * time.Nanosecond, 0.5},
	}
	for _, p := range points {
		gengar := baseConfig(s, 0.125)
		gengar.PoolMedia.ReadLatency = p.readLat
		gengar.PoolMedia.WriteBytesPerSec = p.writeBW * 1e9
		direct := gengar
		direct.Features = featuresOff()

		w := ycsb.A()
		g, _, snap, err := ycsbRun(gengar, w, s, s.Clients, 47)
		if err != nil {
			return nil, fmt.Errorf("E14 gengar lat=%v: %w", p.readLat, err)
		}
		t.Telemetry = &snap
		d, _, _, err := ycsbRun(direct, w, s, s.Clients, 47)
		if err != nil {
			return nil, fmt.Errorf("E14 direct lat=%v: %w", p.readLat, err)
		}
		t.AddRow(
			fmt.Sprintf("%d", p.readLat.Nanoseconds()),
			fmt.Sprintf("%.1f", p.writeBW),
			kops(g.Throughput), kops(d.Throughput),
			pct(g.Throughput/d.Throughput-1),
		)
	}
	t.Note("shape: improvement shrinks as NVM approaches DRAM and grows as it degrades — Gengar's value is proportional to the device asymmetry it hides")
	return t, nil
}
