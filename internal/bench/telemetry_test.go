package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gengar/internal/telemetry"
	"gengar/internal/ycsb"
)

// TestYCSBRunTelemetry checks the harness's telemetry contract: a bench
// run returns a deployment-wide snapshot with live counters and a
// nonzero flight-event count, and the snapshot round-trips through the
// JSON form gengar-bench writes next to each result CSV.
func TestYCSBRunTelemetry(t *testing.T) {
	s := Quick()
	cfg := baseConfig(s, 0.125)
	// Digest aggressively so promotions land during warm-up even at this
	// tiny scale; the assertion below depends on a warm cache.
	cfg.Hotness.DigestEvery = 16
	res, _, snap, err := ycsbRun(cfg, ycsb.A(), s, 2, 41)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("run executed no ops")
	}

	if reads := snap.Sum("gengar_client_reads_total"); reads == 0 {
		t.Error("snapshot has no client reads")
	}
	if hits := snap.Sum("gengar_client_cache_hits_total"); hits == 0 {
		t.Error("snapshot has no cache hits (warm-up should have promoted the hot set)")
	}
	if flushed := snap.Sum("gengar_proxy_flushed_total"); flushed == 0 {
		t.Error("snapshot has no proxy flushes")
	}
	if ev := snap.Sum("gengar_flight_events"); ev == 0 {
		t.Error("snapshot reports zero flight events")
	}
	if len(snap.Histograms) == 0 {
		t.Error("snapshot has no histograms")
	}

	// Write the snapshot next to a result file exactly as gengar-bench
	// does, then re-read it and confirm it parses back.
	dir := t.TempDir()
	tb := &Table{ID: "EX", Title: "telemetry test", Columns: []string{"kops"}}
	tb.AddRow(kops(res.Throughput))
	tb.Telemetry = &snap
	if err := os.WriteFile(filepath.Join(dir, "ex.csv"), []byte(tb.CSV()), 0o644); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := tb.Telemetry.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "ex.telemetry.json")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back telemetry.Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("snapshot JSON does not parse back: %v", err)
	}
	if back.Sum("gengar_client_reads_total") != snap.Sum("gengar_client_reads_total") {
		t.Error("reads counter lost in JSON round-trip")
	}
	if len(back.Histograms) != len(snap.Histograms) {
		t.Errorf("histograms lost in round-trip: %d != %d", len(back.Histograms), len(snap.Histograms))
	}
}

// TestYCSBRunSnapshotIsSteadyState: the harness resets the registry
// after warm-up, so the snapshot's op counts must match the measured
// run, not warm-up plus measurement.
func TestYCSBRunSnapshotIsSteadyState(t *testing.T) {
	s := Quick()
	cfg := baseConfig(s, 0.125)
	res, _, snap, err := ycsbRun(cfg, ycsb.C(), s, 2, 43)
	if err != nil {
		t.Fatal(err)
	}
	ops := snap.Sum("gengar_client_reads_total") + snap.Sum("gengar_client_writes_total")
	if ops != int64(res.Ops) {
		t.Errorf("snapshot ops %d != measured-run ops %d (warm-up leaked into snapshot?)", ops, res.Ops)
	}
}
