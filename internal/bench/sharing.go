package bench

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"gengar/internal/core"
	"gengar/internal/metrics"
	"gengar/internal/region"
	"gengar/internal/server"
	"gengar/internal/simnet"
)

// E10Sharing: multi-user consistency cost — throughput of locked
// read-modify-write critical sections as the number of users sharing one
// object grows, against the same population working on private objects.
func E10Sharing(s Scale) (*Table, error) {
	t := &Table{
		ID:      "E10",
		Title:   "Multi-user sharing: locked RMW throughput vs sharers",
		Columns: []string{"clients", "shared_kops", "private_kops", "lock_us_p99"},
	}
	for _, n := range sharerSweep(s) {
		shared, lockLat, err := sharingRun(s, n, true)
		if err != nil {
			return nil, fmt.Errorf("E10 shared n=%d: %w", n, err)
		}
		private, _, err := sharingRun(s, n, false)
		if err != nil {
			return nil, fmt.Errorf("E10 private n=%d: %w", n, err)
		}
		t.AddRow(strconv.Itoa(n), kops(shared), kops(private), us(lockLat.P99))
	}
	t.Note("shape: private scales with clients; shared serializes on the lock — consistency, not meltdown")
	return t, nil
}

// sharingRun measures locked RMW sections with n clients on one shared
// object (shared=true) or n private objects.
func sharingRun(s Scale, n int, shared bool) (throughput float64, lockLat metrics.Summary, err error) {
	cfg := baseConfig(s, 0.125)
	cl, err := server.NewCluster(cfg)
	if err != nil {
		return 0, lockLat, err
	}
	defer cl.Close()

	setup, err := core.Connect(cl, "setup")
	if err != nil {
		return 0, lockLat, err
	}
	defer setup.Close()

	objSize := int64(s.RecordSize)
	var sharedAddr region.GAddr
	if shared {
		if sharedAddr, err = setup.Malloc(objSize); err != nil {
			return 0, lockLat, err
		}
		if err = setup.Write(sharedAddr, make([]byte, objSize)); err != nil {
			return 0, lockLat, err
		}
	}

	if err := setup.Flush(); err != nil {
		return 0, lockLat, err
	}

	ops := s.OpsPerClient / 3
	if ops < 20 {
		ops = 20
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		minStart simnet.Time
		maxEnd   simnet.Time
		total    int64
		lockHist metrics.Histogram
	)
	type actor struct {
		c    *core.Client
		addr region.GAddr
		pace *simnet.GateHandle
	}
	var actors []actor
	gate := simnet.NewGate(20 * time.Microsecond)
	var startAt simnet.Time
	for i := 0; i < n; i++ {
		c, cerr := core.Connect(cl, fmt.Sprintf("sharer%d", i))
		if cerr != nil {
			return 0, lockLat, cerr
		}
		defer c.Close()
		addr := sharedAddr
		if !shared {
			// Spread private objects across home servers, as a real
			// allocator balancing per-user working sets would.
			home := uint16(i%cfg.Servers) + 1
			if addr, err = c.MallocOn(home, objSize); err != nil {
				return 0, lockLat, err
			}
			if err = c.Write(addr, make([]byte, objSize)); err != nil {
				return 0, lockLat, err
			}
		}
		c.AdvanceToFrontier()
		if now := c.Now(); now > startAt {
			startAt = now
		}
		actors = append(actors, actor{c: c, addr: addr})
	}
	for i := range actors {
		actors[i].c.AdvanceTo(startAt)
		actors[i].pace = gate.Join(startAt)
	}
	for i := range actors {
		wg.Add(1)
		go func(c *core.Client, addr region.GAddr, pace *simnet.GateHandle, first bool) {
			defer wg.Done()
			defer pace.Leave()
			buf := make([]byte, objSize)
			start := c.Now()
			for op := 0; op < ops; op++ {
				before := c.Now()
				pace.Advance(before)
				if err := c.LockExclusive(addr); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				lockHist.Record(c.Now().Sub(before))
				if err := c.Read(addr, buf); err == nil {
					buf[0]++
					_ = c.Write(addr, buf)
				}
				if err := c.UnlockExclusive(addr); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
			end := c.Now()
			mu.Lock()
			if first || start < minStart {
				minStart = start
			}
			if end > maxEnd {
				maxEnd = end
			}
			total += int64(ops)
			mu.Unlock()
		}(actors[i].c, actors[i].addr, actors[i].pace, i == 0)
	}
	wg.Wait()
	if firstErr != nil {
		return 0, lockLat, firstErr
	}
	dur := maxEnd.Sub(minStart)
	if dur > 0 {
		throughput = float64(total) / dur.Seconds()
	}
	return throughput, lockHist.Summarize(), nil
}

func sharerSweep(s Scale) []int {
	if s.Clients <= 4 {
		return []int{1, 2, 4}
	}
	return []int{1, 2, 4, 8, 16}
}
