package bench

import (
	"fmt"

	"gengar/internal/config"
	"gengar/internal/core"
	"gengar/internal/mapreduce"
	"gengar/internal/server"
)

// mrJob names one benchmark job.
type mrJob struct {
	name string
	mapf mapreduce.MapFunc
	redf mapreduce.ReduceFunc
	part mapreduce.Partitioner
}

func mrJobs() []mrJob {
	wcM, wcR := mapreduce.WordCount()
	grM, grR := mapreduce.Grep("w00")
	soM, soR := mapreduce.Sort()
	return []mrJob{
		{"WordCount", wcM, wcR, nil},
		{"Grep", grM, grR, nil},
		{"Sort", soM, soR, mapreduce.RangePartition},
	}
}

// E11MapReduce: job completion time for WordCount, Grep and Sort on each
// system — the application-level table.
func E11MapReduce(s Scale) (*Table, error) {
	t := &Table{
		ID:      "E11",
		Title:   "MapReduce job completion time (simulated ms)",
		Columns: []string{"job", "Gengar_ms", "NVM-Direct_ms", "DRAM-Pool_ms", "Direct/Gengar"},
	}
	for _, job := range mrJobs() {
		row := []string{job.name}
		var g, d float64
		for _, sy := range systems(s) {
			ms, err := mrRun(sy.cfg, s, job)
			if err != nil {
				return nil, fmt.Errorf("E11 %s/%s: %w", job.name, sy.name, err)
			}
			row = append(row, fmt.Sprintf("%.2f", ms))
			switch sy.name {
			case "Gengar":
				g = ms
			case "NVM-Direct":
				d = ms
			}
		}
		row = append(row, speedup(g, d)) // >1x means Gengar completes faster
		t.AddRow(row...)
	}
	t.Note("shape: Gengar between NVM-Direct and DRAM-Pool; shuffle writes gain from the proxy")
	return t, nil
}

// mrRun executes one job on a fresh cluster and returns the simulated
// job time in milliseconds.
func mrRun(cfg config.Cluster, s Scale, job mrJob) (float64, error) {
	cl, err := server.NewCluster(cfg)
	if err != nil {
		return 0, err
	}
	defer cl.Close()

	driver, err := core.Connect(cl, "driver")
	if err != nil {
		return 0, err
	}
	defer driver.Close()
	docs := mapreduce.Corpus(41, s.MRDocs, s.MRDocWords, 200)
	inputs, err := mapreduce.StoreInputs(driver, docs)
	if err != nil {
		return 0, err
	}

	const workersN = 4
	workers := make([]*core.Client, workersN)
	for i := range workers {
		w, err := core.Connect(cl, fmt.Sprintf("worker%d", i))
		if err != nil {
			return 0, err
		}
		defer w.Close()
		workers[i] = w
	}
	j, err := mapreduce.NewJob(mapreduce.Config{
		Mappers:     workersN,
		Reducers:    workersN / 2,
		Partitioner: job.part,
	}, workers, job.mapf, job.redf)
	if err != nil {
		return 0, err
	}
	_, stats, err := j.Run(inputs)
	if err != nil {
		return 0, err
	}
	return float64(stats.JobTime.Microseconds()) / 1e3, nil
}
