package bench

import (
	"fmt"
	"strconv"

	"gengar/internal/core"
	"gengar/internal/metrics"
	"gengar/internal/region"
	"gengar/internal/server"
)

// E15ScanBatching: the doorbell-batching study — a k-record scan posted
// as one chained work request per server versus k dependent round
// trips. This is the optimization behind YCSB-E's numbers and the
// reason real RDMA KV stores batch their range reads.
func E15ScanBatching(s Scale) (*Table, error) {
	t := &Table{
		ID:      "E15",
		Title:   "Scan latency: doorbell-batched vs sequential reads",
		Columns: []string{"scan_len", "sequential_us", "batched_us", "speedup"},
	}
	cfg := baseConfig(s, 0.125)
	cl, err := server.NewCluster(cfg)
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	client, err := core.Connect(cl, "scanner")
	if err != nil {
		return nil, err
	}
	defer client.Close()

	const records = 256
	addrs, err := e13Load(client, records, s.RecordSize)
	if err != nil {
		return nil, err
	}

	for _, k := range []int{2, 4, 8, 16, 32} {
		seq, bat, err := scanPair(client, addrs, s.RecordSize, k, s.OpsPerClient/4+8)
		if err != nil {
			return nil, fmt.Errorf("E15 k=%d: %w", k, err)
		}
		t.AddRow(strconv.Itoa(k), us(seq.Mean), us(bat.Mean), speedup(float64(bat.Mean), float64(seq.Mean)))
	}
	t.Note("shape: batched scans approach one round trip + serialization; sequential scans pay k dependent RTTs")
	return t, nil
}

// scanPair measures one scan length both ways over rotating windows of
// the table.
func scanPair(client *core.Client, addrs []region.GAddr, recordSize, k, iters int) (seq, bat metrics.Summary, err error) {
	var seqH, batH metrics.Histogram
	bufs := make([][]byte, k)
	for i := range bufs {
		bufs[i] = make([]byte, recordSize)
	}
	window := make([]region.GAddr, k)
	for it := 0; it < iters; it++ {
		base := (it * k) % (len(addrs) - k)
		copy(window, addrs[base:base+k])

		before := client.Now()
		for i := 0; i < k; i++ {
			if err := client.Read(window[i], bufs[i]); err != nil {
				return seq, bat, err
			}
		}
		seqH.Record(client.Now().Sub(before))

		before = client.Now()
		if err := client.ReadMulti(window, bufs); err != nil {
			return seq, bat, err
		}
		batH.Record(client.Now().Sub(before))
	}
	return seqH.Summarize(), batH.Summarize(), nil
}
