// Package bench is the experiment harness: one runner per table/figure
// of the evaluation (E1–E12 in DESIGN.md), each producing a Table whose
// rows are the series the paper plots. The same runners back the root
// bench_test.go benchmarks and the cmd/gengar-bench binary.
package bench

import (
	"fmt"
	"strings"
	"time"

	"gengar/internal/telemetry"
)

// Table is one experiment's output: a titled grid of cells plus
// free-form notes (the "shape" assertions EXPERIMENTS.md records).
// Telemetry, when set, is the deployment-wide metrics snapshot from the
// experiment's headline (full-Gengar) run, written alongside the CSV by
// cmd/gengar-bench.
type Table struct {
	ID        string
	Title     string
	Columns   []string
	Rows      [][]string
	Notes     []string
	Telemetry *telemetry.Snapshot
}

// AddRow appends a row; it must match the column count.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Note appends a formatted note line.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (no notes).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// us formats a duration in microseconds with two decimals.
func us(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Nanoseconds())/1e3)
}

// kops formats a throughput in thousands of ops per simulated second.
func kops(opsPerSec float64) string {
	return fmt.Sprintf("%.1f", opsPerSec/1e3)
}

// pct formats a ratio as a percentage.
func pct(r float64) string {
	return fmt.Sprintf("%.1f%%", 100*r)
}

// speedup formats b/a as a multiplier.
func speedup(a, b float64) string {
	if a <= 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2fx", b/a)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
