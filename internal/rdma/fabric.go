// Package rdma simulates an RDMA fabric at the verbs level: nodes with
// NICs, protection-domain-style memory registration, reliable-connected
// queue pairs, one-sided READ/WRITE/atomic operations and two-sided
// SEND/RECV messaging.
//
// The simulator preserves the structural properties Gengar's design
// arguments rest on: one-sided operations complete without any remote CPU
// involvement, small operations are round-trip dominated, payloads
// serialize on per-NIC transmit/receive engines, and remote memory
// accesses pay the target device's media cost (so NVM-backed regions are
// slower than DRAM-backed ones, especially for writes). All timing is in
// simulated nanoseconds (see package simnet); all data movement is real,
// so protocols built on top can be tested for byte-level correctness.
package rdma

import (
	"errors"
	"fmt"
	"sync"

	"gengar/internal/simnet"
)

// Sentinel errors returned by verb operations.
var (
	// ErrNodeExists is returned by AddNode for a duplicate node ID.
	ErrNodeExists = errors.New("rdma: node already exists")
	// ErrMRNotFound is returned when a remote key does not resolve to a
	// registered memory region on the target node.
	ErrMRNotFound = errors.New("rdma: memory region not found")
	// ErrAccessDenied is returned when an operation is not permitted by
	// the target region's access flags.
	ErrAccessDenied = errors.New("rdma: access denied")
	// ErrOutOfBounds is returned when an operation falls outside the
	// target region.
	ErrOutOfBounds = errors.New("rdma: access out of region bounds")
	// ErrNotConnected is returned when a queue pair has no peer.
	ErrNotConnected = errors.New("rdma: queue pair not connected")
	// ErrQPClosed is returned when operating on a closed queue pair.
	ErrQPClosed = errors.New("rdma: queue pair closed")
)

// Fabric is a set of nodes joined by a uniform full-bisection network
// with a single link cost model, the common shape of a rack-scale RDMA
// deployment. It also owns the global simulated clock shared by
// everything attached to it.
type Fabric struct {
	model simnet.LinkModel
	clock *simnet.Clock

	mu    sync.RWMutex
	nodes map[string]*Node
}

// NewFabric returns an empty fabric with the given link cost model.
func NewFabric(model simnet.LinkModel) (*Fabric, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	return &Fabric{
		model: model,
		clock: new(simnet.Clock),
		nodes: make(map[string]*Node),
	}, nil
}

// Clock returns the fabric-wide simulated clock frontier.
func (f *Fabric) Clock() *simnet.Clock { return f.clock }

// Model returns the fabric's link cost model.
func (f *Fabric) Model() simnet.LinkModel { return f.model }

// AddNode creates a node (one NIC) with the given unique ID.
func (f *Fabric) AddNode(id string) (*Node, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.nodes[id]; ok {
		return nil, fmt.Errorf("%w: %q", ErrNodeExists, id)
	}
	n := &Node{
		id:     id,
		fabric: f,
		mrs:    make(map[uint32]*MR),
	}
	f.nodes[id] = n
	return n, nil
}

// Node returns the node with the given ID, if it exists.
func (f *Fabric) Node(id string) (*Node, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	n, ok := f.nodes[id]
	return n, ok
}

// Nodes returns the IDs of all nodes on the fabric.
func (f *Fabric) Nodes() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	ids := make([]string, 0, len(f.nodes))
	for id := range f.nodes {
		ids = append(ids, id)
	}
	return ids
}
