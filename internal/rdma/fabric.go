// Package rdma simulates an RDMA fabric at the verbs level: nodes with
// NICs, protection-domain-style memory registration, reliable-connected
// queue pairs, one-sided READ/WRITE/atomic operations and two-sided
// SEND/RECV messaging.
//
// The simulator preserves the structural properties Gengar's design
// arguments rest on: one-sided operations complete without any remote CPU
// involvement, small operations are round-trip dominated, payloads
// serialize on per-NIC transmit/receive engines, and remote memory
// accesses pay the target device's media cost (so NVM-backed regions are
// slower than DRAM-backed ones, especially for writes). All timing is in
// simulated nanoseconds (see package simnet); all data movement is real,
// so protocols built on top can be tested for byte-level correctness.
package rdma

import (
	"errors"
	"fmt"
	"sync"

	"gengar/internal/metrics"
	"gengar/internal/simnet"
	"gengar/internal/telemetry"
)

// Sentinel errors returned by verb operations.
var (
	// ErrNodeExists is returned by AddNode for a duplicate node ID.
	ErrNodeExists = errors.New("rdma: node already exists")
	// ErrMRNotFound is returned when a remote key does not resolve to a
	// registered memory region on the target node.
	ErrMRNotFound = errors.New("rdma: memory region not found")
	// ErrAccessDenied is returned when an operation is not permitted by
	// the target region's access flags.
	ErrAccessDenied = errors.New("rdma: access denied")
	// ErrOutOfBounds is returned when an operation falls outside the
	// target region.
	ErrOutOfBounds = errors.New("rdma: access out of region bounds")
	// ErrNotConnected is returned when a queue pair has no peer.
	ErrNotConnected = errors.New("rdma: queue pair not connected")
	// ErrQPClosed is returned when operating on a closed queue pair.
	ErrQPClosed = errors.New("rdma: queue pair closed")
)

// Fabric is a set of nodes joined by a uniform full-bisection network
// with a single link cost model, the common shape of a rack-scale RDMA
// deployment. It also owns the global simulated clock shared by
// everything attached to it.
type Fabric struct {
	model simnet.LinkModel
	clock *simnet.Clock

	// Fabric-wide verb mix: how the workload exercises the network is a
	// first-order input to Gengar's hotness arguments, so every verb
	// initiation is counted by kind.
	verbReads    metrics.Counter
	verbWrites   metrics.Counter
	verbCAS      metrics.Counter
	verbFetchAdd metrics.Counter
	verbSends    metrics.Counter

	mu    sync.RWMutex
	nodes map[string]*Node
}

// VerbCounts is a snapshot of the fabric-wide verb mix.
type VerbCounts struct {
	Reads, Writes, CAS, FetchAdd, Sends int64
}

// VerbCounts returns how many one- and two-sided verbs have been
// initiated on the fabric, by kind.
func (f *Fabric) VerbCounts() VerbCounts {
	return VerbCounts{
		Reads:    f.verbReads.Load(),
		Writes:   f.verbWrites.Load(),
		CAS:      f.verbCAS.Load(),
		FetchAdd: f.verbFetchAdd.Load(),
		Sends:    f.verbSends.Load(),
	}
}

// RegisterTelemetry exposes the fabric's verb mix and aggregate traffic
// volume in reg under the gengar_rdma_* names.
func (f *Fabric) RegisterTelemetry(reg *telemetry.Registry) {
	const name, help = "gengar_rdma_verbs_total", "RDMA verbs initiated, by kind"
	reg.RegisterCounter(name, help, &f.verbReads, telemetry.L("verb", "read"))
	reg.RegisterCounter(name, help, &f.verbWrites, telemetry.L("verb", "write"))
	reg.RegisterCounter(name, help, &f.verbCAS, telemetry.L("verb", "cas"))
	reg.RegisterCounter(name, help, &f.verbFetchAdd, telemetry.L("verb", "fetch_add"))
	reg.RegisterCounter(name, help, &f.verbSends, telemetry.L("verb", "send"))
	reg.GaugeFunc("gengar_rdma_tx_bytes", "bytes put on the wire, all nodes", func() int64 {
		f.mu.RLock()
		defer f.mu.RUnlock()
		var total int64
		for _, n := range f.nodes {
			total += n.TxBytes()
		}
		return total
	})
}

// NewFabric returns an empty fabric with the given link cost model.
func NewFabric(model simnet.LinkModel) (*Fabric, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	return &Fabric{
		model: model,
		clock: new(simnet.Clock),
		nodes: make(map[string]*Node),
	}, nil
}

// Clock returns the fabric-wide simulated clock frontier.
func (f *Fabric) Clock() *simnet.Clock { return f.clock }

// Model returns the fabric's link cost model.
func (f *Fabric) Model() simnet.LinkModel { return f.model }

// AddNode creates a node (one NIC) with the given unique ID.
func (f *Fabric) AddNode(id string) (*Node, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.nodes[id]; ok {
		return nil, fmt.Errorf("%w: %q", ErrNodeExists, id)
	}
	n := &Node{
		id:     id,
		fabric: f,
		mrs:    make(map[uint32]*MR),
	}
	f.nodes[id] = n
	return n, nil
}

// Node returns the node with the given ID, if it exists.
func (f *Fabric) Node(id string) (*Node, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	n, ok := f.nodes[id]
	return n, ok
}

// Nodes returns the IDs of all nodes on the fabric.
func (f *Fabric) Nodes() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	ids := make([]string, 0, len(f.nodes))
	for id := range f.nodes {
		ids = append(ids, id)
	}
	return ids
}
