package rdma

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"gengar/internal/hmem"
	"gengar/internal/simnet"
)

func testModel() simnet.LinkModel {
	return simnet.LinkModel{
		PerOp:       600 * time.Nanosecond,
		Propagation: 300 * time.Nanosecond,
		BytesPerSec: 12.5e9, // 100 Gb/s
	}
}

// testPair builds a two-node fabric with a device and fully-open MR on
// the server side and a connected QP pair.
func testPair(t *testing.T, kind hmem.Kind, devSize int64) (client, server *QP, mr *MR) {
	t.Helper()
	f, err := NewFabric(testModel())
	if err != nil {
		t.Fatal(err)
	}
	cn, err := f.AddNode("client")
	if err != nil {
		t.Fatal(err)
	}
	sn, err := f.AddNode("server")
	if err != nil {
		t.Fatal(err)
	}
	profile := hmem.DRAMProfile()
	if kind == hmem.KindNVM {
		profile = hmem.OptaneProfile()
	}
	dev, err := hmem.NewDevice("server-mem", devSize, profile)
	if err != nil {
		t.Fatal(err)
	}
	mr, err = sn.RegisterMR(dev, 0, devSize, AccessAll)
	if err != nil {
		t.Fatal(err)
	}
	client, server = cn.NewQP(), sn.NewQP()
	if err := client.Connect(server); err != nil {
		t.Fatal(err)
	}
	return client, server, mr
}

func TestFabricNodes(t *testing.T) {
	f, err := NewFabric(testModel())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.AddNode("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.AddNode("a"); !errors.Is(err, ErrNodeExists) {
		t.Fatalf("duplicate node error = %v", err)
	}
	if _, ok := f.Node("a"); !ok {
		t.Fatal("node lookup failed")
	}
	if _, ok := f.Node("zzz"); ok {
		t.Fatal("phantom node")
	}
	if got := f.Nodes(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("Nodes = %v", got)
	}
	if f.Model() != testModel() {
		t.Fatal("Model roundtrip")
	}
}

func TestNewFabricRejectsBadModel(t *testing.T) {
	if _, err := NewFabric(simnet.LinkModel{PerOp: -1}); err == nil {
		t.Fatal("invalid model accepted")
	}
}

func TestRegisterMRValidation(t *testing.T) {
	f, _ := NewFabric(testModel())
	n, _ := f.AddNode("n")
	dev, _ := hmem.NewDevice("d", 1024, hmem.DRAMProfile())
	if _, err := n.RegisterMR(nil, 0, 10, AccessAll); err == nil {
		t.Fatal("nil device accepted")
	}
	if _, err := n.RegisterMR(dev, 0, 2048, AccessAll); !errors.Is(err, ErrOutOfBounds) {
		t.Fatalf("oversize register: %v", err)
	}
	if _, err := n.RegisterMR(dev, -1, 10, AccessAll); !errors.Is(err, ErrOutOfBounds) {
		t.Fatal("negative base accepted")
	}
	mr, err := n.RegisterMR(dev, 512, 512, AccessRemoteRead)
	if err != nil {
		t.Fatal(err)
	}
	if mr.RKey() == 0 || mr.Length() != 512 || mr.Device() != dev {
		t.Fatalf("MR fields: rkey=%d len=%d", mr.RKey(), mr.Length())
	}
	h := mr.Handle()
	if h.Node != "n" || h.RKey != mr.RKey() {
		t.Fatalf("handle: %+v", h)
	}
}

func TestWriteReadRoundtrip(t *testing.T) {
	client, _, mr := testPair(t, hmem.KindNVM, 1<<16)
	src := bytes.Repeat([]byte("gengar!"), 100)
	raddr := RemoteAddr{Region: mr.Handle(), Offset: 4096}
	end, err := client.Write(0, src, raddr)
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	if end <= 0 {
		t.Fatal("write completion time not positive")
	}
	dst := make([]byte, len(src))
	end2, err := client.Read(end, dst, raddr)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(src, dst) {
		t.Fatal("roundtrip data mismatch")
	}
	if end2 <= end {
		t.Fatal("read charged no time")
	}
	if client.Node().ID() != "client" {
		t.Fatal("Node accessor")
	}
}

func TestOneSidedErrors(t *testing.T) {
	client, _, mr := testPair(t, hmem.KindDRAM, 1024)
	buf := make([]byte, 64)

	if _, err := client.Read(0, buf, RemoteAddr{Region: RegionHandle{Node: "server", RKey: 999}}); !errors.Is(err, ErrMRNotFound) {
		t.Fatalf("bad rkey: %v", err)
	}
	oob := RemoteAddr{Region: mr.Handle(), Offset: 1000}
	if _, err := client.Read(0, buf, oob); !errors.Is(err, ErrOutOfBounds) {
		t.Fatalf("oob read: %v", err)
	}
	wrongNode := RemoteAddr{Region: RegionHandle{Node: "elsewhere", RKey: mr.RKey()}}
	if _, err := client.Write(0, buf, wrongNode); err == nil {
		t.Fatal("write to wrong node accepted")
	}
	if _, err := client.Read(0, buf, wrongNode); err == nil {
		t.Fatal("read from wrong node accepted")
	}
}

func TestAccessFlagsEnforced(t *testing.T) {
	f, _ := NewFabric(testModel())
	cn, _ := f.AddNode("c")
	sn, _ := f.AddNode("s")
	dev, _ := hmem.NewDevice("d", 1024, hmem.DRAMProfile())
	roMR, _ := sn.RegisterMR(dev, 0, 512, AccessRemoteRead)
	c, s := cn.NewQP(), sn.NewQP()
	if err := c.Connect(s); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	if _, err := c.Read(0, buf, RemoteAddr{Region: roMR.Handle()}); err != nil {
		t.Fatalf("read on RO region: %v", err)
	}
	if _, err := c.Write(0, buf, RemoteAddr{Region: roMR.Handle()}); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("write on RO region: %v", err)
	}
	if _, _, err := c.CompareAndSwap(0, RemoteAddr{Region: roMR.Handle()}, 0, 1); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("atomic on RO region: %v", err)
	}
}

func TestDeregisterMR(t *testing.T) {
	client, server, mr := testPair(t, hmem.KindDRAM, 1024)
	server.Node().DeregisterMR(mr)
	buf := make([]byte, 8)
	if _, err := client.Read(0, buf, RemoteAddr{Region: mr.Handle()}); !errors.Is(err, ErrMRNotFound) {
		t.Fatalf("read after deregister: %v", err)
	}
}

func TestQPConnectionErrors(t *testing.T) {
	f, _ := NewFabric(testModel())
	a, _ := f.AddNode("a")
	b, _ := f.AddNode("b")
	qa, qb := a.NewQP(), b.NewQP()
	if err := qa.Connect(nil); err == nil {
		t.Fatal("nil peer accepted")
	}
	if err := qa.Connect(qa); err == nil {
		t.Fatal("self connect accepted")
	}
	if _, err := qa.Write(0, []byte{1}, RemoteAddr{}); !errors.Is(err, ErrNotConnected) {
		t.Fatalf("unconnected write: %v", err)
	}
	if err := qa.Connect(qb); err != nil {
		t.Fatal(err)
	}
	if err := qa.Connect(b.NewQP()); err == nil {
		t.Fatal("double connect accepted")
	}
	other, _ := NewFabric(testModel())
	on, _ := other.AddNode("x")
	if err := on.NewQP().Connect(a.NewQP()); err == nil {
		t.Fatal("cross-fabric connect accepted")
	}
}

func TestAtomics(t *testing.T) {
	client, _, mr := testPair(t, hmem.KindDRAM, 1024)
	addr := RemoteAddr{Region: mr.Handle(), Offset: 64}
	prev, _, err := client.CompareAndSwap(0, addr, 0, 7)
	if err != nil || prev != 0 {
		t.Fatalf("CAS: %d %v", prev, err)
	}
	prev, _, err = client.CompareAndSwap(0, addr, 0, 9)
	if err != nil || prev != 7 {
		t.Fatalf("failed CAS: %d %v", prev, err)
	}
	prev, _, err = client.FetchAdd(0, addr, 5)
	if err != nil || prev != 7 {
		t.Fatalf("FetchAdd: %d %v", prev, err)
	}
	prev, _, err = client.FetchAdd(0, addr, 0)
	if err != nil || prev != 12 {
		t.Fatalf("FetchAdd readback: %d %v", prev, err)
	}
	if _, _, err := client.FetchAdd(0, RemoteAddr{Region: mr.Handle(), Offset: 2000}, 1); err == nil {
		t.Fatal("OOB fetch-add accepted")
	}
}

func TestSendRecv(t *testing.T) {
	client, server, _ := testPair(t, hmem.KindDRAM, 1024)
	done := make(chan struct{})
	go func() {
		defer close(done)
		got, at, err := server.Recv()
		if err != nil {
			t.Errorf("Recv: %v", err)
			return
		}
		if string(got) != "ping" {
			t.Errorf("Recv payload %q", got)
		}
		if at <= 0 {
			t.Error("arrival time not positive")
		}
	}()
	if _, err := client.Send(0, []byte("ping")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	<-done
}

func TestSendCopiesPayload(t *testing.T) {
	client, server, _ := testPair(t, hmem.KindDRAM, 1024)
	buf := []byte("aaaa")
	if _, err := client.Send(0, buf); err != nil {
		t.Fatal(err)
	}
	copy(buf, "bbbb") // mutate after send
	got, _, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "aaaa" {
		t.Fatalf("payload aliased sender buffer: %q", got)
	}
}

func TestTryRecv(t *testing.T) {
	client, server, _ := testPair(t, hmem.KindDRAM, 1024)
	if _, _, ok, err := server.TryRecv(); ok || err != nil {
		t.Fatalf("TryRecv on empty: ok=%v err=%v", ok, err)
	}
	if _, err := client.Send(0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	got, _, ok, err := server.TryRecv()
	if !ok || err != nil || string(got) != "x" {
		t.Fatalf("TryRecv: %q ok=%v err=%v", got, ok, err)
	}
	server.Close()
	if _, _, _, err := server.TryRecv(); !errors.Is(err, ErrQPClosed) {
		t.Fatalf("TryRecv after close: %v", err)
	}
}

func TestCloseUnblocksRecv(t *testing.T) {
	_, server, _ := testPair(t, hmem.KindDRAM, 1024)
	errc := make(chan error, 1)
	go func() {
		_, _, err := server.Recv()
		errc <- err
	}()
	server.Close()
	server.Close() // idempotent
	if err := <-errc; !errors.Is(err, ErrQPClosed) {
		t.Fatalf("Recv after close: %v", err)
	}
}

func TestSendToClosedQP(t *testing.T) {
	client, server, _ := testPair(t, hmem.KindDRAM, 1024)
	server.Close()
	if _, err := client.Send(0, []byte("x")); !errors.Is(err, ErrQPClosed) {
		t.Fatalf("send to closed peer: %v", err)
	}
	client.Close()
	if _, err := client.Send(0, []byte("x")); !errors.Is(err, ErrQPClosed) {
		t.Fatalf("send on closed qp: %v", err)
	}
}

func TestOneSidedBypassesRemoteCPU(t *testing.T) {
	// A READ must succeed even though the server never calls Recv — the
	// structural property that motivates hotness tracking at the client.
	client, _, mr := testPair(t, hmem.KindNVM, 4096)
	if err := mr.Device().WriteRaw(0, []byte("silent")); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 6)
	if _, err := client.Read(0, dst, RemoteAddr{Region: mr.Handle()}); err != nil {
		t.Fatal(err)
	}
	if string(dst) != "silent" {
		t.Fatalf("read %q", dst)
	}
}

func TestLatencyShape(t *testing.T) {
	// Structural timing properties the experiments rely on.
	readLat := func(kind hmem.Kind, size int) simnet.Duration {
		client, _, mr := testPair(t, kind, 1<<20)
		buf := make([]byte, size)
		end, err := client.Read(0, buf, RemoteAddr{Region: mr.Handle()})
		if err != nil {
			t.Fatal(err)
		}
		return simnet.Duration(end)
	}
	writeLat := func(kind hmem.Kind, size int) simnet.Duration {
		client, _, mr := testPair(t, kind, 1<<20)
		buf := make([]byte, size)
		end, err := client.Write(0, buf, RemoteAddr{Region: mr.Handle()})
		if err != nil {
			t.Fatal(err)
		}
		return simnet.Duration(end)
	}
	// Remote NVM slower than remote DRAM, both directions.
	if readLat(hmem.KindNVM, 1024) <= readLat(hmem.KindDRAM, 1024) {
		t.Fatal("remote NVM read not slower than DRAM")
	}
	if writeLat(hmem.KindNVM, 1024) <= writeLat(hmem.KindDRAM, 1024) {
		t.Fatal("remote NVM write not slower than DRAM")
	}
	// Small ops RTT-dominated: 64 B and 256 B reads within 25 %.
	small, mid := readLat(hmem.KindDRAM, 64), readLat(hmem.KindDRAM, 256)
	if float64(mid) > 1.25*float64(small) {
		t.Fatalf("small reads not RTT-dominated: 64B=%v 256B=%v", small, mid)
	}
	// Large transfers bandwidth-dominated: 64 KiB >> 64 B.
	large := readLat(hmem.KindDRAM, 64<<10)
	if large < 3*small {
		t.Fatalf("large read not bandwidth-dominated: %v vs %v", large, small)
	}
}

func TestConcurrentWritesSaturateNVM(t *testing.T) {
	// Many clients writing 4 KiB to one NVM server: makespan should be
	// bounded below by total bytes / NVM write bandwidth.
	f, _ := NewFabric(testModel())
	sn, _ := f.AddNode("server")
	dev, _ := hmem.NewDevice("nvm", 64<<20, hmem.OptaneProfile())
	mr, _ := sn.RegisterMR(dev, 0, dev.Size(), AccessAll)

	const clients = 8
	const opsPer = 32
	const size = 4096
	var wg sync.WaitGroup
	var mu sync.Mutex
	var last simnet.Time
	for i := 0; i < clients; i++ {
		cn, err := f.AddNode(string(rune('A' + i)))
		if err != nil {
			t.Fatal(err)
		}
		q := cn.NewQP()
		srv := sn.NewQP()
		if err := q.Connect(srv); err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			buf := make([]byte, size)
			var now simnet.Time
			for j := 0; j < opsPer; j++ {
				off := int64((i*opsPer + j) * size)
				end, err := q.Write(now, buf, RemoteAddr{Region: mr.Handle(), Offset: off})
				if err != nil {
					t.Error(err)
					return
				}
				now = end
			}
			mu.Lock()
			if now > last {
				last = now
			}
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	totalBytes := float64(clients * opsPer * size)
	floor := simnet.Duration(totalBytes / hmem.OptaneProfile().WriteBytesPerSec * float64(time.Second))
	if simnet.Duration(last) < floor {
		t.Fatalf("makespan %v below NVM bandwidth floor %v", simnet.Duration(last), floor)
	}
	if f.Clock().Now() < last {
		t.Fatal("fabric clock behind op completions")
	}
}

func TestRemoteAddrString(t *testing.T) {
	a := RemoteAddr{Region: RegionHandle{Node: "s1", RKey: 3}, Offset: 128}
	if got := a.String(); got != "s1/mr3+128" {
		t.Fatalf("String = %q", got)
	}
}

func TestReadBatchRoundtrip(t *testing.T) {
	client, _, mr := testPair(t, hmem.KindNVM, 1<<16)
	for i := 0; i < 4; i++ {
		if err := mr.Device().WriteRaw(int64(i)*256, []byte{byte('a' + i)}); err != nil {
			t.Fatal(err)
		}
	}
	reqs := make([]ReadReq, 4)
	bufs := make([][]byte, 4)
	for i := range reqs {
		bufs[i] = make([]byte, 1)
		reqs[i] = ReadReq{Dst: bufs[i], Raddr: RemoteAddr{Region: mr.Handle(), Offset: int64(i) * 256}}
	}
	end, err := client.ReadBatch(0, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if end <= 0 {
		t.Fatal("batch charged no time")
	}
	for i, b := range bufs {
		if b[0] != byte('a'+i) {
			t.Fatalf("req %d read %q", i, b)
		}
	}
}

func TestReadBatchCheaperThanSequential(t *testing.T) {
	// k small reads batched should cost far less than k round trips.
	client, _, mr := testPair(t, hmem.KindDRAM, 1<<16)
	const k = 8
	reqs := make([]ReadReq, k)
	for i := range reqs {
		reqs[i] = ReadReq{Dst: make([]byte, 64), Raddr: RemoteAddr{Region: mr.Handle(), Offset: int64(i) * 64}}
	}
	batchEnd, err := client.ReadBatch(0, reqs)
	if err != nil {
		t.Fatal(err)
	}
	var now simnet.Time
	for i := 0; i < k; i++ {
		buf := make([]byte, 64)
		end, err := client.Read(now, buf, RemoteAddr{Region: mr.Handle(), Offset: int64(i) * 64})
		if err != nil {
			t.Fatal(err)
		}
		now = end
	}
	if simnet.Duration(batchEnd)*3 > simnet.Duration(now) {
		t.Fatalf("batch %v not <1/3 of sequential %v", simnet.Duration(batchEnd), simnet.Duration(now))
	}
}

func TestReadBatchValidation(t *testing.T) {
	client, _, mr := testPair(t, hmem.KindDRAM, 1024)
	// Empty batch is a no-op.
	if end, err := client.ReadBatch(5, nil); err != nil || end != 5 {
		t.Fatalf("empty batch: %v %v", end, err)
	}
	// A bad request fails the whole batch before any timing is charged.
	reqs := []ReadReq{
		{Dst: make([]byte, 8), Raddr: RemoteAddr{Region: mr.Handle(), Offset: 0}},
		{Dst: make([]byte, 8), Raddr: RemoteAddr{Region: mr.Handle(), Offset: 4096}},
	}
	if _, err := client.ReadBatch(0, reqs); !errors.Is(err, ErrOutOfBounds) {
		t.Fatalf("oob batch: %v", err)
	}
	wrong := []ReadReq{{Dst: make([]byte, 8), Raddr: RemoteAddr{Region: RegionHandle{Node: "nope", RKey: 1}}}}
	if _, err := client.ReadBatch(0, wrong); err == nil {
		t.Fatal("wrong-node batch accepted")
	}
	// Unconnected QP.
	f, _ := NewFabric(testModel())
	n, _ := f.AddNode("x")
	if _, err := n.NewQP().ReadBatch(0, reqs); !errors.Is(err, ErrNotConnected) {
		t.Fatalf("unconnected batch: %v", err)
	}
}

func TestWriteBatchRoundtrip(t *testing.T) {
	client, _, mr := testPair(t, hmem.KindNVM, 1<<16)
	reqs := make([]WriteReq, 4)
	for i := range reqs {
		reqs[i] = WriteReq{
			Src:   []byte{byte('a' + i)},
			Raddr: RemoteAddr{Region: mr.Handle(), Offset: int64(i) * 256},
		}
	}
	end, err := client.WriteBatch(0, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if end <= 0 {
		t.Fatal("batch charged no time")
	}
	got := make([]byte, 1)
	for i := range reqs {
		if err := mr.Device().ReadRaw(int64(i)*256, got); err != nil {
			t.Fatal(err)
		}
		if got[0] != byte('a'+i) {
			t.Fatalf("req %d stored %q", i, got)
		}
	}
}

func TestWriteBatchCheaperThanSequential(t *testing.T) {
	// k small writes batched should cost far less than k round trips.
	client, _, mr := testPair(t, hmem.KindDRAM, 1<<16)
	const k = 8
	reqs := make([]WriteReq, k)
	for i := range reqs {
		reqs[i] = WriteReq{Src: make([]byte, 64), Raddr: RemoteAddr{Region: mr.Handle(), Offset: int64(i) * 64}}
	}
	batchEnd, err := client.WriteBatch(0, reqs)
	if err != nil {
		t.Fatal(err)
	}
	var now simnet.Time
	for i := 0; i < k; i++ {
		end, err := client.Write(now, make([]byte, 64), RemoteAddr{Region: mr.Handle(), Offset: int64(i) * 64})
		if err != nil {
			t.Fatal(err)
		}
		now = end
	}
	if simnet.Duration(batchEnd)*3 > simnet.Duration(now) {
		t.Fatalf("batch %v not <1/3 of sequential %v", simnet.Duration(batchEnd), simnet.Duration(now))
	}
}

func TestWriteBatchValidation(t *testing.T) {
	client, _, mr := testPair(t, hmem.KindDRAM, 1024)
	// Empty batch is a no-op.
	if end, err := client.WriteBatch(5, nil); err != nil || end != 5 {
		t.Fatalf("empty batch: %v %v", end, err)
	}
	// A bad request fails the whole batch before any data moves.
	reqs := []WriteReq{
		{Src: make([]byte, 8), Raddr: RemoteAddr{Region: mr.Handle(), Offset: 0}},
		{Src: make([]byte, 8), Raddr: RemoteAddr{Region: mr.Handle(), Offset: 4096}},
	}
	if _, err := client.WriteBatch(0, reqs); !errors.Is(err, ErrOutOfBounds) {
		t.Fatalf("oob batch: %v", err)
	}
	var first [1]byte
	if err := mr.Device().ReadRaw(0, first[:]); err != nil {
		t.Fatal(err)
	}
	if first[0] != 0 {
		t.Fatal("failed batch wrote data")
	}
	wrong := []WriteReq{{Src: make([]byte, 8), Raddr: RemoteAddr{Region: RegionHandle{Node: "nope", RKey: 1}}}}
	if _, err := client.WriteBatch(0, wrong); err == nil {
		t.Fatal("wrong-node batch accepted")
	}
	// Unconnected QP.
	f, _ := NewFabric(testModel())
	n, _ := f.AddNode("x")
	if _, err := n.NewQP().WriteBatch(0, reqs); !errors.Is(err, ErrNotConnected) {
		t.Fatalf("unconnected batch: %v", err)
	}
}
