package rdma

import (
	"fmt"
	"sync"

	"gengar/internal/hmem"
	"gengar/internal/metrics"
)

// Access is a bitmask of permissions granted when registering a memory
// region, mirroring ibv_access_flags.
type Access uint8

// Access flag bits.
const (
	AccessRemoteRead Access = 1 << iota
	AccessRemoteWrite
	AccessRemoteAtomic
)

// AccessAll grants remote read, write and atomic access.
const AccessAll = AccessRemoteRead | AccessRemoteWrite | AccessRemoteAtomic

// MR is a registered memory region: a window [base, base+length) of a
// memory device on one node, addressable by remote peers through its
// remote key.
type MR struct {
	node   *Node
	dev    *hmem.Device
	base   int64
	length int64
	rkey   uint32
	access Access
}

// RKey returns the region's remote key.
func (m *MR) RKey() uint32 { return m.rkey }

// Length returns the region's length in bytes.
func (m *MR) Length() int64 { return m.length }

// Device returns the memory device backing the region.
func (m *MR) Device() *hmem.Device { return m.dev }

// Handle returns the fabric-wide address of this region.
func (m *MR) Handle() RegionHandle {
	return RegionHandle{Node: m.node.id, RKey: m.rkey}
}

// RegionHandle names a memory region anywhere on the fabric.
type RegionHandle struct {
	Node string
	RKey uint32
}

// RemoteAddr names a byte range inside a remote region.
type RemoteAddr struct {
	Region RegionHandle
	Offset int64
}

// String formats the address for diagnostics.
func (a RemoteAddr) String() string {
	return fmt.Sprintf("%s/mr%d+%d", a.Region.Node, a.Region.RKey, a.Offset)
}

// Node is one machine's NIC attached to the fabric: it owns registered
// memory regions and queue pairs, and carries the transmit/receive
// engines that serialize its traffic.
type Node struct {
	id      string
	fabric  *Fabric
	txBytes metrics.Counter
	rxBytes metrics.Counter

	mu       sync.RWMutex
	mrs      map[uint32]*MR
	nextRKey uint32
}

// ID returns the node's fabric-unique identifier.
func (n *Node) ID() string { return n.id }

// TxBytes returns the total bytes this node has put on the wire.
// Per-message network contention is modeled per initiator (each queue
// pair's send queue); see transferInit in qp.go for why node-global NIC
// engines are not watermark resources.
func (n *Node) TxBytes() int64 { return n.txBytes.Load() }

// RxBytes returns the total bytes delivered into this node.
func (n *Node) RxBytes() int64 { return n.rxBytes.Load() }

// RegisterMR registers the window [base, base+length) of dev for remote
// access with the given permissions and returns the region.
func (n *Node) RegisterMR(dev *hmem.Device, base, length int64, access Access) (*MR, error) {
	if dev == nil {
		return nil, fmt.Errorf("rdma: register on node %s: nil device", n.id)
	}
	if base < 0 || length <= 0 || base+length > dev.Size() {
		return nil, fmt.Errorf("rdma: register [%d,%d) on node %s: %w",
			base, base+length, n.id, ErrOutOfBounds)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nextRKey++
	mr := &MR{
		node:   n,
		dev:    dev,
		base:   base,
		length: length,
		rkey:   n.nextRKey,
		access: access,
	}
	n.mrs[mr.rkey] = mr
	return mr, nil
}

// DeregisterMR removes a region; subsequent remote accesses fail with
// ErrMRNotFound.
func (n *Node) DeregisterMR(mr *MR) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.mrs, mr.rkey)
}

// lookupMR resolves a remote key, checking the required access bit and
// that [off, off+size) falls inside the region.
func (n *Node) lookupMR(rkey uint32, need Access, off int64, size int) (*MR, error) {
	n.mu.RLock()
	mr, ok := n.mrs[rkey]
	n.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("rdma: rkey %d on node %s: %w", rkey, n.id, ErrMRNotFound)
	}
	if mr.access&need != need {
		return nil, fmt.Errorf("rdma: rkey %d on node %s: %w", rkey, n.id, ErrAccessDenied)
	}
	if off < 0 || size < 0 || off+int64(size) > mr.length {
		return nil, fmt.Errorf("rdma: [%d,%d) in region of length %d: %w",
			off, off+int64(size), mr.length, ErrOutOfBounds)
	}
	return mr, nil
}
