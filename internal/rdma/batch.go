package rdma

import (
	"fmt"
	"time"

	"gengar/internal/simnet"
)

// perWQE is the marginal software cost of each additional work request
// in a batched posting: building the WQE without ringing the doorbell
// again. Doorbell batching exists precisely because this is an order of
// magnitude below PerOp.
const perWQE = 100 * time.Nanosecond

// ReadReq is one read in a batch: fill Dst from the remote address.
type ReadReq struct {
	Dst   []byte
	Raddr RemoteAddr
}

// ReadBatch posts a batch of one-sided READs with a single doorbell and
// returns when the last response has arrived (the batch is signaled on
// its final work request, the standard pattern). Compared with issuing
// the reads one at a time, the batch pays one PerOp plus a small per-WQE
// cost and overlaps all round trips, so k small reads cost roughly one
// RTT instead of k.
//
// All requests must target the connected peer. On error, some requests
// may have completed; the batch is not atomic (it is not on hardware
// either).
func (qp *QP) ReadBatch(at simnet.Time, reqs []ReadReq) (simnet.Time, error) {
	if len(reqs) == 0 {
		return at, nil
	}
	peer, err := qp.remote()
	if err != nil {
		return at, err
	}
	target := peer.node
	m := qp.node.fabric.model

	// Validate everything before touching timing or data: a malformed
	// batch is a caller bug and should not half-execute gratuitously.
	mrs := make([]*MR, len(reqs))
	for i, r := range reqs {
		if r.Raddr.Region.Node != target.id {
			return at, fmt.Errorf("rdma: batch read from %s via qp connected to %s",
				r.Raddr.Region.Node, target.id)
		}
		mr, err := target.lookupMR(r.Raddr.Region.RKey, AccessRemoteRead, r.Raddr.Offset, len(r.Dst))
		if err != nil {
			return at, err
		}
		mrs[i] = mr
	}

	// One doorbell for the whole chain.
	_, swEnd := qp.initRes.Acquire(at, m.PerOp+time.Duration(len(reqs)-1)*perWQE)

	var last simnet.Time
	for i, r := range reqs {
		// Each request is its own small wire message; they pipeline
		// behind the single posting.
		reqLanded := deliver(qp.node, target, swEnd, headerBytes)
		devEnd, err := mrs[i].dev.Read(reqLanded, mrs[i].base+r.Raddr.Offset, r.Dst)
		if err != nil {
			return at, fmt.Errorf("rdma: batch read %s: %w", r.Raddr, err)
		}
		respEnd := transferResp(target, qp.node, devEnd, headerBytes+len(r.Dst))
		if respEnd > last {
			last = respEnd
		}
	}
	qp.node.fabric.clock.Observe(last)
	return last, nil
}
