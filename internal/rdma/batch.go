package rdma

import (
	"fmt"
	"time"

	"gengar/internal/simnet"
)

// perWQE is the marginal software cost of each additional work request
// in a batched posting: building the WQE without ringing the doorbell
// again. Doorbell batching exists precisely because this is an order of
// magnitude below PerOp.
const perWQE = 100 * time.Nanosecond

// ReadReq is one read in a batch: fill Dst from the remote address.
type ReadReq struct {
	Dst   []byte
	Raddr RemoteAddr
}

// WriteReq is one write in a batch: store Src at the remote address.
type WriteReq struct {
	Src   []byte
	Raddr RemoteAddr
}

// ReadBatch posts a batch of one-sided READs with a single doorbell and
// returns when the last response has arrived (the batch is signaled on
// its final work request, the standard pattern). Compared with issuing
// the reads one at a time, the batch pays one PerOp plus a small per-WQE
// cost and overlaps all round trips, so k small reads cost roughly one
// RTT instead of k.
//
// All requests must target the connected peer. On error, some requests
// may have completed; the batch is not atomic (it is not on hardware
// either).
func (qp *QP) ReadBatch(at simnet.Time, reqs []ReadReq) (simnet.Time, error) {
	if len(reqs) == 0 {
		return at, nil
	}
	peer, err := qp.remote()
	if err != nil {
		return at, err
	}
	target := peer.node
	m := qp.node.fabric.model

	// Validate everything before touching timing or data: a malformed
	// batch is a caller bug and should not half-execute gratuitously.
	mrs := make([]*MR, len(reqs))
	for i, r := range reqs {
		if r.Raddr.Region.Node != target.id {
			return at, fmt.Errorf("rdma: batch read from %s via qp connected to %s",
				r.Raddr.Region.Node, target.id)
		}
		mr, err := target.lookupMR(r.Raddr.Region.RKey, AccessRemoteRead, r.Raddr.Offset, len(r.Dst))
		if err != nil {
			return at, err
		}
		mrs[i] = mr
	}

	// One doorbell for the whole chain.
	_, swEnd := qp.initRes.Acquire(at, m.PerOp+time.Duration(len(reqs)-1)*perWQE)

	var last simnet.Time
	for i, r := range reqs {
		// Each request is its own small wire message; they pipeline
		// behind the single posting.
		reqLanded := deliver(qp.node, target, swEnd, headerBytes)
		devEnd, err := mrs[i].dev.Read(reqLanded, mrs[i].base+r.Raddr.Offset, r.Dst)
		if err != nil {
			return at, fmt.Errorf("rdma: batch read %s: %w", r.Raddr, err)
		}
		respEnd := transferResp(target, qp.node, devEnd, headerBytes+len(r.Dst))
		if respEnd > last {
			last = respEnd
		}
	}
	qp.node.fabric.clock.Observe(last)
	return last, nil
}

// WriteBatch posts a batch of one-sided WRITEs with a single doorbell
// and returns when the last ACK has arrived (the batch is signaled on
// its final work request). Compared with issuing the writes one at a
// time, the batch pays one PerOp plus a small per-WQE cost, streams the
// payloads back to back out of the initiator NIC, and overlaps all
// round trips — the WQE-merging optimization the RDMAbox line of work
// shows dominates small-write throughput.
//
// All requests must target the connected peer. On error, some requests
// may have completed; the batch is not atomic (it is not on hardware
// either).
func (qp *QP) WriteBatch(at simnet.Time, reqs []WriteReq) (simnet.Time, error) {
	if len(reqs) == 0 {
		return at, nil
	}
	peer, err := qp.remote()
	if err != nil {
		return at, err
	}
	target := peer.node
	m := qp.node.fabric.model

	// Validate everything before touching timing or data: a malformed
	// batch is a caller bug and should not half-execute gratuitously.
	mrs := make([]*MR, len(reqs))
	for i, r := range reqs {
		if r.Raddr.Region.Node != target.id {
			return at, fmt.Errorf("rdma: batch write to %s via qp connected to %s",
				r.Raddr.Region.Node, target.id)
		}
		mr, err := target.lookupMR(r.Raddr.Region.RKey, AccessRemoteWrite, r.Raddr.Offset, len(r.Src))
		if err != nil {
			return at, err
		}
		mrs[i] = mr
	}

	// One doorbell for the whole chain; the payloads then serialize out
	// of the initiator NIC back to back, so request i cannot land before
	// the preceding payloads have left the wire.
	var serTotal time.Duration
	for _, r := range reqs {
		serTotal += m.SerializeTime(headerBytes + len(r.Src))
	}
	start, _ := qp.initRes.Acquire(at, m.PerOp+time.Duration(len(reqs)-1)*perWQE+serTotal)
	tx := start.Add(m.PerOp + time.Duration(len(reqs)-1)*perWQE)

	var last simnet.Time
	for i, r := range reqs {
		size := headerBytes + len(r.Src)
		tx = tx.Add(m.SerializeTime(size))
		landed := deliver(qp.node, target, tx, size)
		devEnd, err := mrs[i].dev.Write(landed, mrs[i].base+r.Raddr.Offset, r.Src)
		if err != nil {
			return at, fmt.Errorf("rdma: batch write %s: %w", r.Raddr, err)
		}
		ackEnd := transferResp(target, qp.node, devEnd, headerBytes)
		if ackEnd > last {
			last = ackEnd
		}
	}
	qp.node.fabric.clock.Observe(last)
	return last, nil
}
