package rdma

import (
	"fmt"
	"sync"

	"gengar/internal/simnet"
)

// sendQueueDepth bounds the number of in-flight two-sided messages on a
// queue pair; Send blocks (backpressure) when the peer has this many
// undelivered messages, mirroring RNR flow control.
const sendQueueDepth = 128

// headerBytes approximates the on-wire size of a request that carries no
// payload (one-sided READ request, ACK, atomic request).
const headerBytes = 32

// message is one two-sided delivery: a private copy of the payload plus
// its simulated arrival instant at the receiver NIC.
type message struct {
	data    []byte
	arrival simnet.Time
}

// QP is a reliable-connected queue pair. One-sided operations (Read,
// Write, CompareAndSwap, FetchAdd) execute against the peer's registered
// memory without involving the peer's CPU. Two-sided Send/Recv exchange
// messages and do require the peer to call Recv.
//
// A QP is safe for concurrent use, but concurrent operations may complete
// in any order (applications that need ordering use one QP per actor, as
// on real hardware).
type QP struct {
	node *Node
	// initRes serializes this queue pair's *initiations*: the software
	// cost of building a WQE and ringing the doorbell is paid per
	// initiator, not on a node-global engine — two actors on one machine
	// post to their own QPs in parallel, as on real hardware.
	initRes *simnet.Resource

	mu     sync.Mutex
	peer   *QP
	inbox  chan message
	closed bool
}

// NewQP creates an unconnected queue pair on the node.
func (n *Node) NewQP() *QP {
	return &QP{
		node:    n,
		initRes: simnet.NewResource(n.id + "/qp-sq"),
		inbox:   make(chan message, sendQueueDepth),
	}
}

// Connect pairs qp with peer bidirectionally. Both ends must be
// unconnected and on the same fabric.
func (qp *QP) Connect(peer *QP) error {
	if peer == nil || peer == qp {
		return fmt.Errorf("rdma: connect %s to itself or nil", qp.node.id)
	}
	if qp.node.fabric != peer.node.fabric {
		return fmt.Errorf("rdma: connect across fabrics (%s, %s)", qp.node.id, peer.node.id)
	}
	// Lock in address order to avoid deadlock with a concurrent reverse
	// Connect.
	first, second := qp, peer
	if fmt.Sprintf("%p", first) > fmt.Sprintf("%p", second) {
		first, second = second, first
	}
	first.mu.Lock()
	defer first.mu.Unlock()
	//gengar:lint-ignore lock-order both ends lock in address order, so concurrent reverse Connects cannot deadlock
	second.mu.Lock()
	defer second.mu.Unlock()
	if qp.closed || peer.closed {
		return ErrQPClosed
	}
	if qp.peer != nil || peer.peer != nil {
		return fmt.Errorf("rdma: queue pair already connected")
	}
	qp.peer = peer
	peer.peer = qp
	return nil
}

// Close tears the QP down; blocked Recv calls return ErrQPClosed.
// Closing is idempotent.
func (qp *QP) Close() {
	qp.mu.Lock()
	defer qp.mu.Unlock()
	if qp.closed {
		return
	}
	qp.closed = true
	close(qp.inbox)
}

// Node returns the local node the QP is attached to.
func (qp *QP) Node() *Node { return qp.node }

// remote returns the connected peer or an error.
func (qp *QP) remote() (*QP, error) {
	qp.mu.Lock()
	defer qp.mu.Unlock()
	if qp.closed {
		return nil, ErrQPClosed
	}
	if qp.peer == nil {
		return nil, fmt.Errorf("rdma: qp on %s: %w", qp.node.id, ErrNotConnected)
	}
	return qp.peer, nil
}

// transferInit charges one direction of the wire for a message this QP
// initiates: the QP's own send queue is a contended resource (posting
// software plus per-QP serialization), and the rest of the wire is pure
// latency.
//
// The modeling principle: the only *watermark* resources on the network
// path are per-initiator, where arrivals are ordered by construction
// (one actor's operations chain). Node-global engines are deliberately
// NOT watermark resources — messages from independent flows (a client's
// stage, a flusher's write-through, a NIC-generated ACK) carry unrelated
// virtual timestamps, and a shared busy-until watermark would serialize
// a message behind another that merely *carries a later timestamp*:
// phantom queueing with no hardware analogue (NIC engines process tens
// of millions of messages per second, in arrival order). Per-message NIC
// hardware cost (RespPerOp) and serialization are charged as latency;
// traffic volume is accounted per node (TxBytes/RxBytes).
func (qp *QP) transferInit(to *Node, departure simnet.Time, size int) simnet.Time {
	m := qp.node.fabric.model
	_, swEnd := qp.initRes.Acquire(departure, m.PerOp+m.SerializeTime(size))
	return deliver(qp.node, to, swEnd, size)
}

// transferResp is the path of responder-generated messages (ACKs, READ
// responses, atomic responses): the responder NIC emits them in hardware
// with no software involvement, so only the NIC per-message cost,
// serialization and propagation are charged — as latency (see
// transferInit for why).
func transferResp(from, to *Node, departure simnet.Time, size int) simnet.Time {
	m := from.fabric.model
	return deliver(from, to, departure.Add(m.SerializeTime(size)), size)
}

// deliver accounts the message volume and returns the arrival instant:
// NIC per-message cost, propagation, and receive DMA.
func deliver(from, to *Node, txEnd simnet.Time, size int) simnet.Time {
	m := from.fabric.model
	from.txBytes.Add(int64(size))
	to.rxBytes.Add(int64(size))
	return txEnd.Add(m.RespPerOp + m.Propagation + m.SerializeTime(size))
}

// Write performs a one-sided RDMA WRITE of src into the remote address.
// The returned instant is when the data has reached the target device's
// persistence domain and the ACK has returned to the initiator — i.e. the
// "write + remote flush" cycle a DSHM system must pay for a durable
// remote store. at is the initiator's current simulated time.
func (qp *QP) Write(at simnet.Time, src []byte, raddr RemoteAddr) (simnet.Time, error) {
	qp.node.fabric.verbWrites.Inc()
	peer, err := qp.remote()
	if err != nil {
		return at, err
	}
	target := peer.node
	if raddr.Region.Node != target.id {
		return at, fmt.Errorf("rdma: write to %s via qp connected to %s", raddr.Region.Node, target.id)
	}
	mr, err := target.lookupMR(raddr.Region.RKey, AccessRemoteWrite, raddr.Offset, len(src))
	if err != nil {
		return at, err
	}
	landed := qp.transferInit(target, at, headerBytes+len(src))
	devEnd, err := mr.dev.Write(landed, mr.base+raddr.Offset, src)
	if err != nil {
		return at, fmt.Errorf("rdma: write %s: %w", raddr, err)
	}
	ackEnd := transferResp(target, qp.node, devEnd, headerBytes)
	qp.node.fabric.clock.Observe(ackEnd)
	return ackEnd, nil
}

// Read performs a one-sided RDMA READ filling dst from the remote
// address and returns the completion instant at the initiator.
func (qp *QP) Read(at simnet.Time, dst []byte, raddr RemoteAddr) (simnet.Time, error) {
	qp.node.fabric.verbReads.Inc()
	peer, err := qp.remote()
	if err != nil {
		return at, err
	}
	target := peer.node
	if raddr.Region.Node != target.id {
		return at, fmt.Errorf("rdma: read from %s via qp connected to %s", raddr.Region.Node, target.id)
	}
	mr, err := target.lookupMR(raddr.Region.RKey, AccessRemoteRead, raddr.Offset, len(dst))
	if err != nil {
		return at, err
	}
	reqLanded := qp.transferInit(target, at, headerBytes)
	devEnd, err := mr.dev.Read(reqLanded, mr.base+raddr.Offset, dst)
	if err != nil {
		return at, fmt.Errorf("rdma: read %s: %w", raddr, err)
	}
	respEnd := transferResp(target, qp.node, devEnd, headerBytes+len(dst))
	qp.node.fabric.clock.Observe(respEnd)
	return respEnd, nil
}

// CompareAndSwap performs a one-sided 8-byte atomic compare-and-swap on
// the remote address and returns the value observed there before the
// operation. The swap happened iff prev == old.
func (qp *QP) CompareAndSwap(at simnet.Time, raddr RemoteAddr, old, new uint64) (prev uint64, end simnet.Time, err error) {
	qp.node.fabric.verbCAS.Inc()
	peer, err := qp.remote()
	if err != nil {
		return 0, at, err
	}
	target := peer.node
	mr, err := target.lookupMR(raddr.Region.RKey, AccessRemoteAtomic, raddr.Offset, 8)
	if err != nil {
		return 0, at, err
	}
	reqLanded := qp.transferInit(target, at, headerBytes)
	prev, devEnd, err := mr.dev.CompareAndSwap64(reqLanded, mr.base+raddr.Offset, old, new)
	if err != nil {
		return 0, at, fmt.Errorf("rdma: cas %s: %w", raddr, err)
	}
	respEnd := transferResp(target, qp.node, devEnd, headerBytes)
	qp.node.fabric.clock.Observe(respEnd)
	return prev, respEnd, nil
}

// FetchAdd performs a one-sided 8-byte atomic fetch-and-add on the remote
// address and returns the pre-add value.
func (qp *QP) FetchAdd(at simnet.Time, raddr RemoteAddr, delta uint64) (prev uint64, end simnet.Time, err error) {
	qp.node.fabric.verbFetchAdd.Inc()
	peer, err := qp.remote()
	if err != nil {
		return 0, at, err
	}
	target := peer.node
	mr, err := target.lookupMR(raddr.Region.RKey, AccessRemoteAtomic, raddr.Offset, 8)
	if err != nil {
		return 0, at, err
	}
	reqLanded := qp.transferInit(target, at, headerBytes)
	prev, devEnd, err := mr.dev.FetchAdd64(reqLanded, mr.base+raddr.Offset, delta)
	if err != nil {
		return 0, at, fmt.Errorf("rdma: fetch-add %s: %w", raddr, err)
	}
	respEnd := transferResp(target, qp.node, devEnd, headerBytes)
	qp.node.fabric.clock.Observe(respEnd)
	return prev, respEnd, nil
}

// Send transmits payload as a two-sided message. It returns when the
// message is accepted into the peer's receive queue (blocking in wall
// time if the peer's queue is full) with the local send-completion
// instant. The payload is copied; the caller may reuse it immediately.
func (qp *QP) Send(at simnet.Time, payload []byte) (end simnet.Time, err error) {
	qp.node.fabric.verbSends.Inc()
	peer, err := qp.remote()
	if err != nil {
		return at, err
	}
	landed := qp.transferInit(peer.node, at, headerBytes+len(payload))
	data := make([]byte, len(payload))
	copy(data, payload)

	defer func() {
		// Sending on a closed inbox panics; convert to ErrQPClosed so a
		// racing Close is an error, not a crash.
		if recover() != nil {
			end, err = at, ErrQPClosed
		}
	}()
	peer.inbox <- message{data: data, arrival: landed}
	qp.node.fabric.clock.Observe(landed)
	// Send completion at the initiator: tx done + ack.
	return landed.Add(qp.node.fabric.model.Propagation), nil
}

// Recv blocks until a message arrives on this QP and returns its payload
// and simulated arrival instant. It returns ErrQPClosed once the QP is
// closed and drained.
func (qp *QP) Recv() ([]byte, simnet.Time, error) {
	m, ok := <-qp.inbox
	if !ok {
		return nil, 0, ErrQPClosed
	}
	return m.data, m.arrival, nil
}

// TryRecv is a non-blocking Recv; ok reports whether a message was
// available.
func (qp *QP) TryRecv() (payload []byte, at simnet.Time, ok bool, err error) {
	select {
	case m, open := <-qp.inbox:
		if !open {
			return nil, 0, false, ErrQPClosed
		}
		return m.data, m.arrival, true, nil
	default:
		return nil, 0, false, nil
	}
}
