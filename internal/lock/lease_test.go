package lock

import (
	"errors"
	"sync"
	"testing"
	"time"

	"gengar/internal/simnet"
)

func TestLeaseAcquireReleaseCycle(t *testing.T) {
	e := newEnv(t, 64)
	c := e.client(t, "c1", 1, 8)
	a := addr(4096)

	h, end, err := c.LockExclusiveLease(0, a, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Held() || end <= 0 {
		t.Fatalf("handle %+v end %v", h, end)
	}
	if _, err := c.UnlockExclusiveLease(end, a, h); err != nil {
		t.Fatalf("unlock: %v", err)
	}
	// Reacquire immediately.
	if _, _, err := c.LockExclusiveLease(end, a, time.Millisecond); err != nil {
		t.Fatalf("reacquire: %v", err)
	}
}

func TestLeaseValidation(t *testing.T) {
	e := newEnv(t, 64)
	c := e.client(t, "c1", 1, 8)
	a := addr(64)
	if _, _, err := c.LockExclusiveLease(0, a, 0); err == nil {
		t.Fatal("zero lease accepted")
	}
	if _, err := c.UnlockExclusiveLease(0, a, LeaseHandle{}); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("unlock without lease: %v", err)
	}
	if _, err := c.RenewLease(0, a, &LeaseHandle{}, time.Millisecond); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("renew without lease: %v", err)
	}
	if _, err := c.RenewLease(0, a, nil, time.Millisecond); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("renew with nil handle: %v", err)
	}
	h, _, err := c.LockExclusiveLease(0, a, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RenewLease(0, a, &h, 0); err == nil {
		t.Fatal("zero renew accepted")
	}
}

func TestLeaseBlocksWhileValid(t *testing.T) {
	e := newEnv(t, 64)
	holder := e.client(t, "h", 1, 8)
	thief := e.client(t, "t", 2, 4)
	a := addr(4096)
	if _, _, err := holder.LockExclusiveLease(0, a, time.Second); err != nil {
		t.Fatal(err)
	}
	// Lease valid for a simulated second; a contender at small simulated
	// times must time out, not steal.
	if _, _, err := thief.LockExclusiveLease(0, a, time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("steal of valid lease: %v", err)
	}
}

func TestLeaseStolenAfterExpiry(t *testing.T) {
	e := newEnv(t, 64)
	victim := e.client(t, "v", 1, 8)
	thief := e.client(t, "t", 2, 8)
	a := addr(4096)
	h, _, err := victim.LockExclusiveLease(0, a, 100*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	// The victim "crashes" (never renews). At a simulated instant past
	// the expiry, the thief steals in one attempt cycle.
	at := simnet.Time(0).Add(time.Millisecond)
	h2, _, err := thief.LockExclusiveLease(at, a, time.Millisecond)
	if err != nil {
		t.Fatalf("steal failed: %v", err)
	}
	if !h2.Held() {
		t.Fatal("thief has no handle")
	}
	// The victim's release and renew now report the loss.
	if _, err := victim.UnlockExclusiveLease(at, a, h); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("victim unlock: %v", err)
	}
	if _, err := victim.RenewLease(at, a, &h, time.Millisecond); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("victim renew: %v", err)
	}
	// The thief's release works.
	if _, err := thief.UnlockExclusiveLease(at.Add(time.Millisecond), a, h2); err != nil {
		t.Fatalf("thief unlock: %v", err)
	}
}

func TestRenewExtendsLease(t *testing.T) {
	e := newEnv(t, 64)
	holder := e.client(t, "h", 1, 8)
	thief := e.client(t, "t", 2, 4)
	a := addr(4096)
	h, _, err := holder.LockExclusiveLease(0, a, 200*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	// Renew at 150µs out to +1ms.
	if _, err := holder.RenewLease(simnet.Time(0).Add(150*time.Microsecond), a, &h, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// At 500µs (past the original expiry, inside the renewed one) the
	// thief must fail.
	if _, _, err := thief.LockExclusiveLease(simnet.Time(0).Add(500*time.Microsecond), a, time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("steal of renewed lease: %v", err)
	}
	// Release with the updated handle.
	if _, err := holder.UnlockExclusiveLease(simnet.Time(0).Add(600*time.Microsecond), a, h); err != nil {
		t.Fatal(err)
	}
}

func TestLeaseStealRaceExactlyOneWinner(t *testing.T) {
	e := newEnv(t, 64)
	victim := e.client(t, "v", 1, 8)
	a := addr(4096)
	if _, _, err := victim.LockExclusiveLease(0, a, time.Microsecond); err != nil {
		t.Fatal(err)
	}
	const thieves = 6
	at := simnet.Time(0).Add(time.Millisecond)
	var wg sync.WaitGroup
	wins := make(chan LeaseHandle, thieves)
	for i := 0; i < thieves; i++ {
		c := e.client(t, string(rune('A'+i)), uint32(i+10), 64)
		wg.Add(1)
		go func(c *Client) {
			defer wg.Done()
			if h, _, err := c.LockExclusiveLease(at, a, time.Hour); err == nil {
				wins <- h
			}
		}(c)
	}
	wg.Wait()
	close(wins)
	// Everyone eventually "wins" only if earlier winners release — they
	// do not here, and leases are an hour long, so exactly one succeeds.
	if got := len(wins); got != 1 {
		t.Fatalf("%d thieves acquired a single expired lock", got)
	}
}

func TestLeaseWordEncoding(t *testing.T) {
	w := leaseWord(0xABCD, simnet.Time(12345))
	if w>>leaseOwnerShift != 0xABCD {
		t.Fatalf("owner bits: %#x", w)
	}
	if simnet.Time(w&leaseExpiryMask) != 12345 {
		t.Fatalf("expiry bits: %#x", w)
	}
	// Owner IDs truncate to 16 bits by contract.
	if leaseWord(0x1ABCD, 1) != leaseWord(0xABCD, 1) {
		t.Fatal("owner truncation")
	}
}
