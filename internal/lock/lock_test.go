package lock

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"gengar/internal/hmem"
	"gengar/internal/rdma"
	"gengar/internal/region"
	"gengar/internal/simnet"
)

type env struct {
	fabric *rdma.Fabric
	server *rdma.Node
	geo    Geometry
	dev    *hmem.Device
}

func newEnv(t *testing.T, slots int) *env {
	t.Helper()
	f, err := rdma.NewFabric(simnet.LinkModel{
		PerOp:       600 * time.Nanosecond,
		Propagation: 300 * time.Nanosecond,
		BytesPerSec: 12.5e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	sn, _ := f.AddNode("server")
	dev, err := hmem.NewDevice("dram", 1<<20, hmem.DRAMProfile())
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := NewTable(dev, 4096, slots)
	if err != nil {
		t.Fatal(err)
	}
	mr, err := sn.RegisterMR(dev, 0, dev.Size(), rdma.AccessAll)
	if err != nil {
		t.Fatal(err)
	}
	return &env{
		fabric: f,
		server: sn,
		dev:    dev,
		geo:    Geometry{Handle: mr.Handle(), Base: tbl.Base(), Slots: tbl.Slots()},
	}
}

func (e *env) client(t *testing.T, name string, owner uint32, retries int) *Client {
	t.Helper()
	cn, err := e.fabric.AddNode(name)
	if err != nil {
		t.Fatal(err)
	}
	cq, sq := cn.NewQP(), e.server.NewQP()
	if err := cq.Connect(sq); err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(cq, e.geo, owner, retries, 100*time.Nanosecond)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func addr(off int64) region.GAddr { return region.MustGAddr(1, off) }

func TestNewTableValidation(t *testing.T) {
	dev, _ := hmem.NewDevice("d", 1<<16, hmem.DRAMProfile())
	if _, err := NewTable(nil, 0, 16); err == nil {
		t.Fatal("nil device accepted")
	}
	if _, err := NewTable(dev, 0, 15); err == nil {
		t.Fatal("non-pow2 slots accepted")
	}
	if _, err := NewTable(dev, 0, 0); err == nil {
		t.Fatal("zero slots accepted")
	}
	if _, err := NewTable(dev, 1<<16-8, 16); err == nil {
		t.Fatal("overflowing table accepted")
	}
	tbl, err := NewTable(dev, 128, 16)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Base() != 128 || tbl.Slots() != 16 || tbl.Size() != 16*SlotBytes {
		t.Fatalf("geometry: %d %d %d", tbl.Base(), tbl.Slots(), tbl.Size())
	}
}

func TestNewTableZeroesMemory(t *testing.T) {
	dev, _ := hmem.NewDevice("d", 1<<12, hmem.DRAMProfile())
	if err := dev.WriteRaw(0, []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}); err != nil {
		t.Fatal(err)
	}
	if _, err := NewTable(dev, 0, 16); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8)
	if err := dev.ReadRaw(0, got); err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("table not zeroed")
		}
	}
}

func TestNewClientValidation(t *testing.T) {
	e := newEnv(t, 16)
	cn, _ := e.fabric.AddNode("c")
	q := cn.NewQP()
	if _, err := NewClient(q, e.geo, 0, 0, 0); err == nil {
		t.Fatal("zero owner accepted")
	}
	bad := e.geo
	bad.Slots = 3
	if _, err := NewClient(q, bad, 1, 0, 0); err == nil {
		t.Fatal("bad slots accepted")
	}
}

func TestExclusiveLockCycle(t *testing.T) {
	e := newEnv(t, 64)
	c1 := e.client(t, "c1", 1, 8)
	c2 := e.client(t, "c2", 2, 8)
	a := addr(4096)

	end, err := c1.LockExclusive(0, a)
	if err != nil {
		t.Fatalf("lock: %v", err)
	}
	if end <= 0 {
		t.Fatal("lock charged no time")
	}
	// Second writer times out while held.
	if _, err := c2.LockExclusive(0, a); !errors.Is(err, ErrTimeout) {
		t.Fatalf("second writer: %v", err)
	}
	// Non-owner release rejected.
	if _, err := c2.UnlockExclusive(0, a); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("non-owner unlock: %v", err)
	}
	if _, err := c1.UnlockExclusive(end, a); err != nil {
		t.Fatalf("unlock: %v", err)
	}
	// Now c2 can acquire.
	if _, err := c2.LockExclusive(0, a); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

func TestUnlockExclusiveNotHeld(t *testing.T) {
	e := newEnv(t, 64)
	c := e.client(t, "c1", 1, 8)
	if _, err := c.UnlockExclusive(0, addr(64)); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("unlock of free lock: %v", err)
	}
}

func TestSharedLocksCoexist(t *testing.T) {
	e := newEnv(t, 64)
	c1 := e.client(t, "c1", 1, 8)
	c2 := e.client(t, "c2", 2, 8)
	a := addr(4096)
	if _, err := c1.LockShared(0, a); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.LockShared(0, a); err != nil {
		t.Fatal(err)
	}
	// Writer blocked while readers hold.
	w := e.client(t, "w", 3, 4)
	if _, err := w.LockExclusive(0, a); !errors.Is(err, ErrTimeout) {
		t.Fatalf("writer with readers: %v", err)
	}
	if _, err := c1.UnlockShared(0, a); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.UnlockShared(0, a); err != nil {
		t.Fatal(err)
	}
	if _, err := w.LockExclusive(0, a); err != nil {
		t.Fatalf("writer after readers: %v", err)
	}
}

func TestReaderBlockedByWriterBacksOut(t *testing.T) {
	e := newEnv(t, 64)
	w := e.client(t, "w", 1, 8)
	r := e.client(t, "r", 2, 4)
	a := addr(4096)
	if _, err := w.LockExclusive(0, a); err != nil {
		t.Fatal(err)
	}
	if _, err := r.LockShared(0, a); !errors.Is(err, ErrTimeout) {
		t.Fatalf("reader with writer: %v", err)
	}
	if _, err := w.UnlockExclusive(0, a); err != nil {
		t.Fatal(err)
	}
	// The failed reader's back-outs must have left the count at zero:
	// a writer can acquire immediately (one attempt).
	w2 := e.client(t, "w2", 3, 1)
	if _, err := w2.LockExclusive(0, a); err != nil {
		t.Fatalf("reader backout leaked count: %v", err)
	}
}

func TestMutualExclusionConcurrent(t *testing.T) {
	// Property: a counter protected by the exclusive lock never loses
	// updates across concurrent clients.
	e := newEnv(t, 64)
	a := addr(4096)
	var counter int64 // protected by the distributed lock
	const clients, per = 6, 50
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		c := e.client(t, string(rune('a'+i)), uint32(i+1), 0)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				if _, err := c.LockExclusive(0, a); err != nil {
					t.Errorf("lock: %v", err)
					return
				}
				counter++
				if _, err := c.UnlockExclusive(0, a); err != nil {
					t.Errorf("unlock: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if counter != clients*per {
		t.Fatalf("lost updates: %d, want %d", counter, clients*per)
	}
}

func TestVersionWords(t *testing.T) {
	e := newEnv(t, 64)
	c := e.client(t, "c1", 1, 8)
	a := addr(4096)
	v, _, err := c.ReadVersion(0, a)
	if err != nil || v != 0 {
		t.Fatalf("initial version: %d %v", v, err)
	}
	nv, _, err := c.BumpVersion(0, a)
	if err != nil || nv != 1 {
		t.Fatalf("bump: %d %v", nv, err)
	}
	v, _, err = c.ReadVersion(0, a)
	if err != nil || v != 1 {
		t.Fatalf("after bump: %d %v", v, err)
	}
	// Version word is independent of the lock word.
	if _, err := c.LockExclusive(0, a); err != nil {
		t.Fatalf("lock after bumps: %v", err)
	}
}

func TestSlotIndexDistributionProperty(t *testing.T) {
	// Property: slot index is in range and deterministic.
	f := func(raw uint64, pow uint8) bool {
		slots := 1 << (pow%10 + 1)
		a := region.GAddr(raw)
		i := slotIndex(a, slots)
		return i >= 0 && i < int64(slots) && i == slotIndex(a, slots)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Sequential 64B-spaced addresses spread over the table (not all in
	// one slot).
	slots := 256
	seen := make(map[int64]bool)
	for i := int64(0); i < 256; i++ {
		seen[slotIndex(addr(i*64), slots)] = true
	}
	if len(seen) < slots/4 {
		t.Fatalf("poor slot spread: %d distinct of %d", len(seen), slots)
	}
}

func TestHashCollisionCoarsensNotBreaks(t *testing.T) {
	// With a 1-slot table every address collides: locking object A blocks
	// object B (coarse), and release unblocks it (correct).
	e := newEnv(t, 1)
	c1 := e.client(t, "c1", 1, 4)
	c2 := e.client(t, "c2", 2, 4)
	if _, err := c1.LockExclusive(0, addr(64)); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.LockExclusive(0, addr(128)); !errors.Is(err, ErrTimeout) {
		t.Fatalf("collision did not block: %v", err)
	}
	if _, err := c1.UnlockExclusive(0, addr(64)); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.LockExclusive(0, addr(128)); err != nil {
		t.Fatal(err)
	}
}

func TestBackoffIncreasesVirtualTime(t *testing.T) {
	e := newEnv(t, 64)
	holder := e.client(t, "h", 1, 8)
	a := addr(64)
	if _, err := holder.LockExclusive(0, a); err != nil {
		t.Fatal(err)
	}
	spinner := e.client(t, "s", 2, 10)
	end, err := spinner.LockExclusive(0, a)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("expected timeout, got %v", err)
	}
	// 10 failed attempts with growing backoff must advance virtual time
	// well past 10 bare CAS round trips (~3µs each).
	if simnet.Duration(end) < 10*time.Microsecond {
		t.Fatalf("backoff too small: %v", simnet.Duration(end))
	}
}
