package lock

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"gengar/internal/region"
)

// Lease-table errors.
var (
	// ErrLeaseTimeout reports that an acquire waited out its budget.
	ErrLeaseTimeout = errors.New("lock: lease acquire timed out")
	// ErrLeaseNotHeld reports a release of a lock the session does not
	// hold.
	ErrLeaseNotHeld = errors.New("lock: lease not held by session")
)

// LeaseTable is the server-mediated reader/writer lock table with
// leases. Every grant carries an expiry; an expired grant may be stolen
// by any contender, which is how a real deployment survives clients that
// crash while holding locks. It shares slot hashing (SlotIndex) with the
// one-sided protocol, so both mechanisms agree on lock granularity.
//
// LeaseTable is wall-clock timed: leases protect against real client
// processes vanishing, which only wall time can observe.
type LeaseTable struct {
	slots int

	mu    sync.Mutex
	cond  *sync.Cond
	words map[int64]*tableWord
	now   func() time.Time // injectable for tests

	// onWriterRelease runs (under mu) when an exclusive grant is
	// released — the engine's hook to bump the slot's version word so
	// readers observe that the object changed.
	onWriterRelease func(region.GAddr)
}

type tableWord struct {
	writer       uint64 // session holding exclusive; 0 if none
	writerExpiry time.Time
	readers      map[uint64]time.Time // session -> lease expiry
}

// NewLeaseTable builds a lease table with the given power-of-two slot
// count. now is injectable for tests; nil selects time.Now.
func NewLeaseTable(slots int, now func() time.Time) (*LeaseTable, error) {
	if slots <= 0 || slots&(slots-1) != 0 {
		return nil, fmt.Errorf("lock: lease slots %d not a power of two", slots)
	}
	if now == nil {
		now = time.Now
	}
	t := &LeaseTable{slots: slots, words: make(map[int64]*tableWord), now: now}
	t.cond = sync.NewCond(&t.mu)
	return t, nil
}

// OnWriterRelease installs a hook that runs whenever an exclusive grant
// is released. Install before traffic.
func (t *LeaseTable) OnWriterRelease(fn func(region.GAddr)) {
	t.mu.Lock()
	t.onWriterRelease = fn
	t.mu.Unlock()
}

// Slots returns the table's slot count.
func (t *LeaseTable) Slots() int { return t.slots }

func (t *LeaseTable) word(addr region.GAddr) *tableWord {
	i := SlotIndex(addr, t.slots)
	w := t.words[i]
	if w == nil {
		w = &tableWord{readers: make(map[uint64]time.Time)}
		t.words[i] = w
	}
	return w
}

// reap drops expired grants on w at instant now.
func (w *tableWord) reap(now time.Time) {
	if w.writer != 0 && now.After(w.writerExpiry) {
		w.writer = 0
	}
	for s, exp := range w.readers {
		if now.After(exp) {
			delete(w.readers, s)
		}
	}
}

// LockExclusive grants session the write lock covering addr, waiting up
// to timeout for holders (or their lease expiries).
func (t *LeaseTable) LockExclusive(session uint64, addr region.GAddr, lease, timeout time.Duration) error {
	deadline := t.now().Add(timeout)
	t.mu.Lock()
	defer t.mu.Unlock()
	w := t.word(addr)
	for {
		now := t.now()
		w.reap(now)
		if w.writer == 0 && len(w.readers) == 0 {
			w.writer = session
			w.writerExpiry = now.Add(lease)
			return nil
		}
		if w.writer == session {
			// Lease renewal for the current holder.
			w.writerExpiry = now.Add(lease)
			return nil
		}
		if now.After(deadline) {
			return fmt.Errorf("%w: exclusive %v", ErrLeaseTimeout, addr)
		}
		t.wait(deadline)
	}
}

// LockShared grants session a read lock covering addr.
func (t *LeaseTable) LockShared(session uint64, addr region.GAddr, lease, timeout time.Duration) error {
	deadline := t.now().Add(timeout)
	t.mu.Lock()
	defer t.mu.Unlock()
	w := t.word(addr)
	for {
		now := t.now()
		w.reap(now)
		if w.writer == 0 {
			w.readers[session] = now.Add(lease)
			return nil
		}
		if now.After(deadline) {
			return fmt.Errorf("%w: shared %v", ErrLeaseTimeout, addr)
		}
		t.wait(deadline)
	}
}

// wait blocks until a release broadcast or (approximately) the deadline;
// a ticker bounds the wait so lease expiries are eventually observed.
func (t *LeaseTable) wait(deadline time.Time) {
	done := make(chan struct{})
	go func() {
		select {
		case <-time.After(10 * time.Millisecond):
			t.cond.Broadcast()
		case <-done:
		}
	}()
	t.cond.Wait()
	close(done)
}

// UnlockExclusive releases session's write lock covering addr.
func (t *LeaseTable) UnlockExclusive(session uint64, addr region.GAddr) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	w := t.word(addr)
	w.reap(t.now())
	if w.writer != session {
		return fmt.Errorf("%w: exclusive %v session %d", ErrLeaseNotHeld, addr, session)
	}
	w.writer = 0
	if t.onWriterRelease != nil {
		t.onWriterRelease(addr)
	}
	t.cond.Broadcast()
	return nil
}

// UnlockShared releases session's read lock covering addr.
func (t *LeaseTable) UnlockShared(session uint64, addr region.GAddr) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	w := t.word(addr)
	w.reap(t.now())
	if _, ok := w.readers[session]; !ok {
		return fmt.Errorf("%w: shared %v session %d", ErrLeaseNotHeld, addr, session)
	}
	delete(w.readers, session)
	t.cond.Broadcast()
	return nil
}
