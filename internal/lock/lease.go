package lock

import (
	"errors"
	"fmt"

	"gengar/internal/region"
	"gengar/internal/simnet"
)

// Lease-based exclusive locking: the crash-recovery variant of the
// one-sided protocol, for deployments where a client can die holding a
// lock. The expiry is embedded in the lock word itself —
//
//	word = owner(16 bits) << 48 | expiry(48 bits of simulated ns)
//
// — so acquisition, expiry inspection and stealing are all single-CAS
// atomic: a contender that observes a held word whose expiry has passed
// steals it by CAS-ing on the *exact stale value it read*, and two
// racing thieves serialize on the word. There is no separate expiry
// write and therefore no window in which a fresh lock looks stealable.
//
// The cost of the trick is the discipline: lease locks and the
// reader/writer locks (LockExclusive/LockShared) interpret the same word
// differently and must not be mixed on one pool; the owner ID must fit
// 16 bits; and only exclusive leases are offered (a shared count cannot
// share the word with an expiry). Holders renew before expiry or risk
// ErrLeaseLost on their next operation — the standard lease contract,
// mirrored by the TCP deployment mode (internal/tcpnet).
const (
	leaseOwnerShift = 48
	leaseExpiryMask = uint64(1)<<leaseOwnerShift - 1
)

// ErrLeaseLost is returned when a holder's lease expired and the lock
// was stolen (or renewed concurrently) before its release or renewal.
var ErrLeaseLost = errors.New("lock: lease expired and lock was stolen")

// LeaseHandle is the holder's proof of ownership: the exact word it
// installed. Release and renewal CAS against it, so a stolen lock is
// detected rather than silently double-released.
type LeaseHandle struct {
	word uint64
}

// Held reports whether the handle refers to an acquired lease.
func (h LeaseHandle) Held() bool { return h.word != 0 }

func leaseWord(owner uint32, expiry simnet.Time) uint64 {
	return uint64(owner&0xFFFF)<<leaseOwnerShift | uint64(expiry)&leaseExpiryMask
}

// LockExclusiveLease acquires the write lock covering addr with the
// given lease duration, stealing expired leases from crashed holders.
// The returned handle must be presented to RenewLease and
// UnlockExclusiveLease.
func (c *Client) LockExclusiveLease(at simnet.Time, addr region.GAddr, lease simnet.Duration) (LeaseHandle, simnet.Time, error) {
	if lease <= 0 {
		return LeaseHandle{}, at, fmt.Errorf("lock: non-positive lease %v", lease)
	}
	word := c.geo.lockWordAddr(addr)
	now := at
	for i := 0; i < c.retries; i++ {
		want := leaseWord(c.owner, now.Add(lease))
		prev, end, err := c.qp.CompareAndSwap(now, word, 0, want)
		if err != nil {
			return LeaseHandle{}, end, fmt.Errorf("lock: lease exclusive %v: %w", addr, err)
		}
		if prev == 0 {
			return LeaseHandle{word: want}, end, nil
		}
		// Held. If the holder's lease has lapsed, steal on the exact
		// observed value.
		if expiry := simnet.Time(prev & leaseExpiryMask); end.After(expiry) {
			steal := leaseWord(c.owner, end.Add(lease))
			prev2, end2, err := c.qp.CompareAndSwap(end, word, prev, steal)
			if err != nil {
				return LeaseHandle{}, end2, fmt.Errorf("lock: lease steal %v: %w", addr, err)
			}
			if prev2 == prev {
				return LeaseHandle{word: steal}, end2, nil
			}
			end = end2 // lost the steal race; retry from fresh state
		}
		now = c.backoffAt(end, i)
	}
	return LeaseHandle{}, now, fmt.Errorf("%w: lease exclusive %v", ErrTimeout, addr)
}

// RenewLease extends the holder's lease, updating the handle in place.
// It fails with ErrLeaseLost if the lock was stolen.
func (c *Client) RenewLease(at simnet.Time, addr region.GAddr, h *LeaseHandle, lease simnet.Duration) (simnet.Time, error) {
	if h == nil || !h.Held() {
		return at, fmt.Errorf("%w: renew without a held lease", ErrNotOwner)
	}
	if lease <= 0 {
		return at, fmt.Errorf("lock: non-positive lease %v", lease)
	}
	word := c.geo.lockWordAddr(addr)
	want := leaseWord(c.owner, at.Add(lease))
	prev, end, err := c.qp.CompareAndSwap(at, word, h.word, want)
	if err != nil {
		return end, fmt.Errorf("lock: renew %v: %w", addr, err)
	}
	if prev != h.word {
		return end, fmt.Errorf("%w: renew %v", ErrLeaseLost, addr)
	}
	h.word = want
	return end, nil
}

// UnlockExclusiveLease releases a leased lock. It fails with
// ErrLeaseLost if the lease expired and another client stole the lock —
// the caller's critical section may have been violated and it must not
// assume its writes were exclusive.
func (c *Client) UnlockExclusiveLease(at simnet.Time, addr region.GAddr, h LeaseHandle) (simnet.Time, error) {
	if !h.Held() {
		return at, fmt.Errorf("%w: release without a held lease", ErrNotOwner)
	}
	word := c.geo.lockWordAddr(addr)
	prev, end, err := c.qp.CompareAndSwap(at, word, h.word, 0)
	if err != nil {
		return end, fmt.Errorf("lock: lease unlock %v: %w", addr, err)
	}
	if prev != h.word {
		return end, fmt.Errorf("%w: unlock %v", ErrLeaseLost, addr)
	}
	return end, nil
}
