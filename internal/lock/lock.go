// Package lock provides Gengar's multi-user consistency mechanism:
// reader/writer locks implemented with one-sided RDMA atomics against a
// lock table hosted in the home server's DRAM, plus per-object version
// words bumped by writers so readers can detect concurrent updates.
//
// The lock word protocol is the classic one-sided scheme (as in DrTM and
// Sherman): the high 32 bits hold the exclusive owner's ID (zero when
// unowned) and the low 32 bits the shared-reader count.
//
//   - exclusive acquire: CAS(word, 0, owner<<32), retrying on failure;
//   - shared acquire: FETCH_ADD(word, +1), and if the returned word shows
//     a writer, FETCH_ADD(word, -1) to back out and retry;
//   - releases are the inverse CAS / FETCH_ADD.
//
// Objects hash onto a fixed-size table, so two objects may share a slot;
// that coarsens locking but never weakens it. Acquisition is bounded by
// a retry budget, so a stuck lock surfaces as ErrTimeout rather than a
// hang; deployments that must survive clients crashing while holding
// locks use the lease variant (LockExclusiveLease in lease.go), which
// embeds an expiry in the lock word and lets contenders steal lapsed
// leases atomically.
package lock

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"

	"gengar/internal/hmem"
	"gengar/internal/metrics"
	"gengar/internal/rdma"
	"gengar/internal/region"
	"gengar/internal/simnet"
	"gengar/internal/telemetry"
)

// SlotBytes is the per-slot footprint in the lock table: an 8-byte lock
// word followed by an 8-byte version word.
const SlotBytes = 16

// DefaultRetries bounds lock acquisition attempts. It is sized so that
// exhaustion means a genuinely stuck lock (a crashed holder), not a long
// critical section under contention.
const DefaultRetries = 1 << 17

// Errors returned by lock operations.
var (
	// ErrTimeout is returned when the retry budget is exhausted.
	ErrTimeout = errors.New("lock: acquisition retry budget exhausted")
	// ErrNotOwner is returned when releasing an exclusive lock the caller
	// does not hold.
	ErrNotOwner = errors.New("lock: release by non-owner")
)

// Table is the server-side lock table: a window of the server's DRAM
// holding slot words. The server registers it for remote atomics and
// hands clients the region handle.
type Table struct {
	dev   *hmem.Device
	base  int64
	slots int
}

// NewTable lays out a zeroed lock table of the given slot count at base
// within dev. slots must be a power of two.
func NewTable(dev *hmem.Device, base int64, slots int) (*Table, error) {
	if dev == nil {
		return nil, errors.New("lock: nil device")
	}
	if slots <= 0 || slots&(slots-1) != 0 {
		return nil, fmt.Errorf("lock: slot count %d not a power of two", slots)
	}
	if base < 0 || base+int64(slots)*SlotBytes > dev.Size() {
		return nil, fmt.Errorf("lock: table [%d,%d) exceeds device size %d",
			base, base+int64(slots)*SlotBytes, dev.Size())
	}
	zero := make([]byte, int64(slots)*SlotBytes)
	if err := dev.WriteRaw(base, zero); err != nil {
		return nil, err
	}
	return &Table{dev: dev, base: base, slots: slots}, nil
}

// Base returns the table's offset within its device.
func (t *Table) Base() int64 { return t.base }

// Slots returns the table's slot count.
func (t *Table) Slots() int { return t.slots }

// Size returns the table's footprint in bytes.
func (t *Table) Size() int64 { return int64(t.slots) * SlotBytes }

// SlotIndex hashes a global address onto a lock-table slot of a
// power-of-two table — shared by the simulated one-sided protocol and
// the TCP deployment mode so both agree on lock granularity.
func SlotIndex(addr region.GAddr, slots int) int64 { return slotIndex(addr, slots) }

// slotIndex hashes a global address onto a table slot. Objects are
// identified by their base address; a 64-bit mix (splitmix64 finalizer)
// spreads sequential allocations across slots.
func slotIndex(addr region.GAddr, slots int) int64 {
	x := uint64(addr)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x & uint64(slots-1))
}

// versionOffset returns the device offset of the version word covering
// addr.
func (t *Table) versionOffset(addr region.GAddr) int64 {
	return t.base + slotIndex(addr, t.slots)*SlotBytes + 8
}

// ReadVersionRaw fetches the version word covering addr without charging
// device time — the server-local view of what clients ReadVersion.
func (t *Table) ReadVersionRaw(addr region.GAddr) uint64 {
	var b [8]byte
	if err := t.dev.ReadRaw(t.versionOffset(addr), b[:]); err != nil {
		return 0
	}
	return binary.BigEndian.Uint64(b[:])
}

// BumpVersionRaw increments the version word covering addr without
// charging device time. Callers must serialize bumps to the same table
// (the lease table invokes it under its own mutex); concurrent one-sided
// FETCH_ADDs from simulated clients are not expected on tables used this
// way.
func (t *Table) BumpVersionRaw(addr region.GAddr) uint64 {
	off := t.versionOffset(addr)
	var b [8]byte
	if err := t.dev.ReadRaw(off, b[:]); err != nil {
		return 0
	}
	v := binary.BigEndian.Uint64(b[:]) + 1
	binary.BigEndian.PutUint64(b[:], v)
	if err := t.dev.WriteRaw(off, b[:]); err != nil {
		return 0
	}
	return v
}

// Geometry describes a remote lock table to clients: where it lives and
// how to index it.
type Geometry struct {
	Handle rdma.RegionHandle // MR covering the table
	Base   int64             // table start within the MR
	Slots  int
}

// lockWordAddr and versionWordAddr compute remote addresses for a slot.
func (g Geometry) lockWordAddr(addr region.GAddr) rdma.RemoteAddr {
	i := slotIndex(addr, g.Slots)
	return rdma.RemoteAddr{Region: g.Handle, Offset: g.Base + i*SlotBytes}
}

func (g Geometry) versionWordAddr(addr region.GAddr) rdma.RemoteAddr {
	i := slotIndex(addr, g.Slots)
	return rdma.RemoteAddr{Region: g.Handle, Offset: g.Base + i*SlotBytes + 8}
}

// Client performs lock operations against one home server's table using
// one-sided atomics. It is safe for concurrent use; each operation is
// independent.
type Client struct {
	qp      *rdma.QP
	geo     Geometry
	owner   uint32
	retries int
	backoff simnet.Duration

	// Contention telemetry: acquisitions counts successful exclusive and
	// shared acquires; acqRetries counts failed attempts (CAS losses and
	// shared back-outs) — retries per acquisition is the lock-contention
	// signal the evaluation tracks.
	acquisitions metrics.Counter
	acqRetries   metrics.Counter
}

// Acquisitions returns how many exclusive and shared locks this client
// has successfully acquired.
func (c *Client) Acquisitions() int64 { return c.acquisitions.Load() }

// Retries returns how many acquisition attempts failed and were retried
// (CAS losses plus shared-lock back-outs).
func (c *Client) Retries() int64 { return c.acqRetries.Load() }

// RegisterTelemetry exposes the client's contention counters in reg
// under the gengar_lock_* names with the given labels (typically the
// owning client and home server).
func (c *Client) RegisterTelemetry(reg *telemetry.Registry, labels ...telemetry.Label) {
	reg.RegisterCounter("gengar_lock_acquisitions_total", "locks acquired (exclusive and shared)", &c.acquisitions, labels...)
	reg.RegisterCounter("gengar_lock_retries_total", "failed acquisition attempts retried", &c.acqRetries, labels...)
}

// NewClient returns a lock client. owner must be a nonzero fabric-unique
// client ID; retries <= 0 selects DefaultRetries; backoff is the
// simulated delay added between attempts (doubling each retry up to
// 64x).
func NewClient(qp *rdma.QP, geo Geometry, owner uint32, retries int, backoff simnet.Duration) (*Client, error) {
	if owner == 0 {
		return nil, errors.New("lock: owner ID must be nonzero")
	}
	if geo.Slots <= 0 || geo.Slots&(geo.Slots-1) != 0 {
		return nil, fmt.Errorf("lock: bad geometry slots %d", geo.Slots)
	}
	if retries <= 0 {
		retries = DefaultRetries
	}
	return &Client{qp: qp, geo: geo, owner: owner, retries: retries, backoff: backoff}, nil
}

func (c *Client) backoffAt(at simnet.Time, attempt int) simnet.Time {
	if c.backoff <= 0 {
		return at
	}
	shift := attempt
	if shift > 6 {
		shift = 6
	}
	return at.Add(c.backoff << uint(shift))
}

// LockExclusive acquires the write lock covering addr. It returns the
// simulated completion instant.
func (c *Client) LockExclusive(at simnet.Time, addr region.GAddr) (simnet.Time, error) {
	word := c.geo.lockWordAddr(addr)
	want := uint64(c.owner) << 32
	now := at
	for i := 0; i < c.retries; i++ {
		prev, end, err := c.qp.CompareAndSwap(now, word, 0, want)
		if err != nil {
			return end, fmt.Errorf("lock: exclusive %v: %w", addr, err)
		}
		if prev == 0 {
			c.acquisitions.Inc()
			return end, nil
		}
		c.acqRetries.Inc()
		now = c.backoffAt(end, i)
		runtime.Gosched() // let the holder's goroutine make progress
	}
	return now, fmt.Errorf("%w: exclusive %v", ErrTimeout, addr)
}

// UnlockExclusive releases the write lock covering addr; the caller must
// be the owner.
func (c *Client) UnlockExclusive(at simnet.Time, addr region.GAddr) (simnet.Time, error) {
	word := c.geo.lockWordAddr(addr)
	held := uint64(c.owner) << 32
	prev, end, err := c.qp.CompareAndSwap(at, word, held, 0)
	if err != nil {
		return end, fmt.Errorf("lock: unlock exclusive %v: %w", addr, err)
	}
	if prev != held {
		return end, fmt.Errorf("%w: word=%#x owner=%d", ErrNotOwner, prev, c.owner)
	}
	return end, nil
}

// LockShared acquires a read lock covering addr.
func (c *Client) LockShared(at simnet.Time, addr region.GAddr) (simnet.Time, error) {
	word := c.geo.lockWordAddr(addr)
	now := at
	for i := 0; i < c.retries; i++ {
		prev, end, err := c.qp.FetchAdd(now, word, 1)
		if err != nil {
			return end, fmt.Errorf("lock: shared %v: %w", addr, err)
		}
		if prev>>32 == 0 {
			c.acquisitions.Inc()
			return end, nil // no writer; our increment stands
		}
		c.acqRetries.Inc()
		// A writer holds the lock: back out and retry.
		_, end, err = c.qp.FetchAdd(end, word, ^uint64(0))
		if err != nil {
			return end, fmt.Errorf("lock: shared backout %v: %w", addr, err)
		}
		now = c.backoffAt(end, i)
		runtime.Gosched() // let the writer's goroutine make progress
	}
	return now, fmt.Errorf("%w: shared %v", ErrTimeout, addr)
}

// UnlockShared releases a read lock covering addr.
func (c *Client) UnlockShared(at simnet.Time, addr region.GAddr) (simnet.Time, error) {
	word := c.geo.lockWordAddr(addr)
	_, end, err := c.qp.FetchAdd(at, word, ^uint64(0))
	if err != nil {
		return end, fmt.Errorf("lock: unlock shared %v: %w", addr, err)
	}
	return end, nil
}

// ReadVersion fetches the version word covering addr.
func (c *Client) ReadVersion(at simnet.Time, addr region.GAddr) (uint64, simnet.Time, error) {
	prev, end, err := c.qp.FetchAdd(at, c.geo.versionWordAddr(addr), 0)
	if err != nil {
		return 0, end, fmt.Errorf("lock: read version %v: %w", addr, err)
	}
	return prev, end, nil
}

// BumpVersion increments the version word covering addr and returns the
// new version. Writers call it before releasing the exclusive lock so
// readers observe that the object changed.
func (c *Client) BumpVersion(at simnet.Time, addr region.GAddr) (uint64, simnet.Time, error) {
	prev, end, err := c.qp.FetchAdd(at, c.geo.versionWordAddr(addr), 1)
	if err != nil {
		return 0, end, fmt.Errorf("lock: bump version %v: %w", addr, err)
	}
	return prev + 1, end, nil
}
