package lock

import (
	"errors"
	"testing"
	"time"

	"gengar/internal/region"
)

func TestLeaseTableValidation(t *testing.T) {
	if _, err := NewLeaseTable(3, nil); err == nil {
		t.Fatal("non-pow2 lease slots accepted")
	}
	if _, err := NewLeaseTable(0, nil); err == nil {
		t.Fatal("zero lease slots accepted")
	}
}

func TestLeaseRenewalByHolder(t *testing.T) {
	tbl, err := NewLeaseTable(16, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := region.MustGAddr(1, 64)
	if err := tbl.LockExclusive(7, a, 50*time.Millisecond, time.Second); err != nil {
		t.Fatal(err)
	}
	// Re-acquire by the same session renews, never deadlocks.
	if err := tbl.LockExclusive(7, a, 50*time.Millisecond, time.Second); err != nil {
		t.Fatal(err)
	}
	if err := tbl.UnlockExclusive(7, a); err != nil {
		t.Fatal(err)
	}
}

func TestLeaseTableExpiredReaderReaped(t *testing.T) {
	now := time.Now()
	clock := func() time.Time { return now }
	tbl, err := NewLeaseTable(16, clock)
	if err != nil {
		t.Fatal(err)
	}
	a := region.MustGAddr(1, 64)
	if err := tbl.LockShared(1, a, 30*time.Millisecond, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// Advance the injected clock past the lease: a writer gets in.
	now = now.Add(time.Second)
	if err := tbl.LockExclusive(2, a, time.Second, time.Millisecond); err != nil {
		t.Fatalf("writer blocked by expired reader: %v", err)
	}
	// The expired reader's release is now an error.
	if err := tbl.UnlockShared(1, a); !errors.Is(err, ErrLeaseNotHeld) {
		t.Fatalf("expired reader unlock: %v", err)
	}
}

func TestLeaseWriterReleaseHook(t *testing.T) {
	tbl, err := NewLeaseTable(16, nil)
	if err != nil {
		t.Fatal(err)
	}
	var bumped []region.GAddr
	tbl.OnWriterRelease(func(addr region.GAddr) { bumped = append(bumped, addr) })
	a := region.MustGAddr(1, 64)

	// Shared grants never fire the hook.
	if err := tbl.LockShared(1, a, time.Second, time.Second); err != nil {
		t.Fatal(err)
	}
	if err := tbl.UnlockShared(1, a); err != nil {
		t.Fatal(err)
	}
	if len(bumped) != 0 {
		t.Fatalf("hook fired on shared release: %v", bumped)
	}
	// An exclusive release fires it exactly once with the lock address.
	if err := tbl.LockExclusive(2, a, time.Second, time.Second); err != nil {
		t.Fatal(err)
	}
	if err := tbl.UnlockExclusive(2, a); err != nil {
		t.Fatal(err)
	}
	if len(bumped) != 1 || bumped[0] != a {
		t.Fatalf("hook after exclusive release: %v", bumped)
	}
	// A failed release (not the holder) never fires it.
	if err := tbl.UnlockExclusive(3, a); !errors.Is(err, ErrLeaseNotHeld) {
		t.Fatalf("unheld release: %v", err)
	}
	if len(bumped) != 1 {
		t.Fatalf("hook fired on failed release: %v", bumped)
	}
}
