package simnet

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestResourceIdleStart(t *testing.T) {
	r := NewResource("nic")
	start, end := r.Acquire(100, 50)
	if start != 100 || end != 150 {
		t.Fatalf("Acquire = [%v,%v), want [100,150)", start, end)
	}
	if r.Name() != "nic" {
		t.Fatalf("Name = %q", r.Name())
	}
}

func TestResourceQueueing(t *testing.T) {
	r := NewResource("dimm")
	// Two ops arriving at the same instant serialize.
	s1, e1 := r.Acquire(0, 100)
	s2, e2 := r.Acquire(0, 100)
	if s1 != 0 || e1 != 100 {
		t.Fatalf("first op [%v,%v)", s1, e1)
	}
	if s2 != 100 || e2 != 200 {
		t.Fatalf("second op queued wrong: [%v,%v), want [100,200)", s2, e2)
	}
	// A later arrival after the backlog drains starts at its arrival time.
	s3, e3 := r.Acquire(500, 10)
	if s3 != 500 || e3 != 510 {
		t.Fatalf("third op [%v,%v), want [500,510)", s3, e3)
	}
}

func TestResourceNegativeServiceClamped(t *testing.T) {
	r := NewResource("x")
	s, e := r.Acquire(10, -5)
	if s != 10 || e != 10 {
		t.Fatalf("negative service: [%v,%v), want [10,10)", s, e)
	}
}

func TestResourceStats(t *testing.T) {
	r := NewResource("cpu")
	r.Acquire(0, 100)
	r.Acquire(0, 100)
	st := r.Stats()
	if st.Ops != 2 {
		t.Fatalf("Ops = %d, want 2", st.Ops)
	}
	if st.BusyTotal != 200 {
		t.Fatalf("BusyTotal = %v, want 200ns", st.BusyTotal)
	}
	if st.FirstUse != 0 || st.LastUse != 200 {
		t.Fatalf("span [%v,%v], want [0,200]", st.FirstUse, st.LastUse)
	}
	if got := st.Utilization(); got != 1.0 {
		t.Fatalf("Utilization = %v, want 1.0", got)
	}
}

func TestResourceUtilizationPartial(t *testing.T) {
	r := NewResource("cpu")
	r.Acquire(0, 100)
	r.Acquire(300, 100) // idle gap [100,300)
	st := r.Stats()
	if got := st.Utilization(); got != 0.5 {
		t.Fatalf("Utilization = %v, want 0.5", got)
	}
}

func TestResourceUtilizationUnused(t *testing.T) {
	var s ResourceStats
	if s.Utilization() != 0 {
		t.Fatal("unused resource should report zero utilization")
	}
}

func TestResourceConcurrentNoOverlap(t *testing.T) {
	// Property: intervals handed out by Acquire never overlap, regardless
	// of goroutine interleaving.
	r := NewResource("shared")
	const n = 64
	type iv struct{ s, e Time }
	out := make(chan iv, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, e := r.Acquire(Time(i), Duration(1+i%7))
			out <- iv{s, e}
		}(i)
	}
	wg.Wait()
	close(out)
	var ivs []iv
	for v := range out {
		ivs = append(ivs, v)
	}
	for i := range ivs {
		for j := i + 1; j < len(ivs); j++ {
			a, b := ivs[i], ivs[j]
			if a.s < b.e && b.s < a.e && a.s != a.e && b.s != b.e {
				t.Fatalf("overlap: [%v,%v) and [%v,%v)", a.s, a.e, b.s, b.e)
			}
		}
	}
}

func TestResourceBusyConservationProperty(t *testing.T) {
	// Property: total busy time equals the sum of service times, and the
	// watermark equals the max end time.
	f := func(seed int64, nOps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		r := NewResource("p")
		var sum Duration
		var maxEnd Time
		for i := 0; i < int(nOps); i++ {
			arr := Time(rng.Int63n(1000))
			svc := Duration(rng.Int63n(100))
			_, end := r.Acquire(arr, svc)
			sum += svc
			if end > maxEnd {
				maxEnd = end
			}
		}
		st := r.Stats()
		return st.BusyTotal == sum && r.BusyUntil() == maxEnd && st.Ops == int64(nOps)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLinkModelValidate(t *testing.T) {
	good := LinkModel{PerOp: time.Microsecond, Propagation: 300 * time.Nanosecond, BytesPerSec: 1e9}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
	bad := LinkModel{PerOp: -1}
	if err := bad.Validate(); err == nil {
		t.Fatal("negative PerOp accepted")
	}
}

func TestLinkModelSerializeTime(t *testing.T) {
	m := LinkModel{BytesPerSec: 1e9} // 1 GB/s => 1 ns per byte
	if got := m.SerializeTime(1000); got != time.Microsecond {
		t.Fatalf("SerializeTime(1000) = %v, want 1µs", got)
	}
	if got := m.SerializeTime(0); got != 0 {
		t.Fatalf("SerializeTime(0) = %v, want 0", got)
	}
	inf := LinkModel{}
	if got := inf.SerializeTime(1 << 20); got != 0 {
		t.Fatalf("infinite-BW SerializeTime = %v, want 0", got)
	}
}

func TestLinkModelOneWayMonotonicInSize(t *testing.T) {
	m := LinkModel{PerOp: 600 * time.Nanosecond, Propagation: 300 * time.Nanosecond, BytesPerSec: 12.5e9}
	prev := Duration(-1)
	for _, size := range []int{0, 64, 256, 4096, 1 << 20} {
		d := m.OneWay(size)
		if d < prev {
			t.Fatalf("OneWay not monotonic: size=%d got %v < prev %v", size, d, prev)
		}
		prev = d
	}
}

func TestLinkSendPipelining(t *testing.T) {
	nic := NewResource("tx")
	m := LinkModel{PerOp: 100 * time.Nanosecond, Propagation: 1 * time.Microsecond, BytesPerSec: 1e9}
	l := NewLink(m, nic)
	if l.Model() != m {
		t.Fatal("Model roundtrip")
	}
	// Two back-to-back 1000B sends at t=0: the second serializes behind the
	// first on the NIC (100+1000=1100ns each) but propagation overlaps.
	a1 := l.Send(0, 1000)
	a2 := l.Send(0, 1000)
	want1 := Time(0).Add(1100 * time.Nanosecond).Add(time.Microsecond)
	want2 := Time(0).Add(2200 * time.Nanosecond).Add(time.Microsecond)
	if a1 != want1 {
		t.Fatalf("first arrival %v, want %v", a1, want1)
	}
	if a2 != want2 {
		t.Fatalf("second arrival %v, want %v", a2, want2)
	}
}

func TestLinkSharedNICContention(t *testing.T) {
	nic := NewResource("tx")
	m := LinkModel{PerOp: 100 * time.Nanosecond}
	l1 := NewLink(m, nic)
	l2 := NewLink(m, nic)
	l1.Send(0, 0)
	a := l2.Send(0, 0)
	// Second link's send must queue behind the first on the shared NIC.
	if a != Time(0).Add(200*time.Nanosecond) {
		t.Fatalf("arrival %v, want T+200ns", a)
	}
}
