package simnet

import (
	"sync"
	"time"
)

// Resource models a serially-shared hardware resource — a NIC DMA engine,
// an NVM DIMM, a DRAM channel, a server CPU core — as a timeline with a
// busy-until watermark. An operation that arrives at simulated time t and
// needs s of service starts at max(t, busyUntil) and completes at
// start+s; the watermark advances to the completion time. Queueing delay
// therefore emerges whenever concurrent demand exceeds the resource's
// capacity, with no explicit queue data structure.
//
// The zero value is not usable; construct with NewResource.
type Resource struct {
	name string

	mu        sync.Mutex
	busyUntil Time
	busyTotal Duration
	ops       int64
	firstUse  Time
	lastUse   Time
	used      bool
}

// NewResource returns a named idle resource. The name appears in stats and
// is for diagnostics only.
func NewResource(name string) *Resource {
	return &Resource{name: name}
}

// Name returns the diagnostic name the resource was created with.
func (r *Resource) Name() string { return r.name }

// Acquire schedules one operation of the given service time arriving at
// the given instant, and returns the interval [start, end) during which
// the resource serves it. Acquire never blocks in wall-clock time.
func (r *Resource) Acquire(arrival Time, service Duration) (start, end Time) {
	if service < 0 {
		service = 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()

	start = MaxTime(arrival, r.busyUntil)
	end = start.Add(service)
	r.busyUntil = end
	r.busyTotal += service
	r.ops++
	if !r.used {
		r.firstUse = start
		r.used = true
	}
	r.lastUse = end
	return start, end
}

// BusyUntil returns the current watermark: the earliest instant at which a
// newly-arriving operation could begin service.
func (r *Resource) BusyUntil() Time {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.busyUntil
}

// ResourceStats is a snapshot of a resource's accumulated usage.
type ResourceStats struct {
	Name      string
	Ops       int64         // operations served
	BusyTotal time.Duration // total service time charged
	FirstUse  Time          // start of first operation (zero if unused)
	LastUse   Time          // end of last operation (zero if unused)
}

// Utilization returns the fraction of the interval [FirstUse, LastUse]
// during which the resource was busy, or 0 if it was never used.
func (s ResourceStats) Utilization() float64 {
	span := s.LastUse.Sub(s.FirstUse)
	if span <= 0 {
		return 0
	}
	return float64(s.BusyTotal) / float64(span)
}

// Stats returns a snapshot of accumulated usage.
func (r *Resource) Stats() ResourceStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return ResourceStats{
		Name:      r.name,
		Ops:       r.ops,
		BusyTotal: r.busyTotal,
		FirstUse:  r.firstUse,
		LastUse:   r.lastUse,
	}
}
