package simnet

import "sync"

// Gate implements conservative time-window synchronization for groups of
// concurrent actors that each carry their own virtual clock (closed-loop
// clients, MapReduce workers).
//
// Without it, wall-clock scheduling leaks into virtual time: the Go
// scheduler may run one actor's entire operation loop before another
// actor starts, so the first actor pushes every shared resource's
// busy-until watermark far into the virtual future and the late actor
// queues behind all of it — phantom serialization that has nothing to do
// with modeled contention. A Gate bounds the skew: an actor whose clock
// is more than the window ahead of the slowest participant blocks (in
// wall time) until the others catch up, so resource timelines see an
// interleaving consistent with virtual time.
//
// The actor with the minimum clock is never blocked, so progress is
// always possible; a zero-participant gate admits everyone.
type Gate struct {
	window Duration

	mu     sync.Mutex
	cond   *sync.Cond
	clocks map[*GateHandle]Time
}

// NewGate returns a gate enforcing the given maximum skew window. A
// non-positive window is treated as zero (lockstep to the resolution of
// single operations).
func NewGate(window Duration) *Gate {
	g := &Gate{window: window, clocks: make(map[*GateHandle]Time)}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// GateHandle is one actor's membership in a gate.
type GateHandle struct {
	g *Gate
}

// Join registers a new actor starting at the given virtual time.
func (g *Gate) Join(at Time) *GateHandle {
	h := &GateHandle{g: g}
	g.mu.Lock()
	g.clocks[h] = at
	g.mu.Unlock()
	g.cond.Broadcast()
	return h
}

// minLocked returns the minimum clock over participants. Callers hold
// g.mu and guarantee at least one participant.
func (g *Gate) minLocked() Time {
	first := true
	var m Time
	for _, t := range g.clocks {
		if first || t < m {
			m = t
			first = false
		}
	}
	return m
}

// Advance reports the actor's clock and blocks while it is more than the
// window ahead of the slowest participant.
func (h *GateHandle) Advance(now Time) {
	g := h.g
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.clocks[h]; !ok {
		return // left already; nothing to pace against
	}
	g.clocks[h] = now
	g.cond.Broadcast()
	for {
		if _, ok := g.clocks[h]; !ok {
			return
		}
		if now <= g.minLocked().Add(g.window) {
			return
		}
		g.cond.Wait()
	}
}

// Leave removes the actor; remaining participants blocked on it wake up.
func (h *GateHandle) Leave() {
	g := h.g
	g.mu.Lock()
	delete(g.clocks, h)
	g.mu.Unlock()
	g.cond.Broadcast()
}
