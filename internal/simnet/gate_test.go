package simnet

import (
	"sync"
	"testing"
	"time"
)

func TestGateSingleActorNeverBlocks(t *testing.T) {
	g := NewGate(10)
	h := g.Join(0)
	for i := Time(0); i < 1000; i += 100 {
		h.Advance(i) // must return immediately
	}
	h.Leave()
}

func TestGateBoundsSkew(t *testing.T) {
	const window = 50
	g := NewGate(window)
	fast := g.Join(0)
	slow := g.Join(0)

	released := make(chan struct{})
	go func() {
		fast.Advance(1000) // way ahead: must block until slow catches up
		close(released)
	}()
	select {
	case <-released:
		t.Fatal("fast actor not blocked")
	case <-time.After(20 * time.Millisecond):
	}
	slow.Advance(960) // 1000 <= 960+50
	select {
	case <-released:
	case <-time.After(time.Second):
		t.Fatal("fast actor never released")
	}
	fast.Leave()
	slow.Leave()
}

func TestGateLeaveReleasesWaiters(t *testing.T) {
	g := NewGate(10)
	ahead := g.Join(0)
	behind := g.Join(0)
	released := make(chan struct{})
	go func() {
		ahead.Advance(10000)
		close(released)
	}()
	time.Sleep(5 * time.Millisecond)
	behind.Leave() // now ahead is the only (and min) participant
	select {
	case <-released:
	case <-time.After(time.Second):
		t.Fatal("Leave did not release waiter")
	}
	ahead.Leave()
}

func TestGateAdvanceAfterLeaveIsNoop(t *testing.T) {
	g := NewGate(10)
	h := g.Join(0)
	h.Leave()
	h.Advance(1 << 40) // must not block or panic
}

func TestGateManyActorsStayWithinWindow(t *testing.T) {
	// Invariant: among active participants, the spread of recorded
	// clocks never exceeds window + the largest single step (a blocked
	// actor records its target time before waiting).
	const (
		actors  = 8
		window  = 100
		steps   = 500
		maxStep = actors // actor i steps by 1+i
	)
	g := NewGate(window)
	stop := make(chan struct{})
	violation := make(chan Duration, 1)
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			g.mu.Lock()
			if len(g.clocks) == actors { // only while everyone is active
				var lo, hi Time
				first := true
				for _, c := range g.clocks {
					if first {
						lo, hi = c, c
						first = false
					}
					if c < lo {
						lo = c
					}
					if c > hi {
						hi = c
					}
				}
				if sk := hi.Sub(lo); sk > window+maxStep {
					select {
					case violation <- sk:
					default:
					}
				}
			}
			g.mu.Unlock()
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < actors; i++ {
		h := g.Join(0)
		wg.Add(1)
		go func(i int, h *GateHandle) {
			defer wg.Done()
			defer h.Leave()
			var now Time
			for s := 0; s < steps; s++ {
				now += Time(1 + i) // actors advance at different rates
				h.Advance(now)
			}
		}(i, h)
	}
	wg.Wait()
	close(stop)
	select {
	case sk := <-violation:
		t.Fatalf("skew %v exceeded window+maxStep", sk)
	default:
	}
}
