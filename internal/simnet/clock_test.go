package simnet

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(0)
	t1 := t0.Add(5 * time.Microsecond)
	if got := t1.Sub(t0); got != 5*time.Microsecond {
		t.Fatalf("Sub = %v, want 5µs", got)
	}
	if !t1.After(t0) || t1.Before(t0) {
		t.Fatalf("ordering wrong: t1=%v t0=%v", t1, t0)
	}
	if !t0.Before(t1) {
		t.Fatalf("t0 should be before t1")
	}
}

func TestTimeString(t *testing.T) {
	got := Time(1500).String()
	if got != "T+1.5µs" {
		t.Fatalf("String = %q, want %q", got, "T+1.5µs")
	}
}

func TestMaxTime(t *testing.T) {
	if MaxTime(3, 7) != 7 || MaxTime(7, 3) != 7 || MaxTime(5, 5) != 5 {
		t.Fatal("MaxTime wrong")
	}
}

func TestClockObserveMonotonic(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock Now = %v, want 0", c.Now())
	}
	c.Observe(100)
	if c.Now() != 100 {
		t.Fatalf("Now = %v, want 100", c.Now())
	}
	// Observing an earlier time must not move the clock backwards.
	if got := c.Observe(50); got != 100 {
		t.Fatalf("Observe(50) returned %v, want 100", got)
	}
	if c.Now() != 100 {
		t.Fatalf("clock moved backwards to %v", c.Now())
	}
}

func TestClockObserveConcurrent(t *testing.T) {
	var c Clock
	const (
		goroutines = 8
		perG       = 1000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Observe(Time(g*perG + i))
			}
		}(g)
	}
	wg.Wait()
	want := Time(goroutines*perG - 1)
	if c.Now() != want {
		t.Fatalf("Now = %v, want %v", c.Now(), want)
	}
}

func TestClockObserveProperty(t *testing.T) {
	// Property: after any sequence of observations, Now equals the maximum
	// non-negative value observed (or zero).
	f := func(vals []int64) bool {
		var c Clock
		var want Time
		for _, v := range vals {
			if v < 0 {
				v = -v
			}
			c.Observe(Time(v))
			if Time(v) > want {
				want = Time(v)
			}
		}
		return c.Now() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
