// Package simnet provides the virtual-time engine used by the Gengar
// simulator: a nanosecond-resolution simulated clock, contended resource
// timelines, and a link model for network transfer costs.
//
// All device and network latencies in the repository are charged in
// simulated nanoseconds rather than wall-clock time. This makes latency
// and throughput experiments deterministic, independent of host load, and
// fast to run, while still exhibiting queueing: a resource is a timeline
// with a "busy until" watermark, so concurrent demand serializes exactly
// as it would on a NIC DMA engine or a memory DIMM.
package simnet

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Time is an instant in simulated time, measured in nanoseconds since the
// start of the simulation. The zero Time is the simulation epoch.
type Time int64

// Duration is a span of simulated time in nanoseconds. It is kept distinct
// from time.Duration in signatures that mix simulated and wall-clock time,
// but converts freely.
type Duration = time.Duration

// Add returns t shifted forward by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// After reports whether t is later than u.
func (t Time) After(u Time) bool { return t > u }

// Before reports whether t is earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// String formats the instant as a duration offset from the epoch.
func (t Time) String() string { return fmt.Sprintf("T+%s", Duration(t)) }

// MaxTime returns the later of a and b.
func MaxTime(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Clock tracks the frontier of simulated time observed by a set of
// concurrent actors. Actors carry their own local virtual times (the
// completion time of their last operation); Observe folds those into a
// global high-water mark used for throughput accounting and for
// time-driven background activity such as hotness epochs.
//
// The zero value is ready to use and starts at the epoch.
type Clock struct {
	now atomic.Int64
}

// Now returns the latest simulated instant observed so far.
func (c *Clock) Now() Time { return Time(c.now.Load()) }

// Observe advances the clock to t if t is later than the current frontier
// and returns the (possibly unchanged) frontier.
func (c *Clock) Observe(t Time) Time {
	for {
		cur := c.now.Load()
		if int64(t) <= cur {
			return Time(cur)
		}
		if c.now.CompareAndSwap(cur, int64(t)) {
			return t
		}
	}
}
