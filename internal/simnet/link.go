package simnet

import (
	"fmt"
	"time"
)

// LinkModel describes the cost structure of a network link between two
// nodes, in the style of the LogGP family: a fixed per-operation overhead
// (doorbell ring, NIC processing, PCIe hop), a propagation delay (wire +
// switch), and a serialization cost proportional to payload size.
type LinkModel struct {
	// PerOp is the fixed software+NIC overhead charged once per
	// *initiated* operation at the sender: doorbell ring, WQE fetch,
	// PCIe hop.
	PerOp Duration
	// RespPerOp is the overhead of responder-generated messages — RDMA
	// ACKs, READ responses, atomic responses — which the responder NIC
	// emits in hardware with no software involvement. It is typically an
	// order of magnitude below PerOp; zero is allowed (free responses).
	RespPerOp Duration
	// Propagation is the one-way wire+switch delay.
	Propagation Duration
	// BytesPerSec is the link bandwidth used to serialize the payload.
	// Zero means infinite bandwidth (no serialization cost).
	BytesPerSec float64
}

// Validate reports whether the model's fields are physically meaningful.
func (m LinkModel) Validate() error {
	if m.PerOp < 0 || m.RespPerOp < 0 || m.Propagation < 0 || m.BytesPerSec < 0 {
		return fmt.Errorf("simnet: negative link parameter: %+v", m)
	}
	return nil
}

// SerializeTime returns the time to clock size bytes onto the wire.
func (m LinkModel) SerializeTime(size int) Duration {
	if m.BytesPerSec <= 0 || size <= 0 {
		return 0
	}
	return Duration(float64(size) / m.BytesPerSec * float64(time.Second))
}

// OneWay returns the end-to-end one-way latency for a payload of the given
// size on an otherwise idle link: overhead + serialization + propagation.
func (m LinkModel) OneWay(size int) Duration {
	return m.PerOp + m.SerializeTime(size) + m.Propagation
}

// Link is a directed, contended network path: a LinkModel plus a Resource
// representing the sender NIC's transmit engine. Concurrent sends
// serialize on the NIC for their overhead+serialization portion, then
// propagate independently.
type Link struct {
	model LinkModel
	nic   *Resource
}

// NewLink returns a link with the given cost model whose transmit side is
// serialized by the given NIC resource. The NIC resource may be shared by
// several links to model one NIC serving several peers.
func NewLink(model LinkModel, nic *Resource) *Link {
	return &Link{model: model, nic: nic}
}

// Model returns the link's cost model.
func (l *Link) Model() LinkModel { return l.model }

// Send schedules a transfer of size bytes departing at the given instant
// and returns the instant the payload is fully delivered at the receiver.
// The NIC is held for the overhead and serialization time; propagation
// overlaps with subsequent sends.
func (l *Link) Send(departure Time, size int) (arrival Time) {
	service := l.model.PerOp + l.model.SerializeTime(size)
	_, txEnd := l.nic.Acquire(departure, service)
	return txEnd.Add(l.model.Propagation)
}
