package alloc

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	for _, bad := range []int64{0, -64, 63, 100, MinBlock - 1} {
		if _, err := New(bad); err == nil {
			t.Errorf("New(%d) accepted", bad)
		}
	}
	b, err := New(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if b.ArenaSize() != 1<<20 {
		t.Fatalf("ArenaSize = %d", b.ArenaSize())
	}
}

func TestBlockSize(t *testing.T) {
	cases := []struct{ in, want int64 }{
		{0, 0}, {-5, 0}, {1, 64}, {64, 64}, {65, 128}, {100, 128},
		{128, 128}, {4096, 4096}, {4097, 8192},
	}
	for _, c := range cases {
		if got := BlockSize(c.in); got != c.want {
			t.Errorf("BlockSize(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestAllocAlignment(t *testing.T) {
	b, _ := New(1 << 16)
	for _, size := range []int64{1, 64, 100, 1000, 4096} {
		off, err := b.Alloc(size)
		if err != nil {
			t.Fatal(err)
		}
		if off%BlockSize(size) != 0 {
			t.Errorf("Alloc(%d) at %d not aligned to %d", size, off, BlockSize(size))
		}
	}
}

func TestAllocErrors(t *testing.T) {
	b, _ := New(1 << 12)
	if _, err := b.Alloc(0); err == nil {
		t.Fatal("zero size accepted")
	}
	if _, err := b.Alloc(-1); err == nil {
		t.Fatal("negative size accepted")
	}
	if _, err := b.Alloc(1 << 13); !errors.Is(err, ErrOutOfMemory) {
		t.Fatal("oversized request not OOM")
	}
	if _, err := b.Alloc(1 << 12); err != nil {
		t.Fatalf("whole-arena alloc failed: %v", err)
	}
	if _, err := b.Alloc(64); !errors.Is(err, ErrOutOfMemory) {
		t.Fatal("alloc from full arena not OOM")
	}
}

func TestFreeErrors(t *testing.T) {
	b, _ := New(1 << 12)
	if err := b.Free(0); !errors.Is(err, ErrBadFree) {
		t.Fatal("free of never-allocated accepted")
	}
	off, _ := b.Alloc(64)
	if err := b.Free(off); err != nil {
		t.Fatal(err)
	}
	if err := b.Free(off); !errors.Is(err, ErrBadFree) {
		t.Fatal("double free accepted")
	}
	if err := b.Free(off + 1); !errors.Is(err, ErrBadFree) {
		t.Fatal("interior free accepted")
	}
}

func TestSizeOf(t *testing.T) {
	b, _ := New(1 << 12)
	off, _ := b.Alloc(100)
	sz, err := b.SizeOf(off)
	if err != nil || sz != 128 {
		t.Fatalf("SizeOf = %d, %v", sz, err)
	}
	if _, err := b.SizeOf(12345); !errors.Is(err, ErrBadFree) {
		t.Fatal("SizeOf of bogus offset succeeded")
	}
}

func TestCoalescing(t *testing.T) {
	// Fill the arena with min blocks, free them all, then the whole arena
	// must again be allocatable as one block.
	const arena = 1 << 12
	b, _ := New(arena)
	var offs []int64
	for {
		off, err := b.Alloc(MinBlock)
		if err != nil {
			break
		}
		offs = append(offs, off)
	}
	if len(offs) != arena/MinBlock {
		t.Fatalf("filled %d blocks, want %d", len(offs), arena/MinBlock)
	}
	for _, off := range offs {
		if err := b.Free(off); err != nil {
			t.Fatal(err)
		}
	}
	if b.AllocatedBytes() != 0 {
		t.Fatalf("AllocatedBytes = %d after freeing all", b.AllocatedBytes())
	}
	if _, err := b.Alloc(arena); err != nil {
		t.Fatalf("arena did not coalesce: %v", err)
	}
}

func TestNoOverlapProperty(t *testing.T) {
	// Property: live allocations never overlap and stay in the arena,
	// across random alloc/free sequences.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const arena = 1 << 16
		b, err := New(arena)
		if err != nil {
			return false
		}
		live := make(map[int64]int64) // off -> rounded size
		for i := 0; i < 200; i++ {
			if len(live) > 0 && rng.Intn(3) == 0 {
				for off := range live {
					if b.Free(off) != nil {
						return false
					}
					delete(live, off)
					break
				}
				continue
			}
			size := int64(1 + rng.Intn(2048))
			off, err := b.Alloc(size)
			if errors.Is(err, ErrOutOfMemory) {
				continue
			}
			if err != nil {
				return false
			}
			rounded := BlockSize(size)
			if off < 0 || off+rounded > arena {
				return false
			}
			for o, s := range live {
				if off < o+s && o < off+rounded {
					return false // overlap
				}
			}
			live[off] = rounded
		}
		var sum int64
		for _, s := range live {
			sum += s
		}
		return sum == b.AllocatedBytes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAllocFree(t *testing.T) {
	b, _ := New(1 << 20)
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			var mine []int64
			for i := 0; i < 200; i++ {
				if len(mine) > 0 && rng.Intn(2) == 0 {
					off := mine[len(mine)-1]
					mine = mine[:len(mine)-1]
					if err := b.Free(off); err != nil {
						t.Errorf("Free: %v", err)
						return
					}
					continue
				}
				off, err := b.Alloc(int64(64 + rng.Intn(1024)))
				if errors.Is(err, ErrOutOfMemory) {
					continue
				}
				if err != nil {
					t.Errorf("Alloc: %v", err)
					return
				}
				mine = append(mine, off)
			}
			for _, off := range mine {
				if err := b.Free(off); err != nil {
					t.Errorf("final Free: %v", err)
				}
			}
		}(g)
	}
	wg.Wait()
	if b.AllocatedBytes() != 0 {
		t.Fatalf("leaked %d bytes", b.AllocatedBytes())
	}
}

func TestLiveInventory(t *testing.T) {
	b, _ := New(1 << 12)
	if len(b.Live()) != 0 {
		t.Fatal("fresh arena has live blocks")
	}
	o1, _ := b.Alloc(100) // 128
	o2, _ := b.Alloc(600) // 1024
	live := b.Live()
	if len(live) != 2 {
		t.Fatalf("live = %v", live)
	}
	want := map[int64]int64{o1: 128, o2: 1024}
	for _, a := range live {
		if want[a.Off] != a.Size {
			t.Fatalf("live entry %+v", a)
		}
	}
	if live[0].Off > live[1].Off {
		t.Fatal("live not sorted")
	}
}

func TestReserveRestoresExactLayout(t *testing.T) {
	// Allocate a random layout, snapshot it, rebuild via Reserve, and
	// check the allocators agree byte-for-byte on free space.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const arena = 1 << 14
		orig, err := New(arena)
		if err != nil {
			return false
		}
		for i := 0; i < 40; i++ {
			if _, err := orig.Alloc(int64(64 + rng.Intn(1024))); errors.Is(err, ErrOutOfMemory) {
				break
			}
		}
		live := orig.Live()

		restored, err := New(arena)
		if err != nil {
			return false
		}
		for _, a := range live {
			if err := restored.Reserve(a.Off, a.Size); err != nil {
				return false
			}
		}
		if restored.AllocatedBytes() != orig.AllocatedBytes() {
			return false
		}
		// Every restored block frees cleanly and the arena coalesces.
		for _, a := range live {
			if restored.Free(a.Off) != nil {
				return false
			}
		}
		_, err = restored.Alloc(arena)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestReserveValidation(t *testing.T) {
	b, _ := New(1 << 12)
	if err := b.Reserve(0, 0); err == nil {
		t.Fatal("zero size accepted")
	}
	if err := b.Reserve(33, 64); err == nil {
		t.Fatal("misaligned reserve accepted")
	}
	if err := b.Reserve(1<<12, 64); err == nil {
		t.Fatal("out-of-arena reserve accepted")
	}
	if err := b.Reserve(0, 64); err != nil {
		t.Fatal(err)
	}
	// Overlapping reserve fails.
	if err := b.Reserve(0, 64); !errors.Is(err, ErrBadFree) {
		t.Fatalf("double reserve: %v", err)
	}
	if err := b.Reserve(0, 4096); !errors.Is(err, ErrBadFree) {
		t.Fatalf("containing reserve over live block: %v", err)
	}
	// Reserve then regular Alloc never overlaps it.
	off, err := b.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if off == 0 {
		t.Fatal("Alloc returned a reserved block")
	}
}
