package alloc

import "testing"

// pool is the allocator surface the benchmarks exercise, so the same
// harness measures Buddy and any front wrapped around it.
type benchPool interface {
	Alloc(size int64) (int64, error)
	Free(off int64) error
}

// benchParallelAllocFree hammers small-object alloc/free cycles from
// every benchmark goroutine — the contention shape of many sessions
// mallocing staging buffers and copies concurrently. Sizes straddle two
// size classes so the allocator both splits and coalesces.
func benchParallelAllocFree(b *testing.B, p benchPool) {
	b.Helper()
	sizes := [4]int64{64, 256, 1024, 4096}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			off, err := p.Alloc(sizes[i&3])
			if err != nil {
				b.Error(err)
				return
			}
			if err := p.Free(off); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
}

// BenchmarkBuddyParallel is the contention baseline for the single-mutex
// buddy allocator: every Alloc/Free serializes on Buddy.mu, so
// throughput should not scale with goroutine count. Recorded before the
// sharded-pool change so the speedup is differential, not asserted.
func BenchmarkBuddyParallel(b *testing.B) {
	pool, err := New(1 << 26)
	if err != nil {
		b.Fatal(err)
	}
	benchParallelAllocFree(b, pool)
}
