// Package alloc provides the buddy allocator each Gengar server uses to
// carve objects out of its NVM pool and DRAM buffer arena.
//
// A buddy allocator is a good fit for a remotely-accessed pool: blocks
// are power-of-two sized and naturally aligned, so every allocation is a
// valid RDMA target with predictable alignment, and coalescing keeps
// long-running pools from fragmenting.
package alloc

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"
	"sync"
)

// Allocator errors.
var (
	// ErrOutOfMemory is returned when no free block can satisfy a request.
	ErrOutOfMemory = errors.New("alloc: out of memory")
	// ErrBadFree is returned when freeing an address that is not an
	// allocated block start.
	ErrBadFree = errors.New("alloc: free of unallocated address")
)

// MinBlock is the smallest allocatable block size in bytes.
const MinBlock = 64

const minOrder = 6 // log2(MinBlock)

// Buddy is a binary-buddy allocator over a contiguous arena of
// power-of-two size. The zero value is not usable; construct with New.
// It is safe for concurrent use.
type Buddy struct {
	mu        sync.Mutex
	arenaSize int64
	maxOrder  uint
	free      []map[int64]struct{} // free[i]: free blocks of order minOrder+i
	allocated map[int64]uint       // block start -> order
	allocB    int64                // bytes currently allocated (rounded)
}

// New returns an allocator over an arena of the given size, which must be
// a power of two and at least MinBlock.
func New(arenaSize int64) (*Buddy, error) {
	if arenaSize < MinBlock || arenaSize&(arenaSize-1) != 0 {
		return nil, fmt.Errorf("alloc: arena size %d not a power of two >= %d", arenaSize, MinBlock)
	}
	maxOrder := uint(bits.Len64(uint64(arenaSize)) - 1)
	b := &Buddy{
		arenaSize: arenaSize,
		maxOrder:  maxOrder,
		free:      make([]map[int64]struct{}, maxOrder-minOrder+1),
		allocated: make(map[int64]uint),
	}
	for i := range b.free {
		b.free[i] = make(map[int64]struct{})
	}
	b.free[maxOrder-minOrder][0] = struct{}{}
	return b, nil
}

// orderFor returns the smallest order whose block size holds size bytes.
func orderFor(size int64) uint {
	if size <= MinBlock {
		return minOrder
	}
	return uint(bits.Len64(uint64(size - 1)))
}

// BlockSize returns the rounded (power-of-two) size an allocation of the
// given request size actually occupies.
func BlockSize(size int64) int64 {
	if size <= 0 {
		return 0
	}
	return 1 << orderFor(size)
}

// Alloc reserves a block of at least size bytes and returns its offset,
// which is aligned to the rounded block size.
func (b *Buddy) Alloc(size int64) (int64, error) {
	if size <= 0 {
		return 0, fmt.Errorf("alloc: non-positive size %d", size)
	}
	order := orderFor(size)
	if order > b.maxOrder {
		return 0, fmt.Errorf("%w: request %d exceeds arena %d", ErrOutOfMemory, size, b.arenaSize)
	}

	b.mu.Lock()
	defer b.mu.Unlock()

	// Find the smallest order with a free block, splitting downward.
	from := order
	for from <= b.maxOrder && len(b.free[from-minOrder]) == 0 {
		from++
	}
	if from > b.maxOrder {
		return 0, fmt.Errorf("%w: no free block for %d bytes", ErrOutOfMemory, size)
	}
	var off int64
	for k := range b.free[from-minOrder] {
		off = k
		break
	}
	delete(b.free[from-minOrder], off)
	for from > order {
		from--
		// Keep the upper half free, allocate from the lower.
		b.free[from-minOrder][off+(1<<from)] = struct{}{}
	}
	b.allocated[off] = order
	b.allocB += 1 << order
	return off, nil
}

// Free releases a block previously returned by Alloc, coalescing buddies.
func (b *Buddy) Free(off int64) error {
	b.mu.Lock()
	defer b.mu.Unlock()

	order, ok := b.allocated[off]
	if !ok {
		return fmt.Errorf("%w: offset %d", ErrBadFree, off)
	}
	delete(b.allocated, off)
	b.allocB -= 1 << order

	for order < b.maxOrder {
		buddy := off ^ (1 << order)
		if _, free := b.free[order-minOrder][buddy]; !free {
			break
		}
		delete(b.free[order-minOrder], buddy)
		if buddy < off {
			off = buddy
		}
		order++
	}
	b.free[order-minOrder][off] = struct{}{}
	return nil
}

// SizeOf returns the rounded size of the allocated block at off, or an
// error if off is not an allocated block start.
func (b *Buddy) SizeOf(off int64) (int64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	order, ok := b.allocated[off]
	if !ok {
		return 0, fmt.Errorf("%w: offset %d", ErrBadFree, off)
	}
	return 1 << order, nil
}

// AllocatedBytes returns the total rounded bytes currently allocated.
func (b *Buddy) AllocatedBytes() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.allocB
}

// ArenaSize returns the arena capacity in bytes.
func (b *Buddy) ArenaSize() int64 { return b.arenaSize }

// Allocation describes one live block: its offset and rounded size.
type Allocation struct {
	Off  int64
	Size int64
}

// Live returns the current allocations sorted by offset — the inventory
// a snapshot persists.
func (b *Buddy) Live() []Allocation {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Allocation, 0, len(b.allocated))
	for off, order := range b.allocated {
		out = append(out, Allocation{Off: off, Size: 1 << order})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Off < out[j].Off })
	return out
}

// Reserve allocates the specific block [off, off+BlockSize(size)),
// splitting free blocks as needed — the restore-path counterpart of
// Alloc. It fails if the block is not entirely free or off is not
// aligned to the rounded size.
func (b *Buddy) Reserve(off, size int64) error {
	if size <= 0 {
		return fmt.Errorf("alloc: reserve of %d bytes", size)
	}
	order := orderFor(size)
	blk := int64(1) << order
	if off < 0 || off%blk != 0 || off+blk > b.arenaSize {
		return fmt.Errorf("alloc: reserve [%d,+%d) misaligned or out of arena", off, blk)
	}

	b.mu.Lock()
	defer b.mu.Unlock()

	// Find the free block that contains off, at this order or above.
	found := -1
	var container int64
	for o := order; o <= b.maxOrder; o++ {
		cand := off &^ (int64(1)<<o - 1)
		if _, ok := b.free[o-minOrder][cand]; ok {
			found, container = int(o), cand
			break
		}
	}
	if found < 0 {
		return fmt.Errorf("%w: [%d,+%d) overlaps a live allocation", ErrBadFree, off, blk)
	}
	delete(b.free[found-minOrder], container)
	// Split down, freeing the halves that do not contain off.
	cur := container
	for o := uint(found); o > order; o-- {
		half := int64(1) << (o - 1)
		if off < cur+half {
			b.free[o-1-minOrder][cur+half] = struct{}{}
		} else {
			b.free[o-1-minOrder][cur] = struct{}{}
			cur += half
		}
	}
	b.allocated[off] = order
	b.allocB += blk
	return nil
}
