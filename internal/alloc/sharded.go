// Sharded front over the buddy allocator: per-shard slab caches for the
// small size classes, FineMem-style, so concurrent sessions stop
// serializing on the single buddy mutex.
//
// Geometry: the global buddy still owns the whole arena. Each shard
// carves slab-sized parent blocks (2 MiB on full-sized arenas, smaller
// on small ones) out of the buddy and serves power-of-two size classes
// from per-slab bitmaps under the shard's own mutex. Large requests,
// Reserve (the snapshot-restore path) and anything beyond the class
// limit go straight to the global buddy. Slab parents are naturally
// slab-aligned (buddy blocks are power-of-two aligned), so Free/SizeOf
// route by masking the offset to its slab base and consulting a
// copy-on-write base->slab index — no global lock on the small-object
// path.
package alloc

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

const (
	// slabTargetBytes is the preferred slab parent size; small arenas
	// degrade to arena/8 (and below slabMinBytes, to no slabs at all).
	slabTargetBytes = 2 << 20
	slabMinBytes    = 64 << 10
	// slabClassShift bounds the slab-served classes: the largest class
	// is slabBytes >> slabClassShift, so a slab always holds at least
	// 2^slabClassShift slots.
	slabClassShift = 4
	// defaultShards is the shard count; contention scales with sessions,
	// not arena size, so it is a constant.
	defaultShards = 8
)

// slab is one parent block carved from the global buddy, cut into
// equal slots of a single size class.
type slab struct {
	shard  *shard
	base   int64
	order  uint // slot order: slot size is 1<<order
	slots  int
	used   int
	bitmap []uint64 // 1 bit per slot, set = live
	hint   int      // next bitmap word to probe
}

// shard is one allocation lane: a mutex, and per-class slab lists.
type shard struct {
	mu    sync.Mutex
	slabs [][]*slab    // slabs[c]: slabs of class order minOrder+c
	userB atomic.Int64 // live slot bytes in this shard
}

// ShardedPool fronts a Buddy with per-shard slab caches. It serves the
// same API surface as Buddy (Alloc/Free/SizeOf/AllocatedBytes/ArenaSize/
// Live/Reserve) so engines and buffer pools can swap it in; snapshots
// taken via Live restore through plain Reserve calls on a fresh pool.
type ShardedPool struct {
	global *Buddy
	shards []*shard
	next   atomic.Uint32 // round-robin shard cursor

	slabBytes int64 // 0 disables slabs
	slabOrder uint
	maxClass  uint // largest slab-served slot order

	mu sync.Mutex // serializes slab index writers
	//gengar:guardedby mu
	slabIndex atomic.Pointer[map[int64]*slab] // slab base -> slab
	parentB   atomic.Int64                    // bytes held by slab parents
}

// NewSharded returns a sharded pool over an arena of the given size
// (power of two, >= MinBlock).
func NewSharded(arenaSize int64) (*ShardedPool, error) {
	g, err := New(arenaSize)
	if err != nil {
		return nil, err
	}
	p := &ShardedPool{global: g}
	p.shards = make([]*shard, defaultShards)
	slabBytes := int64(slabTargetBytes)
	if slabBytes > arenaSize/8 {
		slabBytes = arenaSize / 8
	}
	if slabBytes >= slabMinBytes {
		p.slabBytes = slabBytes
		p.slabOrder = uint(bits.Len64(uint64(slabBytes)) - 1)
		p.maxClass = p.slabOrder - slabClassShift
	}
	nClasses := 0
	if p.slabBytes > 0 {
		nClasses = int(p.maxClass-minOrder) + 1
	}
	for i := range p.shards {
		p.shards[i] = &shard{slabs: make([][]*slab, nClasses)}
	}
	idx := make(map[int64]*slab)
	p.slabIndex.Store(&idx)
	return p, nil
}

// ArenaSize returns the arena capacity in bytes.
func (p *ShardedPool) ArenaSize() int64 { return p.global.ArenaSize() }

// slabFor returns the slab owning off, if any.
func (p *ShardedPool) slabFor(off int64) *slab {
	if p.slabBytes == 0 {
		return nil
	}
	return (*p.slabIndex.Load())[off&^(p.slabBytes-1)]
}

// Alloc reserves a block of at least size bytes. Small classes are
// served from the calling shard's slab cache; everything else falls
// through to the global buddy.
//
//gengar:hotpath
func (p *ShardedPool) Alloc(size int64) (int64, error) {
	if size <= 0 {
		return 0, fmt.Errorf("alloc: non-positive size %d", size)
	}
	order := orderFor(size)
	if p.slabBytes == 0 || order > p.maxClass {
		return p.globalAlloc(size)
	}
	c := order - minOrder
	cur := int(p.next.Add(1))
	s := p.shards[cur%len(p.shards)]
	if off, ok := s.tryTake(c, order); ok {
		return off, nil
	}
	// The chosen lane is out of slots: prefer a slot in any other shard
	// over carving a new parent, so a small working set never pins one
	// slab per shard per class.
	for i := 1; i < len(p.shards); i++ {
		if off, ok := p.shards[(cur+i)%len(p.shards)].tryTake(c, order); ok {
			return off, nil
		}
	}
	// Carve a new slab parent — but never let parents hold more than
	// half the arena, and fall through to the buddy when the arena is
	// too fragmented for a whole slab: slab caches trade arena for
	// speed, and on small arenas correctness (placements succeeding)
	// outranks the fast path.
	if p.parentB.Load()+p.slabBytes > p.ArenaSize()/2 {
		return p.globalAlloc(size)
	}
	sl, err := p.carveSlab(s, order)
	if err != nil {
		return p.globalAlloc(size)
	}
	s.mu.Lock()
	s.slabs[c] = append(s.slabs[c], sl)
	off := sl.take()
	s.mu.Unlock()
	s.userB.Add(1 << order)
	return off, nil
}

// tryTake claims a slot of class c from one of the shard's existing
// slabs, reporting whether one was free.
//
//gengar:hotpath
func (s *shard) tryTake(c, order uint) (int64, bool) {
	s.mu.Lock()
	for _, sl := range s.slabs[c] {
		if sl.used < sl.slots {
			off := sl.take()
			s.mu.Unlock()
			s.userB.Add(1 << order)
			return off, true
		}
	}
	s.mu.Unlock()
	return 0, false
}

// take claims one free slot; the caller holds the shard mutex and has
// checked used < slots.
func (sl *slab) take() int64 {
	words := len(sl.bitmap)
	for i := 0; i < words; i++ {
		w := (sl.hint + i) % words
		free := ^sl.bitmap[w]
		if w == words-1 && sl.slots%64 != 0 {
			free &= 1<<(uint(sl.slots)%64) - 1
		}
		if free == 0 {
			continue
		}
		bit := bits.TrailingZeros64(free)
		sl.bitmap[w] |= 1 << uint(bit)
		sl.used++
		sl.hint = w
		return sl.base + int64(w*64+bit)<<sl.order
	}
	panic("alloc: slab take on full slab")
}

// globalAlloc is the buddy fall-through with a reclaim retry: if the
// buddy is out of space, empty spare slabs are returned to it and the
// allocation tried once more — slab caches trade arena for speed, but
// never at the price of failing a placement the arena could serve.
func (p *ShardedPool) globalAlloc(size int64) (int64, error) {
	off, err := p.global.Alloc(size)
	if err == nil {
		return off, nil
	}
	if p.scavenge() == 0 {
		return off, err
	}
	return p.global.Alloc(size)
}

// scavenge releases every empty slab (including the per-class hot
// spares) back to the global buddy, reporting how many parents it
// reclaimed. Runs only when the buddy has already failed an
// allocation.
func (p *ShardedPool) scavenge() int {
	released := 0
	for _, s := range p.shards {
		var drops []*slab
		s.mu.Lock()
		for c := range s.slabs {
			keep := s.slabs[c][:0]
			for _, sl := range s.slabs[c] {
				if sl.used == 0 {
					drops = append(drops, sl)
				} else {
					keep = append(keep, sl)
				}
			}
			s.slabs[c] = keep
		}
		s.mu.Unlock()
		for _, sl := range drops {
			p.releaseSlab(sl)
			released++
		}
	}
	return released
}

// carveSlab allocates a slab parent from the global buddy and publishes
// it in the base index. Runs off the fast path (once per slab).
func (p *ShardedPool) carveSlab(s *shard, order uint) (*slab, error) {
	base, err := p.global.Alloc(p.slabBytes)
	if err != nil {
		return nil, err
	}
	slots := int(p.slabBytes >> order)
	sl := &slab{
		shard:  s,
		base:   base,
		order:  order,
		slots:  slots,
		bitmap: make([]uint64, (slots+63)/64),
	}
	p.mu.Lock()
	old := *p.slabIndex.Load()
	next := make(map[int64]*slab, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[base] = sl
	p.slabIndex.Store(&next)
	p.mu.Unlock()
	p.parentB.Add(p.slabBytes)
	return sl, nil
}

// releaseSlab unpublishes an empty slab and returns its parent block to
// the global buddy. The caller has already unlinked the slab from the
// shard's class list (under the shard mutex), so no new slot can be
// taken from it.
func (p *ShardedPool) releaseSlab(sl *slab) {
	p.mu.Lock()
	old := *p.slabIndex.Load()
	next := make(map[int64]*slab, len(old))
	for k, v := range old {
		if k != sl.base {
			next[k] = v
		}
	}
	p.slabIndex.Store(&next)
	p.mu.Unlock()
	p.parentB.Add(-p.slabBytes)
	// A parent release can only fail if bookkeeping is already broken;
	// the buddy keeps the block allocated in that case.
	_ = p.global.Free(sl.base)
}

// Free releases a block previously returned by Alloc.
//
//gengar:hotpath
func (p *ShardedPool) Free(off int64) error {
	sl := p.slabFor(off)
	if sl == nil {
		return p.global.Free(off)
	}
	s := sl.shard
	s.mu.Lock()
	slot := (off - sl.base) >> sl.order
	if off&(1<<sl.order-1) != 0 || slot < 0 || slot >= int64(sl.slots) ||
		sl.bitmap[slot/64]&(1<<uint(slot%64)) == 0 {
		s.mu.Unlock()
		return fmt.Errorf("%w: offset %d", ErrBadFree, off)
	}
	sl.bitmap[slot/64] &^= 1 << uint(slot%64)
	sl.used--
	s.userB.Add(-(1 << sl.order))
	var drop *slab
	if sl.used == 0 {
		// Keep one empty slab per (shard, class) as a hot spare;
		// release the rest so churny classes do not pin the arena.
		c := sl.order - minOrder
		empties := 0
		for _, other := range s.slabs[c] {
			if other.used == 0 {
				empties++
			}
		}
		if empties > 1 {
			list := s.slabs[c]
			for i, other := range list {
				if other == sl {
					s.slabs[c] = append(list[:i], list[i+1:]...)
					break
				}
			}
			drop = sl
		}
	}
	s.mu.Unlock()
	if drop != nil {
		p.releaseSlab(drop)
	}
	return nil
}

// SizeOf returns the rounded size of the allocated block at off.
func (p *ShardedPool) SizeOf(off int64) (int64, error) {
	sl := p.slabFor(off)
	if sl == nil {
		return p.global.SizeOf(off)
	}
	s := sl.shard
	s.mu.Lock()
	defer s.mu.Unlock()
	slot := (off - sl.base) >> sl.order
	if off&(1<<sl.order-1) != 0 || slot < 0 || slot >= int64(sl.slots) ||
		sl.bitmap[slot/64]&(1<<uint(slot%64)) == 0 {
		return 0, fmt.Errorf("%w: offset %d", ErrBadFree, off)
	}
	return 1 << sl.order, nil
}

// AllocatedBytes returns the rounded bytes currently allocated to
// callers: global allocations minus slab parents, plus live slot bytes.
func (p *ShardedPool) AllocatedBytes() int64 {
	total := p.global.AllocatedBytes() - p.parentB.Load()
	for _, s := range p.shards {
		total += s.userB.Load()
	}
	return total
}

// Live returns every live caller-visible allocation sorted by offset:
// direct buddy blocks (excluding slab parents) plus live slab slots.
// Restoring the inventory through Reserve on a fresh pool lands every
// block in the global buddy; slabs re-form from subsequent traffic, and
// frees of restored blocks route to the buddy because they are in no
// slab — so snapshot round-trips are shape-changing but byte-exact.
func (p *ShardedPool) Live() []Allocation {
	idx := *p.slabIndex.Load()
	out := p.global.Live()
	if len(idx) > 0 {
		keep := out[:0]
		for _, a := range out {
			if _, parent := idx[a.Off]; !parent {
				keep = append(keep, a)
			}
		}
		out = keep
	}
	for _, sl := range idx {
		s := sl.shard
		s.mu.Lock()
		for slot := 0; slot < sl.slots; slot++ {
			if sl.bitmap[slot/64]&(1<<uint(slot%64)) != 0 {
				out = append(out, Allocation{Off: sl.base + int64(slot)<<sl.order, Size: 1 << sl.order})
			}
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Off < out[j].Off })
	return out
}

// Reserve allocates the specific block [off, off+BlockSize(size)) in the
// global buddy — the snapshot-restore counterpart of Alloc.
func (p *ShardedPool) Reserve(off, size int64) error {
	if sl := p.slabFor(off); sl != nil {
		return fmt.Errorf("alloc: reserve [%d,+%d) inside a live slab", off, size)
	}
	return p.global.Reserve(off, size)
}

// ShardStat is one shard's occupancy snapshot.
type ShardStat struct {
	Slabs     int   // live slab parents
	UserBytes int64 // live slot bytes
}

// ShardStats returns per-shard occupancy, for telemetry.
func (p *ShardedPool) ShardStats() []ShardStat {
	out := make([]ShardStat, len(p.shards))
	idx := *p.slabIndex.Load()
	for _, sl := range idx {
		for i, s := range p.shards {
			if sl.shard == s {
				out[i].Slabs++
				break
			}
		}
	}
	for i, s := range p.shards {
		out[i].UserBytes = s.userB.Load()
	}
	return out
}

// Shards returns the shard count.
func (p *ShardedPool) Shards() int { return len(p.shards) }
